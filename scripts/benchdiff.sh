#!/usr/bin/env bash
# benchdiff.sh — benchmark regression gate.
#
# Two gated suites:
#
#   engine       internal/sim BenchmarkEngine{,16Core}{Baseline,SN4LDisBTB}
#                (the 200K+200K windows under the no-prefetch baseline and
#                the paper's headline design, at 4 cores and at the paper's
#                full 16-core scale where the engine's per-cycle cost
#                dominates), compared against BENCH_engine.json.
#   resultstore  internal/resultstore BenchmarkSeriesEncode + BenchmarkSeriesDecode
#                (the store's time-series codec hot paths: delta-of-delta
#                timestamps + Gorilla XOR values), compared against
#                BENCH_resultstore.json.
#
# Each suite takes the minimum ns/op over -count repetitions (the minimum is
# the least noisy wall-clock estimator on shared CI runners) and compares
# each benchmark against its committed reference. A benchmark more than
# BENCH_THRESHOLD_PCT percent slower than its reference fails the script.
#
# Usage:
#   scripts/benchdiff.sh            # compare against the committed references
#   scripts/benchdiff.sh -update    # re-measure and rewrite the references
#
# Environment:
#   BENCH_THRESHOLD_PCT   allowed ns/op regression in percent (default 25).
#                         CI machines differ from the reference machine, so
#                         the gate is deliberately loose: it catches
#                         algorithmic regressions (a lost fast path, a
#                         reintroduced per-tick allocation), not noise.
#   BENCH_COUNT           benchmark repetitions (default 3)
#   BENCH_TIME            go test -benchtime value (default 3x)
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD=${BENCH_THRESHOLD_PCT:-25}
COUNT=${BENCH_COUNT:-3}
BENCHTIME=${BENCH_TIME:-3x}
MODE=${1:-check}

fail=0

# run_suite <label> <package> <bench-regex> <ref-file> <bench names...>
# Runs one benchmark suite and either rewrites its reference (-update) or
# compares each named benchmark's min ns/op against it.
run_suite() {
	local label="$1" pkg="$2" regex="$3" ref="$4"
	shift 4
	local benches="$*"

	local out
	out=$(go test "$pkg" -run '^$' -bench "$regex" \
		-benchtime "$BENCHTIME" -count "$COUNT" 2>&1) || {
		echo "$out"
		echo "benchdiff: $label benchmark run failed" >&2
		exit 1
	}
	echo "$out"

	# Minimum ns/op and allocs/op per benchmark, from lines like:
	#   BenchmarkEngineBaseline   3   142028384 ns/op   19336872 B/op   32945 allocs/op
	# The value is the field before its unit label, so extra columns a
	# benchmark reports (MB/s throughput) cannot shift the parse.
	min_unit() {
		echo "$out" | awk -v name="$1" -v unit="$2" '
			$1 ~ "^"name"(-[0-9]+)?$" {
				for (i = 2; i <= NF; i++)
					if ($i == unit && (min == "" || $(i-1) + 0 < min + 0)) min = $(i-1)
			}
			END { print min }'
	}
	min_ns() { min_unit "$1" "ns/op"; }
	min_allocs() { min_unit "$1" "allocs/op"; }

	if [ "$MODE" = "-update" ]; then
		{
			echo '{'
			echo '  "note": "'"$label"' benchmark reference: min ns/op over '"$COUNT"'x -benchtime '"$BENCHTIME"' runs; update with scripts/benchdiff.sh -update",'
			echo '  "benchmarks": {'
			local sep='' b ns al
			for b in $benches; do
				ns=$(min_ns "$b")
				al=$(min_allocs "$b")
				[ -n "$ns" ] || { echo "benchdiff: no result for $b" >&2; exit 1; }
				printf '%s    "%s": {"ns_per_op": %s, "allocs_per_op": %s}' "$sep" "$b" "$ns" "$al"
				sep=$',\n'
			done
			printf '\n  }\n}\n'
		} >"$ref"
		echo "benchdiff: wrote $ref"
		return 0
	fi

	[ -f "$ref" ] || { echo "benchdiff: $ref missing (run scripts/benchdiff.sh -update)" >&2; exit 1; }

	local b ns refv limit pct
	for b in $benches; do
		ns=$(min_ns "$b")
		[ -n "$ns" ] || { echo "benchdiff: no result for $b" >&2; exit 1; }
		refv=$(sed -n 's/.*"'"$b"'": {"ns_per_op": \([0-9]*\),.*/\1/p' "$ref")
		[ -n "$refv" ] || { echo "benchdiff: $b missing from $ref" >&2; exit 1; }
		limit=$((refv + refv * THRESHOLD / 100))
		pct=$(( (ns - refv) * 100 / refv ))
		if [ "$ns" -gt "$limit" ]; then
			echo "benchdiff: FAIL $b: $ns ns/op is ${pct}% over reference $refv (limit +${THRESHOLD}%)"
			fail=1
		else
			echo "benchdiff: ok   $b: $ns ns/op vs reference $refv (${pct}%, limit +${THRESHOLD}%)"
		fi
	done
}

run_suite engine ./internal/sim/ BenchmarkEngine BENCH_engine.json \
	BenchmarkEngineBaseline BenchmarkEngineSN4LDisBTB \
	BenchmarkEngine16CoreBaseline BenchmarkEngine16CoreSN4LDisBTB

run_suite resultstore ./internal/resultstore/ \
	'^(BenchmarkSeriesEncode|BenchmarkSeriesDecode)$' BENCH_resultstore.json \
	BenchmarkSeriesEncode BenchmarkSeriesDecode

exit $fail
