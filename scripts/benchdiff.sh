#!/usr/bin/env bash
# benchdiff.sh — engine benchmark regression gate.
#
# Runs the internal/sim engine benchmarks (BenchmarkEngineBaseline,
# BenchmarkEngineSN4LDisBTB: the default 4-core 200K+200K configuration
# under the no-prefetch baseline and the paper's headline design), takes the
# minimum ns/op over -count repetitions (the minimum is the least noisy
# wall-clock estimator on shared CI runners), and compares each against the
# committed reference in BENCH_engine.json. A benchmark more than
# BENCH_THRESHOLD_PCT percent slower than its reference fails the script.
#
# Usage:
#   scripts/benchdiff.sh            # compare against BENCH_engine.json
#   scripts/benchdiff.sh -update    # re-measure and rewrite BENCH_engine.json
#
# Environment:
#   BENCH_THRESHOLD_PCT   allowed ns/op regression in percent (default 25).
#                         CI machines differ from the reference machine, so
#                         the gate is deliberately loose: it catches
#                         algorithmic regressions (a lost fast path, a
#                         reintroduced per-tick allocation), not noise.
#   BENCH_COUNT           benchmark repetitions (default 3)
#   BENCH_TIME            go test -benchtime value (default 3x)
set -euo pipefail
cd "$(dirname "$0")/.."

REF=BENCH_engine.json
THRESHOLD=${BENCH_THRESHOLD_PCT:-25}
COUNT=${BENCH_COUNT:-3}
BENCHTIME=${BENCH_TIME:-3x}
MODE=${1:-check}

OUT=$(go test ./internal/sim/ -run '^$' -bench BenchmarkEngine \
	-benchtime "$BENCHTIME" -count "$COUNT" 2>&1) || {
	echo "$OUT"
	echo "benchdiff: benchmark run failed" >&2
	exit 1
}
echo "$OUT"

# Minimum ns/op and allocs/op per benchmark, from lines like:
#   BenchmarkEngineBaseline   3   142028384 ns/op   19336872 B/op   32945 allocs/op
min_ns() {
	echo "$OUT" | awk -v name="$1" \
		'$1 ~ "^"name"(-[0-9]+)?$" { if (min == "" || $3 < min) min = $3 } END { print min }'
}
min_allocs() {
	echo "$OUT" | awk -v name="$1" \
		'$1 ~ "^"name"(-[0-9]+)?$" { if (min == "" || $7 < min) min = $7 } END { print min }'
}

BENCHES="BenchmarkEngineBaseline BenchmarkEngineSN4LDisBTB"

if [ "$MODE" = "-update" ]; then
	{
		echo '{'
		echo '  "note": "engine benchmark reference: min ns/op over '"$COUNT"'x -benchtime '"$BENCHTIME"' runs; update with scripts/benchdiff.sh -update",'
		echo '  "benchmarks": {'
		sep=''
		for b in $BENCHES; do
			ns=$(min_ns "$b")
			al=$(min_allocs "$b")
			[ -n "$ns" ] || { echo "benchdiff: no result for $b" >&2; exit 1; }
			printf '%s    "%s": {"ns_per_op": %s, "allocs_per_op": %s}' "$sep" "$b" "$ns" "$al"
			sep=$',\n'
		done
		printf '\n  }\n}\n'
	} >"$REF"
	echo "benchdiff: wrote $REF"
	exit 0
fi

[ -f "$REF" ] || { echo "benchdiff: $REF missing (run scripts/benchdiff.sh -update)" >&2; exit 1; }

fail=0
for b in $BENCHES; do
	ns=$(min_ns "$b")
	[ -n "$ns" ] || { echo "benchdiff: no result for $b" >&2; exit 1; }
	ref=$(sed -n 's/.*"'"$b"'": {"ns_per_op": \([0-9]*\),.*/\1/p' "$REF")
	[ -n "$ref" ] || { echo "benchdiff: $b missing from $REF" >&2; exit 1; }
	limit=$((ref + ref * THRESHOLD / 100))
	pct=$(( (ns - ref) * 100 / ref ))
	if [ "$ns" -gt "$limit" ]; then
		echo "benchdiff: FAIL $b: $ns ns/op is ${pct}% over reference $ref (limit +${THRESHOLD}%)"
		fail=1
	else
		echo "benchdiff: ok   $b: $ns ns/op vs reference $ref (${pct}%, limit +${THRESHOLD}%)"
	fi
done
exit $fail
