#!/usr/bin/env bash
# coverage.sh — coverage gate for the packages the differential-validation
# work depends on. The prefetch designs and the reference oracle are the two
# places a silent coverage regression would let an equivalence bug slip past
# CI, so each has a hard floor.
#
# Coverage is measured across every test package that exercises them
# (-coverpkg), because the designs are deliberately driven from three
# directions: their own unit tests, the timing simulator's integration tests,
# and the differential harness. Profiles from multiple test binaries repeat
# blocks, so the per-package rollup dedups blocks by position, keeping the
# max count.
#
# Usage: scripts/coverage.sh [profile-out]
set -euo pipefail
cd "$(dirname "$0")/.."

# Floors, in percent. Measured headroom at introduction: prefetch 74.6,
# oracle 82.0, service 86.8, httpx 100, telemetry 95.4, resultstore 86.1.
# Raise these as coverage grows; never lower them to make a red build green.
PREFETCH_FLOOR=70
ORACLE_FLOOR=78
SERVICE_FLOOR=70
HTTPX_FLOOR=80
TELEMETRY_FLOOR=80
RESULTSTORE_FLOOR=80

profile="${1:-cover.out}"

go test -coverprofile="$profile" \
  -coverpkg=dnc/internal/prefetch,dnc/internal/oracle \
  ./internal/prefetch/ ./internal/oracle/ ./internal/sim/ ./internal/sim/difftest/

awk -v pf="$PREFETCH_FLOOR" -v of="$ORACLE_FLOOR" '
  NR > 1 {
    split($0, a, " ")
    k = a[1] ":" a[2]
    if (!(k in stmts)) { stmts[k] = a[2]; file[k] = a[1] }
    if (a[3] > count[k]) count[k] = a[3]
  }
  END {
    for (k in stmts) {
      pkg = (file[k] ~ /internal\/oracle\//) ? "oracle" : "prefetch"
      tot[pkg] += stmts[k]
      if (count[k] > 0) cov[pkg] += stmts[k]
    }
    status = 0
    for (p in tot) {
      pct = 100 * cov[p] / tot[p]
      floor = (p == "oracle") ? of : pf
      verdict = (pct >= floor) ? "ok" : "BELOW FLOOR"
      printf "coverage: internal/%-9s %5.1f%% (floor %d%%) %s\n", p, pct, floor, verdict
      if (pct < floor) status = 1
    }
    exit status
  }' "$profile"

# The service layer gets its own profile: its suite is the integration and
# chaos harness (subprocess kills, fault injection), so it runs apart from
# the simulator-coverage matrix above. internal/httpx rides along — it is
# the shared hardened-HTTP helper under both the service API and the debug
# server.
svc_profile="${profile%.out}.service.out"

go test -coverprofile="$svc_profile" \
  -coverpkg=dnc/internal/service,dnc/internal/httpx \
  ./internal/service/ ./internal/httpx/

awk -v sf="$SERVICE_FLOOR" -v hf="$HTTPX_FLOOR" '
  NR > 1 {
    split($0, a, " ")
    k = a[1] ":" a[2]
    if (!(k in stmts)) { stmts[k] = a[2]; file[k] = a[1] }
    if (a[3] > count[k]) count[k] = a[3]
  }
  END {
    for (k in stmts) {
      pkg = (file[k] ~ /internal\/httpx\//) ? "httpx" : "service"
      tot[pkg] += stmts[k]
      if (count[k] > 0) cov[pkg] += stmts[k]
    }
    status = 0
    for (p in tot) {
      pct = 100 * cov[p] / tot[p]
      floor = (p == "httpx") ? hf : sf
      verdict = (pct >= floor) ? "ok" : "BELOW FLOOR"
      printf "coverage: internal/%-9s %5.1f%% (floor %d%%) %s\n", p, pct, floor, verdict
      if (pct < floor) status = 1
    }
    exit status
  }' "$svc_profile"

# The telemetry plane (metric registry, exposition linter, trace recorder,
# Perfetto timelines) is pure library code: /metrics correctness and the
# phase-conservation invariant live entirely in its unit suite, so it gets
# its own profile and floor. The service integration tests drive it again
# end to end, but the floor is on the library's own tests so a gutted unit
# suite cannot hide behind integration coverage.
tel_profile="${profile%.out}.telemetry.out"

go test -coverprofile="$tel_profile" \
  -coverpkg=dnc/internal/telemetry \
  ./internal/telemetry/

awk -v tf="$TELEMETRY_FLOOR" '
  NR > 1 {
    split($0, a, " ")
    k = a[1] ":" a[2]
    if (!(k in stmts)) stmts[k] = a[2]
    if (a[3] > count[k]) count[k] = a[3]
  }
  END {
    for (k in stmts) {
      tot += stmts[k]
      if (count[k] > 0) cov += stmts[k]
    }
    pct = 100 * cov / tot
    verdict = (pct >= tf) ? "ok" : "BELOW FLOOR"
    printf "coverage: internal/telemetry %5.1f%% (floor %d%%) %s\n", pct, tf, verdict
    exit (pct < tf) ? 1 : 0
  }' "$tel_profile"

# The column store is the durable result format: its decoder faces
# arbitrary bytes (fuzzed, checksummed, version-pinned), so its floor rides
# on the package's own fuzz-seeded unit/property/golden wall, not on the
# service integration tests that drive it again end to end.
store_profile="${profile%.out}.resultstore.out"

go test -coverprofile="$store_profile" \
  -coverpkg=dnc/internal/resultstore \
  ./internal/resultstore/

awk -v rf="$RESULTSTORE_FLOOR" '
  NR > 1 {
    split($0, a, " ")
    k = a[1] ":" a[2]
    if (!(k in stmts)) stmts[k] = a[2]
    if (a[3] > count[k]) count[k] = a[3]
  }
  END {
    for (k in stmts) {
      tot += stmts[k]
      if (count[k] > 0) cov += stmts[k]
    }
    pct = 100 * cov / tot
    verdict = (pct >= rf) ? "ok" : "BELOW FLOOR"
    printf "coverage: internal/resultstore %5.1f%% (floor %d%%) %s\n", pct, rf, verdict
    exit (pct < rf) ? 1 : 0
  }' "$store_profile"
