package btb

import "dnc/internal/isa"

// Boomerang uses a basic-block-oriented BTB: entries are tagged by the
// basic block's start address and describe where the block ends and how it
// transfers control, which lets the prefetch engine walk the predicted
// control flow one basic block at a time.

// BBEntry is a basic-block BTB payload.
type BBEntry struct {
	// Size is the byte length of the basic block, from its start through
	// the end of its terminating branch; the fallthrough address is
	// start+Size.
	Size uint16
	// Kind is the terminating branch kind; KindALU marks a block that ends
	// without a branch (split because it reached the maximum length).
	Kind isa.Kind
	// BranchPC is the address of the terminating branch (0 when Kind is
	// KindALU).
	BranchPC isa.Addr
	// Target is the taken target for direct branches.
	Target isa.Addr
}

// Fallthrough returns the address immediately after the basic block.
func (e BBEntry) Fallthrough(start isa.Addr) isa.Addr { return start + isa.Addr(e.Size) }

// BBBTB is the basic-block-oriented BTB.
type BBBTB struct {
	*Table[BBEntry]
}

// NewBBBTB returns a basic-block BTB with the given entries and ways.
func NewBBBTB(entries, ways int) *BBBTB {
	return &BBBTB{Table: NewTable[BBEntry](entries, ways)}
}
