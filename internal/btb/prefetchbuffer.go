package btb

import "dnc/internal/isa"

// PrefetchBuffer is the Confluence-like BTB prefetch buffer of the proposed
// design (Section V.C): a small 2-way set-associative structure keyed by
// cache block, each entry holding all pre-decoded branches of that block.
// Storing per block lets the pre-decoder fill one entry per decoded block in
// a single access, without modifying the BTB itself. A hit promotes the
// block's branches into the conventional BTB.
type PrefetchBuffer struct {
	table *Table[[]isa.Branch]
}

// NewPrefetchBuffer returns a buffer with the given block entries and ways
// (the paper uses 32 entries, 2-way).
func NewPrefetchBuffer(entries, ways int) *PrefetchBuffer {
	return &PrefetchBuffer{table: NewTable[[]isa.Branch](entries, ways)}
}

// Fill stores the pre-decoded branches of a block (no-op for blocks without
// branches, which need no BTB entries).
func (p *PrefetchBuffer) Fill(b isa.BlockID, branches []isa.Branch) {
	if len(branches) == 0 {
		return
	}
	p.table.Insert(isa.BlockBase(b), branches)
}

// TakeBlock removes and returns the entry for a block. The frontend calls
// this when a BTB lookup misses: a prefetch-buffer hit promotes every branch
// of the block into the BTB, avoiding the decode-redirect penalty.
func (p *PrefetchBuffer) TakeBlock(b isa.BlockID) ([]isa.Branch, bool) {
	key := isa.BlockBase(b)
	brs, ok := p.table.Lookup(key)
	if !ok {
		return nil, false
	}
	p.table.Invalidate(key)
	return brs, true
}

// Contains reports whether the buffer holds an entry for the block, without
// disturbing state.
func (p *PrefetchBuffer) Contains(b isa.BlockID) bool {
	_, ok := p.table.Peek(isa.BlockBase(b))
	return ok
}

// Lookups and Hits expose access statistics.
func (p *PrefetchBuffer) Lookups() uint64 { return p.table.Lookups() }

// Hits returns successful TakeBlock calls.
func (p *PrefetchBuffer) Hits() uint64 { return p.table.Hits() }
