// Package btb implements the branch target buffer organizations used by the
// evaluated designs: a conventional PC-indexed BTB (our proposal keeps it
// unmodified), the Confluence-like block-grained BTB prefetch buffer, a
// basic-block-oriented BTB (Boomerang), and Shotgun's split U-BTB/C-BTB/RIB
// with call/return footprints.
package btb

import "dnc/internal/isa"

// Table is a set-associative LRU table keyed by address, generic over the
// payload type. It is the building block for every BTB organization here.
//
// Keys are mirrored in a packed side array (shifted key with an always-set
// valid bit; 0 = empty way) so the way scan of a lookup touches contiguous
// words instead of striding across payload-sized records. The mirror is
// derived state, maintained by every write to a line's key/valid pair.
type Table[V any] struct {
	sets  int
	ways  int
	lines []tline[V]
	tags  []uint64 // tagKey per line; 0 = invalid
	clock uint64

	lookups uint64
	hits    uint64
}

// tagKey packs a key and an always-set valid bit into one comparable word.
func tagKey(key isa.Addr) uint64 { return uint64(key)<<1 | 1 }

type tline[V any] struct {
	key   isa.Addr
	valid bool
	lru   uint64
	val   V
}

// NewTable returns a table with the given total entries and associativity.
func NewTable[V any](entries, ways int) *Table[V] {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("btb: bad table geometry")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("btb: set count must be a power of two")
	}
	return &Table[V]{sets: sets, ways: ways, lines: make([]tline[V], entries), tags: make([]uint64, entries)}
}

// Entries returns the capacity.
func (t *Table[V]) Entries() int { return t.sets * t.ways }

func (t *Table[V]) setOf(key isa.Addr) int {
	return int((uint64(key) >> 2) & uint64(t.sets-1))
}

func (t *Table[V]) find(key isa.Addr) *tline[V] {
	s := t.setOf(key) * t.ways
	k := tagKey(key)
	for i, tg := range t.tags[s : s+t.ways] {
		if tg == k {
			return &t.lines[s+i]
		}
	}
	return nil
}

// Lookup returns the payload for key, updating recency and hit statistics.
func (t *Table[V]) Lookup(key isa.Addr) (V, bool) {
	t.lookups++
	if l := t.find(key); l != nil {
		t.clock++
		l.lru = t.clock
		t.hits++
		return l.val, true
	}
	var zero V
	return zero, false
}

// Peek returns the payload without touching recency or statistics.
func (t *Table[V]) Peek(key isa.Addr) (V, bool) {
	if l := t.find(key); l != nil {
		return l.val, true
	}
	var zero V
	return zero, false
}

// Update overwrites the payload of an existing entry without changing
// recency; it reports whether the key was present.
func (t *Table[V]) Update(key isa.Addr, val V) bool {
	if l := t.find(key); l != nil {
		l.val = val
		return true
	}
	return false
}

// Insert fills key, evicting the set's LRU entry if needed. It returns the
// evicted key when a valid entry was displaced.
func (t *Table[V]) Insert(key isa.Addr, val V) (isa.Addr, bool) {
	if l := t.find(key); l != nil {
		t.clock++
		l.lru = t.clock
		l.val = val
		return 0, false
	}
	s := t.setOf(key) * t.ways
	vi := s
	for i := s; i < s+t.ways; i++ {
		l := &t.lines[i]
		if !l.valid {
			vi = i
			break
		}
		if l.lru < t.lines[vi].lru {
			vi = i
		}
	}
	victim := &t.lines[vi]
	var evictedKey isa.Addr
	evicted := victim.valid
	if evicted {
		evictedKey = victim.key
	}
	t.clock++
	*victim = tline[V]{key: key, valid: true, lru: t.clock, val: val}
	t.tags[vi] = tagKey(key)
	return evictedKey, evicted
}

// Invalidate removes key, reporting whether it was present.
func (t *Table[V]) Invalidate(key isa.Addr) bool {
	s := t.setOf(key) * t.ways
	k := tagKey(key)
	for i, tg := range t.tags[s : s+t.ways] {
		if tg == k {
			t.lines[s+i] = tline[V]{}
			t.tags[s+i] = 0
			return true
		}
	}
	return false
}

// Lookups and Hits expose access statistics.
func (t *Table[V]) Lookups() uint64 { return t.lookups }

// Hits returns the number of successful Lookup calls.
func (t *Table[V]) Hits() uint64 { return t.hits }

// ResetStats clears the access statistics only.
func (t *Table[V]) ResetStats() { t.lookups, t.hits = 0, 0 }

// Entry is a conventional BTB payload: the branch kind and its last-seen
// target. The tag is the branch PC.
type Entry struct {
	Kind   isa.Kind
	Target isa.Addr
}

// BTB is the conventional program-counter-indexed BTB used by the baseline
// core and by SN4L+Dis+BTB (which deliberately leaves the BTB unmodified).
type BTB struct {
	*Table[Entry]
}

// New returns a conventional BTB with the given entries and associativity.
func New(entries, ways int) *BTB {
	return &BTB{Table: NewTable[Entry](entries, ways)}
}
