package btb

import "dnc/internal/isa"

// Shotgun (Kumar et al., ASPLOS 2018) splits a basic-block-oriented BTB
// into three structures: most of the storage goes to basic blocks ending in
// unconditional branches (U-BTB), whose entries carry spatial footprints of
// the blocks touched around the branch target (call footprint) and around
// the return site (return footprint); basic blocks ending in conditional
// branches get a small C-BTB that is aggressively prefilled by pre-decoding;
// returns get a small RIB. Prefetching is driven by the footprints rather
// than by walking conditional branches one at a time.

// Footprint window: 8 blocks starting two blocks before the region entry.
const (
	FootprintBefore = 2
	FootprintBits   = 8
)

// Footprint is a bit vector over the blocks [base-FootprintBefore,
// base-FootprintBefore+FootprintBits) around a region entry block.
type Footprint struct {
	Bits uint8
}

// Set marks the block at the given delta from the region entry block.
// Deltas outside the window are dropped.
func (f *Footprint) Set(delta int) {
	i := delta + FootprintBefore
	if i >= 0 && i < FootprintBits {
		f.Bits |= 1 << uint(i)
	}
}

// Empty reports whether no blocks are recorded.
func (f Footprint) Empty() bool { return f.Bits == 0 }

// Blocks expands the footprint into absolute block IDs around base.
func (f Footprint) Blocks(base isa.BlockID) []isa.BlockID {
	var out []isa.BlockID
	for i := 0; i < FootprintBits; i++ {
		if f.Bits&(1<<uint(i)) == 0 {
			continue
		}
		delta := i - FootprintBefore
		if delta < 0 && isa.BlockID(-delta) > base {
			continue
		}
		out = append(out, isa.BlockID(int64(base)+int64(delta)))
	}
	return out
}

// UBBEntry is a U-BTB payload: a basic block ending in an unconditional
// branch, plus the spatial footprints Shotgun prefetches from.
type UBBEntry struct {
	BB UBBInfo
	// CallFP records blocks touched around the branch target; RetFP records
	// blocks touched around the return site (for calls).
	CallFP Footprint
	RetFP  Footprint
	// HasFP distinguishes entries whose footprints were constructed from
	// the retired stream from entries prefilled by pre-decoding, whose
	// footprints cannot be recovered (the paper's Section III observation:
	// BTB prefilling cannot fill footprints).
	HasFP bool
}

// UBBInfo aliases BBEntry for readability.
type UBBInfo = BBEntry

// ShotgunBTB bundles the three structures. All are keyed by basic-block
// start address.
type ShotgunBTB struct {
	U   *Table[UBBEntry]
	C   *Table[BBEntry]
	RIB *Table[BBEntry]

	// Footprint accounting for Figure 1: a footprint miss is a U-BTB
	// lookup that either misses entirely or hits an entry without
	// constructed footprints.
	ULookups       uint64
	UFootprintMiss uint64
	UEntryMiss     uint64
	PrefilledNoFP  uint64
}

// ShotgunConfig sizes the three tables (paper: 1.5K U-BTB, 128 C-BTB,
// 512 RIB).
type ShotgunConfig struct {
	UEntries, UWays int
	CEntries, CWays int
	REntries, RWays int
}

// DefaultShotgunConfig matches the paper's evaluation.
func DefaultShotgunConfig() ShotgunConfig {
	return ShotgunConfig{
		UEntries: 1536, UWays: 6,
		CEntries: 128, CWays: 4,
		REntries: 512, RWays: 4,
	}
}

// ScaledShotgunConfig scales every table by num/den (for the Figure 18 BTB
// size sweep), keeping geometries legal.
func ScaledShotgunConfig(num, den int) ShotgunConfig {
	scale := func(entries, ways int) int {
		v := entries * num / den
		if v < ways {
			v = ways
		}
		// Round up to ways * power-of-two sets.
		sets := 1
		for sets*ways < v {
			sets <<= 1
		}
		return sets * ways
	}
	d := DefaultShotgunConfig()
	return ShotgunConfig{
		UEntries: scale(d.UEntries, d.UWays), UWays: d.UWays,
		CEntries: scale(d.CEntries, d.CWays), CWays: d.CWays,
		REntries: scale(d.REntries, d.RWays), RWays: d.RWays,
	}
}

// NewShotgun builds the split BTB.
func NewShotgun(cfg ShotgunConfig) *ShotgunBTB {
	if cfg.UEntries == 0 {
		cfg = DefaultShotgunConfig()
	}
	return &ShotgunBTB{
		U:   NewTable[UBBEntry](cfg.UEntries, cfg.UWays),
		C:   NewTable[BBEntry](cfg.CEntries, cfg.CWays),
		RIB: NewTable[BBEntry](cfg.REntries, cfg.RWays),
	}
}

// LookupU looks up a basic block ending in an unconditional branch. Hits
// are counted toward the Figure 1 footprint-miss ratio (a hit without
// constructed footprints is a footprint miss). Misses cannot be classified
// here — the engine looks up every unknown basic block in all three
// structures, so a miss may simply be a conditional block absent from the
// C-BTB; the engine calls NoteResolvedUncond once pre-decoding reveals the
// block really ends in an unconditional branch.
func (s *ShotgunBTB) LookupU(start isa.Addr) (UBBEntry, bool) {
	e, ok := s.U.Lookup(start)
	if !ok {
		return UBBEntry{}, false
	}
	s.ULookups++
	if !e.HasFP {
		s.UFootprintMiss++
	}
	return e, true
}

// NoteResolvedUncond records that a U-BTB lookup missed for a basic block
// that pre-decoding resolved to an unconditional branch: an entry miss and
// therefore also a footprint miss (Figure 1).
func (s *ShotgunBTB) NoteResolvedUncond() {
	s.ULookups++
	s.UEntryMiss++
	s.UFootprintMiss++
}

// CommitU installs or refreshes a U-BTB entry from the retired instruction
// stream, merging any footprints already present. HasFP is set once the
// entry carries constructed footprints.
func (s *ShotgunBTB) CommitU(start isa.Addr, e UBBEntry) {
	if old, ok := s.U.Peek(start); ok {
		e.CallFP.Bits |= old.CallFP.Bits
		e.RetFP.Bits |= old.RetFP.Bits
		e.HasFP = e.HasFP || old.HasFP
	}
	e.HasFP = e.HasFP || !e.CallFP.Empty() || !e.RetFP.Empty()
	s.U.Insert(start, e)
}

// UpdateFootprints merges footprints into an existing entry without
// touching recency (region recorder write-back).
func (s *ShotgunBTB) UpdateFootprints(start isa.Addr, call, ret *Footprint) {
	e, ok := s.U.Peek(start)
	if !ok {
		return
	}
	if call != nil {
		e.CallFP.Bits |= call.Bits
	}
	if ret != nil {
		e.RetFP.Bits |= ret.Bits
	}
	e.HasFP = true
	s.U.Update(start, e)
}

// PrefillU installs a pre-decoded U-BTB entry; its footprints are unknown.
func (s *ShotgunBTB) PrefillU(start isa.Addr, bb BBEntry) {
	if _, ok := s.U.Peek(start); ok {
		return // never downgrade a constructed entry
	}
	s.PrefilledNoFP++
	s.U.Insert(start, UBBEntry{BB: bb})
}

// FootprintMissRatio returns the Figure 1 metric.
func (s *ShotgunBTB) FootprintMissRatio() float64 {
	if s.ULookups == 0 {
		return 0
	}
	return float64(s.UFootprintMiss) / float64(s.ULookups)
}
