package btb

import (
	"testing"

	"dnc/internal/isa"
)

func TestTableLookupInsert(t *testing.T) {
	tb := NewTable[int](8, 2)
	if _, ok := tb.Lookup(0x100); ok {
		t.Fatal("hit in empty table")
	}
	tb.Insert(0x100, 42)
	v, ok := tb.Lookup(0x100)
	if !ok || v != 42 {
		t.Fatalf("lookup = %d, %v", v, ok)
	}
	if tb.Lookups() != 2 || tb.Hits() != 1 {
		t.Fatalf("stats: %d/%d", tb.Hits(), tb.Lookups())
	}
}

func TestTableLRUWithinSet(t *testing.T) {
	tb := NewTable[int](4, 2) // 2 sets, 2 ways; keys shifted by 2 in setOf
	// Keys mapping to set 0: (key>>2) even.
	k := func(i int) isa.Addr { return isa.Addr(i << 3) } // (i<<3)>>2 = i<<1, always even
	tb.Insert(k(1), 1)
	tb.Insert(k(2), 2)
	tb.Lookup(k(1)) // protect 1
	evicted, was := tb.Insert(k(3), 3)
	if !was || evicted != k(2) {
		t.Fatalf("evicted %#x, want %#x", evicted, k(2))
	}
}

func TestTableUpdate(t *testing.T) {
	tb := NewTable[int](4, 2)
	if tb.Update(0x10, 9) {
		t.Fatal("update of absent key succeeded")
	}
	tb.Insert(0x10, 1)
	if !tb.Update(0x10, 9) {
		t.Fatal("update failed")
	}
	if v, _ := tb.Peek(0x10); v != 9 {
		t.Fatalf("value = %d", v)
	}
}

func TestTableInvalidate(t *testing.T) {
	tb := NewTable[int](4, 2)
	tb.Insert(0x10, 1)
	if !tb.Invalidate(0x10) || tb.Invalidate(0x10) {
		t.Fatal("invalidate misbehaved")
	}
}

func TestConventionalBTB(t *testing.T) {
	b := New(2048, 4)
	if b.Entries() != 2048 {
		t.Fatalf("entries = %d", b.Entries())
	}
	b.Insert(0x1234, Entry{Kind: isa.KindJump, Target: 0x9000})
	e, ok := b.Lookup(0x1234)
	if !ok || e.Target != 0x9000 || e.Kind != isa.KindJump {
		t.Fatalf("entry = %+v, %v", e, ok)
	}
}

func TestPrefetchBuffer(t *testing.T) {
	pb := NewPrefetchBuffer(32, 2)
	brs := []isa.Branch{{Offset: 4, Kind: isa.KindCondBranch, Target: 0x40}}
	pb.Fill(10, brs)
	if !pb.Contains(10) {
		t.Fatal("filled block missing")
	}
	got, ok := pb.TakeBlock(10)
	if !ok || len(got) != 1 || got[0].Offset != 4 {
		t.Fatalf("TakeBlock = %+v, %v", got, ok)
	}
	// TakeBlock removes the entry.
	if pb.Contains(10) {
		t.Fatal("entry survived TakeBlock")
	}
	// Empty branch lists are not stored.
	pb.Fill(11, nil)
	if pb.Contains(11) {
		t.Fatal("empty fill stored")
	}
}

func TestBBEntryFallthrough(t *testing.T) {
	e := BBEntry{Size: 24, Kind: isa.KindCondBranch, BranchPC: 0x114, Target: 0x200}
	if e.Fallthrough(0x100) != 0x118 {
		t.Fatalf("fallthrough = %#x", e.Fallthrough(0x100))
	}
}

func TestFootprint(t *testing.T) {
	var f Footprint
	if !f.Empty() {
		t.Fatal("zero footprint not empty")
	}
	f.Set(0)
	f.Set(-2)
	f.Set(3)
	f.Set(100) // out of window, dropped
	f.Set(-5)  // out of window, dropped
	blocks := f.Blocks(10)
	want := []isa.BlockID{8, 10, 13}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %v, want %v", blocks, want)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("blocks = %v, want %v", blocks, want)
		}
	}
	// Negative deltas below base are clipped.
	var g Footprint
	g.Set(-2)
	if len(g.Blocks(1)) != 0 {
		t.Fatal("underflowing block not clipped")
	}
}

func TestShotgunFootprintMissAccounting(t *testing.T) {
	s := NewShotgun(DefaultShotgunConfig())
	start := isa.Addr(0x1000)
	bb := BBEntry{Size: 16, Kind: isa.KindCall, BranchPC: 0x100C, Target: 0x2000}

	// A miss is not classified by LookupU (it may be a conditional block);
	// the engine reports it once pre-decoding resolves the branch kind.
	if _, ok := s.LookupU(start); ok {
		t.Fatal("hit in empty U-BTB")
	}
	if s.ULookups != 0 {
		t.Fatalf("unresolved miss counted: %d lookups", s.ULookups)
	}
	s.NoteResolvedUncond()
	if s.UEntryMiss != 1 || s.UFootprintMiss != 1 || s.ULookups != 1 {
		t.Fatalf("miss accounting: %d/%d/%d", s.UEntryMiss, s.UFootprintMiss, s.ULookups)
	}

	// Prefilled entry hits but still counts a footprint miss.
	s.PrefillU(start, bb)
	e, ok := s.LookupU(start)
	if !ok || e.HasFP {
		t.Fatalf("prefilled entry = %+v, %v", e, ok)
	}
	if s.UFootprintMiss != 2 {
		t.Fatalf("footprint misses = %d, want 2", s.UFootprintMiss)
	}

	// Committed entry has footprints; no further footprint misses.
	var fp Footprint
	fp.Set(0)
	s.CommitU(start, UBBEntry{BB: bb, CallFP: fp})
	e, ok = s.LookupU(start)
	if !ok || !e.HasFP {
		t.Fatalf("committed entry = %+v, %v", e, ok)
	}
	if s.UFootprintMiss != 2 {
		t.Fatalf("footprint misses = %d after commit, want 2", s.UFootprintMiss)
	}
	if got := s.FootprintMissRatio(); got != 2.0/3.0 {
		t.Fatalf("ratio = %v", got)
	}
}

func TestPrefillDoesNotDowngrade(t *testing.T) {
	s := NewShotgun(DefaultShotgunConfig())
	start := isa.Addr(0x100)
	bb := BBEntry{Size: 8, Kind: isa.KindJump, BranchPC: 0x104, Target: 0x900}
	var fp Footprint
	fp.Set(1)
	s.CommitU(start, UBBEntry{BB: bb, CallFP: fp})
	s.PrefillU(start, bb)
	e, _ := s.LookupU(start)
	if !e.HasFP {
		t.Fatal("prefill downgraded a committed entry")
	}
}

func TestUpdateFootprints(t *testing.T) {
	s := NewShotgun(DefaultShotgunConfig())
	start := isa.Addr(0x200)
	bb := BBEntry{Size: 8, Kind: isa.KindCall, BranchPC: 0x204, Target: 0x3000}
	s.PrefillU(start, bb)
	var call, ret Footprint
	call.Set(0)
	call.Set(2)
	ret.Set(1)
	s.UpdateFootprints(start, &call, &ret)
	e, ok := s.U.Peek(start)
	if !ok || !e.HasFP || e.CallFP != call || e.RetFP != ret {
		t.Fatalf("footprints not merged: %+v", e)
	}
	// Updating a non-existent entry is a no-op.
	s.UpdateFootprints(0x999000, &call, nil)
}

func TestScaledShotgunConfig(t *testing.T) {
	half := ScaledShotgunConfig(1, 2)
	if half.UEntries >= DefaultShotgunConfig().UEntries {
		t.Fatalf("half config U entries = %d", half.UEntries)
	}
	if half.UEntries%half.UWays != 0 {
		t.Fatal("scaled U geometry illegal")
	}
	// Table construction must not panic.
	NewShotgun(half)
	NewShotgun(ScaledShotgunConfig(1, 8))
	NewShotgun(ScaledShotgunConfig(2, 1))
}

func TestTablePeekDoesNotTouchStats(t *testing.T) {
	tb := NewTable[int](8, 2)
	tb.Insert(0x100, 1)
	tb.Peek(0x100)
	tb.Peek(0x999)
	if tb.Lookups() != 0 || tb.Hits() != 0 {
		t.Fatalf("peek counted: %d/%d", tb.Hits(), tb.Lookups())
	}
	tb.Lookup(0x100)
	tb.ResetStats()
	if tb.Lookups() != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestTableBadGeometryPanics(t *testing.T) {
	for _, g := range []struct{ e, w int }{{0, 1}, {7, 2}, {12, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v accepted", g)
				}
			}()
			NewTable[int](g.e, g.w)
		}()
	}
}

func TestBBBTBRoundTrip(t *testing.T) {
	b := NewBBBTB(64, 2)
	e := BBEntry{Size: 20, Kind: isa.KindCall, BranchPC: 0x110, Target: 0x900}
	b.Insert(0x100, e)
	got, ok := b.Lookup(0x100)
	if !ok || got != e {
		t.Fatalf("lookup = %+v, %v", got, ok)
	}
}

func TestPrefetchBufferCapacity(t *testing.T) {
	pb := NewPrefetchBuffer(2, 1) // 2 sets, 1 way
	br := []isa.Branch{{Offset: 0, Kind: isa.KindJump, Target: 1}}
	// Two blocks mapping to the same set displace each other.
	var inSameSet []isa.BlockID
	for b := isa.BlockID(0); len(inSameSet) < 2; b++ {
		if (uint64(isa.BlockBase(b))>>2)&1 == 0 {
			inSameSet = append(inSameSet, b)
		}
	}
	pb.Fill(inSameSet[0], br)
	pb.Fill(inSameSet[1], br)
	if pb.Contains(inSameSet[0]) {
		t.Fatal("1-way set kept both blocks")
	}
	if !pb.Contains(inSameSet[1]) {
		t.Fatal("newest fill missing")
	}
}
