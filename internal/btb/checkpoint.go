package btb

import (
	"fmt"

	"dnc/internal/checkpoint"
	"dnc/internal/isa"
)

// Snapshot serialises the table's full state. The payload codec enc writes
// one payload value; every BTB organization supplies its own.
func (t *Table[V]) Snapshot(e *checkpoint.Encoder, enc func(*checkpoint.Encoder, V)) {
	e.Begin("table")
	e.Int(t.sets)
	e.Int(t.ways)
	e.U64(t.clock)
	e.U64(t.lookups)
	e.U64(t.hits)
	for i := range t.lines {
		l := &t.lines[i]
		e.U64(uint64(l.key))
		e.Bool(l.valid)
		e.U64(l.lru)
		enc(e, l.val)
	}
	e.End()
}

// Restore loads state written by Snapshot using the matching payload codec.
// Table geometry must match.
func (t *Table[V]) Restore(d *checkpoint.Decoder, dec func(*checkpoint.Decoder) V) error {
	if err := d.Begin("table"); err != nil {
		return err
	}
	sets, ways := d.Int(), d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if sets != t.sets || ways != t.ways {
		return fmt.Errorf("%w: BTB table geometry %dx%d in snapshot, machine has %dx%d",
			checkpoint.ErrCorrupt, sets, ways, t.sets, t.ways)
	}
	t.clock = d.U64()
	t.lookups = d.U64()
	t.hits = d.U64()
	for i := range t.lines {
		l := &t.lines[i]
		l.key = isa.Addr(d.U64())
		l.valid = d.Bool()
		l.lru = d.U64()
		l.val = dec(d)
		if l.valid {
			t.tags[i] = tagKey(l.key)
		} else {
			t.tags[i] = 0
		}
	}
	return d.End()
}

// Payload codecs for the BTB organizations.

// EncodeEntry and DecodeEntry codec a conventional BTB payload.
func EncodeEntry(e *checkpoint.Encoder, v Entry) {
	e.U8(uint8(v.Kind))
	e.U64(uint64(v.Target))
}

// DecodeEntry reverses EncodeEntry.
func DecodeEntry(d *checkpoint.Decoder) Entry {
	return Entry{Kind: isa.Kind(d.U8()), Target: isa.Addr(d.U64())}
}

// EncodeBBEntry and DecodeBBEntry codec a basic-block BTB payload.
func EncodeBBEntry(e *checkpoint.Encoder, v BBEntry) {
	e.U16(v.Size)
	e.U8(uint8(v.Kind))
	e.U64(uint64(v.BranchPC))
	e.U64(uint64(v.Target))
}

// DecodeBBEntry reverses EncodeBBEntry.
func DecodeBBEntry(d *checkpoint.Decoder) BBEntry {
	return BBEntry{
		Size:     d.U16(),
		Kind:     isa.Kind(d.U8()),
		BranchPC: isa.Addr(d.U64()),
		Target:   isa.Addr(d.U64()),
	}
}

// EncodeBranches and DecodeBranches codec a pre-decoded branch list (the
// prefetch buffer payload).
func EncodeBranches(e *checkpoint.Encoder, brs []isa.Branch) {
	e.Int(len(brs))
	for _, br := range brs {
		e.U8(br.Offset)
		e.U8(uint8(br.Kind))
		e.U64(uint64(br.Target))
	}
}

// DecodeBranches reverses EncodeBranches.
func DecodeBranches(d *checkpoint.Decoder) []isa.Branch {
	n := d.Count(10)
	if n == 0 {
		return nil
	}
	brs := make([]isa.Branch, 0, n)
	for i := 0; i < n; i++ {
		brs = append(brs, isa.Branch{
			Offset: d.U8(),
			Kind:   isa.Kind(d.U8()),
			Target: isa.Addr(d.U64()),
		})
	}
	return brs
}

func encodeUBBEntry(e *checkpoint.Encoder, v UBBEntry) {
	EncodeBBEntry(e, v.BB)
	e.U8(v.CallFP.Bits)
	e.U8(v.RetFP.Bits)
	e.Bool(v.HasFP)
}

func decodeUBBEntry(d *checkpoint.Decoder) UBBEntry {
	return UBBEntry{
		BB:     DecodeBBEntry(d),
		CallFP: Footprint{Bits: d.U8()},
		RetFP:  Footprint{Bits: d.U8()},
		HasFP:  d.Bool(),
	}
}

// Snapshot serialises the conventional BTB.
func (b *BTB) Snapshot(e *checkpoint.Encoder) { b.Table.Snapshot(e, EncodeEntry) }

// Restore loads state written by Snapshot.
func (b *BTB) Restore(d *checkpoint.Decoder) error { return b.Table.Restore(d, DecodeEntry) }

// Snapshot serialises the basic-block BTB.
func (b *BBBTB) Snapshot(e *checkpoint.Encoder) { b.Table.Snapshot(e, EncodeBBEntry) }

// Restore loads state written by Snapshot.
func (b *BBBTB) Restore(d *checkpoint.Decoder) error { return b.Table.Restore(d, DecodeBBEntry) }

// Snapshot serialises the prefetch buffer.
func (p *PrefetchBuffer) Snapshot(e *checkpoint.Encoder) { p.table.Snapshot(e, EncodeBranches) }

// Restore loads state written by Snapshot.
func (p *PrefetchBuffer) Restore(d *checkpoint.Decoder) error {
	return p.table.Restore(d, DecodeBranches)
}

// Snapshot serialises all three Shotgun structures and their footprint
// accounting.
func (s *ShotgunBTB) Snapshot(e *checkpoint.Encoder) {
	e.Begin("shotgunbtb")
	s.U.Snapshot(e, encodeUBBEntry)
	s.C.Snapshot(e, EncodeBBEntry)
	s.RIB.Snapshot(e, EncodeBBEntry)
	e.U64(s.ULookups)
	e.U64(s.UFootprintMiss)
	e.U64(s.UEntryMiss)
	e.U64(s.PrefilledNoFP)
	e.End()
}

// Restore loads state written by Snapshot.
func (s *ShotgunBTB) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("shotgunbtb"); err != nil {
		return err
	}
	if err := s.U.Restore(d, decodeUBBEntry); err != nil {
		return err
	}
	if err := s.C.Restore(d, DecodeBBEntry); err != nil {
		return err
	}
	if err := s.RIB.Restore(d, DecodeBBEntry); err != nil {
		return err
	}
	s.ULookups = d.U64()
	s.UFootprintMiss = d.U64()
	s.UEntryMiss = d.U64()
	s.PrefilledNoFP = d.U64()
	return d.End()
}
