package httpx

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// RetryClient posts JSON requests with bounded, equal-jitter retries. It
// exists for the worker plane, where every request is either naturally
// idempotent (register issues a fresh identity, lease and heartbeat renew
// state) or made idempotent by the server's content-addressed admission
// (a completion delivered twice is acknowledged as a duplicate), so blind
// retry on transport errors and retryable status codes is always safe.
//
// Retries cover connection failures and the three status codes that signal
// "try again": 429 (backpressure), 502 and 503 (server restarting or
// draining). Anything else — including 404, which the worker protocol uses
// for "register again" — is returned to the caller immediately.
type RetryClient struct {
	// C is the underlying client; nil means http.DefaultClient.
	C *http.Client
	// Retries is how many times a failed request is retried (total attempts
	// = Retries + 1). Zero means no retries.
	Retries int
	// Backoff is the base delay before the first retry, doubling per
	// attempt up to BackoffMax. Zero takes 100ms / 5s defaults.
	Backoff    time.Duration
	BackoffMax time.Duration
	// Rand and Sleep are test seams: Rand returns [0,1) for the jitter
	// (default math/rand), Sleep waits or returns early with ctx's error
	// (default a timer).
	Rand  func() float64
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when set, observes every retry as it is scheduled, with the
	// status code that caused it (0 = transport error, no response). OnGiveUp
	// observes a retryable failure abandoned because the retry budget ran
	// out, with the final status. Both exist so a metrics layer can count
	// retry pressure per status without wrapping the transport.
	OnRetry  func(status int)
	OnGiveUp func(status int)
}

// retryableStatus reports whether a response status code is worth retrying.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests ||
		code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable
}

// maxRetryBody bounds how much of a response body PostJSON will read; the
// worker protocol's messages are tiny, and a hostile or confused server
// must not be able to balloon the worker's memory.
const maxRetryBody = 16 << 20

// PostJSON posts in as a JSON body to url and decodes the response body
// into out (skipped when out is nil or the body is empty). It returns the
// final attempt's status code; a non-2xx status is also returned as an
// error carrying the response body's leading bytes. Status 0 means no
// attempt produced a response.
func (rc *RetryClient) PostJSON(ctx context.Context, url string, in, out any) (int, error) {
	return rc.PostJSONHeaders(ctx, url, nil, in, out)
}

// PostJSONHeaders is PostJSON with extra request headers on every attempt
// (the worker plane's trace-propagation path: trace, span, and worker IDs
// ride as X-DNC-* headers so server logs stitch to worker attempts).
func (rc *RetryClient) PostJSONHeaders(ctx context.Context, url string, hdr map[string]string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, fmt.Errorf("httpx: encoding request for %s: %w", url, err)
	}
	client := rc.C
	if client == nil {
		client = http.DefaultClient
	}
	rnd := rc.Rand
	if rnd == nil {
		rnd = rand.Float64
	}
	sleep := rc.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	base := rc.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := rc.BackoffMax
	if max <= 0 {
		max = 5 * time.Second
	}

	var lastErr error
	lastStatus := 0
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return 0, fmt.Errorf("httpx: building request for %s: %w", url, err)
		}
		req.Header.Set("Content-Type", "application/json")
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := client.Do(req)
		switch {
		case err != nil:
			lastErr = err
			lastStatus = 0
		default:
			data, readErr := io.ReadAll(io.LimitReader(resp.Body, maxRetryBody))
			resp.Body.Close()
			lastStatus = resp.StatusCode
			if readErr != nil {
				lastErr = fmt.Errorf("httpx: reading response from %s: %w", url, readErr)
			} else if resp.StatusCode/100 != 2 {
				lastErr = fmt.Errorf("httpx: %s: status %d: %s", url, resp.StatusCode, truncate(data, 200))
				if !retryableStatus(resp.StatusCode) {
					return lastStatus, lastErr
				}
			} else {
				if out != nil && len(data) > 0 {
					if err := json.Unmarshal(data, out); err != nil {
						return lastStatus, fmt.Errorf("httpx: decoding response from %s: %w", url, err)
					}
				}
				return lastStatus, nil
			}
		}
		if attempt >= rc.Retries {
			if rc.OnGiveUp != nil {
				rc.OnGiveUp(lastStatus)
			}
			return lastStatus, lastErr
		}
		if rc.OnRetry != nil {
			rc.OnRetry(lastStatus)
		}
		// Equal jitter: half the exponential step fixed, half uniform
		// random, so a fleet of workers retrying after one server restart
		// does not stampede in lockstep.
		d := base << uint(attempt)
		if d > max || d <= 0 {
			d = max
		}
		d = d/2 + time.Duration(rnd()*float64(d/2))
		if err := sleep(ctx, d); err != nil {
			return lastStatus, err
		}
	}
}

// truncate clips b for error messages.
func truncate(b []byte, n int) string {
	if len(b) > n {
		return string(b[:n]) + "..."
	}
	return string(b)
}
