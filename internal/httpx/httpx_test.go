package httpx

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

func TestNewServerAppliesTimeouts(t *testing.T) {
	srv := NewServer(http.NewServeMux())
	if srv.ReadHeaderTimeout != ReadHeaderTimeout {
		t.Fatalf("ReadHeaderTimeout = %v, want %v", srv.ReadHeaderTimeout, ReadHeaderTimeout)
	}
	if srv.IdleTimeout != IdleTimeout {
		t.Fatalf("IdleTimeout = %v, want %v", srv.IdleTimeout, IdleTimeout)
	}
	if srv.WriteTimeout != 0 {
		t.Fatalf("WriteTimeout = %v, want 0 (streaming responses)", srv.WriteTimeout)
	}
}

// TestShutdownBoundedByContext proves a drain cannot hang on a client that
// never finishes reading its response: the context expires and Shutdown
// force-closes the connection instead of waiting forever.
func TestShutdownBoundedByContext(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/hang", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		<-release // hold the request open past the drain deadline
	})
	srv := NewServer(mux)
	go srv.Serve(ln)

	resp, err := http.Get("http://" + ln.Addr().String() + "/hang")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = Shutdown(ctx, srv)
	close(release)
	if err == nil {
		t.Fatal("Shutdown returned nil despite a hung in-flight request")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("Shutdown took %v, want bounded by the 50ms context", took)
	}
}

func TestShutdownCleanWhenIdle(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	srv := NewServer(mux)
	go srv.Serve(ln)
	resp, err := http.Get("http://" + ln.Addr().String() + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := Shutdown(ctx, srv); err != nil {
		t.Fatalf("Shutdown = %v, want nil", err)
	}
}
