package httpx

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler fails the first n requests with code, then succeeds.
func flakyHandler(n int64, code int) (http.HandlerFunc, *atomic.Int64) {
	var seen atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if seen.Add(1) <= n {
			http.Error(w, "not yet", code)
			return
		}
		var in map[string]string
		json.NewDecoder(r.Body).Decode(&in)
		json.NewEncoder(w).Encode(map[string]string{"echo": in["msg"]})
	}, &seen
}

func TestRetryClientRetriesRetryableStatuses(t *testing.T) {
	for _, code := range []int{http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable} {
		h, seen := flakyHandler(2, code)
		srv := httptest.NewServer(h)
		rc := &RetryClient{
			Retries: 3,
			Sleep:   func(context.Context, time.Duration) error { return nil },
		}
		var out map[string]string
		status, err := rc.PostJSON(context.Background(), srv.URL, map[string]string{"msg": "hi"}, &out)
		srv.Close()
		if err != nil || status != http.StatusOK || out["echo"] != "hi" {
			t.Fatalf("code %d: status=%d out=%v err=%v", code, status, out, err)
		}
		if seen.Load() != 3 {
			t.Fatalf("code %d: %d attempts, want 3 (2 failures + success)", code, seen.Load())
		}
	}
}

func TestRetryClientDoesNotRetryTerminalStatuses(t *testing.T) {
	h, seen := flakyHandler(100, http.StatusNotFound)
	srv := httptest.NewServer(h)
	defer srv.Close()
	rc := &RetryClient{
		Retries: 5,
		Sleep:   func(context.Context, time.Duration) error { return nil },
	}
	status, err := rc.PostJSON(context.Background(), srv.URL, map[string]string{}, nil)
	if status != http.StatusNotFound || err == nil {
		t.Fatalf("status=%d err=%v, want 404 with error", status, err)
	}
	if seen.Load() != 1 {
		t.Fatalf("%d attempts on a 404, want 1 (the protocol uses 404 for re-register)", seen.Load())
	}
}

func TestRetryClientRetriesTransportErrors(t *testing.T) {
	h, _ := flakyHandler(0, 0)
	srv := httptest.NewServer(h)
	srv.Close() // connection refused from now on
	rc := &RetryClient{
		Retries: 2,
		Sleep:   func(context.Context, time.Duration) error { return nil },
	}
	status, err := rc.PostJSON(context.Background(), srv.URL, map[string]string{}, nil)
	if status != 0 || err == nil {
		t.Fatalf("status=%d err=%v, want 0 with a transport error after retries", status, err)
	}
}

// TestRetryClientEqualJitterBackoff pins the jitter seam at its extremes:
// the delay before retry k must lie in [step/2, step] of the doubling
// schedule, capped at BackoffMax — the equal-jitter contract.
func TestRetryClientEqualJitterBackoff(t *testing.T) {
	h, _ := flakyHandler(100, http.StatusServiceUnavailable)
	srv := httptest.NewServer(h)
	defer srv.Close()

	run := func(rnd float64) []time.Duration {
		var slept []time.Duration
		rc := &RetryClient{
			Retries:    3,
			Backoff:    100 * time.Millisecond,
			BackoffMax: 250 * time.Millisecond,
			Rand:       func() float64 { return rnd },
			Sleep: func(_ context.Context, d time.Duration) error {
				slept = append(slept, d)
				return nil
			},
		}
		rc.PostJSON(context.Background(), srv.URL, map[string]string{}, nil)
		return slept
	}

	min := run(0) // pure fixed half: step/2 each time
	wantMin := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 125 * time.Millisecond}
	for i, d := range min {
		if d != wantMin[i] {
			t.Fatalf("rnd=0 sleep %d = %v, want %v", i, d, wantMin[i])
		}
	}
	max := run(0.999999)
	steps := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 250 * time.Millisecond}
	for i, d := range max {
		if d < wantMin[i] || d > steps[i] {
			t.Fatalf("rnd≈1 sleep %d = %v outside [%v, %v]", i, d, wantMin[i], steps[i])
		}
	}
}

func TestRetryClientContextCancelDuringBackoff(t *testing.T) {
	h, _ := flakyHandler(100, http.StatusServiceUnavailable)
	srv := httptest.NewServer(h)
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	rc := &RetryClient{
		Retries: 10,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		},
	}
	_, err := rc.PostJSON(ctx, srv.URL, map[string]string{}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRetryClientExhaustionFiresGiveUp pins the observation seams on the
// exhaustion path: every scheduled retry reports the status that caused it,
// and OnGiveUp fires exactly once with the final status when the budget
// runs out. The Sleep seam stands in for the clock — no real waiting.
func TestRetryClientExhaustionFiresGiveUp(t *testing.T) {
	h, seen := flakyHandler(100, http.StatusServiceUnavailable)
	srv := httptest.NewServer(h)
	defer srv.Close()
	var retries, giveUps []int
	rc := &RetryClient{
		Retries:  3,
		Sleep:    func(context.Context, time.Duration) error { return nil },
		OnRetry:  func(status int) { retries = append(retries, status) },
		OnGiveUp: func(status int) { giveUps = append(giveUps, status) },
	}
	status, err := rc.PostJSON(context.Background(), srv.URL, map[string]string{}, nil)
	if status != http.StatusServiceUnavailable || err == nil {
		t.Fatalf("status=%d err=%v, want 503 with error after exhaustion", status, err)
	}
	if seen.Load() != 4 {
		t.Fatalf("%d attempts, want 4 (1 + 3 retries)", seen.Load())
	}
	if len(retries) != 3 {
		t.Fatalf("OnRetry fired %d times, want 3", len(retries))
	}
	for i, s := range retries {
		if s != http.StatusServiceUnavailable {
			t.Fatalf("OnRetry[%d] status = %d, want 503", i, s)
		}
	}
	if len(giveUps) != 1 || giveUps[0] != http.StatusServiceUnavailable {
		t.Fatalf("OnGiveUp = %v, want exactly [503]", giveUps)
	}
}

// TestRetryClientExhaustionTransportStatusZero: transport errors (no
// response at all) report status 0 through both seams.
func TestRetryClientExhaustionTransportStatusZero(t *testing.T) {
	h, _ := flakyHandler(0, 0)
	srv := httptest.NewServer(h)
	srv.Close() // connection refused from now on
	var retries, giveUps []int
	rc := &RetryClient{
		Retries:  2,
		Sleep:    func(context.Context, time.Duration) error { return nil },
		OnRetry:  func(status int) { retries = append(retries, status) },
		OnGiveUp: func(status int) { giveUps = append(giveUps, status) },
	}
	status, err := rc.PostJSON(context.Background(), srv.URL, map[string]string{}, nil)
	if status != 0 || err == nil {
		t.Fatalf("status=%d err=%v, want 0 with transport error", status, err)
	}
	if want := []int{0, 0}; len(retries) != 2 || retries[0] != 0 || retries[1] != 0 {
		t.Fatalf("OnRetry statuses = %v, want %v", retries, want)
	}
	if len(giveUps) != 1 || giveUps[0] != 0 {
		t.Fatalf("OnGiveUp = %v, want exactly [0]", giveUps)
	}
}

// TestRetryClientTerminalStatusSkipsHooks: an immediately-terminal status
// (404) is not a retry and not a give-up — it is the protocol's answer.
func TestRetryClientTerminalStatusSkipsHooks(t *testing.T) {
	h, _ := flakyHandler(100, http.StatusNotFound)
	srv := httptest.NewServer(h)
	defer srv.Close()
	fired := 0
	rc := &RetryClient{
		Retries:  5,
		Sleep:    func(context.Context, time.Duration) error { return nil },
		OnRetry:  func(int) { fired++ },
		OnGiveUp: func(int) { fired++ },
	}
	if status, err := rc.PostJSON(context.Background(), srv.URL, map[string]string{}, nil); status != http.StatusNotFound || err == nil {
		t.Fatalf("status=%d err=%v, want 404 with error", status, err)
	}
	if fired != 0 {
		t.Fatalf("hooks fired %d times on a terminal status, want 0", fired)
	}
}

// TestRetryClientHeadersOnEveryAttempt: PostJSONHeaders resends the extra
// headers (the trace-propagation path) on each attempt, not just the first.
func TestRetryClientHeadersOnEveryAttempt(t *testing.T) {
	var got []string
	var seen atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = append(got, r.Header.Get("X-DNC-Trace-Id"))
		if seen.Add(1) <= 2 {
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	rc := &RetryClient{
		Retries: 3,
		Sleep:   func(context.Context, time.Duration) error { return nil },
	}
	hdr := map[string]string{"X-DNC-Trace-Id": "deadbeefcafef00d"}
	if status, err := rc.PostJSONHeaders(context.Background(), srv.URL, hdr, map[string]string{}, nil); status != http.StatusOK || err != nil {
		t.Fatalf("status=%d err=%v, want 200", status, err)
	}
	if len(got) != 3 {
		t.Fatalf("%d attempts, want 3", len(got))
	}
	for i, v := range got {
		if v != "deadbeefcafef00d" {
			t.Fatalf("attempt %d trace header = %q, want it resent on every attempt", i, v)
		}
	}
}
