package httpx

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler fails the first n requests with code, then succeeds.
func flakyHandler(n int64, code int) (http.HandlerFunc, *atomic.Int64) {
	var seen atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if seen.Add(1) <= n {
			http.Error(w, "not yet", code)
			return
		}
		var in map[string]string
		json.NewDecoder(r.Body).Decode(&in)
		json.NewEncoder(w).Encode(map[string]string{"echo": in["msg"]})
	}, &seen
}

func TestRetryClientRetriesRetryableStatuses(t *testing.T) {
	for _, code := range []int{http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable} {
		h, seen := flakyHandler(2, code)
		srv := httptest.NewServer(h)
		rc := &RetryClient{
			Retries: 3,
			Sleep:   func(context.Context, time.Duration) error { return nil },
		}
		var out map[string]string
		status, err := rc.PostJSON(context.Background(), srv.URL, map[string]string{"msg": "hi"}, &out)
		srv.Close()
		if err != nil || status != http.StatusOK || out["echo"] != "hi" {
			t.Fatalf("code %d: status=%d out=%v err=%v", code, status, out, err)
		}
		if seen.Load() != 3 {
			t.Fatalf("code %d: %d attempts, want 3 (2 failures + success)", code, seen.Load())
		}
	}
}

func TestRetryClientDoesNotRetryTerminalStatuses(t *testing.T) {
	h, seen := flakyHandler(100, http.StatusNotFound)
	srv := httptest.NewServer(h)
	defer srv.Close()
	rc := &RetryClient{
		Retries: 5,
		Sleep:   func(context.Context, time.Duration) error { return nil },
	}
	status, err := rc.PostJSON(context.Background(), srv.URL, map[string]string{}, nil)
	if status != http.StatusNotFound || err == nil {
		t.Fatalf("status=%d err=%v, want 404 with error", status, err)
	}
	if seen.Load() != 1 {
		t.Fatalf("%d attempts on a 404, want 1 (the protocol uses 404 for re-register)", seen.Load())
	}
}

func TestRetryClientRetriesTransportErrors(t *testing.T) {
	h, _ := flakyHandler(0, 0)
	srv := httptest.NewServer(h)
	srv.Close() // connection refused from now on
	rc := &RetryClient{
		Retries: 2,
		Sleep:   func(context.Context, time.Duration) error { return nil },
	}
	status, err := rc.PostJSON(context.Background(), srv.URL, map[string]string{}, nil)
	if status != 0 || err == nil {
		t.Fatalf("status=%d err=%v, want 0 with a transport error after retries", status, err)
	}
}

// TestRetryClientEqualJitterBackoff pins the jitter seam at its extremes:
// the delay before retry k must lie in [step/2, step] of the doubling
// schedule, capped at BackoffMax — the equal-jitter contract.
func TestRetryClientEqualJitterBackoff(t *testing.T) {
	h, _ := flakyHandler(100, http.StatusServiceUnavailable)
	srv := httptest.NewServer(h)
	defer srv.Close()

	run := func(rnd float64) []time.Duration {
		var slept []time.Duration
		rc := &RetryClient{
			Retries:    3,
			Backoff:    100 * time.Millisecond,
			BackoffMax: 250 * time.Millisecond,
			Rand:       func() float64 { return rnd },
			Sleep: func(_ context.Context, d time.Duration) error {
				slept = append(slept, d)
				return nil
			},
		}
		rc.PostJSON(context.Background(), srv.URL, map[string]string{}, nil)
		return slept
	}

	min := run(0) // pure fixed half: step/2 each time
	wantMin := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 125 * time.Millisecond}
	for i, d := range min {
		if d != wantMin[i] {
			t.Fatalf("rnd=0 sleep %d = %v, want %v", i, d, wantMin[i])
		}
	}
	max := run(0.999999)
	steps := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 250 * time.Millisecond}
	for i, d := range max {
		if d < wantMin[i] || d > steps[i] {
			t.Fatalf("rnd≈1 sleep %d = %v outside [%v, %v]", i, d, wantMin[i], steps[i])
		}
	}
}

func TestRetryClientContextCancelDuringBackoff(t *testing.T) {
	h, _ := flakyHandler(100, http.StatusServiceUnavailable)
	srv := httptest.NewServer(h)
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	rc := &RetryClient{
		Retries: 10,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel()
			return ctx.Err()
		},
	}
	_, err := rc.PostJSON(ctx, srv.URL, map[string]string{}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
