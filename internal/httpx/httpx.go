// Package httpx is the hardened http.Server configuration shared by the
// sweep debug endpoint (runner.StartDebug) and the dncserved job service.
// Both serve long-running processes whose exit path is a graceful drain, so
// the server must never let a stalled or hostile client pin a connection
// open indefinitely: headers that never finish arriving and idle keep-alive
// connections both get bounded, and shutdown itself is bounded by a context
// with a hard close as the fallback.
package httpx

import (
	"context"
	"net/http"
	"time"
)

// Server timeouts. WriteTimeout is deliberately absent: the service streams
// unbounded JSONL result sets and pprof profiles over single responses, and
// a fixed write budget would sever legitimate slow readers; handlers bound
// their own lifetime via request/drain contexts instead.
const (
	// ReadHeaderTimeout bounds how long a client may take to send the
	// request header (a slowloris mitigation).
	ReadHeaderTimeout = 10 * time.Second
	// IdleTimeout reclaims keep-alive connections with no in-flight
	// request so they cannot accumulate across a long-lived process.
	IdleTimeout = 120 * time.Second
)

// NewServer returns an http.Server for h with the package's hardened
// timeouts applied.
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: ReadHeaderTimeout,
		IdleTimeout:       IdleTimeout,
	}
}

// Shutdown drains srv gracefully — no new connections, in-flight requests
// allowed to finish — until ctx expires, at which point remaining
// connections are forcibly closed. It therefore always terminates: a client
// that refuses to finish its request delays process exit by at most the
// context bound. The graceful path's error is returned; a forced close
// after an expired context reports the context's error.
func Shutdown(ctx context.Context, srv *http.Server) error {
	err := srv.Shutdown(ctx)
	if err != nil {
		srv.Close()
	}
	return err
}
