package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Begin("outer")
	e.U8(0xAB)
	e.U16(0xBEEF)
	e.U32(0xDEADBEEF)
	e.U64(1 << 60)
	e.I64(-17)
	e.Int(42)
	e.Bool(true)
	e.Bool(false)
	e.Bytes([]byte{1, 2, 3})
	e.String("hello")
	e.Begin("inner")
	e.U64(7)
	e.End()
	e.End()

	d, err := Decode(e.Marshal())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := d.Begin("outer"); err != nil {
		t.Fatalf("Begin(outer): %v", err)
	}
	if got := d.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if got := d.U16(); got != 0xBEEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.I64(); got != -17 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != 42 {
		t.Errorf("Int = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool round-trip failed")
	}
	if got := d.Bytes(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Bytes = %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if err := d.Begin("inner"); err != nil {
		t.Fatalf("Begin(inner): %v", err)
	}
	if got := d.U64(); got != 7 {
		t.Errorf("inner U64 = %d", got)
	}
	if err := d.End(); err != nil {
		t.Fatalf("End(inner): %v", err)
	}
	if err := d.End(); err != nil {
		t.Fatalf("End(outer): %v", err)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
}

func TestStructRoundTrip(t *testing.T) {
	type flat struct {
		A uint64
		B int32
		C [2]uint8
	}
	in := flat{A: 9, B: -3, C: [2]uint8{7, 8}}
	e := NewEncoder()
	e.Struct(&in)
	d, err := Decode(e.Marshal())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	var out flat
	if err := d.Struct(&out); err != nil {
		t.Fatalf("Struct: %v", err)
	}
	if out != in {
		t.Errorf("Struct round-trip = %+v, want %+v", out, in)
	}
}

func TestFramingErrors(t *testing.T) {
	e := NewEncoder()
	e.U64(1234)
	good := e.Marshal()

	if _, err := Decode(good[:5]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short input: err = %v, want ErrTruncated", err)
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := Decode(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrCorrupt", err)
	}
	bad = append([]byte(nil), good...)
	bad[4] = 0xFF // version
	if _, err := Decode(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: err = %v, want ErrVersion", err)
	}
	bad = append([]byte(nil), good...)
	bad[7] ^= 0x01 // payload byte
	if _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
		t.Errorf("flipped payload bit: err = %v, want ErrChecksum", err)
	}
}

func TestDecoderSticky(t *testing.T) {
	e := NewEncoder()
	e.U8(1)
	d, err := Decode(e.Marshal())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	_ = d.U8()
	_ = d.U64() // truncated: only 1 byte of payload
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", d.Err())
	}
	if got := d.U32(); got != 0 {
		t.Errorf("read after error = %d, want 0", got)
	}
}

func TestSectionMisuse(t *testing.T) {
	e := NewEncoder()
	e.Begin("s")
	e.U64(1)
	e.U64(2)
	e.End()
	d, err := Decode(e.Marshal())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := d.Begin("wrong"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong tag: err = %v, want ErrCorrupt", err)
	}

	d, _ = Decode(e.Marshal())
	if err := d.Begin("s"); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	_ = d.U64() // consume only half the section
	if err := d.End(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short consumption: err = %v, want ErrCorrupt", err)
	}
}

func TestCountGuardsAllocation(t *testing.T) {
	e := NewEncoder()
	e.Int(1 << 40) // absurd count with no elements behind it
	d, err := Decode(e.Marshal())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n := d.Count(8); n != 0 {
		t.Errorf("Count = %d, want 0", n)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Errorf("Err = %v, want ErrCorrupt", d.Err())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ckpt")
	e := NewEncoder()
	e.Begin("root")
	e.U64(99)
	e.End()
	if err := WriteFile(path, e); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after WriteFile, want 1", len(entries))
	}
	d, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := d.Begin("root"); err != nil {
		t.Fatal(err)
	}
	if got := d.U64(); got != 99 {
		t.Errorf("payload = %d, want 99", got)
	}
	if err := d.End(); err != nil {
		t.Fatal(err)
	}
}
