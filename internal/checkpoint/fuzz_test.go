package checkpoint

import (
	"testing"
)

// FuzzDecode throws arbitrary bytes at the snapshot decoder: framing and
// section parsing must return typed errors, never panic or over-allocate,
// on any input (`go test -fuzz FuzzDecode ./internal/checkpoint`). In a
// plain `go test` run only the seed corpus executes.
func FuzzDecode(f *testing.F) {
	// Seeds: a valid nested snapshot plus a spread of malformed framings.
	e := NewEncoder()
	e.Begin("machine")
	e.U64(123456)
	e.Begin("core")
	e.Int(3)
	e.U64(1)
	e.U64(2)
	e.U64(3)
	e.String("tag")
	e.Bool(true)
	e.Bytes([]byte{9, 8, 7})
	e.End()
	e.End()
	valid := e.Marshal()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("DNCC"))
	f.Add([]byte("DNCC\x01\x00"))
	f.Add([]byte("DNCC\x01\x00\x00\x00\x00\x00"))
	f.Add([]byte("DNCC\xff\x00\x00\x00\x00\x00"))
	f.Add(valid[:len(valid)-5])
	corrupt := append([]byte(nil), valid...)
	corrupt[8] ^= 0xFF
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		// Walk the input as if restoring: open a section, drain typed reads.
		// Every operation must either succeed within bounds or set a sticky
		// error — the loop is bounded because each iteration consumes at
		// least one byte or errors out.
		if err := d.Begin("machine"); err != nil {
			return
		}
		_ = d.U64()
		if err := d.Begin("core"); err != nil {
			return
		}
		n := d.Count(8)
		for i := 0; i < n; i++ {
			_ = d.U64()
		}
		_ = d.String()
		_ = d.Bool()
		_ = d.Bytes()
		if err := d.End(); err != nil {
			return
		}
		if err := d.End(); err != nil {
			return
		}
		if d.Remaining() < 0 {
			t.Fatalf("decoder ran past its input: %d bytes remaining", d.Remaining())
		}
	})
}
