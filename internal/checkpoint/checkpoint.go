// Package checkpoint implements the versioned, length-prefixed, checksummed
// binary snapshot format used to checkpoint and restore full simulator
// state.
//
// A snapshot file is framed as
//
//	magic  u32  "DNCC"
//	version u16
//	payload (tagged sections)
//	crc32  u32  IEEE, over magic+version+payload
//
// The payload is a sequence of nested sections. A section is a
// length-prefixed, tagged byte range: String(tag) U32(len) <len bytes>.
// Components write their state inside a section via Encoder.Begin/End and
// read it back via Decoder.Begin/End; End on the decoder verifies the
// section was consumed exactly, so a component that reads too little or too
// much fails loudly at the section boundary instead of silently shifting
// every later field.
//
// Decoding is defensive: every read is bounds-checked and malformed input
// yields a typed error (ErrTruncated, ErrCorrupt, ErrVersion, ErrChecksum),
// never a panic — the package has a fuzz target to keep it that way.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Format constants.
const (
	// Magic identifies a snapshot file ("DNCC" little-endian).
	Magic uint32 = 0x43434E44
	// Version is the current snapshot format version. Restore code refuses
	// other versions: snapshots are short-lived artifacts (resume a killed
	// run), not archival, so no cross-version migration is attempted.
	Version uint16 = 1
)

// Typed decode errors. All decoder failures wrap one of these.
var (
	// ErrTruncated means the input ended before a read completed.
	ErrTruncated = errors.New("checkpoint: truncated input")
	// ErrCorrupt means the input is structurally invalid (bad magic, bad
	// section tag, section length mismatch, impossible field value).
	ErrCorrupt = errors.New("checkpoint: corrupt input")
	// ErrVersion means the snapshot was written by an incompatible format
	// version.
	ErrVersion = errors.New("checkpoint: unsupported version")
	// ErrChecksum means the CRC32 trailer does not match the content.
	ErrChecksum = errors.New("checkpoint: checksum mismatch")
)

// Encoder builds a snapshot payload. Methods never fail; the buffer grows
// as needed. The zero value is not usable — use NewEncoder.
type Encoder struct {
	buf      []byte
	sections []int // offsets of open sections' length placeholders
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{buf: make([]byte, 0, 1<<16)} }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes appends a u32 length prefix followed by the raw bytes.
func (e *Encoder) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a u32 length prefix followed by the string bytes.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Begin opens a tagged section. Every Begin must be paired with End.
func (e *Encoder) Begin(tag string) {
	e.String(tag)
	e.sections = append(e.sections, len(e.buf))
	e.U32(0) // length placeholder, patched by End
}

// End closes the innermost open section, patching its length prefix.
func (e *Encoder) End() {
	if len(e.sections) == 0 {
		panic("checkpoint: Encoder.End without Begin")
	}
	at := e.sections[len(e.sections)-1]
	e.sections = e.sections[:len(e.sections)-1]
	binary.LittleEndian.PutUint32(e.buf[at:], uint32(len(e.buf)-at-4))
}

// Struct appends a fixed-layout struct (all fields fixed-size) as a
// length-prefixed blob via encoding/binary. Intended for flat counter
// structs like core.Metrics where field-by-field encoding adds nothing but
// maintenance burden. Panics if v is not a fixed-size value — that is a
// programming error, not an input error.
func (e *Encoder) Struct(v any) {
	var b bytes.Buffer
	if err := binary.Write(&b, binary.LittleEndian, v); err != nil {
		panic(fmt.Sprintf("checkpoint: Encoder.Struct(%T): %v", v, err))
	}
	e.Bytes(b.Bytes())
}

// Marshal frames the payload with magic, version, and CRC32 trailer.
func (e *Encoder) Marshal() []byte {
	if len(e.sections) != 0 {
		panic("checkpoint: Marshal with unclosed section")
	}
	out := make([]byte, 0, len(e.buf)+10)
	out = binary.LittleEndian.AppendUint32(out, Magic)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = append(out, e.buf...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out
}

// Decoder reads a snapshot payload. Errors are sticky: after the first
// failure every read returns the zero value and Err reports the failure, so
// restore code can decode a whole section and check once.
type Decoder struct {
	buf      []byte
	off      int
	sections []int // end offsets of open sections
	err      error
}

// Decode validates the framing (magic, version, checksum) of a marshalled
// snapshot and returns a decoder positioned at the start of the payload.
func Decode(data []byte) (*Decoder, error) {
	if len(data) < 10 { // magic + version + crc
		return nil, fmt.Errorf("%w: %d bytes is smaller than the file framing", ErrTruncated, len(data))
	}
	if m := binary.LittleEndian.Uint32(data); m != Magic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, m)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return nil, fmt.Errorf("%w: snapshot version %d, this build reads version %d", ErrVersion, v, Version)
	}
	body, trailer := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if sum := crc32.ChecksumIEEE(body); sum != trailer {
		return nil, fmt.Errorf("%w: computed %#x, stored %#x", ErrChecksum, sum, trailer)
	}
	return &Decoder{buf: body[6:]}, nil
}

// Err returns the first decode failure, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes in the current section (or
// the whole payload if no section is open).
func (d *Decoder) Remaining() int { return d.limit() - d.off }

func (d *Decoder) limit() int {
	if len(d.sections) > 0 {
		return d.sections[len(d.sections)-1]
	}
	return len(d.buf)
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > d.limit() {
		d.fail(fmt.Errorf("%w: need %d bytes, %d remain", ErrTruncated, n, d.limit()-d.off))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int written by Encoder.Int.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bool reads a boolean. Any byte other than 0 or 1 is corrupt.
func (d *Decoder) Bool() bool {
	switch v := d.U8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("%w: boolean byte %#x", ErrCorrupt, v))
		return false
	}
}

// Bytes reads a u32 length-prefixed byte slice. The length is validated
// against the remaining input before any allocation, so a corrupt length
// cannot force a huge allocation.
func (d *Decoder) Bytes() []byte {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	if n > d.Remaining() {
		d.fail(fmt.Errorf("%w: byte slice of %d bytes, %d remain", ErrTruncated, n, d.Remaining()))
		return nil
	}
	return append([]byte(nil), d.take(n)...)
}

// String reads a u32 length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// Count reads an element count written as Int and validates it against the
// remaining input assuming each element occupies at least elemMin bytes.
// Restore loops use it so a corrupt count cannot drive an unbounded
// allocation or loop.
func (d *Decoder) Count(elemMin int) int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || (elemMin > 0 && n > d.Remaining()/elemMin) {
		d.fail(fmt.Errorf("%w: element count %d exceeds remaining input", ErrCorrupt, n))
		return 0
	}
	return n
}

// Begin opens a section and verifies its tag. The section's length must fit
// inside the enclosing section.
func (d *Decoder) Begin(tag string) error {
	got := d.String()
	if d.err != nil {
		return d.err
	}
	if got != tag {
		d.fail(fmt.Errorf("%w: section tag %q, want %q", ErrCorrupt, got, tag))
		return d.err
	}
	n := int(d.U32())
	if d.err != nil {
		return d.err
	}
	if n > d.Remaining() {
		d.fail(fmt.Errorf("%w: section %q of %d bytes, %d remain", ErrTruncated, tag, n, d.Remaining()))
		return d.err
	}
	d.sections = append(d.sections, d.off+n)
	return nil
}

// End closes the innermost section, verifying it was consumed exactly.
func (d *Decoder) End() error {
	if d.err != nil {
		return d.err
	}
	if len(d.sections) == 0 {
		d.fail(fmt.Errorf("%w: Decoder.End without Begin", ErrCorrupt))
		return d.err
	}
	end := d.sections[len(d.sections)-1]
	d.sections = d.sections[:len(d.sections)-1]
	if d.off != end {
		d.fail(fmt.Errorf("%w: section consumed %d bytes short of its length", ErrCorrupt, end-d.off))
		return d.err
	}
	return nil
}

// Struct reads a fixed-layout struct written by Encoder.Struct into v
// (a pointer). A size mismatch — e.g. the struct gained a field since the
// snapshot was written — is corrupt, not silently misaligned.
func (d *Decoder) Struct(v any) error {
	b := d.Bytes()
	if d.err != nil {
		return d.err
	}
	want := binary.Size(v)
	if want < 0 {
		d.fail(fmt.Errorf("%w: Decoder.Struct(%T) is not fixed-size", ErrCorrupt, v))
		return d.err
	}
	if len(b) != want {
		d.fail(fmt.Errorf("%w: struct blob for %T is %d bytes, want %d", ErrCorrupt, v, len(b), want))
		return d.err
	}
	if err := binary.Read(bytes.NewReader(b), binary.LittleEndian, v); err != nil {
		d.fail(fmt.Errorf("%w: decoding %T: %v", ErrCorrupt, v, err))
	}
	return d.err
}

// WriteFile atomically writes the marshalled snapshot to path: the bytes go
// to a temp file in the same directory, are fsynced, then renamed over the
// destination, so a crash mid-write never leaves a partial snapshot under
// the final name.
func WriteFile(path string, e *Encoder) error {
	data := e.Marshal()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: renaming snapshot into place: %w", err)
	}
	return nil
}

// ReadFile reads and validates a snapshot file.
func ReadFile(path string) (*Decoder, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading %s: %w", path, err)
	}
	d, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}
