// Package bpred implements the branch direction predictors and the return
// address stack used by the core frontend and by BTB-directed prefetch
// engines (which consult the predictor to walk ahead of fetch).
package bpred

import "dnc/internal/isa"

// Predictor predicts conditional branch directions.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc isa.Addr) bool
	// Update trains the predictor with the resolved direction.
	Update(pc isa.Addr, taken bool)
}

// Bimodal is a classic 2-bit saturating counter table.
type Bimodal struct {
	table []uint8
	mask  uint64
}

// NewBimodal returns a bimodal predictor with the given entry count
// (a power of two).
func NewBimodal(entries int) *Bimodal {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: entries must be a positive power of two")
	}
	t := make([]uint8, entries)
	for i := range t {
		t[i] = 2 // weakly taken
	}
	return &Bimodal{table: t, mask: uint64(entries - 1)}
}

func (b *Bimodal) idx(pc isa.Addr) uint64 { return (uint64(pc) >> 2) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc isa.Addr) bool { return b.table[b.idx(pc)] >= 2 }

// Update implements Predictor.
func (b *Bimodal) Update(pc isa.Addr, taken bool) {
	i := b.idx(pc)
	if taken {
		if b.table[i] < 3 {
			b.table[i]++
		}
	} else if b.table[i] > 0 {
		b.table[i]--
	}
}
