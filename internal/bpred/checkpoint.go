package bpred

import (
	"fmt"

	"dnc/internal/checkpoint"
	"dnc/internal/isa"
)

// Snapshot serialises the counter table.
func (b *Bimodal) Snapshot(e *checkpoint.Encoder) {
	e.Begin("bimodal")
	e.Bytes(b.table)
	e.End()
}

// Restore loads state written by Snapshot. The table size must match.
func (b *Bimodal) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("bimodal"); err != nil {
		return err
	}
	t := d.Bytes()
	if err := d.Err(); err != nil {
		return err
	}
	if len(t) != len(b.table) {
		return fmt.Errorf("%w: bimodal table of %d entries in snapshot, machine has %d",
			checkpoint.ErrCorrupt, len(t), len(b.table))
	}
	copy(b.table, t)
	return d.End()
}

// Snapshot serialises the base predictor, every tagged table, and the
// global history register.
func (t *TAGE) Snapshot(e *checkpoint.Encoder) {
	e.Begin("tage")
	t.base.Snapshot(e)
	e.U64(t.hist)
	e.Int(len(t.tables))
	for i := range t.tables {
		tt := &t.tables[i]
		e.Int(len(tt.entries))
		for j := range tt.entries {
			en := &tt.entries[j]
			e.U16(en.tag)
			e.U8(uint8(en.ctr))
			e.U8(en.useful)
		}
	}
	e.End()
}

// Restore loads state written by Snapshot. Table geometry must match.
func (t *TAGE) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("tage"); err != nil {
		return err
	}
	if err := t.base.Restore(d); err != nil {
		return err
	}
	t.hist = d.U64()
	n := d.Count(8)
	if d.Err() == nil && n != len(t.tables) {
		return fmt.Errorf("%w: %d TAGE tables in snapshot, machine has %d",
			checkpoint.ErrCorrupt, n, len(t.tables))
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		tt := &t.tables[i]
		m := d.Count(4)
		if d.Err() == nil && m != len(tt.entries) {
			return fmt.Errorf("%w: TAGE table %d has %d entries in snapshot, machine has %d",
				checkpoint.ErrCorrupt, i, m, len(tt.entries))
		}
		for j := 0; j < m; j++ {
			en := &tt.entries[j]
			en.tag = d.U16()
			en.ctr = int8(d.U8())
			en.useful = d.U8()
		}
	}
	return d.End()
}

// Snapshot serialises the stack contents.
func (r *RAS) Snapshot(e *checkpoint.Encoder) {
	e.Begin("ras")
	e.Int(r.depth)
	e.Int(len(r.stack))
	for _, a := range r.stack {
		e.U64(uint64(a))
	}
	e.End()
}

// Restore loads state written by Snapshot.
func (r *RAS) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("ras"); err != nil {
		return err
	}
	depth := d.Int()
	if d.Err() == nil && depth != r.depth {
		return fmt.Errorf("%w: RAS depth %d in snapshot, machine has %d",
			checkpoint.ErrCorrupt, depth, r.depth)
	}
	n := d.Count(8)
	if d.Err() == nil && n > r.depth {
		return fmt.Errorf("%w: RAS holds %d entries, exceeding its depth %d",
			checkpoint.ErrCorrupt, n, r.depth)
	}
	r.stack = r.stack[:0]
	for i := 0; i < n; i++ {
		r.stack = append(r.stack, isa.Addr(d.U64()))
	}
	return d.End()
}
