package bpred

import (
	"math/rand"
	"testing"

	"dnc/internal/isa"
)

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	pc := isa.Addr(0x1000)
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Fatal("bimodal failed to learn taken bias")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Fatal("bimodal failed to learn not-taken bias")
	}
}

func TestBimodalSaturation(t *testing.T) {
	b := NewBimodal(64)
	pc := isa.Addr(0x40)
	for i := 0; i < 100; i++ {
		b.Update(pc, true)
	}
	// One not-taken must not flip a saturated counter.
	b.Update(pc, false)
	if !b.Predict(pc) {
		t.Fatal("saturated counter flipped after one opposite outcome")
	}
}

func TestBimodalBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBimodal(100)
}

func accuracy(p Predictor, branches []isa.Addr, bias []float64, n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	correct := 0
	for i := 0; i < n; i++ {
		j := rng.Intn(len(branches))
		taken := rng.Float64() < bias[j]
		if p.Predict(branches[j]) == taken {
			correct++
		}
		p.Update(branches[j], taken)
	}
	return float64(correct) / float64(n)
}

func TestTAGEAccuracyOnBiasedBranches(t *testing.T) {
	p := NewTAGE(DefaultTAGEConfig())
	branches := make([]isa.Addr, 200)
	bias := make([]float64, 200)
	rng := rand.New(rand.NewSource(1))
	for i := range branches {
		branches[i] = isa.Addr(0x1000 + i*8)
		if rng.Float64() < 0.85 {
			if rng.Float64() < 0.5 {
				bias[i] = 0.95
			} else {
				bias[i] = 0.05
			}
		} else {
			bias[i] = 0.6
		}
	}
	acc := accuracy(p, branches, bias, 100000, 2)
	if acc < 0.85 {
		t.Errorf("TAGE accuracy %.3f on biased mix, want >= 0.85", acc)
	}
}

func TestTAGELearnsHistoryCorrelation(t *testing.T) {
	// A branch alternating T,N,T,N is fully predictable from one bit of
	// history; bimodal cannot do better than ~50%, TAGE should approach 100%.
	tage := NewTAGE(DefaultTAGEConfig())
	pc := isa.Addr(0x2000)
	correct := 0
	n := 20000
	for i := 0; i < n; i++ {
		taken := i%2 == 0
		if tage.Predict(pc) == taken {
			correct++
		}
		tage.Update(pc, taken)
	}
	acc := float64(correct) / float64(n)
	if acc < 0.95 {
		t.Errorf("TAGE accuracy %.3f on alternating branch, want >= 0.95", acc)
	}
}

func TestTAGEBeatsNoise(t *testing.T) {
	// Purely random branches: accuracy should hover around 0.5, never crash.
	p := NewTAGE(DefaultTAGEConfig())
	branches := []isa.Addr{0x100, 0x200}
	bias := []float64{0.5, 0.5}
	acc := accuracy(p, branches, bias, 20000, 3)
	if acc < 0.4 || acc > 0.6 {
		t.Errorf("accuracy on random branches = %.3f, expected near 0.5", acc)
	}
}

func TestFold(t *testing.T) {
	if fold(0, 16, 8) != 0 {
		t.Error("fold of zero history nonzero")
	}
	// Folding must depend on bits within the length only.
	a := fold(0xFFFF, 8, 8)
	b := fold(0xFF, 8, 8)
	if a != b {
		t.Errorf("fold leaked bits beyond history length: %x vs %x", a, b)
	}
}

func TestRAS(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty RAS succeeded")
	}
	r.Push(0x10)
	r.Push(0x20)
	if v, ok := r.Pop(); !ok || v != 0x20 {
		t.Fatalf("pop = %#x, %v", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 0x10 {
		t.Fatalf("pop = %#x, %v", v, ok)
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // drops 1
	if r.Depth() != 2 {
		t.Fatalf("depth = %d", r.Depth())
	}
	if v, _ := r.Pop(); v != 3 {
		t.Fatalf("top = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Fatalf("next = %d, want 2", v)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("oldest entry should have been dropped")
	}
}

func TestTAGEUncondHistory(t *testing.T) {
	// Folding unconditional targets into history must not corrupt
	// prediction of a perfectly alternating branch.
	p := NewTAGE(DefaultTAGEConfig())
	pc := isa.Addr(0x3000)
	correct, n := 0, 10000
	for i := 0; i < n; i++ {
		taken := i%2 == 0
		if p.Predict(pc) == taken {
			correct++
		}
		p.Update(pc, taken)
		p.UpdateHistoryUncond(isa.Addr(0x8000)) // constant: adds no noise
	}
	if acc := float64(correct) / float64(n); acc < 0.9 {
		t.Errorf("accuracy with uncond history = %.3f", acc)
	}
}

func TestTAGEPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTAGE(TAGEConfig{BaseEntries: 64, TableEntries: 100, HistLens: []uint{8}})
}
