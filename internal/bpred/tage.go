package bpred

import "dnc/internal/isa"

// TAGE is a tagged-geometric-history-length predictor (Seznec & Michaud),
// scaled down: a bimodal base plus four tagged tables whose history lengths
// grow geometrically. It captures the strongly biased, occasionally
// correlated branch behaviour of the synthetic server workloads well enough
// to produce realistic misprediction rates for the timing model.
type TAGE struct {
	base   *Bimodal
	tables []tageTable
	hist   uint64 // global history, newest outcome in bit 0
}

type tageTable struct {
	entries []tageEntry
	mask    uint64
	histLen uint
}

type tageEntry struct {
	tag    uint16
	ctr    int8 // -4..3, taken when >= 0
	useful uint8
}

// TAGEConfig sizes the predictor.
type TAGEConfig struct {
	BaseEntries  int
	TableEntries int
	HistLens     []uint
}

// DefaultTAGEConfig returns a modest TAGE: 4K bimodal + 4 x 1K tagged.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		BaseEntries:  4096,
		TableEntries: 1024,
		HistLens:     []uint{8, 16, 32, 64},
	}
}

// NewTAGE builds the predictor.
func NewTAGE(cfg TAGEConfig) *TAGE {
	if cfg.BaseEntries == 0 {
		cfg = DefaultTAGEConfig()
	}
	t := &TAGE{base: NewBimodal(cfg.BaseEntries)}
	for _, hl := range cfg.HistLens {
		if cfg.TableEntries&(cfg.TableEntries-1) != 0 {
			panic("bpred: table entries must be a power of two")
		}
		t.tables = append(t.tables, tageTable{
			entries: make([]tageEntry, cfg.TableEntries),
			mask:    uint64(cfg.TableEntries - 1),
			histLen: hl,
		})
	}
	return t
}

// fold compresses the low n bits of history into width bits.
func fold(h uint64, n, width uint) uint64 {
	if n < 64 {
		h &= (1 << n) - 1
	}
	var out uint64
	for n > 0 {
		out ^= h & ((1 << width) - 1)
		h >>= width
		if n > width {
			n -= width
		} else {
			n = 0
		}
	}
	return out
}

func (tt *tageTable) index(pc isa.Addr, hist uint64) uint64 {
	return (uint64(pc)>>2 ^ fold(hist, tt.histLen, 10) ^ uint64(pc)>>12) & tt.mask
}

func (tt *tageTable) tag(pc isa.Addr, hist uint64) uint16 {
	return uint16((uint64(pc)>>2 ^ fold(hist, tt.histLen, 8)<<1 ^ uint64(pc)>>9) & 0xFF)
}

// lookup returns the matching provider table index, or -1.
func (t *TAGE) provider(pc isa.Addr) int {
	for i := len(t.tables) - 1; i >= 0; i-- {
		tt := &t.tables[i]
		e := &tt.entries[tt.index(pc, t.hist)]
		if e.tag == tt.tag(pc, t.hist) {
			return i
		}
	}
	return -1
}

// Predict implements Predictor.
func (t *TAGE) Predict(pc isa.Addr) bool {
	if p := t.provider(pc); p >= 0 {
		tt := &t.tables[p]
		return tt.entries[tt.index(pc, t.hist)].ctr >= 0
	}
	return t.base.Predict(pc)
}

// Update implements Predictor. It must be called for every resolved
// conditional branch, in program order.
func (t *TAGE) Update(pc isa.Addr, taken bool) {
	p := t.provider(pc)
	var predicted bool
	if p >= 0 {
		tt := &t.tables[p]
		e := &tt.entries[tt.index(pc, t.hist)]
		predicted = e.ctr >= 0
		if taken {
			if e.ctr < 3 {
				e.ctr++
			}
		} else if e.ctr > -4 {
			e.ctr--
		}
		if predicted == taken && e.useful < 3 {
			e.useful++
		}
	} else {
		predicted = t.base.Predict(pc)
		t.base.Update(pc, taken)
	}

	// On a misprediction, allocate in a longer-history table.
	if predicted != taken {
		t.allocate(pc, taken, p)
	}

	t.hist = t.hist<<1 | b2u(taken)
}

// allocate claims an entry in a table with longer history than the provider.
func (t *TAGE) allocate(pc isa.Addr, taken bool, provider int) {
	for i := provider + 1; i < len(t.tables); i++ {
		tt := &t.tables[i]
		e := &tt.entries[tt.index(pc, t.hist)]
		if e.useful == 0 {
			e.tag = tt.tag(pc, t.hist)
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			return
		}
		e.useful--
	}
}

// UpdateHistoryUncond folds an unconditional transfer into the global
// history (targets decorrelate paths, improving indirect-heavy streams).
func (t *TAGE) UpdateHistoryUncond(target isa.Addr) {
	t.hist = t.hist<<1 | (uint64(target)>>2)&1
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// RAS is a return address stack.
type RAS struct {
	stack []isa.Addr
	depth int
}

// NewRAS returns a stack with the given depth.
func NewRAS(depth int) *RAS {
	return &RAS{depth: depth, stack: make([]isa.Addr, 0, depth)}
}

// Push records a return address at a call; the oldest entry is dropped on
// overflow.
func (r *RAS) Push(ret isa.Addr) {
	if len(r.stack) == r.depth {
		copy(r.stack, r.stack[1:])
		r.stack = r.stack[:len(r.stack)-1]
	}
	r.stack = append(r.stack, ret)
}

// Pop predicts the target of a return; ok is false when the stack is empty.
func (r *RAS) Pop() (isa.Addr, bool) {
	if len(r.stack) == 0 {
		return 0, false
	}
	v := r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	return v, true
}

// Depth returns the current occupancy.
func (r *RAS) Depth() int { return len(r.stack) }
