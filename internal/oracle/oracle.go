// Package oracle is the functional reference model the differential
// validation harness (internal/sim/difftest) checks the timing simulator
// against. The simulator is timing-directed and trace-driven: the committed
// path of every core is fully determined by (program, walker seed), and a
// frontend design may change *when* things happen but never *what* happens.
// The oracle recomputes the architectural ground truth independently — by
// replaying the same seeded walker and nothing else — so any disagreement
// with the timing simulator is a simulator bug by construction.
//
// The model is deliberately trivial: no caches, no pipelines, no designs.
// It produces three reference streams from one walker replay:
//
//   - the retired instruction stream (what every OnRetire must observe),
//   - the demand block-transition sequence — the run-length collapse of
//     BlockOf(PC) over the committed stream (what every OnDemand must
//     observe, one call per transition),
//   - the per-block compulsory (first-touch) classification of each
//     transition as sequential (block == previous block + 1) or
//     discontinuous, which is what the L1i's compulsory misses and the
//     paper's Figure 2 seq/disc split are made of.
//
// Alongside the streams it accumulates architectural counters (retired
// instructions per kind, taken transfers, distinct static branch sites — the
// BTB's compulsory working set) and an order-sensitive FNV-1a digest of the
// retired stream, so two runs can be compared cheaply at checkpoints.
package oracle

import (
	"sort"

	wl "dnc/internal/cfg"
	"dnc/internal/checkpoint"
	"dnc/internal/isa"
)

// Transition is one demand block transition of the committed fetch stream.
type Transition struct {
	// Block is the block fetched into.
	Block isa.BlockID
	// Seq reports a sequential transition: Block == previous block + 1.
	// The first transition of a stream is never sequential.
	Seq bool
	// First reports the first touch of Block in this stream — on a cold
	// cache with no prefetching this transition is a compulsory miss.
	First bool
}

// Counters are the architectural counts of a retired-stream prefix.
type Counters struct {
	Retired      uint64
	CondBranches uint64
	Jumps        uint64
	Calls        uint64
	Returns      uint64
	Indirects    uint64
	Loads        uint64
	Stores       uint64
	// Taken counts retired control transfers that actually transferred
	// (conditional branches that went the taken way, plus executed jumps,
	// calls, returns and indirects; elided deep calls don't count).
	Taken uint64
}

// Model replays one core's committed stream and serves the reference
// streams incrementally, in lockstep with a timing simulation. The retire
// and fetch reference positions advance independently (fetch runs ahead of
// retire by the ROB contents), but both replay the identical walker.
type Model struct {
	prog *wl.Program
	seed int64

	// retire replays the stream at the commit point.
	retire *wl.Walker
	// fetch replays the same stream at the fetch point, collapsed into
	// block transitions through a one-step lookahead.
	fetch    *wl.Walker
	fstep    wl.Step
	fvalid   bool
	prev     isa.BlockID
	havePrev bool

	touched     map[isa.BlockID]struct{}
	branchSites map[isa.Addr]struct{}

	// C accumulates the retired-stream counters.
	C Counters
	// Transitions, FirstTouches, SeqFirst and DiscFirst accumulate the
	// transition-stream statistics; SeqFirst+DiscFirst == FirstTouches.
	Transitions  uint64
	FirstTouches uint64
	SeqFirst     uint64
	DiscFirst    uint64

	digest uint64
}

// FNV-1a parameters for the retired-stream digest.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// New returns a model replaying prog under the given walker seed — the same
// (program, seed) pair a simulated core's stream was built from.
func New(prog *wl.Program, seed int64) *Model {
	return &Model{
		prog:        prog,
		seed:        seed,
		retire:      wl.NewWalker(prog, seed),
		fetch:       wl.NewWalker(prog, seed),
		touched:     make(map[isa.BlockID]struct{}),
		branchSites: make(map[isa.Addr]struct{}),
		digest:      fnvOffset,
	}
}

// Seed returns the walker seed the model replays.
func (m *Model) Seed() int64 { return m.seed }

// NextRetire fills *s with the next committed instruction of the reference
// stream and folds it into the counters and digest.
func (m *Model) NextRetire(s *wl.Step) {
	m.retire.Next(s)
	m.C.Retired++
	switch s.Inst.Kind {
	case isa.KindCondBranch:
		m.C.CondBranches++
	case isa.KindJump:
		m.C.Jumps++
	case isa.KindCall:
		m.C.Calls++
	case isa.KindReturn:
		m.C.Returns++
	case isa.KindIndirect:
		m.C.Indirects++
	case isa.KindLoad:
		m.C.Loads++
	case isa.KindStore:
		m.C.Stores++
	}
	if s.Inst.Kind.IsBranch() {
		m.branchSites[s.Inst.PC] = struct{}{}
		if s.Taken {
			m.C.Taken++
		}
	}
	m.fold(uint64(s.Inst.PC))
	m.fold(uint64(s.Inst.Kind))
	if s.Taken {
		m.fold(1)
	} else {
		m.fold(0)
	}
	m.fold(uint64(s.TargetPC))
}

func (m *Model) fold(v uint64) {
	for i := 0; i < 8; i++ {
		m.digest ^= v & 0xFF
		m.digest *= fnvPrime
		v >>= 8
	}
}

// Digest returns the FNV-1a digest of the retired prefix served so far. It
// is order-sensitive: two streams with equal digests at equal lengths are
// equal with overwhelming probability.
func (m *Model) Digest() uint64 { return m.digest }

// BranchSites returns the number of distinct static branch addresses
// retired so far — the BTB's compulsory working set for this prefix.
func (m *Model) BranchSites() int { return len(m.branchSites) }

// NextTransition consumes committed instructions from the fetch-point
// replay until the block changes, returning the transition the fetch unit
// must perform next. Calling it once per observed OnDemand keeps the model
// in lockstep with the simulated fetch stream.
func (m *Model) NextTransition() Transition {
	for {
		if !m.fvalid {
			m.fetch.Next(&m.fstep)
			m.fvalid = true
		}
		b := isa.BlockOf(m.fstep.Inst.PC)
		if m.havePrev && b == m.prev {
			// Same block: the fetch unit delivers without a new access.
			m.fvalid = false
			continue
		}
		tr := Transition{Block: b, Seq: m.havePrev && b == m.prev+1}
		if _, ok := m.touched[b]; !ok {
			m.touched[b] = struct{}{}
			tr.First = true
			m.FirstTouches++
			if tr.Seq {
				m.SeqFirst++
			} else {
				m.DiscFirst++
			}
		}
		m.Transitions++
		m.prev, m.havePrev = b, true
		// The instruction that crossed the boundary is delivered inside the
		// new block: consume it.
		m.fvalid = false
		return tr
	}
}

// Snapshot serialises the model for checkpointing, so a difftest-shimmed
// run restores the oracle exactly where the interrupted run left it.
// Everything is encoded in deterministic order (sorted sets), keeping
// shimmed snapshots byte-deterministic like the rest of the simulator's.
func (m *Model) Snapshot(e *checkpoint.Encoder) {
	e.Begin("oracle")
	e.I64(m.seed)
	m.retire.Snapshot(e)
	m.fetch.Snapshot(e)
	e.Bool(m.fvalid)
	if m.fvalid {
		encodeStep(e, &m.fstep)
	}
	e.U64(uint64(m.prev))
	e.Bool(m.havePrev)

	e.U64(m.C.Retired)
	e.U64(m.C.CondBranches)
	e.U64(m.C.Jumps)
	e.U64(m.C.Calls)
	e.U64(m.C.Returns)
	e.U64(m.C.Indirects)
	e.U64(m.C.Loads)
	e.U64(m.C.Stores)
	e.U64(m.C.Taken)
	e.U64(m.Transitions)
	e.U64(m.FirstTouches)
	e.U64(m.SeqFirst)
	e.U64(m.DiscFirst)
	e.U64(m.digest)

	touched := make([]isa.BlockID, 0, len(m.touched))
	for b := range m.touched {
		touched = append(touched, b)
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	e.Int(len(touched))
	for _, b := range touched {
		e.U64(uint64(b))
	}

	sites := make([]isa.Addr, 0, len(m.branchSites))
	for pc := range m.branchSites {
		sites = append(sites, pc)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	e.Int(len(sites))
	for _, pc := range sites {
		e.U64(uint64(pc))
	}
	e.End()
}

// Restore loads state written by Snapshot into a model built over the same
// program and seed.
func (m *Model) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("oracle"); err != nil {
		return err
	}
	m.seed = d.I64()
	if err := m.retire.Restore(d); err != nil {
		return err
	}
	if err := m.fetch.Restore(d); err != nil {
		return err
	}
	m.fvalid = d.Bool()
	if m.fvalid {
		decodeStep(d, &m.fstep)
	}
	m.prev = isa.BlockID(d.U64())
	m.havePrev = d.Bool()

	m.C.Retired = d.U64()
	m.C.CondBranches = d.U64()
	m.C.Jumps = d.U64()
	m.C.Calls = d.U64()
	m.C.Returns = d.U64()
	m.C.Indirects = d.U64()
	m.C.Loads = d.U64()
	m.C.Stores = d.U64()
	m.C.Taken = d.U64()
	m.Transitions = d.U64()
	m.FirstTouches = d.U64()
	m.SeqFirst = d.U64()
	m.DiscFirst = d.U64()
	m.digest = d.U64()

	n := d.Count(8)
	m.touched = make(map[isa.BlockID]struct{}, n)
	for i := 0; i < n; i++ {
		m.touched[isa.BlockID(d.U64())] = struct{}{}
	}
	n = d.Count(8)
	m.branchSites = make(map[isa.Addr]struct{}, n)
	for i := 0; i < n; i++ {
		m.branchSites[isa.Addr(d.U64())] = struct{}{}
	}
	return d.End()
}

func encodeStep(e *checkpoint.Encoder, s *wl.Step) {
	e.U64(uint64(s.Inst.PC))
	e.U8(s.Inst.Size)
	e.U8(uint8(s.Inst.Kind))
	e.U64(uint64(s.Inst.Target))
	e.Bool(s.Taken)
	e.U64(uint64(s.NextPC))
	e.U64(uint64(s.TargetPC))
	e.U64(uint64(s.DataAddr))
}

func decodeStep(d *checkpoint.Decoder, s *wl.Step) {
	s.Inst.PC = isa.Addr(d.U64())
	s.Inst.Size = d.U8()
	s.Inst.Kind = isa.Kind(d.U8())
	s.Inst.Target = isa.Addr(d.U64())
	s.Taken = d.Bool()
	s.NextPC = isa.Addr(d.U64())
	s.TargetPC = isa.Addr(d.U64())
	s.DataAddr = isa.Addr(d.U64())
}
