package oracle

import (
	"testing"

	wl "dnc/internal/cfg"
	"dnc/internal/checkpoint"
	"dnc/internal/isa"
)

func testProgram(t *testing.T) *wl.Program {
	t.Helper()
	return wl.Generate(wl.Params{
		Name:           "oracle-test",
		Mode:           isa.Fixed,
		FootprintBytes: 128 << 10,
		GenSeed:        7,
	})
}

func TestDeterministicReplay(t *testing.T) {
	prog := testProgram(t)
	a, b := New(prog, 42), New(prog, 42)
	var sa, sb wl.Step
	for i := 0; i < 5000; i++ {
		a.NextRetire(&sa)
		b.NextRetire(&sb)
		if sa != sb {
			t.Fatalf("step %d: models diverged: %+v vs %+v", i, sa, sb)
		}
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("equal streams, unequal digests: %x vs %x", a.Digest(), b.Digest())
	}
	if a.C != b.C {
		t.Fatalf("equal streams, unequal counters: %+v vs %+v", a.C, b.C)
	}
}

func TestDigestIsOrderSensitive(t *testing.T) {
	prog := testProgram(t)
	a, b := New(prog, 42), New(prog, 43)
	var s wl.Step
	for i := 0; i < 2000; i++ {
		a.NextRetire(&s)
		b.NextRetire(&s)
	}
	if a.Digest() == b.Digest() {
		t.Fatal("different seeds produced the same digest")
	}
}

// TestTransitionsMatchRawStream checks the transition stream against an
// independent run-length collapse of the same walker's raw step stream.
func TestTransitionsMatchRawStream(t *testing.T) {
	prog := testProgram(t)
	m := New(prog, 9)

	// Independent reference: collapse the raw committed stream by hand.
	ref := wl.NewWalker(prog, 9)
	var s wl.Step
	var want []Transition
	touched := map[isa.BlockID]bool{}
	var prev isa.BlockID
	havePrev := false
	for len(want) < 3000 {
		ref.Next(&s)
		b := isa.BlockOf(s.Inst.PC)
		if havePrev && b == prev {
			continue
		}
		tr := Transition{Block: b, Seq: havePrev && b == prev+1, First: !touched[b]}
		touched[b] = true
		want = append(want, tr)
		prev, havePrev = b, true
	}

	for i, w := range want {
		got := m.NextTransition()
		if got != w {
			t.Fatalf("transition %d: got %+v, want %+v", i, got, w)
		}
	}
	if m.Transitions != uint64(len(want)) {
		t.Fatalf("Transitions = %d, want %d", m.Transitions, len(want))
	}
	if m.SeqFirst+m.DiscFirst != m.FirstTouches {
		t.Fatalf("first-touch split %d+%d does not sum to %d",
			m.SeqFirst, m.DiscFirst, m.FirstTouches)
	}
	if uint64(len(touched)) != m.FirstTouches {
		t.Fatalf("FirstTouches = %d, want %d distinct blocks", m.FirstTouches, len(touched))
	}
}

func TestFirstTransitionIsDiscontinuous(t *testing.T) {
	prog := testProgram(t)
	m := New(prog, 3)
	tr := m.NextTransition()
	if tr.Seq || !tr.First {
		t.Fatalf("first transition = %+v, want First && !Seq", tr)
	}
}

func TestCountersClassifyKinds(t *testing.T) {
	prog := testProgram(t)
	m := New(prog, 11)
	var s wl.Step
	var cond, taken uint64
	for i := 0; i < 20000; i++ {
		m.NextRetire(&s)
		if s.Inst.Kind == isa.KindCondBranch {
			cond++
		}
		if s.Inst.Kind.IsBranch() && s.Taken {
			taken++
		}
	}
	if m.C.Retired != 20000 {
		t.Fatalf("Retired = %d", m.C.Retired)
	}
	if m.C.CondBranches != cond {
		t.Fatalf("CondBranches = %d, want %d", m.C.CondBranches, cond)
	}
	if m.C.Taken != taken {
		t.Fatalf("Taken = %d, want %d", m.C.Taken, taken)
	}
	if m.BranchSites() == 0 {
		t.Fatal("no branch sites observed in 20000 instructions")
	}
	sum := m.C.CondBranches + m.C.Jumps + m.C.Calls + m.C.Returns +
		m.C.Indirects + m.C.Loads + m.C.Stores
	if sum > m.C.Retired {
		t.Fatalf("kind counts %d exceed retired %d", sum, m.C.Retired)
	}
}

// TestSnapshotRestoreResumesBothStreams interrupts a model mid-run,
// round-trips it through the checkpoint codec, and checks that the restored
// model continues both reference streams exactly where the original would.
func TestSnapshotRestoreResumesBothStreams(t *testing.T) {
	prog := testProgram(t)
	m := New(prog, 5)
	var s wl.Step
	for i := 0; i < 1234; i++ {
		m.NextRetire(&s)
	}
	for i := 0; i < 456; i++ {
		m.NextTransition()
	}

	e := checkpoint.NewEncoder()
	m.Snapshot(e)
	d, err := checkpoint.Decode(e.Marshal())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	r := New(prog, 5)
	if err := r.Restore(d); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if r.Digest() != m.Digest() || r.C != m.C || r.Transitions != m.Transitions ||
		r.FirstTouches != m.FirstTouches || r.BranchSites() != m.BranchSites() {
		t.Fatal("restored model's accumulated state differs")
	}

	var sm, sr wl.Step
	for i := 0; i < 2000; i++ {
		m.NextRetire(&sm)
		r.NextRetire(&sr)
		if sm != sr {
			t.Fatalf("retire stream diverged %d steps after restore", i)
		}
		if tm, tr := m.NextTransition(), r.NextTransition(); tm != tr {
			t.Fatalf("transition stream diverged %d steps after restore: %+v vs %+v", i, tm, tr)
		}
	}
}

// TestSnapshotDeterministic pins the deterministic (sorted) encoding of the
// model's sets: two identical models snapshot to identical bytes.
func TestSnapshotDeterministic(t *testing.T) {
	prog := testProgram(t)
	enc := func() []byte {
		m := New(prog, 5)
		var s wl.Step
		for i := 0; i < 3000; i++ {
			m.NextRetire(&s)
			m.NextTransition()
		}
		e := checkpoint.NewEncoder()
		m.Snapshot(e)
		return e.Marshal()
	}
	a, b := enc(), enc()
	if string(a) != string(b) {
		t.Fatal("identical models produced different snapshot bytes")
	}
}
