// Package workloads defines the seven server-workload presets of the
// paper's Table IV as calibrated parameter sets for the synthetic workload
// generator. Each preset's knobs were tuned so the measured frontend
// characteristics land in the bands the paper itself reports: multi-megabyte
// instruction footprints, 65-80% sequential L1i misses (Figure 2),
// ~80% same-branch discontinuity predictability (Figure 7), and a spread of
// frontend-bottleneck severity from Web Frontend (mild) to OLTP on DB A
// (the largest footprint, the workload that defeats Shotgun's U-BTB).
package workloads

import (
	wl "dnc/internal/cfg"
	"dnc/internal/isa"
)

// Names of the seven workloads, in the paper's reporting order.
var Names = []string{
	"OLTP-DB-A",
	"OLTP-DB-B",
	"Media-Streaming",
	"Web-Apache",
	"Web-Zeus",
	"Web-Frontend",
	"Web-Search",
}

// Params returns the generator parameters for a named workload in the given
// encoding mode. It panics on unknown names (a harness bug, not user input).
func Params(name string, mode isa.Mode) wl.Params {
	p, ok := byName[name]
	if !ok {
		panic("workloads: unknown workload " + name)
	}
	p.Mode = mode
	return p
}

// All returns every preset in order.
func All(mode isa.Mode) []wl.Params {
	out := make([]wl.Params, 0, len(Names))
	for _, n := range Names {
		out = append(out, Params(n, mode))
	}
	return out
}

var byName = map[string]wl.Params{
	// Oracle on TPC-C: the largest instruction footprint in the suite; deep
	// call chains through database and OS code. The paper reports the
	// highest U-BTB footprint miss ratio (31%) and the biggest win for the
	// proposed design over Shotgun (16%).
	"OLTP-DB-A": {
		Name:               "OLTP-DB-A",
		FootprintBytes:     6 << 20,
		AvgBlockInsts:      6,
		FuncMinBlocks:      4,
		FuncMaxBlocks:      12,
		CondFrac:           0.42,
		JumpFrac:           0.07,
		CallFrac:           0.16,
		IndirectCallFrac:   0.1,
		StableBiasFrac:     0.88,
		TakenBias:          0.985,
		WeakBias:           0.7,
		BackwardFrac:       0.08,
		RareBlockFrac:      0.1,
		RareExecProb:       0.03,
		HotFuncFrac:        0.12,
		HotCallProb:        0.72,
		HotSkew:            0.15,
		MaxCallDepth:       24,
		LoadFrac:           0.24,
		StoreFrac:          0.1,
		DataFootprintBytes: 48 << 20,
		GenSeed:            101,
	},
	// DB2 on TPC-C: a tighter code working set; Shotgun's U-BTB mostly
	// suffices (the paper's Table I shows only 1.6% empty-FTQ stalls).
	"OLTP-DB-B": {
		Name:               "OLTP-DB-B",
		FootprintBytes:     1600 << 10,
		AvgBlockInsts:      7,
		FuncMinBlocks:      4,
		FuncMaxBlocks:      14,
		CondFrac:           0.4,
		JumpFrac:           0.07,
		CallFrac:           0.13,
		IndirectCallFrac:   0.06,
		StableBiasFrac:     0.9,
		TakenBias:          0.99,
		WeakBias:           0.7,
		BackwardFrac:       0.1,
		RareBlockFrac:      0.08,
		RareExecProb:       0.03,
		HotFuncFrac:        0.12,
		HotCallProb:        0.85,
		HotSkew:            0.6,
		MaxCallDepth:       20,
		LoadFrac:           0.24,
		StoreFrac:          0.1,
		DataFootprintBytes: 40 << 20,
		GenSeed:            202,
	},
	// Darwin streaming: long sequential media-handling paths; the highest
	// sequential miss fraction and the biggest absolute speedups.
	"Media-Streaming": {
		Name:               "Media-Streaming",
		FootprintBytes:     4 << 20,
		AvgBlockInsts:      9,
		FuncMinBlocks:      6,
		FuncMaxBlocks:      18,
		CondFrac:           0.36,
		JumpFrac:           0.06,
		CallFrac:           0.13,
		IndirectCallFrac:   0.05,
		StableBiasFrac:     0.92,
		TakenBias:          0.992,
		WeakBias:           0.7,
		BackwardFrac:       0.06,
		RareBlockFrac:      0.07,
		RareExecProb:       0.02,
		HotFuncFrac:        0.1,
		HotCallProb:        0.75,
		HotSkew:            0.5,
		MaxCallDepth:       18,
		LoadFrac:           0.26,
		StoreFrac:          0.08,
		DataFootprintBytes: 64 << 20,
		GenSeed:            303,
	},
	// Apache/SPECweb99: short handler functions and heavy branching; the
	// lowest sequential miss fraction in the suite.
	"Web-Apache": {
		Name:               "Web-Apache",
		FootprintBytes:     3 << 20,
		AvgBlockInsts:      6,
		FuncMinBlocks:      3,
		FuncMaxBlocks:      10,
		CondFrac:           0.44,
		JumpFrac:           0.08,
		CallFrac:           0.16,
		IndirectCallFrac:   0.08,
		StableBiasFrac:     0.88,
		TakenBias:          0.985,
		WeakBias:           0.7,
		BackwardFrac:       0.09,
		RareBlockFrac:      0.11,
		RareExecProb:       0.04,
		HotFuncFrac:        0.12,
		HotCallProb:        0.76,
		HotSkew:            0.35,
		MaxCallDepth:       22,
		LoadFrac:           0.22,
		StoreFrac:          0.1,
		DataFootprintBytes: 32 << 20,
		GenSeed:            404,
	},
	// Zeus/SPECweb99: similar to Apache with a somewhat tighter core loop.
	"Web-Zeus": {
		Name:               "Web-Zeus",
		FootprintBytes:     2500 << 10,
		AvgBlockInsts:      7,
		FuncMinBlocks:      4,
		FuncMaxBlocks:      11,
		CondFrac:           0.43,
		JumpFrac:           0.07,
		CallFrac:           0.15,
		IndirectCallFrac:   0.07,
		StableBiasFrac:     0.88,
		TakenBias:          0.985,
		WeakBias:           0.7,
		BackwardFrac:       0.09,
		RareBlockFrac:      0.1,
		RareExecProb:       0.03,
		HotFuncFrac:        0.12,
		HotCallProb:        0.78,
		HotSkew:            0.4,
		MaxCallDepth:       22,
		LoadFrac:           0.22,
		StoreFrac:          0.1,
		DataFootprintBytes: 32 << 20,
		GenSeed:            505,
	},
	// Nginx+PHP web frontend: the mildest frontend bottleneck in the suite
	// (the paper's smallest speedup, 7%).
	"Web-Frontend": {
		Name:               "Web-Frontend",
		FootprintBytes:     768 << 10,
		AvgBlockInsts:      8,
		FuncMinBlocks:      4,
		FuncMaxBlocks:      12,
		CondFrac:           0.42,
		JumpFrac:           0.07,
		CallFrac:           0.12,
		IndirectCallFrac:   0.08,
		StableBiasFrac:     0.9,
		TakenBias:          0.99,
		WeakBias:           0.7,
		BackwardFrac:       0.12,
		RareBlockFrac:      0.08,
		RareExecProb:       0.03,
		HotFuncFrac:        0.14,
		HotCallProb:        0.9,
		HotSkew:            0.8,
		MaxCallDepth:       18,
		LoadFrac:           0.22,
		StoreFrac:          0.09,
		DataFootprintBytes: 24 << 20,
		GenSeed:            606,
	},
	// Nutch/Lucene search: index-walking code with a moderate footprint.
	"Web-Search": {
		Name:               "Web-Search",
		FootprintBytes:     1300 << 10,
		AvgBlockInsts:      7,
		FuncMinBlocks:      4,
		FuncMaxBlocks:      13,
		CondFrac:           0.42,
		JumpFrac:           0.07,
		CallFrac:           0.13,
		IndirectCallFrac:   0.07,
		StableBiasFrac:     0.9,
		TakenBias:          0.99,
		WeakBias:           0.7,
		BackwardFrac:       0.1,
		RareBlockFrac:      0.08,
		RareExecProb:       0.03,
		HotFuncFrac:        0.12,
		HotCallProb:        0.82,
		HotSkew:            0.5,
		MaxCallDepth:       20,
		LoadFrac:           0.25,
		StoreFrac:          0.09,
		DataFootprintBytes: 40 << 20,
		GenSeed:            707,
	},
}
