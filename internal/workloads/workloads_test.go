package workloads

import (
	"testing"

	"dnc/internal/isa"
)

func TestAllPresetsResolve(t *testing.T) {
	if len(Names) != 7 {
		t.Fatalf("want 7 workloads, have %d", len(Names))
	}
	for _, n := range Names {
		p := Params(n, isa.Fixed)
		if p.Name != n {
			t.Errorf("%s: name mismatch %q", n, p.Name)
		}
		if p.Mode != isa.Fixed {
			t.Errorf("%s: mode not applied", n)
		}
		if p.FootprintBytes < 512<<10 {
			t.Errorf("%s: footprint %d below server scale", n, p.FootprintBytes)
		}
		if p.GenSeed == 0 {
			t.Errorf("%s: no generation seed", n)
		}
	}
	all := All(isa.Variable)
	if len(all) != 7 || all[0].Mode != isa.Variable {
		t.Fatalf("All() wrong: %d entries", len(all))
	}
}

func TestUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown workload did not panic")
		}
	}()
	Params("SPECjbb", isa.Fixed)
}

func TestPresetsAreDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, n := range Names {
		p := Params(n, isa.Fixed)
		if prev, ok := seen[p.GenSeed]; ok {
			t.Errorf("%s and %s share GenSeed %d", n, prev, p.GenSeed)
		}
		seen[p.GenSeed] = n
	}
}

func TestDBAHasTheLargestFootprint(t *testing.T) {
	// The paper's OLTP on DB A is the largest-footprint workload — the one
	// that defeats Shotgun's U-BTB. Keep the calibration honest.
	dba := Params("OLTP-DB-A", isa.Fixed).FootprintBytes
	for _, n := range Names {
		if n == "OLTP-DB-A" {
			continue
		}
		if Params(n, isa.Fixed).FootprintBytes > dba {
			t.Errorf("%s footprint exceeds OLTP-DB-A", n)
		}
	}
}
