package trace

import (
	"fmt"
	"io"

	wl "dnc/internal/cfg"
	"dnc/internal/isa"
)

// Stream replays a recorded trace as a cfg.Stream, so a simulated core can
// run from a trace file instead of a live workload walker. When the trace
// ends the stream rewinds and loops, modelling the steady-state repetition
// of server request processing; Loops counts the wrap-arounds.
type Stream struct {
	src  io.ReadSeeker
	r    *Reader
	skip uint64

	// Records counts instructions replayed; Loops counts rewinds.
	Records uint64
	Loops   uint64
}

// NewStream opens a replay stream over a seekable trace. skip discards that
// many leading records first (used to de-correlate multiple cores replaying
// the same trace).
func NewStream(src io.ReadSeeker, skip uint64) (*Stream, error) {
	s := &Stream{src: src, skip: skip}
	if err := s.rewind(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Stream) rewind() error {
	if _, err := s.src.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("trace: rewind: %w", err)
	}
	r, err := NewReader(s.src)
	if err != nil {
		return err
	}
	s.r = r
	for i := uint64(0); i < s.skip; i++ {
		if _, err := r.Read(); err != nil {
			return fmt.Errorf("trace: skipping %d records: %w", s.skip, err)
		}
	}
	return nil
}

// ReplayError is a mid-replay trace failure (corrupt record, truncated
// file, I/O error, or an empty trace on loop-around). Because cfg.Stream's
// Next cannot return an error, Stream.Next raises it as a panic value; the
// checked run path (sim.RunChecked / sim.RunTraceChecked) recovers it into
// a typed run error instead of letting it kill the process.
type ReplayError struct {
	// Op names the failing operation ("replay", "loop rewind", "empty trace").
	Op  string
	Err error
}

// Error implements error.
func (e *ReplayError) Error() string { return fmt.Sprintf("trace: %s: %v", e.Op, e.Err) }

// Unwrap exposes the underlying I/O or decode error.
func (e *ReplayError) Unwrap() error { return e.Err }

// Next implements cfg.Stream. The stream was validated at construction, so
// mid-replay corruption is an environment error the simulation cannot
// continue through: Next panics with a *ReplayError, which the checked run
// path recovers into an error result.
func (s *Stream) Next(step *wl.Step) {
	rec, err := s.r.Read()
	if err == io.EOF {
		s.Loops++
		// Loop without the skip so every record is replayed.
		skip := s.skip
		s.skip = 0
		rerr := s.rewind()
		s.skip = skip
		if rerr != nil {
			panic(&ReplayError{Op: "loop rewind", Err: rerr})
		}
		rec, err = s.r.Read()
		if err != nil {
			panic(&ReplayError{Op: "empty trace", Err: err})
		}
	} else if err != nil {
		panic(&ReplayError{Op: "replay", Err: err})
	}
	s.Records++
	rec.ToStep(step)
}

// Mode returns the trace's ISA mode.
func (s *Stream) Mode() isa.Mode { return s.r.Mode() }
