package trace

import (
	"bytes"
	"testing"

	"dnc/internal/isa"
)

// FuzzReader throws arbitrary bytes at the trace header/record decoder: it
// must return errors, never panic or loop, on any input (`go test -fuzz
// FuzzReader ./internal/trace`). In a plain `go test` run only the seed
// corpus executes.
func FuzzReader(f *testing.F) {
	// Seeds: a valid fixed-mode trace, a valid variable-mode trace, and a
	// spread of malformed headers/bodies.
	var fixed bytes.Buffer
	if w, err := NewWriter(&fixed, isa.Fixed); err == nil {
		w.Write(Record{PC: 0x1000, Size: isa.FixedSize, Kind: isa.KindALU})
		w.Write(Record{PC: 0x1004, Size: isa.FixedSize, Kind: isa.KindCondBranch,
			Target: 0x2000, Taken: true, TargetPC: 0x2000})
		w.Write(Record{PC: 0x2000, Size: isa.FixedSize, Kind: isa.KindLoad, DataAddr: 0xdead0})
		w.Flush()
	}
	f.Add(fixed.Bytes())
	var variable bytes.Buffer
	if w, err := NewWriter(&variable, isa.Variable); err == nil {
		w.Write(Record{PC: 0x1000, Size: 3, Kind: isa.KindALU})
		w.Flush()
	}
	f.Add(variable.Bytes())
	f.Add([]byte{})
	f.Add([]byte("DNCT"))
	f.Add([]byte("DNCT\x01\x00"))
	f.Add([]byte("DNCT\x01\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("DNCT\x09\x00\x00"))
	f.Add(append(fixed.Bytes(), 0x3f))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Bounded read loop: every record consumes at least its flags byte,
		// so more records than input bytes means the decoder fabricates
		// records out of nothing.
		for i := 0; i <= len(data); i++ {
			if _, err := r.Read(); err != nil {
				return
			}
		}
		t.Fatalf("decoder produced more records than the %d input bytes", len(data))
	})
}
