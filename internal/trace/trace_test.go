package trace

import (
	"bytes"
	"io"
	"testing"

	wl "dnc/internal/cfg"
	"dnc/internal/isa"
)

func TestRoundTrip(t *testing.T) {
	records := []Record{
		{PC: 0x1000, Size: 4, Kind: isa.KindALU},
		{PC: 0x1004, Size: 4, Kind: isa.KindLoad, DataAddr: 0x2_0000_0000},
		{PC: 0x1008, Size: 4, Kind: isa.KindCondBranch, Target: 0x2000, Taken: true, TargetPC: 0x2000},
		{PC: 0x2000, Size: 4, Kind: isa.KindReturn, Taken: true, TargetPC: 0x100C},
		{PC: 0x100C, Size: 4, Kind: isa.KindStore, DataAddr: 0x2_0000_0040},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, isa.Fixed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != uint64(len(records)) {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode() != isa.Fixed {
		t.Fatal("mode lost")
	}
	for i, want := range records {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE00"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("DNCT\x09\x00"))); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("DNCT\x01\x07"))); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestWalkerRoundTripBothModes(t *testing.T) {
	for _, mode := range []isa.Mode{isa.Fixed, isa.Variable} {
		p := wl.Params{
			Name: "trace-test", Mode: mode, FootprintBytes: 128 << 10,
			LoadFrac: 0.2, StoreFrac: 0.1, GenSeed: 3,
		}
		prog := wl.Generate(p)
		walk := wl.NewWalker(prog, 1)

		var buf bytes.Buffer
		w, err := NewWriter(&buf, mode)
		if err != nil {
			t.Fatal(err)
		}
		const n = 50000
		want := make([]Record, n)
		var s wl.Step
		for i := 0; i < n; i++ {
			walk.Next(&s)
			want[i] = FromStep(&s)
			if err := w.Write(want[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}

		bytesPerRecord := float64(buf.Len()) / n
		if bytesPerRecord > 5 {
			t.Errorf("%v: %.2f bytes/record, want compact encoding", mode, bytesPerRecord)
		}

		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			got, err := r.Read()
			if err != nil {
				t.Fatalf("%v: record %d: %v", mode, i, err)
			}
			if got != want[i] {
				t.Fatalf("%v: record %d: got %+v, want %+v", mode, i, got, want[i])
			}
		}
	}
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, isa.Fixed)
	w.Write(Record{PC: 0x1000, Size: 4, Kind: isa.KindALU})
	w.Flush()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("truncated record read successfully")
	}
}

func TestStreamReplayLoops(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, isa.Fixed)
	recs := []Record{
		{PC: 0x1000, Size: 4, Kind: isa.KindALU},
		{PC: 0x1004, Size: 4, Kind: isa.KindCondBranch, Target: 0x2000, Taken: true, TargetPC: 0x2000},
		{PC: 0x2000, Size: 4, Kind: isa.KindReturn, Taken: true, TargetPC: 0x1008},
	}
	for _, r := range recs {
		w.Write(r)
	}
	w.Flush()

	s, err := NewStream(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	var step wl.Step
	for i := 0; i < 7; i++ {
		s.Next(&step)
		want := recs[i%3]
		if step.Inst.PC != want.PC || step.Inst.Kind != want.Kind ||
			step.Taken != want.Taken || step.TargetPC != want.TargetPC ||
			step.Inst.Target != want.Target {
			t.Fatalf("replay %d: got %+v, want %+v", i, step, want)
		}
	}
	if s.Loops != 2 || s.Records != 7 {
		t.Fatalf("loops=%d records=%d", s.Loops, s.Records)
	}
}

func TestStreamSkip(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, isa.Fixed)
	for i := 0; i < 5; i++ {
		w.Write(Record{PC: isa.Addr(0x1000 + 4*i), Size: 4, Kind: isa.KindALU})
	}
	w.Flush()
	s, err := NewStream(bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	var step wl.Step
	s.Next(&step)
	if step.Inst.PC != 0x1008 {
		t.Fatalf("skip ignored: pc=%#x", step.Inst.PC)
	}
	// After looping, replay starts from the first record again.
	for i := 0; i < 3; i++ {
		s.Next(&step)
	}
	if step.Inst.PC != 0x1000 {
		t.Fatalf("loop did not restart at the beginning: pc=%#x", step.Inst.PC)
	}
}

func TestStreamNotTakenBranchKeepsEncodedTarget(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, isa.Fixed)
	w.Write(Record{PC: 0x1000, Size: 4, Kind: isa.KindCondBranch, Target: 0x4000, Taken: false})
	w.Flush()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.Target != 0x4000 || got.TargetPC != 0 || got.Taken {
		t.Fatalf("not-taken branch mangled: %+v", got)
	}
}
