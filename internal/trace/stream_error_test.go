package trace

import (
	"bytes"
	"errors"
	"testing"

	wl "dnc/internal/cfg"
	"dnc/internal/isa"
)

// seekBuffer is an in-memory io.ReadSeeker over a byte slice.
type seekBuffer struct{ *bytes.Reader }

func newSeekBuffer(b []byte) *seekBuffer { return &seekBuffer{bytes.NewReader(b)} }

// buildTrace returns the encoded bytes of n sequential fixed-mode records.
func buildTrace(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, isa.Fixed)
	if err != nil {
		t.Fatal(err)
	}
	pc := isa.Addr(0x1000)
	for i := 0; i < n; i++ {
		if err := w.Write(Record{PC: pc, Size: isa.FixedSize, Kind: isa.KindALU}); err != nil {
			t.Fatal(err)
		}
		pc += isa.Addr(isa.FixedSize)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// mustPanicReplayError runs fn and asserts it panics with a *ReplayError.
func mustPanicReplayError(t *testing.T, fn func()) *ReplayError {
	t.Helper()
	defer func() {
		if recover() != nil {
			t.Fatal("panicked past the outer recover — broken test")
		}
	}()
	var got *ReplayError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("no panic on corrupt replay")
			}
			re, ok := r.(*ReplayError)
			if !ok {
				t.Fatalf("panic value %T, want *ReplayError", r)
			}
			got = re
		}()
		fn()
	}()
	return got
}

func TestStreamCorruptRecordPanicsTyped(t *testing.T) {
	// A stray flags byte with no record body: the decode fails mid-replay.
	data := append(buildTrace(t, 3), 0x01)
	s, err := NewStream(newSeekBuffer(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	var step wl.Step
	for i := 0; i < 3; i++ {
		s.Next(&step)
	}
	re := mustPanicReplayError(t, func() { s.Next(&step) })
	if re.Op != "replay" {
		t.Errorf("op = %q, want replay", re.Op)
	}
	if re.Unwrap() == nil {
		t.Error("no wrapped cause")
	}
	if !errors.As(error(re), new(*ReplayError)) {
		t.Error("errors.As does not match")
	}
}

func TestStreamTruncatedMidRecordPanicsTyped(t *testing.T) {
	data := buildTrace(t, 3)
	s, err := NewStream(newSeekBuffer(data[:len(data)-1]), 0)
	if err != nil {
		t.Fatal(err)
	}
	var step wl.Step
	s.Next(&step)
	s.Next(&step)
	mustPanicReplayError(t, func() { s.Next(&step) })
}

func TestStreamHeaderOnlyTraceIsEmpty(t *testing.T) {
	// A header with zero records loops forever finding nothing: "empty
	// trace" must be a typed panic, not an infinite loop.
	data := buildTrace(t, 0)
	s, err := NewStream(newSeekBuffer(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	var step wl.Step
	re := mustPanicReplayError(t, func() { s.Next(&step) })
	if re.Op != "empty trace" {
		t.Errorf("op = %q, want empty trace", re.Op)
	}
}

func TestStreamSkipPastEndFailsAtConstruction(t *testing.T) {
	if _, err := NewStream(newSeekBuffer(buildTrace(t, 3)), 100); err == nil {
		t.Fatal("skip beyond trace length accepted")
	}
}
