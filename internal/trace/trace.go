// Package trace implements a compact binary format for committed
// instruction traces produced by the synthetic workload walker. Traces let
// external tools consume the exact instruction streams the simulator runs
// (cmd/tracegen writes them), and support trace-driven replay of the
// frontend without regenerating the workload.
//
// Format: a fixed header, then one varint-encoded record per instruction:
//
//	header:  magic "DNCT", version byte, mode byte
//	record:  flags byte
//	         uvarint pc delta (zig-zag from previous record's pc)
//	         size byte (variable mode only)
//	         uvarint target delta (branches with a transfer only)
//	         uvarint data address (memory ops only, delta from previous)
//
// PC deltas are almost always tiny (sequential code), so records average
// roughly two bytes in fixed mode.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	wl "dnc/internal/cfg"
	"dnc/internal/isa"
)

// Record is one committed instruction event.
type Record struct {
	PC   isa.Addr
	Size uint8
	Kind isa.Kind
	// Target is the encoded target of direct branches (known even when the
	// branch is not taken; replay needs it to train BTBs).
	Target   isa.Addr
	Taken    bool
	TargetPC isa.Addr
	DataAddr isa.Addr
}

// FromStep converts a walker step.
func FromStep(s *wl.Step) Record {
	return Record{
		PC:       s.Inst.PC,
		Size:     s.Inst.Size,
		Kind:     s.Inst.Kind,
		Target:   s.Inst.Target,
		Taken:    s.Taken,
		TargetPC: s.TargetPC,
		DataAddr: s.DataAddr,
	}
}

// ToStep converts a record back into a walker step for replay.
func (r Record) ToStep(s *wl.Step) {
	*s = wl.Step{
		Inst: isa.Inst{
			PC:     r.PC,
			Size:   r.Size,
			Kind:   r.Kind,
			Target: r.Target,
		},
		Taken:    r.Taken,
		TargetPC: r.TargetPC,
		DataAddr: r.DataAddr,
	}
}

const (
	magic   = "DNCT"
	version = 1
)

// Flag bits in the record header byte: kind in the low 3 bits.
const (
	flagTaken   = 1 << 3
	flagHasData = 1 << 4
	flagHasTgt  = 1 << 5
)

// Writer streams records to an io.Writer.
type Writer struct {
	w        *bufio.Writer
	mode     isa.Mode
	prevPC   isa.Addr
	prevData isa.Addr
	buf      [binary.MaxVarintLen64]byte
	n        uint64
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer, mode isa.Mode) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(byte(mode)); err != nil {
		return nil, err
	}
	return &Writer{w: bw, mode: mode}, nil
}

func (w *Writer) putVarint(v int64) error {
	n := binary.PutVarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

func (w *Writer) putUvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	flags := byte(r.Kind) & 0x7
	if r.Taken {
		flags |= flagTaken
	}
	if r.DataAddr != 0 {
		flags |= flagHasData
	}
	wireTarget := r.Target
	if !r.Kind.HasEncodedTarget() {
		wireTarget = r.TargetPC
	}
	if wireTarget != 0 {
		flags |= flagHasTgt
	}
	if err := w.w.WriteByte(flags); err != nil {
		return err
	}
	if err := w.putVarint(int64(r.PC) - int64(w.prevPC)); err != nil {
		return err
	}
	w.prevPC = r.PC
	if w.mode == isa.Variable {
		if err := w.w.WriteByte(r.Size); err != nil {
			return err
		}
	}
	if flags&flagHasTgt != 0 {
		if err := w.putVarint(int64(wireTarget) - int64(r.PC)); err != nil {
			return err
		}
	}
	if flags&flagHasData != 0 {
		if err := w.putVarint(int64(r.DataAddr) - int64(w.prevData)); err != nil {
			return err
		}
		w.prevData = r.DataAddr
	}
	w.n++
	return nil
}

// Count returns records written.
func (w *Writer) Count() uint64 { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams records from an io.Reader.
type Reader struct {
	r        *bufio.Reader
	mode     isa.Mode
	prevPC   isa.Addr
	prevData isa.Addr
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, errors.New("trace: bad magic")
	}
	if head[len(magic)] != version {
		return nil, fmt.Errorf("trace: unsupported version %d", head[len(magic)])
	}
	mode := isa.Mode(head[len(magic)+1])
	if mode != isa.Fixed && mode != isa.Variable {
		return nil, fmt.Errorf("trace: bad mode %d", mode)
	}
	return &Reader{r: br, mode: mode}, nil
}

// Mode returns the trace's encoding mode.
func (r *Reader) Mode() isa.Mode { return r.mode }

// Read returns the next record, or io.EOF at end of trace.
func (r *Reader) Read() (Record, error) {
	flags, err := r.r.ReadByte()
	if err != nil {
		return Record{}, err
	}
	var rec Record
	rec.Kind = isa.Kind(flags & 0x7)
	rec.Taken = flags&flagTaken != 0
	d, err := binary.ReadVarint(r.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: pc delta: %w", err)
	}
	rec.PC = isa.Addr(int64(r.prevPC) + d)
	r.prevPC = rec.PC
	if r.mode == isa.Variable {
		sz, err := r.r.ReadByte()
		if err != nil {
			return Record{}, fmt.Errorf("trace: size: %w", err)
		}
		rec.Size = sz
	} else {
		rec.Size = isa.FixedSize
	}
	if flags&flagHasTgt != 0 {
		td, err := binary.ReadVarint(r.r)
		if err != nil {
			return Record{}, fmt.Errorf("trace: target delta: %w", err)
		}
		wireTarget := isa.Addr(int64(rec.PC) + td)
		if rec.Kind.HasEncodedTarget() {
			rec.Target = wireTarget
			if rec.Taken {
				rec.TargetPC = wireTarget
			}
		} else {
			rec.TargetPC = wireTarget
		}
	}
	if flags&flagHasData != 0 {
		dd, err := binary.ReadVarint(r.r)
		if err != nil {
			return Record{}, fmt.Errorf("trace: data delta: %w", err)
		}
		rec.DataAddr = isa.Addr(int64(r.prevData) + dd)
		r.prevData = rec.DataAddr
	}
	return rec, nil
}
