// Package bench implements the paper's evaluation: one function per table
// and figure, each regenerating the corresponding rows/series from
// simulation. The benchmark harness (bench_test.go) and the dncbench
// command both drive this package.
//
// Runs are cached inside a Harness keyed by (workload, design, options), so
// experiments that share configurations (the baseline above all) pay for
// them once.
package bench

import (
	"fmt"
	"sync"

	"dnc/internal/core"
	"dnc/internal/isa"
	"dnc/internal/llc"
	"dnc/internal/prefetch"
	"dnc/internal/sim"
	"dnc/internal/workloads"
)

// Config scales the experiments.
type Config struct {
	Cores         int
	WarmCycles    uint64
	MeasureCycles uint64
	// Workloads restricts the workload set (nil = all seven).
	Workloads []string
	Seed      int64
	// Samples pools this many independently seeded runs per configuration
	// (the SimFlex-style sampling of the paper's methodology). Default 1.
	Samples int
}

// Quick returns a reduced configuration for fast iteration and the default
// benchmark run: the paper's 16-core CMP (shared-fabric contention needs
// all tiles) with shortened warm-up and measurement windows.
func Quick() Config {
	return Config{Cores: 16, WarmCycles: 100_000, MeasureCycles: 80_000, Seed: 1}
}

// Paper returns the paper-scale configuration: 16 cores, 200K warm-up and
// 200K measurement cycles.
func Paper() Config {
	return Config{Cores: 16, WarmCycles: 200_000, MeasureCycles: 200_000, Seed: 1}
}

// Harness caches simulation runs across experiments.
type Harness struct {
	cfg   Config
	mu    sync.Mutex
	cache map[string]sim.Result
}

// New returns a harness for the configuration.
func New(cfg Config) *Harness {
	if cfg.Cores == 0 {
		cfg = Quick()
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = workloads.Names
	}
	return &Harness{cfg: cfg, cache: make(map[string]sim.Result)}
}

// Config returns the harness configuration.
func (h *Harness) Config() Config { return h.cfg }

// Workloads returns the active workload names.
func (h *Harness) Workloads() []string { return h.cfg.Workloads }

// runOpts adjusts a run beyond the design choice.
type runOpts struct {
	pfbEntries int
	perfectL1i bool
	perfectBTB bool
	mode       isa.Mode
	llcCfg     *llc.Config
}

// run executes (or returns the cached) simulation of one workload/design.
func (h *Harness) run(workload, key string, nd func() prefetch.Design, o runOpts) sim.Result {
	ck := fmt.Sprintf("%s|%s|%+v", workload, key, o)
	h.mu.Lock()
	if r, ok := h.cache[ck]; ok {
		h.mu.Unlock()
		return r
	}
	h.mu.Unlock()

	cc := core.DefaultConfig()
	cc.PrefetchBufferEntries = o.pfbEntries
	cc.PerfectL1i = o.perfectL1i
	cc.PerfectBTB = o.perfectBTB
	rc := sim.RunConfig{
		Workload:      workloads.Params(workload, o.mode),
		NewDesign:     nd,
		Cores:         h.cfg.Cores,
		WarmCycles:    h.cfg.WarmCycles,
		MeasureCycles: h.cfg.MeasureCycles,
		Seed:          h.cfg.Seed,
		Core:          cc,
	}
	if o.llcCfg != nil {
		rc.LLC = *o.llcCfg
	}
	samples := h.cfg.Samples
	if samples < 1 {
		samples = 1
	}
	r := sim.Run(rc)
	for s := 1; s < samples; s++ {
		rc.Seed = h.cfg.Seed + int64(s)*7919
		extra := sim.Run(rc)
		// Pool the independently seeded samples: counters add, so every
		// derived ratio becomes the pooled estimate.
		r.M.Add(&extra.M)
		r.PerCore = append(r.PerCore, extra.PerCore...)
	}
	h.mu.Lock()
	h.cache[ck] = r
	h.mu.Unlock()
	return r
}

// Canonical design constructors.

func newBaseline() prefetch.Design { return prefetch.NewBaseline(2048) }

func newNXL(depth int) func() prefetch.Design {
	return func() prefetch.Design { return prefetch.NewNXL(depth, 2048) }
}

func newSN4L() prefetch.Design { return prefetch.NewSN4L(16<<10, 2048) }

func newDis() prefetch.Design { return prefetch.NewDis(4<<10, 4, 2048) }

func newSN4LDis() prefetch.Design {
	return prefetch.NewProactive(prefetch.DefaultProactiveConfig())
}

func newFull() prefetch.Design {
	c := prefetch.DefaultProactiveConfig()
	c.WithBTBPrefetch = true
	return prefetch.NewProactive(c)
}

func newConfluence() prefetch.Design {
	return prefetch.NewConfluence(prefetch.DefaultConfluenceConfig())
}

func newBoomerang() prefetch.Design {
	return prefetch.NewBoomerang(prefetch.DefaultBoomerangConfig())
}

func newShotgun() prefetch.Design {
	return prefetch.NewShotgun(prefetch.DefaultShotgunDesignConfig())
}

// Baseline returns the cached no-prefetch run of a workload.
func (h *Harness) Baseline(workload string) sim.Result {
	return h.run(workload, "baseline", newBaseline, runOpts{})
}

// Full returns the cached SN4L+Dis+BTB run of a workload.
func (h *Harness) Full(workload string) sim.Result {
	return h.run(workload, "full", newFull, runOpts{})
}

// Shotgun returns the cached Shotgun run of a workload (with its 64-entry
// L1i prefetch buffer).
func (h *Harness) Shotgun(workload string) sim.Result {
	return h.run(workload, "shotgun", newShotgun, runOpts{pfbEntries: 64})
}

// Confluence returns the cached Confluence run of a workload.
func (h *Harness) Confluence(workload string) sim.Result {
	return h.run(workload, "confluence", newConfluence, runOpts{})
}

// mean averages a slice.
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
