// Package bench implements the paper's evaluation: one function per table
// and figure, each regenerating the corresponding rows/series from
// simulation. The benchmark harness (bench_test.go) and the dncbench
// command both drive this package.
//
// Runs are cached inside a Harness keyed by (workload, design, options), so
// experiments that share configurations (the baseline above all) pay for
// them once.
package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"dnc/internal/core"
	"dnc/internal/isa"
	"dnc/internal/llc"
	"dnc/internal/obs"
	"dnc/internal/prefetch"
	"dnc/internal/resultstore"
	"dnc/internal/sim"
	"dnc/internal/sim/runner"
	"dnc/internal/workloads"
)

// Config scales the experiments.
type Config struct {
	Cores         int
	WarmCycles    uint64
	MeasureCycles uint64
	// Workloads restricts the workload set (nil = all seven).
	Workloads []string
	Seed      int64
	// Samples pools this many independently seeded runs per configuration
	// (the SimFlex-style sampling of the paper's methodology). Default 1.
	Samples int
	// Jobs bounds concurrently executing simulations within one pooled
	// configuration or prewarm sweep (0 = GOMAXPROCS).
	Jobs int
	// Timeout aborts any single simulation exceeding it (0 = none). The
	// failure is recorded on the harness (Err) and the affected rows read
	// zero; the remaining experiments continue.
	Timeout time.Duration
	// CheckpointDir, when non-empty, snapshots every simulation mid-run into
	// this directory so an interrupted benchmark resumes partially finished
	// runs from their last snapshot instead of restarting them (see
	// runner.Options.CheckpointDir).
	CheckpointDir string
	// CheckpointEvery is the snapshot cadence in simulated cycles under
	// CheckpointDir (0 = runner.DefaultCheckpointEvery).
	CheckpointEvery uint64
	// ProgressOut, when non-nil, receives a throttled one-line sweep summary
	// (cells done/failed/retried, rate, ETA) roughly every two seconds —
	// dncbench points it at stderr so long runs are visibly alive.
	ProgressOut io.Writer
	// Progress, when set, tracks every sweep the harness runs (live source
	// for runner.StartDebug). New allocates one when ProgressOut is set.
	Progress *runner.Progress
	// StorePath, when non-empty, appends every completed cell to this
	// columnar result store (internal/resultstore) as it finishes, and
	// turns on per-run series sampling so IPC-over-time and the occupancy
	// gauges ride along. This is dncbench's -store-out flag; seal the file
	// with Harness.CloseStore when the experiments are done.
	StorePath string
	// Sched selects the engine for every simulation of the benchmark (the
	// event-driven wheel by default; the tick reference for engine
	// debugging). All engines are bit-exact, so this changes wall-clock
	// only. This is dncbench's -sched flag.
	Sched sim.SchedMode
	// IntraJobs shards the cores of each single simulation across this many
	// goroutines (dncbench's -intra-jobs flag; see sim.RunConfig.IntraJobs).
	// Useful when the sweep has fewer cells than the machine has CPUs.
	IntraJobs int
}

// Quick returns a reduced configuration for fast iteration and the default
// benchmark run: the paper's 16-core CMP (shared-fabric contention needs
// all tiles) with shortened warm-up and measurement windows.
func Quick() Config {
	return Config{Cores: 16, WarmCycles: 100_000, MeasureCycles: 80_000, Seed: 1}
}

// Paper returns the paper-scale configuration: 16 cores, 200K warm-up and
// 200K measurement cycles.
func Paper() Config {
	return Config{Cores: 16, WarmCycles: 200_000, MeasureCycles: 200_000, Seed: 1}
}

// Harness caches simulation runs across experiments. Runs execute through
// the fault-tolerant runner.Sweep pool: a panicking or livelocked
// configuration is recorded as a failure (Err) instead of killing the whole
// benchmark, and its derived rows read zero.
type Harness struct {
	cfg   Config
	ctx   context.Context
	mu    sync.Mutex
	cache map[string]sim.Result
	errs  []error
	// lastPrint throttles the ProgressOut summary line (guarded by mu).
	lastPrint time.Time
	// store receives every completed cell when Config.StorePath is set;
	// storeTags maps runner cell IDs to their identity tags (guarded by mu,
	// as are store appends — the Writer is not concurrency-safe).
	store     *resultstore.Writer
	storeTags map[string]resultstore.Cell
}

// New returns a harness for the configuration.
func New(cfg Config) *Harness {
	if cfg.Cores == 0 {
		c := Quick()
		c.ProgressOut, c.Progress, c.StorePath = cfg.ProgressOut, cfg.Progress, cfg.StorePath
		cfg = c
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = workloads.Names
	}
	if cfg.ProgressOut != nil && cfg.Progress == nil {
		cfg.Progress = runner.NewProgress()
	}
	h := &Harness{cfg: cfg, ctx: context.Background(), cache: make(map[string]sim.Result)}
	if cfg.StorePath != "" {
		w, err := resultstore.OpenWriter(cfg.StorePath)
		if err != nil {
			h.fail(fmt.Errorf("bench: opening result store: %w", err))
		} else {
			h.store = w
			h.storeTags = make(map[string]resultstore.Cell)
		}
	}
	return h
}

// progressInterval is how often the ProgressOut summary line refreshes.
const progressInterval = 2 * time.Second

// onResult returns the sweep observer feeding ProgressOut and the column
// store, or nil when both are off. Sweep serializes OnResult calls, but
// several harness sweeps may run concurrently, so both sinks take the
// mutex.
func (h *Harness) onResult() func(runner.CellResult) {
	if h.cfg.ProgressOut == nil && h.store == nil {
		return nil
	}
	return func(cr runner.CellResult) {
		h.storeResult(cr)
		if h.cfg.ProgressOut == nil {
			return
		}
		h.mu.Lock()
		due := time.Since(h.lastPrint) >= progressInterval
		if due {
			h.lastPrint = time.Now()
		}
		h.mu.Unlock()
		if due {
			fmt.Fprintf(h.cfg.ProgressOut, "bench: %s\n", h.cfg.Progress.Snapshot())
		}
	}
}

// storeResult appends one finished cell (scalars, histograms, sampled
// series) to the column store. Journal-resumed cells pass through too —
// their restored ResultJSON carries everything the store needs — and the
// writer's first-insert-wins key dedup drops re-observations.
func (h *Harness) storeResult(cr runner.CellResult) {
	if h.store == nil || (cr.Status != runner.StatusOK && cr.Status != runner.StatusResumed) {
		return
	}
	h.mu.Lock()
	c, ok := h.storeTags[cr.ID]
	h.mu.Unlock()
	if !ok {
		return
	}
	c.SetResult(runner.NewResultJSON(cr.Result))
	h.mu.Lock()
	_, err := h.store.Append(c)
	h.mu.Unlock()
	if err != nil {
		h.fail(fmt.Errorf("bench: store append %s: %w", cr.ID, err))
	}
}

// CloseStore seals and closes the column store, returning how many cells
// it holds. A no-op (0, nil) when Config.StorePath was empty.
func (h *Harness) CloseStore() (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.store == nil {
		return 0, nil
	}
	n := h.store.Len()
	err := h.store.Close()
	h.store = nil
	return n, err
}

// SetContext installs a context that cancels the harness's in-flight
// simulations (e.g. on SIGINT). Call before running experiments.
func (h *Harness) SetContext(ctx context.Context) {
	if ctx != nil {
		h.ctx = ctx
	}
}

// Config returns the harness configuration.
func (h *Harness) Config() Config { return h.cfg }

// Workloads returns the active workload names.
func (h *Harness) Workloads() []string { return h.cfg.Workloads }

// Err returns the accumulated simulation failures, if any. Experiments keep
// going past a failed configuration; callers check Err once at the end for
// a non-zero exit.
func (h *Harness) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return errors.Join(h.errs...)
}

func (h *Harness) fail(err error) {
	h.mu.Lock()
	h.errs = append(h.errs, err)
	h.mu.Unlock()
}

// runOpts adjusts a run beyond the design choice.
type runOpts struct {
	pfbEntries int
	perfectL1i bool
	perfectBTB bool
	mode       isa.Mode
	llcCfg     *llc.Config
}

// run executes (or returns the cached) simulation of one workload/design.
// The samples of one configuration fan out across the runner pool; any
// failure is recorded on the harness and a zero Result returned, so the
// experiment's remaining rows still render.
func (h *Harness) run(workload, key string, nd func() prefetch.Design, o runOpts) sim.Result {
	ck := fmt.Sprintf("%s|%s|%+v", workload, key, o)
	h.mu.Lock()
	if r, ok := h.cache[ck]; ok {
		h.mu.Unlock()
		return r
	}
	h.mu.Unlock()

	rep, err := runner.Sweep(h.ctx, h.cells(ck, workload, key, nd, o), runner.Options{
		Jobs:            h.cfg.Jobs,
		Timeout:         h.cfg.Timeout,
		CheckpointDir:   h.cfg.CheckpointDir,
		CheckpointEvery: h.cfg.CheckpointEvery,
		Progress:        h.cfg.Progress,
		OnResult:        h.onResult(),
	})
	if err == nil {
		err = rep.FirstErr()
	}
	if err != nil {
		h.fail(fmt.Errorf("bench %s: %w", ck, err))
		return sim.Result{}
	}
	r := poolSamples(rep.Cells)
	h.mu.Lock()
	h.cache[ck] = r
	h.mu.Unlock()
	return r
}

// cells expands one configuration into its sample cells: sample s runs with
// seed Seed + s*7919, and the cell IDs are stable across processes so a
// journaled sweep can resume. With a store open, each cell's identity tags
// are recorded so storeResult can label it when it finishes.
func (h *Harness) cells(ck, workload, key string, nd func() prefetch.Design, o runOpts) []runner.Cell {
	samples := h.cfg.Samples
	if samples < 1 {
		samples = 1
	}
	cells := make([]runner.Cell, samples)
	for s := 0; s < samples; s++ {
		rc := h.runConfig(workload, nd, o)
		if s > 0 {
			rc.Seed = h.cfg.Seed + int64(s)*7919
		}
		cells[s] = runner.Cell{
			ID: fmt.Sprintf("%s|c%d|w%d|m%d|s%d|x%d", ck,
				h.cfg.Cores, h.cfg.WarmCycles, h.cfg.MeasureCycles, h.cfg.Seed, s),
			Config: rc,
		}
		if h.store != nil {
			h.mu.Lock()
			h.storeTags[cells[s].ID] = resultstore.Cell{
				Workload: workload,
				Design:   storeDesign(key, o),
				Mode:     modeName(o.mode),
				Cores:    h.cfg.Cores,
				Warm:     h.cfg.WarmCycles,
				Measure:  h.cfg.MeasureCycles,
				Seed:     rc.Seed,
			}
			h.mu.Unlock()
		}
	}
	return cells
}

// storeDesign is the design tag a cell carries in the column store: the
// short design key alone for a plain run, or the key plus the option tweaks
// for variants (perfect L1i, LLC overrides, ...). The llc config is
// dereferenced so the tag is a stable value, not a pointer address.
func storeDesign(key string, o runOpts) string {
	if o == (runOpts{mode: o.mode}) { // mode rides in its own tag
		return key
	}
	v := struct {
		pfbEntries int
		perfectL1i bool
		perfectBTB bool
		llcCfg     llc.Config
	}{o.pfbEntries, o.perfectL1i, o.perfectBTB, llc.Config{}}
	if o.llcCfg != nil {
		v.llcCfg = *o.llcCfg
	}
	return fmt.Sprintf("%s#%+v", key, v)
}

// modeName renders the isa dispatch mode as the store's tag vocabulary.
func modeName(m isa.Mode) string {
	if m == isa.Variable {
		return "variable"
	}
	return "fixed"
}

func (h *Harness) runConfig(workload string, nd func() prefetch.Design, o runOpts) sim.RunConfig {
	cc := core.DefaultConfig()
	cc.PrefetchBufferEntries = o.pfbEntries
	cc.PerfectL1i = o.perfectL1i
	cc.PerfectBTB = o.perfectBTB
	rc := sim.RunConfig{
		Workload:      workloads.Params(workload, o.mode),
		NewDesign:     nd,
		Cores:         h.cfg.Cores,
		WarmCycles:    h.cfg.WarmCycles,
		MeasureCycles: h.cfg.MeasureCycles,
		Seed:          h.cfg.Seed,
		Core:          cc,
		Sched:         h.cfg.Sched,
		IntraJobs:     h.cfg.IntraJobs,
	}
	if o.llcCfg != nil {
		rc.LLC = *o.llcCfg
	}
	if h.store != nil {
		rc.Obs = &obs.Config{Series: true}
	}
	return rc
}

// poolSamples merges the independently seeded samples of one configuration,
// in sample order: counters add, so every derived ratio becomes the pooled
// estimate.
func poolSamples(cells []runner.CellResult) sim.Result {
	r := cells[0].Result
	for _, c := range cells[1:] {
		r.M.Add(&c.Result.M)
		r.PerCore = append(r.PerCore, c.Result.PerCore...)
	}
	return r
}

// Prewarm runs the cross-experiment design sweeps shared by most figures
// (baseline, full, confluence) for every active workload through one
// journaled runner sweep: an interrupted benchmark resumes the finished
// cells from the journal instead of recomputing them. Journal-restored
// results carry every metric but not live design state, which the
// experiments never probe for these three designs (unlike e.g. Shotgun's,
// which therefore always run live through h.run).
func (h *Harness) Prewarm(ctx context.Context, journalPath string) error {
	if ctx == nil {
		ctx = h.ctx
	}
	specs := []struct {
		key string
		nd  func() prefetch.Design
	}{
		{"baseline", newBaseline},
		{"full", newFull},
		{"confluence", newConfluence},
	}
	var (
		cells  []runner.Cell
		groups []string // cache key of each cell, parallel to cells
	)
	for _, w := range h.cfg.Workloads {
		for _, sp := range specs {
			ck := fmt.Sprintf("%s|%s|%+v", w, sp.key, runOpts{})
			for _, c := range h.cells(ck, w, sp.key, sp.nd, runOpts{}) {
				cells = append(cells, c)
				groups = append(groups, ck)
			}
		}
	}
	rep, err := runner.Sweep(ctx, cells, runner.Options{
		Jobs:            h.cfg.Jobs,
		Timeout:         h.cfg.Timeout,
		JournalPath:     journalPath,
		CheckpointDir:   h.cfg.CheckpointDir,
		CheckpointEvery: h.cfg.CheckpointEvery,
		Progress:        h.cfg.Progress,
		OnResult:        h.onResult(),
	})
	if err != nil {
		h.fail(fmt.Errorf("bench prewarm: %w", err))
		return err
	}
	// Cache every configuration whose samples all completed; failed ones
	// are recorded and will re-run (and re-fail deterministically, fast)
	// if an experiment asks for them.
	byKey := make(map[string][]runner.CellResult)
	var order []string
	for i, cr := range rep.Cells {
		if _, seen := byKey[groups[i]]; !seen {
			order = append(order, groups[i])
		}
		byKey[groups[i]] = append(byKey[groups[i]], cr)
	}
	h.mu.Lock()
	for _, ck := range order {
		g := byKey[ck]
		complete := true
		for _, cr := range g {
			if cr.Status == runner.StatusFailed {
				complete = false
				break
			}
		}
		if complete {
			h.cache[ck] = poolSamples(g)
		}
	}
	h.mu.Unlock()
	if err := rep.FirstErr(); err != nil {
		h.fail(fmt.Errorf("bench prewarm: %w", err))
		return err
	}
	return nil
}

// Canonical design constructors.

func newBaseline() prefetch.Design { return prefetch.NewBaseline(2048) }

func newNXL(depth int) func() prefetch.Design {
	return func() prefetch.Design { return prefetch.NewNXL(depth, 2048) }
}

func newSN4L() prefetch.Design { return prefetch.NewSN4L(16<<10, 2048) }

func newDis() prefetch.Design { return prefetch.NewDis(4<<10, 4, 2048) }

func newSN4LDis() prefetch.Design {
	return prefetch.NewProactive(prefetch.DefaultProactiveConfig())
}

func newFull() prefetch.Design {
	c := prefetch.DefaultProactiveConfig()
	c.WithBTBPrefetch = true
	return prefetch.NewProactive(c)
}

func newConfluence() prefetch.Design {
	return prefetch.NewConfluence(prefetch.DefaultConfluenceConfig())
}

func newBoomerang() prefetch.Design {
	return prefetch.NewBoomerang(prefetch.DefaultBoomerangConfig())
}

func newShotgun() prefetch.Design {
	return prefetch.NewShotgun(prefetch.DefaultShotgunDesignConfig())
}

// Baseline returns the cached no-prefetch run of a workload.
func (h *Harness) Baseline(workload string) sim.Result {
	return h.run(workload, "baseline", newBaseline, runOpts{})
}

// Full returns the cached SN4L+Dis+BTB run of a workload.
func (h *Harness) Full(workload string) sim.Result {
	return h.run(workload, "full", newFull, runOpts{})
}

// Shotgun returns the cached Shotgun run of a workload (with its 64-entry
// L1i prefetch buffer).
func (h *Harness) Shotgun(workload string) sim.Result {
	return h.run(workload, "shotgun", newShotgun, runOpts{pfbEntries: 64})
}

// Confluence returns the cached Confluence run of a workload.
func (h *Harness) Confluence(workload string) sim.Result {
	return h.run(workload, "confluence", newConfluence, runOpts{})
}

// mean averages a slice.
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
