package bench

import (
	"context"
	"dnc/internal/prefetch"
	"path/filepath"
	"strings"
	"testing"
)

// tiny returns a minimal harness for functional tests (not calibration).
func tiny() *Harness {
	return New(Config{
		Cores:         2,
		WarmCycles:    20_000,
		MeasureCycles: 20_000,
		Workloads:     []string{"Web-Frontend"},
		Seed:          1,
	})
}

func TestRunCaching(t *testing.T) {
	h := tiny()
	a := h.Baseline("Web-Frontend")
	b := h.Baseline("Web-Frontend")
	if a.M != b.M {
		t.Fatal("cache returned different results")
	}
	if len(h.cache) != 1 {
		t.Fatalf("cache has %d entries, want 1", len(h.cache))
	}
}

func TestExperimentsProduceTables(t *testing.T) {
	h := tiny()
	// A representative cross-section exercising sim runs, trace metrics,
	// DV-LLC runs, and static analysis.
	for _, id := range []string{"fig02", "fig06", "fig08", "table2"} {
		e, ok := h.ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		if e.Table == nil || len(e.Table.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
		if len(e.Headline) == 0 {
			t.Errorf("%s produced no headline metrics", id)
		}
		if !strings.Contains(e.Table.String(), e.Table.Header[0]) {
			t.Errorf("%s table render broken", id)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	h := tiny()
	if _, ok := h.ByID("fig99"); ok {
		t.Fatal("unknown experiment resolved")
	}
}

func TestIDsCoverAll(t *testing.T) {
	h := tiny()
	for _, id := range IDs() {
		if _, ok := map[string]bool{
			"fig01": true, "table1": true, "fig02": true, "fig03": true,
			"fig04": true, "fig05": true, "fig06": true, "fig07": true,
			"fig08": true, "fig09": true, "table2": true, "fig11": true,
			"fig12": true, "fig13": true, "fig14": true, "fig15": true,
			"fig16": true, "fig17": true, "fig18": true, "secj": true,
		}[id]; !ok {
			t.Errorf("unexpected experiment id %s", id)
		}
	}
	// Every ID must resolve (without running the heavy ones).
	_ = h
}

func TestTraceMetricsBands(t *testing.T) {
	// Characterization metrics must land in plausible bands for at least
	// one workload (full-suite calibration is asserted by the benchmarks).
	p := NextBlockPredictability("Web-Frontend")
	if p < 0.7 || p > 1.0 {
		t.Errorf("next-block predictability = %.3f, outside (0.7, 1.0]", p)
	}
	d := DiscontinuityPredictability("Web-Frontend")
	if d < 0.5 || d > 1.0 {
		t.Errorf("discontinuity predictability = %.3f, outside (0.5, 1.0]", d)
	}
	u := BranchesPerBlock("Web-Frontend")
	for i := 0; i < 3; i++ {
		if u[i] < u[i+1] {
			t.Errorf("uncovered branches must not increase with capacity: %v", u)
		}
	}
	if u[3] > 0.1 {
		t.Errorf("four branches per BF leave %.3f uncovered, want near zero", u[3])
	}
}

func TestScaleEntries(t *testing.T) {
	if scaleEntries(2048, 1, 2) != 1024 {
		t.Error("half scale wrong")
	}
	if scaleEntries(2048, 2, 1) != 4096 {
		t.Error("double scale wrong")
	}
	if scaleEntries(128, 1, 16) != 64 {
		t.Error("floor not applied")
	}
}

func TestSamplesPooling(t *testing.T) {
	one := New(Config{
		Cores: 1, WarmCycles: 10_000, MeasureCycles: 10_000,
		Workloads: []string{"Web-Frontend"}, Seed: 1,
	})
	three := New(Config{
		Cores: 1, WarmCycles: 10_000, MeasureCycles: 10_000,
		Workloads: []string{"Web-Frontend"}, Seed: 1, Samples: 3,
	})
	a := one.Baseline("Web-Frontend")
	b := three.Baseline("Web-Frontend")
	if b.M.Cycles != 3*a.M.Cycles {
		t.Fatalf("pooled cycles %d, want 3x %d", b.M.Cycles, a.M.Cycles)
	}
	if len(b.PerCore) != 3*len(a.PerCore) {
		t.Fatalf("pooled per-core results %d, want 3x %d", len(b.PerCore), len(a.PerCore))
	}
}

func TestHarnessRecordsFailures(t *testing.T) {
	h := tiny()
	r := h.run("Web-Frontend", "boom", func() prefetch.Design { panic("injected") }, runOpts{})
	if r.M.Cycles != 0 {
		t.Error("failed configuration returned a non-zero result")
	}
	if h.Err() == nil {
		t.Fatal("failure not recorded on the harness")
	}
	if len(h.cache) != 0 {
		t.Fatal("failed configuration was cached")
	}
	// A healthy run afterwards still works and Err persists.
	if h.Baseline("Web-Frontend").M.Cycles == 0 {
		t.Fatal("healthy run after failure returned zero result")
	}
	if h.Err() == nil {
		t.Fatal("Err cleared by a later successful run")
	}
}

func TestPrewarmJournalResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "bench.jsonl")
	cfg := Config{
		Cores: 2, WarmCycles: 10_000, MeasureCycles: 10_000,
		Workloads: []string{"Web-Frontend"}, Seed: 1,
	}
	h1 := New(cfg)
	if err := h1.Prewarm(context.Background(), journal); err != nil {
		t.Fatal(err)
	}
	if len(h1.cache) != 3 {
		t.Fatalf("prewarm cached %d configurations, want 3", len(h1.cache))
	}
	want := h1.Baseline("Web-Frontend")

	// A fresh harness resumes every cell from the journal: the restored
	// metrics match and no simulation re-runs (restored results lack live
	// Designs, so a non-empty Designs slice would mean a re-run).
	h2 := New(cfg)
	if err := h2.Prewarm(context.Background(), journal); err != nil {
		t.Fatal(err)
	}
	got := h2.Baseline("Web-Frontend")
	if got.M != want.M {
		t.Fatal("journal-restored metrics differ from the original run")
	}
	if len(got.Designs) != 0 {
		t.Fatal("prewarm re-ran a journaled cell instead of resuming it")
	}
}
