package bench

import (
	"fmt"

	"dnc/internal/isa"
	"dnc/internal/llc"
	"dnc/internal/prefetch"
	"dnc/internal/sim"
	"dnc/internal/stats"
)

// Experiment is one regenerated table or figure.
type Experiment struct {
	ID    string
	Title string
	// PaperNote summarises what the paper reports for this experiment.
	PaperNote string
	Table     *stats.Table
	// Headline carries scalar results for benchmark metric reporting.
	Headline map[string]float64
}

// Fig01 regenerates Figure 1: Shotgun's U-BTB footprint miss ratio per
// workload.
func (h *Harness) Fig01() Experiment {
	t := &stats.Table{Header: []string{"workload", "footprint-miss-ratio"}}
	head := map[string]float64{}
	var vals []float64
	for _, w := range h.Workloads() {
		r := h.Shotgun(w)
		var miss, lookups uint64
		for _, d := range r.Designs {
			sb := d.(*prefetch.Shotgun).SplitBTB()
			miss += sb.UFootprintMiss
			lookups += sb.ULookups
		}
		ratio := 0.0
		if lookups > 0 {
			ratio = float64(miss) / float64(lookups)
		}
		t.AddRow(w, stats.Pct(ratio))
		head["fpmiss_"+w] = ratio
		vals = append(vals, ratio)
	}
	head["fpmiss_avg"] = mean(vals)
	return Experiment{
		ID:        "fig01",
		Title:     "Footprint miss ratio in Shotgun's U-BTB",
		PaperNote: "paper: 4-31% across workloads, worst on OLTP (DB A)",
		Table:     t,
		Headline:  head,
	}
}

// Table1 regenerates Table I: the fraction of cycles Shotgun cores stall on
// an empty FTQ.
func (h *Harness) Table1() Experiment {
	t := &stats.Table{Header: []string{"workload", "empty-FTQ stall cycles"}}
	head := map[string]float64{}
	for _, w := range h.Workloads() {
		r := h.Shotgun(w)
		frac := float64(r.M.StallFTQ) / float64(r.M.Cycles)
		t.AddRow(w, stats.Pct(frac))
		head["ftqstall_"+w] = frac
	}
	return Experiment{
		ID:        "table1",
		Title:     "Empty-FTQ stall cycles in Shotgun",
		PaperNote: "paper: 1.6% (OLTP DB B) to 18.9% (OLTP DB A)",
		Table:     t,
		Headline:  head,
	}
}

// Fig02 regenerates Figure 2: the sequential fraction of L1i misses in the
// no-prefetcher baseline.
func (h *Harness) Fig02() Experiment {
	t := &stats.Table{Header: []string{"workload", "sequential-miss fraction"}}
	head := map[string]float64{}
	var vals []float64
	for _, w := range h.Workloads() {
		r := h.Baseline(w)
		f := r.M.SeqMissFraction()
		t.AddRow(w, stats.Pct(f))
		head["seqfrac_"+w] = f
		vals = append(vals, f)
	}
	head["seqfrac_avg"] = mean(vals)
	return Experiment{
		ID:        "fig02",
		Title:     "Fraction of sequential cache misses",
		PaperNote: "paper: 65-80% of L1i misses are sequential",
		Table:     t,
		Headline:  head,
	}
}

// Fig03 regenerates Figure 3: the next-line prefetcher's sequential miss
// coverage over the baseline.
func (h *Harness) Fig03() Experiment {
	t := &stats.Table{Header: []string{"workload", "NL sequential-miss coverage"}}
	head := map[string]float64{}
	var vals []float64
	for _, w := range h.Workloads() {
		base := h.Baseline(w)
		nl := h.run(w, "NL", newNXL(1), runOpts{})
		c := sim.SeqMissCoverage(nl, base)
		t.AddRow(w, stats.Pct(c))
		head["nlseqcov_"+w] = c
		vals = append(vals, c)
	}
	head["nlseqcov_avg"] = mean(vals)
	return Experiment{
		ID:        "fig03",
		Title:     "NL sequential miss coverage",
		PaperNote: "paper: 63% on average; timeliness is the limiter",
		Table:     t,
		Headline:  head,
	}
}

// Fig04 regenerates Figure 4: CMAL for NL, N2L, N4L and N8L, averaged over
// workloads.
func (h *Harness) Fig04() Experiment {
	t := &stats.Table{Header: []string{"prefetcher", "CMAL"}}
	head := map[string]float64{}
	for _, d := range []struct {
		name  string
		depth int
	}{{"NL", 1}, {"N2L", 2}, {"N4L", 4}, {"N8L", 8}} {
		var vals []float64
		for _, w := range h.Workloads() {
			r := h.run(w, d.name, newNXL(d.depth), runOpts{})
			vals = append(vals, r.M.CMAL())
		}
		m := mean(vals)
		t.AddRow(d.name, stats.Pct(m))
		head["cmal_"+d.name] = m
	}
	return Experiment{
		ID:        "fig04",
		Title:     "Covered memory access latency (CMAL) of sequential prefetchers",
		PaperNote: "paper: NL 65%, N2L 80%, N4L 88%, N8L 85% (N8L regresses)",
		Table:     t,
		Headline:  head,
	}
}

// Fig05 regenerates Figure 5: the LLC-latency and external-bandwidth side
// effects of deeper sequential prefetching, normalized to the baseline.
func (h *Harness) Fig05() Experiment {
	t := &stats.Table{Header: []string{"prefetcher", "LLC latency (norm.)", "L1i ext. bandwidth (norm.)"}}
	head := map[string]float64{}
	for _, d := range []struct {
		name  string
		depth int
	}{{"NL", 1}, {"N2L", 2}, {"N4L", 4}, {"N8L", 8}} {
		var lat, bw []float64
		for _, w := range h.Workloads() {
			base := h.Baseline(w)
			r := h.run(w, d.name, newNXL(d.depth), runOpts{})
			if bl := base.M.AvgLLCLatency(); bl > 0 {
				lat = append(lat, r.M.AvgLLCLatency()/bl)
			}
			bw = append(bw, sim.BandwidthRatio(r, base))
		}
		ml, mb := mean(lat), mean(bw)
		t.AddRow(d.name, stats.F2(ml), stats.F2(mb))
		head["llclat_"+d.name] = ml
		head["bw_"+d.name] = mb
	}
	return Experiment{
		ID:        "fig05",
		Title:     "Side effects of useless prefetches",
		PaperNote: "paper: N8L raises LLC latency 28% and bandwidth up to 7.2x",
		Table:     t,
		Headline:  head,
	}
}

// Fig06 regenerates Figure 6: next-four-block access-pattern
// predictability.
func (h *Harness) Fig06() Experiment {
	t := &stats.Table{Header: []string{"workload", "pattern predictability"}}
	head := map[string]float64{}
	var vals []float64
	for _, w := range h.Workloads() {
		p := NextBlockPredictability(w)
		t.AddRow(w, stats.Pct(p))
		head["fig6_"+w] = p
		vals = append(vals, p)
	}
	head["fig6_avg"] = mean(vals)
	return Experiment{
		ID:        "fig06",
		Title:     "Predictability of the next-four-block access pattern",
		PaperNote: "paper: 92% on average",
		Table:     t,
		Headline:  head,
	}
}

// Fig07 regenerates Figure 7: predictability of the branch responsible for
// each block's discontinuities.
func (h *Harness) Fig07() Experiment {
	t := &stats.Table{Header: []string{"workload", "same-branch fraction"}}
	head := map[string]float64{}
	var vals []float64
	for _, w := range h.Workloads() {
		p := DiscontinuityPredictability(w)
		t.AddRow(w, stats.Pct(p))
		head["fig7_"+w] = p
		vals = append(vals, p)
	}
	head["fig7_avg"] = mean(vals)
	return Experiment{
		ID:        "fig07",
		Title:     "Predictability of the discontinuity branch",
		PaperNote: "paper: 78-83%, average 80%",
		Table:     t,
		Headline:  head,
	}
}

// Fig08 regenerates Figure 8: uncovered branches vs. branch-footprint
// capacity.
func (h *Harness) Fig08() Experiment {
	t := &stats.Table{Header: []string{"branches per BF", "uncovered branches (avg)"}}
	head := map[string]float64{}
	var acc [4][]float64
	for _, w := range h.Workloads() {
		u := BranchesPerBlock(w)
		for i := range u {
			acc[i] = append(acc[i], u[i])
		}
	}
	for i := range acc {
		m := mean(acc[i])
		t.AddRow(fmt.Sprint(i+1), stats.Pct(m))
		head[fmt.Sprintf("uncov_%d", i+1)] = m
	}
	return Experiment{
		ID:        "fig08",
		Title:     "Uncovered branches vs. branches stored per branch footprint",
		PaperNote: "paper: four branches per BF cover almost all branches",
		Table:     t,
		Headline:  head,
	}
}

// Fig09 regenerates Figure 9: uncovered branch footprints vs. the number of
// BFs stored per LLC set, using the DV-LLC in variable-length mode.
func (h *Harness) Fig09() Experiment {
	t := &stats.Table{Header: []string{"BFs per set", "uncovered BFs (avg)"}}
	head := map[string]float64{}
	for _, k := range []int{1, 2, 3, 4} {
		var vals []float64
		for _, w := range h.Workloads() {
			lc := llc.DefaultConfig()
			lc.DVEnabled = true
			lc.BFsPerSet = k
			r := h.run(w, fmt.Sprintf("dvllc-bf%d", k), newBaseline,
				runOpts{mode: isa.Variable, llcCfg: &lc})
			if r.LLCStats.BFStores > 0 {
				vals = append(vals, float64(r.LLCStats.BFStoreFails)/float64(r.LLCStats.BFStores))
			}
		}
		m := mean(vals)
		t.AddRow(fmt.Sprint(k), stats.Pct(m))
		head[fmt.Sprintf("uncovbf_%d", k)] = m
	}
	return Experiment{
		ID:        "fig09",
		Title:     "Uncovered branch footprints vs. BFs per LLC set",
		PaperNote: "paper: 2 BFs/set leave ~2%, 3 leave 0.4%, 4 leave 0.2%",
		Table:     t,
		Headline:  head,
	}
}

// Table2 regenerates Table II: the storage/complexity comparison, with
// storage computed from the implemented configurations.
func (h *Harness) Table2() Experiment {
	t := &stats.Table{Header: []string{"design", "storage", "BTB modification", "L1i prefetch buffer", "modular"}}
	kb := func(d prefetch.Design) string {
		return fmt.Sprintf("%.1f KB", float64(d.StorageBits())/8/1024)
	}
	full, shot, conf := newFull(), newShotgun(), newConfluence()
	t.AddRow("SN4L+Dis+BTB", kb(full), "no", "no", "yes")
	t.AddRow("Shotgun", kb(shot), "yes (split U/C/RIB)", "yes (64-entry)", "no")
	t.AddRow("Confluence", kb(conf), "yes (AirBTB)", "no", "no")
	return Experiment{
		ID:        "table2",
		Title:     "SN4L+Dis+BTB and prior work",
		PaperNote: "paper: 7.6 KB vs 6 KB vs 200+ KB virtualized in LLC",
		Table:     t,
		Headline: map[string]float64{
			"kb_full":       float64(full.StorageBits()) / 8 / 1024,
			"kb_shotgun":    float64(shot.StorageBits()) / 8 / 1024,
			"kb_confluence": float64(conf.StorageBits()) / 8 / 1024,
		},
	}
}

// Fig11 regenerates Figure 11: miss coverage as the SeqTable and DisTable
// sizes grow, relative to unlimited tables.
func (h *Harness) Fig11() Experiment {
	t := &stats.Table{Header: []string{"table", "entries", "coverage", "of unlimited"}}
	head := map[string]float64{}

	seqCov := func(entries int) float64 {
		var vals []float64
		key := fmt.Sprintf("sn4l-seq%d", entries)
		for _, w := range h.Workloads() {
			r := h.run(w, key, func() prefetch.Design {
				return prefetch.NewSN4L(entries, 2048)
			}, runOpts{})
			vals = append(vals, sim.MissCoverage(r, h.Baseline(w)))
		}
		return mean(vals)
	}
	unlimitedSeq := seqCov(0)
	for _, e := range []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10} {
		c := seqCov(e)
		rel := 0.0
		if unlimitedSeq > 0 {
			rel = c / unlimitedSeq
		}
		t.AddRow("SeqTable", fmt.Sprintf("%dK", e>>10), stats.Pct(c), stats.Pct(rel))
		head[fmt.Sprintf("seqcov_%dk", e>>10)] = rel
	}
	t.AddRow("SeqTable", "unlimited", stats.Pct(unlimitedSeq), "100%")

	disCov := func(entries int) float64 {
		var vals []float64
		key := fmt.Sprintf("snd-dis%d", entries)
		for _, w := range h.Workloads() {
			r := h.run(w, key, func() prefetch.Design {
				c := prefetch.DefaultProactiveConfig()
				c.DisEntries = entries
				return prefetch.NewProactive(c)
			}, runOpts{})
			vals = append(vals, sim.MissCoverage(r, h.Baseline(w)))
		}
		return mean(vals)
	}
	unlimitedDis := disCov(0)
	for _, e := range []int{1 << 10, 2 << 10, 4 << 10, 8 << 10} {
		c := disCov(e)
		rel := 0.0
		if unlimitedDis > 0 {
			rel = c / unlimitedDis
		}
		t.AddRow("DisTable", fmt.Sprintf("%dK", e>>10), stats.Pct(c), stats.Pct(rel))
		head[fmt.Sprintf("discov_%dk", e>>10)] = rel
	}
	t.AddRow("DisTable", "unlimited", stats.Pct(unlimitedDis), "100%")

	return Experiment{
		ID:        "fig11",
		Title:     "Miss coverage vs. SeqTable/DisTable size",
		PaperNote: "paper: 16K SeqTable reaches 96% of unlimited; 4K DisTable 97%",
		Table:     t,
		Headline:  head,
	}
}

// Fig12 regenerates Figure 12: DisTable overprediction under tagless,
// 4-bit partially tagged, and fully tagged policies.
func (h *Harness) Fig12() Experiment {
	t := &stats.Table{Header: []string{"tagging", "overprediction"}}
	head := map[string]float64{}
	for _, pol := range []struct {
		name string
		bits uint
	}{{"tagless", 0}, {"4bit-partial", 4}, {"full-tag", 16}} {
		var vals []float64
		key := fmt.Sprintf("snd-tag%d", pol.bits)
		for _, w := range h.Workloads() {
			r := h.run(w, key, func() prefetch.Design {
				c := prefetch.DefaultProactiveConfig()
				c.DisTagBits = pol.bits
				return prefetch.NewProactive(c)
			}, runOpts{})
			var agg prefetch.ReplayStats
			for _, d := range r.Designs {
				s := d.(*prefetch.Proactive).Replay
				agg.TableHits += s.TableHits
				agg.NotBranch += s.NotBranch
			}
			vals = append(vals, agg.Overprediction())
		}
		m := mean(vals)
		t.AddRow(pol.name, stats.Pct(m))
		head["overpred_"+pol.name] = m
	}
	return Experiment{
		ID:        "fig12",
		Title:     "Overprediction of DisTable tagging policies",
		PaperNote: "paper: tagless overpredicts heavily; 4-bit partial tags approach a full tag",
		Table:     t,
		Headline:  head,
	}
}

// Fig13 regenerates Figure 13: CMAL of N4L, SN4L, Dis and SN4L+Dis+BTB.
func (h *Harness) Fig13() Experiment {
	t := &stats.Table{Header: []string{"prefetcher", "CMAL"}}
	head := map[string]float64{}
	designs := []struct {
		name string
		key  string
		nd   func() prefetch.Design
	}{
		{"N4L", "N4L", newNXL(4)},
		{"SN4L", "sn4l", newSN4L},
		{"Dis", "dis", newDis},
		{"SN4L+Dis+BTB", "full", newFull},
	}
	for _, d := range designs {
		var vals []float64
		for _, w := range h.Workloads() {
			r := h.run(w, d.key, d.nd, runOpts{})
			vals = append(vals, r.M.CMAL())
		}
		m := mean(vals)
		t.AddRow(d.name, stats.Pct(m))
		head["cmal13_"+d.name] = m
	}
	return Experiment{
		ID:        "fig13",
		Title:     "Timeliness (CMAL) of the proposed prefetchers",
		PaperNote: "paper: N4L 88%, SN4L 93%, Dis 89%, SN4L+Dis+BTB 91%",
		Table:     t,
		Headline:  head,
	}
}

// Fig14 regenerates Figure 14: L1i cache lookups normalized to the
// baseline, including the RLU-size dependence of the proposed design.
func (h *Harness) Fig14() Experiment {
	t := &stats.Table{Header: []string{"design", "cache lookups (norm.)"}}
	head := map[string]float64{}

	rluVariant := func(entries int) func() prefetch.Design {
		return func() prefetch.Design {
			c := prefetch.DefaultProactiveConfig()
			c.WithBTBPrefetch = true
			c.RLUEntries = entries
			return prefetch.NewProactive(c)
		}
	}
	rows := []struct {
		name string
		key  string
		nd   func() prefetch.Design
		pfb  int
	}{
		{"SN4L+Dis+BTB (no RLU)", "full-rlu0", rluVariant(0), 0},
		{"SN4L+Dis+BTB (RLU 4)", "full-rlu4", rluVariant(4), 0},
		{"SN4L+Dis+BTB (RLU 8)", "full", newFull, 0},
		{"SN4L+Dis+BTB (RLU 16)", "full-rlu16", rluVariant(16), 0},
		{"confluence", "confluence", newConfluence, 0},
		{"shotgun", "shotgun", newShotgun, 64},
	}
	for _, d := range rows {
		var vals []float64
		for _, w := range h.Workloads() {
			r := h.run(w, d.key, d.nd, runOpts{pfbEntries: d.pfb})
			vals = append(vals, sim.LookupRatio(r, h.Baseline(w)))
		}
		m := mean(vals)
		t.AddRow(d.name, stats.F2(m))
		head["lookups_"+d.key] = m
	}
	return Experiment{
		ID:        "fig14",
		Title:     "Cache lookups, normalized to no prefetcher",
		PaperNote: "paper: an 8-entry RLU suffices; Confluence lowest; ours comparable to Shotgun",
		Table:     t,
		Headline:  head,
	}
}

// Fig15 regenerates Figure 15: frontend stall cycle reduction.
func (h *Harness) Fig15() Experiment {
	t := &stats.Table{Header: []string{"workload", "SN4L+Dis+BTB", "shotgun", "confluence"}}
	head := map[string]float64{}
	var f, s, c []float64
	for _, w := range h.Workloads() {
		base := h.Baseline(w)
		fv := sim.FSCR(h.Full(w), base)
		sv := sim.FSCR(h.Shotgun(w), base)
		cv := sim.FSCR(h.Confluence(w), base)
		t.AddRow(w, stats.Pct(fv), stats.Pct(sv), stats.Pct(cv))
		f, s, c = append(f, fv), append(s, sv), append(c, cv)
	}
	t.AddRow("average", stats.Pct(mean(f)), stats.Pct(mean(s)), stats.Pct(mean(c)))
	head["fscr_full"] = mean(f)
	head["fscr_shotgun"] = mean(s)
	head["fscr_confluence"] = mean(c)
	return Experiment{
		ID:        "fig15",
		Title:     "Frontend stall cycle reduction (FSCR)",
		PaperNote: "paper: ours 61%, Shotgun 35%, Confluence 32%",
		Table:     t,
		Headline:  head,
	}
}

// Fig16 regenerates Figure 16: speedup over the no-prefetch baseline.
func (h *Harness) Fig16() Experiment {
	t := &stats.Table{Header: []string{"workload", "SN4L+Dis+BTB", "shotgun", "confluence", "boomerang"}}
	head := map[string]float64{}
	var f, s, c, b []float64
	for _, w := range h.Workloads() {
		base := h.Baseline(w)
		fv := sim.Speedup(h.Full(w), base)
		sv := sim.Speedup(h.Shotgun(w), base)
		cv := sim.Speedup(h.Confluence(w), base)
		bv := sim.Speedup(h.run(w, "boomerang", newBoomerang, runOpts{}), base)
		t.AddRow(w, stats.F2(fv), stats.F2(sv), stats.F2(cv), stats.F2(bv))
		f, s, c, b = append(f, fv), append(s, sv), append(c, cv), append(b, bv)
	}
	t.AddRow("average", stats.F2(mean(f)), stats.F2(mean(s)), stats.F2(mean(c)), stats.F2(mean(b)))
	head["speedup_full"] = mean(f)
	head["speedup_shotgun"] = mean(s)
	head["speedup_confluence"] = mean(c)
	head["speedup_boomerang"] = mean(b)
	return Experiment{
		ID:        "fig16",
		Title:     "Speedup over a system with no instruction/BTB prefetcher",
		PaperNote: "paper: ours 19% avg (7-50%), 5% over Shotgun avg, 16% on OLTP DB A",
		Table:     t,
		Headline:  head,
	}
}

// Fig17 regenerates Figure 17: the performance breakdown of the proposed
// design against perfect-frontend references.
func (h *Harness) Fig17() Experiment {
	t := &stats.Table{Header: []string{"configuration", "speedup (avg)"}}
	head := map[string]float64{}
	rows := []struct {
		name string
		key  string
		nd   func() prefetch.Design
		o    runOpts
	}{
		{"N4L", "N4L", newNXL(4), runOpts{}},
		{"SN4L", "sn4l", newSN4L, runOpts{}},
		{"SN4L+Dis", "snd", newSN4LDis, runOpts{}},
		{"SN4L+Dis+BTB", "full", newFull, runOpts{}},
		{"Perfect L1i", "perfect", newBaseline, runOpts{perfectL1i: true}},
		{"Perfect L1i + BTB inf", "perfect-btb", newBaseline, runOpts{perfectL1i: true, perfectBTB: true}},
	}
	for _, d := range rows {
		var vals []float64
		for _, w := range h.Workloads() {
			r := h.run(w, d.key, d.nd, d.o)
			vals = append(vals, sim.Speedup(r, h.Baseline(w)))
		}
		m := mean(vals)
		t.AddRow(d.name, stats.F2(m))
		head["sp17_"+d.key] = m
	}
	return Experiment{
		ID:        "fig17",
		Title:     "Performance breakdown vs. perfect frontend",
		PaperNote: "paper: SN4L 13%, SN4L+Dis 15%, full 19% ~ Perfect L1i; +BTBinf 29%",
		Table:     t,
		Headline:  head,
	}
}

// Fig18 regenerates Figure 18: the speedup of the proposed design over
// Shotgun as the BTB budget shrinks (modelling larger commercial
// footprints).
func (h *Harness) Fig18() Experiment {
	t := &stats.Table{Header: []string{"BTB scale", "speedup over shotgun (avg)"}}
	head := map[string]float64{}
	for _, sc := range []struct {
		label    string
		num, den int
	}{{"1/4x", 1, 4}, {"1/2x", 1, 2}, {"1x", 1, 1}, {"2x", 2, 1}} {
		var vals []float64
		for _, w := range h.Workloads() {
			shot := h.run(w, "shotgun-"+sc.label, func() prefetch.Design {
				c := prefetch.DefaultShotgunDesignConfig()
				c.BTB = scaledShotgunBTB(sc.num, sc.den)
				return prefetch.NewShotgun(c)
			}, runOpts{pfbEntries: 64})
			full := h.run(w, "full-"+sc.label, func() prefetch.Design {
				c := prefetch.DefaultProactiveConfig()
				c.WithBTBPrefetch = true
				c.BTBEntries = scaleEntries(2048, sc.num, sc.den)
				return prefetch.NewProactive(c)
			}, runOpts{})
			vals = append(vals, full.M.IPC()/shot.M.IPC())
		}
		m := mean(vals)
		t.AddRow(sc.label, stats.F2(m))
		head["fig18_"+sc.label] = m
	}
	return Experiment{
		ID:        "fig18",
		Title:     "Speedup of SN4L+Dis+BTB over Shotgun with varying BTB sizes",
		PaperNote: "paper: the gap widens as the BTB shrinks",
		Table:     t,
		Headline:  head,
	}
}

// SecJ regenerates Section VII.J: the DV-LLC's effect on LLC hit ratios in
// variable-length mode.
func (h *Harness) SecJ() Experiment {
	t := &stats.Table{Header: []string{"workload", "inst hit (conv)", "inst hit (DV)", "data hit (conv)", "data hit (DV)"}}
	head := map[string]float64{}
	var dDrop []float64
	for _, w := range h.Workloads() {
		conv := llc.DefaultConfig()
		dv := llc.DefaultConfig()
		dv.DVEnabled = true
		rc := h.run(w, "vl-conv", newBaseline, runOpts{mode: isa.Variable, llcCfg: &conv})
		rd := h.run(w, "vl-dv", newBaseline, runOpts{mode: isa.Variable, llcCfg: &dv})
		ratio := func(hit, acc uint64) float64 {
			if acc == 0 {
				return 0
			}
			return float64(hit) / float64(acc)
		}
		ci := ratio(rc.LLCStats.InstHits, rc.LLCStats.InstAccesses)
		di := ratio(rd.LLCStats.InstHits, rd.LLCStats.InstAccesses)
		cd := ratio(rc.LLCStats.DataHits, rc.LLCStats.DataAccesses)
		dd := ratio(rd.LLCStats.DataHits, rd.LLCStats.DataAccesses)
		pct3 := func(v float64) string { return fmt.Sprintf("%.3f%%", v*100) }
		t.AddRow(w, pct3(ci), pct3(di), pct3(cd), pct3(dd))
		dDrop = append(dDrop, cd-dd)
	}
	head["dvllc_datahit_drop"] = mean(dDrop)
	return Experiment{
		ID:        "secj",
		Title:     "DV-LLC vs. conventional LLC hit ratios (VL-ISA)",
		PaperNote: "paper: instruction hit ratio unchanged; data hit ratio drops at most 0.1%",
		Table:     t,
		Headline:  head,
	}
}

// scaledShotgunBTB scales Shotgun's tables (Fig. 18 helper).
func scaledShotgunBTB(num, den int) (c btbShotgunConfig) {
	return btbScale(num, den)
}
