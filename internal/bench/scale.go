package bench

import "dnc/internal/btb"

// btbShotgunConfig aliases the Shotgun BTB sizing type.
type btbShotgunConfig = btb.ShotgunConfig

// btbScale returns Shotgun's BTB scaled by num/den.
func btbScale(num, den int) btb.ShotgunConfig {
	return btb.ScaledShotgunConfig(num, den)
}

// scaleEntries scales a power-of-two entry count by num/den, keeping it a
// positive power of two.
func scaleEntries(entries, num, den int) int {
	v := entries * num / den
	p := 1
	for p < v {
		p <<= 1
	}
	if p < 64 {
		p = 64
	}
	return p
}

// All runs every experiment in paper order.
func (h *Harness) All() []Experiment {
	return []Experiment{
		h.Fig01(),
		h.Table1(),
		h.Fig02(),
		h.Fig03(),
		h.Fig04(),
		h.Fig05(),
		h.Fig06(),
		h.Fig07(),
		h.Fig08(),
		h.Fig09(),
		h.Table2(),
		h.Fig11(),
		h.Fig12(),
		h.Fig13(),
		h.Fig14(),
		h.Fig15(),
		h.Fig16(),
		h.Fig17(),
		h.Fig18(),
		h.SecJ(),
	}
}

// ByID returns the experiment with the given ID, running it on demand.
func (h *Harness) ByID(id string) (Experiment, bool) {
	m := map[string]func() Experiment{
		"fig01":  h.Fig01,
		"table1": h.Table1,
		"fig02":  h.Fig02,
		"fig03":  h.Fig03,
		"fig04":  h.Fig04,
		"fig05":  h.Fig05,
		"fig06":  h.Fig06,
		"fig07":  h.Fig07,
		"fig08":  h.Fig08,
		"fig09":  h.Fig09,
		"table2": h.Table2,
		"fig11":  h.Fig11,
		"fig12":  h.Fig12,
		"fig13":  h.Fig13,
		"fig14":  h.Fig14,
		"fig15":  h.Fig15,
		"fig16":  h.Fig16,
		"fig17":  h.Fig17,
		"fig18":  h.Fig18,
		"secj":   h.SecJ,
	}
	f, ok := m[id]
	if !ok {
		return Experiment{}, false
	}
	return f(), true
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"fig01", "table1", "fig02", "fig03", "fig04", "fig05", "fig06",
		"fig07", "fig08", "fig09", "table2", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "secj",
	}
}
