package bench

import (
	"testing"

	"dnc/internal/sim"
)

// TestPaperShapes asserts the paper's qualitative results end to end on a
// two-workload, reduced-scale configuration. It is the repository's
// regression net for the claims EXPERIMENTS.md records; the full-suite
// numbers come from the benchmarks. Skipped with -short.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape assertions need full simulations")
	}
	h := New(Config{
		Cores:         8,
		WarmCycles:    100_000,
		MeasureCycles: 80_000,
		Workloads:     []string{"Web-Zeus", "OLTP-DB-B"},
		Seed:          1,
	})

	var base, n4l, n8l, sn4l, snd, full, shot, conf []sim.Result
	for _, w := range h.Workloads() {
		base = append(base, h.Baseline(w))
		n4l = append(n4l, h.run(w, "N4L", newNXL(4), runOpts{}))
		n8l = append(n8l, h.run(w, "N8L", newNXL(8), runOpts{}))
		sn4l = append(sn4l, h.run(w, "sn4l", newSN4L, runOpts{}))
		snd = append(snd, h.run(w, "snd", newSN4LDis, runOpts{}))
		full = append(full, h.Full(w))
		shot = append(shot, h.Shotgun(w))
		conf = append(conf, h.Confluence(w))
	}
	avgSpeedup := func(rs []sim.Result) float64 {
		var s float64
		for i, r := range rs {
			s += sim.Speedup(r, base[i])
		}
		return s / float64(len(rs))
	}
	avgFSCR := func(rs []sim.Result) float64 {
		var s float64
		for i, r := range rs {
			s += sim.FSCR(r, base[i])
		}
		return s / float64(len(rs))
	}
	avgBW := func(rs []sim.Result) float64 {
		var s float64
		for i, r := range rs {
			s += sim.BandwidthRatio(r, base[i])
		}
		return s / float64(len(rs))
	}

	spN4L, spN8L := avgSpeedup(n4l), avgSpeedup(n8l)
	spSN4L, spSND, spFull := avgSpeedup(sn4l), avgSpeedup(snd), avgSpeedup(full)
	spShot, spConf := avgSpeedup(shot), avgSpeedup(conf)

	t.Logf("speedups: N4L=%.3f N8L=%.3f SN4L=%.3f SN4L+Dis=%.3f full=%.3f shotgun=%.3f confluence=%.3f",
		spN4L, spN8L, spSN4L, spSND, spFull, spShot, spConf)

	// Every prefetcher beats the baseline.
	for name, sp := range map[string]float64{
		"N4L": spN4L, "SN4L": spSN4L, "SN4L+Dis": spSND,
		"SN4L+Dis+BTB": spFull, "shotgun": spShot, "confluence": spConf,
	} {
		if sp <= 1.0 {
			t.Errorf("%s speedup %.3f <= 1", name, sp)
		}
	}
	// N8L must not beat N4L (useless prefetches, Figures 4/5).
	if spN8L > spN4L+0.01 {
		t.Errorf("N8L %.3f beats N4L %.3f", spN8L, spN4L)
	}
	// The proposed design tops its own line (Figure 17 breakdown).
	if spFull < spSN4L-0.01 || spFull < spSND-0.01 {
		t.Errorf("full %.3f below its components (SN4L %.3f, SN4L+Dis %.3f)",
			spFull, spSN4L, spSND)
	}
	// And beats the state-of-the-art competitors (Figures 15/16).
	if spFull <= spShot {
		t.Errorf("full %.3f does not beat shotgun %.3f", spFull, spShot)
	}
	if spFull <= spConf {
		t.Errorf("full %.3f does not beat confluence %.3f", spFull, spConf)
	}
	if avgFSCR(full) <= avgFSCR(shot) || avgFSCR(full) <= avgFSCR(conf) {
		t.Errorf("full FSCR %.3f not above shotgun %.3f / confluence %.3f",
			avgFSCR(full), avgFSCR(shot), avgFSCR(conf))
	}
	// Selectivity: SN4L needs far less bandwidth than N4L for comparable
	// coverage (the Figure 5/6 motivation).
	if avgBW(sn4l) >= avgBW(n4l) {
		t.Errorf("SN4L bandwidth %.2f not below N4L %.2f", avgBW(sn4l), avgBW(n4l))
	}
}
