package bench

import (
	"fmt"

	"dnc/internal/prefetch"
	"dnc/internal/sim"
	"dnc/internal/stats"
)

// Ablations beyond the paper's figures: the design choices DESIGN.md calls
// out, each swept in isolation on the full SN4L+Dis+BTB configuration.

// AblationDepth sweeps the proactive chain termination depth (paper: 4).
func (h *Harness) AblationDepth() Experiment {
	t := &stats.Table{Header: []string{"max chain depth", "speedup (avg)", "bandwidth (norm.)"}}
	head := map[string]float64{}
	for _, depth := range []int{1, 2, 4, 8} {
		var sp, bw []float64
		key := fmt.Sprintf("full-depth%d", depth)
		for _, w := range h.Workloads() {
			r := h.run(w, key, func() prefetch.Design {
				c := prefetch.DefaultProactiveConfig()
				c.WithBTBPrefetch = true
				c.MaxDepth = depth
				return prefetch.NewProactive(c)
			}, runOpts{})
			base := h.Baseline(w)
			sp = append(sp, sim.Speedup(r, base))
			bw = append(bw, sim.BandwidthRatio(r, base))
		}
		t.AddRow(fmt.Sprint(depth), stats.F2(mean(sp)), stats.F2(mean(bw)))
		head[fmt.Sprintf("depth_%d", depth)] = mean(sp)
	}
	return Experiment{
		ID:        "abl-depth",
		Title:     "Ablation: proactive chain depth",
		PaperNote: "paper: four is a reasonable termination threshold",
		Table:     t,
		Headline:  head,
	}
}

// AblationRLU sweeps the RLU size (paper: 8 entries).
func (h *Harness) AblationRLU() Experiment {
	t := &stats.Table{Header: []string{"RLU entries", "speedup (avg)", "cache lookups (norm.)"}}
	head := map[string]float64{}
	for _, n := range []int{0, 4, 8, 16} {
		var sp, lk []float64
		key := fmt.Sprintf("full-rlu%d", n)
		nd := func() prefetch.Design {
			c := prefetch.DefaultProactiveConfig()
			c.WithBTBPrefetch = true
			c.RLUEntries = n
			return prefetch.NewProactive(c)
		}
		if n == 8 {
			key, nd = "full", newFull
		}
		for _, w := range h.Workloads() {
			r := h.run(w, key, nd, runOpts{})
			base := h.Baseline(w)
			sp = append(sp, sim.Speedup(r, base))
			lk = append(lk, sim.LookupRatio(r, base))
		}
		t.AddRow(fmt.Sprint(n), stats.F2(mean(sp)), stats.F2(mean(lk)))
		head[fmt.Sprintf("rlu_%d", n)] = mean(lk)
	}
	return Experiment{
		ID:        "abl-rlu",
		Title:     "Ablation: RLU size vs. cache lookups",
		PaperNote: "paper: 8 entries filter repetitive lookups effectively",
		Table:     t,
		Headline:  head,
	}
}

// AblationQueueDepth sweeps the SeqQueue/DisQueue/RLUQueue capacity
// (paper: 16).
func (h *Harness) AblationQueueDepth() Experiment {
	t := &stats.Table{Header: []string{"queue depth", "speedup (avg)"}}
	head := map[string]float64{}
	for _, n := range []int{4, 8, 16, 32} {
		var sp []float64
		key := fmt.Sprintf("full-q%d", n)
		for _, w := range h.Workloads() {
			r := h.run(w, key, func() prefetch.Design {
				c := prefetch.DefaultProactiveConfig()
				c.WithBTBPrefetch = true
				c.QueueDepth = n
				return prefetch.NewProactive(c)
			}, runOpts{})
			sp = append(sp, sim.Speedup(r, h.Baseline(w)))
		}
		t.AddRow(fmt.Sprint(n), stats.F2(mean(sp)))
		head[fmt.Sprintf("qdepth_%d", n)] = mean(sp)
	}
	return Experiment{
		ID:        "abl-queues",
		Title:     "Ablation: proactive queue depth",
		PaperNote: "design choice: 16-entry SeqQueue/DisQueue/RLUQueue",
		Table:     t,
		Headline:  head,
	}
}

// Ablations runs the extra sweeps.
func (h *Harness) Ablations() []Experiment {
	return []Experiment{h.AblationDepth(), h.AblationRLU(), h.AblationQueueDepth()}
}
