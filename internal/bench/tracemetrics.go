package bench

import (
	"dnc/internal/cache"
	wl "dnc/internal/cfg"
	"dnc/internal/isa"
	"dnc/internal/sim"
	"dnc/internal/workloads"
)

// This file implements the paper's trace-level characterizations, measured
// directly on the committed instruction stream (no timing model involved):
// Figure 6 (next-four-block access-pattern predictability), Figure 7
// (discontinuity-branch predictability), and Figure 8 (branches per block
// vs. branch-footprint capacity).

// traceInsts bounds the instructions walked per characterization.
const traceInsts = 2_000_000

// NextBlockPredictability measures Figure 6 for one workload: for each L1i
// block, from insertion to eviction, record which of its four subsequent
// blocks were accessed; report how often the pattern matches the previous
// residency's pattern.
func NextBlockPredictability(workload string) float64 {
	prog := sim.Program(workloads.Params(workload, isa.Fixed))
	w := wl.NewWalker(prog, 1)
	c := cache.New(32<<10, 8)
	cur := map[isa.BlockID]*uint8{}
	last := map[isa.BlockID]uint8{}
	matches, comparisons := 0, 0
	var s wl.Step
	var prev isa.BlockID
	havePrev := false
	for i := 0; i < traceInsts; i++ {
		w.Next(&s)
		b := isa.BlockOf(s.Inst.PC)
		if havePrev && b == prev {
			continue
		}
		prev, havePrev = b, true
		for j := 1; j <= 4; j++ {
			if isa.BlockID(j) > b {
				break
			}
			if pat, ok := cur[b-isa.BlockID(j)]; ok {
				*pat |= 1 << (j - 1)
			}
		}
		if c.Access(b) != nil {
			continue
		}
		_, ev, evicted := c.Insert(b)
		if evicted {
			if pat, ok := cur[ev.Block]; ok {
				if old, ok2 := last[ev.Block]; ok2 {
					comparisons++
					if old == *pat {
						matches++
					}
				}
				last[ev.Block] = *pat
				delete(cur, ev.Block)
			}
		}
		z := uint8(0)
		cur[b] = &z
	}
	if comparisons == 0 {
		return 0
	}
	return float64(matches) / float64(comparisons)
}

// DiscontinuityPredictability measures Figure 7 for one workload: for each
// block, compare consecutive branch instructions that caused an L1i
// discontinuity miss out of that block; report how often the same branch is
// responsible.
func DiscontinuityPredictability(workload string) float64 {
	prog := sim.Program(workloads.Params(workload, isa.Fixed))
	w := wl.NewWalker(prog, 1)
	c := cache.New(32<<10, 8)
	lastBranch := map[isa.BlockID]isa.Addr{} // block -> last discontinuity branch PC
	matches, comparisons := 0, 0
	var s wl.Step
	var prevBlock isa.BlockID
	var prevPC isa.Addr
	var prevWasBranch bool
	haveLast := false
	for i := 0; i < traceInsts; i++ {
		w.Next(&s)
		b := isa.BlockOf(s.Inst.PC)
		if !haveLast || b != prevBlock {
			miss := c.Access(b) == nil
			if miss {
				c.Insert(b)
				if haveLast && b != prevBlock+1 && prevWasBranch {
					// Discontinuity miss caused by the previous branch.
					brBlock := isa.BlockOf(prevPC)
					if old, ok := lastBranch[brBlock]; ok {
						comparisons++
						if old == prevPC {
							matches++
						}
					}
					lastBranch[brBlock] = prevPC
				}
			}
			prevBlock = b
			haveLast = true
		}
		prevPC = s.Inst.PC
		prevWasBranch = s.Inst.Kind.IsBranch() && s.Taken
	}
	if comparisons == 0 {
		return 0
	}
	return float64(matches) / float64(comparisons)
}

// BranchesPerBlock measures Figure 8 for one workload: the fraction of
// branches left uncovered when a branch footprint stores only the first
// capacity branch offsets of each block, for capacity 1..4. Measured over
// the static code image (fixed-length mode decodes every block).
func BranchesPerBlock(workload string) [4]float64 {
	prog := sim.Program(workloads.Params(workload, isa.Fixed))
	im := prog.Image
	totalBranches := 0
	over := [4]int{}
	first := isa.BlockOf(im.Base)
	last := isa.BlockOf(im.End() - 1)
	for b := first; b <= last; b++ {
		n := len(isa.PredecodeBlock(im, b))
		totalBranches += n
		for c := 1; c <= 4; c++ {
			if n > c {
				over[c-1] += n - c
			}
		}
	}
	var out [4]float64
	if totalBranches == 0 {
		return out
	}
	for i := range out {
		out[i] = float64(over[i]) / float64(totalBranches)
	}
	return out
}
