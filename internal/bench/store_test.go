package bench

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"dnc/internal/resultstore"
	"dnc/internal/sim/runner"
)

// TestStoreEndToEnd is the acceptance run for the column store pipeline: a
// real multi-design × multi-workload × multi-seed sweep through the harness
// with -store-out semantics, proving that
//
//  1. every journaled cell lands in the store with its counters,
//     histograms, and sampled series reproduced exactly,
//  2. Scan's aggregates match values derived independently from the
//     journal, bit for bit, and
//  3. the store file costs at most 25% of the JSONL journal bytes for the
//     same information.
func TestStoreEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep skipped in -short mode")
	}
	dir := t.TempDir()
	storePath := filepath.Join(dir, "results.dncr")
	journalPath := filepath.Join(dir, "sweep.jsonl")
	cfg := Config{
		Cores:         2,
		WarmCycles:    20_000,
		MeasureCycles: 20_000,
		Seed:          1,
		Workloads:     []string{"Web-Frontend", "Web-Search"},
		Samples:       3,
		StorePath:     storePath,
	}
	h := New(cfg)
	if err := h.Prewarm(context.Background(), journalPath); err != nil {
		t.Fatalf("prewarm: %v", err)
	}
	if err := h.Err(); err != nil {
		t.Fatalf("harness: %v", err)
	}
	n, err := h.CloseStore()
	if err != nil {
		t.Fatalf("CloseStore: %v", err)
	}
	const wantCells = 2 * 3 * 3 // workloads × prewarm designs × samples
	if n != wantCells {
		t.Fatalf("store holds %d cells, want %d", n, wantCells)
	}

	// Load the journal: the uncompressed ground truth for every cell.
	journal := make(map[string]*runner.ResultJSON)
	jf, err := os.Open(journalPath)
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	defer jf.Close()
	var journalBytes int64
	sc := bufio.NewScanner(jf)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		journalBytes += int64(len(sc.Bytes())) + 1
		var je struct {
			ID     string             `json:"id"`
			Status runner.Status      `json:"status"`
			Result *runner.ResultJSON `json:"result"`
		}
		if err := json.Unmarshal(sc.Bytes(), &je); err != nil {
			t.Fatalf("bad journal line: %v", err)
		}
		if je.Status == runner.StatusOK && je.Result != nil {
			journal[je.ID] = je.Result
		}
	}
	if len(journal) != wantCells {
		t.Fatalf("journal has %d ok cells, want %d", len(journal), wantCells)
	}

	r, err := resultstore.OpenReader(storePath)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	cells, err := r.Cells(resultstore.CellOptions{WithHists: true, WithSeries: true})
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	if len(cells) != wantCells {
		t.Fatalf("store decodes %d cells, want %d", len(cells), wantCells)
	}

	// Exact reproduction: every store cell against its journal entry. The
	// runner cell ID is reconstructible from the cell's identity tags, so
	// the pairing needs no side channel.
	type gkey struct{ workload, design string }
	refVals := make(map[gkey][]float64) // journal-derived ipc, in store file order
	var order []gkey
	for i := range cells {
		c := &cells[i]
		x := int((c.Seed - cfg.Seed) / 7919)
		id := fmt.Sprintf("%s|%s|%+v|c%d|w%d|m%d|s%d|x%d", c.Workload, c.Design, runOpts{},
			cfg.Cores, cfg.WarmCycles, cfg.MeasureCycles, cfg.Seed, x)
		res := journal[id]
		if res == nil {
			t.Fatalf("store cell %s has no journal entry %s", c.Key(), id)
		}
		var want resultstore.Cell
		want.SetResult(res)
		if !reflect.DeepEqual(c.Metrics, want.Metrics) {
			t.Fatalf("cell %s: store metrics differ from journal:\nstore   %v\njournal %v",
				c.Key(), c.Metrics, want.Metrics)
		}
		if !reflect.DeepEqual(c.Hists, want.Hists) {
			t.Fatalf("cell %s: store histograms differ from journal", c.Key())
		}
		if len(c.Series) == 0 {
			t.Fatalf("cell %s has no sampled series; StorePath should enable obs series capture", c.Key())
		}
		if !reflect.DeepEqual(c.Series, want.Series) {
			t.Fatalf("cell %s: store series differ from journal", c.Key())
		}
		k := gkey{c.Workload, c.Design}
		if _, seen := refVals[k]; !seen {
			order = append(order, k)
		}
		refVals[k] = append(refVals[k], float64(res.M.Retired)/float64(res.M.Cycles))
	}

	// Aggregates: Scan against the same reduction computed from journal
	// values, in store file order with identical float operations.
	groups, err := resultstore.Scan(r, resultstore.Query{Metric: resultstore.MetricIPC})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].workload != order[j].workload {
			return order[i].workload < order[j].workload
		}
		return order[i].design < order[j].design
	})
	if len(groups) != len(order) {
		t.Fatalf("Scan returned %d groups, want %d", len(groups), len(order))
	}
	for i, k := range order {
		vals := refVals[k]
		want := resultstore.Group{Workload: k.workload, Design: k.design, N: len(vals), Min: vals[0], Max: vals[0]}
		var sum float64
		for _, v := range vals {
			sum += v
			if v < want.Min {
				want.Min = v
			}
			if v > want.Max {
				want.Max = v
			}
		}
		want.Mean = sum / float64(want.N)
		var ss float64
		for _, v := range vals {
			d := v - want.Mean
			ss += d * d
		}
		want.CI95 = 1.96 * math.Sqrt(ss/float64(want.N-1)) / math.Sqrt(float64(want.N))
		if groups[i] != want {
			t.Fatalf("group %s/%s: store aggregate %+v != journal-derived %+v",
				k.workload, k.design, groups[i], want)
		}
	}

	// Compression: the acceptance bound from the issue — the store answers
	// the same questions at ≤25% of the journal's JSONL footprint.
	fi, err := os.Stat(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size()*4 > journalBytes {
		t.Fatalf("store is %d bytes, journal %d: store exceeds 25%% of the journal",
			fi.Size(), journalBytes)
	}
	t.Logf("store %d bytes vs journal %d bytes (%.1f%%)",
		fi.Size(), journalBytes, 100*float64(fi.Size())/float64(journalBytes))
}
