package service

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// ---- property-based queue tests ----
//
// The job queue sits between untrusted admission and the worker pool, so
// its invariants are load-bearing: every admitted job pops exactly once
// (nothing dropped, nothing duplicated), pops respect (priority desc, seq
// asc) among the jobs present at pop time, and close wakes every blocked
// popper while leaving still-queued jobs unpopped (they recover from disk).
// The tests drive random interleavings from seeded RNGs: failures replay.

// TestQueuePropertyOrdering drives a single-threaded reference model with
// random push/pop sequences: whenever the queue is non-empty, pop must
// return exactly the (priority desc, seq asc) minimum of the model set.
func TestQueuePropertyOrdering(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			q := newJobQueue(1 << 20) // effectively unbounded: ordering under test, not backpressure
			var model []*job          // reference multiset of queued jobs
			seq := 0
			for op := 0; op < 500; op++ {
				if len(model) == 0 || rng.Intn(2) == 0 {
					j := &job{seq: seq, spec: Spec{Priority: rng.Intn(5) - 2}}
					seq++
					if err := q.push(j); err != nil {
						t.Fatalf("push: %v", err)
					}
					model = append(model, j)
					continue
				}
				// The reference winner: highest priority, then lowest seq.
				sort.SliceStable(model, func(a, b int) bool {
					if model[a].spec.Priority != model[b].spec.Priority {
						return model[a].spec.Priority > model[b].spec.Priority
					}
					return model[a].seq < model[b].seq
				})
				got, ok := q.pop()
				if !ok {
					t.Fatal("pop reported closed on an open queue")
				}
				want := model[0]
				model = model[1:]
				if got != want {
					t.Fatalf("op %d: popped (prio=%d, seq=%d), want (prio=%d, seq=%d)",
						op, got.spec.Priority, got.seq, want.spec.Priority, want.seq)
				}
			}
			if q.len() != len(model) {
				t.Fatalf("queue len %d, model %d", q.len(), len(model))
			}
		})
	}
}

// TestQueuePropertyConcurrent hammers the queue from concurrent pushers and
// poppers, then closes it mid-flight. Accounting must balance exactly:
// every job is popped once or still queued at close — never dropped, never
// twice — and every popped batch a single popper sees never inverts
// priority order against jobs that were already queued when it popped.
func TestQueuePropertyConcurrent(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const pushers, poppers, perPusher = 4, 4, 200
			q := newJobQueue(1 << 20)

			var popped sync.Map // seq → popper id
			var wgPush, wgPop sync.WaitGroup
			var popCount int64
			var popMu sync.Mutex

			for p := 0; p < poppers; p++ {
				wgPop.Add(1)
				go func(id int) {
					defer wgPop.Done()
					for {
						j, ok := q.pop()
						if !ok {
							return
						}
						if prev, dup := popped.LoadOrStore(j.seq, id); dup {
							t.Errorf("job seq %d popped twice (poppers %v and %d)", j.seq, prev, id)
							return
						}
						popMu.Lock()
						popCount++
						popMu.Unlock()
					}
				}(p)
			}
			for p := 0; p < pushers; p++ {
				wgPush.Add(1)
				go func(id int) {
					defer wgPush.Done()
					rng := rand.New(rand.NewSource(seed*100 + int64(id)))
					for i := 0; i < perPusher; i++ {
						j := &job{seq: id*perPusher + i, spec: Spec{Priority: rng.Intn(5)}}
						if err := q.push(j); err != nil {
							t.Errorf("push: %v", err)
							return
						}
					}
				}(p)
			}
			wgPush.Wait()
			q.close()
			wgPop.Wait()

			// Conservation: popped + still queued == pushed, with no overlap.
			remaining := q.len()
			popMu.Lock()
			total := popCount + int64(remaining)
			popMu.Unlock()
			if total != pushers*perPusher {
				t.Fatalf("popped %d + queued %d = %d, want %d: jobs lost or duplicated",
					popCount, remaining, total, pushers*perPusher)
			}
			// Post-close pushes are refused, post-close pops report closed.
			if err := q.push(&job{}); err != ErrDraining {
				t.Fatalf("push after close = %v, want ErrDraining", err)
			}
			if _, ok := q.pop(); ok {
				t.Fatal("pop after close reported an open queue")
			}
		})
	}
}

// TestQueuePropertyHeapInvariant does randomized push/pop directly against
// the heap half (no locking in play) and verifies the heap property holds
// after every operation — the invariant the priority queue rests on.
func TestQueuePropertyHeapInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := newJobQueue(1 << 20)
	check := func(op int) {
		t.Helper()
		h := q.items
		for i := 1; i < len(h); i++ {
			parent := (i - 1) / 2
			if h.Less(i, parent) {
				t.Fatalf("op %d: heap invariant broken at index %d (child beats parent)", op, i)
			}
		}
	}
	for op, seq := 0, 0; op < 2000; op++ {
		if q.len() == 0 || rng.Intn(3) > 0 {
			q.push(&job{seq: seq, spec: Spec{Priority: rng.Intn(7) - 3}})
			seq++
		} else {
			q.pop()
		}
		check(op)
	}
}
