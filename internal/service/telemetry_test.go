package service

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"dnc/internal/service/worker"
	"dnc/internal/telemetry"
)

// ---- telemetry plane: /metrics, /v1/jobs/{id}/trace, stat table ----

// fetchMetrics scrapes /metrics and parses the exposition into sample name
// (labels included, verbatim) → value.
func fetchMetrics(t *testing.T, e *testEnv) (map[string]float64, []byte) {
	t.Helper()
	resp, err := http.Get(e.base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out, body
}

// checkTraceConservation asserts the telemetry acceptance property on one
// finished job: every cell's timeline is terminal with a complete span
// chain — contiguous phases tiling [enqueued, done], every attempt closed —
// and phase durations sum to the end-to-end latency within 1ms (they are
// exact by construction; the tolerance is the documented bound).
func checkTraceConservation(t *testing.T, e *testEnv, jobID string, totalCells int) telemetry.JobSnapshot {
	t.Helper()
	snap, ok := e.srv.rec.Job(jobID)
	if !ok {
		t.Fatalf("recorder has no timeline for job %s", jobID)
	}
	if len(snap.Cells) != totalCells {
		t.Fatalf("timeline has %d cells, want %d", len(snap.Cells), totalCells)
	}
	for _, c := range snap.Cells {
		if c.Outcome == "" || c.Done < 0 {
			t.Fatalf("cell %s not finalized (outcome %q done %d)", c.SpanID, c.Outcome, c.Done)
		}
		if len(c.Phases) == 0 {
			t.Fatalf("cell %s has no phases", c.SpanID)
		}
		if c.Phases[0].Start != c.Enqueued {
			t.Fatalf("cell %s: first phase starts at %d, enqueued at %d", c.SpanID, c.Phases[0].Start, c.Enqueued)
		}
		for i := 1; i < len(c.Phases); i++ {
			if c.Phases[i].Start != c.Phases[i-1].End {
				t.Fatalf("cell %s: phase %q starts at %d but %q ended at %d (gap or overlap)",
					c.SpanID, c.Phases[i].Name, c.Phases[i].Start, c.Phases[i-1].Name, c.Phases[i-1].End)
			}
		}
		if last := c.Phases[len(c.Phases)-1]; last.End != c.Done {
			t.Fatalf("cell %s: last phase ends at %d, cell done at %d", c.SpanID, last.End, c.Done)
		}
		if diff := c.PhaseSum() - c.E2E(); diff > 1000 || diff < -1000 {
			t.Fatalf("cell %s: phase sum %dµs vs e2e %dµs — conservation broken beyond 1ms", c.SpanID, c.PhaseSum(), c.E2E())
		}
		for _, a := range c.Attempts {
			if a.End < 0 || a.Outcome == "open" {
				t.Fatalf("cell %s: attempt %d on %q left open (%+v)", c.SpanID, a.N, a.Worker, a)
			}
		}
	}
	return snap
}

// fetchPerfetto pulls /v1/jobs/{id}/trace and validates the trace_event
// envelope Perfetto requires.
func fetchPerfetto(t *testing.T, e *testEnv, jobID string) []map[string]any {
	t.Helper()
	resp, err := http.Get(e.base + "/v1/jobs/" + jobID + "/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d, want 200", resp.StatusCode)
	}
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("event without phase: %v", ev)
		}
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event without name: %v", ev)
		}
	}
	return doc.TraceEvents
}

func TestMetricsEndToEndWithLint(t *testing.T) {
	e := newTestEnv(t, func(c *Config) { c.RunCell = fakeRunCell })
	spec := smallSpec()
	spec.Seeds = []int64{1, 2, 3}
	st := e.submit(spec)
	if fin := e.waitJob(st.ID); fin.State != JobDone {
		t.Fatalf("job state %s, want done", fin.State)
	}
	// Same spec again: every cell is a cache hit, counted as deduped.
	st2 := e.submit(spec)
	e.waitJob(st2.ID)

	m, body := fetchMetrics(t, e)
	if errs := telemetry.Lint(body); len(errs) != 0 {
		t.Fatalf("exposition lint: %v", errs)
	}

	// Cell conservation across both jobs: admitted + deduped + dead covers
	// every submitted cell.
	total := float64(2 * 3)
	if got := m["dnc_cells_admitted_total"] + m["dnc_cells_deduped_total"] + m["dnc_cells_dead_lettered_total"]; got != total {
		t.Fatalf("admitted+deduped+dead = %v, want %v (cells lost or double-counted)", got, total)
	}
	if m["dnc_jobs_submitted_total"] != 2 || m["dnc_jobs_completed_total"] != 2 {
		t.Fatalf("job counters: submitted=%v completed=%v, want 2/2",
			m["dnc_jobs_submitted_total"], m["dnc_jobs_completed_total"])
	}

	// /metrics and /v1/healthz must agree on every mirrored counter — they
	// read the same sources.
	var hz map[string]any
	if code := e.getJSON("/v1/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	for metric, stat := range map[string]string{
		"dnc_cache_hits_total":       "cache_hits",
		"dnc_cache_evictions_total":  "cache_evictions",
		"dnc_cells_reassigned_total": "reassigned",
		"dnc_workers_expired_total":  "workers_expired",
		"dnc_remote_admitted_total":  "remote_admitted",
	} {
		want, ok := hz[stat].(float64)
		if !ok {
			t.Fatalf("healthz missing stat %q", stat)
		}
		if m[metric] != want {
			t.Fatalf("%s = %v but healthz %s = %v", metric, m[metric], stat, want)
		}
	}

	// Histograms observed real cells: e2e count matches fresh admissions.
	if got := m[`dnc_e2e_latency_seconds_count`]; got != total {
		t.Fatalf("e2e histogram count = %v, want %v (every finalized cell observed)", got, total)
	}

	// The timeline behind the same job: conserved phases, exportable trace.
	snap := checkTraceConservation(t, e, st.ID, 3)
	for _, c := range snap.Cells {
		if c.Outcome != "admitted" {
			t.Fatalf("cell %s outcome %q, want admitted", c.SpanID, c.Outcome)
		}
	}
	snap2 := checkTraceConservation(t, e, st2.ID, 3)
	for _, c := range snap2.Cells {
		if c.Outcome != "cached" {
			t.Fatalf("second-job cell %s outcome %q, want cached", c.SpanID, c.Outcome)
		}
	}
	fetchPerfetto(t, e, st.ID)
}

func TestTraceEndpointDisabledAndUnknown(t *testing.T) {
	e := newTestEnv(t, func(c *Config) {
		c.RunCell = fakeRunCell
		c.DisableTelemetry = true
	})
	st := e.submit(smallSpec())
	e.waitJob(st.ID)
	if code := e.getJSON("/v1/jobs/"+st.ID+"/trace", nil); code != http.StatusNotFound {
		t.Fatalf("trace with telemetry disabled = %d, want 404", code)
	}
	if code := e.getJSON("/metrics", nil); code != http.StatusNotFound {
		t.Fatalf("/metrics with telemetry disabled = %d, want 404", code)
	}

	e2 := newTestEnv(t, func(c *Config) { c.RunCell = fakeRunCell })
	if code := e2.getJSON("/v1/jobs/nope/trace", nil); code != http.StatusNotFound {
		t.Fatalf("trace for unknown job = %d, want 404", code)
	}
}

// TestHealthzServesDeclaredStatTable pins satellite guarantee #1: the wire
// body of /v1/healthz is rendered from the declared stat table — exactly
// those keys (plus status), nothing ad hoc.
func TestHealthzServesDeclaredStatTable(t *testing.T) {
	e := newTestEnv(t, func(c *Config) { c.RunCell = fakeRunCell })
	var hz map[string]any
	if code := e.getJSON("/v1/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	want := make(map[string]bool)
	for _, n := range statNames() {
		want[n] = true
	}
	want["status"] = true
	for k := range hz {
		if !want[k] {
			t.Errorf("healthz serves undeclared key %q", k)
		}
	}
	for k := range want {
		if _, ok := hz[k]; !ok {
			t.Errorf("healthz missing declared key %q", k)
		}
	}

	var dv struct {
		Service map[string]any `json:"service"`
	}
	if code := e.getJSON("/debug/vars", &dv); code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", code)
	}
	for _, n := range statNames() {
		if _, ok := dv.Service[n]; !ok {
			t.Errorf("/debug/vars service section missing declared key %q", n)
		}
	}
}

// TestDocsOperationsNamesServed is the golden test tying the runbook to the
// code: every stat or metric name documented in docs/OPERATIONS.md (a
// backticked lowercase_underscore token) must actually be served — by the
// stat table, the server metric registry, or the worker metric registry.
func TestDocsOperationsNamesServed(t *testing.T) {
	doc, err := os.ReadFile("../../docs/OPERATIONS.md")
	if err != nil {
		t.Fatalf("reading OPERATIONS.md: %v", err)
	}
	served := make(map[string]bool)
	for _, n := range statNames() {
		served[n] = true
	}
	srv, err := New(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.cache.close()
	for _, n := range srv.tel.reg.Names() {
		served[n] = true
	}
	for _, n := range worker.NewTelemetry().Reg.Names() {
		served[n] = true
	}

	re := regexp.MustCompile("`([a-z][a-z0-9]*(?:_[a-z0-9]+)+)`")
	found := 0
	for _, match := range re.FindAllStringSubmatch(string(doc), -1) {
		name := match[1]
		found++
		if !served[name] {
			t.Errorf("OPERATIONS.md documents %q but nothing serves it", name)
		}
	}
	if found < len(statNames()) {
		t.Errorf("OPERATIONS.md documents only %d names; the stat table alone has %d — runbook incomplete", found, len(statNames()))
	}
}

// TestTelemetryOverheadGate is the acceptance benchmark: a full sweep with
// telemetry enabled must land within 3% of the disabled baseline. Wall-clock
// sensitive, so it only runs when explicitly requested (the CI overhead-gate
// step sets DNC_TELEMETRY_OVERHEAD=1); min-of-rounds absorbs scheduler noise.
func TestTelemetryOverheadGate(t *testing.T) {
	if os.Getenv("DNC_TELEMETRY_OVERHEAD") != "1" {
		t.Skip("set DNC_TELEMETRY_OVERHEAD=1 to run the telemetry overhead gate")
	}
	spec := smallSpec()
	spec.Designs = []string{"baseline", "NL", "N2L"}
	spec.Seeds = []int64{1, 2}
	spec.WarmCycles = 12_000
	spec.MeasureCycles = 12_000

	const rounds = 5
	run := func(label string, disable bool) time.Duration {
		best := time.Duration(math.MaxInt64)
		for round := 0; round < rounds; round++ {
			// Each round is a subtest so its server drains before the next
			// starts; each gets a fresh DataDir, so every round simulates the
			// same six cells cold.
			t.Run(fmt.Sprintf("%s/round%d", label, round), func(t *testing.T) {
				e := newTestEnv(t, func(c *Config) { c.DisableTelemetry = disable })
				start := time.Now()
				st := e.submit(spec)
				if fin := e.waitJob(st.ID); fin.State != JobDone {
					t.Fatalf("job state %s (%v), want done", fin.State, fin.Error)
				}
				if d := time.Since(start); d < best {
					best = d
				}
			})
		}
		return best
	}

	baseline := run("disabled", true)
	enabled := run("enabled", false)
	overhead := float64(enabled-baseline) / float64(baseline)
	t.Logf("telemetry overhead: baseline=%v enabled=%v overhead=%.2f%%", baseline, enabled, overhead*100)
	if overhead > 0.03 {
		t.Fatalf("telemetry overhead %.2f%% exceeds the 3%% budget (baseline %v, enabled %v)",
			overhead*100, baseline, enabled)
	}
}
