package workerproto

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"dnc/internal/isa"
)

// TestKeyStability pins the canonical key format: cell identity is a wire
// contract between server and workers (and the address of every cached
// result), so any change here must be deliberate and bump the v1 prefix.
func TestKeyStability(t *testing.T) {
	c := CellSpec{Workload: "OLTP-DB-A", Design: "SN4L+Dis+BTB", Mode: isa.Variable,
		Cores: 8, Warm: 100, Measure: 200, Seed: 3}
	want := "v1|w=OLTP-DB-A|d=SN4L+Dis+BTB|m=variable|c=8|warm=100|meas=200|seed=3"
	if got := c.Key(); got != want {
		t.Fatalf("Key = %q, want %q", got, want)
	}
	h := sha256.Sum256([]byte(want))
	if got := c.Digest(); got != hex.EncodeToString(h[:]) {
		t.Fatalf("Digest = %q not SHA-256(Key)", got)
	}
	c.Mode = isa.Fixed
	if c.Key() == want {
		t.Fatal("mode change did not change the key")
	}
}

// TestParseKeyRoundTrip: ParseKey is the exact inverse of Key for every
// mode and for negative seeds, and rejects anything that is not a
// well-formed v1 key — the property the store backfill path leans on.
func TestParseKeyRoundTrip(t *testing.T) {
	specs := []CellSpec{
		{Workload: "OLTP-DB-A", Design: "SN4L+Dis+BTB", Mode: isa.Variable,
			Cores: 8, Warm: 100, Measure: 200, Seed: 3},
		{Workload: "Web-Frontend", Design: "baseline", Mode: isa.Fixed,
			Cores: 2, Warm: 600, Measure: 600, Seed: -7},
		{Workload: "Media-Streaming", Design: "confluence", Cores: 16,
			Warm: 200_000, Measure: 200_000, Seed: 0},
	}
	for _, c := range specs {
		got, ok := ParseKey(c.Key())
		if !ok {
			t.Fatalf("ParseKey rejected its own key %q", c.Key())
		}
		if got != c {
			t.Fatalf("ParseKey(%q) = %+v, want %+v", c.Key(), got, c)
		}
	}
	for _, bad := range []string{
		"",
		"v2|w=a|d=b|m=fixed|c=1|warm=1|meas=1|seed=1",
		"v1|w=a|d=b|m=fixed|c=1|warm=1|meas=1",
		"v1|w=a|d=b|m=sometimes|c=1|warm=1|meas=1|seed=1",
		"v1|w=|d=b|m=fixed|c=1|warm=1|meas=1|seed=1",
		"v1|w=a|d=b|m=fixed|c=x|warm=1|meas=1|seed=1",
		"v1|w=a|d=b|m=fixed|c=1|warm=-2|meas=1|seed=1",
		"v1|w=a|d=b|m=fixed|c=1|warm=1|meas=1|seed=1|extra=9",
		"v1|d=b|w=a|m=fixed|c=1|warm=1|meas=1|seed=1",
	} {
		if spec, ok := ParseKey(bad); ok {
			t.Fatalf("ParseKey accepted malformed key %q as %+v", bad, spec)
		}
	}
}

func TestSpecRoundTripsJSON(t *testing.T) {
	c := CellSpec{Workload: "Web-Frontend", Design: "baseline", Cores: 2, Warm: 600, Measure: 600, Seed: 1}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back CellSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != c || back.Digest() != c.Digest() {
		t.Fatalf("round trip changed the cell: %+v vs %+v", back, c)
	}
}

func TestValid(t *testing.T) {
	good := CellSpec{Workload: "Web-Frontend", Design: "baseline", Cores: 2, Warm: 600, Measure: 600, Seed: 1}
	if !good.Valid() {
		t.Fatal("known workload/design reported invalid")
	}
	for _, bad := range []CellSpec{
		{Workload: "nope", Design: "baseline", Cores: 2},
		{Workload: "Web-Frontend", Design: "nope", Cores: 2},
		{Workload: "Web-Frontend", Design: "baseline", Cores: 0},
	} {
		if bad.Valid() {
			t.Fatalf("invalid spec %+v reported valid", bad)
		}
	}
}

// TestRunConfigDeterministic: the same cell must build the same simulation
// configuration every time — the property that makes remote execution
// bit-identical to local.
func TestRunConfigDeterministic(t *testing.T) {
	c := CellSpec{Workload: "Web-Frontend", Design: "SN4L+Dis+BTB", Cores: 4, Warm: 100, Measure: 200, Seed: 9}
	a, b := c.RunConfig(), c.RunConfig()
	if a.Cores != b.Cores || a.WarmCycles != b.WarmCycles || a.MeasureCycles != b.MeasureCycles ||
		a.Seed != b.Seed || a.Workload.Name != b.Workload.Name ||
		a.Core.PrefetchBufferEntries != b.Core.PrefetchBufferEntries {
		t.Fatalf("RunConfig not stable: %+v vs %+v", a, b)
	}
	if a.Cores != 4 || a.WarmCycles != 100 || a.MeasureCycles != 200 || a.Seed != 9 {
		t.Fatalf("RunConfig dropped spec fields: %+v", a)
	}
	if a.NewDesign == nil {
		t.Fatal("RunConfig missing the design constructor")
	}
}
