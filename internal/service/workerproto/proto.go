// Package workerproto is the wire protocol between the dncserved control
// plane and remote dncworker processes. It holds exactly the types both
// sides must agree on — the cell specification (the unit of leased work,
// whose content address is the admission check on upload) and the four
// work-API message pairs — so the server and the worker cannot drift apart
// on what a cell is or how its identity is computed.
//
// The protocol is HTTP/JSON over four endpoints:
//
//	POST /v1/workers/register       RegisterRequest  → RegisterResponse
//	POST /v1/workers/{id}/lease     LeaseRequest     → LeaseResponse
//	POST /v1/workers/{id}/heartbeat HeartbeatRequest → HeartbeatResponse
//	POST /v1/cells/{digest}/complete CompleteRequest → CompleteResponse
//
// Execution is at-least-once: a lease that expires (missed heartbeats, a
// frozen worker) is reassigned, and the original holder may still finish
// and upload. Determinism makes that safe — two executions of the same cell
// are bit-identical, the server verifies every upload's content address and
// admits into a first-insert-wins cache, so duplicates are provably
// harmless and are acknowledged idempotently.
package workerproto

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"dnc/internal/core"
	"dnc/internal/isa"
	"dnc/internal/prefetch"
	"dnc/internal/sim"
	"dnc/internal/sim/runner"
	"dnc/internal/workloads"
)

// CellSpec is one simulation point: the complete set of inputs that
// determine a deterministic run's output. Its Key is the canonical identity
// string and its Digest the content address under which the result is
// cached, deduplicated, and leased to workers.
type CellSpec struct {
	Workload string   `json:"workload"`
	Design   string   `json:"design"`
	Mode     isa.Mode `json:"mode"`
	Cores    int      `json:"cores"`
	Warm     uint64   `json:"warm"`
	Measure  uint64   `json:"measure"`
	Seed     int64    `json:"seed"`
}

// Key is the canonical, human-readable cell identity. The "v1" prefix
// versions the keying scheme: any change to what determines a result
// (simulator semantics are pinned separately by the difftest suite) must
// bump it so stale cache entries can never alias new cells.
func (c CellSpec) Key() string {
	return fmt.Sprintf("v1|w=%s|d=%s|m=%s|c=%d|warm=%d|meas=%d|seed=%d",
		c.Workload, c.Design, c.ModeString(), c.Cores, c.Warm, c.Measure, c.Seed)
}

// ModeString is the mode's canonical key token ("fixed" or "variable").
func (c CellSpec) ModeString() string {
	if c.Mode == isa.Variable {
		return "variable"
	}
	return "fixed"
}

// ParseKey inverts Key: it parses a canonical v1 cell-identity string back
// into its spec. The result cache persists keys, so rebuilding derived
// artifacts from the cache — the column-store backfill on dncserved
// startup — means recovering each cell's tags from its key alone. A key
// from a different keying-scheme version, or any malformed string, returns
// false. (Workload and design names never contain '|'; the catalog and
// preset tables enforce that implicitly by construction.)
func ParseKey(key string) (CellSpec, bool) {
	parts := strings.Split(key, "|")
	if len(parts) != 8 || parts[0] != "v1" {
		return CellSpec{}, false
	}
	var c CellSpec
	fields := []struct {
		prefix string
		set    func(string) bool
	}{
		{"w=", func(v string) bool { c.Workload = v; return v != "" }},
		{"d=", func(v string) bool { c.Design = v; return v != "" }},
		{"m=", func(v string) bool {
			switch v {
			case "fixed":
				c.Mode = isa.Fixed
			case "variable":
				c.Mode = isa.Variable
			default:
				return false
			}
			return true
		}},
		{"c=", func(v string) bool {
			n, err := strconv.Atoi(v)
			c.Cores = n
			return err == nil
		}},
		{"warm=", func(v string) bool {
			n, err := strconv.ParseUint(v, 10, 64)
			c.Warm = n
			return err == nil
		}},
		{"meas=", func(v string) bool {
			n, err := strconv.ParseUint(v, 10, 64)
			c.Measure = n
			return err == nil
		}},
		{"seed=", func(v string) bool {
			n, err := strconv.ParseInt(v, 10, 64)
			c.Seed = n
			return err == nil
		}},
	}
	for i, f := range fields {
		p := parts[i+1]
		if !strings.HasPrefix(p, f.prefix) || !f.set(p[len(f.prefix):]) {
			return CellSpec{}, false
		}
	}
	return c, true
}

// Digest is the cell's content address: SHA-256 of Key, hex-encoded. A
// completion upload must carry a spec whose Digest matches the URL it is
// posted to; anything else is rejected before touching the cache.
func (c CellSpec) Digest() string {
	h := sha256.Sum256([]byte(c.Key()))
	return hex.EncodeToString(h[:])
}

var (
	tablesOnce  sync.Once
	catalogMap  map[string]prefetch.CatalogEntry
	workloadSet map[string]bool
)

// Tables returns the design catalog and workload-preset lookup tables both
// sides validate cells against (built once).
func Tables() (map[string]prefetch.CatalogEntry, map[string]bool) {
	tablesOnce.Do(func() {
		catalogMap = make(map[string]prefetch.CatalogEntry)
		for _, e := range prefetch.Catalog() {
			catalogMap[e.Name] = e
		}
		workloadSet = make(map[string]bool)
		for _, n := range workloads.Names {
			workloadSet[n] = true
		}
	})
	return catalogMap, workloadSet
}

// Valid reports whether the spec names a known workload and design — the
// check a worker (or the server's admission path) runs before building
// simulation state from an untrusted spec.
func (c CellSpec) Valid() bool {
	designs, wls := Tables()
	_, okD := designs[c.Design]
	return okD && wls[c.Workload] && c.Cores >= 1
}

// RunConfig builds the cell's simulation configuration exactly as the bench
// harness does: preset workload parameters, catalog design constructor,
// default core config with the design's prefetch-buffer size. Both the
// server's in-process pool and remote workers call this, which is what
// makes their results bit-identical.
func (c CellSpec) RunConfig() sim.RunConfig {
	designs, _ := Tables()
	e := designs[c.Design] // validated before execution
	cc := core.DefaultConfig()
	cc.PrefetchBufferEntries = e.PrefetchBufferEntries
	return sim.RunConfig{
		Workload:      workloads.Params(c.Workload, c.Mode),
		NewDesign:     e.New,
		Cores:         c.Cores,
		WarmCycles:    c.Warm,
		MeasureCycles: c.Measure,
		Seed:          c.Seed,
		Core:          cc,
	}
}

// ---- work-API messages ----

// RegisterRequest announces a worker to the control plane.
type RegisterRequest struct {
	// Name is a human-readable label (hostname, pod name) for operators;
	// identity is the server-issued WorkerID, not the name.
	Name string `json:"name"`
	// Capacity is how many cells the worker executes concurrently; the
	// server uses it only for accounting.
	Capacity int `json:"capacity"`
}

// RegisterResponse issues the worker its identity and the lease timing
// contract it must honor.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseTTLMS is the heartbeat window in milliseconds: a worker silent
	// for longer forfeits every lease it holds.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// HeartbeatMS is the cadence the worker should beat at (a fraction of
	// the TTL, leaving room for lost requests).
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// LeaseBatchMax caps how many cells one lease request may claim.
	LeaseBatchMax int `json:"lease_batch_max"`
}

// LeaseRequest pulls a batch of cells.
type LeaseRequest struct {
	// Max is the most cells the worker wants (clamped to LeaseBatchMax).
	Max int `json:"max"`
}

// Lease is one cell granted to a worker.
type Lease struct {
	Digest string   `json:"digest"`
	Key    string   `json:"key"`
	Spec   CellSpec `json:"spec"`
	// TraceID and SpanID are the telemetry identity of the cell's journey:
	// the trace is the submitting job's, the span is derived from the cell's
	// content key. The worker echoes both (plus its own ID) as X-DNC-*
	// headers on its completion upload so server-side logs and timelines
	// stitch worker attempts into the job's trace. Empty when the server
	// runs with telemetry disabled.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// LeaseResponse returns the granted batch (possibly empty — the worker
// polls again after a beat).
type LeaseResponse struct {
	Leases []Lease `json:"leases"`
	// Draining tells the worker the server is shutting down: finish what
	// you hold, expect no more work.
	Draining bool `json:"draining"`
}

// HeartbeatRequest renews the worker's leases.
type HeartbeatRequest struct {
	// Active lists the cell digests the worker still holds (leased but not
	// yet completed), so the server can cross-check its lease table.
	Active []string `json:"active,omitempty"`
}

// HeartbeatResponse reports leases the server has revoked (expired,
// frozen past the progress budget, or reassigned); the worker must abandon
// them — any eventual upload is still safe, just possibly redundant.
type HeartbeatResponse struct {
	Revoked []string `json:"revoked,omitempty"`
}

// CompleteRequest uploads one finished cell: a result on success, an error
// on failure. Spec is mandatory — the server recomputes its Digest and
// refuses the upload if it does not match the URL, so a corrupted or torn
// body can never be admitted under the wrong content address.
type CompleteRequest struct {
	WorkerID string             `json:"worker_id"`
	Spec     CellSpec           `json:"spec"`
	Result   *runner.ResultJSON `json:"result,omitempty"`
	// Error carries a failed execution's message (Result nil).
	Error string `json:"error,omitempty"`
	// Transient marks the failure worth retrying (the worker's per-cell
	// deadline expired, as opposed to a deterministic panic).
	Transient bool `json:"transient,omitempty"`
}

// Completion status values returned in CompleteResponse.Status.
const (
	// StatusAdmitted: a fresh result entered the cache.
	StatusAdmitted = "admitted"
	// StatusDuplicate: the cache already held a bit-identical result (an
	// expired lease finishing late, or at-least-once redelivery); the
	// upload is acknowledged idempotently.
	StatusDuplicate = "duplicate"
	// StatusFailureRecorded: the reported execution failure was delivered
	// to the waiting job.
	StatusFailureRecorded = "failure-recorded"
)

// CompleteResponse acknowledges an upload.
type CompleteResponse struct {
	Status string `json:"status"`
}
