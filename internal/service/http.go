package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"dnc/internal/service/workerproto"
	"dnc/internal/sim/runner"
	"dnc/internal/telemetry"
)

// maxSpecBytes bounds a submission body; specs are small JSON documents
// and anything larger is a client error or an attack.
const maxSpecBytes = 1 << 20

// maxCompleteBytes bounds a worker's result upload: a full ResultJSON with
// per-core metrics and the observability snapshot runs to a few hundred KB
// at most, so 16 MiB is generous without letting a hostile client stream
// unbounded bytes into the decoder.
const maxCompleteBytes = 16 << 20

// resultsPollInterval paces the results streamer's wait for new outcomes
// on a still-running job.
const resultsPollInterval = 50 * time.Millisecond

// handler assembles the API mux:
//
//	POST /v1/jobs              — submit a sweep spec; 202 with the job record
//	GET  /v1/jobs              — list all jobs
//	GET  /v1/jobs/{id}         — one job's status
//	GET  /v1/jobs/{id}/results — stream outcomes + result bodies as JSONL
//	GET  /v1/query             — aggregate metrics from the columnar result store
//	GET  /v1/deadletters       — the poisoned-cell list
//	GET  /v1/healthz           — liveness + operational stats (503 on drain)
//
// plus the worker-plane work API (see internal/service/workerproto):
//
//	POST /v1/workers/register        — a dncworker announces itself
//	POST /v1/workers/{id}/lease      — pull a batch of leased cells
//	POST /v1/workers/{id}/heartbeat  — renew leases; learn revocations
//	POST /v1/cells/{digest}/complete — upload a verified result or failure
//
// and the debug surface: the runner debug mux (progress, pprof) with
// /debug/sweep and /debug/vars overridden to fold in the worker plane and
// cache accounting.
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/deadletters", s.handleDeadLetters)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/workers/register", s.handleWorkerRegister)
	mux.HandleFunc("POST /v1/workers/{id}/lease", s.handleWorkerLease)
	mux.HandleFunc("POST /v1/workers/{id}/heartbeat", s.handleWorkerHeartbeat)
	mux.HandleFunc("POST /v1/cells/{digest}/complete", s.handleCellComplete)
	mux.Handle("/debug/", runner.DebugMux(s.progress))
	mux.HandleFunc("GET /debug/sweep", s.handleDebugSweep)
	mux.HandleFunc("GET /debug/vars", s.handleDebugVars)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed spec: %w", err))
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Backpressure: tell the client when to come back, scaled to the
		// backlog (one slot per queued job is a crude but monotone guess)
		// and equal-jittered so a burst of rejected clients spreads out
		// instead of stampeding back in lockstep.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.queue.len(), retryAfterRand)))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		w.Header().Set("Location", "/v1/jobs/"+st.ID)
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// resultLine is one JSONL line of a results stream: the outcome plus the
// cached result body (nil for dead or failed cells, or if the cache entry
// has been lost — the digest still identifies what the result was).
type resultLine struct {
	Outcome
	Result *runner.ResultJSON `json:"result,omitempty"`
}

// handleResults streams a job's outcomes as JSONL, following a running job
// live: lines are flushed as cells finish and the stream ends when the job
// reaches a terminal state (or re-queues on drain, or the client leaves).
// Slow clients hold a connection but no lock — each line is fetched and
// encoded independently.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		outs, state := j.outcomesFrom(next)
		for _, o := range outs {
			line := resultLine{Outcome: o}
			if o.ResultDigest != "" {
				if e, ok := s.cache.get(o.Digest); ok {
					line.Result = e.Result
				}
			}
			if err := enc.Encode(line); err != nil {
				return // client gone
			}
		}
		next += len(outs)
		if flusher != nil && len(outs) > 0 {
			flusher.Flush()
		}
		if state == JobDone || state == JobFailed {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return // draining: deliver what exists, end the stream
		case <-time.After(resultsPollInterval):
		}
	}
}

func (s *Server) handleDeadLetters(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.DeadLetters())
}

// handleHealthz reports ok while serving and draining (with a 503) during
// shutdown, so load balancers stop routing before the listener closes. The
// stats body carries the worker-plane accounting (registered/live/expired
// workers, lease depth) so degraded mode — zero live remote workers, cells
// running in-process — is visible at a glance.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	code := http.StatusOK
	status := "ok"
	if st.Draining {
		code = http.StatusServiceUnavailable
		status = "draining"
	}
	body := statsMap(st)
	body["status"] = status
	writeJSON(w, code, body)
}

// handleMetrics serves the Prometheus text exposition (404 when telemetry
// is disabled). Mirrored counters are read from the same sources as
// /v1/healthz at scrape time, so the two surfaces cannot disagree.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.tel == nil {
		writeError(w, http.StatusNotFound, errors.New("telemetry disabled"))
		return
	}
	s.tel.reg.Handler().ServeHTTP(w, r)
}

// handleJobTrace exports one job's telemetry timeline as Chrome
// trace_event JSON (open in Perfetto): the job lifecycle plus every cell's
// phase and attempt spans, reassignments visible as revoked attempts.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.rec == nil {
		writeError(w, http.StatusNotFound, errors.New("telemetry disabled"))
		return
	}
	if _, ok := s.Job(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if ok, _ := s.rec.WriteJobPerfetto(w, id); !ok {
		// Known job, no timeline yet (recovered before any event).
		writeError(w, http.StatusNotFound, fmt.Errorf("no timeline for job %q yet", id))
	}
}

// retryAfterRand is the jitter source seam (tests pin it).
var retryAfterRand = rand.Float64

// retryAfterSeconds converts the queue backlog into an equal-jittered
// Retry-After: half the backlog-scaled estimate guaranteed, half uniformly
// random, never below one second — the same shape as the runner's retry
// backoff, for the same reason (no synchronized stampedes).
func retryAfterSeconds(backlog int, rnd func() float64) int {
	base := 1 + backlog
	half := float64(base) / 2
	ra := int(half + rnd()*half + 0.5)
	if ra < 1 {
		ra = 1
	}
	return ra
}

// ---- worker-plane handlers ----

func decodeBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	var req workerproto.RegisterRequest
	if err := decodeBody(w, r, maxSpecBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed register request: %w", err))
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	writeJSON(w, http.StatusOK, s.dispatch.register(req.Name, req.Capacity))
}

func (s *Server) handleWorkerLease(w http.ResponseWriter, r *http.Request) {
	var req workerproto.LeaseRequest
	if err := decodeBody(w, r, maxSpecBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed lease request: %w", err))
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		// Finish what you hold; no new work is granted during a drain.
		writeJSON(w, http.StatusOK, workerproto.LeaseResponse{Draining: true})
		return
	}
	leases, err := s.dispatch.lease(r.PathValue("id"), req.Max)
	if errors.Is(err, errUnknownWorker) {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, workerproto.LeaseResponse{Leases: leases})
}

func (s *Server) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req workerproto.HeartbeatRequest
	if err := decodeBody(w, r, maxSpecBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed heartbeat: %w", err))
		return
	}
	revoked, err := s.dispatch.heartbeat(r.PathValue("id"), req.Active)
	if errors.Is(err, errUnknownWorker) {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, workerproto.HeartbeatResponse{Revoked: revoked})
}

func (s *Server) handleCellComplete(w http.ResponseWriter, r *http.Request) {
	var req workerproto.CompleteRequest
	if err := decodeBody(w, r, maxCompleteBytes, &req); err != nil {
		// A torn upload (connection cut mid-body) surfaces here as a decode
		// error; nothing was admitted and the worker's retry re-sends.
		s.dispatch.countRejected()
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed completion: %w", err))
		return
	}
	if s.tel != nil && r.ContentLength > 0 {
		s.tel.uploadSize.Observe(uint64(r.ContentLength))
	}
	// The worker echoes the lease's trace identity (plus its own ID) as
	// X-DNC-* headers; logging them here is what stitches a worker-side
	// attempt to the server-side timeline in the text logs.
	s.log.Debug("completion upload",
		"digest", r.PathValue("digest"),
		"trace", r.Header.Get(telemetry.HeaderTraceID),
		"span", r.Header.Get(telemetry.HeaderSpanID),
		"worker", r.Header.Get(telemetry.HeaderWorkerID),
		"attempt", r.Header.Get(telemetry.HeaderAttempt))
	resp, code, err := s.completeCell(r.PathValue("digest"), req)
	if err != nil {
		writeError(w, code, err)
		return
	}
	writeJSON(w, code, resp)
}

// ---- debug overrides ----

// handleDebugSweep extends the runner's /debug/sweep with the worker-plane
// view: the same progress snapshot plus lease-table accounting.
func (s *Server) handleDebugSweep(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"sweep":   s.progress.Snapshot(),
		"workers": s.dispatch.stats(),
	})
}

// handleDebugVars mirrors the runner's /debug/vars (progress + memstats)
// and folds in the service stats — cache eviction and admission counters
// included — so one endpoint answers "what is this process doing".
func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeJSON(w, http.StatusOK, map[string]any{
		"sweep":   s.progress.Snapshot(),
		"service": statsMap(s.Stats()),
		"memstats": map[string]uint64{
			"alloc":        ms.Alloc,
			"total_alloc":  ms.TotalAlloc,
			"sys":          ms.Sys,
			"heap_objects": ms.HeapObjects,
			"num_gc":       uint64(ms.NumGC),
		},
		"goroutines": runtime.NumGoroutine(),
	})
}
