package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dnc/internal/sim/runner"
)

// maxSpecBytes bounds a submission body; specs are small JSON documents
// and anything larger is a client error or an attack.
const maxSpecBytes = 1 << 20

// resultsPollInterval paces the results streamer's wait for new outcomes
// on a still-running job.
const resultsPollInterval = 50 * time.Millisecond

// handler assembles the API mux:
//
//	POST /v1/jobs              — submit a sweep spec; 202 with the job record
//	GET  /v1/jobs              — list all jobs
//	GET  /v1/jobs/{id}         — one job's status
//	GET  /v1/jobs/{id}/results — stream outcomes + result bodies as JSONL
//	GET  /v1/deadletters       — the poisoned-cell list
//	GET  /v1/healthz           — liveness + operational stats (503 on drain)
//	/debug/...                 — the runner debug mux (sweep progress, vars, pprof)
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/deadletters", s.handleDeadLetters)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.Handle("/debug/", runner.DebugMux(s.progress))
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed spec: %w", err))
		return
	}
	st, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Backpressure: tell the client when to come back, scaled to the
		// backlog (one slot per queued job is a crude but monotone guess).
		w.Header().Set("Retry-After", strconv.Itoa(1+s.queue.len()))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "30")
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		w.Header().Set("Location", "/v1/jobs/"+st.ID)
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// resultLine is one JSONL line of a results stream: the outcome plus the
// cached result body (nil for dead or failed cells, or if the cache entry
// has been lost — the digest still identifies what the result was).
type resultLine struct {
	Outcome
	Result *runner.ResultJSON `json:"result,omitempty"`
}

// handleResults streams a job's outcomes as JSONL, following a running job
// live: lines are flushed as cells finish and the stream ends when the job
// reaches a terminal state (or re-queues on drain, or the client leaves).
// Slow clients hold a connection but no lock — each line is fetched and
// encoded independently.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		outs, state := j.outcomesFrom(next)
		for _, o := range outs {
			line := resultLine{Outcome: o}
			if o.ResultDigest != "" {
				if e, ok := s.cache.get(o.Digest); ok {
					line.Result = e.Result
				}
			}
			if err := enc.Encode(line); err != nil {
				return // client gone
			}
		}
		next += len(outs)
		if flusher != nil && len(outs) > 0 {
			flusher.Flush()
		}
		if state == JobDone || state == JobFailed {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return // draining: deliver what exists, end the stream
		case <-time.After(resultsPollInterval):
		}
	}
}

func (s *Server) handleDeadLetters(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.DeadLetters())
}

// handleHealthz reports ok while serving and draining (with a 503) during
// shutdown, so load balancers stop routing before the listener closes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	code := http.StatusOK
	status := "ok"
	if st.Draining {
		code = http.StatusServiceUnavailable
		status = "draining"
	}
	writeJSON(w, code, struct {
		Status string `json:"status"`
		Stats
	}{Status: status, Stats: st})
}
