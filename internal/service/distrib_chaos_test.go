package service

import (
	"context"
	"log/slog"
	"os"
	"os/exec"
	"syscall"
	"testing"
	"time"

	"dnc/internal/service/worker"
	"dnc/internal/telemetry"
)

// ---- distributed chaos: SIGKILL one worker, freeze another, lose nothing ----
//
// The headline acceptance test for the worker plane: a sweep spread across
// real dncworker subprocesses survives one worker SIGKILLed mid-cell and
// one frozen (heartbeats without progress), completes with per-cell result
// digests bit-identical to local single-process execution, observably
// reassigns the dead and frozen workers' leases, and neither loses nor
// double-admits a single cell.

const (
	workerChildEnv       = "DNC_WORKER_CHAOS_CHILD"
	workerChildServerEnv = "DNC_WORKER_CHAOS_SERVER"
	workerChildNameEnv   = "DNC_WORKER_CHAOS_NAME"
	workerChildFreezeEnv = "DNC_WORKER_CHAOS_FREEZE"
	workerChildTimeout   = 2 * time.Minute
)

// TestChaosChildWorker is not a test: it is the dncworker process body
// re-executed by TestDistributedChaosSweep. A safety timer bounds its life
// in case the parent dies before killing it.
func TestChaosChildWorker(t *testing.T) {
	if os.Getenv(workerChildEnv) == "" {
		t.Skip("not a worker chaos child")
	}
	ctx, cancel := context.WithTimeout(context.Background(), workerChildTimeout)
	defer cancel()
	freeze := 0
	if os.Getenv(workerChildFreezeEnv) != "" {
		freeze = 1
	}
	err := worker.Run(ctx, worker.Options{
		Server:       os.Getenv(workerChildServerEnv),
		Name:         os.Getenv(workerChildNameEnv),
		Capacity:     1,
		PollInterval: 20 * time.Millisecond,
		FreezeAfter:  freeze,
		Log: slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug})).
			With("child", os.Getenv(workerChildNameEnv)),
	})
	t.Logf("[child %s] worker.Run: %v", os.Getenv(workerChildNameEnv), err)
}

// spawnChaosWorker re-execs the test binary as a dncworker subprocess.
func spawnChaosWorker(t *testing.T, base, name string, freeze bool) *exec.Cmd {
	t.Helper()
	child := exec.Command(os.Args[0], "-test.run=^TestChaosChildWorker$", "-test.v")
	env := append(os.Environ(),
		workerChildEnv+"=1",
		workerChildServerEnv+"="+base,
		workerChildNameEnv+"="+name,
	)
	if freeze {
		env = append(env, workerChildFreezeEnv+"=1")
	}
	child.Env = env
	child.Stdout, child.Stderr = os.Stderr, os.Stderr
	if err := child.Start(); err != nil {
		t.Fatalf("starting chaos worker %s: %v", name, err)
	}
	t.Cleanup(func() { child.Process.Kill() })
	go child.Wait() // reap whenever it dies
	return child
}

// leaseCount reports how many cells are currently leased to the named
// worker (in-package visibility into the lease table).
func leaseCount(d *dispatcher, name string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, w := range d.workers {
		if w.name == name {
			n += len(w.leases)
		}
	}
	return n
}

func TestDistributedChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short mode")
	}
	e := newTestEnv(t, func(c *Config) {
		c.LeaseTTL = 1 * time.Second
		c.LeaseMaxAge = 2500 * time.Millisecond
		c.LeaseBatchMax = 1 // one cell per lease call, spreading the sweep
	})

	victim := spawnChaosWorker(t, e.base, "victim", false)
	spawnChaosWorker(t, e.base, "frozen", true)
	spawnChaosWorker(t, e.base, "healthy", false)
	waitFor(t, "all three workers registered", func() bool {
		return e.srv.Stats().WorkersLive == 3
	})

	// Six cells, each a visible moment of simulation, so the SIGKILL lands
	// mid-cell and the frozen worker wedges while holding real work.
	spec := Spec{
		Workloads:     []string{"Web-Frontend"},
		Designs:       []string{"baseline", "NL", "N2L"},
		Cores:         2,
		WarmCycles:    12_000,
		MeasureCycles: 12_000,
		Seeds:         []int64{1, 2},
	}
	want := localDigests(t, spec)
	js := e.submit(spec)

	// SIGKILL the victim the moment it holds a lease: no drain, no
	// completion upload, a cell dies mid-simulation.
	waitFor(t, "victim holding a lease", func() bool {
		return leaseCount(e.srv.dispatch, "victim") >= 1
	})
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL victim: %v", err)
	}

	fin := e.waitJob(js.ID)
	if fin.State != JobDone {
		t.Fatalf("job state %s (%v), want done", fin.State, fin.Error)
	}
	checkOutcomes(t, e, js.ID, want) // zero lost; all bit-identical to local runs

	st := e.srv.Stats()
	if st.WorkersExpired < 1 {
		t.Fatalf("WorkersExpired = %d: the SIGKILLed worker was never reaped", st.WorkersExpired)
	}
	if st.Reassigned < 1 {
		t.Fatalf("Reassigned = %d: no lease was observably reassigned", st.Reassigned)
	}
	if st.RemoteAdmitted > uint64(len(want)) {
		t.Fatalf("RemoteAdmitted = %d > %d cells: a cell was double-admitted", st.RemoteAdmitted, len(want))
	}
	t.Logf("distributed chaos: admitted=%d dup=%d rejected=%d reassigned=%d expired=%d",
		st.RemoteAdmitted, st.RemoteDuplicates, st.RemoteRejected, st.Reassigned, st.WorkersExpired)

	// ---- telemetry acceptance: the chaos run leaves a coherent timeline ----
	// Every admitted cell has a complete span chain with conserved phases;
	// reassigned cells show the revoked attempt AND its successor.
	snap := checkTraceConservation(t, e, js.ID, len(want))
	revokedAttempts := 0
	for _, c := range snap.Cells {
		if c.Outcome != "admitted" {
			t.Fatalf("cell %s outcome %q, want admitted", c.SpanID, c.Outcome)
		}
		for i, a := range c.Attempts {
			if a.Outcome == "revoked" {
				revokedAttempts++
				if i == len(c.Attempts)-1 {
					t.Fatalf("cell %s: revoked attempt %d has no successor — the reassignment was not traced", c.SpanID, a.N)
				}
			}
		}
	}
	if revokedAttempts < 1 {
		t.Fatalf("stats report %d reassignments but no revoked attempt appears in the trace", st.Reassigned)
	}
	fetchPerfetto(t, e, js.ID)

	// /metrics after the dust settles: lints clean, conserves cells, and
	// agrees with the dispatch stats it mirrors.
	m, body := fetchMetrics(t, e)
	if errs := telemetry.Lint(body); len(errs) != 0 {
		t.Fatalf("exposition lint after chaos: %v", errs)
	}
	if got := m["dnc_cells_admitted_total"] + m["dnc_cells_deduped_total"] + m["dnc_cells_dead_lettered_total"]; got != float64(len(want)) {
		t.Fatalf("admitted+deduped+dead = %v, want %d (a cell was lost or double-counted)", got, len(want))
	}
	st = e.srv.Stats() // fresh snapshot: scrape-time funcs read the same sources
	for metric, val := range map[string]uint64{
		"dnc_cells_reassigned_total":  st.Reassigned,
		"dnc_workers_expired_total":   st.WorkersExpired,
		"dnc_remote_admitted_total":   st.RemoteAdmitted,
		"dnc_remote_duplicates_total": st.RemoteDuplicates,
		"dnc_remote_rejected_total":   st.RemoteRejected,
	} {
		if m[metric] != float64(val) {
			t.Fatalf("%s = %v but /v1/healthz-side stats say %d", metric, m[metric], val)
		}
	}
}
