package service

import (
	"os"
	"path/filepath"
	"testing"

	"dnc/internal/sim/runner"
)

// ---- bounded-cache satellites ----

func boundCell(seed int64) cellSpec {
	return cellSpec{Workload: "Web-Frontend", Design: "baseline", Cores: 2, Warm: 600, Measure: 600, Seed: seed}
}

func boundResult(seed int64) *runner.ResultJSON {
	r := &runner.ResultJSON{Workload: "Web-Frontend", Design: "baseline"}
	r.M.Retired = uint64(seed) * 1000
	return r
}

// entrySize measures one entry's on-disk footprint so tests can size
// budgets in entries rather than magic byte counts.
func entrySize(t *testing.T) int64 {
	t.Helper()
	dir := t.TempDir()
	c, err := openResultCache(filepath.Join(dir, "probe.jsonl"), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := c.insert(boundCell(1), boundResult(1))
	c.close()
	return e.size
}

func TestCacheEvictsOldestFirst(t *testing.T) {
	size := entrySize(t)
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := openResultCache(path, 3*size+size/2) // room for 3 entries
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()

	for seed := int64(1); seed <= 5; seed++ {
		c.insert(boundCell(seed), boundResult(seed))
	}
	st := c.stats()
	if st.entries != 3 {
		t.Fatalf("entries = %d, want 3 (budget holds three)", st.entries)
	}
	if st.evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.evictions)
	}
	if st.liveBytes > 3*size+size/2 {
		t.Fatalf("liveBytes %d exceeds the %d budget", st.liveBytes, 3*size+size/2)
	}
	// Oldest two gone, newest three present.
	for seed := int64(1); seed <= 5; seed++ {
		_, ok := c.get(boundCell(seed).Digest())
		if want := seed >= 3; ok != want {
			t.Fatalf("seed %d present=%v, want %v (oldest-first eviction)", seed, ok, want)
		}
	}
}

// TestCacheSingleOversizedEntrySurvives: an entry bigger than the whole
// budget must still be servable — eviction always keeps the newest entry.
func TestCacheSingleOversizedEntrySurvives(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := openResultCache(path, 1) // absurd 1-byte budget
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	c.insert(boundCell(1), boundResult(1))
	if st := c.stats(); st.entries != 1 {
		t.Fatalf("entries = %d, want the newest entry kept despite the budget", st.entries)
	}
	c.insert(boundCell(2), boundResult(2))
	st := c.stats()
	if st.entries != 1 || st.evictions != 1 {
		t.Fatalf("entries=%d evictions=%d, want 1/1 (previous newest evicted)", st.entries, st.evictions)
	}
	if _, ok := c.get(boundCell(2).Digest()); !ok {
		t.Fatal("newest entry missing")
	}
}

// TestCacheCompactionBoundsDisk: once dead bytes pass half the budget the
// file is rewritten; the on-disk footprint stays bounded no matter how many
// entries churn through, and a reload serves exactly the live set.
func TestCacheCompactionBoundsDisk(t *testing.T) {
	size := entrySize(t)
	budget := 4 * size
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := openResultCache(path, budget)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 60; seed++ {
		c.insert(boundCell(seed), boundResult(seed))
	}
	st := c.stats()
	live := map[int64]bool{}
	for seed := int64(1); seed <= 60; seed++ {
		if _, ok := c.get(boundCell(seed).Digest()); ok {
			live[seed] = true
		}
	}
	if err := c.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Between compactions the file holds at most budget + budget/2 dead
	// plus one in-flight entry.
	if bound := budget+budget/2+size; fi.Size() > bound {
		t.Fatalf("file is %d bytes after churn, want ≤ %d (compaction not bounding disk)", fi.Size(), bound)
	}

	// Reload: only the live set comes back, and lookups still verify.
	c2, err := openResultCache(path, budget)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.close()
	st2 := c2.stats()
	if st2.entries != st.entries {
		t.Fatalf("reloaded %d entries, want %d", st2.entries, st.entries)
	}
	if !live[60] {
		t.Fatal("newest entry not in the live set")
	}
	for seed := int64(1); seed <= 60; seed++ {
		e, ok := c2.get(boundCell(seed).Digest())
		if ok != live[seed] {
			t.Fatalf("seed %d present=%v after reload, want %v", seed, ok, live[seed])
		}
		if ok && e.ResultDigest != ResultDigest(boundResult(seed)) {
			t.Fatalf("seed %d corrupt after compaction+reload", seed)
		}
	}
}

// TestCacheShrunkenBudgetTrimsOnLoad: restarting with a smaller
// -cache-max-bytes trims the loaded file immediately.
func TestCacheShrunkenBudgetTrimsOnLoad(t *testing.T) {
	size := entrySize(t)
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := openResultCache(path, 0) // unbounded first life
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 10; seed++ {
		c.insert(boundCell(seed), boundResult(seed))
	}
	c.close()

	c2, err := openResultCache(path, 2*size+size/2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.close()
	if st := c2.stats(); st.entries != 2 || st.evictions != 8 {
		t.Fatalf("after shrunken reload: entries=%d evictions=%d, want 2/8", st.entries, st.evictions)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 3*size {
		t.Fatalf("file not compacted on shrunken reload: %d bytes", fi.Size())
	}
}

// TestCacheUnboundedNeverEvicts pins the default: maxBytes 0 keeps
// everything (the pre-bound behavior existing deployments rely on).
func TestCacheUnboundedNeverEvicts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := openResultCache(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.close()
	for seed := int64(1); seed <= 50; seed++ {
		c.insert(boundCell(seed), boundResult(seed))
	}
	if st := c.stats(); st.entries != 50 || st.evictions != 0 {
		t.Fatalf("unbounded cache: entries=%d evictions=%d, want 50/0", st.entries, st.evictions)
	}
}

// ---- Retry-After jitter satellite ----

// TestRetryAfterEqualJitter: the 429 Retry-After must scale with backlog
// and carry equal jitter — at least half the backlog-scaled estimate, never
// more than the full estimate, never below one second.
func TestRetryAfterEqualJitter(t *testing.T) {
	for _, backlog := range []int{0, 1, 7, 63} {
		base := 1 + backlog
		lo := retryAfterSeconds(backlog, func() float64 { return 0 })
		hi := retryAfterSeconds(backlog, func() float64 { return 0.999999 })
		if lo < 1 {
			t.Fatalf("backlog %d: Retry-After %d < 1s", backlog, lo)
		}
		if want := (base + 1) / 2; lo != want {
			t.Fatalf("backlog %d: fixed half = %d, want %d", backlog, lo, want)
		}
		if hi > base {
			t.Fatalf("backlog %d: max jitter %d exceeds the backlog estimate %d", backlog, hi, base)
		}
		if hi < lo {
			t.Fatalf("backlog %d: jitter range inverted (%d..%d)", backlog, lo, hi)
		}
	}
	// Distinct draws actually spread (the anti-stampede point).
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[retryAfterSeconds(20, func() float64 { return float64(i) / 100 })] = true
	}
	if len(seen) < 5 {
		t.Fatalf("only %d distinct Retry-After values across the jitter range", len(seen))
	}
}
