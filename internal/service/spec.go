// Package service is the sweep-as-a-service layer: a long-running,
// multi-client job server (cmd/dncserved) that accepts sweep specifications
// over HTTP/JSON, executes them through the fault-tolerant runner on a
// bounded worker pool, and serves results from a persistent
// content-addressed cache. Because simulations are deterministic, the cell
// — one (workload, design, geometry, seed) point — is the unit of both
// deduplication and recovery: identical cells are served from the cache
// bit-exactly, and a crashed worker's cells resume through the runner's
// journal and checkpoint machinery instead of restarting.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"dnc/internal/isa"
	"dnc/internal/prefetch"
	"dnc/internal/service/workerproto"
	"dnc/internal/sim/runner"
	"dnc/internal/workloads"
)

// Spec is a client-submitted sweep: the cross product of workload presets,
// catalog designs, and seeds at one machine geometry. Zero-valued fields
// take the paper's defaults (16 cores, 200K+200K cycle windows, seed 1,
// fixed-length encoding).
type Spec struct {
	// Workloads names presets from internal/workloads (e.g. "OLTP-DB-A").
	Workloads []string `json:"workloads"`
	// Designs names catalog entries from prefetch.Catalog (e.g. "SN4L+Dis+BTB").
	Designs []string `json:"designs"`
	// Mode is the instruction encoding: "fixed" (default) or "variable".
	Mode string `json:"mode,omitempty"`
	// Cores is the active core count, 1..16.
	Cores int `json:"cores,omitempty"`
	// WarmCycles and MeasureCycles bound the two simulation windows.
	WarmCycles    uint64 `json:"warm_cycles,omitempty"`
	MeasureCycles uint64 `json:"measure_cycles,omitempty"`
	// Seeds are the independent sample seeds; one cell per seed.
	Seeds []int64 `json:"seeds,omitempty"`
	// Priority orders the job queue: higher runs first, ties in
	// submission order. It does not participate in cell identity.
	Priority int `json:"priority,omitempty"`
}

// Spec limits: requests are untrusted input, so geometry and fan-out are
// bounded before any simulation state is allocated.
const (
	maxSpecCores  = 16        // the 4x4 mesh
	maxSpecCycles = 5_000_000 // per window
	maxSpecSeeds  = 64
)

// normalized returns a copy with defaults applied; validation and cell
// expansion both operate on the normalized form so that two specs differing
// only in explicitness of defaults produce identical cells.
func (s Spec) normalized() Spec {
	if s.Mode == "" {
		s.Mode = "fixed"
	}
	if s.Cores == 0 {
		s.Cores = 16
	}
	if s.WarmCycles == 0 {
		s.WarmCycles = 200_000
	}
	if s.MeasureCycles == 0 {
		s.MeasureCycles = 200_000
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{1}
	}
	return s
}

// specTables delegates to the wire-protocol package, which owns the lookup
// tables so server and remote workers validate cells identically.
func specTables() (map[string]prefetch.CatalogEntry, map[string]bool) {
	return workerproto.Tables()
}

// validate checks a normalized spec against the preset tables and limits.
// maxCells bounds the expansion (a server configuration, not a constant, so
// operators can size it to their fleet).
func (s Spec) validate(maxCells int) error {
	designs, wls := specTables()
	if len(s.Workloads) == 0 {
		return fmt.Errorf("spec: no workloads (known: %v)", workloads.Names)
	}
	if len(s.Designs) == 0 {
		return fmt.Errorf("spec: no designs")
	}
	for _, w := range s.Workloads {
		if !wls[w] {
			return fmt.Errorf("spec: unknown workload %q (known: %v)", w, workloads.Names)
		}
	}
	for _, d := range s.Designs {
		if _, ok := designs[d]; !ok {
			return fmt.Errorf("spec: unknown design %q", d)
		}
	}
	if s.Mode != "fixed" && s.Mode != "variable" {
		return fmt.Errorf("spec: mode %q, want \"fixed\" or \"variable\"", s.Mode)
	}
	if s.Cores < 1 || s.Cores > maxSpecCores {
		return fmt.Errorf("spec: cores = %d outside 1..%d", s.Cores, maxSpecCores)
	}
	if s.WarmCycles > maxSpecCycles || s.MeasureCycles > maxSpecCycles {
		return fmt.Errorf("spec: window cycles exceed the %d per-window limit", maxSpecCycles)
	}
	if len(s.Seeds) > maxSpecSeeds {
		return fmt.Errorf("spec: %d seeds exceed the %d limit", len(s.Seeds), maxSpecSeeds)
	}
	seen := make(map[int64]bool, len(s.Seeds))
	for _, sd := range s.Seeds {
		if seen[sd] {
			return fmt.Errorf("spec: duplicate seed %d", sd)
		}
		seen[sd] = true
	}
	if n := len(s.Workloads) * len(s.Designs) * len(s.Seeds); n > maxCells {
		return fmt.Errorf("spec: expands to %d cells, limit %d", n, maxCells)
	}
	return nil
}

// cells expands a normalized spec in deterministic workload-major order.
func (s Spec) cells() []cellSpec {
	mode := isa.Fixed
	if s.Mode == "variable" {
		mode = isa.Variable
	}
	out := make([]cellSpec, 0, len(s.Workloads)*len(s.Designs)*len(s.Seeds))
	for _, w := range s.Workloads {
		for _, d := range s.Designs {
			for _, seed := range s.Seeds {
				out = append(out, cellSpec{
					Workload: w, Design: d, Mode: mode, Cores: s.Cores,
					Warm: s.WarmCycles, Measure: s.MeasureCycles, Seed: seed,
				})
			}
		}
	}
	return out
}

// digest content-addresses the normalized spec minus priority (priority
// affects scheduling, not results). Used for human-traceable job IDs.
func (s Spec) digest() string {
	s.Priority = 0
	b, _ := json.Marshal(s)
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// cellSpec is one simulation point, shared with the worker plane: the wire
// protocol owns the type (and its Key/Digest content addressing and
// RunConfig construction) so the server and remote dncworker processes can
// never disagree on cell identity or on how a cell executes. See
// workerproto.CellSpec.
type cellSpec = workerproto.CellSpec

// ResultDigest content-addresses a result's canonical wire form. Two runs
// of the same cell are bit-exact (deterministic simulator), so their
// digests match; the chaos suite uses this to prove cache hits and
// crash-resumed completions are byte-identical to fresh runs.
func ResultDigest(r *runner.ResultJSON) string {
	b, err := json.Marshal(r)
	if err != nil {
		return "unmarshalable:" + err.Error()
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}
