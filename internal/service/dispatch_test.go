package service

import (
	"errors"
	"testing"
	"time"

	"dnc/internal/service/faultplane"
	"dnc/internal/service/workerproto"
)

// Dispatcher unit tests drive the lease table through a fake clock
// (faultplane.Clock), so TTL expiry and the frozen-worker budget are exact
// instants rather than sleeps: the tests are deterministic and instant.

func testDispatcher(clk *faultplane.Clock, ttl, maxAge time.Duration) *dispatcher {
	return newDispatcher(clk.Now, ttl, maxAge, 4)
}

func testCell(seed int64) workerproto.CellSpec {
	return workerproto.CellSpec{
		Workload: "Web-Frontend", Design: "baseline",
		Cores: 2, Warm: 600, Measure: 600, Seed: seed,
	}
}

func TestDispatchLeaseExpiryReassignsToLiveWorker(t *testing.T) {
	clk := faultplane.NewClock(time.Unix(1000, 0))
	d := testDispatcher(clk, 10*time.Second, time.Hour)

	a := d.register("a", 1)
	spec := testCell(1)
	ch, cancel := d.enqueue(spec, "")
	defer cancel()

	leases, err := d.lease(a.WorkerID, 4)
	if err != nil || len(leases) != 1 {
		t.Fatalf("lease to a = %v, %v; want 1 lease", leases, err)
	}
	if leases[0].Digest != spec.Digest() || leases[0].Spec != spec {
		t.Fatalf("lease carries wrong cell: %+v", leases[0])
	}

	// a goes silent past its TTL; b registers fresh and must inherit the
	// cell on its next lease call.
	clk.Advance(9 * time.Second)
	b := d.register("b", 1)
	clk.Advance(2 * time.Second) // a is now 11s silent; b only 2s old
	d.expire()

	st := d.stats()
	if st.WorkersExpired != 1 || st.WorkersLive != 1 || st.Reassigned != 1 {
		t.Fatalf("stats after expiry = %+v; want 1 expired, 1 live, 1 reassigned", st)
	}
	leases, err = d.lease(b.WorkerID, 4)
	if err != nil || len(leases) != 1 || leases[0].Digest != spec.Digest() {
		t.Fatalf("reassigned lease to b = %v, %v; want the original cell", leases, err)
	}

	// The dead worker's ID is rejected until it re-registers.
	if _, err := d.lease(a.WorkerID, 4); !errors.Is(err, errUnknownWorker) {
		t.Fatalf("lease with expired id = %v, want errUnknownWorker", err)
	}
	if _, err := d.heartbeat(a.WorkerID, nil); !errors.Is(err, errUnknownWorker) {
		t.Fatalf("heartbeat with expired id = %v, want errUnknownWorker", err)
	}

	// Delivery after reassignment wakes the waiter exactly once.
	if !d.deliver(spec.Digest(), remoteOutcome{}) {
		t.Fatal("deliver reported the cell not outstanding")
	}
	select {
	case out := <-ch:
		if out.err != nil {
			t.Fatalf("waiter got err %v", out.err)
		}
	default:
		t.Fatal("waiter not woken by deliver")
	}
}

// TestDispatchFrozenWorkerBudget is the frozen-worker watchdog: heartbeats
// keep the worker alive, but a lease held past the progress budget is
// revoked anyway and the heartbeat response says so.
func TestDispatchFrozenWorkerBudget(t *testing.T) {
	clk := faultplane.NewClock(time.Unix(1000, 0))
	ttl, maxAge := 10*time.Second, 30*time.Second
	d := testDispatcher(clk, ttl, maxAge)

	a := d.register("frozen", 1)
	b := d.register("healthy", 1)
	spec := testCell(2)
	_, cancel := d.enqueue(spec, "")
	defer cancel()
	if leases, _ := d.lease(a.WorkerID, 1); len(leases) != 1 {
		t.Fatal("worker a did not get the lease")
	}

	// Beat every 5s (inside the TTL) for 25s: worker alive, lease young
	// enough, nothing revoked.
	for i := 0; i < 5; i++ {
		clk.Advance(5 * time.Second)
		revoked, err := d.heartbeat(a.WorkerID, []string{spec.Digest()})
		if err != nil || len(revoked) != 0 {
			t.Fatalf("beat %d: revoked=%v err=%v; want none", i, revoked, err)
		}
		if _, err := d.heartbeat(b.WorkerID, nil); err != nil {
			t.Fatalf("healthy beat: %v", err)
		}
	}
	// 31s after grant: past the budget. The next beat must revoke.
	clk.Advance(6 * time.Second)
	if _, err := d.heartbeat(b.WorkerID, nil); err != nil {
		t.Fatalf("healthy beat: %v", err)
	}
	revoked, err := d.heartbeat(a.WorkerID, []string{spec.Digest()})
	if err != nil || len(revoked) != 1 || revoked[0] != spec.Digest() {
		t.Fatalf("past-budget beat: revoked=%v err=%v; want [%s]", revoked, err, spec.Digest())
	}
	if st := d.stats(); st.Reassigned != 1 || st.RemotePending != 1 || st.LeaseDepth != 0 {
		t.Fatalf("stats after revocation = %+v", st)
	}

	// The healthy worker picks the cell up; the frozen worker, still
	// claiming it active, is told again that it is revoked (stale lease).
	if leases, _ := d.lease(b.WorkerID, 1); len(leases) != 1 || leases[0].Digest != spec.Digest() {
		t.Fatal("healthy worker did not inherit the revoked cell")
	}
	revoked, err = d.heartbeat(a.WorkerID, []string{spec.Digest()})
	if err != nil || len(revoked) != 1 {
		t.Fatalf("stale-active beat: revoked=%v err=%v; want the digest re-reported", revoked, err)
	}
}

// TestDispatchZeroWorkersReleasesWaiters: when the last live worker
// disappears, cells waiting on the remote plane are handed back with
// errNoWorkers so the server's executor falls back to in-process runs
// instead of stalling forever.
func TestDispatchZeroWorkersReleasesWaiters(t *testing.T) {
	clk := faultplane.NewClock(time.Unix(1000, 0))
	d := testDispatcher(clk, 10*time.Second, time.Hour)

	d.register("only", 1)
	if !d.active() {
		t.Fatal("dispatcher inactive with a live worker")
	}
	ch, cancel := d.enqueue(testCell(3), "")
	defer cancel()

	clk.Advance(11 * time.Second)
	if d.active() {
		t.Fatal("dispatcher active after the only worker expired")
	}
	select {
	case out := <-ch:
		if !errors.Is(out.err, errNoWorkers) {
			t.Fatalf("waiter got %v, want errNoWorkers", out.err)
		}
	default:
		t.Fatal("waiter not released when the worker plane emptied")
	}
	if st := d.stats(); st.RemotePending != 0 || st.LeaseDepth != 0 {
		t.Fatalf("plane not empty after release: %+v", st)
	}
}

// TestDispatchEnqueueDedup: two jobs containing the same cell share one
// execution — one lease goes out, one delivery wakes both waiters.
func TestDispatchEnqueueDedup(t *testing.T) {
	clk := faultplane.NewClock(time.Unix(1000, 0))
	d := testDispatcher(clk, 10*time.Second, time.Hour)
	w := d.register("w", 2)

	spec := testCell(4)
	ch1, cancel1 := d.enqueue(spec, "")
	ch2, cancel2 := d.enqueue(spec, "")
	defer cancel1()
	defer cancel2()

	leases, _ := d.lease(w.WorkerID, 4)
	if len(leases) != 1 {
		t.Fatalf("%d leases for one deduplicated cell, want 1", len(leases))
	}
	d.deliver(spec.Digest(), remoteOutcome{})
	for i, ch := range []<-chan remoteOutcome{ch1, ch2} {
		select {
		case out := <-ch:
			if out.err != nil {
				t.Fatalf("waiter %d: %v", i, out.err)
			}
		default:
			t.Fatalf("waiter %d not woken", i)
		}
	}
}

// TestDispatchCancelDropsUnleasedCell: a waiter abandoning a pending,
// unleased cell removes it from the queue entirely; abandoning a leased one
// leaves the lease to finish (its upload is still admissible and cached).
func TestDispatchCancelDropsUnleasedCell(t *testing.T) {
	clk := faultplane.NewClock(time.Unix(1000, 0))
	d := testDispatcher(clk, 10*time.Second, time.Hour)
	w := d.register("w", 2)

	pending := testCell(5)
	leased := testCell(6)
	_, cancelLeased := d.enqueue(leased, "")
	_, cancelPending := d.enqueue(pending, "")

	if leases, _ := d.lease(w.WorkerID, 1); len(leases) != 1 || leases[0].Digest != leased.Digest() {
		t.Fatal("expected the first-enqueued cell to be leased")
	}
	cancelPending()
	if d.outstanding(pending.Digest()) {
		t.Fatal("cancelled pending cell still outstanding")
	}
	cancelLeased()
	if !d.outstanding(leased.Digest()) {
		t.Fatal("leased cell dropped while a worker held it")
	}
	if leases, _ := d.lease(w.WorkerID, 4); len(leases) != 0 {
		t.Fatalf("cancelled cell leased anyway: %v", leases)
	}
}
