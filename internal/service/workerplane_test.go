package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnc/internal/httpx"
	"dnc/internal/service/faultplane"
	"dnc/internal/service/worker"
	"dnc/internal/service/workerproto"
	"dnc/internal/sim"
	"dnc/internal/sim/runner"
)

// ---- worker-plane integration ----
//
// These tests run real worker.Run loops (in-process goroutines) against a
// real server over HTTP, with real (tiny) simulations, so the property under
// test is the acceptance property itself: results computed by remote
// workers are bit-identical to local execution, and no failure mode loses
// or double-admits a cell.

// startWorker runs a worker loop until the test ends (or stop is called).
func (e *testEnv) startWorker(o worker.Options) (stop func()) {
	e.t.Helper()
	if o.Server == "" {
		o.Server = e.base
	}
	if o.PollInterval == 0 {
		o.PollInterval = 10 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		err := worker.Run(ctx, o)
		if err != nil && !errors.Is(err, context.Canceled) {
			e.t.Errorf("[%s] worker %s: %v", e.id, o.Name, err)
		}
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
	e.t.Cleanup(stop)
	return stop
}

// localDigests computes, fresh and in-process, the canonical result digest
// of every cell in the spec — the bit-exactness reference the remote
// results must match.
func localDigests(t *testing.T, spec Spec) map[string]string {
	t.Helper()
	want := make(map[string]string)
	for _, c := range spec.normalized().cells() {
		res, err := sim.RunChecked(context.Background(), c.RunConfig())
		if err != nil {
			t.Fatalf("local reference run for %s: %v", c.Key(), err)
		}
		want[c.Digest()] = ResultDigest(runner.NewResultJSON(res))
	}
	return want
}

// checkOutcomes asserts every streamed outcome digest-matches the local
// reference and counts how many were remotely simulated.
func checkOutcomes(t *testing.T, e *testEnv, jobID string, want map[string]string) {
	t.Helper()
	lines := e.streamResults(jobID)
	if len(lines) != len(want) {
		t.Fatalf("streamed %d outcomes, want %d", len(lines), len(want))
	}
	for _, l := range lines {
		wd, ok := want[l.Digest]
		if !ok {
			t.Fatalf("outcome for unexpected cell %s", l.Digest)
		}
		if l.ResultDigest != wd {
			t.Errorf("cell %s: result digest %s, want %s (not bit-identical to local run)", l.Key, l.ResultDigest, wd)
		}
		if l.Result == nil || ResultDigest(l.Result) != wd {
			t.Errorf("cell %s: streamed result body does not match its digest", l.Key)
		}
	}
}

func TestWorkerPlaneRemoteExecution(t *testing.T) {
	e := newTestEnv(t, func(c *Config) {
		c.LeaseTTL = 2 * time.Second
	})
	e.startWorker(worker.Options{Name: "w1", Capacity: 2})

	waitFor(t, "worker registration", func() bool {
		return e.srv.Stats().WorkersLive == 1
	})
	if e.srv.Stats().Degraded {
		t.Fatal("Degraded true with a live worker")
	}

	spec := smallSpec()
	spec.Seeds = []int64{1, 2}
	want := localDigests(t, spec)

	st := e.submit(spec)
	if fin := e.waitJob(st.ID); fin.State != JobDone {
		t.Fatalf("job state %s, want done", fin.State)
	}
	checkOutcomes(t, e, st.ID, want)

	stats := e.srv.Stats()
	if stats.RemoteAdmitted != 2 {
		t.Fatalf("RemoteAdmitted = %d, want 2 (both cells executed remotely)", stats.RemoteAdmitted)
	}
	if stats.RemoteRejected != 0 {
		t.Fatalf("RemoteRejected = %d, want 0", stats.RemoteRejected)
	}

	// The healthz satellite: worker counts and lease depth are on the
	// health endpoint for operators.
	var hz struct {
		Status string `json:"status"`
		Stats
	}
	if code := e.getJSON("/v1/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if hz.WorkersRegistered != 1 || hz.WorkersLive != 1 {
		t.Fatalf("healthz worker counts = %d registered / %d live, want 1/1", hz.WorkersRegistered, hz.WorkersLive)
	}
}

// TestWorkerPlaneDegradedFallback: zero registered workers is not an error
// but the single-process mode every pre-worker-plane deployment runs in.
func TestWorkerPlaneDegradedFallback(t *testing.T) {
	e := newTestEnv(t, func(c *Config) { c.RunCell = fakeRunCell })
	if st := e.srv.Stats(); !st.Degraded {
		t.Fatal("Degraded false with zero workers")
	}
	js := e.submit(smallSpec())
	if fin := e.waitJob(js.ID); fin.State != JobDone {
		t.Fatalf("job state %s, want done", fin.State)
	}
	if st := e.srv.Stats(); st.RemoteAdmitted != 0 {
		t.Fatalf("RemoteAdmitted = %d in degraded mode, want 0", st.RemoteAdmitted)
	}
}

// gateTransport fails every request while closed — a deterministic network
// partition between one worker and the server.
type gateTransport struct {
	blocked atomic.Bool
}

func (g *gateTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if g.blocked.Load() {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errors.New("gate: partitioned")
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestWorkerReregistersAfterPartition: a worker partitioned past its TTL is
// reaped; when the network heals it must notice the 404 and re-register,
// and the plane must end up healthy again.
func TestWorkerReregistersAfterPartition(t *testing.T) {
	e := newTestEnv(t, func(c *Config) {
		c.LeaseTTL = 400 * time.Millisecond
		c.RunCell = fakeRunCell // job execution is not under test here
	})
	gate := &gateTransport{}
	e.startWorker(worker.Options{
		Name:     "flaky",
		Capacity: 1,
		Client:   &httpx.RetryClient{C: &http.Client{Transport: gate}, Retries: 0},
	})

	waitFor(t, "initial registration", func() bool { return e.srv.Stats().WorkersLive == 1 })
	gate.blocked.Store(true)
	waitFor(t, "partitioned worker reaped", func() bool {
		st := e.srv.Stats()
		return st.WorkersLive == 0 && st.WorkersExpired == 1
	})
	gate.blocked.Store(false)
	waitFor(t, "re-registration", func() bool {
		st := e.srv.Stats()
		return st.WorkersLive == 1 && st.WorkersRegistered == 2
	})
}

// TestWorkerPlaneFrozenWorkerRecovery: a worker that completes one cell and
// then wedges — heartbeats flowing, no progress — holds its leases until
// the per-lease budget expires; the healthy worker inherits the cells and
// the sweep still produces bit-identical results with no cell admitted
// twice.
func TestWorkerPlaneFrozenWorkerRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("frozen-worker recovery waits out a real lease budget")
	}
	e := newTestEnv(t, func(c *Config) {
		c.LeaseTTL = 5 * time.Second
		c.LeaseMaxAge = 1 * time.Second
		c.LeaseBatchMax = 1 // spread cells across both workers
	})
	e.startWorker(worker.Options{Name: "frozen", Capacity: 1, FreezeAfter: 1})
	e.startWorker(worker.Options{Name: "healthy", Capacity: 1})
	waitFor(t, "both workers live", func() bool { return e.srv.Stats().WorkersLive == 2 })

	spec := smallSpec()
	spec.Seeds = []int64{1, 2, 3, 4}
	want := localDigests(t, spec)

	js := e.submit(spec)
	if fin := e.waitJob(js.ID); fin.State != JobDone {
		t.Fatalf("job state %s, want done", fin.State)
	}
	checkOutcomes(t, e, js.ID, want)

	st := e.srv.Stats()
	if st.RemoteAdmitted != uint64(len(want)) {
		t.Fatalf("RemoteAdmitted = %d, want %d (each cell admitted exactly once)", st.RemoteAdmitted, len(want))
	}
	if st.Reassigned == 0 {
		t.Fatal("Reassigned = 0: the frozen worker's lease was never revoked")
	}
}

// TestWorkerPlaneFaultChaos drives a two-worker sweep through a seeded
// fault plane — dropped, duplicated, delayed, and torn requests on every
// API call — and requires the distributed answer to be bit-identical to
// local execution with every cell admitted exactly once.
func TestWorkerPlaneFaultChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("fault chaos runs real sweeps through an unreliable network")
	}
	e := newTestEnv(t, func(c *Config) {
		c.LeaseTTL = 2 * time.Second
		c.LeaseMaxAge = 3 * time.Second
		c.LeaseBatchMax = 2
	})
	for i := 0; i < 2; i++ {
		tr := faultplane.NewTransport(int64(1000+i), nil, faultplane.Faults{
			Drop:     0.15,
			Dup:      0.15,
			Tear:     0.10,
			Delay:    0.25,
			MaxDelay: 25 * time.Millisecond,
		})
		e.startWorker(worker.Options{
			Name:     fmt.Sprintf("chaotic-%d", i),
			Capacity: 2,
			Client:   &httpx.RetryClient{C: &http.Client{Transport: tr}, Retries: 6, Backoff: 5 * time.Millisecond},
		})
	}
	waitFor(t, "workers live", func() bool { return e.srv.Stats().WorkersLive >= 1 })

	spec := smallSpec()
	spec.Seeds = []int64{1, 2, 3, 4, 5}
	want := localDigests(t, spec)

	js := e.submit(spec)
	if fin := e.waitJob(js.ID); fin.State != JobDone {
		t.Fatalf("job state %s, want done", fin.State)
	}
	checkOutcomes(t, e, js.ID, want)

	st := e.srv.Stats()
	if st.RemoteAdmitted > uint64(len(want)) {
		t.Fatalf("RemoteAdmitted = %d > %d cells: a cell was admitted twice", st.RemoteAdmitted, len(want))
	}
	t.Logf("chaos run: admitted=%d dup=%d rejected=%d reassigned=%d",
		st.RemoteAdmitted, st.RemoteDuplicates, st.RemoteRejected, st.Reassigned)
}

// TestCompleteAdmissionVerification exercises the upload admission gate
// over raw HTTP: digest mismatches and identity mismatches are refused,
// unsolicited uploads are 404, duplicates are idempotent, and a
// non-identical duplicate is a 409 determinism violation.
func TestCompleteAdmissionVerification(t *testing.T) {
	e := newTestEnv(t, func(c *Config) { c.LeaseTTL = time.Minute })
	rc := &httpx.RetryClient{}
	ctx := context.Background()

	var reg workerproto.RegisterResponse
	if _, err := rc.PostJSON(ctx, e.base+"/v1/workers/register",
		workerproto.RegisterRequest{Name: "t", Capacity: 1}, &reg); err != nil {
		t.Fatal(err)
	}

	spec := workerproto.CellSpec{Workload: "Web-Frontend", Design: "baseline", Cores: 2, Warm: 600, Measure: 600, Seed: 1}
	good := &runner.ResultJSON{Workload: spec.Workload, Design: spec.Design}

	// Unsolicited upload: the cell was never enqueued → 404, nothing cached.
	code, err := rc.PostJSON(ctx, e.base+"/v1/cells/"+spec.Digest()+"/complete",
		workerproto.CompleteRequest{WorkerID: reg.WorkerID, Spec: spec, Result: good}, nil)
	if code != http.StatusNotFound {
		t.Fatalf("unsolicited upload = %d (%v), want 404", code, err)
	}

	// Wrong address: spec digest != URL digest → 400.
	other := spec
	other.Seed = 99
	code, _ = rc.PostJSON(ctx, e.base+"/v1/cells/"+other.Digest()+"/complete",
		workerproto.CompleteRequest{WorkerID: reg.WorkerID, Spec: spec, Result: good}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("mismatched digest upload = %d, want 400", code)
	}

	// Result identity fields disagreeing with the spec → 400.
	bad := &runner.ResultJSON{Workload: "OLTP-DB-A", Design: spec.Design}
	ch, cancel := e.srv.dispatch.enqueue(spec, "")
	defer cancel()
	code, _ = rc.PostJSON(ctx, e.base+"/v1/cells/"+spec.Digest()+"/complete",
		workerproto.CompleteRequest{WorkerID: reg.WorkerID, Spec: spec, Result: bad}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("identity-mismatched upload = %d, want 400", code)
	}

	// A legitimate upload for the outstanding cell admits and wakes the waiter.
	var resp workerproto.CompleteResponse
	code, err = rc.PostJSON(ctx, e.base+"/v1/cells/"+spec.Digest()+"/complete",
		workerproto.CompleteRequest{WorkerID: reg.WorkerID, Spec: spec, Result: good}, &resp)
	if err != nil || code != http.StatusOK || resp.Status != workerproto.StatusAdmitted {
		t.Fatalf("admit = %d %q (%v), want 200 %q", code, resp.Status, err, workerproto.StatusAdmitted)
	}
	select {
	case out := <-ch:
		if out.err != nil {
			t.Fatalf("waiter error: %v", out.err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken by admission")
	}

	// At-least-once redelivery of the identical result: idempotent duplicate.
	code, err = rc.PostJSON(ctx, e.base+"/v1/cells/"+spec.Digest()+"/complete",
		workerproto.CompleteRequest{WorkerID: reg.WorkerID, Spec: spec, Result: good}, &resp)
	if err != nil || code != http.StatusOK || resp.Status != workerproto.StatusDuplicate {
		t.Fatalf("duplicate = %d %q (%v), want 200 %q", code, resp.Status, err, workerproto.StatusDuplicate)
	}

	// Same cell, different bytes: a determinism violation must be refused.
	forged := &runner.ResultJSON{Workload: spec.Workload, Design: spec.Design, NoCFlits: 7}
	code, _ = rc.PostJSON(ctx, e.base+"/v1/cells/"+spec.Digest()+"/complete",
		workerproto.CompleteRequest{WorkerID: reg.WorkerID, Spec: spec, Result: forged}, nil)
	if code != http.StatusConflict {
		t.Fatalf("non-identical duplicate = %d, want 409", code)
	}

	st := e.srv.Stats()
	if st.RemoteAdmitted != 1 || st.RemoteDuplicates != 1 || st.RemoteRejected != 4 {
		t.Fatalf("admission counters = %+v, want 1 admitted / 1 duplicate / 4 rejected", st.dispatchStats)
	}
}
