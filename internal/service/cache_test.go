package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dnc/internal/core"
	"dnc/internal/isa"
	"dnc/internal/sim/runner"
)

func cacheCell(seed int64) cellSpec {
	return cellSpec{
		Workload: "Web-Frontend", Design: "baseline", Mode: isa.Fixed,
		Cores: 2, Warm: 1000, Measure: 1000, Seed: seed,
	}
}

func fakeResult(retired uint64) *runner.ResultJSON {
	return &runner.ResultJSON{
		Workload: "Web-Frontend", Design: "baseline",
		M: core.Metrics{Cycles: 1000, Retired: retired},
	}
}

func TestCachePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, err := openResultCache(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := c.insert(cacheCell(1), fakeResult(500))
	if e.ResultDigest == "" {
		t.Fatal("insert produced no result digest")
	}
	if _, ok := c.lookup(cacheCell(2).Digest()); ok {
		t.Fatal("lookup hit a never-inserted cell")
	}
	if err := c.close(); err != nil {
		t.Fatal(err)
	}

	c2, err := openResultCache(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.close()
	got, ok := c2.lookup(cacheCell(1).Digest())
	if !ok {
		t.Fatal("reopened cache lost the entry")
	}
	if got.ResultDigest != e.ResultDigest {
		t.Fatalf("result digest drifted across reopen: %s vs %s", got.ResultDigest, e.ResultDigest)
	}
	if got.Result.M.Retired != 500 {
		t.Fatalf("result body drifted: %+v", got.Result.M)
	}
	st := c2.stats()
	if st.entries != 1 || st.hits != 1 {
		t.Fatalf("stats = %d entries %d hits, want 1/1", st.entries, st.hits)
	}
}

// TestCacheTornTailDiscarded kills the cache mid-append (simulated by
// truncating the last line) and proves only the torn entry is lost; the
// next insert lands on a fresh line and round-trips.
func TestCacheTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, _ := openResultCache(path, 0)
	c.insert(cacheCell(1), fakeResult(100))
	c.insert(cacheCell(2), fakeResult(200))
	c.close()

	raw, _ := os.ReadFile(path)
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	torn := strings.Join(lines[:1], "\n") + "\n" + lines[1][:len(lines[1])/3]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := openResultCache(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.get(cacheCell(1).Digest()); !ok {
		t.Fatal("intact entry lost with the torn tail")
	}
	if _, ok := c2.get(cacheCell(2).Digest()); ok {
		t.Fatal("torn entry survived")
	}
	c2.insert(cacheCell(3), fakeResult(300))
	c2.close()

	c3, err := openResultCache(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.close()
	if _, ok := c3.get(cacheCell(3).Digest()); !ok {
		t.Fatal("entry appended after a torn tail did not round-trip")
	}
}

// TestCacheFirstInsertWins pins immutability: re-inserting a digest keeps
// the original entry (deterministic runs make a second, different result
// for the same cell impossible — but a buggy caller must not corrupt the
// store).
func TestCacheFirstInsertWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	c, _ := openResultCache(path, 0)
	defer c.close()
	first := c.insert(cacheCell(1), fakeResult(100))
	second := c.insert(cacheCell(1), fakeResult(999))
	if second.ResultDigest != first.ResultDigest {
		t.Fatal("second insert replaced an immutable entry")
	}
	if st := c.stats(); st.inserts != 1 {
		t.Fatalf("inserts = %d, want 1", st.inserts)
	}
}

// TestResultDigestDeterministic pins that equal results digest equally and
// different results differ — the property the dedup proof rests on.
func TestResultDigestDeterministic(t *testing.T) {
	a, b := fakeResult(100), fakeResult(100)
	if ResultDigest(a) != ResultDigest(b) {
		t.Fatal("equal results digest differently")
	}
	if ResultDigest(a) != ResultDigest(a) {
		t.Fatal("digest unstable")
	}
	if ResultDigest(a) == ResultDigest(fakeResult(101)) {
		t.Fatal("different results collide")
	}
}
