package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// JobState is a job's lifecycle position. A job accepted before a drain or
// crash restarts as queued: acceptance is durable (spec.json), completion
// is durable (done.json), and everything between is recomputed — cheaply,
// because finished cells hit the result cache or the job's runner journal.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed" // infrastructure failure, not cell failures
)

// OutcomeStatus classifies how one cell of a job was satisfied.
type OutcomeStatus string

const (
	// OutcomeSimulated is a freshly executed cell.
	OutcomeSimulated OutcomeStatus = "simulated"
	// OutcomeCached was served from the content-addressed result cache
	// with zero simulation work.
	OutcomeCached OutcomeStatus = "cached"
	// OutcomeResumed was restored from this job's own runner journal
	// (a previous attempt of this job completed it before a crash).
	OutcomeResumed OutcomeStatus = "resumed"
	// OutcomeDead was short-circuited by the dead-letter list: the cell
	// has repeatedly failed non-transiently and is not retried.
	OutcomeDead OutcomeStatus = "dead"
	// OutcomeFailed exhausted its attempts this job.
	OutcomeFailed OutcomeStatus = "failed"
)

// Outcome is one cell's disposition within a job. Result bodies live in
// the cache, addressed by Digest; outcomes carry only identity, digests,
// and failure detail, so a job's persisted record stays small.
type Outcome struct {
	Key          string        `json:"key"`
	Digest       string        `json:"digest"`
	Status       OutcomeStatus `json:"status"`
	ResultDigest string        `json:"result_digest,omitempty"`
	Attempts     int           `json:"attempts,omitempty"`
	Error        string        `json:"error,omitempty"`
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Spec  Spec     `json:"spec"`
	Cells int      `json:"cells"`
	Done  int      `json:"done"`
	// Disposition tallies; Done is their sum.
	Simulated int `json:"simulated"`
	Cached    int `json:"cached"`
	Resumed   int `json:"resumed"`
	Dead      int `json:"dead"`
	Failed    int `json:"failed"`
	// Error is set when State is failed (an infrastructure error: journal
	// unwritable, job timeout). Per-cell errors live in the outcomes.
	Error string `json:"error,omitempty"`
	// DeadCells surfaces the dead-letter outcomes for quick triage.
	DeadCells []Outcome `json:"dead_cells,omitempty"`
	// Digests maps cell digest to result digest for every satisfied cell —
	// the handle clients use to verify bit-exactness across submissions.
	Digests map[string]string `json:"digests,omitempty"`
}

// job is the server-side state of one accepted sweep.
type job struct {
	id    string
	seq   int
	spec  Spec // normalized
	dir   string
	cells []cellSpec

	mu       sync.Mutex
	state    JobState
	outcomes []Outcome
	errMsg   string
}

func (j *job) setState(s JobState, errMsg string) {
	j.mu.Lock()
	j.state = s
	j.errMsg = errMsg
	j.mu.Unlock()
}

func (j *job) addOutcome(o Outcome) {
	j.mu.Lock()
	j.outcomes = append(j.outcomes, o)
	j.mu.Unlock()
}

// resetOutcomes clears per-run state when a drained job returns to the
// queue: the next run rebuilds outcomes from the cache and journal.
func (j *job) resetOutcomes() {
	j.mu.Lock()
	j.outcomes = nil
	j.mu.Unlock()
}

// outcomesFrom snapshots outcomes[i:] and the current state; the results
// streamer polls it to deliver lines as cells finish.
func (j *job) outcomesFrom(i int) ([]Outcome, JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i >= len(j.outcomes) {
		return nil, j.state
	}
	out := make([]Outcome, len(j.outcomes)-i)
	copy(out, j.outcomes[i:])
	return out, j.state
}

// status builds the API view.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, State: j.state, Spec: j.spec,
		Cells: len(j.cells), Done: len(j.outcomes), Error: j.errMsg,
	}
	for _, o := range j.outcomes {
		switch o.Status {
		case OutcomeSimulated:
			st.Simulated++
		case OutcomeCached:
			st.Cached++
		case OutcomeResumed:
			st.Resumed++
		case OutcomeDead:
			st.Dead++
			st.DeadCells = append(st.DeadCells, o)
		case OutcomeFailed:
			st.Failed++
		}
	}
	if j.state == JobDone || j.state == JobFailed {
		st.Digests = make(map[string]string, len(j.outcomes))
		for _, o := range j.outcomes {
			if o.ResultDigest != "" {
				st.Digests[o.Digest] = o.ResultDigest
			}
		}
	}
	return st
}

// ---- persistence ----
//
// A job directory under <data>/jobs/<id>/ holds:
//
//	spec.json     — written atomically at acceptance; its existence IS the
//	                acceptance record a drain or crash must not lose
//	done.json     — written atomically at terminal completion; absence
//	                means the job re-queues on startup
//	journal.jsonl — the runner journal for this job's simulated cells
//	ckpt/         — per-cell mid-run snapshots

// specRecord is the on-disk acceptance record.
type specRecord struct {
	ID   string `json:"id"`
	Seq  int    `json:"seq"`
	Spec Spec   `json:"spec"`
}

// doneRecord is the on-disk terminal record: the final status plus the
// full outcome list (result bodies stay in the cache).
type doneRecord struct {
	Status   JobStatus `json:"status"`
	Outcomes []Outcome `json:"outcomes"`
}

// writeFileAtomic writes via temp file + rename so the destination is
// always absent or complete, never torn.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (j *job) persistSpec() error {
	b, err := json.MarshalIndent(specRecord{ID: j.id, Seq: j.seq, Spec: j.spec}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(j.dir, "spec.json"), b)
}

func (j *job) persistDone() error {
	j.mu.Lock()
	rec := doneRecord{Outcomes: append([]Outcome(nil), j.outcomes...)}
	j.mu.Unlock()
	rec.Status = j.status()
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(j.dir, "done.json"), b)
}

// dropAcceptance removes the job directory; used when admission fails
// after the spec was persisted (queue full), so a rejected client's job
// does not resurrect on restart.
func (j *job) dropAcceptance() {
	os.RemoveAll(j.dir)
}

// loadJobs scans the jobs directory and rebuilds state: jobs with a
// done.json are terminal (kept for status/results queries); the rest are
// the crash-recovery set, returned in submission order for re-queueing.
func loadJobs(jobsDir string) (terminal, pending []*job, maxSeq int, err error) {
	ents, err := os.ReadDir(jobsDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, 0, nil
		}
		return nil, nil, 0, err
	}
	for _, de := range ents {
		if !de.IsDir() {
			continue
		}
		dir := filepath.Join(jobsDir, de.Name())
		sb, err := os.ReadFile(filepath.Join(dir, "spec.json"))
		if err != nil {
			continue // half-created acceptance: ignore (client was never acked)
		}
		var rec specRecord
		if err := json.Unmarshal(sb, &rec); err != nil || rec.ID == "" {
			continue
		}
		if rec.Seq == 0 {
			rec.Seq = seqFromID(rec.ID)
		}
		j := &job{
			id: rec.ID, seq: rec.Seq, spec: rec.Spec.normalized(),
			dir: dir, cells: rec.Spec.normalized().cells(), state: JobQueued,
		}
		if j.seq > maxSeq {
			maxSeq = j.seq
		}
		if db, err := os.ReadFile(filepath.Join(dir, "done.json")); err == nil {
			var done doneRecord
			if json.Unmarshal(db, &done) == nil {
				j.state = done.Status.State
				j.outcomes = done.Outcomes
				j.errMsg = done.Status.Error
				terminal = append(terminal, j)
				continue
			}
			// Torn done.json (crash mid-rename is impossible, but a partial
			// .tmp is): treat as unfinished and re-run.
		}
		pending = append(pending, j)
	}
	sort.Slice(pending, func(i, k int) bool { return pending[i].seq < pending[k].seq })
	sort.Slice(terminal, func(i, k int) bool { return terminal[i].seq < terminal[k].seq })
	return terminal, pending, maxSeq, nil
}

// jobID builds the durable identifier: ordinal plus a spec-digest prefix,
// so operators can spot identical resubmissions at a glance.
func jobID(seq int, spec Spec) string {
	return fmt.Sprintf("j%06d-%s", seq, spec.digest()[:12])
}

// seqFromID recovers the ordinal ("j000017-ab12..." → 17); used only as a
// fallback when a spec.json predates the Seq field.
func seqFromID(id string) int {
	if !strings.HasPrefix(id, "j") {
		return 0
	}
	head, _, ok := strings.Cut(id[1:], "-")
	if !ok {
		return 0
	}
	n, _ := strconv.Atoi(head)
	return n
}
