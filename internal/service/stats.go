package service

// The declared stat table: the single source of truth for every
// operational counter name the service serves. /v1/healthz and the
// "service" section of /debug/vars are both rendered from this table, and
// a golden test checks that every name documented in docs/OPERATIONS.md is
// present here — so code, wire format, and runbook cannot drift apart.
//
// The wire keys are identical to the Stats struct's json tags (the table
// is how they are emitted; the struct remains the typed Go API), so
// existing clients decoding into a struct see no change.

// statEntry is one declared operational stat.
type statEntry struct {
	// Name is the wire key on /v1/healthz and /debug/vars.
	Name string
	// Help is the one-line meaning (reused for metric help strings where a
	// metric mirrors the stat).
	Help string
	// Get extracts the value from a Stats snapshot.
	Get func(Stats) any
}

// statTable declares every served stat, in output order.
func statTable() []statEntry {
	return []statEntry{
		{"draining", "Whether the server is shutting down (rejecting submissions).",
			func(s Stats) any { return s.Draining }},
		{"jobs", "Jobs known to this process (all states).",
			func(s Stats) any { return s.Jobs }},
		{"queued", "Jobs accepted but not yet started.",
			func(s Stats) any { return s.Queued }},
		{"running", "Jobs currently sweeping.",
			func(s Stats) any { return s.Running }},
		{"simulated", "Cells simulated to completion by this process.",
			func(s Stats) any { return s.Simulated }},
		{"cache_hits", "Cells served from the content-addressed result cache.",
			func(s Stats) any { return s.CacheHits }},
		{"cache_entries", "Live result-cache entries.",
			func(s Stats) any { return s.CacheEntries }},
		{"cache_bytes", "Live (post-eviction) result-cache payload bytes.",
			func(s Stats) any { return s.CacheBytes }},
		{"cache_evictions", "Cache entries evicted under the size bound.",
			func(s Stats) any { return s.CacheEvictions }},
		{"store_cells", "Cells persisted in the columnar result store (serves /v1/query).",
			func(s Stats) any { return s.StoreCells }},
		{"store_bytes", "On-disk size of the columnar result store file.",
			func(s Stats) any { return s.StoreBytes }},
		{"dead_letters", "Cells on the poisoned-cell list.",
			func(s Stats) any { return s.DeadLetters }},
		{"workers_registered", "Worker registrations ever (this process).",
			func(s Stats) any { return s.WorkersRegistered }},
		{"workers_live", "Live (heartbeating) remote workers right now.",
			func(s Stats) any { return s.WorkersLive }},
		{"workers_expired", "Workers reaped for missing their heartbeat window.",
			func(s Stats) any { return s.WorkersExpired }},
		{"lease_depth", "Cells currently leased to remote workers.",
			func(s Stats) any { return s.LeaseDepth }},
		{"remote_pending", "Cells queued for the next lease request.",
			func(s Stats) any { return s.RemotePending }},
		{"reassigned", "Leases revoked and returned to the queue (dead or frozen workers).",
			func(s Stats) any { return s.Reassigned }},
		{"remote_admitted", "Fresh results admitted from worker uploads.",
			func(s Stats) any { return s.RemoteAdmitted }},
		{"remote_duplicates", "Bit-identical duplicate uploads acknowledged idempotently.",
			func(s Stats) any { return s.RemoteDuplicates }},
		{"remote_rejected", "Uploads refused by admission verification.",
			func(s Stats) any { return s.RemoteRejected }},
		{"degraded", "True when zero live workers are registered (cells run in-process).",
			func(s Stats) any { return s.Degraded }},
	}
}

// statsMap renders a Stats snapshot through the table — the body served by
// /v1/healthz and folded into /debug/vars.
func statsMap(s Stats) map[string]any {
	out := make(map[string]any, len(statTable()))
	for _, e := range statTable() {
		out[e.Name] = e.Get(s)
	}
	return out
}

// statNames lists the declared wire keys (golden-tested against the docs).
func statNames() []string {
	t := statTable()
	out := make([]string, len(t))
	for i, e := range t {
		out[i] = e.Name
	}
	return out
}
