package service

// The column store is the cache's queryable sidecar: every admitted result
// — locally simulated or uploaded by a worker — is also appended to a
// columnar store file (internal/resultstore) under the same first-insert-
// wins key discipline, so aggregate questions ("mean IPC per design ×
// workload") are answered by GET /v1/query scanning the file instead of
// re-parsing the JSONL cache. The cache stays the source of truth: a store
// append failure is logged, never fails admission, and a store lost or
// torn by a crash is recovered on startup — the writer truncates the torn
// tail (checksum-validated blocks only) and the missing cells are
// backfilled from the cache via workerproto.ParseKey.

import (
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dnc/internal/resultstore"
	"dnc/internal/service/workerproto"
	"dnc/internal/sim/runner"
)

// storeFile is the column store's name under DataDir.
const storeFile = "store.dncr"

// storeCell converts an admitted (spec, result) pair into its store row.
func storeCell(spec cellSpec, r *runner.ResultJSON) resultstore.Cell {
	c := resultstore.Cell{
		Workload: spec.Workload, Design: spec.Design, Mode: spec.ModeString(),
		Cores: spec.Cores, Warm: spec.Warm, Measure: spec.Measure, Seed: spec.Seed,
	}
	c.SetResult(r)
	return c
}

// openStore opens (and crash-recovers) the store file, then backfills any
// cached cell the store lacks — the path that repairs a truncated torn
// tail, restores a deleted store wholesale, and seeds the store on the
// first boot over a pre-store data dir.
func (s *Server) openStore() error {
	path := filepath.Join(s.cfg.DataDir, storeFile)
	w, err := resultstore.OpenWriter(path)
	if err != nil {
		return err
	}
	s.store, s.storePath = w, path
	backfilled := 0
	for _, e := range s.cache.entries() {
		spec, ok := workerproto.ParseKey(e.Key)
		if !ok || e.Result == nil || w.Has(e.Key) {
			continue
		}
		if _, err := w.Append(storeCell(spec, e.Result)); err != nil {
			w.Close()
			s.store = nil
			return err
		}
		backfilled++
	}
	if backfilled > 0 {
		if err := w.Flush(); err != nil {
			w.Close()
			s.store = nil
			return err
		}
		s.log.Info("column store backfilled from cache", "cells", backfilled, "path", path)
	}
	return nil
}

// appendStore mirrors one admitted result into the column store, fsynced
// per cell like the cache. Failures are logged, not returned: the store is
// derived data, rebuilt from the cache on the next startup.
func (s *Server) appendStore(spec cellSpec, r *runner.ResultJSON) {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	if s.store == nil {
		return
	}
	if _, err := s.store.Append(storeCell(spec, r)); err != nil {
		s.log.Warn("column store append failed", "key", spec.Key(), "err", err)
		return
	}
	if err := s.store.Flush(); err != nil {
		s.log.Warn("column store flush failed", "err", err)
	}
}

// storeScan answers one aggregate query against the on-disk store. The
// lock orders the read after any in-flight append's complete write+fsync,
// so the snapshot read never sees a half-written block.
func (s *Server) storeScan(q resultstore.Query) ([]resultstore.Group, int, error) {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	if s.store == nil {
		return nil, http.StatusServiceUnavailable, errors.New("service: column store unavailable")
	}
	if err := s.store.Flush(); err != nil {
		return nil, http.StatusInternalServerError, err
	}
	r, err := resultstore.OpenReader(s.storePath)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	groups, err := resultstore.Scan(r, q)
	if err != nil {
		// Unknown metric name or a matched cell lacking the metric: the
		// query, not the store, is at fault.
		return nil, http.StatusBadRequest, err
	}
	return groups, http.StatusOK, nil
}

// storeStats snapshots the store's cell count and on-disk size.
func (s *Server) storeStats() (cells int, bytes int64) {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	if s.store == nil {
		return 0, 0
	}
	if fi, err := os.Stat(s.storePath); err == nil {
		bytes = fi.Size()
	}
	return s.store.Len(), bytes
}

// closeStore seals the pending batch and closes the store (idempotent).
func (s *Server) closeStore() error {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	if s.store == nil {
		return nil
	}
	err := s.store.Close()
	s.store = nil
	return err
}

// handleQuery answers an aggregate metric query from the column store:
//
//	GET /v1/query?metric=ipc&workload=a,b&design=x,y&seed=1,2
//
// metric defaults to ipc (a derived metric; any stored counter column like
// m.Retired or llc.InstHits works too); empty tag filters mean "any". The
// response is one aggregate row per matching design × workload pair.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := resultstore.Query{
		Metric:    r.URL.Query().Get("metric"),
		Workloads: splitList(r.URL.Query().Get("workload")),
		Designs:   splitList(r.URL.Query().Get("design")),
	}
	if q.Metric == "" {
		q.Metric = resultstore.MetricIPC
	}
	for _, tok := range splitList(r.URL.Query().Get("seed")) {
		n, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, errors.New("service: seed filter must be a comma-separated list of integers"))
			return
		}
		q.Seeds = append(q.Seeds, n)
	}
	groups, code, err := s.storeScan(q)
	if err != nil {
		writeError(w, code, err)
		return
	}
	if groups == nil {
		groups = []resultstore.Group{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"metric": q.Metric, "groups": groups})
}

// splitList parses a comma-separated query parameter, dropping empties.
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}
