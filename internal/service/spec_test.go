package service

import (
	"strings"
	"testing"

	"dnc/internal/isa"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	n := Spec{Workloads: []string{"Web-Frontend"}, Designs: []string{"baseline"}}.normalized()
	if n.Mode != "fixed" || n.Cores != 16 || n.WarmCycles != 200_000 ||
		n.MeasureCycles != 200_000 || len(n.Seeds) != 1 || n.Seeds[0] != 1 {
		t.Fatalf("normalized = %+v, want paper defaults", n)
	}
}

func TestSpecValidation(t *testing.T) {
	good := Spec{Workloads: []string{"Web-Frontend"}, Designs: []string{"baseline"}}
	cases := []struct {
		name   string
		mutate func(*Spec)
		errSub string
	}{
		{"ok", func(s *Spec) {}, ""},
		{"no workloads", func(s *Spec) { s.Workloads = nil }, "no workloads"},
		{"no designs", func(s *Spec) { s.Designs = nil }, "no designs"},
		{"unknown workload", func(s *Spec) { s.Workloads = []string{"nope"} }, "unknown workload"},
		{"unknown design", func(s *Spec) { s.Designs = []string{"nope"} }, "unknown design"},
		{"bad mode", func(s *Spec) { s.Mode = "thumb" }, "mode"},
		{"cores high", func(s *Spec) { s.Cores = 17 }, "cores"},
		{"cores negative", func(s *Spec) { s.Cores = -1 }, "cores"},
		{"window too long", func(s *Spec) { s.MeasureCycles = maxSpecCycles + 1 }, "window"},
		{"dup seeds", func(s *Spec) { s.Seeds = []int64{3, 3} }, "duplicate seed"},
		{"too many seeds", func(s *Spec) {
			s.Seeds = make([]int64, maxSpecSeeds+1)
			for i := range s.Seeds {
				s.Seeds[i] = int64(i)
			}
		}, "seeds exceed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := good
			tc.mutate(&s)
			err := s.normalized().validate(1024)
			if tc.errSub == "" {
				if err != nil {
					t.Fatalf("validate = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.errSub) {
				t.Fatalf("validate = %v, want error containing %q", err, tc.errSub)
			}
		})
	}
}

func TestSpecCellLimit(t *testing.T) {
	s := Spec{
		Workloads: []string{"Web-Frontend", "Web-Search"},
		Designs:   []string{"baseline", "NL"},
		Seeds:     []int64{1, 2, 3},
	}.normalized()
	if err := s.validate(12); err != nil {
		t.Fatalf("12 cells under limit 12: %v", err)
	}
	if err := s.validate(11); err == nil || !strings.Contains(err.Error(), "cells") {
		t.Fatalf("12 cells over limit 11: err = %v", err)
	}
}

// TestCellKeyCapturesEveryInput proves every result-determining field
// participates in the cell identity: perturbing any one of them must
// change the key and the digest.
func TestCellKeyCapturesEveryInput(t *testing.T) {
	base := cellSpec{
		Workload: "Web-Frontend", Design: "baseline", Mode: isa.Fixed,
		Cores: 2, Warm: 1000, Measure: 1000, Seed: 1,
	}
	variants := []cellSpec{
		{Workload: "Web-Search", Design: "baseline", Mode: isa.Fixed, Cores: 2, Warm: 1000, Measure: 1000, Seed: 1},
		{Workload: "Web-Frontend", Design: "NL", Mode: isa.Fixed, Cores: 2, Warm: 1000, Measure: 1000, Seed: 1},
		{Workload: "Web-Frontend", Design: "baseline", Mode: isa.Variable, Cores: 2, Warm: 1000, Measure: 1000, Seed: 1},
		{Workload: "Web-Frontend", Design: "baseline", Mode: isa.Fixed, Cores: 4, Warm: 1000, Measure: 1000, Seed: 1},
		{Workload: "Web-Frontend", Design: "baseline", Mode: isa.Fixed, Cores: 2, Warm: 2000, Measure: 1000, Seed: 1},
		{Workload: "Web-Frontend", Design: "baseline", Mode: isa.Fixed, Cores: 2, Warm: 1000, Measure: 2000, Seed: 1},
		{Workload: "Web-Frontend", Design: "baseline", Mode: isa.Fixed, Cores: 2, Warm: 1000, Measure: 1000, Seed: 2},
	}
	seen := map[string]bool{base.Key(): true, base.Digest(): true}
	for i, v := range variants {
		if seen[v.Key()] || seen[v.Digest()] {
			t.Errorf("variant %d aliases another cell: %s", i, v.Key())
		}
		seen[v.Key()] = true
		seen[v.Digest()] = true
	}
	if base.Key() != base.Key() || base.Digest() != base.Digest() {
		t.Error("cell identity is not stable")
	}
}

// TestSpecExpansionDeterministic pins the cell order (workload-major) and
// that normalization makes explicit-default and implicit-default specs
// expand identically — the property the dedup cache relies on.
func TestSpecExpansionDeterministic(t *testing.T) {
	implicit := Spec{Workloads: []string{"Web-Frontend"}, Designs: []string{"baseline"}}.normalized()
	explicit := Spec{
		Workloads: []string{"Web-Frontend"}, Designs: []string{"baseline"},
		Mode: "fixed", Cores: 16, WarmCycles: 200_000, MeasureCycles: 200_000,
		Seeds: []int64{1},
	}.normalized()
	ic, ec := implicit.cells(), explicit.cells()
	if len(ic) != 1 || len(ec) != 1 || ic[0].Digest() != ec[0].Digest() {
		t.Fatalf("implicit and explicit defaults expand differently: %v vs %v", ic, ec)
	}
	if implicit.digest() != explicit.digest() {
		t.Fatalf("spec digests differ for identical normalized specs")
	}
	// Priority must not participate in the spec digest.
	prio := explicit
	prio.Priority = 9
	if prio.digest() != explicit.digest() {
		t.Fatal("priority changed the spec digest")
	}
}

func TestCellRunConfigMatchesSpec(t *testing.T) {
	c := cellSpec{
		Workload: "Web-Frontend", Design: "shotgun", Mode: isa.Fixed,
		Cores: 3, Warm: 1111, Measure: 2222, Seed: 7,
	}
	rc := c.RunConfig()
	if rc.Workload.Name != "Web-Frontend" || rc.Cores != 3 ||
		rc.WarmCycles != 1111 || rc.MeasureCycles != 2222 || rc.Seed != 7 {
		t.Fatalf("runConfig = %+v, want spec fields carried over", rc)
	}
	// Shotgun needs its prefetch buffer, exactly as the bench harness
	// configures it from the catalog entry.
	if rc.Core.PrefetchBufferEntries != 64 {
		t.Fatalf("shotgun PrefetchBufferEntries = %d, want 64", rc.Core.PrefetchBufferEntries)
	}
	if rc.NewDesign == nil || rc.NewDesign().Name() == "" {
		t.Fatal("runConfig has no design constructor")
	}
}
