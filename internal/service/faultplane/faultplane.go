// Package faultplane is the deterministic fault-injection layer for the
// distributed worker plane's tests. It supplies the two seams chaos needs:
//
//   - Clock: a fake monotonic clock injected as Config.Clock, so lease
//     expiry, heartbeat windows, and frozen-worker budgets are driven by
//     explicit Advance calls instead of wall time;
//   - Transport: an http.RoundTripper wrapper that drops, duplicates,
//     delays, and tears requests according to a seeded RNG, so an entire
//     chaotic network schedule replays bit-identically from one seed.
//
// Both live outside _test.go files because the distributed chaos suite
// re-execs worker subprocesses that need them at build time, and because a
// deterministic fault schedule is exactly the kind of harness worth reusing
// (the differential-validation suite's philosophy: randomness is only
// admissible when replayable).
package faultplane

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Clock is a fake clock safe for concurrent use. The zero value starts at
// the zero time; use New for a readable epoch.
type Clock struct {
	mu sync.Mutex
	t  time.Time
}

// NewClock returns a clock frozen at start.
func NewClock(start time.Time) *Clock { return &Clock{t: start} }

// Now returns the current fake time (inject as service Config.Clock).
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Faults is the per-request fault distribution, each field a probability in
// [0,1]. Faults compose: one request can be delayed and duplicated.
type Faults struct {
	// Drop fails the request with a transport error before it is sent —
	// the network ate it. Retry layers see a connection failure.
	Drop float64
	// Dup sends the request twice, sequentially, returning the first
	// response — at-least-once delivery made literal. The duplicate's
	// response is drained and discarded.
	Dup float64
	// Delay sleeps up to MaxDelay before sending (reordering pressure:
	// heartbeats overtaking completions and vice versa).
	Delay    float64
	MaxDelay time.Duration
	// Tear truncates the request body mid-upload, modeling a worker dying
	// or the connection breaking partway through a completion POST. The
	// server must reject the torn body without poisoning any state.
	Tear float64
}

// Stats counts what the transport actually did.
type Stats struct {
	Requests uint64
	Drops    uint64
	Dups     uint64
	Delays   uint64
	Tears    uint64
}

// Transport injects Faults into every request it forwards to Base. The
// fault schedule is a pure function of the seed and the request sequence,
// so a failing chaos run replays exactly. Safe for concurrent use; under
// concurrency the *interleaving* of requests onto the RNG is scheduler-
// dependent, so bit-exact replay holds for single-connection clients and
// statistical shape for concurrent ones.
type Transport struct {
	base   http.RoundTripper
	faults Faults

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// NewTransport wraps base (nil means http.DefaultTransport) with the
// seeded fault distribution.
func NewTransport(seed int64, base http.RoundTripper, f Faults) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, faults: f, rng: rand.New(rand.NewSource(seed))}
}

// Stats snapshots the fault counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// decision is one request's sampled fate, drawn atomically so concurrent
// requests each get a coherent slice of the RNG stream.
type decision struct {
	drop, dup, tear bool
	delay           time.Duration
}

func (t *Transport) decide() decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Requests++
	var d decision
	d.drop = t.rng.Float64() < t.faults.Drop
	d.dup = t.rng.Float64() < t.faults.Dup
	d.tear = t.rng.Float64() < t.faults.Tear
	if t.rng.Float64() < t.faults.Delay && t.faults.MaxDelay > 0 {
		d.delay = time.Duration(t.rng.Int63n(int64(t.faults.MaxDelay)))
	}
	switch {
	case d.drop:
		t.stats.Drops++
	case d.tear:
		t.stats.Tears++
	}
	if d.dup && !d.drop {
		t.stats.Dups++
	}
	if d.delay > 0 {
		t.stats.Delays++
	}
	return d
}

// RoundTrip applies the sampled faults. Requests must carry a rewindable
// body (GetBody set — true for bytes/strings readers, which is what JSON
// clients send); bodies that cannot rewind pass through unfaulted rather
// than corrupting a request we could not replay.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.decide()
	if d.delay > 0 {
		select {
		case <-time.After(d.delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if d.drop {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("faultplane: injected drop for %s %s", req.Method, req.URL.Path)
	}
	if (d.dup || d.tear) && req.Body != nil && req.GetBody == nil {
		d.dup, d.tear = false, false
	}
	if d.tear {
		return t.tear(req)
	}
	if d.dup {
		// Send a full copy first; its response is discarded. The caller
		// sees only the second delivery — but the server saw both.
		if dupReq, err := cloneRequest(req); err == nil {
			if resp, err := t.base.RoundTrip(dupReq); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	return t.base.RoundTrip(req)
}

// tear sends the request with its body cut roughly in half and the
// Content-Length left claiming the full size, so the server reads a
// truncated stream that dies mid-body — the wire shape of a worker
// SIGKILLed during an upload.
func (t *Transport) tear(req *http.Request) (*http.Response, error) {
	body, err := req.GetBody()
	if err != nil {
		return t.base.RoundTrip(req)
	}
	full, err := io.ReadAll(body)
	body.Close()
	if err != nil || len(full) < 2 {
		return t.base.RoundTrip(req)
	}
	if req.Body != nil {
		req.Body.Close()
	}
	cut := full[:len(full)/2]
	tr := req.Clone(req.Context())
	tr.Body = io.NopCloser(bytes.NewReader(cut))
	tr.ContentLength = int64(len(full))
	tr.GetBody = nil
	resp, rtErr := t.base.RoundTrip(tr)
	if rtErr != nil {
		// The truncation itself usually surfaces client-side as a send
		// error; translate it into a labeled fault so logs read cleanly.
		return nil, fmt.Errorf("faultplane: injected torn upload for %s %s: %w", req.Method, req.URL.Path, rtErr)
	}
	return resp, nil
}

// cloneRequest deep-copies a request with a rewound body.
func cloneRequest(req *http.Request) (*http.Request, error) {
	c := req.Clone(req.Context())
	if req.GetBody != nil {
		b, err := req.GetBody()
		if err != nil {
			return nil, err
		}
		c.Body = b
	}
	return c, nil
}
