package faultplane

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestClockAdvances(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewClock(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	c.Advance(90 * time.Second)
	if got := c.Now(); !got.Equal(start.Add(90 * time.Second)) {
		t.Fatalf("Now after Advance = %v", got)
	}
}

// TestTransportDeterministic: the whole point of a seeded fault plane is
// that a failing chaos schedule replays bit-identically. Two transports
// with the same seed must sample the identical fault sequence; a different
// seed must diverge.
func TestTransportDeterministic(t *testing.T) {
	f := Faults{Drop: 0.3, Dup: 0.3, Tear: 0.2, Delay: 0.5, MaxDelay: time.Second}
	sample := func(seed int64) []decision {
		tr := NewTransport(seed, nil, f)
		out := make([]decision, 200)
		for i := range out {
			out[i] = tr.decide()
		}
		return out
	}
	a, b := sample(42), sample(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged under the same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := sample(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical 200-request schedule")
	}
}

// TestTransportFaults exercises each fault against a live server: drops
// never reach it, dups reach it twice, tears arrive truncated and must be
// rejected by the handler, and the stats ledger matches what happened.
func TestTransportFaults(t *testing.T) {
	var hits atomic.Int64
	var torn atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil || int64(len(body)) != r.ContentLength {
			torn.Add(1)
			http.Error(w, "torn body", http.StatusBadRequest)
			return
		}
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	post := func(tr *Transport) (*http.Response, error) {
		client := &http.Client{Transport: tr}
		return client.Post(srv.URL, "application/json", strings.NewReader(`{"payload":"0123456789abcdef"}`))
	}

	// Drop everything: the server never hears from us.
	drop := NewTransport(1, nil, Faults{Drop: 1})
	if _, err := post(drop); err == nil {
		t.Fatal("dropped request returned a response")
	}
	if hits.Load() != 0 {
		t.Fatal("dropped request reached the server")
	}
	if st := drop.Stats(); st.Drops != 1 || st.Requests != 1 {
		t.Fatalf("drop stats = %+v", st)
	}

	// Duplicate everything: one POST lands twice, caller sees one response.
	dup := NewTransport(1, nil, Faults{Dup: 1})
	resp, err := post(dup)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("dup post = %v, %v", resp, err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("duplicated request hit the server %d times, want 2", hits.Load())
	}
	if st := dup.Stats(); st.Dups != 1 {
		t.Fatalf("dup stats = %+v", st)
	}

	// Tear everything: the body arrives truncated; the handler must see it
	// as torn (or the send must fail outright) — either way no clean hit.
	hits.Store(0)
	tear := NewTransport(1, nil, Faults{Tear: 1})
	if resp, err := post(tear); err == nil {
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("torn upload = %d, want a 400 rejection", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if hits.Load() != 0 {
		t.Fatal("torn upload was processed as complete")
	}
	if st := tear.Stats(); st.Tears != 1 {
		t.Fatalf("tear stats = %+v, want 1 tear", st)
	}
}
