package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"dnc/internal/sim/runner"
)

// cacheEntry is one JSONL line of the result cache: a completed cell's
// result under its content address, plus the digest of the result bytes so
// bit-exactness of later hits is checkable without re-serialization.
type cacheEntry struct {
	// Digest is the cell-key content address (cellSpec.Digest).
	Digest string `json:"digest"`
	// Key is the canonical cell key, stored for human forensics.
	Key string `json:"key"`
	// ResultDigest is ResultDigest(Result) at insertion time.
	ResultDigest string `json:"result_digest"`
	Result       *runner.ResultJSON `json:"result"`
}

// resultCache is the persistent, content-addressed dedup store shared by
// every job the server runs. It follows the journal's crash discipline:
// append-only JSONL, one fsync per insert, a torn trailing line (process
// killed mid-append) discarded on load, and appends always starting on a
// fresh line. Entries are immutable — deterministic runs mean a digest can
// only ever map to one result, so the first insert wins and duplicates are
// dropped.
type resultCache struct {
	mu       sync.Mutex
	f        *os.File
	byDigest map[string]*cacheEntry
	hits     uint64
	inserts  uint64
	errs     []error
}

// openResultCache loads an existing cache file (tolerating a torn tail) and
// opens it for appending.
func openResultCache(path string) (*resultCache, error) {
	c := &resultCache{byDigest: make(map[string]*cacheEntry)}
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var e cacheEntry
			if json.Unmarshal(line, &e) != nil || e.Digest == "" || e.Result == nil {
				continue // torn or foreign line: the cell simply re-runs
			}
			if _, dup := c.byDigest[e.Digest]; !dup {
				ec := e
				c.byDigest[e.Digest] = &ec
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("service: reading result cache %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("service: opening result cache %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: opening result cache %s for append: %w", path, err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], fi.Size()-1); err == nil && last[0] != '\n' {
			f.Write([]byte("\n"))
		}
	}
	c.f = f
	return c, nil
}

// lookup returns the entry for a cell digest, counting a dedup hit. Use get
// for stat-neutral reads (result streaming).
func (c *resultCache) lookup(digest string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byDigest[digest]
	if ok {
		c.hits++
	}
	return e, ok
}

// get returns the entry without touching the hit statistics.
func (c *resultCache) get(digest string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byDigest[digest]
	return e, ok
}

// insert stores a freshly computed result under the cell's content address,
// appending and fsyncing one JSONL line so the entry survives kill -9. A
// digest already present is left untouched (first insert wins). The
// returned entry carries the result digest the caller reports upstream.
func (c *resultCache) insert(cell cellSpec, r *runner.ResultJSON) *cacheEntry {
	digest := cell.Digest()
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byDigest[digest]; ok {
		return e
	}
	e := &cacheEntry{
		Digest:       digest,
		Key:          cell.Key(),
		ResultDigest: ResultDigest(r),
		Result:       r,
	}
	line, err := json.Marshal(e)
	if err != nil {
		c.errs = append(c.errs, fmt.Errorf("service: encoding cache entry %s: %w", cell.Key(), err))
		return e // still usable in memory this process
	}
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		c.errs = append(c.errs, fmt.Errorf("service: cache write %s: %w", cell.Key(), err))
	} else if err := c.f.Sync(); err != nil {
		c.errs = append(c.errs, fmt.Errorf("service: cache sync: %w", err))
	}
	c.byDigest[digest] = e
	c.inserts++
	return e
}

// stats reports entry count, dedup hits, and inserts this process.
func (c *resultCache) stats() (entries int, hits, inserts uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byDigest), c.hits, c.inserts
}

// close closes the backing file; write errors accumulated over the run are
// joined into the returned error.
func (c *resultCache) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	errs = append(errs, c.errs...)
	if c.f != nil {
		if err := c.f.Close(); err != nil {
			errs = append(errs, err)
		}
		c.f = nil
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("service: result cache: %v", errs)
}
