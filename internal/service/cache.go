package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"dnc/internal/sim/runner"
)

// cacheEntry is one JSONL line of the result cache: a completed cell's
// result under its content address, plus the digest of the result bytes so
// bit-exactness of later hits is checkable without re-serialization.
type cacheEntry struct {
	// Digest is the cell-key content address (cellSpec.Digest).
	Digest string `json:"digest"`
	// Key is the canonical cell key, stored for human forensics.
	Key string `json:"key"`
	// ResultDigest is ResultDigest(Result) at insertion time.
	ResultDigest string             `json:"result_digest"`
	Result       *runner.ResultJSON `json:"result"`

	// size is the entry's on-disk footprint (its JSONL line including the
	// newline), tracked for the eviction budget. Not serialized.
	size int64
}

// resultCache is the persistent, content-addressed dedup store shared by
// every job the server runs. It follows the journal's crash discipline:
// append-only JSONL, one fsync per insert, a torn trailing line (process
// killed mid-append) discarded on load, and appends always starting on a
// fresh line. Entries are immutable — deterministic runs mean a digest can
// only ever map to one result, so the first insert wins and duplicates are
// dropped.
//
// With maxBytes > 0 the cache is bounded: when live entries exceed the
// budget the oldest are evicted (insertion order — the cells least likely
// to be re-requested), and once the dead bytes left behind in the file
// exceed half the budget the file is compacted by atomic rewrite. Between
// compactions the file holds at most budget + budget/2 plus one entry, so
// the on-disk footprint is bounded too. An evicted cell simply re-runs on
// its next request; determinism makes eviction semantically invisible.
type resultCache struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	maxBytes int64
	byDigest map[string]*cacheEntry
	// order is the insertion order of live digests (eviction scans from the
	// front); evicted digests are removed lazily on compaction scans.
	order     []string
	liveBytes int64 // sum of live entry sizes
	deadBytes int64 // bytes in the file belonging to evicted entries
	hits      uint64
	inserts   uint64
	evictions uint64
	errs      []error
}

// cacheStats is the cache's operational snapshot.
type cacheStats struct {
	entries   int
	hits      uint64
	inserts   uint64
	evictions uint64
	liveBytes int64
}

// openResultCache loads an existing cache file (tolerating a torn tail) and
// opens it for appending. maxBytes > 0 bounds the cache; a loaded file
// already over budget is evicted down and compacted immediately.
func openResultCache(path string, maxBytes int64) (*resultCache, error) {
	c := &resultCache{path: path, maxBytes: maxBytes, byDigest: make(map[string]*cacheEntry)}
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var e cacheEntry
			if json.Unmarshal(line, &e) != nil || e.Digest == "" || e.Result == nil {
				continue // torn or foreign line: the cell simply re-runs
			}
			if _, dup := c.byDigest[e.Digest]; !dup {
				ec := e
				ec.size = int64(len(line)) + 1
				c.byDigest[e.Digest] = &ec
				c.order = append(c.order, e.Digest)
				c.liveBytes += ec.size
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("service: reading result cache %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("service: opening result cache %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: opening result cache %s for append: %w", path, err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], fi.Size()-1); err == nil && last[0] != '\n' {
			f.Write([]byte("\n"))
		}
	}
	c.f = f
	if c.maxBytes > 0 && c.liveBytes > c.maxBytes {
		c.evictLocked()
		c.compactLocked() // a restart with a shrunken budget trims eagerly
	}
	return c, nil
}

// lookup returns the entry for a cell digest, counting a dedup hit. Use get
// for stat-neutral reads (result streaming).
func (c *resultCache) lookup(digest string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byDigest[digest]
	if ok {
		c.hits++
	}
	return e, ok
}

// get returns the entry without touching the hit statistics.
func (c *resultCache) get(digest string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byDigest[digest]
	return e, ok
}

// insert stores a freshly computed result under the cell's content address,
// appending and fsyncing one JSONL line so the entry survives kill -9. A
// digest already present is left untouched (first insert wins). The
// returned entry carries the result digest the caller reports upstream.
func (c *resultCache) insert(cell cellSpec, r *runner.ResultJSON) *cacheEntry {
	digest := cell.Digest()
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byDigest[digest]; ok {
		return e
	}
	e := &cacheEntry{
		Digest:       digest,
		Key:          cell.Key(),
		ResultDigest: ResultDigest(r),
		Result:       r,
	}
	line, err := json.Marshal(e)
	if err != nil {
		c.errs = append(c.errs, fmt.Errorf("service: encoding cache entry %s: %w", cell.Key(), err))
		return e // still usable in memory this process
	}
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		c.errs = append(c.errs, fmt.Errorf("service: cache write %s: %w", cell.Key(), err))
	} else if err := c.f.Sync(); err != nil {
		c.errs = append(c.errs, fmt.Errorf("service: cache sync: %w", err))
	}
	e.size = int64(len(line)) + 1
	c.byDigest[digest] = e
	c.order = append(c.order, digest)
	c.liveBytes += e.size
	c.inserts++
	if c.maxBytes > 0 && c.liveBytes > c.maxBytes {
		c.evictLocked()
		if c.deadBytes > c.maxBytes/2 {
			c.compactLocked()
		}
	}
	return e
}

// evictLocked drops oldest-first until live bytes fit the budget, always
// keeping at least the newest entry (a single result larger than the whole
// budget still has to be servable).
func (c *resultCache) evictLocked() {
	for c.liveBytes > c.maxBytes && len(c.order) > 1 {
		digest := c.order[0]
		c.order = c.order[1:]
		e, ok := c.byDigest[digest]
		if !ok {
			continue
		}
		delete(c.byDigest, digest)
		c.liveBytes -= e.size
		c.deadBytes += e.size
		c.evictions++
	}
}

// compactLocked rewrites the file with only live entries (atomic tmp +
// rename, fsynced) and reopens it for appending, reclaiming dead bytes.
// Failures leave the old file in place — correctness never depends on
// compaction, only the disk bound does.
func (c *resultCache) compactLocked() {
	tmp := c.path + ".compact"
	f, err := os.Create(tmp)
	if err != nil {
		c.errs = append(c.errs, fmt.Errorf("service: cache compact: %w", err))
		return
	}
	w := bufio.NewWriter(f)
	ok := true
	live := make([]string, 0, len(c.byDigest))
	for _, digest := range c.order {
		e, present := c.byDigest[digest]
		if !present {
			continue
		}
		live = append(live, digest)
		line, err := json.Marshal(e)
		if err != nil {
			continue
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			c.errs = append(c.errs, fmt.Errorf("service: cache compact write: %w", err))
			ok = false
			break
		}
	}
	if ok {
		if err := w.Flush(); err != nil {
			c.errs = append(c.errs, fmt.Errorf("service: cache compact flush: %w", err))
			ok = false
		}
	}
	if ok {
		if err := f.Sync(); err != nil {
			c.errs = append(c.errs, fmt.Errorf("service: cache compact sync: %w", err))
			ok = false
		}
	}
	if err := f.Close(); err != nil && ok {
		c.errs = append(c.errs, fmt.Errorf("service: cache compact close: %w", err))
		ok = false
	}
	if !ok {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, c.path); err != nil {
		c.errs = append(c.errs, fmt.Errorf("service: cache compact rename: %w", err))
		os.Remove(tmp)
		return
	}
	nf, err := os.OpenFile(c.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		c.errs = append(c.errs, fmt.Errorf("service: cache compact reopen: %w", err))
		return
	}
	c.f.Close()
	c.f = nf
	c.order = live
	c.deadBytes = 0
}

// entries returns the live entries in insertion order — the walk the
// column-store backfill does on startup to repair a lost or torn store.
func (c *resultCache) entries() []*cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*cacheEntry, 0, len(c.byDigest))
	for _, digest := range c.order {
		if e, ok := c.byDigest[digest]; ok {
			out = append(out, e)
		}
	}
	return out
}

// stats reports the cache's operational counters.
func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		entries:   len(c.byDigest),
		hits:      c.hits,
		inserts:   c.inserts,
		evictions: c.evictions,
		liveBytes: c.liveBytes,
	}
}

// close closes the backing file; write errors accumulated over the run are
// joined into the returned error.
func (c *resultCache) close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	errs = append(errs, c.errs...)
	if c.f != nil {
		if err := c.f.Close(); err != nil {
			errs = append(errs, err)
		}
		c.f = nil
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("service: result cache: %v", errs)
}
