package service

import (
	"errors"
	"testing"
	"time"
)

func qjob(seq, prio int) *job {
	return &job{id: jobID(seq, Spec{Priority: prio}), seq: seq, spec: Spec{Priority: prio}}
}

func TestQueuePriorityOrder(t *testing.T) {
	q := newJobQueue(8)
	// Same priority pops in submission order; higher priority jumps ahead.
	for _, j := range []*job{qjob(1, 0), qjob(2, 0), qjob(3, 5), qjob(4, 5), qjob(5, 1)} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	var got []int
	for i := 0; i < 5; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		got = append(got, j.seq)
	}
	want := []int{3, 4, 5, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	q := newJobQueue(2)
	if err := q.push(qjob(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob(3, 0)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push over capacity = %v, want ErrQueueFull", err)
	}
	// Popping frees a slot.
	if _, ok := q.pop(); !ok {
		t.Fatal("pop failed")
	}
	if err := q.push(qjob(3, 0)); err != nil {
		t.Fatalf("push after pop = %v, want nil", err)
	}
}

func TestQueueCloseWakesPoppers(t *testing.T) {
	q := newJobQueue(2)
	done := make(chan bool)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pop returned a job from a closed empty queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not wake on close")
	}
	if err := q.push(qjob(1, 0)); !errors.Is(err, ErrDraining) {
		t.Fatalf("push after close = %v, want ErrDraining", err)
	}
	// Jobs queued at close time stay unpopped (persistence recovers them).
	q2 := newJobQueue(2)
	q2.push(qjob(1, 0))
	q2.close()
	if _, ok := q2.pop(); ok {
		t.Fatal("pop drained a closed queue; queued jobs belong to the next process")
	}
}
