package service

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"dnc/internal/service/workerproto"
	"dnc/internal/sim"
	"dnc/internal/telemetry"
)

// The distributed worker plane. The dispatcher is the server side of the
// work API: a lease table that hands pending cells to registered remote
// workers in batches, renews leases on heartbeats, and reassigns the cells
// of workers that die (missed heartbeats) or freeze (heartbeats continue,
// progress doesn't — each lease carries a progress budget, the same idea as
// the simulator's livelock watchdog). Execution is at-least-once; the
// admission path in Server.completeCell verifies every upload's content
// address and the first-insert-wins cache makes duplicates provably
// harmless, so reassignment never risks double-admitting a cell.
//
// When no live workers are registered the dispatcher reports itself
// inactive and cells run on the PR 6 in-process pool instead — an existing
// single-process deployment behaves exactly as before. If every worker
// disappears while cells are waiting, the waiters are released with
// errNoWorkers and fall back to local execution rather than stalling.

// Lease-plane defaults (overridable via Config).
const (
	// DefaultLeaseTTL is the heartbeat window: a worker silent this long
	// forfeits its leases.
	DefaultLeaseTTL = 15 * time.Second
	// DefaultLeaseMaxAge is the per-lease progress budget: a cell leased
	// this long without completing is revoked even if its worker is still
	// heartbeating (the frozen-worker case).
	DefaultLeaseMaxAge = 10 * time.Minute
	// DefaultLeaseBatchMax caps cells per lease request.
	DefaultLeaseBatchMax = 16
	// leaseExpirySweep is the cadence of the background expiry check. The
	// check reads the injectable clock, so fake-clock tests stay
	// deterministic: real time only decides how often we look.
	leaseExpirySweep = 100 * time.Millisecond
)

// errNoWorkers releases a waiting cell back to local execution when the
// last live worker disappears.
var errNoWorkers = errors.New("service: no live remote workers")

// remoteOutcome is what a waiter receives: a result admitted from a worker
// upload, or the remote execution's error.
type remoteOutcome struct {
	r   sim.Result
	err error
}

// remoteCell is one cell on the remote plane: pending (awaiting a lease) or
// leased (awaiting completion). Several concurrent jobs can contain the
// same cell; each gets its own waiter channel and one execution feeds all.
type remoteCell struct {
	digest  string
	spec    workerproto.CellSpec
	waiters []chan remoteOutcome
	leased  bool // held by a worker right now (not in pending)
	// traceID is the submitting job's trace (first submitter wins when dedup
	// funnels several jobs onto one cell); it rides on every lease so worker
	// attempts stitch into the server timeline.
	traceID string
}

// workerState is one live registered worker.
type workerState struct {
	id       string
	name     string
	capacity int
	expiry   time.Time // lastBeat + TTL; any API call renews it
	leases   map[string]*lease
}

// lease is one cell granted to one worker.
type lease struct {
	cell      *remoteCell
	worker    *workerState
	grantedAt time.Time // fixed at grant: the progress budget anchor
}

// dispatchStats is the worker-plane accounting surfaced on /v1/healthz and
// /debug/sweep.
type dispatchStats struct {
	// WorkersRegistered counts registrations ever (this process).
	WorkersRegistered uint64 `json:"workers_registered"`
	// WorkersLive is the current live (heartbeating) worker count; zero
	// means degraded mode — cells execute in-process.
	WorkersLive int `json:"workers_live"`
	// WorkersExpired counts workers that missed their heartbeat window.
	WorkersExpired uint64 `json:"workers_expired"`
	// LeaseDepth is cells currently leased to workers.
	LeaseDepth int `json:"lease_depth"`
	// RemotePending is cells queued for the next lease request.
	RemotePending int `json:"remote_pending"`
	// Reassigned counts leases revoked and returned to the queue (dead or
	// frozen workers).
	Reassigned uint64 `json:"reassigned"`
	// RemoteAdmitted counts fresh results admitted from worker uploads;
	// RemoteDuplicates counts bit-identical redeliveries acknowledged
	// idempotently; RemoteRejected counts uploads refused by admission
	// verification (digest mismatch, unknown cell, result mismatch).
	RemoteAdmitted   uint64 `json:"remote_admitted"`
	RemoteDuplicates uint64 `json:"remote_duplicates"`
	RemoteRejected   uint64 `json:"remote_rejected"`
}

// dispatcher owns the lease table. All methods are safe for concurrent use.
type dispatcher struct {
	mu  sync.Mutex
	now func() time.Time

	ttl      time.Duration
	maxAge   time.Duration
	batchMax int

	seq     int
	workers map[string]*workerState // live only
	byCell  map[string]*remoteCell  // every outstanding cell, pending or leased
	pending []*remoteCell           // FIFO; reassigned cells go to the front

	st dispatchStats

	// rec and log are set by the owning Server after construction (nil rec =
	// telemetry disabled; both are never reassigned once the server starts).
	rec *telemetry.Recorder
	log *slog.Logger
}

func newDispatcher(now func() time.Time, ttl, maxAge time.Duration, batchMax int) *dispatcher {
	if now == nil {
		now = time.Now
	}
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if maxAge <= 0 {
		maxAge = DefaultLeaseMaxAge
	}
	if batchMax <= 0 {
		batchMax = DefaultLeaseBatchMax
	}
	return &dispatcher{
		now:      now,
		ttl:      ttl,
		maxAge:   maxAge,
		batchMax: batchMax,
		workers:  make(map[string]*workerState),
		byCell:   make(map[string]*remoteCell),
		log:      slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

// register admits a worker and issues its identity and timing contract.
func (d *dispatcher) register(name string, capacity int) workerproto.RegisterResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	d.st.WorkersRegistered++
	w := &workerState{
		id:       fmt.Sprintf("w%06d", d.seq),
		name:     name,
		capacity: capacity,
		expiry:   d.now().Add(d.ttl),
		leases:   make(map[string]*lease),
	}
	d.workers[w.id] = w
	d.log.Info("worker registered", "worker", w.id, "name", name, "capacity", capacity)
	return workerproto.RegisterResponse{
		WorkerID:      w.id,
		LeaseTTLMS:    d.ttl.Milliseconds(),
		HeartbeatMS:   (d.ttl / 3).Milliseconds(),
		LeaseBatchMax: d.batchMax,
	}
}

// errUnknownWorker maps to 404: the worker's registration expired (or never
// existed) and it must register again before leasing.
var errUnknownWorker = errors.New("service: unknown or expired worker")

// touch renews a worker's heartbeat expiry; every work-API call counts as
// liveness.
func (d *dispatcher) touch(w *workerState) { w.expiry = d.now().Add(d.ttl) }

// lease grants up to max pending cells to the worker.
func (d *dispatcher) lease(workerID string, max int) ([]workerproto.Lease, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked()
	w, ok := d.workers[workerID]
	if !ok {
		return nil, errUnknownWorker
	}
	d.touch(w)
	if max <= 0 || max > d.batchMax {
		max = d.batchMax
	}
	var out []workerproto.Lease
	for len(out) < max && len(d.pending) > 0 {
		c := d.pending[0]
		d.pending = d.pending[1:]
		c.leased = true
		w.leases[c.digest] = &lease{cell: c, worker: w, grantedAt: d.now()}
		l := workerproto.Lease{Digest: c.digest, Key: c.spec.Key(), Spec: c.spec}
		if c.traceID != "" {
			l.TraceID = c.traceID
			l.SpanID = telemetry.SpanID(c.digest)
		}
		out = append(out, l)
		d.rec.ExecStart(c.digest, w.id)
	}
	if len(out) > 0 {
		d.log.Debug("leases granted", "worker", w.id, "cells", len(out))
	}
	return out, nil
}

// heartbeat renews the worker and all its leases, revoking any lease past
// the progress budget (the frozen-worker watchdog: beats arrive, results
// don't). Revoked digests are reported so the worker abandons them.
func (d *dispatcher) heartbeat(workerID string, active []string) ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked()
	w, ok := d.workers[workerID]
	if !ok {
		return nil, errUnknownWorker
	}
	d.touch(w)
	now := d.now()
	seen := make(map[string]bool)
	var revoked []string
	for digest, l := range w.leases {
		if now.Sub(l.grantedAt) > d.maxAge {
			d.revokeLocked(l)
			seen[digest] = true
			revoked = append(revoked, digest)
		}
	}
	// Digests the worker claims but the server no longer leases to it
	// (already revoked and reassigned) are re-reported so the worker can
	// cancel the stale execution.
	for _, digest := range active {
		if _, held := w.leases[digest]; !held && !seen[digest] {
			seen[digest] = true
			revoked = append(revoked, digest)
		}
	}
	return revoked, nil
}

// revokeLocked returns a leased cell to the front of the pending queue (it
// has already waited its turn once).
func (d *dispatcher) revokeLocked(l *lease) {
	delete(l.worker.leases, l.cell.digest)
	if _, live := d.byCell[l.cell.digest]; !live {
		return // completed or abandoned in the meantime
	}
	l.cell.leased = false
	d.pending = append([]*remoteCell{l.cell}, d.pending...)
	d.st.Reassigned++
	d.rec.ExecEnd(l.cell.digest, l.worker.id, "revoked")
	d.log.Warn("lease revoked", "span", telemetry.SpanID(l.cell.digest), "worker", l.worker.id,
		"held", d.now().Sub(l.grantedAt).String())
}

// expireLocked reaps workers whose heartbeat window lapsed, reassigning
// their leases; if the last live worker goes, waiting cells are released to
// local execution.
func (d *dispatcher) expireLocked() {
	now := d.now()
	for id, w := range d.workers {
		if now.After(w.expiry) {
			d.log.Warn("worker expired", "worker", id, "name", w.name, "leases", len(w.leases))
			for _, l := range w.leases {
				d.revokeLocked(l)
			}
			delete(d.workers, id)
			d.st.WorkersExpired++
		}
	}
	if len(d.workers) == 0 {
		d.releaseAllLocked(errNoWorkers)
	}
}

// expire is the background sweep entry point.
func (d *dispatcher) expire() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked()
}

// releaseAllLocked hands every outstanding cell back to its waiters with
// err (used when the worker plane empties: waiters fall back to the
// in-process pool).
func (d *dispatcher) releaseAllLocked(err error) {
	for digest, c := range d.byCell {
		for _, ch := range c.waiters {
			ch <- remoteOutcome{err: err}
		}
		delete(d.byCell, digest)
	}
	d.pending = nil
}

// active reports whether at least one live worker is registered (after
// reaping); inactive means degraded mode — run cells in-process.
func (d *dispatcher) active() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked()
	return len(d.workers) > 0
}

// enqueue places a cell on the remote plane and returns the channel its
// outcome arrives on plus a cancel function (the waiter's job was cancelled
// or timed out; the cell is dropped once its last waiter leaves and it is
// not currently leased).
func (d *dispatcher) enqueue(spec workerproto.CellSpec, traceID string) (<-chan remoteOutcome, func()) {
	digest := spec.Digest()
	ch := make(chan remoteOutcome, 1)
	d.mu.Lock()
	c, ok := d.byCell[digest]
	if !ok {
		c = &remoteCell{digest: digest, spec: spec, traceID: traceID}
		d.byCell[digest] = c
		d.pending = append(d.pending, c)
	}
	c.waiters = append(c.waiters, ch)
	d.mu.Unlock()

	cancel := func() {
		d.mu.Lock()
		defer d.mu.Unlock()
		c, ok := d.byCell[digest]
		if !ok {
			return
		}
		for i, w := range c.waiters {
			if w == ch {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				break
			}
		}
		if len(c.waiters) == 0 && !c.leased {
			// Nobody wants it and no worker is running it: drop it from the
			// queue so it cannot be leased pointlessly.
			delete(d.byCell, digest)
			for i, p := range d.pending {
				if p == c {
					d.pending = append(d.pending[:i], d.pending[i+1:]...)
					break
				}
			}
		}
	}
	return ch, cancel
}

// deliver resolves an outstanding cell — a verified result admitted from a
// worker upload (err nil) or a reported remote failure — waking every
// waiter. It reports whether the cell was outstanding.
func (d *dispatcher) deliver(digest string, out remoteOutcome) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	c, ok := d.byCell[digest]
	if !ok {
		return false
	}
	delete(d.byCell, digest)
	for i, p := range d.pending {
		if p == c {
			d.pending = append(d.pending[:i], d.pending[i+1:]...)
			break
		}
	}
	// Clear any live lease for the cell (the completing worker's own lease,
	// or a reassigned one some other worker still holds — its eventual
	// upload will be acknowledged as a duplicate).
	for _, w := range d.workers {
		delete(w.leases, digest)
	}
	for _, ch := range c.waiters {
		ch <- out
	}
	return true
}

// outstanding reports whether the cell is known to the remote plane
// (pending or leased) — the admission gate for fresh uploads.
func (d *dispatcher) outstanding(digest string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.byCell[digest]
	return ok
}

// stats snapshots the worker-plane accounting.
func (d *dispatcher) stats() dispatchStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.st
	st.WorkersLive = len(d.workers)
	st.RemotePending = len(d.pending)
	for _, w := range d.workers {
		st.LeaseDepth += len(w.leases)
	}
	return st
}

// countAdmitted / countDuplicate / countRejected fold admission outcomes
// into the stats (called by the complete handler).
func (d *dispatcher) countAdmitted() {
	d.mu.Lock()
	d.st.RemoteAdmitted++
	d.mu.Unlock()
}

func (d *dispatcher) countDuplicate() {
	d.mu.Lock()
	d.st.RemoteDuplicates++
	d.mu.Unlock()
}

func (d *dispatcher) countRejected() {
	d.mu.Lock()
	d.st.RemoteRejected++
	d.mu.Unlock()
}
