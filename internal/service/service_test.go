package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dnc/internal/sim"
	"dnc/internal/sim/runner"
)

// ---- test environment ----
//
// Each test gets a uniquely identified environment (fresh data dir, fresh
// server on an ephemeral port) and may mutate the Config through a pre-test
// hook before the server starts. The environment drains on cleanup unless
// the test already did.

// testSeq disambiguates environments within one process so data dirs and
// log lines are traceable to their test even when t.Parallel interleaves.
var testSeq atomic.Int64

type testEnv struct {
	t       *testing.T
	id      string
	dataDir string
	srv     *Server
	base    string
	drained atomic.Bool
}

// newTestEnv builds and starts a server. Pre-test hooks run against the
// Config before New; use them to install executor seams, shrink queues, or
// re-point DataDir at a previous environment's state.
func newTestEnv(t *testing.T, hooks ...func(*Config)) *testEnv {
	t.Helper()
	e := &testEnv{
		t:       t,
		id:      fmt.Sprintf("%s-%03d", t.Name(), testSeq.Add(1)),
		dataDir: filepath.Join(t.TempDir(), "data"),
	}
	cfg := Config{
		DataDir:  e.dataDir,
		Workers:  2,
		CellJobs: 2,
	}
	for _, h := range hooks {
		h(&cfg)
	}
	e.dataDir = cfg.DataDir
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("[%s] New: %v", e.id, err)
	}
	e.srv = srv
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("[%s] Start: %v", e.id, err)
	}
	e.base = "http://" + srv.Addr()
	t.Cleanup(func() { e.drain() })
	return e
}

func (e *testEnv) drain() {
	if e.drained.Swap(true) {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.srv.Drain(ctx); err != nil {
		e.t.Errorf("[%s] drain: %v", e.id, err)
	}
}

// smallSpec is the cheapest real sweep: the smallest preset workload at a
// tiny geometry, still running the full simulator.
func smallSpec() Spec {
	return Spec{
		Workloads:     []string{"Web-Frontend"},
		Designs:       []string{"baseline"},
		Cores:         2,
		WarmCycles:    600,
		MeasureCycles: 600,
		Seeds:         []int64{1},
	}
}

// fakeRunCell is an executor seam returning an instant deterministic result
// derived from the cell identity, for tests that exercise queueing and
// persistence rather than simulation.
func fakeRunCell(ctx context.Context, c runner.Cell, cfg sim.RunConfig) (sim.Result, error) {
	r := sim.Result{Workload: cfg.Workload.Name}
	r.M.Cycles = cfg.MeasureCycles
	r.M.Retired = uint64(cfg.Seed) * 1000
	return r, nil
}

func (e *testEnv) postJSON(body string) *http.Response {
	e.t.Helper()
	resp, err := http.Post(e.base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		e.t.Fatalf("[%s] POST /v1/jobs: %v", e.id, err)
	}
	return resp
}

// submit POSTs a spec and decodes the accepted job status.
func (e *testEnv) submit(spec Spec) JobStatus {
	e.t.Helper()
	b, _ := json.Marshal(spec)
	resp := e.postJSON(string(b))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var msg map[string]string
		json.NewDecoder(resp.Body).Decode(&msg)
		e.t.Fatalf("[%s] submit = %d (%s), want 202", e.id, resp.StatusCode, msg["error"])
	}
	if loc := resp.Header.Get("Location"); loc == "" {
		e.t.Fatalf("[%s] 202 without Location header", e.id)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		e.t.Fatalf("[%s] decoding submit response: %v", e.id, err)
	}
	return st
}

func (e *testEnv) getJSON(path string, v any) int {
	e.t.Helper()
	resp, err := http.Get(e.base + path)
	if err != nil {
		e.t.Fatalf("[%s] GET %s: %v", e.id, path, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			e.t.Fatalf("[%s] decoding GET %s: %v", e.id, path, err)
		}
	}
	return resp.StatusCode
}

// waitJob polls until the job reaches a terminal state and returns it.
func (e *testEnv) waitJob(id string) JobStatus {
	e.t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := e.getJSON("/v1/jobs/"+id, &st); code != http.StatusOK {
			e.t.Fatalf("[%s] GET job %s = %d", e.id, id, code)
		}
		if st.State == JobDone || st.State == JobFailed {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	e.t.Fatalf("[%s] job %s did not finish", e.id, id)
	return JobStatus{}
}

// streamResults consumes the whole JSONL results stream for a job.
func (e *testEnv) streamResults(id string) []resultLine {
	e.t.Helper()
	resp, err := http.Get(e.base + "/v1/jobs/" + id + "/results")
	if err != nil {
		e.t.Fatalf("[%s] GET results: %v", e.id, err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		e.t.Fatalf("[%s] results content-type = %q", e.id, ct)
	}
	var lines []resultLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var l resultLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			e.t.Fatalf("[%s] bad results line %q: %v", e.id, sc.Text(), err)
		}
		lines = append(lines, l)
	}
	return lines
}

// ---- integration tests ----

// TestServiceEndToEnd runs a real (tiny) sweep through the full HTTP path
// and proves the acceptance property the cache rests on: a result served by
// the service is byte-identical to a fresh standalone run of the same cell.
func TestServiceEndToEnd(t *testing.T) {
	e := newTestEnv(t)
	spec := smallSpec()
	spec.Designs = []string{"baseline", "NL"}
	spec.Seeds = []int64{1, 2}

	st := e.submit(spec)
	st = e.waitJob(st.ID)
	if st.State != JobDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	if st.Cells != 4 || st.Simulated != 4 || st.Done != 4 {
		t.Fatalf("job tallies = %+v, want 4 cells all simulated", st)
	}
	if len(st.Digests) != 4 {
		t.Fatalf("terminal status carries %d digests, want 4", len(st.Digests))
	}

	// The streamed results must cover every cell with result bodies whose
	// digests match the status map.
	lines := e.streamResults(st.ID)
	if len(lines) != 4 {
		t.Fatalf("results stream has %d lines, want 4", len(lines))
	}
	for _, l := range lines {
		if l.Result == nil {
			t.Fatalf("streamed line %s has no result body", l.Key)
		}
		if got := ResultDigest(l.Result); got != st.Digests[l.Digest] {
			t.Fatalf("streamed result digest %s != status digest %s for %s",
				got, st.Digests[l.Digest], l.Key)
		}
	}

	// Bit-exactness proof: re-run one cell fresh, outside the service, and
	// compare content digests.
	cell := spec.normalized().cells()[0]
	fresh, err := sim.RunChecked(context.Background(), cell.RunConfig())
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	want := ResultDigest(runner.NewResultJSON(fresh))
	if got := st.Digests[cell.Digest()]; got != want {
		t.Fatalf("service result digest %s != fresh run digest %s", got, want)
	}

	// The service stays healthy and the debug mux is mounted.
	var health struct {
		Status string `json:"status"`
		Stats
	}
	if code := e.getJSON("/v1/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if health.Status != "ok" || health.Simulated != 4 {
		t.Fatalf("healthz = %+v, want ok with 4 simulated", health)
	}
	if code := e.getJSON("/debug/sweep", nil); code != http.StatusOK {
		t.Fatalf("debug mux not mounted: /debug/sweep = %d", code)
	}
}

// TestDuplicateSubmissionFullyCached submits the same spec twice and proves
// the second job is served entirely from the dedup cache: zero new
// simulation work, identical result digests.
func TestDuplicateSubmissionFullyCached(t *testing.T) {
	e := newTestEnv(t)
	spec := smallSpec()
	spec.Seeds = []int64{1, 2}

	first := e.waitJob(e.submit(spec).ID)
	if first.State != JobDone || first.Simulated != 2 {
		t.Fatalf("first job = %+v, want done with 2 simulated", first)
	}
	simulatedBefore := e.srv.Stats().Simulated

	second := e.waitJob(e.submit(spec).ID)
	if second.State != JobDone {
		t.Fatalf("second job state = %s", second.State)
	}
	if second.Cached != 2 || second.Simulated != 0 {
		t.Fatalf("second job = %d cached %d simulated, want all 2 cached", second.Cached, second.Simulated)
	}
	if got := e.srv.Stats().Simulated; got != simulatedBefore {
		t.Fatalf("duplicate submission simulated %d new cells, want 0", got-simulatedBefore)
	}
	for digest, rd := range first.Digests {
		if second.Digests[digest] != rd {
			t.Fatalf("cached result digest differs for %s: %s vs %s", digest, second.Digests[digest], rd)
		}
	}

	// Both jobs' result streams serve the same bodies.
	f, s := e.streamResults(first.ID), e.streamResults(second.ID)
	if len(f) != 2 || len(s) != 2 {
		t.Fatalf("stream lengths %d/%d, want 2/2", len(f), len(s))
	}
	for i := range s {
		if s[i].Status != OutcomeCached || s[i].Result == nil {
			t.Fatalf("second stream line %d = %+v, want cached with body", i, s[i])
		}
	}
}

// TestMalformedSubmissionsRejected walks the 400 surface: syntax errors,
// unknown fields, unknown presets, out-of-range geometry, and over-expansion
// must all be rejected without accepting a job.
func TestMalformedSubmissionsRejected(t *testing.T) {
	e := newTestEnv(t, func(c *Config) {
		c.RunCell = fakeRunCell
		c.MaxCellsPerJob = 4
	})
	cases := []struct {
		name, body string
	}{
		{"syntax", `{"workloads": [`},
		{"unknown field", `{"workloads":["Web-Frontend"],"designs":["baseline"],"bogus":1}`},
		{"wrong type", `{"workloads":"Web-Frontend","designs":["baseline"]}`},
		{"empty", `{}`},
		{"unknown workload", `{"workloads":["Web-Backend"],"designs":["baseline"]}`},
		{"unknown design", `{"workloads":["Web-Frontend"],"designs":["warp-drive"]}`},
		{"bad mode", `{"workloads":["Web-Frontend"],"designs":["baseline"],"mode":"thumb"}`},
		{"cores out of range", `{"workloads":["Web-Frontend"],"designs":["baseline"],"cores":99}`},
		{"window too long", `{"workloads":["Web-Frontend"],"designs":["baseline"],"measure_cycles":99000000}`},
		{"duplicate seeds", `{"workloads":["Web-Frontend"],"designs":["baseline"],"seeds":[7,7]}`},
		{"over cell limit", `{"workloads":["Web-Frontend"],"designs":["baseline"],"seeds":[1,2,3,4,5]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := e.postJSON(tc.body)
			defer resp.Body.Close()
			var msg map[string]string
			json.NewDecoder(resp.Body).Decode(&msg)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d (%s), want 400", resp.StatusCode, msg["error"])
			}
			if msg["error"] == "" {
				t.Fatal("400 without an error body")
			}
		})
	}
	if jobs := e.srv.Jobs(); len(jobs) != 0 {
		t.Fatalf("malformed submissions created %d jobs", len(jobs))
	}
}

// TestBackpressure fills the bounded queue and asserts overload is answered
// with 429 + Retry-After and a rolled-back acceptance — then proves the
// rejected client can get in once the backlog clears.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	e := newTestEnv(t, func(c *Config) {
		c.Workers = 1
		c.QueueCap = 1
		c.RunCell = func(ctx context.Context, cell runner.Cell, cfg sim.RunConfig) (sim.Result, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return sim.Result{}, ctx.Err()
			}
			return fakeRunCell(ctx, cell, cfg)
		}
	})
	running := e.submit(smallSpec()) // worker picks this up and blocks
	waitFor(t, "worker to start the job", func() bool { return e.srv.Stats().Running == 1 })
	queued := e.submit(smallSpec()) // fills the single queue slot

	resp := e.postJSON(`{"workloads":["Web-Frontend"],"designs":["baseline"]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	// The rejected job's acceptance was rolled back: only two job dirs exist.
	if jobs := e.srv.Jobs(); len(jobs) != 2 {
		t.Fatalf("rejected submission left %d jobs, want 2", len(jobs))
	}

	close(release)
	for _, id := range []string{running.ID, queued.ID} {
		if st := e.waitJob(id); st.State != JobDone {
			t.Fatalf("job %s = %s after release", id, st.State)
		}
	}
	// Backlog cleared: the retry now succeeds.
	if st := e.waitJob(e.submit(smallSpec()).ID); st.State != JobDone {
		t.Fatalf("post-backlog submit = %s, want done", st.State)
	}
}

// TestGracefulDrainLosesNoAcceptedJob drains a loaded server mid-job and
// proves the acceptance guarantee: Drain returns cleanly, and a new process
// over the same data dir completes every accepted job.
func TestGracefulDrainLosesNoAcceptedJob(t *testing.T) {
	e := newTestEnv(t, func(c *Config) {
		c.Workers = 1
		c.RunCell = func(ctx context.Context, cell runner.Cell, cfg sim.RunConfig) (sim.Result, error) {
			<-ctx.Done() // hold the cell until drain cancels it
			return sim.Result{}, ctx.Err()
		}
	})
	inFlight := e.submit(smallSpec())
	spec2 := smallSpec()
	spec2.Seeds = []int64{2}
	queued := e.submit(spec2)
	waitFor(t, "worker to start a job", func() bool { return e.srv.Stats().Running == 1 })

	e.drain() // must return nil within its budget (checked inside)

	if _, err := e.srv.Submit(smallSpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after drain = %v, want ErrDraining", err)
	}

	// Next process over the same data dir: both jobs recover with their
	// original IDs and complete.
	e2 := newTestEnv(t, func(c *Config) {
		c.DataDir = e.dataDir
		c.RunCell = fakeRunCell
	})
	for _, id := range []string{inFlight.ID, queued.ID} {
		st := e2.waitJob(id)
		if st.State != JobDone || st.Done != st.Cells {
			t.Fatalf("recovered job %s = %s (%d/%d cells), want done", id, st.State, st.Done, st.Cells)
		}
	}
	if got := len(e2.srv.Jobs()); got != 2 {
		t.Fatalf("recovered %d jobs, want 2", got)
	}
}

// TestJobPriorityOrder proves higher-priority submissions overtake earlier
// ones end to end (not just in the queue unit).
func TestJobPriorityOrder(t *testing.T) {
	release := make(chan struct{})
	var order []string
	done := make(chan string, 8)
	e := newTestEnv(t, func(c *Config) {
		c.Workers = 1
		c.RunCell = func(ctx context.Context, cell runner.Cell, cfg sim.RunConfig) (sim.Result, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return sim.Result{}, ctx.Err()
			}
			done <- cell.ID
			return fakeRunCell(ctx, cell, cfg)
		}
	})
	blocker := e.submit(smallSpec()) // occupies the worker
	waitFor(t, "worker to block", func() bool { return e.srv.Stats().Running == 1 })

	low := smallSpec()
	low.Seeds = []int64{10}
	lowSt := e.submit(low)
	high := smallSpec()
	high.Seeds = []int64{20}
	high.Priority = 5
	highSt := e.submit(high)

	close(release)
	for i := 0; i < 3; i++ {
		select {
		case id := <-done:
			order = append(order, id)
		case <-time.After(30 * time.Second):
			t.Fatal("jobs did not finish")
		}
	}
	e.waitJob(blocker.ID)
	e.waitJob(lowSt.ID)
	e.waitJob(highSt.ID)
	if !strings.Contains(order[1], "seed=20") || !strings.Contains(order[2], "seed=10") {
		t.Fatalf("execution order %v, want the priority-5 job before the priority-0 one", order)
	}
}

// waitFor polls a condition with a bounded budget.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
