package service

import (
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dnc/internal/resultstore"
)

// queryResponse mirrors handleQuery's body.
type queryResponse struct {
	Metric string              `json:"metric"`
	Groups []resultstore.Group `json:"groups"`
}

// TestStoreQueryAndRecovery proves the column store sidecar end to end:
// admitted cells become queryable aggregates; the aggregates match values
// derived independently from the executor's arithmetic; and a store file
// truncated mid-block and fouled with trailing garbage is repaired on
// restart (torn tail cut at the last valid checksum, missing cells
// backfilled from the cache) with byte-identical query answers.
func TestStoreQueryAndRecovery(t *testing.T) {
	e := newTestEnv(t, func(c *Config) {
		c.RunCell = fakeRunCell
		c.Workers = 1
		c.CellJobs = 1 // deterministic append order → bit-stable float sums
	})
	spec := smallSpec()
	spec.Workloads = []string{"Web-Frontend", "Web-Search"}
	spec.Designs = []string{"baseline", "NL"}
	spec.Seeds = []int64{1, 2, 3}

	st := e.waitJob(e.submit(spec).ID)
	if st.State != JobDone || st.Simulated != 12 {
		t.Fatalf("job = %s with %d simulated, want done with 12", st.State, st.Simulated)
	}

	// fakeRunCell sets Cycles=MeasureCycles and Retired=seed*1000, so the
	// expected group means are computable exactly — same float ops, same
	// order as Scan (file order is seed order under one sequential worker).
	wantMean := func(seeds ...int64) float64 {
		var sum float64
		for _, s := range seeds {
			sum += float64(uint64(s)*1000) / float64(spec.MeasureCycles)
		}
		return sum / float64(len(seeds))
	}
	checkQuery := func(label string) {
		t.Helper()
		var qr queryResponse
		if code := e.getJSON("/v1/query?metric=ipc", &qr); code != http.StatusOK {
			t.Fatalf("[%s] GET /v1/query = %d", label, code)
		}
		if qr.Metric != "ipc" || len(qr.Groups) != 4 {
			t.Fatalf("[%s] query = metric %q with %d groups, want ipc with 4", label, qr.Metric, len(qr.Groups))
		}
		for _, g := range qr.Groups {
			if g.N != 3 {
				t.Fatalf("[%s] group %s/%s has N=%d, want 3", label, g.Workload, g.Design, g.N)
			}
			if want := wantMean(1, 2, 3); g.Mean != want {
				t.Fatalf("[%s] group %s/%s mean = %v, want exactly %v", label, g.Workload, g.Design, g.Mean, want)
			}
		}
		// Filters push down: one workload, one seed.
		var filtered queryResponse
		if code := e.getJSON("/v1/query?metric=ipc&workload=Web-Search&seed=2", &filtered); code != http.StatusOK {
			t.Fatalf("[%s] filtered query failed", label)
		}
		if len(filtered.Groups) != 2 {
			t.Fatalf("[%s] filtered query has %d groups, want 2", label, len(filtered.Groups))
		}
		for _, g := range filtered.Groups {
			if g.Workload != "Web-Search" || g.N != 1 || g.Mean != wantMean(2) {
				t.Fatalf("[%s] filtered group = %+v", label, g)
			}
		}
	}
	checkQuery("live")

	var before queryResponse
	e.getJSON("/v1/query?metric=ipc", &before)

	stats := e.srv.Stats()
	if stats.StoreCells != 12 || stats.StoreBytes <= 0 {
		t.Fatalf("stats = %d cells %d bytes, want 12 cells and a non-empty file", stats.StoreCells, stats.StoreBytes)
	}

	// Bad queries are the client's fault, not a 500.
	if code := e.getJSON("/v1/query?seed=banana", nil); code != http.StatusBadRequest {
		t.Fatalf("bad seed filter = %d, want 400", code)
	}
	if code := e.getJSON("/v1/query?metric=no.such.counter", nil); code != http.StatusBadRequest {
		t.Fatalf("unknown metric = %d, want 400", code)
	}

	// Crash damage: drain, truncate the store mid-file (torn block), then
	// append garbage (a corrupt tail after valid bytes).
	e.drain()
	storePath := filepath.Join(e.dataDir, storeFile)
	fi, err := os.Stat(storePath)
	if err != nil {
		t.Fatalf("store file missing after drain: %v", err)
	}
	if err := os.Truncate(storePath, fi.Size()/2); err != nil {
		t.Fatalf("truncating store: %v", err)
	}
	f, err := os.OpenFile(storePath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("\xde\xad\xbe\xef this is not a block"))
	f.Close()

	// Restart over the same data dir: openStore truncates the torn tail and
	// backfills every missing cell from the cache.
	e2 := newTestEnv(t, func(c *Config) {
		c.DataDir = e.dataDir
		c.RunCell = fakeRunCell
		c.Workers = 1
		c.CellJobs = 1
	})
	e = e2
	checkQuery("recovered")
	var after queryResponse
	e.getJSON("/v1/query?metric=ipc", &after)
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("recovered query answers differ:\nbefore %+v\nafter  %+v", before, after)
	}
	if got := e.srv.Stats().StoreCells; got != 12 {
		t.Fatalf("recovered store holds %d cells, want 12", got)
	}

	// The repaired file passes a full integrity sweep.
	e.drain()
	data, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resultstore.Verify(data); err != nil {
		t.Fatalf("recovered store fails verification: %v", err)
	}

	// Wholesale loss: delete the store outright; the next boot rebuilds it
	// from the cache alone.
	if err := os.Remove(storePath); err != nil {
		t.Fatal(err)
	}
	e3 := newTestEnv(t, func(c *Config) {
		c.DataDir = e.dataDir
		c.RunCell = fakeRunCell
		c.Workers = 1
		c.CellJobs = 1
	})
	e = e3
	checkQuery("rebuilt")
	if got := e.srv.Stats().StoreCells; got != 12 {
		t.Fatalf("rebuilt store holds %d cells, want 12", got)
	}
}
