package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"dnc/internal/httpx"
	"dnc/internal/resultstore"
	"dnc/internal/service/workerproto"
	"dnc/internal/sim"
	"dnc/internal/sim/runner"
	"dnc/internal/telemetry"
)

// Config tunes the job server. The zero value plus a DataDir is a working
// production configuration.
type Config struct {
	// DataDir roots all persistent state: jobs/, cache.jsonl,
	// deadletters.jsonl. Required.
	DataDir string
	// Workers is the number of jobs executed concurrently (default 2).
	Workers int
	// CellJobs bounds concurrently simulating cells within one job
	// (default GOMAXPROCS).
	CellJobs int
	// QueueCap bounds queued (accepted, unstarted) jobs; a full queue
	// answers 429 + Retry-After (default 64).
	QueueCap int
	// Retries, Backoff, BackoffMax, CellTimeout configure the per-cell
	// retry loop (see runner.Options).
	Retries     int
	Backoff     time.Duration
	BackoffMax  time.Duration
	CellTimeout time.Duration
	// JobTimeout bounds one job's whole sweep (0 = none). An expired job
	// is terminal-failed, not retried.
	JobTimeout time.Duration
	// CheckpointEvery is the mid-cell snapshot cadence in simulated cycles
	// (0 = runner.DefaultCheckpointEvery).
	CheckpointEvery uint64
	// MaxCellsPerJob bounds a single spec's expansion (default 4096).
	MaxCellsPerJob int
	// DeadLetterAfter is how many non-transient failures a cell
	// accumulates (across jobs) before its circuit opens and it is served
	// straight from the dead-letter list without running (default 2).
	DeadLetterAfter int
	// CacheMaxBytes bounds the on-disk result cache; once live entries
	// exceed it the oldest are evicted (and the file compacted) so the
	// cache cannot grow without limit (0 = unbounded).
	CacheMaxBytes int64
	// LeaseTTL is the remote worker heartbeat window: a worker silent this
	// long forfeits its leases, which reassign to the queue
	// (default DefaultLeaseTTL).
	LeaseTTL time.Duration
	// LeaseMaxAge is the per-lease progress budget: a cell leased this
	// long without completing is revoked even from a worker that is still
	// heartbeating — the frozen-worker watchdog (default
	// DefaultLeaseMaxAge).
	LeaseMaxAge time.Duration
	// LeaseBatchMax caps cells per worker lease request
	// (default DefaultLeaseBatchMax).
	LeaseBatchMax int
	// Clock, when set, replaces time.Now for the lease table. It exists
	// for the deterministic fault plane (fake-clock chaos tests);
	// production leaves it nil.
	Clock func() time.Time
	// WrapStream, when set, routes every simulated cell through
	// sim.RunInjected with this wrapper. It exists for the chaos suite
	// (fault injection into the committed stream); production leaves it
	// nil. Wrapped runs cannot checkpoint, so crash recovery degrades to
	// journal granularity.
	WrapStream sim.StreamWrapper
	// RunCell, when set, replaces the cell executor outright (test seam;
	// see runner.Options.Run). Takes precedence over WrapStream.
	RunCell func(ctx context.Context, c runner.Cell, cfg sim.RunConfig) (sim.Result, error)
	// Logger receives structured operational logs (accepted jobs, worker
	// registrations, lease reassignments, admission refusals). Nil discards
	// — library embedders and tests stay quiet by default; dncserved passes
	// a real handler.
	Logger *slog.Logger
	// DisableTelemetry turns off the metrics registry and the lifecycle
	// recorder (no /metrics, no /v1/jobs/{id}/trace). It exists for the
	// overhead benchmark, which gates the telemetry-enabled service path
	// against this baseline.
	DisableTelemetry bool
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.CellJobs == 0 {
		c.CellJobs = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.MaxCellsPerJob == 0 {
		c.MaxCellsPerJob = 4096
	}
	if c.DeadLetterAfter == 0 {
		c.DeadLetterAfter = 2
	}
	return c
}

// DeadLetter records a cell whose failures are non-transient and repeated:
// the service stops burning cycles on it and surfaces it in the API
// instead. Deterministic simulations make this safe — a panic reproduces
// identically on every attempt, so retrying a poisoned cell forever would
// only stall the queue.
type DeadLetter struct {
	Digest   string `json:"digest"`
	Key      string `json:"key"`
	Error    string `json:"error"`
	Failures int    `json:"failures"`
}

// Stats is a point-in-time operational snapshot, also served by /v1/healthz.
// The embedded dispatchStats is the worker-plane accounting (registered /
// live / expired workers, lease depth, reassignment and admission counters)
// so load balancers and operators can see degraded mode — zero live remote
// workers — at a glance.
type Stats struct {
	Draining     bool   `json:"draining"`
	Jobs         int    `json:"jobs"`
	Queued       int    `json:"queued"`
	Running      int    `json:"running"`
	Simulated    uint64 `json:"simulated"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheEntries int    `json:"cache_entries"`
	// CacheBytes is the live (post-eviction) cache payload size;
	// CacheEvictions counts entries evicted under Config.CacheMaxBytes.
	CacheBytes     int64  `json:"cache_bytes"`
	CacheEvictions uint64 `json:"cache_evictions"`
	// StoreCells/StoreBytes describe the columnar result store (the
	// cache's queryable sidecar serving /v1/query; see store.go).
	StoreCells  int   `json:"store_cells"`
	StoreBytes  int64 `json:"store_bytes"`
	DeadLetters int   `json:"dead_letters"`
	dispatchStats
	// Degraded is true when zero live remote workers are registered and
	// cells execute on the in-process pool.
	Degraded bool `json:"degraded"`
}

// Server is the sweep-as-a-service daemon: HTTP API in front, bounded
// priority queue in the middle, runner.Sweep workers behind, all state
// funneled through the persistent result cache.
type Server struct {
	cfg      Config
	cache    *resultCache
	queue    *jobQueue
	dispatch *dispatcher
	progress *runner.Progress
	log      *slog.Logger
	tel      *serverTelemetry    // nil when telemetry is disabled
	rec      *telemetry.Recorder // nil when telemetry is disabled

	ctx    context.Context // worker lifetime; cancelled by Drain
	cancel context.CancelFunc
	wg     sync.WaitGroup

	ln      net.Listener
	httpSrv *http.Server

	// storeMu guards the columnar result store (the cache's queryable
	// sidecar; see store.go). Separate from mu: store appends fsync.
	storeMu   sync.Mutex
	store     *resultstore.Writer
	storePath string

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	seq      int
	running  int
	draining bool
	dead     map[string]*DeadLetter
	deadF    *os.File
}

// New builds a server over DataDir, recovering persisted state: the result
// cache, the dead-letter list, and every accepted-but-unfinished job
// (re-queued in original submission order, ahead of nothing — priorities
// still apply).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, errors.New("service: Config.DataDir is required")
	}
	jobsDir := filepath.Join(cfg.DataDir, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		return nil, fmt.Errorf("service: creating data dir: %w", err)
	}
	cache, err := openResultCache(filepath.Join(cfg.DataDir, "cache.jsonl"), cfg.CacheMaxBytes)
	if err != nil {
		return nil, err
	}

	s := &Server{
		cfg:      cfg,
		cache:    cache,
		queue:    newJobQueue(cfg.QueueCap),
		dispatch: newDispatcher(cfg.Clock, cfg.LeaseTTL, cfg.LeaseMaxAge, cfg.LeaseBatchMax),
		progress: runner.NewProgress(),
		jobs:     make(map[string]*job),
		dead:     make(map[string]*DeadLetter),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())

	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if !cfg.DisableTelemetry {
		// The recorder shares the dispatcher's clock seam so fake-clock chaos
		// tests see deterministic timelines; all lifecycle timestamps are this
		// one clock's (worker clocks never enter the conservation math).
		s.rec = telemetry.NewRecorder(cfg.Clock)
		s.tel = newServerTelemetry(s)
		s.rec.OnCellDone(s.tel.observeCell)
		s.progress.SetObserver(s.tel.observeRun)
	}
	s.dispatch.rec = s.rec
	s.dispatch.log = s.log

	if err := s.loadDeadLetters(filepath.Join(cfg.DataDir, "deadletters.jsonl")); err != nil {
		cache.close()
		return nil, err
	}
	if err := s.openStore(); err != nil {
		cache.close()
		return nil, fmt.Errorf("service: opening column store: %w", err)
	}

	terminal, pending, maxSeq, err := loadJobs(jobsDir)
	if err != nil {
		s.closeStore()
		cache.close()
		return nil, fmt.Errorf("service: recovering jobs: %w", err)
	}
	s.seq = maxSeq
	for _, j := range append(terminal, pending...) {
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}
	for _, j := range pending {
		if err := s.queue.push(j); err != nil {
			// More recovered jobs than queue capacity: keep them visible
			// as queued; they re-queue on the next restart. (Capacity
			// should exceed any realistic crash backlog.)
			break
		}
	}
	return s, nil
}

// Start binds addr and serves the API; workers start pulling jobs. It
// returns once listening (serving continues in the background).
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("service: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.httpSrv = httpx.NewServer(s.handler())
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.workerLoop()
		}()
	}
	// Lease-expiry sweep: the real clock only decides how often we look;
	// what has expired is judged by the injectable dispatcher clock, so
	// fake-clock chaos tests stay deterministic.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(leaseExpirySweep)
		defer t.Stop()
		for {
			select {
			case <-s.ctx.Done():
				return
			case <-t.C:
				s.dispatch.expire()
			}
		}
	}()
	go s.httpSrv.Serve(ln)
	return nil
}

// Addr is the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Submit validates and admits a sweep, durably recording acceptance before
// acknowledging it. Returns ErrDraining during shutdown and ErrQueueFull
// under backpressure; any other error is a validation failure.
func (s *Server) Submit(spec Spec) (JobStatus, error) {
	norm := spec.normalized()
	if err := norm.validate(s.cfg.MaxCellsPerJob); err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return JobStatus{}, ErrDraining
	}
	s.seq++
	seq := s.seq
	s.mu.Unlock()

	j := &job{
		id:    jobID(seq, norm),
		seq:   seq,
		spec:  norm,
		cells: norm.cells(),
		state: JobQueued,
	}
	j.dir = filepath.Join(s.cfg.DataDir, "jobs", j.id)
	// Persist acceptance first: a crash after this point recovers the job;
	// a queue rejection rolls it back before the client ever saw the ID.
	if err := j.persistSpec(); err != nil {
		return JobStatus{}, fmt.Errorf("service: persisting job: %w", err)
	}
	if err := s.queue.push(j); err != nil {
		j.dropAcceptance()
		return JobStatus{}, err
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	traceID := s.rec.JobSubmitted(j.id, len(j.cells))
	if s.tel != nil {
		s.tel.jobsSubmitted.Inc()
	}
	s.log.Info("job accepted", "job", j.id, "trace", traceID, "cells", len(j.cells), "priority", norm.Priority)
	return j.status(), nil
}

// Job returns the status of one job.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// Jobs lists every known job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if st, ok := s.Job(id); ok {
			out = append(out, st)
		}
	}
	return out
}

// Stats snapshots the operational counters.
func (s *Server) Stats() Stats {
	cs := s.cache.stats()
	ds := s.dispatch.stats()
	storeCells, storeBytes := s.storeStats()
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		StoreCells:     storeCells,
		StoreBytes:     storeBytes,
		Draining:       s.draining,
		Jobs:           len(s.jobs),
		Queued:         s.queue.len(),
		Running:        s.running,
		Simulated:      uint64(s.progress.Snapshot().OK),
		CacheHits:      cs.hits,
		CacheEntries:   cs.entries,
		CacheBytes:     cs.liveBytes,
		CacheEvictions: cs.evictions,
		DeadLetters:    len(s.dead),
		dispatchStats:  ds,
		Degraded:       ds.WorkersLive == 0,
	}
}

// DeadLetters lists the poisoned cells, sorted by key.
func (s *Server) DeadLetters() []DeadLetter {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DeadLetter, 0, len(s.dead))
	for _, d := range s.dead {
		out = append(out, *d)
	}
	sortDeadLetters(out)
	return out
}

// Drain gracefully shuts the service down: stop accepting submissions,
// close the queue, cancel in-flight sweeps (their completed cells are
// already journaled and cached, their running cells hold mid-run
// checkpoints), flush and close persistent state, and stop the HTTP server
// — all bounded by ctx. Accepted jobs are never lost: unfinished ones
// restart from their durable acceptance record on the next process.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	s.queue.close()
	s.cancel()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var errs []error
	select {
	case <-done:
	case <-ctx.Done():
		errs = append(errs, fmt.Errorf("service: drain: workers still busy: %w", ctx.Err()))
	}
	if s.httpSrv != nil {
		if err := httpx.Shutdown(ctx, s.httpSrv); err != nil {
			errs = append(errs, fmt.Errorf("service: drain: http: %w", err))
		}
	}
	if err := s.cache.close(); err != nil {
		errs = append(errs, err)
	}
	if err := s.closeStore(); err != nil {
		errs = append(errs, fmt.Errorf("service: closing column store: %w", err))
	}
	s.mu.Lock()
	if s.deadF != nil {
		if err := s.deadF.Close(); err != nil {
			errs = append(errs, fmt.Errorf("service: closing dead-letter file: %w", err))
		}
		s.deadF = nil
	}
	s.mu.Unlock()
	return errors.Join(errs...)
}

// workerLoop pulls jobs until the queue closes.
func (s *Server) workerLoop() {
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.mu.Lock()
		s.running++
		s.mu.Unlock()
		s.runJob(j)
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}
}

// runJob executes one job: partition cells into cached / dead / to-run,
// sweep the remainder through the runner (journal + checkpoints in the
// job's directory), fold fresh results into the cache, dead-letter
// poisoned cells, and persist the terminal record. A drain mid-job leaves
// the job queued-on-disk for the next process.
func (s *Server) runJob(j *job) {
	j.setState(JobRunning, "")
	j.resetOutcomes()
	s.rec.JobStarted(j.id)
	s.log.Info("job started", "job", j.id, "trace", telemetry.TraceID(j.id), "cells", len(j.cells))

	byID := make(map[string]cellSpec, len(j.cells))
	var toRun []runner.Cell
	for _, c := range j.cells {
		digest := c.Digest()
		if dl := s.deadFor(digest); dl != nil {
			j.addOutcome(Outcome{
				Key: c.Key(), Digest: digest, Status: OutcomeDead,
				Error: fmt.Sprintf("dead-lettered after %d failures: %s", dl.Failures, dl.Error),
			})
			s.rec.CellDead(j.id, digest, c.Key())
			if s.tel != nil {
				s.tel.cellsDead.Inc()
			}
			continue
		}
		if e, ok := s.cache.lookup(digest); ok {
			j.addOutcome(Outcome{
				Key: c.Key(), Digest: digest, Status: OutcomeCached,
				ResultDigest: e.ResultDigest,
			})
			s.rec.CellCached(j.id, digest, c.Key())
			if s.tel != nil {
				s.tel.cellsDeduped.Inc()
			}
			continue
		}
		cell := runner.Cell{ID: c.Key(), Config: c.RunConfig()}
		byID[cell.ID] = c
		toRun = append(toRun, cell)
		s.rec.CellEnqueued(j.id, digest, c.Key())
	}

	jobCtx := s.ctx
	var cancel context.CancelFunc
	if s.cfg.JobTimeout > 0 {
		jobCtx, cancel = context.WithTimeout(jobCtx, s.cfg.JobTimeout)
		defer cancel()
	}

	_, err := runner.Sweep(jobCtx, toRun, runner.Options{
		Jobs:            s.cfg.CellJobs,
		Timeout:         s.cfg.CellTimeout,
		Retries:         s.cfg.Retries,
		Backoff:         s.cfg.Backoff,
		BackoffMax:      s.cfg.BackoffMax,
		JournalPath:     filepath.Join(j.dir, "journal.jsonl"),
		CheckpointDir:   filepath.Join(j.dir, "ckpt"),
		CheckpointEvery: s.cfg.CheckpointEvery,
		Progress:        s.progress,
		Run:             s.cellExecutor(j.id, byID),
		OnResult: func(cr runner.CellResult) {
			cell, ok := byID[cr.ID]
			if !ok {
				return
			}
			switch cr.Status {
			case runner.StatusOK, runner.StatusResumed:
				e := s.cache.insert(cell, runner.NewResultJSON(cr.Result))
				s.appendStore(cell, e.Result)
				status := OutcomeSimulated
				if cr.Status == runner.StatusResumed {
					status = OutcomeResumed
				}
				j.addOutcome(Outcome{
					Key: cr.ID, Digest: cell.Digest(), Status: status,
					ResultDigest: e.ResultDigest, Attempts: cr.Attempts,
				})
				if s.tel != nil {
					s.tel.cellsAdmitted.Inc()
				}
				s.rec.CellDone(j.id, cell.Digest(), "admitted")
			default:
				if cr.Err != nil && (errors.Is(cr.Err, context.Canceled) || s.ctx.Err() != nil) {
					// Drain, not cell fault: the job re-queues; no outcome,
					// no dead letter — and no CellDone, the cell runs again.
					return
				}
				o := Outcome{
					Key: cr.ID, Digest: cell.Digest(), Status: OutcomeFailed,
					Attempts: cr.Attempts,
				}
				if cr.Err != nil {
					o.Error = cr.Err.Error()
					if !isTransient(cr.Err) {
						s.recordFailure(cell, cr.Err)
					}
				}
				j.addOutcome(o)
				if s.tel != nil {
					s.tel.cellsFailed.Inc()
				}
				s.rec.CellDone(j.id, cell.Digest(), "failed")
				s.log.Warn("cell failed", "job", j.id, "span", telemetry.SpanID(cell.Digest()),
					"key", cr.ID, "attempts", cr.Attempts, "err", o.Error)
			}
		},
	})

	if s.ctx.Err() != nil {
		// Drained mid-job: completed cells are cached, in-flight ones hold
		// checkpoints; the durable acceptance record re-queues the job. Not
		// terminal, so the job timeline stays open for the next process.
		j.setState(JobQueued, "")
		return
	}
	if err != nil {
		// Infrastructure failure (bad journal, job timeout): terminal.
		j.setState(JobFailed, err.Error())
		s.log.Error("job failed", "job", j.id, "err", err.Error())
	} else {
		j.setState(JobDone, "")
		s.log.Info("job done", "job", j.id)
	}
	if perr := j.persistDone(); perr != nil {
		j.setState(JobFailed, fmt.Sprintf("persisting completion: %v", perr))
	}
	s.rec.JobDone(j.id)
	if s.tel != nil {
		s.tel.jobsCompleted.Inc()
	}
}

// localExecutor picks the in-process run function: the RunCell test seam,
// the chaos stream wrapper via sim.RunInjected, or the runner's default
// behavior (sim.RunChecked / sim.RunTraceChecked).
func (s *Server) localExecutor() func(context.Context, runner.Cell, sim.RunConfig) (sim.Result, error) {
	if s.cfg.RunCell != nil {
		return s.cfg.RunCell
	}
	if s.cfg.WrapStream != nil {
		wrap := s.cfg.WrapStream
		return func(ctx context.Context, c runner.Cell, cfg sim.RunConfig) (sim.Result, error) {
			// Injected runs cannot checkpoint or resume.
			cfg.CheckpointPath, cfg.CheckpointEvery, cfg.ResumeFrom = "", 0, ""
			return sim.RunInjected(ctx, cfg, wrap)
		}
	}
	return func(ctx context.Context, c runner.Cell, cfg sim.RunConfig) (sim.Result, error) {
		if c.TracePath != "" {
			return sim.RunTraceChecked(ctx, c.Config, c.TracePath)
		}
		return sim.RunChecked(ctx, cfg)
	}
}

// cellExecutor is the per-attempt executor runJob hands to runner.Sweep.
// Each attempt decides where the cell runs: with live remote workers
// registered it is enqueued on the lease plane and the attempt blocks until
// a verified upload (or remote failure) resolves it; with zero workers —
// degraded mode — it runs on the in-process pool exactly as before the
// worker plane existed. If the last worker dies while the cell waits, the
// dispatcher releases it with errNoWorkers and the attempt falls back to
// local execution instead of stalling; the runner's per-attempt timeout and
// retry machinery apply identically to both paths.
func (s *Server) cellExecutor(jobID string, byID map[string]cellSpec) func(context.Context, runner.Cell, sim.RunConfig) (sim.Result, error) {
	local := s.localExecutor()
	traceID := ""
	if s.rec != nil {
		traceID = telemetry.TraceID(jobID)
	}
	// runLocal wraps an in-process attempt in its lifecycle span: the
	// execution end doubles as the "upload" boundary (the result arrives the
	// moment the run returns), keeping local and remote phase structure
	// identical.
	runLocal := func(ctx context.Context, digest string, c runner.Cell, cfg sim.RunConfig) (sim.Result, error) {
		s.rec.ExecStart(digest, "")
		r, err := local(ctx, c, cfg)
		if err != nil {
			s.rec.ExecEnd(digest, "", "failed")
			return r, err
		}
		s.rec.Upload(digest)
		s.rec.ExecEnd(digest, "", "admitted")
		return r, nil
	}
	return func(ctx context.Context, c runner.Cell, cfg sim.RunConfig) (sim.Result, error) {
		spec, ok := byID[c.ID]
		if !ok {
			return local(ctx, c, cfg)
		}
		digest := spec.Digest()
		if !s.dispatch.active() {
			return runLocal(ctx, digest, c, cfg)
		}
		ch, cancel := s.dispatch.enqueue(spec, traceID)
		defer cancel()
		select {
		case out := <-ch:
			if errors.Is(out.err, errNoWorkers) {
				return runLocal(ctx, digest, c, cfg)
			}
			return out.r, out.err
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		}
	}
}

// completeCell is the admission path for worker uploads (and reported
// remote failures). Verification before anything touches the cache:
//
//  1. the uploaded spec's content address must equal the URL digest — a
//     torn or corrupted body can never be admitted under a wrong address;
//  2. a successful result's identity fields must match the spec;
//  3. a digest already cached must carry a bit-identical result — equal
//     digests are acknowledged idempotently (at-least-once execution:
//     expired leases finishing late), unequal ones are a determinism
//     violation and are refused;
//  4. a fresh result is admitted only for a cell the lease plane knows
//     (outstanding), keeping the cache closed to arbitrary stuffing.
func (s *Server) completeCell(digest string, req workerproto.CompleteRequest) (workerproto.CompleteResponse, int, error) {
	if req.Spec.Digest() != digest {
		s.dispatch.countRejected()
		s.log.Warn("upload rejected", "digest", digest, "worker", req.WorkerID, "reason", "spec digest mismatch")
		return workerproto.CompleteResponse{}, http.StatusBadRequest,
			fmt.Errorf("service: upload spec digest %s does not match cell %s", req.Spec.Digest(), digest)
	}
	if req.Result == nil {
		if req.Error == "" {
			s.dispatch.countRejected()
			s.log.Warn("upload rejected", "digest", digest, "worker", req.WorkerID, "reason", "neither result nor error")
			return workerproto.CompleteResponse{}, http.StatusBadRequest,
				errors.New("service: upload carries neither result nor error")
		}
		rerr := fmt.Errorf("service: remote execution: %s", req.Error)
		if req.Transient {
			// Map the worker's transient classification onto the sentinel the
			// runner's retry classifier understands.
			rerr = fmt.Errorf("service: remote execution: %s: %w", req.Error, context.DeadlineExceeded)
		}
		if !s.dispatch.deliver(digest, remoteOutcome{err: rerr}) {
			return workerproto.CompleteResponse{}, http.StatusNotFound,
				fmt.Errorf("service: cell %s is not outstanding", digest)
		}
		s.rec.ExecEnd(digest, req.WorkerID, "failed")
		s.log.Warn("remote cell failed", "span", telemetry.SpanID(digest), "worker", req.WorkerID,
			"transient", req.Transient, "err", req.Error)
		return workerproto.CompleteResponse{Status: workerproto.StatusFailureRecorded}, http.StatusOK, nil
	}
	if req.Result.Workload != req.Spec.Workload || req.Result.Design != req.Spec.Design {
		s.dispatch.countRejected()
		s.log.Warn("upload rejected", "digest", digest, "worker", req.WorkerID, "reason", "result identity mismatch")
		return workerproto.CompleteResponse{}, http.StatusBadRequest,
			fmt.Errorf("service: result identity (%s, %s) does not match spec (%s, %s)",
				req.Result.Workload, req.Result.Design, req.Spec.Workload, req.Spec.Design)
	}
	s.rec.Upload(digest)
	if e, ok := s.cache.get(digest); ok {
		if e.ResultDigest != ResultDigest(req.Result) {
			s.dispatch.countRejected()
			if s.tel != nil {
				s.tel.determinismViolations.Inc()
			}
			s.rec.ExecEnd(digest, req.WorkerID, "rejected")
			s.log.Error("determinism violation", "span", telemetry.SpanID(digest), "worker", req.WorkerID,
				"cached", e.ResultDigest, "uploaded", ResultDigest(req.Result))
			return workerproto.CompleteResponse{}, http.StatusConflict,
				fmt.Errorf("service: upload for %s is not bit-identical to the cached result (determinism violation)", digest)
		}
		s.dispatch.countDuplicate()
		s.rec.Verified(digest)
		s.rec.ExecEnd(digest, req.WorkerID, "duplicate")
		s.dispatch.deliver(digest, remoteOutcome{r: e.Result.Result()})
		return workerproto.CompleteResponse{Status: workerproto.StatusDuplicate}, http.StatusOK, nil
	}
	if !s.dispatch.outstanding(digest) {
		s.dispatch.countRejected()
		s.log.Warn("upload rejected", "digest", digest, "worker", req.WorkerID, "reason", "cell not outstanding")
		return workerproto.CompleteResponse{}, http.StatusNotFound,
			fmt.Errorf("service: cell %s is not outstanding", digest)
	}
	e := s.cache.insert(req.Spec, req.Result)
	if e.ResultDigest != ResultDigest(req.Result) {
		// A racing upload won the first insert with a different result:
		// refuse this one rather than lie about what was admitted.
		s.dispatch.countRejected()
		if s.tel != nil {
			s.tel.determinismViolations.Inc()
		}
		s.rec.ExecEnd(digest, req.WorkerID, "rejected")
		s.log.Error("determinism violation", "span", telemetry.SpanID(digest), "worker", req.WorkerID,
			"cached", e.ResultDigest, "uploaded", ResultDigest(req.Result))
		return workerproto.CompleteResponse{}, http.StatusConflict,
			fmt.Errorf("service: upload for %s lost a race to a non-identical result (determinism violation)", digest)
	}
	s.appendStore(req.Spec, e.Result)
	s.dispatch.countAdmitted()
	s.rec.Verified(digest)
	s.rec.ExecEnd(digest, req.WorkerID, "admitted")
	s.dispatch.deliver(digest, remoteOutcome{r: req.Result.Result()})
	return workerproto.CompleteResponse{Status: workerproto.StatusAdmitted}, http.StatusOK, nil
}

// isTransient mirrors the runner's default classifier: only timeouts are
// worth retrying — and therefore only non-timeouts are poison.
func isTransient(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}

// deadFor returns the dead letter for a cell digest when its circuit is
// open (failure count has reached the threshold).
func (s *Server) deadFor(digest string) *DeadLetter {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.dead[digest]; ok && d.Failures >= s.cfg.DeadLetterAfter {
		return d
	}
	return nil
}

// recordFailure counts a non-transient cell failure and appends it to the
// dead-letter file; once Failures reaches DeadLetterAfter the circuit
// opens and future jobs skip the cell.
func (s *Server) recordFailure(cell cellSpec, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	digest := cell.Digest()
	d, ok := s.dead[digest]
	if !ok {
		d = &DeadLetter{Digest: digest, Key: cell.Key()}
		s.dead[digest] = d
	}
	d.Failures++
	d.Error = err.Error()
	if s.deadF != nil {
		if line, merr := json.Marshal(d); merr == nil {
			s.deadF.Write(append(line, '\n'))
			s.deadF.Sync()
		}
	}
}

// sortDeadLetters orders by key for stable API output.
func sortDeadLetters(ds []DeadLetter) {
	sort.Slice(ds, func(i, j int) bool { return ds[i].Key < ds[j].Key })
}

// loadDeadLetters restores the poison list (latest record per digest wins)
// and opens the file for appending, with the same torn-tail tolerance as
// the journal and cache.
func (s *Server) loadDeadLetters(path string) error {
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var d DeadLetter
			if json.Unmarshal(line, &d) != nil || d.Digest == "" {
				continue
			}
			dc := d
			s.dead[d.Digest] = &dc
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return fmt.Errorf("service: reading dead letters %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("service: opening dead letters %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("service: opening dead letters %s for append: %w", path, err)
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], fi.Size()-1); err == nil && last[0] != '\n' {
			f.Write([]byte("\n"))
		}
	}
	s.deadF = f
	return nil
}
