package service

import (
	"dnc/internal/sim/runner"
	"dnc/internal/telemetry"
)

// serverTelemetry is dncserved's metric surface: the /metrics registry and
// the handles the hot paths increment. Counters the service already
// maintains (cache, lease table, progress) are mirrored with scrape-time
// CounterFuncs — no double bookkeeping on the hot path — while event
// counters with no existing source are real atomics. A nil *serverTelemetry
// (Config.DisableTelemetry) no-ops everywhere: every telemetry type is
// nil-safe, so the enabled/disabled difference is one pointer test.
type serverTelemetry struct {
	reg *telemetry.Registry

	jobsSubmitted *telemetry.Counter
	jobsCompleted *telemetry.Counter

	cellsAdmitted         *telemetry.Counter
	cellsDeduped          *telemetry.Counter
	cellsFailed           *telemetry.Counter
	cellsDead             *telemetry.Counter
	determinismViolations *telemetry.Counter

	queueWait  *telemetry.Histogram
	cellExec   *telemetry.Histogram
	e2e        *telemetry.Histogram
	uploadSize *telemetry.Histogram
}

// newServerTelemetry builds the registry over a live server: scrape-time
// closures read the same sources /v1/healthz serves, so /metrics and
// healthz can never disagree about a mirrored counter (the chaos suite
// asserts this agreement).
func newServerTelemetry(s *Server) *serverTelemetry {
	reg := telemetry.NewRegistry()
	t := &serverTelemetry{reg: reg}

	t.jobsSubmitted = reg.Counter("dnc_jobs_submitted_total",
		"Sweep jobs accepted at POST /v1/jobs.")
	t.jobsCompleted = reg.Counter("dnc_jobs_completed_total",
		"Jobs reaching a terminal state (done or failed).")

	t.cellsAdmitted = reg.Counter("dnc_cells_admitted_total",
		"Cells admitted with a fresh result (simulated locally, resumed, or uploaded by a worker).")
	t.cellsDeduped = reg.Counter("dnc_cells_deduped_total",
		"Cells served from the content-addressed result cache without running.")
	t.cellsFailed = reg.Counter("dnc_cells_failed_total",
		"Cells reaching a terminal failure within a job.")
	t.cellsDead = reg.Counter("dnc_cells_dead_lettered_total",
		"Cells short-circuited by the open dead-letter circuit.")
	t.determinismViolations = reg.Counter("dnc_determinism_violations_total",
		"Uploads refused because a duplicate result was not bit-identical. Any nonzero value is a paging condition.")

	// Mirrored monotone counters: one source of truth, read at scrape time.
	reg.CounterFunc("dnc_cells_simulated_total",
		"Cells simulated to completion by this process (in-process pool).",
		func() uint64 { return uint64(s.progress.Snapshot().OK) })
	reg.CounterFunc("dnc_cells_reassigned_total",
		"Leases revoked and returned to the queue (dead or frozen workers).",
		func() uint64 { return s.dispatch.stats().Reassigned })
	reg.CounterFunc("dnc_cache_hits_total",
		"Result-cache hits (cells served without running).",
		func() uint64 { return s.cache.stats().hits })
	reg.CounterFunc("dnc_cache_evictions_total",
		"Result-cache entries evicted under the size bound.",
		func() uint64 { return s.cache.stats().evictions })
	reg.CounterFunc("dnc_workers_expired_total",
		"Workers reaped for missing their heartbeat window.",
		func() uint64 { return s.dispatch.stats().WorkersExpired })
	reg.CounterFunc("dnc_remote_admitted_total",
		"Fresh results admitted from worker uploads.",
		func() uint64 { return s.dispatch.stats().RemoteAdmitted })
	reg.CounterFunc("dnc_remote_duplicates_total",
		"Bit-identical duplicate uploads acknowledged idempotently.",
		func() uint64 { return s.dispatch.stats().RemoteDuplicates })
	reg.CounterFunc("dnc_remote_rejected_total",
		"Uploads refused by admission verification.",
		func() uint64 { return s.dispatch.stats().RemoteRejected })

	reg.GaugeFunc("dnc_queue_depth",
		"Jobs accepted but not yet started.",
		func() float64 { return float64(s.queue.len()) })
	reg.GaugeFunc("dnc_jobs_running",
		"Jobs currently sweeping.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.running)
		})
	reg.GaugeFunc("dnc_workers_live",
		"Live (heartbeating) remote workers.",
		func() float64 { return float64(s.dispatch.stats().WorkersLive) })
	reg.GaugeFunc("dnc_lease_depth",
		"Cells currently leased to remote workers.",
		func() float64 { return float64(s.dispatch.stats().LeaseDepth) })
	reg.GaugeFunc("dnc_remote_pending",
		"Cells queued for the next worker lease request.",
		func() float64 { return float64(s.dispatch.stats().RemotePending) })
	reg.GaugeFunc("dnc_inflight_cells",
		"Cells executing right now (local pool and remote leases).",
		func() float64 {
			snap := s.progress.Snapshot()
			return float64(len(snap.Running))
		})

	t.queueWait = reg.Histogram("dnc_queue_wait_seconds",
		"Per-cell wait from enqueue to first execution attempt.",
		telemetry.DurationBounds(), telemetry.SecondsScale)
	t.cellExec = reg.Histogram("dnc_cell_execution_seconds",
		"Per-cell wall time in the runner (includes retries and remote round-trips).",
		telemetry.DurationBounds(), telemetry.SecondsScale)
	t.e2e = reg.Histogram("dnc_e2e_latency_seconds",
		"Per-cell end-to-end latency from enqueue to terminal outcome. Phase durations sum exactly to this.",
		telemetry.DurationBounds(), telemetry.SecondsScale)
	t.uploadSize = reg.Histogram("dnc_upload_size_bytes",
		"Worker completion upload body sizes.",
		telemetry.SizeBounds(), 1)

	return t
}

// observeCell is the recorder → histogram bridge: every finalized cell
// feeds its conserved phase durations. Phase offsets are microseconds, the
// histograms' raw unit, so no conversion loses precision.
func (t *serverTelemetry) observeCell(c telemetry.CellSnapshot) {
	if t == nil {
		return
	}
	t.e2e.Observe(uint64(c.E2E()))
	if w := c.Phase("queue-wait"); w > 0 || c.Outcome == "admitted" {
		t.queueWait.Observe(uint64(w))
	}
}

// observeRun is the runner-progress → histogram bridge (installed via
// runner.Progress.SetObserver): per-cell wall time as the runner saw it.
func (t *serverTelemetry) observeRun(cr runner.CellResult) {
	if t == nil {
		return
	}
	t.cellExec.ObserveDuration(cr.Elapsed)
}
