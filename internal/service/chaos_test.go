package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	wl "dnc/internal/cfg"
	"dnc/internal/sim"
	"dnc/internal/sim/runner"
)

// ---- fault injection: the dead-letter circuit ----

// panicStream corrupts a core's committed stream by panicking after n
// steps — the deterministic stand-in for a poisoned cell: every attempt
// fails identically.
type panicStream struct {
	inner wl.Stream
	n     uint64
	count uint64
}

func (p *panicStream) Next(s *wl.Step) {
	p.inner.Next(s)
	if p.count++; p.count == p.n {
		panic(fmt.Sprintf("chaos: injected fault at step %d", p.n))
	}
}

// TestDeadLetterCircuitBreaker injects a deterministic panic into every
// simulated cell (via sim.RunInjected) and proves the circuit: two jobs
// fail the cell, the third is served straight from the dead-letter list
// with zero executor invocations, and the poison survives a restart.
func TestDeadLetterCircuitBreaker(t *testing.T) {
	var injections atomic.Int64
	wrap := func(i int, s wl.Stream) wl.Stream {
		if i != 0 {
			return s
		}
		injections.Add(1)
		return &panicStream{inner: s, n: 25}
	}
	e := newTestEnv(t, func(c *Config) {
		c.Workers = 1
		c.Retries = 0
		c.DeadLetterAfter = 2
		c.WrapStream = wrap
	})
	spec := smallSpec()
	cell := spec.normalized().cells()[0]

	for attempt := 1; attempt <= 2; attempt++ {
		st := e.waitJob(e.submit(spec).ID)
		if st.State != JobDone || st.Failed != 1 {
			t.Fatalf("poisoned job %d = %s with %d failed, want done with the cell failed", attempt, st.State, st.Failed)
		}
	}
	if injections.Load() == 0 {
		t.Fatal("fault injector never ran; the test is not testing anything")
	}
	before := injections.Load()

	// Circuit open: the third job must not touch the simulator.
	st := e.waitJob(e.submit(spec).ID)
	if st.Dead != 1 || st.Failed != 0 {
		t.Fatalf("third job = %+v, want the cell dead-lettered", st)
	}
	if got := injections.Load(); got != before {
		t.Fatalf("dead-lettered cell still ran the executor (%d new injections)", got-before)
	}
	if len(st.DeadCells) != 1 || !strings.Contains(st.DeadCells[0].Error, "dead-lettered") {
		t.Fatalf("dead cell outcome = %+v", st.DeadCells)
	}

	// The poison list is on the API...
	var dls []DeadLetter
	if code := e.getJSON("/v1/deadletters", &dls); code != http.StatusOK {
		t.Fatalf("GET /v1/deadletters = %d", code)
	}
	if len(dls) != 1 || dls[0].Digest != cell.Digest() || dls[0].Failures < 2 {
		t.Fatalf("dead letters = %+v, want the poisoned cell with >=2 failures", dls)
	}
	if !strings.Contains(dls[0].Error, "injected fault") {
		t.Fatalf("dead letter lost the cause: %q", dls[0].Error)
	}

	// ...and survives a restart: a new process over the same data dir skips
	// the cell immediately.
	e.drain()
	e2 := newTestEnv(t, func(c *Config) {
		c.DataDir = e.dataDir
		c.Workers = 1
		c.DeadLetterAfter = 2
		c.WrapStream = wrap
	})
	st = e2.waitJob(e2.submit(spec).ID)
	if st.Dead != 1 {
		t.Fatalf("restarted server forgot the dead letter: %+v", st)
	}
	if got := injections.Load(); got != before {
		t.Fatalf("restarted server re-ran a dead-lettered cell")
	}
}

// ---- process-kill chaos: SIGKILL mid-sweep, restart, bit-identical ----

const (
	chaosChildEnv     = "DNC_SERVICE_CHAOS_CHILD"
	chaosDataEnv      = "DNC_SERVICE_CHAOS_DATA"
	chaosAddrFileEnv  = "DNC_SERVICE_CHAOS_ADDRFILE"
	chaosChildTimeout = 2 * time.Minute
)

// TestChaosChildServer is not a test: it is the body of the child process
// re-executed by TestChaosKillResume. It runs a single-worker server over
// the directory named by the environment and then waits to be SIGKILLed (a
// safety timer bounds its life if the parent dies first).
func TestChaosChildServer(t *testing.T) {
	if os.Getenv(chaosChildEnv) == "" {
		t.Skip("not a chaos child")
	}
	srv, err := New(Config{
		DataDir:  os.Getenv(chaosDataEnv),
		Workers:  1,
		CellJobs: 1, // sequential cells so the kill lands mid-sweep
	})
	if err != nil {
		t.Fatalf("chaos child: %v", err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("chaos child: %v", err)
	}
	// Publish the address atomically so the parent never reads a torn file.
	af := os.Getenv(chaosAddrFileEnv)
	if err := os.WriteFile(af+".tmp", []byte(srv.Addr()), 0o644); err != nil {
		t.Fatalf("chaos child: %v", err)
	}
	if err := os.Rename(af+".tmp", af); err != nil {
		t.Fatalf("chaos child: %v", err)
	}
	time.Sleep(chaosChildTimeout) // SIGKILL arrives here
}

// TestChaosKillResume is the headline acceptance test: SIGKILL a server
// process mid-sweep, restart over the same data dir, and prove the job
// completes with results byte-identical to a fresh run — resumed, not
// recomputed from scratch.
func TestChaosKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short mode")
	}
	dataDir := filepath.Join(t.TempDir(), "data")
	addrFile := filepath.Join(t.TempDir(), "addr")

	child := exec.Command(os.Args[0], "-test.run=^TestChaosChildServer$", "-test.v")
	child.Env = append(os.Environ(),
		chaosChildEnv+"=1",
		chaosDataEnv+"="+dataDir,
		chaosAddrFileEnv+"="+addrFile,
	)
	child.Stdout, child.Stderr = os.Stderr, os.Stderr
	if err := child.Start(); err != nil {
		t.Fatalf("starting chaos child: %v", err)
	}
	defer child.Process.Kill()
	go child.Wait() // reap whenever it dies

	var base string
	waitFor(t, "child server address", func() bool {
		b, err := os.ReadFile(addrFile)
		if err != nil || len(b) == 0 {
			return false
		}
		base = "http://" + string(b)
		return true
	})

	// Three sequential cells, sized so each takes a visible moment: the
	// kill lands after the first completes and before the last does.
	spec := Spec{
		Workloads:     []string{"Web-Frontend"},
		Designs:       []string{"baseline", "NL", "N2L"},
		Cores:         2,
		WarmCycles:    20_000,
		MeasureCycles: 20_000,
		Seeds:         []int64{1},
	}
	b, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatalf("submitting to child: %v", err)
	}
	var accepted JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("child submit = %d, %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// Wait for partial progress — at least one cell done, job not finished —
	// then SIGKILL: no drain, no flush, no goodbye.
	waitFor(t, "partial progress in the child", func() bool {
		r, err := http.Get(base + "/v1/jobs/" + accepted.ID)
		if err != nil {
			return false
		}
		defer r.Body.Close()
		var st JobStatus
		if json.NewDecoder(r.Body).Decode(&st) != nil {
			return false
		}
		return st.Done >= 1 && st.State == JobRunning
	})
	if err := child.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}

	// Restart over the same data dir (in-process this time) and let
	// recovery finish the job.
	e := newTestEnv(t, func(c *Config) {
		c.DataDir = dataDir
		c.Workers = 1
		c.CellJobs = 1
	})
	st := e.waitJob(accepted.ID)
	if st.State != JobDone || st.Done != 3 {
		t.Fatalf("recovered job = %s (%d/3 cells), want done", st.State, st.Done)
	}
	// Recovery must reuse pre-kill work, not recompute everything: at least
	// one cell arrives via the cache or the journal.
	if st.Cached+st.Resumed < 1 {
		t.Fatalf("no cell was recovered (cached=%d resumed=%d); the kill either landed too early or recovery restarted from scratch",
			st.Cached, st.Resumed)
	}
	t.Logf("recovery: %d cached, %d resumed, %d simulated", st.Cached, st.Resumed, st.Simulated)

	// Byte-identical proof for every cell, against fresh standalone runs.
	freshIPC := make(map[string]float64) // design → fresh-run IPC
	for _, cell := range spec.normalized().cells() {
		fresh, err := sim.RunChecked(context.Background(), cell.RunConfig())
		if err != nil {
			t.Fatalf("fresh run of %s: %v", cell.Key(), err)
		}
		want := ResultDigest(runner.NewResultJSON(fresh))
		if got := st.Digests[cell.Digest()]; got != want {
			t.Fatalf("post-crash result for %s has digest %s, fresh run %s — recovery is not bit-exact",
				cell.Key(), got, want)
		}
		freshIPC[cell.Design] = float64(fresh.M.Retired) / float64(fresh.M.Cycles)
	}

	// The column store took the same SIGKILL — the child fsyncs it one cell
	// at a time, so the kill can land mid-block-write. Recovery (torn-tail
	// truncation + cache backfill) must leave /v1/query answering with
	// exactly the fresh-run numbers.
	var qr queryResponse
	if code := e.getJSON("/v1/query?metric=ipc", &qr); code != http.StatusOK {
		t.Fatalf("post-crash /v1/query = %d", code)
	}
	if len(qr.Groups) != 3 {
		t.Fatalf("post-crash query has %d groups, want one per design: %+v", len(qr.Groups), qr.Groups)
	}
	for _, g := range qr.Groups {
		want, ok := freshIPC[g.Design]
		if !ok || g.N != 1 || g.Mean != want {
			t.Fatalf("post-crash store aggregate for %s = %+v, want N=1 mean exactly %v", g.Design, g, want)
		}
	}
}
