package service

import (
	"container/heap"
	"errors"
	"sync"
)

// Queue admission errors, mapped to HTTP statuses by the API layer
// (429 + Retry-After and 503 respectively).
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrDraining  = errors.New("service: server draining")
)

// jobQueue is the bounded priority queue feeding the worker pool: higher
// Spec.Priority pops first, ties in submission order. The bound is the
// backpressure mechanism — a full queue rejects with ErrQueueFull and the
// API translates that into 429 + Retry-After, shedding load instead of
// accumulating unbounded state. Close wakes all poppers for drain; jobs
// still queued at close are deliberately left unpopped (they are persisted
// on disk and recovered by the next process).
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  jobHeap
	cap    int
	closed bool
}

func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits a job or reports backpressure/drain.
func (q *jobQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if len(q.items) >= q.cap {
		return ErrQueueFull
	}
	heap.Push(&q.items, j)
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available (highest priority first) or the
// queue closes, in which case ok is false.
func (q *jobQueue) pop() (j *job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return nil, false
	}
	return heap.Pop(&q.items).(*job), true
}

// len reports queued (not yet popped) jobs.
func (q *jobQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close stops admissions and wakes every blocked pop.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// jobHeap orders by (priority desc, seq asc).
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].spec.Priority != h[j].spec.Priority {
		return h[i].spec.Priority > h[j].spec.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
