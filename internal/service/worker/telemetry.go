package worker

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"dnc/internal/httpx"
	"dnc/internal/telemetry"
)

// maxSummaryErrors bounds the terminal error summary: the most recent
// distinct failures are enough to diagnose a sick worker without holding an
// unbounded history in a long-lived process.
const maxSummaryErrors = 16

// Telemetry is the dncworker-side metric surface: a Prometheus registry
// (served by the dncworker binary on its metrics address), per-status HTTP
// retry counters wired into the RetryClient seams, and a bounded error log
// that becomes the terminal summary at exit. A nil *Telemetry no-ops
// everywhere, so the worker library stays zero-cost when the embedder does
// not ask for metrics.
type Telemetry struct {
	Reg *telemetry.Registry

	Registrations  *telemetry.Counter
	CellsCompleted *telemetry.Counter
	CellsFailed    *telemetry.Counter
	CellsAbandoned *telemetry.Counter
	LeasesRevoked  *telemetry.Counter
	UploadRejected *telemetry.Counter
	Retries        *telemetry.CounterVec
	GiveUps        *telemetry.CounterVec
	ExecSeconds    *telemetry.Histogram

	inflight atomic.Int64

	mu   sync.Mutex
	errs []cellError
	nerr uint64
}

// cellError is one remembered failure, with the context the structured logs
// carry: which worker, which cell.
type cellError struct {
	Worker string
	Digest string
	Key    string
	Msg    string
}

// NewTelemetry builds the worker metric registry.
func NewTelemetry() *Telemetry {
	reg := telemetry.NewRegistry()
	t := &Telemetry{Reg: reg}
	t.Registrations = reg.Counter("dnc_worker_registrations_total",
		"Registrations with the control plane (re-registrations included).")
	t.CellsCompleted = reg.Counter("dnc_worker_cells_completed_total",
		"Cells executed and uploaded successfully.")
	t.CellsFailed = reg.Counter("dnc_worker_cells_failed_total",
		"Cell executions that ended in an error (reported to the server).")
	t.CellsAbandoned = reg.Counter("dnc_worker_cells_abandoned_total",
		"Executions abandoned without an upload (revocation or shutdown).")
	t.LeasesRevoked = reg.Counter("dnc_worker_leases_revoked_total",
		"Leases the server revoked out from under this worker.")
	t.UploadRejected = reg.Counter("dnc_worker_uploads_rejected_total",
		"Completion uploads the server refused (terminal HTTP error).")
	t.Retries = reg.CounterVec("dnc_worker_http_retries_total", "status",
		"HTTP request retries by status code (transport = connection error).")
	t.GiveUps = reg.CounterVec("dnc_worker_http_giveups_total", "status",
		"HTTP requests abandoned after exhausting the retry budget, by final status.")
	t.ExecSeconds = reg.Histogram("dnc_worker_cell_execution_seconds",
		"Cell execution wall time on this worker.",
		telemetry.DurationBounds(), telemetry.SecondsScale)
	reg.GaugeFunc("dnc_worker_inflight_cells",
		"Cells executing on this worker right now.",
		func() float64 { return float64(t.inflight.Load()) })
	return t
}

// retryStatusLabel maps the RetryClient's status to a bounded label set.
func retryStatusLabel(status int) string {
	if status == 0 {
		return "transport"
	}
	return fmt.Sprintf("%d", status)
}

// InstrumentClient installs the per-status retry counters onto the client's
// observation seams (chaining any hooks already present).
func (t *Telemetry) InstrumentClient(rc *httpx.RetryClient) {
	if t == nil || rc == nil {
		return
	}
	prevRetry, prevGiveUp := rc.OnRetry, rc.OnGiveUp
	rc.OnRetry = func(status int) {
		t.Retries.With(retryStatusLabel(status)).Inc()
		if prevRetry != nil {
			prevRetry(status)
		}
	}
	rc.OnGiveUp = func(status int) {
		t.GiveUps.With(retryStatusLabel(status)).Inc()
		if prevGiveUp != nil {
			prevGiveUp(status)
		}
	}
}

func (t *Telemetry) execStart() {
	if t != nil {
		t.inflight.Add(1)
	}
}

func (t *Telemetry) execEnd() {
	if t != nil {
		t.inflight.Add(-1)
	}
}

// recordError remembers one failure for the exit summary (most recent
// maxSummaryErrors kept).
func (t *Telemetry) recordError(worker, digest, key, msg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nerr++
	t.errs = append(t.errs, cellError{Worker: worker, Digest: digest, Key: key, Msg: msg})
	if len(t.errs) > maxSummaryErrors {
		t.errs = t.errs[len(t.errs)-maxSummaryErrors:]
	}
}

// Summary renders the terminal report the dncworker binary prints at exit:
// counters plus the most recent failures with their cell context. Empty
// string when the session has nothing to report (no cells touched, no
// errors) so an idle worker exits silently.
func (t *Telemetry) Summary() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	errs := append([]cellError(nil), t.errs...)
	total := t.nerr
	t.mu.Unlock()

	if total == 0 && t.CellsCompleted.Value()+t.CellsFailed.Value()+t.CellsAbandoned.Value()+
		t.LeasesRevoked.Value()+t.UploadRejected.Value() == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "completed=%d failed=%d abandoned=%d revoked=%d uploads_rejected=%d",
		t.CellsCompleted.Value(), t.CellsFailed.Value(), t.CellsAbandoned.Value(),
		t.LeasesRevoked.Value(), t.UploadRejected.Value())
	if total == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "\n%d error(s)", total)
	if total > uint64(len(errs)) {
		fmt.Fprintf(&b, " (last %d shown)", len(errs))
	}
	b.WriteString(":")
	for _, e := range errs {
		fmt.Fprintf(&b, "\n  worker=%s cell=%.12s key=%q: %s", e.Worker, e.Digest, e.Key, e.Msg)
	}
	return b.String()
}
