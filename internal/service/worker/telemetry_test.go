package worker

import (
	"fmt"
	"strings"
	"testing"

	"dnc/internal/httpx"
	"dnc/internal/telemetry"
)

func TestNilTelemetryNoOps(t *testing.T) {
	var tel *Telemetry
	tel.execStart()
	tel.execEnd()
	tel.recordError("w", "d", "k", "boom")
	tel.InstrumentClient(&httpx.RetryClient{})
	if s := tel.Summary(); s != "" {
		t.Fatalf("nil Summary = %q, want empty", s)
	}
}

func TestSummaryEmptyWhenIdle(t *testing.T) {
	tel := NewTelemetry()
	if s := tel.Summary(); s != "" {
		t.Fatalf("idle Summary = %q, want empty", s)
	}
	tel.Registrations.Inc() // registering alone is not worth a report
	if s := tel.Summary(); s != "" {
		t.Fatalf("registered-only Summary = %q, want empty", s)
	}
}

func TestSummaryCountersAndErrorRing(t *testing.T) {
	tel := NewTelemetry()
	tel.CellsCompleted.Add(7)
	tel.CellsFailed.Add(2)
	for i := 0; i < maxSummaryErrors+5; i++ {
		tel.recordError("w1", fmt.Sprintf("digest%020d", i), fmt.Sprintf("v1|cell%d", i), "sim exploded")
	}
	s := tel.Summary()
	if !strings.Contains(s, "completed=7 failed=2") {
		t.Fatalf("summary missing counters: %q", s)
	}
	if !strings.Contains(s, fmt.Sprintf("%d error(s) (last %d shown)", maxSummaryErrors+5, maxSummaryErrors)) {
		t.Fatalf("summary missing truncation note: %q", s)
	}
	// Ring keeps the most recent errors; the oldest fell off.
	if strings.Contains(s, "v1|cell0\"") {
		t.Fatalf("oldest error survived the ring: %q", s)
	}
	lastKey := fmt.Sprintf("v1|cell%d", maxSummaryErrors+4)
	if !strings.Contains(s, lastKey) {
		t.Fatalf("most recent error missing from summary: %q", s)
	}
	if !strings.Contains(s, "worker=w1") || !strings.Contains(s, "cell=digest000000") {
		t.Fatalf("error line missing worker/cell context: %q", s)
	}
}

func TestInstrumentClientChainsHooks(t *testing.T) {
	tel := NewTelemetry()
	var prevRetries, prevGiveUps []int
	rc := &httpx.RetryClient{
		OnRetry:  func(status int) { prevRetries = append(prevRetries, status) },
		OnGiveUp: func(status int) { prevGiveUps = append(prevGiveUps, status) },
	}
	tel.InstrumentClient(rc)

	rc.OnRetry(503)
	rc.OnRetry(0)
	rc.OnGiveUp(0)

	if got := len(prevRetries); got != 2 {
		t.Fatalf("previous OnRetry hook fired %d times, want 2", got)
	}
	if got := len(prevGiveUps); got != 1 {
		t.Fatalf("previous OnGiveUp hook fired %d times, want 1", got)
	}
	if v := tel.Retries.With("503").Value(); v != 1 {
		t.Fatalf("retries{status=503} = %d, want 1", v)
	}
	if v := tel.Retries.With("transport").Value(); v != 1 {
		t.Fatalf("retries{status=transport} = %d, want 1", v)
	}
	if v := tel.GiveUps.With("transport").Value(); v != 1 {
		t.Fatalf("giveups{status=transport} = %d, want 1", v)
	}
}

func TestWorkerRegistryExposition(t *testing.T) {
	tel := NewTelemetry()
	tel.execStart()
	defer tel.execEnd()
	tel.ExecSeconds.Observe(0.25 * telemetry.SecondsScale)

	var b strings.Builder
	tel.Reg.WritePrometheus(&b)
	body := b.String()
	if errs := telemetry.Lint([]byte(body)); len(errs) != 0 {
		t.Fatalf("worker exposition lint: %v", errs)
	}
	if !strings.Contains(body, "dnc_worker_inflight_cells 1") {
		t.Fatalf("inflight gauge not reflecting execStart:\n%s", body)
	}
	if !strings.Contains(body, "dnc_worker_cell_execution_seconds_count 1") {
		t.Fatalf("exec histogram missing observation:\n%s", body)
	}
}
