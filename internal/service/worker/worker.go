// Package worker is the remote execution plane's client side: the loop a
// dncworker process runs against a dncserved control plane. It registers
// for an identity, pulls leased cells in batches, executes them through the
// same RunConfig construction the server's in-process pool uses (which is
// what makes remote results bit-identical), uploads completions under the
// cell's content address, and renews its leases by heartbeating at the
// cadence the server dictates.
//
// The loop is built for an at-least-once world: a heartbeat answered with
// revocations abandons those cells (the server has reassigned them), a 404
// from any work-API call means the registration expired and the worker
// re-registers from scratch, and every upload is safe to retry blindly
// because the server acknowledges bit-identical duplicates idempotently.
package worker

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dnc/internal/httpx"
	"dnc/internal/service/workerproto"
	"dnc/internal/sim"
	"dnc/internal/sim/runner"
	"dnc/internal/telemetry"
)

// Options configures one worker process.
type Options struct {
	// Server is the control plane's base URL (e.g. "http://127.0.0.1:9191").
	Server string
	// Name is the human-readable label sent at registration.
	Name string
	// Capacity is how many cells execute concurrently (default 1).
	Capacity int
	// LeaseBatch caps cells pulled per lease request on top of the server's
	// own LeaseBatchMax (0 = the server's cap alone).
	LeaseBatch int
	// PollInterval is the idle re-poll cadence when the server has no work
	// or a request fails (default 250ms).
	PollInterval time.Duration
	// CellTimeout bounds one cell's execution; expiry is reported to the
	// server as a transient failure (default: no bound — the server's lease
	// watchdog is the backstop).
	CellTimeout time.Duration
	// Client is the retrying HTTP client (default: 3 retries on transport
	// errors and 429/502/503).
	Client *httpx.RetryClient
	// Run is the execution seam; nil runs the real simulator via
	// CellSpec.RunConfig, exactly as the server's in-process pool does.
	Run func(ctx context.Context, spec workerproto.CellSpec) (*runner.ResultJSON, error)
	// FreezeAfter is a chaos hook: after this many completed cells the
	// worker freezes — it keeps leasing nothing new, keeps heartbeating,
	// holds its remaining leases, and never completes them — modeling a
	// wedged process whose heartbeat thread survives. The server's
	// per-lease progress budget is what must catch this. 0 disables.
	FreezeAfter int
	// Log receives structured progress and error records; every cell-level
	// record carries the worker ID and cell identity (default: discard).
	Log *slog.Logger
	// Telemetry, when set, receives worker-side metrics (and instruments
	// Client's retry seams — don't also call InstrumentClient yourself).
	// The embedder serves Telemetry.Reg however it likes; nil disables.
	Telemetry *Telemetry
}

func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = 1
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 250 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = &httpx.RetryClient{Retries: 3}
	}
	if o.Run == nil {
		o.Run = defaultRun
	}
	if o.Log == nil {
		o.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.Telemetry == nil {
		// A zero Telemetry has no registry and all-nil (no-op) counters:
		// metrics disabled without a branch at every observation site.
		o.Telemetry = &Telemetry{}
	} else {
		o.Telemetry.InstrumentClient(o.Client)
	}
	return o
}

// defaultRun executes the cell for real. The RunConfig comes from the
// shared wire-protocol package, so this is byte-for-byte the configuration
// the server's own pool would build.
func defaultRun(ctx context.Context, spec workerproto.CellSpec) (*runner.ResultJSON, error) {
	res, err := sim.RunChecked(ctx, spec.RunConfig())
	if err != nil {
		return nil, err
	}
	return runner.NewResultJSON(res), nil
}

// errReregister flows through a session's context cause when a work-API
// call returns 404: the registration expired (server restart, missed
// heartbeats) and the worker must register again.
var errReregister = errors.New("worker: registration expired")

// errRevoked cancels one cell's execution when a heartbeat reports its
// lease revoked; the cell is abandoned without an upload (the server has
// already reassigned it).
var errRevoked = errors.New("worker: lease revoked")

// Run registers with the control plane and works until ctx is cancelled or
// the server reports it is draining. Expired registrations re-register
// transparently; only unrecoverable errors (or ctx's error) are returned.
func Run(ctx context.Context, o Options) error {
	o = o.withDefaults()
	o.Server = strings.TrimRight(o.Server, "/")
	for ctx.Err() == nil {
		var reg workerproto.RegisterResponse
		_, err := o.Client.PostJSON(ctx, o.Server+"/v1/workers/register",
			workerproto.RegisterRequest{Name: o.Name, Capacity: o.Capacity}, &reg)
		if err != nil {
			return fmt.Errorf("worker: registering with %s: %w", o.Server, err)
		}
		o.Telemetry.Registrations.Inc()
		o.Log.Info("registered", "worker", reg.WorkerID, "ttl_ms", reg.LeaseTTLMS,
			"heartbeat_ms", reg.HeartbeatMS, "batch_max", reg.LeaseBatchMax)
		if err := runSession(ctx, o, reg); !errors.Is(err, errReregister) {
			return err
		}
		o.Log.Warn("registration expired; registering again", "worker", reg.WorkerID)
	}
	return ctx.Err()
}

// session is one registration's lifetime: a heartbeat loop, a lease loop,
// and up to Capacity concurrent cell executions.
type session struct {
	o   Options
	reg workerproto.RegisterResponse

	ctx    context.Context
	cancel context.CancelCauseFunc

	mu     sync.Mutex
	active map[string]context.CancelCauseFunc // digest → cell cancel
	// attempts counts how many times this session has been leased each
	// digest (a reassignment returning to the same worker); it rides on the
	// upload's X-DNC-Attempt header.
	attempts map[string]int

	slots     chan struct{} // capacity tokens; held while a cell is in flight
	inflight  sync.WaitGroup
	completed atomic.Uint64
	frozen    atomic.Bool
}

func runSession(parent context.Context, o Options, reg workerproto.RegisterResponse) error {
	ctx, cancel := context.WithCancelCause(parent)
	defer cancel(nil)
	s := &session{
		o: o, reg: reg,
		ctx: ctx, cancel: cancel,
		active:   make(map[string]context.CancelCauseFunc),
		attempts: make(map[string]int),
		slots:    make(chan struct{}, o.Capacity),
	}
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		s.heartbeatLoop()
	}()
	err := s.leaseLoop()
	if errors.Is(err, errReregister) {
		cancel(errReregister) // abandon in-flight cells: the leases are gone
	}
	// Let in-flight cells finish (drain) or unwind (cancelled); a frozen
	// cell unwinds only when the parent context goes.
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-parent.Done():
	}
	cancel(nil)
	<-hbDone
	if err == nil {
		err = parent.Err()
	}
	return err
}

func (s *session) url(path string) string { return s.o.Server + path }

// activeDigests snapshots the cells currently held, for heartbeat
// cross-checking.
func (s *session) activeDigests() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.active))
	for d := range s.active {
		out = append(out, d)
	}
	return out
}

// heartbeatLoop beats at the server-dictated cadence, reporting held cells
// and abandoning any the server has revoked. A 404 ends the session toward
// re-registration; a transport failure is simply skipped — the TTL leaves
// roughly three beats of slack.
func (s *session) heartbeatLoop() {
	t := time.NewTicker(time.Duration(s.reg.HeartbeatMS) * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
		}
		var resp workerproto.HeartbeatResponse
		status, err := s.o.Client.PostJSON(s.ctx,
			s.url("/v1/workers/"+s.reg.WorkerID+"/heartbeat"),
			workerproto.HeartbeatRequest{Active: s.activeDigests()}, &resp)
		if status == http.StatusNotFound {
			s.cancel(errReregister)
			return
		}
		if err != nil {
			continue
		}
		if s.frozen.Load() {
			continue // a frozen worker's heartbeats land but nothing is processed
		}
		for _, digest := range resp.Revoked {
			s.abandon(digest)
		}
	}
}

// abandon cancels a revoked cell's execution; the goroutine sees the
// revocation cause and skips its upload.
func (s *session) abandon(digest string) {
	s.mu.Lock()
	cancel, ok := s.active[digest]
	s.mu.Unlock()
	if ok {
		s.o.Telemetry.LeasesRevoked.Inc()
		s.o.Log.Warn("lease revoked; abandoning", "worker", s.reg.WorkerID,
			"cell", digest, "span", telemetry.SpanID(digest))
		cancel(errRevoked)
	}
}

// leaseLoop pulls work whenever capacity is free. Returns nil on drain or
// parent cancellation, errReregister on a 404.
func (s *session) leaseLoop() error {
	for {
		if err := s.ctx.Err(); err != nil {
			if cause := context.Cause(s.ctx); cause != nil && !errors.Is(cause, context.Canceled) {
				return cause
			}
			return nil
		}
		free := cap(s.slots) - len(s.slots)
		if s.frozen.Load() || free == 0 {
			s.pause()
			continue
		}
		max := free
		if s.o.LeaseBatch > 0 && max > s.o.LeaseBatch {
			max = s.o.LeaseBatch
		}
		var resp workerproto.LeaseResponse
		status, err := s.o.Client.PostJSON(s.ctx,
			s.url("/v1/workers/"+s.reg.WorkerID+"/lease"),
			workerproto.LeaseRequest{Max: max}, &resp)
		if status == http.StatusNotFound {
			return errReregister
		}
		if err != nil {
			s.pause()
			continue
		}
		if resp.Draining {
			s.o.Log.Info("server draining; finishing held cells", "worker", s.reg.WorkerID, "held", len(s.slots))
			return nil
		}
		for _, l := range resp.Leases {
			s.slots <- struct{}{} // cannot block: max ≤ free and only this loop acquires
			s.startCell(l)
		}
		if len(resp.Leases) == 0 {
			s.pause()
		}
	}
}

// pause sleeps one poll interval, reporting false if the session ended.
func (s *session) pause() bool {
	select {
	case <-s.ctx.Done():
		return false
	case <-time.After(s.o.PollInterval):
		return true
	}
}

// startCell launches one leased cell's execution on its own goroutine with
// its own cancel (so a heartbeat revocation aborts just that cell).
func (s *session) startCell(l workerproto.Lease) {
	cctx, ccancel := context.WithCancelCause(s.ctx)
	s.mu.Lock()
	s.active[l.Digest] = ccancel
	s.attempts[l.Digest]++
	s.mu.Unlock()
	s.inflight.Add(1)
	go func() {
		defer s.inflight.Done()
		s.runCell(cctx, l)
		s.mu.Lock()
		delete(s.active, l.Digest)
		s.mu.Unlock()
		ccancel(nil)
		<-s.slots
	}()
}

// runCell executes one lease and uploads the outcome. An execution
// cancelled by revocation or session teardown uploads nothing — the server
// has reassigned (or no longer wants) the cell.
func (s *session) runCell(ctx context.Context, l workerproto.Lease) {
	if !l.Spec.Valid() || l.Spec.Digest() != l.Digest {
		s.complete(l, nil, fmt.Errorf("lease %.12s carries an invalid or mismatched spec", l.Digest), false)
		return
	}
	rctx := ctx
	if s.o.CellTimeout > 0 {
		var rcancel context.CancelFunc
		rctx, rcancel = context.WithTimeout(ctx, s.o.CellTimeout)
		defer rcancel()
	}
	s.o.Telemetry.execStart()
	start := time.Now()
	res, err := s.o.Run(rctx, l.Spec)
	s.o.Telemetry.ExecSeconds.ObserveDuration(time.Since(start))
	s.o.Telemetry.execEnd()
	if ctx.Err() != nil {
		s.o.Telemetry.CellsAbandoned.Inc()
		return // revoked or session over: abandon without an upload
	}
	if err != nil {
		s.o.Telemetry.CellsFailed.Inc()
		s.o.Telemetry.recordError(s.reg.WorkerID, l.Digest, l.Key, err.Error())
		s.o.Log.Error("cell execution failed", "worker", s.reg.WorkerID,
			"cell", l.Digest, "key", l.Key, "err", err.Error(),
			"transient", errors.Is(err, context.DeadlineExceeded))
		s.complete(l, nil, err, errors.Is(err, context.DeadlineExceeded))
		return
	}
	if s.o.FreezeAfter > 0 && s.completed.Load() >= uint64(s.o.FreezeAfter) {
		// Chaos: wedge after the budgeted completions — result computed,
		// upload never sent, lease held until the server's watchdog acts.
		if s.frozen.CompareAndSwap(false, true) {
			s.o.Log.Warn("FROZEN (chaos hook): holding lease, heartbeats continue",
				"worker", s.reg.WorkerID, "cell", l.Digest)
		}
		<-s.ctx.Done()
		return
	}
	s.complete(l, res, nil, false)
	s.completed.Add(1)
}

// complete uploads one outcome under the cell's content address. Retries
// inside the client are safe — the server deduplicates bit-identical
// results — and a rejected upload is logged and dropped: the lease will
// expire and the cell re-run elsewhere.
func (s *session) complete(l workerproto.Lease, res *runner.ResultJSON, execErr error, transient bool) {
	req := workerproto.CompleteRequest{WorkerID: s.reg.WorkerID, Spec: l.Spec, Result: res}
	if execErr != nil {
		req.Error = execErr.Error()
		req.Transient = transient
	}
	s.mu.Lock()
	attempt := s.attempts[l.Digest]
	s.mu.Unlock()
	// Echo the lease's trace identity plus our own: the server stitches this
	// upload into the job timeline by these headers.
	hdr := map[string]string{
		telemetry.HeaderWorkerID: s.reg.WorkerID,
		telemetry.HeaderAttempt:  strconv.Itoa(attempt),
	}
	if l.TraceID != "" {
		hdr[telemetry.HeaderTraceID] = l.TraceID
		hdr[telemetry.HeaderSpanID] = l.SpanID
	}
	var resp workerproto.CompleteResponse
	status, err := s.o.Client.PostJSONHeaders(s.ctx, s.url("/v1/cells/"+l.Digest+"/complete"), hdr, req, &resp)
	if err != nil {
		s.o.Telemetry.UploadRejected.Inc()
		s.o.Telemetry.recordError(s.reg.WorkerID, l.Digest, l.Key,
			fmt.Sprintf("upload failed (status %d): %v", status, err))
		s.o.Log.Error("upload failed", "worker", s.reg.WorkerID, "cell", l.Digest,
			"key", l.Key, "status", status, "err", err.Error())
		return
	}
	if res != nil {
		s.o.Telemetry.CellsCompleted.Inc()
	}
	s.o.Log.Info("cell uploaded", "worker", s.reg.WorkerID, "cell", l.Digest,
		"span", telemetry.SpanID(l.Digest), "trace", l.TraceID,
		"attempt", attempt, "status", resp.Status)
}
