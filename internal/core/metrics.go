package core

import "dnc/internal/obs"

// Metrics are the per-core measurement counters collected during the
// measurement window. They are plain fields (not a registry) because the
// fetch loop updates them every cycle.
type Metrics struct {
	Cycles  uint64
	Retired uint64

	// Demand instruction-fetch behaviour (committed path only).
	DemandAccesses uint64
	DemandMisses   uint64
	SeqMisses      uint64 // miss block == previously accessed block + 1
	DiscMisses     uint64
	LateMisses     uint64 // miss merged into an in-flight prefetch

	// Prefetch behaviour.
	PrefetchesIssued uint64
	PrefetchFills    uint64
	UsefulPrefetches uint64 // prefetched blocks demanded before eviction
	UselessEvicts    uint64 // prefetched blocks evicted untouched

	// Covered memory access latency (Figure 4/13): cycles of fetch latency
	// covered by prefetching over the latency of all prefetched-and-
	// demanded blocks.
	CMALCovered uint64
	CMALTotal   uint64

	// Stall cycles by cause (zero-delivery cycles). Together with
	// BusyCycles they partition the window: every cycle is either busy
	// (>=1 delivered slot) or charged to exactly one cause — sim.Audit
	// enforces the conservation (see StallCycles).
	StallBackend   uint64
	StallICache    uint64
	StallFTQ       uint64
	StallBTB       uint64
	StallMispred   uint64
	StallStartup   uint64 // cycles before the first instruction delivered
	BusyCycles     uint64 // cycles that delivered at least one instruction
	DeliveredSlots uint64

	// Branch behaviour.
	CondBranches  uint64
	Mispredicts   uint64
	BTBMissEvents uint64

	// Cache lookups (Figure 14): demand + prefetcher probes of the L1i tag
	// array.
	CacheLookups uint64

	// External bandwidth (Figure 5): requests sent from the L1i level to
	// the lower hierarchy (demand fetches + prefetches + wrong path).
	ExtRequests uint64

	// LLC latency as observed by instruction fetches (Figure 5).
	LLCLatencySum uint64
	LLCLatencyCnt uint64

	// Data side.
	LoadCount  uint64
	L1DMisses  uint64
	StoreCount uint64

	// Wrong-path activity.
	WrongPathFetches uint64
}

// IPC returns retired instructions per cycle.
func (m *Metrics) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Retired) / float64(m.Cycles)
}

// FrontendStalls returns the L1i/BTB-induced stall cycles: instruction-miss
// waits, empty-FTQ waits, and BTB-miss redirect bubbles (the denominator of
// the paper's FSCR).
func (m *Metrics) FrontendStalls() uint64 {
	return m.StallICache + m.StallFTQ + m.StallBTB
}

// chargeStall accounts one zero-delivery cycle to its cause. StallNone
// charges nothing (a defensive no-op; the fetch engine attributes every
// idle cycle, and the conservation audit catches any hole).
func (m *Metrics) chargeStall(cause obs.StallCause) {
	switch cause {
	case obs.StallICache:
		m.StallICache++
	case obs.StallFTQ:
		m.StallFTQ++
	case obs.StallBTB:
		m.StallBTB++
	case obs.StallMispred:
		m.StallMispred++
	case obs.StallBackend:
		m.StallBackend++
	case obs.StallStartup:
		m.StallStartup++
	}
}

// chargeStallN accounts n consecutive zero-delivery cycles to one cause
// (the fast-forward bulk form of chargeStall).
func (m *Metrics) chargeStallN(cause obs.StallCause, n uint64) {
	switch cause {
	case obs.StallICache:
		m.StallICache += n
	case obs.StallFTQ:
		m.StallFTQ += n
	case obs.StallBTB:
		m.StallBTB += n
	case obs.StallMispred:
		m.StallMispred += n
	case obs.StallBackend:
		m.StallBackend += n
	case obs.StallStartup:
		m.StallStartup += n
	}
}

// StallBreakdown returns the per-cause stall cycles indexed by
// obs.StallCause; the StallNone slot holds BusyCycles, so the entries sum
// to Cycles when attribution is conserved.
func (m *Metrics) StallBreakdown() [obs.NumStallCauses]uint64 {
	var out [obs.NumStallCauses]uint64
	out[obs.StallNone] = m.BusyCycles
	out[obs.StallICache] = m.StallICache
	out[obs.StallFTQ] = m.StallFTQ
	out[obs.StallBTB] = m.StallBTB
	out[obs.StallMispred] = m.StallMispred
	out[obs.StallBackend] = m.StallBackend
	out[obs.StallStartup] = m.StallStartup
	return out
}

// StallCycles returns the total attributed stall cycles across all causes.
// Conservation — BusyCycles + StallCycles() == Cycles — is a structural
// invariant checked by the core's Audit.
func (m *Metrics) StallCycles() uint64 {
	return m.StallBackend + m.StallICache + m.StallFTQ + m.StallBTB +
		m.StallMispred + m.StallStartup
}

// CMAL returns the covered-memory-access-latency fraction.
func (m *Metrics) CMAL() float64 {
	if m.CMALTotal == 0 {
		return 0
	}
	return float64(m.CMALCovered) / float64(m.CMALTotal)
}

// SeqMissFraction returns the sequential share of demand misses (Figure 2).
func (m *Metrics) SeqMissFraction() float64 {
	if m.DemandMisses == 0 {
		return 0
	}
	return float64(m.SeqMisses) / float64(m.DemandMisses)
}

// AvgLLCLatency returns the mean L1i-observed LLC access latency.
func (m *Metrics) AvgLLCLatency() float64 {
	if m.LLCLatencyCnt == 0 {
		return 0
	}
	return float64(m.LLCLatencySum) / float64(m.LLCLatencyCnt)
}

// MPKI returns misses per kilo-instruction for the given miss count.
func (m *Metrics) MPKI(misses uint64) float64 {
	if m.Retired == 0 {
		return 0
	}
	return float64(misses) * 1000 / float64(m.Retired)
}

// Add accumulates other into m (multi-core aggregation).
func (m *Metrics) Add(o *Metrics) {
	m.Cycles += o.Cycles
	m.Retired += o.Retired
	m.DemandAccesses += o.DemandAccesses
	m.DemandMisses += o.DemandMisses
	m.SeqMisses += o.SeqMisses
	m.DiscMisses += o.DiscMisses
	m.LateMisses += o.LateMisses
	m.PrefetchesIssued += o.PrefetchesIssued
	m.PrefetchFills += o.PrefetchFills
	m.UsefulPrefetches += o.UsefulPrefetches
	m.UselessEvicts += o.UselessEvicts
	m.CMALCovered += o.CMALCovered
	m.CMALTotal += o.CMALTotal
	m.StallBackend += o.StallBackend
	m.StallICache += o.StallICache
	m.StallFTQ += o.StallFTQ
	m.StallBTB += o.StallBTB
	m.StallMispred += o.StallMispred
	m.StallStartup += o.StallStartup
	m.BusyCycles += o.BusyCycles
	m.DeliveredSlots += o.DeliveredSlots
	m.CondBranches += o.CondBranches
	m.Mispredicts += o.Mispredicts
	m.BTBMissEvents += o.BTBMissEvents
	m.CacheLookups += o.CacheLookups
	m.ExtRequests += o.ExtRequests
	m.LLCLatencySum += o.LLCLatencySum
	m.LLCLatencyCnt += o.LLCLatencyCnt
	m.LoadCount += o.LoadCount
	m.L1DMisses += o.L1DMisses
	m.StoreCount += o.StoreCount
	m.WrongPathFetches += o.WrongPathFetches
}
