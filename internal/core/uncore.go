package core

import (
	"dnc/internal/isa"
	"dnc/internal/llc"
	"dnc/internal/memory"
	"dnc/internal/noc"
)

// Uncore is the shared fabric of the CMP: the banked LLC, the mesh
// interconnect, and main memory. Cores inject requests in tick order, so
// contention (link serialization, bandwidth queueing) is deterministic.
type Uncore struct {
	LLC  *llc.LLC
	Mesh *noc.Mesh
	DRAM *memory.DRAM
}

// NewUncore assembles the default uncore of Table III: a 32 MB 16-bank LLC
// on a 4x4 mesh with 60 ns / 85 GB/s memory behind it.
func NewUncore(llcCfg llc.Config) *Uncore {
	return &Uncore{
		LLC:  llc.New(llcCfg),
		Mesh: noc.New(noc.DefaultConfig()),
		DRAM: memory.New(memory.DefaultConfig()),
	}
}

// Access performs a block fetch from tile src at the given cycle and returns
// the cycle the fill arrives back at the requester, plus whether the LLC
// hit. The path is: request packet over the mesh to the home bank, bank
// access, (on a miss) memory access and LLC fill, then the data response
// packet back.
func (u *Uncore) Access(src int, b isa.BlockID, cycle uint64, isInst bool) (uint64, bool) {
	bank := u.LLC.BankOf(b)
	t := u.Mesh.Send(noc.Tile(src), noc.Tile(bank), 1, cycle)
	t += u.LLC.AccessCycles() + u.LLC.BankDelay(b, t)
	hit := u.LLC.Access(b, isInst)
	if !hit {
		t = u.DRAM.Access(t, isa.BlockBytes)
		u.LLC.Insert(b, isInst)
	}
	t = u.Mesh.Send(noc.Tile(bank), noc.Tile(src), u.Mesh.FlitsFor(isa.BlockBytes), t)
	return t, hit
}

// Preload installs the instruction footprint of an image into the LLC
// (long-warmed state, as checkpointed full-system simulation would have).
func (u *Uncore) Preload(im *isa.Image) {
	first := isa.BlockOf(im.Base)
	last := isa.BlockOf(im.End() - 1)
	for b := first; b <= last; b++ {
		u.LLC.Insert(b, true)
	}
}
