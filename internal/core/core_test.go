package core

import (
	"testing"

	wl "dnc/internal/cfg"
	"dnc/internal/isa"
	"dnc/internal/llc"
	"dnc/internal/prefetch"
)

func testWorkload() wl.Params {
	return wl.Params{
		Name:             "core-test",
		FootprintBytes:   512 << 10,
		LoadFrac:         0.2,
		StoreFrac:        0.08,
		CondFrac:         0.42,
		JumpFrac:         0.07,
		CallFrac:         0.12,
		IndirectCallFrac: 0.06,
		RareBlockFrac:    0.08,
		BackwardFrac:     0.1,
		GenSeed:          5,
	}
}

func newTestCore(t *testing.T, cf Config, design prefetch.Design) (*Core, *Uncore) {
	t.Helper()
	prog := wl.Generate(testWorkload())
	uncore := NewUncore(llc.DefaultConfig())
	uncore.Preload(prog.Image)
	w := wl.NewWalker(prog, 1)
	c := New(cf, w, prog.Image, design, uncore)
	return c, uncore
}

func runCycles(c *Core, n int) {
	for i := 0; i < n; i++ {
		c.Tick()
	}
}

func TestCoreMakesProgress(t *testing.T) {
	c, _ := newTestCore(t, DefaultConfig(), prefetch.NewBaseline(2048))
	runCycles(c, 20000)
	if c.M.Retired == 0 {
		t.Fatal("nothing retired")
	}
	if c.M.Cycles != 20000 {
		t.Fatalf("cycles = %d", c.M.Cycles)
	}
	ipc := c.M.IPC()
	if ipc <= 0.05 || ipc > float64(c.cf.FetchWidth) {
		t.Fatalf("IPC = %.3f out of range", ipc)
	}
}

func TestStallAttributionCoversIdleCycles(t *testing.T) {
	c, _ := newTestCore(t, DefaultConfig(), prefetch.NewBaseline(2048))
	runCycles(c, 20000)
	m := &c.M
	// Every cycle either delivered something or was attributed to a cause.
	attributed := m.StallBackend + m.StallICache + m.StallFTQ + m.StallBTB +
		m.StallMispred + m.StallStartup
	deliveredCycles := m.Cycles - attributed
	// DeliveredSlots >= deliveredCycles (width up to 3 per cycle).
	if m.DeliveredSlots < deliveredCycles {
		t.Fatalf("delivered slots %d < delivering cycles %d", m.DeliveredSlots, deliveredCycles)
	}
	if attributed == 0 {
		t.Fatal("no stalls attributed in a missing-heavy run")
	}
}

func TestMissClassificationPartitions(t *testing.T) {
	c, _ := newTestCore(t, DefaultConfig(), prefetch.NewBaseline(2048))
	runCycles(c, 20000)
	if c.M.SeqMisses+c.M.DiscMisses != c.M.DemandMisses {
		t.Fatalf("%d + %d != %d", c.M.SeqMisses, c.M.DiscMisses, c.M.DemandMisses)
	}
	if c.M.DemandMisses == 0 {
		t.Fatal("no misses on a cold 512KB footprint")
	}
}

func TestPerfectL1iNeverMisses(t *testing.T) {
	cf := DefaultConfig()
	cf.PerfectL1i = true
	c, _ := newTestCore(t, cf, prefetch.NewBaseline(2048))
	runCycles(c, 10000)
	if c.M.DemandMisses != 0 || c.M.StallICache != 0 {
		t.Fatalf("perfect L1i missed: %d misses, %d stall cycles",
			c.M.DemandMisses, c.M.StallICache)
	}
}

func TestPerfectBTBNoBTBStalls(t *testing.T) {
	cf := DefaultConfig()
	cf.PerfectBTB = true
	c, _ := newTestCore(t, cf, prefetch.NewBaseline(2048))
	runCycles(c, 10000)
	if c.M.BTBMissEvents != 0 || c.M.StallBTB != 0 {
		t.Fatalf("perfect BTB produced BTB events: %d, stalls %d",
			c.M.BTBMissEvents, c.M.StallBTB)
	}
}

func TestPerfectFrontendFasterThanBaseline(t *testing.T) {
	base, _ := newTestCore(t, DefaultConfig(), prefetch.NewBaseline(2048))
	runCycles(base, 30000)
	cf := DefaultConfig()
	cf.PerfectL1i = true
	cf.PerfectBTB = true
	perfect, _ := newTestCore(t, cf, prefetch.NewBaseline(2048))
	runCycles(perfect, 30000)
	if perfect.M.IPC() <= base.M.IPC() {
		t.Fatalf("perfect frontend IPC %.3f <= baseline %.3f",
			perfect.M.IPC(), base.M.IPC())
	}
}

func TestPrefetchFillsAndCMAL(t *testing.T) {
	c, _ := newTestCore(t, DefaultConfig(), prefetch.NewNXL(4, 2048))
	runCycles(c, 30000)
	if c.M.PrefetchesIssued == 0 || c.M.PrefetchFills == 0 {
		t.Fatal("no prefetch activity")
	}
	if c.M.UsefulPrefetches == 0 {
		t.Fatal("no useful prefetches")
	}
	cmal := c.M.CMAL()
	if cmal <= 0 || cmal > 1 {
		t.Fatalf("CMAL = %.3f out of range", cmal)
	}
	if c.M.CMALCovered > c.M.CMALTotal {
		t.Fatal("covered exceeds total")
	}
}

func TestPrefetchBufferPromotion(t *testing.T) {
	cf := DefaultConfig()
	cf.PrefetchBufferEntries = 64
	// Shotgun issues buffered prefetches.
	c, _ := newTestCore(t, cf, prefetch.NewShotgun(prefetch.DefaultShotgunDesignConfig()))
	runCycles(c, 30000)
	if c.M.Retired == 0 {
		t.Fatal("no progress with prefetch buffer")
	}
	if c.M.PrefetchFills == 0 {
		t.Fatal("no buffered fills")
	}
}

func TestDeterministicCore(t *testing.T) {
	a, _ := newTestCore(t, DefaultConfig(), prefetch.NewBaseline(2048))
	b, _ := newTestCore(t, DefaultConfig(), prefetch.NewBaseline(2048))
	runCycles(a, 10000)
	runCycles(b, 10000)
	if a.M != b.M {
		t.Fatalf("metrics diverged:\n%+v\n%+v", a.M, b.M)
	}
}

func TestResetMetricsKeepsState(t *testing.T) {
	c, _ := newTestCore(t, DefaultConfig(), prefetch.NewBaseline(2048))
	runCycles(c, 5000)
	c.ResetMetrics()
	if c.M.Cycles != 0 || c.M.Retired != 0 {
		t.Fatal("metrics not reset")
	}
	runCycles(c, 5000)
	if c.M.Retired == 0 {
		t.Fatal("core stopped after reset")
	}
}

func TestWrongPathFetchesHappen(t *testing.T) {
	c, _ := newTestCore(t, DefaultConfig(), prefetch.NewBaseline(2048))
	runCycles(c, 20000)
	if c.M.Mispredicts == 0 {
		t.Fatal("no mispredicts in a branchy workload")
	}
	if c.M.WrongPathFetches == 0 {
		t.Fatal("no wrong-path fetches despite redirects")
	}
}

func TestVariableModeBFConstruction(t *testing.T) {
	p := testWorkload()
	p.Mode = isa.Variable
	prog := wl.Generate(p)
	lcfg := llc.DefaultConfig()
	lcfg.DVEnabled = true
	uncore := NewUncore(lcfg)
	uncore.Preload(prog.Image)
	c := New(DefaultConfig(), wl.NewWalker(prog, 1), prog.Image, prefetch.NewBaseline(2048), uncore)
	runCycles(c, 20000)
	st := uncore.LLC.Stats()
	if st.BFStores == 0 {
		t.Fatal("no branch footprints written")
	}
	if st.BFStores > 0 && st.BFStoreFails == st.BFStores {
		t.Fatal("every BF store failed")
	}
}

func TestUncoreAccessLatency(t *testing.T) {
	uncore := NewUncore(llc.DefaultConfig())
	// LLC miss path goes to memory.
	ready, hit := uncore.Access(0, 12345, 100, true)
	if hit {
		t.Fatal("hit in empty LLC")
	}
	if ready <= 100+uncore.LLC.AccessCycles() {
		t.Fatalf("miss latency too small: %d", ready-100)
	}
	// Refetch hits.
	ready2, hit2 := uncore.Access(0, 12345, ready, true)
	if !hit2 {
		t.Fatal("block not filled")
	}
	if ready2-ready >= ready-100 {
		t.Fatalf("hit latency %d not below miss latency %d", ready2-ready, ready-100)
	}
}

func TestUncorePreload(t *testing.T) {
	im := isa.NewImage(isa.Fixed, 0x1000, make([]byte, 4096))
	uncore := NewUncore(llc.DefaultConfig())
	uncore.Preload(im)
	if uncore.LLC.InstBlocks() < 4096/isa.BlockBytes {
		t.Fatalf("preload installed %d blocks", uncore.LLC.InstBlocks())
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{Cycles: 10, Retired: 20, DemandMisses: 3, SeqMisses: 2, DiscMisses: 1}
	b := Metrics{Cycles: 5, Retired: 10, DemandMisses: 1, SeqMisses: 1}
	a.Add(&b)
	if a.Cycles != 15 || a.Retired != 30 || a.DemandMisses != 4 || a.SeqMisses != 3 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestMetricsDerived(t *testing.T) {
	m := Metrics{Cycles: 100, Retired: 150, CMALCovered: 30, CMALTotal: 60,
		DemandMisses: 30, SeqMisses: 20,
		StallICache: 5, StallFTQ: 3, StallBTB: 2, StallMispred: 7,
		LLCLatencySum: 500, LLCLatencyCnt: 10}
	if m.IPC() != 1.5 {
		t.Errorf("IPC = %v", m.IPC())
	}
	if m.CMAL() != 0.5 {
		t.Errorf("CMAL = %v", m.CMAL())
	}
	if m.FrontendStalls() != 10 {
		t.Errorf("frontend stalls = %d", m.FrontendStalls())
	}
	if m.SeqMissFraction() != 20.0/30 {
		t.Errorf("seq fraction = %v", m.SeqMissFraction())
	}
	if m.MPKI(30) != 200 {
		t.Errorf("MPKI = %v", m.MPKI(30))
	}
	if m.AvgLLCLatency() != 50 {
		t.Errorf("avg LLC latency = %v", m.AvgLLCLatency())
	}
	var zero Metrics
	if zero.IPC() != 0 || zero.CMAL() != 0 || zero.SeqMissFraction() != 0 ||
		zero.AvgLLCLatency() != 0 || zero.MPKI(1) != 0 {
		t.Error("zero-value metrics must not divide by zero")
	}
}
