package core

import (
	"testing"

	wl "dnc/internal/cfg"
	"dnc/internal/isa"
	"dnc/internal/llc"
	"dnc/internal/prefetch"
)

// Tests of the prefetch.Env capabilities the core exposes to designs.

func envCore(t *testing.T, cf Config) (*Core, *Uncore) {
	t.Helper()
	return newTestCore(t, cf, prefetch.NewBaseline(2048))
}

func TestEnvLookupCounting(t *testing.T) {
	c, _ := envCore(t, DefaultConfig())
	before := c.M.CacheLookups
	c.L1iContains(12345)
	c.L1iContains(12345)
	if c.M.CacheLookups != before+2 {
		t.Fatalf("lookups not counted: %d -> %d", before, c.M.CacheLookups)
	}
	// L1iLine is the metadata port, not a tag probe: not counted.
	before = c.M.CacheLookups
	c.L1iLine(12345)
	if c.M.CacheLookups != before {
		t.Fatal("L1iLine counted as a lookup")
	}
}

func TestEnvIssuePrefetchRules(t *testing.T) {
	c, _ := envCore(t, DefaultConfig())
	prog := wl.Generate(testWorkload())
	b := isa.BlockOf(prog.Image.Base)

	if !c.IssuePrefetch(b, false) {
		t.Fatal("first issue refused")
	}
	if c.IssuePrefetch(b, false) {
		t.Fatal("duplicate in-flight issue accepted")
	}
	if !c.InFlight(b) {
		t.Fatal("issued block not in flight")
	}
	// Out-of-image blocks are refused.
	if c.IssuePrefetch(isa.BlockOf(prog.Image.End())+1000, false) {
		t.Fatal("out-of-image prefetch accepted")
	}
	if c.M.PrefetchesIssued != 1 {
		t.Fatalf("issued = %d", c.M.PrefetchesIssued)
	}
}

func TestEnvIssuePrefetchPerfectL1i(t *testing.T) {
	cf := DefaultConfig()
	cf.PerfectL1i = true
	c, _ := envCore(t, cf)
	if c.IssuePrefetch(1, false) {
		t.Fatal("perfect L1i accepted a prefetch")
	}
}

func TestEnvPredecodeFixed(t *testing.T) {
	c, _ := envCore(t, DefaultConfig())
	prog := wl.Generate(testWorkload())
	// Find a block with at least one branch.
	first := isa.BlockOf(prog.Image.Base)
	for b := first; b < first+200; b++ {
		if brs := c.Predecode(b); len(brs) > 0 {
			// Every reported branch must decode as a branch at its offset.
			for _, br := range brs {
				got, ok := c.DecodeBranchAt(b, br.Offset)
				if !ok || got.Kind != br.Kind {
					t.Fatalf("predecode/decode disagree at block %d off %d", b, br.Offset)
				}
			}
			return
		}
	}
	t.Fatal("no branches found in 200 blocks")
}

func TestEnvPredecodeVariableNeedsBF(t *testing.T) {
	p := testWorkload()
	p.Mode = isa.Variable
	prog := wl.Generate(p)
	lcfg := llc.DefaultConfig()
	lcfg.DVEnabled = true
	uncore := NewUncore(lcfg)
	uncore.Preload(prog.Image)
	c := New(DefaultConfig(), wl.NewWalker(prog, 1), prog.Image,
		prefetch.NewBaseline(2048), uncore)

	b := isa.BlockOf(prog.Image.Base)
	// No footprint constructed yet: the pre-decoder is blind.
	if brs := c.Predecode(b); brs != nil {
		t.Fatalf("variable-mode predecode without BF returned %v", brs)
	}
	// After running, footprints exist for hot blocks and some predecodes
	// succeed.
	runCycles(c, 30000)
	found := false
	for blk := b; blk < b+2000 && !found; blk++ {
		if len(c.Predecode(blk)) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no block predecodable after BF construction")
	}
}

func TestEnvPredictTakenIsReadOnly(t *testing.T) {
	c, _ := envCore(t, DefaultConfig())
	pc := isa.Addr(0x1234)
	before := c.PredictTaken(pc)
	for i := 0; i < 100; i++ {
		if c.PredictTaken(pc) != before {
			t.Fatal("PredictTaken mutated predictor state")
		}
	}
}
