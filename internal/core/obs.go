package core

import (
	"dnc/internal/isa"
	"dnc/internal/obs"
)

// ObsHooks are the observability attachment points of one core. All fields
// are optional; the zero value disables everything and the fetch loop pays a
// single pointer test per cycle.
type ObsHooks struct {
	// Tracer receives stall spans, fill/prefetch events, and discontinuity
	// triggers for this core.
	Tracer *obs.Tracer
	// DemandLat and PrefetchLat observe L1i miss issue->fill latency, split
	// by who issued the request.
	DemandLat   *obs.Histogram
	PrefetchLat *obs.Histogram
}

// SetObs attaches observability hooks; pass the zero ObsHooks to detach.
func (c *Core) SetObs(h ObsHooks) {
	c.hooks = h
	c.trCause = obs.StallNone
	c.trStart = c.cycle
}

// emit records one tracer event for this core (no-op when tracing is off).
func (c *Core) emit(kind obs.EventKind, arg, dur uint64) {
	if c.hooks.Tracer == nil {
		return
	}
	c.hooks.Tracer.Emit(obs.Event{
		Cycle: c.cycle, Dur: dur, Arg: arg,
		Core: int16(c.cf.Tile), Kind: kind,
	})
}

// traceStall folds this cycle's attribution into the coalesced stall-run
// state: consecutive cycles with the same cause become one span, emitted when
// the cause changes. Only called when a tracer is attached.
func (c *Core) traceStall(cause obs.StallCause) {
	if cause == c.trCause {
		return
	}
	c.flushStallRun()
	c.trCause = cause
	c.trStart = c.cycle
}

// flushStallRun emits the open stall span, if any, ending at the current
// cycle.
func (c *Core) flushStallRun() {
	if c.trCause == obs.StallNone || c.hooks.Tracer == nil {
		return
	}
	c.hooks.Tracer.Emit(obs.Event{
		Cycle: c.trStart, Dur: c.cycle - c.trStart, Arg: uint64(c.trCause),
		Core: int16(c.cf.Tile), Kind: obs.EvStall,
	})
}

// FlushObs closes the open stall run; the runner calls it before exporting
// so an in-progress stall at end-of-run still appears in the trace.
func (c *Core) FlushObs() {
	c.flushStallRun()
	c.trCause = obs.StallNone
	c.trStart = c.cycle
}

// TraceDiscontinuity implements prefetch.TraceSink: designs report each
// discontinuity-triggered prefetch decision for the event trace.
func (c *Core) TraceDiscontinuity(b isa.BlockID) {
	c.emit(obs.EvDiscontinuity, uint64(b), 0)
}

// ROBOccupancy returns the current ROB entry count (occupancy gauge).
func (c *Core) ROBOccupancy() int { return c.robCount }
