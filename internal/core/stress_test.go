package core

import (
	"testing"

	"dnc/internal/prefetch"
)

// Failure injection: the simulator must stay live and self-consistent when
// its structures are starved far below realistic sizes.

func TestTinyMSHRFileStillProgresses(t *testing.T) {
	cf := DefaultConfig()
	cf.L1IMSHRs = 1 // prefetches almost never get a slot
	c, _ := newTestCore(t, cf, prefetch.NewNXL(8, 2048))
	runCycles(c, 20000)
	if c.M.Retired == 0 {
		t.Fatal("starved MSHR file deadlocked fetch")
	}
	// Demands always reserve a slot, so misses are still served.
	if c.M.DemandMisses == 0 {
		t.Fatal("no misses recorded")
	}
	// The prefetcher is throttled, not the demand stream.
	generous := DefaultConfig()
	g, _ := newTestCore(t, generous, prefetch.NewNXL(8, 2048))
	runCycles(g, 20000)
	if c.M.PrefetchesIssued >= g.M.PrefetchesIssued {
		t.Fatalf("1-MSHR core issued %d prefetches, >= 32-MSHR core's %d",
			c.M.PrefetchesIssued, g.M.PrefetchesIssued)
	}
}

func TestTinyROB(t *testing.T) {
	cf := DefaultConfig()
	cf.ROBEntries = 4
	c, _ := newTestCore(t, cf, prefetch.NewBaseline(2048))
	runCycles(c, 20000)
	if c.M.Retired == 0 {
		t.Fatal("tiny ROB deadlocked")
	}
	if c.M.StallBackend == 0 {
		t.Fatal("a 4-entry ROB must cause backend stalls")
	}
	full, _ := newTestCore(t, DefaultConfig(), prefetch.NewBaseline(2048))
	runCycles(full, 20000)
	if c.M.IPC() >= full.M.IPC() {
		t.Fatalf("tiny-ROB IPC %.3f >= full-ROB %.3f", c.M.IPC(), full.M.IPC())
	}
}

func TestNarrowFetch(t *testing.T) {
	cf := DefaultConfig()
	cf.FetchWidth = 1
	cf.RetireWidth = 1
	c, _ := newTestCore(t, cf, prefetch.NewBaseline(2048))
	runCycles(c, 20000)
	if c.M.Retired == 0 {
		t.Fatal("1-wide core deadlocked")
	}
	if c.M.IPC() > 1.0 {
		t.Fatalf("1-wide core IPC %.3f exceeds width", c.M.IPC())
	}
}

func TestZeroWrongPathBlocks(t *testing.T) {
	cf := DefaultConfig()
	cf.WrongPathBlocks = 0
	c, _ := newTestCore(t, cf, prefetch.NewBaseline(2048))
	runCycles(c, 20000)
	if c.M.WrongPathFetches != 0 {
		t.Fatalf("wrong-path fetches with depth 0: %d", c.M.WrongPathFetches)
	}
	if c.M.Retired == 0 {
		t.Fatal("no progress without wrong-path modelling")
	}
}

func TestHugePenalties(t *testing.T) {
	cf := DefaultConfig()
	cf.MispredictPenalty = 200
	cf.BTBMissPenaltyTaken = 200
	cf.BTBMissPenaltyDecode = 200
	c, _ := newTestCore(t, cf, prefetch.NewBaseline(2048))
	runCycles(c, 30000)
	if c.M.Retired == 0 {
		t.Fatal("huge redirect penalties deadlocked the core")
	}
	norm, _ := newTestCore(t, DefaultConfig(), prefetch.NewBaseline(2048))
	runCycles(norm, 30000)
	if c.M.IPC() >= norm.M.IPC() {
		t.Fatalf("200-cycle penalties did not hurt: %.3f >= %.3f",
			c.M.IPC(), norm.M.IPC())
	}
}

func TestStarvedProactiveQueues(t *testing.T) {
	cfg := prefetch.DefaultProactiveConfig()
	cfg.QueueDepth = 1
	cfg.WithBTBPrefetch = true
	c, _ := newTestCore(t, DefaultConfig(), prefetch.NewProactive(cfg))
	runCycles(c, 20000)
	if c.M.Retired == 0 {
		t.Fatal("1-entry proactive queues deadlocked")
	}
	d := c.Design().(*prefetch.Proactive)
	if s, di, r := d.QueueDrops(); s+di+r == 0 {
		t.Fatal("1-entry queues never overflowed in a miss-heavy run")
	}
}

func TestSmallL1i(t *testing.T) {
	cf := DefaultConfig()
	cf.L1ISizeBytes = 4 << 10 // 4 KB: extreme thrash
	c, _ := newTestCore(t, cf, prefetch.NewSN4L(16<<10, 2048))
	runCycles(c, 20000)
	if c.M.Retired == 0 {
		t.Fatal("4KB L1i deadlocked")
	}
	big, _ := newTestCore(t, DefaultConfig(), prefetch.NewSN4L(16<<10, 2048))
	runCycles(big, 20000)
	if c.M.MPKI(c.M.DemandMisses) <= big.M.MPKI(big.M.DemandMisses) {
		t.Fatal("4KB L1i did not miss more than 32KB")
	}
}
