package core

import (
	"fmt"
	"sort"

	"dnc/internal/blockmap"
	"dnc/internal/cache"
	wl "dnc/internal/cfg"
	"dnc/internal/checkpoint"
	"dnc/internal/isa"
)

// Snapshot serialises the core's full architectural and timing state: the
// predictors, both L1s, the MSHR file, the prefetch buffer, fetch state, the
// ROB ring, the metric counters, and the attached design. Snapshots are
// taken between Tick calls, so the per-cycle bookkeeping fields (delivered,
// transitions, cycleCause) are ephemeral and excluded, as are the
// observability hooks — diagnostics, not architectural state.
func (c *Core) Snapshot(e *checkpoint.Encoder) {
	e.Begin("core")
	c.tage.Snapshot(e)
	c.ras.Snapshot(e)
	c.l1i.Snapshot(e)
	c.l1d.Snapshot(e)
	c.mshr.Snapshot(e)

	e.Bool(c.pfb != nil)
	if c.pfb != nil {
		live := c.pfbLive()
		e.Int(len(live))
		for _, b := range live {
			lat, _ := c.pfb.Get(b)
			e.U64(uint64(b))
			e.U64(lat)
		}
	}

	snapshotBlockTab(e, &c.prefLat, func(lat uint64) { e.U64(lat) })

	e.Bool(c.bfCache != nil)
	if c.bfCache != nil {
		snapshotBlockTab(e, c.bfCache, func(bf isa.BF) { e.U32(bf.Pack()) })
	}

	e.U64(c.cycle)
	encodeStep(e, &c.step)
	e.Bool(c.haveStep)
	e.U64(uint64(c.last2[0]))
	e.U64(uint64(c.last2[1]))
	e.U64(uint64(c.curBlock))
	e.Bool(c.haveCur)
	e.Bool(c.gateDone)
	e.Bool(c.waiting)
	e.U64(uint64(c.waitBlk))
	e.U64(c.stallUntil)
	e.Bool(c.stallBTB)

	e.Int(len(c.rob))
	e.Int(c.robHead)
	e.Int(c.robCount)
	for i := 0; i < c.robCount; i++ {
		en := &c.rob[(c.robHead+i)%len(c.rob)]
		e.U64(en.complete)
		e.U64(uint64(en.inst.PC))
		e.U8(en.inst.Size)
		e.U8(uint8(en.inst.Kind))
		e.U64(uint64(en.inst.Target))
		e.Bool(en.taken)
		e.U64(uint64(en.target))
	}

	e.Bool(c.startup)
	e.U64(c.totalRetired)
	e.U64(c.totalDelivered)
	e.Struct(&c.M)
	c.design.Snapshot(e)
	e.End()
}

// Restore loads state written by Snapshot into an identically configured
// core (same design, geometry, and workload binding).
func (c *Core) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("core"); err != nil {
		return err
	}
	if err := c.tage.Restore(d); err != nil {
		return err
	}
	if err := c.ras.Restore(d); err != nil {
		return err
	}
	if err := c.l1i.Restore(d); err != nil {
		return err
	}
	if err := c.l1d.Restore(d); err != nil {
		return err
	}
	if err := c.mshr.Restore(d); err != nil {
		return err
	}

	hasPFB := d.Bool()
	if d.Err() == nil && hasPFB != (c.pfb != nil) {
		return fmt.Errorf("%w: snapshot prefetch-buffer presence %v, machine has %v",
			checkpoint.ErrCorrupt, hasPFB, c.pfb != nil)
	}
	if hasPFB {
		n := d.Count(16)
		if d.Err() == nil && n > c.cf.PrefetchBufferEntries {
			return fmt.Errorf("%w: prefetch buffer holds %d blocks over capacity %d",
				checkpoint.ErrCorrupt, n, c.cf.PrefetchBufferEntries)
		}
		c.pfb.Clear()
		c.pfbOrder = c.pfbOrder[:0]
		c.pfbHead = 0
		for i := 0; i < n; i++ {
			b := isa.BlockID(d.U64())
			c.pfb.Put(b, d.U64())
			c.pfbOrder = append(c.pfbOrder, b)
		}
	}

	if err := restoreBlockTab(d, &c.prefLat, func() uint64 { return d.U64() }); err != nil {
		return err
	}

	hasBF := d.Bool()
	if d.Err() == nil && hasBF != (c.bfCache != nil) {
		return fmt.Errorf("%w: snapshot footprint-cache presence %v, machine has %v",
			checkpoint.ErrCorrupt, hasBF, c.bfCache != nil)
	}
	if hasBF {
		if err := restoreBlockTab(d, c.bfCache, func() isa.BF { return isa.UnpackBF(d.U32()) }); err != nil {
			return err
		}
	}

	c.cycle = d.U64()
	decodeStep(d, &c.step)
	c.haveStep = d.Bool()
	c.last2[0] = isa.Addr(d.U64())
	c.last2[1] = isa.Addr(d.U64())
	c.curBlock = isa.BlockID(d.U64())
	c.haveCur = d.Bool()
	c.gateDone = d.Bool()
	c.waiting = d.Bool()
	c.waitBlk = isa.BlockID(d.U64())
	c.stallUntil = d.U64()
	c.stallBTB = d.Bool()

	robLen := d.Int()
	if d.Err() == nil && robLen != len(c.rob) {
		return fmt.Errorf("%w: ROB has %d entries in snapshot, machine has %d",
			checkpoint.ErrCorrupt, robLen, len(c.rob))
	}
	head, count := d.Int(), d.Int()
	if d.Err() == nil && (head < 0 || head >= robLen || count < 0 || count > robLen) {
		return fmt.Errorf("%w: ROB ring position head=%d count=%d out of range",
			checkpoint.ErrCorrupt, head, count)
	}
	if err := d.Err(); err != nil {
		return err
	}
	c.robHead, c.robCount = head, count
	for i := range c.rob {
		c.rob[i] = robEntry{}
	}
	for i := 0; i < count; i++ {
		en := &c.rob[(head+i)%robLen]
		en.complete = d.U64()
		en.inst.PC = isa.Addr(d.U64())
		en.inst.Size = d.U8()
		en.inst.Kind = isa.Kind(d.U8())
		en.inst.Target = isa.Addr(d.U64())
		en.taken = d.Bool()
		en.target = isa.Addr(d.U64())
	}

	c.startup = d.Bool()
	c.totalRetired = d.U64()
	c.totalDelivered = d.U64()
	if err := d.Struct(&c.M); err != nil {
		return err
	}
	if err := c.design.Restore(d); err != nil {
		return err
	}
	// Fast-forward state is not checkpointed: the first full Tick after a
	// restore recomputes it, and every skipped cycle it stood for is
	// equivalent to a full stalled Tick, so resumed runs stay bit-exact.
	c.idleWake = 0
	return d.End()
}

func encodeStep(e *checkpoint.Encoder, s *wl.Step) {
	e.U64(uint64(s.Inst.PC))
	e.U8(s.Inst.Size)
	e.U8(uint8(s.Inst.Kind))
	e.U64(uint64(s.Inst.Target))
	e.Bool(s.Taken)
	e.U64(uint64(s.NextPC))
	e.U64(uint64(s.TargetPC))
	e.U64(uint64(s.DataAddr))
}

func decodeStep(d *checkpoint.Decoder, s *wl.Step) {
	s.Inst.PC = isa.Addr(d.U64())
	s.Inst.Size = d.U8()
	s.Inst.Kind = isa.Kind(d.U8())
	s.Inst.Target = isa.Addr(d.U64())
	s.Taken = d.Bool()
	s.NextPC = isa.Addr(d.U64())
	s.TargetPC = isa.Addr(d.U64())
	s.DataAddr = isa.Addr(d.U64())
}

// snapshotBlockTab writes a block-keyed table in ascending key order (table
// iteration order is history-dependent; the encoding must not be).
func snapshotBlockTab[V any](e *checkpoint.Encoder, m *blockmap.Map[V], enc func(V)) {
	keys := m.AppendKeys(make([]isa.BlockID, 0, m.Len()))
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.Int(len(keys))
	for _, b := range keys {
		e.U64(uint64(b))
		v, _ := m.Get(b)
		enc(v)
	}
}

func restoreBlockTab[V any](d *checkpoint.Decoder, m *blockmap.Map[V], dec func() V) error {
	n := d.Count(9)
	m.Clear()
	for i := 0; i < n; i++ {
		b := isa.BlockID(d.U64())
		m.Put(b, dec())
	}
	return d.Err()
}

// Audit checks the core's structural invariants at a tick boundary. Each
// violation is returned as its own error:
//
//   - ROB conservation: every delivered instruction is either retired or
//     still occupies a ROB slot (totalDelivered - totalRetired == robCount),
//     and the ring position is within bounds;
//   - stall-attribution conservation: every measured cycle is either busy
//     (delivered at least one instruction) or charged to exactly one stall
//     cause (BusyCycles + StallCycles == Cycles);
//   - the prefetch buffer's FIFO order and map agree, occupancy is within
//     capacity, and no buffered block is simultaneously resident in the L1i;
//   - every remembered prefetch-fill latency belongs to a resident,
//     still-flagged L1i line;
//   - MSHR invariants (occupancy, no leaked entries), plus exclusivity: an
//     in-flight miss must not already be resident in the L1i.
func (c *Core) Audit() []error {
	var errs []error

	if got := c.totalDelivered - c.totalRetired; got != uint64(c.robCount) {
		errs = append(errs, fmt.Errorf("core %d: ROB conservation broken: delivered %d - retired %d = %d in flight, ROB holds %d",
			c.cf.Tile, c.totalDelivered, c.totalRetired, got, c.robCount))
	}
	if c.robHead < 0 || c.robHead >= len(c.rob) || c.robCount < 0 || c.robCount > len(c.rob) {
		errs = append(errs, fmt.Errorf("core %d: ROB ring position head=%d count=%d out of range (capacity %d)",
			c.cf.Tile, c.robHead, c.robCount, len(c.rob)))
	}

	if got := c.M.BusyCycles + c.M.StallCycles(); got != c.M.Cycles {
		errs = append(errs, fmt.Errorf("core %d: stall attribution broken: busy %d + stalled %d = %d cycles, measured %d",
			c.cf.Tile, c.M.BusyCycles, c.M.StallCycles(), got, c.M.Cycles))
	}

	if c.pfb != nil {
		if c.pfb.Len() != len(c.pfbLive()) {
			errs = append(errs, fmt.Errorf("core %d: prefetch buffer map holds %d blocks but FIFO order lists %d",
				c.cf.Tile, c.pfb.Len(), len(c.pfbLive())))
		}
		if len(c.pfbLive()) > c.cf.PrefetchBufferEntries {
			errs = append(errs, fmt.Errorf("core %d: prefetch buffer holds %d blocks over capacity %d",
				c.cf.Tile, len(c.pfbLive()), c.cf.PrefetchBufferEntries))
		}
		for _, b := range c.pfbLive() {
			if !c.pfb.Contains(b) {
				errs = append(errs, fmt.Errorf("core %d: prefetch buffer FIFO lists block %#x missing from the map",
					c.cf.Tile, uint64(b)))
			}
			if c.l1i.Contains(b) {
				errs = append(errs, fmt.Errorf("core %d: block %#x resident in both prefetch buffer and L1i",
					c.cf.Tile, uint64(b)))
			}
		}
	}

	prefBlocks := c.prefLat.AppendKeys(make([]isa.BlockID, 0, c.prefLat.Len()))
	sort.Slice(prefBlocks, func(i, j int) bool { return prefBlocks[i] < prefBlocks[j] })
	for _, b := range prefBlocks {
		line := c.l1i.Line(b)
		switch {
		case line == nil:
			errs = append(errs, fmt.Errorf("core %d: prefetch latency remembered for block %#x not resident in L1i",
				c.cf.Tile, uint64(b)))
		case line.Flags&cache.FlagPrefetched == 0:
			errs = append(errs, fmt.Errorf("core %d: prefetch latency remembered for block %#x whose prefetched flag was consumed",
				c.cf.Tile, uint64(b)))
		}
	}

	errs = append(errs, c.mshr.Audit(c.cycle)...)
	for _, m := range c.mshr.All() {
		if c.l1i.Contains(m.Block) {
			errs = append(errs, fmt.Errorf("core %d: block %#x both resident in L1i and in flight in an MSHR",
				c.cf.Tile, uint64(m.Block)))
		}
	}

	if aud, ok := c.design.(interface{ Audit() []error }); ok {
		errs = append(errs, aud.Audit()...)
	}
	return errs
}
