// Package core implements the simulated out-of-order core: a three-stage
// fetch frontend with FTQ gating, conventional or design-supplied BTB
// organizations, TAGE direction prediction and a return address stack, an
// L1i with MSHRs and optional prefetch buffer, a simplified 3-wide backend
// with a 128-entry ROB and an L1d, and full stall-cycle attribution
// (instruction-miss, empty-FTQ, BTB-miss, misprediction, backend).
//
// The simulator is timing-directed and trace-driven: the committed path
// comes from the workload walker; branch mispredictions and BTB misses
// charge redirect penalties and inject wrong-path fetches that pollute the
// caches and consume bandwidth, the first-order effects the paper models.
package core

import (
	"dnc/internal/blockmap"
	"dnc/internal/bpred"
	"dnc/internal/cache"
	wl "dnc/internal/cfg"
	"dnc/internal/isa"
	"dnc/internal/obs"
	"dnc/internal/prefetch"
)

// Config parameterizes one core (Table III defaults).
type Config struct {
	Tile        int
	FetchWidth  int
	RetireWidth int
	ROBEntries  int
	// PipelineDepth is the fetch-to-execute fill depth used by the
	// completion-time model (3 frontend + 12 backend stages are abstracted
	// into this plus the per-instruction execution latency).
	PipelineDepth uint64

	L1ISizeBytes, L1IWays int
	L1DSizeBytes, L1DWays int
	L1IMSHRs              int
	L1DLatency            uint64

	// MispredictPenalty is the redirect cost of branches resolved in the
	// backend (paper: at least six cycles).
	MispredictPenalty uint64
	// BTBMissPenaltyTaken is charged when a taken conditional branch was
	// unknown to the BTB (resolved at execute).
	BTBMissPenaltyTaken uint64
	// BTBMissPenaltyDecode is charged when an unconditional branch or
	// return is discovered at decode (shallower redirect).
	BTBMissPenaltyDecode uint64

	RASDepth int
	// WrongPathBlocks is how many sequential wrong-path blocks fetch
	// touches during a redirect shadow.
	WrongPathBlocks int

	// PerfectL1i makes every instruction fetch hit (Figure 17 reference).
	PerfectL1i bool
	// PerfectBTB suppresses all BTB-miss penalties (the BTB-infinity
	// reference point).
	PerfectBTB bool

	// PrefetchBufferEntries, when nonzero, adds a fully associative L1i
	// prefetch buffer; buffered prefetch fills land there and promote to
	// the L1i on demand (Shotgun's 64-entry buffer).
	PrefetchBufferEntries int

	TAGE bpred.TAGEConfig
}

// DefaultConfig matches the paper's per-core parameters.
func DefaultConfig() Config {
	return Config{
		FetchWidth:           3,
		RetireWidth:          3,
		ROBEntries:           128,
		PipelineDepth:        15,
		L1ISizeBytes:         32 << 10,
		L1IWays:              8,
		L1DSizeBytes:         32 << 10,
		L1DWays:              8,
		L1IMSHRs:             32,
		L1DLatency:           4,
		MispredictPenalty:    8,
		BTBMissPenaltyTaken:  8,
		BTBMissPenaltyDecode: 6,
		RASDepth:             32,
		WrongPathBlocks:      2,
		TAGE:                 bpred.DefaultTAGEConfig(),
	}
}

type robEntry struct {
	complete uint64
	inst     isa.Inst
	taken    bool
	target   isa.Addr
}

// Core is one simulated tile's processor.
type Core struct {
	cf     Config
	design prefetch.Design
	stream wl.Stream
	image  *isa.Image
	uncore *Uncore
	tage   *bpred.TAGE
	ras    *bpred.RAS
	l1i    *cache.Cache
	l1d    *cache.Cache
	mshr   *cache.MSHRFile

	// Prefetch buffer (optional): block -> fill latency, with
	// pfbOrder[pfbHead:] tracking FIFO age oldest-first. Eviction advances
	// the head; the slice compacts in place once the dead prefix reaches
	// capacity, so inserts are amortized O(1) and never allocate after the
	// one-time 2x-capacity reservation.
	pfb      *blockmap.Map[uint64]
	pfbOrder []isa.BlockID
	pfbHead  int

	// prefLat remembers the fill latency of prefetched L1i lines (CMAL).
	prefLat blockmap.Map[uint64]

	// Branch-footprint construction and caching (variable-length ISA).
	bfCache *blockmap.Map[isa.BF]

	cycle uint64

	// Idle-cycle fast-forward state (not checkpointed; recomputed by the
	// first full Tick after a restore). While cycle < idleWake, every Tick
	// is a proven pure stall: it charges ffCause and advances the clock,
	// mutating nothing else. See computeIdleWake for the proof obligations.
	idleWake uint64
	ffCause  obs.StallCause
	// qz is the design's quiescence probe (nil disables fast-forward for
	// designs without one); noFF force-disables the fast path (the
	// metamorphic reference configuration).
	qz   prefetch.Quiescer
	noFF bool

	// Fetch state.
	step     wl.Step
	haveStep bool
	last2    [2]isa.Addr
	curBlock isa.BlockID
	haveCur  bool
	gateDone bool
	waiting  bool
	waitBlk  isa.BlockID

	stallUntil uint64
	stallBTB   bool // cause of the active redirect bubble

	// ROB ring buffer.
	rob      []robEntry
	robHead  int
	robCount int

	// Per-cycle bookkeeping.
	delivered   int
	transitions int            // demand block transitions this cycle (one L1i port)
	cycleCause  obs.StallCause // what to charge if nothing delivered this cycle

	startup bool // before first delivery

	// Observability hooks (nil when disabled) and the coalesced stall-run
	// tracer state; see obs.go.
	hooks   ObsHooks
	trCause obs.StallCause
	trStart uint64

	// uncoreGate, when set, is a rendezvous the parallel engine installs: it
	// is invoked once per full Tick, immediately before the core's first
	// shared-fabric touch of that tick (Uncore.Access, LLC.LoadBF/StoreBF),
	// and blocks until every lower-tile core has finished this cycle and
	// every higher-tile core has finished the previous one — reproducing the
	// serial tile-order interleaving exactly. Ticks that never touch the
	// uncore never pay the rendezvous. gatedThisTick collapses repeated
	// touches within one tick into one rendezvous.
	uncoreGate    func(tile int, cycle uint64)
	gatedThisTick bool

	// totalRetired counts retirements monotonically across metric resets
	// (the watchdog's progress counter; see Progress).
	totalRetired uint64
	// totalDelivered counts ROB insertions monotonically; together with
	// totalRetired it closes the ROB conservation equation checked by Audit.
	totalDelivered uint64

	// M collects measurement-window metrics.
	M Metrics
}

// New wires a core to its instruction stream (a workload walker or a trace
// replayer), design, and uncore.
func New(cf Config, stream wl.Stream, image *isa.Image, design prefetch.Design, uncore *Uncore) *Core {
	c := &Core{
		cf:      cf,
		design:  design,
		stream:  stream,
		image:   image,
		uncore:  uncore,
		tage:    bpred.NewTAGE(cf.TAGE),
		ras:     bpred.NewRAS(cf.RASDepth),
		l1i:     cache.New(cf.L1ISizeBytes, cf.L1IWays),
		l1d:     cache.New(cf.L1DSizeBytes, cf.L1DWays),
		mshr:    cache.NewMSHRFile(cf.L1IMSHRs),
		rob:     make([]robEntry, cf.ROBEntries),
		startup: true,
	}
	// prefLat is bounded by resident L1i lines still holding their
	// prefetched flag; presizing to the line count makes it allocation-free.
	c.prefLat = *blockmap.New[uint64](cf.L1ISizeBytes / isa.BlockBytes)
	if cf.PrefetchBufferEntries > 0 {
		c.pfb = blockmap.New[uint64](cf.PrefetchBufferEntries)
		c.pfbOrder = make([]isa.BlockID, 0, 2*cf.PrefetchBufferEntries)
	}
	if image.Mode == isa.Variable {
		c.bfCache = blockmap.New[isa.BF](1024)
	}
	c.qz, _ = design.(prefetch.Quiescer)
	design.Bind(c)
	return c
}

// Design returns the attached design.
func (c *Core) Design() prefetch.Design { return c.design }

// L1I exposes the instruction cache (harness hooks).
func (c *Core) L1I() *cache.Cache { return c.l1i }

// MSHRs exposes the L1i miss-status holding registers (harness hooks and
// fault-injection tests).
func (c *Core) MSHRs() *cache.MSHRFile { return c.mshr }

// ResetMetrics zeroes the measurement counters (end of warm-up) and restarts
// the stall-run tracer so exported spans never straddle the window boundary.
func (c *Core) ResetMetrics() {
	c.M = Metrics{}
	c.trCause = obs.StallNone
	c.trStart = c.cycle
}

// ---- prefetch.Env implementation ----

// Cycle implements prefetch.Env.
func (c *Core) Cycle() uint64 { return c.cycle }

// L1iContains implements prefetch.Env.
func (c *Core) L1iContains(b isa.BlockID) bool {
	c.M.CacheLookups++
	if c.l1i.Contains(b) {
		return true
	}
	if c.pfb != nil {
		return c.pfb.Contains(b)
	}
	return false
}

// L1iLine implements prefetch.Env.
func (c *Core) L1iLine(b isa.BlockID) *cache.Line { return c.l1i.Line(b) }

// InFlight implements prefetch.Env.
func (c *Core) InFlight(b isa.BlockID) bool {
	_, ok := c.mshr.Lookup(b)
	return ok
}

// IssuePrefetch implements prefetch.Env.
func (c *Core) IssuePrefetch(b isa.BlockID, buffered bool) bool {
	if c.cf.PerfectL1i {
		return false
	}
	if c.l1i.Contains(b) {
		return false
	}
	if c.mshr.Full() {
		// A viable prefetch lost to MSHR pressure — the drop the tracer
		// distinguishes from the benign already-present filters above.
		c.emit(obs.EvPrefetchDrop, uint64(b), 0)
		return false
	}
	if _, ok := c.mshr.Lookup(b); ok {
		return false
	}
	if c.pfb != nil && c.pfb.Contains(b) {
		return false
	}
	if !c.image.ContainsBlock(b) {
		// Beyond the code image: a real fetch would return garbage; the
		// request still costs bandwidth.
		return false
	}
	c.enterUncore()
	ready, _ := c.uncore.Access(c.cf.Tile, b, c.cycle, true)
	c.M.ExtRequests++
	c.M.LLCLatencySum += ready - c.cycle
	c.M.LLCLatencyCnt++
	m := c.mshr.Alloc(b, c.cycle, ready, true)
	if m == nil {
		c.emit(obs.EvPrefetchDrop, uint64(b), 0)
		return false
	}
	m.Buffered = buffered
	c.M.PrefetchesIssued++
	c.emit(obs.EvPrefetchIssue, uint64(b), ready-c.cycle)
	return true
}

// Predecode implements prefetch.Env.
func (c *Core) Predecode(b isa.BlockID) []isa.Branch {
	if c.image.Mode == isa.Fixed {
		return isa.PredecodeBlock(c.image, b)
	}
	// Variable-length ISA: boundaries come from the virtualized branch
	// footprint fetched with the block (or read from the DV-LLC).
	bf, ok := c.bfCache.Get(b)
	if !ok {
		c.enterUncore()
		bf, ok = c.uncore.LLC.LoadBF(b)
		if !ok {
			return nil
		}
	}
	var out []isa.Branch
	for _, off := range bf.Offsets() {
		if br, okDec := isa.DecodeBranchAt(c.image, b, off); okDec {
			out = append(out, br)
		}
	}
	return out
}

// DecodeBranchAt implements prefetch.Env.
func (c *Core) DecodeBranchAt(b isa.BlockID, off uint8) (isa.Branch, bool) {
	return isa.DecodeBranchAt(c.image, b, off)
}

// PredictTaken implements prefetch.Env.
func (c *Core) PredictTaken(pc isa.Addr) bool { return c.tage.Predict(pc) }

// ---- simulation ----

// Tick advances the core one cycle. Cores are ticked in tile order by the
// runner, making shared-fabric contention deterministic.
func (c *Core) Tick() {
	if c.cycle < c.idleWake {
		// Pure-stall fast path: computeIdleWake proved that every cycle up
		// to idleWake charges ffCause and mutates nothing else, so the full
		// fetch/retire/design machinery is skipped bit-exactly.
		c.M.chargeStall(c.ffCause)
		if c.hooks.Tracer != nil {
			c.traceStall(c.ffCause)
		}
		c.cycle++
		c.M.Cycles++
		return
	}

	c.gatedThisTick = false
	c.processFills()
	c.retire()

	c.delivered = 0
	c.transitions = 0
	c.cycleCause = obs.StallNone
	for i := 0; i < c.cf.FetchWidth; i++ {
		if !c.fetchOne() {
			break
		}
	}
	if c.delivered == 0 {
		cause := c.cycleCause
		if cause == obs.StallNone && c.startup {
			cause = obs.StallStartup
		}
		c.M.chargeStall(cause)
		if c.hooks.Tracer != nil {
			c.traceStall(cause)
		}
	} else {
		c.M.BusyCycles++
		if c.hooks.Tracer != nil {
			c.traceStall(obs.StallNone)
		}
	}
	c.M.DeliveredSlots += uint64(c.delivered)

	c.design.Tick()
	c.cycle++
	c.M.Cycles++

	c.computeIdleWake()
}

// computeIdleWake decides, at the end of a full Tick, whether the cycles
// ahead are provably pure stalls, and if so how far. A cycle is a pure
// stall when Tick would only charge one stall cause and advance the clock;
// that holds exactly when, at the start of the cycle:
//
//   - nothing delivered last cycle and the charged cause was one of
//     icache-wait, redirect bubble (mispredict or BTB), or backend (ROB
//     full). The empty-FTQ cause is excluded: FTQGate is re-consulted every
//     stalled cycle and may mutate design state;
//   - the design's Tick is quiescent (Quiescer): it would mutate no state
//     and probe nothing (probes count cache lookups);
//   - no MSHR fill is due, no ROB head completes (retirement mutates
//     metrics and calls design hooks), and no redirect bubble expires
//     before the cycle. All fetch-side stall checks then re-derive the
//     identical cause from identical state — the stalled fetchOne path
//     reads (robCount, stallUntil, l1i residency) and mutates nothing, and
//     never draws from the instruction stream (a pending step is always
//     held while stalled).
//
// The wakeup is the earliest of those three event times; idleWake is left
// at zero (no fast path) when any obligation fails. The window is bounded
// by component latencies (redirect bubbles and LLC/DRAM round trips), so
// the livelock watchdog's cadence is unaffected.
func (c *Core) computeIdleWake() {
	c.idleWake = 0
	if c.noFF || c.delivered != 0 {
		return
	}
	cause := c.cycleCause
	switch cause {
	case obs.StallICache, obs.StallMispred, obs.StallBTB, obs.StallBackend:
	default:
		return
	}
	if c.qz == nil || !c.qz.Quiescent() {
		return
	}
	// c.cycle has already advanced past the tick that charged cause, so all
	// comparisons below ask about the NEXT tick. A redirect-bubble cause is
	// only re-derived while the bubble is live (fetchOne stalls on
	// cycle < stallUntil); if the bubble has expired for the next tick,
	// fetch resumes and that tick must run in full.
	if cause == obs.StallMispred || cause == obs.StallBTB {
		if c.stallUntil <= c.cycle {
			return
		}
	}
	wake := ^uint64(0)
	if c.robCount > 0 {
		wake = c.rob[c.robHead].complete
	}
	if er, ok := c.mshr.EarliestReady(); ok && er < wake {
		wake = er
	}
	if c.cycle < c.stallUntil && c.stallUntil < wake {
		wake = c.stallUntil
	}
	if wake == ^uint64(0) || wake <= c.cycle {
		return
	}
	c.idleWake = wake
	c.ffCause = cause
}

// IdleWake returns the cycle of the core's next required full Tick, or 0
// when the next Tick cannot be skipped. While nonzero, every Tick before
// the returned cycle is a pure stall charging a fixed cause, which lets the
// runner advance the whole machine in one jump (FastForward).
func (c *Core) IdleWake() uint64 { return c.idleWake }

// FastForward advances the core n cycles through a pure-stall window in one
// step, bit-exact with n individual Ticks. The caller must ensure
// Cycle()+n <= IdleWake().
func (c *Core) FastForward(n uint64) {
	c.M.chargeStallN(c.ffCause, n)
	if c.hooks.Tracer != nil {
		// Open (or extend) the coalesced stall span exactly as the first
		// skipped cycle's Tick would; the span closes at the next cause
		// change, so the trace bytes cannot tell the jump happened.
		c.traceStall(c.ffCause)
	}
	c.cycle += n
	c.M.Cycles += n
}

// SetFastForward enables or disables the idle-cycle fast path (enabled by
// default). The disabled configuration is the metamorphic reference: it
// executes every cycle through the full tick machinery.
func (c *Core) SetFastForward(on bool) {
	c.noFF = !on
	if !on {
		c.idleWake = 0
	}
}

// SetUncoreGate installs (or removes, with nil) the parallel engine's
// shared-fabric rendezvous. See the uncoreGate field for the contract. The
// gate must be installed only while the machine is quiescent (between
// windows or before the first Tick).
func (c *Core) SetUncoreGate(gate func(tile int, cycle uint64)) {
	c.uncoreGate = gate
}

// enterUncore is called before every shared-fabric touch inside Tick. Serial
// engines pay one nil test; under the parallel engine the first touch of a
// tick blocks until the tile-order rendezvous admits this core.
func (c *Core) enterUncore() {
	if c.uncoreGate != nil && !c.gatedThisTick {
		c.gatedThisTick = true
		c.uncoreGate(c.cf.Tile, c.cycle)
	}
}

// processFills applies completed misses. Ready returns entry copies (the
// table slots may be reused by prefetches the design issues from OnFill),
// so each original is freed before its fill is applied.
func (c *Core) processFills() {
	for _, m := range c.mshr.Ready(c.cycle) {
		c.mshr.Free(m.Block)
		isPrefetch := m.Prefetch && !m.Demanded
		if isPrefetch {
			c.hooks.PrefetchLat.Observe(m.Latency())
			c.emit(obs.EvPrefetchFill, uint64(m.Block), m.Latency())
		} else {
			c.hooks.DemandLat.Observe(m.Latency())
			c.emit(obs.EvDemandFill, uint64(m.Block), m.Latency())
		}
		if isPrefetch && m.Buffered && c.pfb != nil {
			c.pfbInsert(m.Block, m.Latency())
		} else {
			line, ev, evicted := c.l1i.Insert(m.Block)
			if evicted {
				if ev.Flags&cache.FlagPrefetched != 0 {
					c.M.UselessEvicts++
				}
				c.prefLat.Delete(ev.Block)
				c.design.OnEvict(ev)
			}
			if isPrefetch {
				line.Flags |= cache.FlagPrefetched
				c.prefLat.Put(m.Block, m.Latency())
				c.M.PrefetchFills++
			}
		}
		if c.bfCache != nil {
			c.enterUncore()
			if bf, ok := c.uncore.LLC.LoadBF(m.Block); ok {
				c.bfCache.Put(m.Block, bf)
			}
		}
		c.design.OnFill(m.Block, isPrefetch)
		if c.waiting && c.waitBlk == m.Block {
			c.waiting = false
		}
	}
}

// pfbLive returns the buffer's FIFO order, oldest first.
func (c *Core) pfbLive() []isa.BlockID { return c.pfbOrder[c.pfbHead:] }

// pfbInsert adds a block to the FIFO prefetch buffer.
func (c *Core) pfbInsert(b isa.BlockID, lat uint64) {
	if c.pfb.Contains(b) {
		return
	}
	if len(c.pfbOrder)-c.pfbHead >= c.cf.PrefetchBufferEntries {
		old := c.pfbOrder[c.pfbHead]
		c.pfbHead++
		c.pfb.Delete(old)
		c.M.UselessEvicts++
	}
	if c.pfbHead >= c.cf.PrefetchBufferEntries {
		// Compact the dead prefix so the backing array stays at 2x capacity.
		n := copy(c.pfbOrder, c.pfbOrder[c.pfbHead:])
		c.pfbOrder = c.pfbOrder[:n]
		c.pfbHead = 0
	}
	c.pfb.Put(b, lat)
	c.pfbOrder = append(c.pfbOrder, b)
	c.M.PrefetchFills++
}

// pfbTake removes and returns a block's prefetch-buffer entry.
func (c *Core) pfbTake(b isa.BlockID) (uint64, bool) {
	lat, ok := c.pfb.Get(b)
	if !ok {
		return 0, false
	}
	c.pfb.Delete(b)
	live := c.pfbLive()
	for i, x := range live {
		if x == b {
			copy(live[i:], live[i+1:])
			c.pfbOrder = c.pfbOrder[:len(c.pfbOrder)-1]
			break
		}
	}
	return lat, true
}

// retire commits finished ROB entries.
func (c *Core) retire() {
	for n := 0; n < c.cf.RetireWidth && c.robCount > 0; n++ {
		e := &c.rob[c.robHead]
		if e.complete > c.cycle {
			return
		}
		c.M.Retired++
		c.totalRetired++
		c.design.OnRetire(e.inst, e.taken, e.target)
		if c.bfCache != nil && e.inst.Kind.IsBranch() {
			c.recordBF(e.inst)
		}
		c.robHead = (c.robHead + 1) % len(c.rob)
		c.robCount--
	}
}

// recordBF folds a committed branch into its block's branch footprint and
// writes it through to the DV-LLC (variable-length ISA support).
func (c *Core) recordBF(inst isa.Inst) {
	b := isa.BlockOf(inst.PC)
	bf, _ := c.bfCache.Get(b)
	bf.Add(uint8(isa.ByteOffset(inst.PC)))
	c.bfCache.Put(b, bf)
	c.enterUncore()
	c.uncore.LLC.StoreBF(b, bf)
}

func (c *Core) robFull() bool { return c.robCount == len(c.rob) }

// fetchOne tries to deliver one instruction; it returns false when fetch
// must stop for this cycle.
func (c *Core) fetchOne() bool {
	if c.robFull() {
		c.cycleCause = obs.StallBackend
		return false
	}
	if c.cycle < c.stallUntil {
		if c.stallBTB {
			c.cycleCause = obs.StallBTB
		} else {
			c.cycleCause = obs.StallMispred
		}
		return false
	}
	if !c.haveStep {
		c.stream.Next(&c.step)
		c.haveStep = true
	}
	pc := c.step.Inst.PC
	b := isa.BlockOf(pc)

	if !c.haveCur || b != c.curBlock {
		// The fetch unit performs one demand I-cache access per cycle:
		// crossing into a second new block waits for the next cycle.
		if c.transitions >= 1 {
			return false
		}
		if !c.transition(pc, b) {
			return false
		}
		c.transitions++
	}
	c.deliver()
	return true
}

// transition performs the demand block change: FTQ gating, cache access,
// miss handling. It returns true when fetch may proceed into the block.
func (c *Core) transition(pc isa.Addr, b isa.BlockID) bool {
	if c.waiting {
		if c.waitBlk != b {
			c.waiting = false // stale wait after a path change
		} else if c.l1i.Contains(b) {
			c.waiting = false
			c.finishTransition(b)
			return true
		} else {
			c.cycleCause = obs.StallICache
			return false
		}
	}
	if !c.gateDone {
		if !c.design.FTQGate(pc) {
			c.cycleCause = obs.StallFTQ
			return false
		}
		c.gateDone = true
	}
	if c.demandAccess(b) {
		c.finishTransition(b)
		return true
	}
	c.waiting = true
	c.waitBlk = b
	c.cycleCause = obs.StallICache
	return false
}

func (c *Core) finishTransition(b isa.BlockID) {
	c.curBlock = b
	c.haveCur = true
	c.gateDone = false
}

// demandAccess looks up the L1i for a committed-path block transition,
// handling prefetch-buffer promotion, late-prefetch merging, and miss issue.
func (c *Core) demandAccess(b isa.BlockID) bool {
	c.M.DemandAccesses++
	if c.cf.PerfectL1i {
		return true
	}
	c.M.CacheLookups++
	seq := c.haveCur && b == c.curBlock+1

	line := c.l1i.Access(b)
	if line == nil && c.pfb != nil {
		if lat, ok := c.pfbTake(b); ok {
			var ev cache.Evicted
			var evicted bool
			line, ev, evicted = c.l1i.Insert(b)
			if evicted {
				if ev.Flags&cache.FlagPrefetched != 0 {
					c.M.UselessEvicts++
				}
				c.prefLat.Delete(ev.Block)
				c.design.OnEvict(ev)
			}
			c.M.CMALCovered += lat
			c.M.CMALTotal += lat
			c.M.UsefulPrefetches++
		}
	}

	if line != nil {
		if line.Flags&cache.FlagPrefetched != 0 {
			lat, _ := c.prefLat.Get(b)
			c.prefLat.Delete(b)
			c.M.CMALCovered += lat
			c.M.CMALTotal += lat
			c.M.UsefulPrefetches++
		}
		c.design.OnDemand(b, true, c.last2)
		// The design may have consumed the flag (SN4L); clear it for
		// everyone else so a line counts as useful once.
		line.Flags &^= cache.FlagPrefetched
		return true
	}

	// Miss.
	c.M.DemandMisses++
	if seq {
		c.M.SeqMisses++
	} else {
		c.M.DiscMisses++
	}
	if m, ok := c.mshr.Lookup(b); ok {
		m.Demanded = true
		if m.Prefetch {
			lat := m.Latency()
			waited := m.ReadyCycle - c.cycle
			if waited > lat {
				waited = lat
			}
			c.M.CMALCovered += lat - waited
			c.M.CMALTotal += lat
			c.M.LateMisses++
			c.M.UsefulPrefetches++
		}
	} else {
		c.enterUncore()
		ready, _ := c.uncore.Access(c.cf.Tile, b, c.cycle, true)
		c.M.ExtRequests++
		c.M.LLCLatencySum += ready - c.cycle
		c.M.LLCLatencyCnt++
		c.mshr.AllocDemand(b, c.cycle, ready)
	}
	c.design.OnDemand(b, false, c.last2)
	return false
}

// deliver pushes the current instruction into the ROB and resolves its
// control flow (penalties, predictor/BTB training, RAS).
func (c *Core) deliver() {
	inst := c.step.Inst
	complete := c.cycle + c.cf.PipelineDepth + c.execLatency(&c.step)
	tail := (c.robHead + c.robCount) % len(c.rob)
	c.rob[tail] = robEntry{complete: complete, inst: inst, taken: c.step.Taken, target: c.step.TargetPC}
	c.robCount++
	c.totalDelivered++
	c.delivered++
	c.startup = false

	if inst.Kind.IsBranch() {
		c.resolveBranch(&c.step)
	}

	c.last2[0], c.last2[1] = c.last2[1], inst.PC
	c.haveStep = false
}

// execLatency models per-instruction execution latency; loads access the
// data hierarchy.
func (c *Core) execLatency(s *wl.Step) uint64 {
	switch s.Inst.Kind {
	case isa.KindLoad:
		c.M.LoadCount++
		db := isa.BlockOf(s.DataAddr)
		if c.l1d.Access(db) != nil {
			return c.cf.L1DLatency
		}
		c.M.L1DMisses++
		c.enterUncore()
		ready, _ := c.uncore.Access(c.cf.Tile, db, c.cycle, false)
		c.l1d.Insert(db)
		return c.cf.L1DLatency + (ready - c.cycle)
	case isa.KindStore:
		c.M.StoreCount++
		c.l1d.Insert(isa.BlockOf(s.DataAddr))
		return 1
	default:
		return 1
	}
}

// resolveBranch charges redirect penalties and trains the predictors. The
// timing model resolves branches at fetch (charging the appropriate
// pipeline-position penalty) rather than holding a shadow pipeline.
func (c *Core) resolveBranch(s *wl.Step) {
	inst := s.Inst
	pc := inst.PC
	actualTaken := s.Taken

	switch inst.Kind {
	case isa.KindCondBranch:
		c.M.CondBranches++
		pred := c.tage.Predict(pc)
		c.tage.Update(pc, actualTaken)
		target, btbHit := c.design.BTBLookup(pc, inst.Kind)
		if c.cf.PerfectBTB {
			target, btbHit = inst.Target, true
		}
		if pred != actualTaken {
			c.M.Mispredicts++
			wrong := inst.NextPC()
			if !actualTaken && btbHit {
				wrong = target
			}
			c.redirect(c.cf.MispredictPenalty, false, wrong)
		} else if actualTaken && (!btbHit || target != s.TargetPC) {
			// Predicted taken but the frontend had no target: sequential
			// fetch continues until the branch resolves.
			c.M.BTBMissEvents++
			c.redirect(c.cf.BTBMissPenaltyTaken, true, inst.NextPC())
		}
		c.design.BTBCommit(pc, inst.Kind, inst.Target, actualTaken)

	case isa.KindJump, isa.KindCall:
		if !actualTaken {
			// Elided deep call (modelled as inlined); no transfer occurred.
			return
		}
		c.tage.UpdateHistoryUncond(s.TargetPC)
		target, btbHit := c.design.BTBLookup(pc, inst.Kind)
		if c.cf.PerfectBTB {
			target, btbHit = inst.Target, true
		}
		if !btbHit || target != s.TargetPC {
			c.M.BTBMissEvents++
			c.redirect(c.cf.BTBMissPenaltyDecode, true, inst.NextPC())
		}
		if inst.Kind == isa.KindCall {
			c.ras.Push(inst.NextPC())
		}
		c.design.BTBCommit(pc, inst.Kind, s.TargetPC, true)

	case isa.KindReturn:
		c.tage.UpdateHistoryUncond(s.TargetPC)
		_, btbHit := c.design.BTBLookup(pc, inst.Kind)
		if c.cf.PerfectBTB {
			btbHit = true
		}
		rasTarget, ok := c.ras.Pop()
		switch {
		case !btbHit:
			// The frontend did not know this was a branch at all.
			c.M.BTBMissEvents++
			c.redirect(c.cf.BTBMissPenaltyDecode, true, inst.NextPC())
		case !ok || rasTarget != s.TargetPC:
			c.M.Mispredicts++
			c.redirect(c.cf.MispredictPenalty, false, inst.NextPC())
		}
		c.design.BTBCommit(pc, inst.Kind, s.TargetPC, true)

	case isa.KindIndirect:
		if !actualTaken {
			return
		}
		c.tage.UpdateHistoryUncond(s.TargetPC)
		target, btbHit := c.design.BTBLookup(pc, inst.Kind)
		if c.cf.PerfectBTB {
			target, btbHit = s.TargetPC, true
		}
		switch {
		case !btbHit:
			c.M.BTBMissEvents++
			c.redirect(c.cf.BTBMissPenaltyDecode, true, inst.NextPC())
		case target != s.TargetPC:
			c.M.Mispredicts++
			c.redirect(c.cf.MispredictPenalty, false, target)
		}
		// Indirect call: the walker pushes a return frame.
		c.ras.Push(inst.NextPC())
		c.design.BTBCommit(pc, inst.Kind, s.TargetPC, true)
	}
}

// redirect charges a frontend bubble, informs the design, and injects
// wrong-path fetches down the bogus continuation.
func (c *Core) redirect(penalty uint64, btbInduced bool, wrongPC isa.Addr) {
	if c.cycle+penalty > c.stallUntil {
		c.stallUntil = c.cycle + penalty
		c.stallBTB = btbInduced
	}
	c.design.OnRedirect(c.step.NextPC)
	// The in-flight transition state is stale after a redirect.
	c.gateDone = false
	c.wrongPath(wrongPC)
}

// wrongPath models fetch continuing down an incorrect path during the
// redirect shadow: sequential blocks from the bogus continuation are looked
// up and, on a miss, fetched — polluting the cache and consuming bandwidth.
func (c *Core) wrongPath(pc isa.Addr) {
	if c.cf.PerfectL1i || pc == 0 {
		return
	}
	b0 := isa.BlockOf(pc)
	for i := 0; i < c.cf.WrongPathBlocks; i++ {
		b := b0 + isa.BlockID(i)
		if !c.image.ContainsBlock(b) {
			return
		}
		c.M.WrongPathFetches++
		c.M.CacheLookups++
		hit := c.l1i.Contains(b)
		if hit {
			continue
		}
		if c.pfb != nil && c.pfb.Contains(b) {
			continue
		}
		if _, ok := c.mshr.Lookup(b); ok {
			continue
		}
		if c.mshr.Full() {
			return
		}
		c.enterUncore()
		ready, _ := c.uncore.Access(c.cf.Tile, b, c.cycle, true)
		c.M.ExtRequests++
		c.mshr.AllocDemand(b, c.cycle, ready)
	}
}
