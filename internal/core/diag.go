package core

import "dnc/internal/isa"

// DiagSnapshot captures one core's frontend state for failure diagnostics.
// The sweep engine's livelock watchdog (internal/sim) attaches one snapshot
// per core to the abort error so a stuck run can be triaged post-mortem
// without re-running it under a debugger.
type DiagSnapshot struct {
	Tile    int
	Cycle   uint64
	Retired uint64 // monotonic, survives metric resets
	// StallCause names the condition currently blocking fetch, derived from
	// the live pipeline state (not the per-cycle attribution counters).
	StallCause string
	// Waiting/WaitBlock describe an outstanding demand I-fetch miss.
	Waiting   bool
	WaitBlock isa.BlockID
	// StallUntil is the end cycle of an active redirect bubble.
	StallUntil        uint64
	ROBUsed, ROBCap   int
	MSHRUsed, MSHRCap int
}

// Progress returns the number of instructions retired since the core was
// created. Unlike M.Retired it is never reset between the warm-up and
// measurement windows, so the watchdog can observe forward progress across
// the whole run.
func (c *Core) Progress() uint64 { return c.totalRetired }

// Diag returns a point-in-time diagnostic snapshot of the core.
func (c *Core) Diag() DiagSnapshot {
	s := DiagSnapshot{
		Tile:       c.cf.Tile,
		Cycle:      c.cycle,
		Retired:    c.totalRetired,
		Waiting:    c.waiting,
		WaitBlock:  c.waitBlk,
		StallUntil: c.stallUntil,
		ROBUsed:    c.robCount,
		ROBCap:     len(c.rob),
		MSHRUsed:   c.mshr.Len(),
		MSHRCap:    c.mshr.Cap(),
	}
	switch {
	case c.robFull():
		s.StallCause = "rob-full"
	case c.cycle < c.stallUntil && c.stallBTB:
		s.StallCause = "btb-redirect"
	case c.cycle < c.stallUntil:
		s.StallCause = "mispredict-redirect"
	case c.waiting:
		s.StallCause = "icache-wait"
	default:
		s.StallCause = "ftq/fetch"
	}
	return s
}
