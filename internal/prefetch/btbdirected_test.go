package prefetch

import (
	"testing"

	"dnc/internal/btb"
	"dnc/internal/isa"
)

// buildLinearImage lays out fixed-mode code: a run of ALU blocks ending in
// a jump to target at the given slot of the last block.
func buildLinearImage(base isa.Addr, blocks int, jumpSlot int, target isa.Addr) *isa.Image {
	var code []byte
	n := blocks * isa.BlockBytes / isa.FixedSize
	for i := 0; i < n; i++ {
		inst := isa.Inst{PC: base + isa.Addr(i*isa.FixedSize), Size: isa.FixedSize, Kind: isa.KindALU}
		if i == (blocks-1)*16+jumpSlot {
			inst.Kind = isa.KindJump
			inst.Target = target
		}
		code = isa.AppendInst(code, isa.Fixed, inst)
	}
	return isa.NewImage(isa.Fixed, base, code)
}

func TestBBRecorderDelimitsBlocks(t *testing.T) {
	var got []struct {
		start isa.Addr
		e     btb.BBEntry
	}
	rec := newBBRecorder(0, func(start isa.Addr, e btb.BBEntry) {
		got = append(got, struct {
			start isa.Addr
			e     btb.BBEntry
		}{start, e})
	})

	// alu, alu, taken branch -> one BB of 12 bytes.
	rec.retire(isa.Inst{PC: 0x100, Size: 4, Kind: isa.KindALU}, false, 0)
	rec.retire(isa.Inst{PC: 0x104, Size: 4, Kind: isa.KindALU}, false, 0)
	rec.retire(isa.Inst{PC: 0x108, Size: 4, Kind: isa.KindCondBranch, Target: 0x200}, true, 0x200)
	if len(got) != 1 {
		t.Fatalf("emitted %d blocks", len(got))
	}
	if got[0].start != 0x100 || got[0].e.Size != 12 || got[0].e.BranchPC != 0x108 ||
		got[0].e.Target != 0x200 || got[0].e.Kind != isa.KindCondBranch {
		t.Fatalf("bb = %+v", got[0])
	}

	// The next BB starts at the taken target.
	rec.retire(isa.Inst{PC: 0x200, Size: 4, Kind: isa.KindReturn}, true, 0x10C)
	if len(got) != 2 || got[1].start != 0x200 || got[1].e.Kind != isa.KindReturn {
		t.Fatalf("second bb = %+v", got[len(got)-1])
	}
	// Returns record the observed target.
	if got[1].e.Target != 0x10C {
		t.Fatalf("return target = %#x", got[1].e.Target)
	}
}

func TestBBRecorderSplitsLongRuns(t *testing.T) {
	var sizes []uint16
	rec := newBBRecorder(64, func(_ isa.Addr, e btb.BBEntry) { sizes = append(sizes, e.Size) })
	for i := 0; i < 40; i++ {
		rec.retire(isa.Inst{PC: isa.Addr(0x1000 + i*4), Size: 4, Kind: isa.KindALU}, false, 0)
	}
	if len(sizes) == 0 {
		t.Fatal("long straight-line run never split")
	}
	for _, s := range sizes {
		if s != 64 {
			t.Fatalf("split size = %d, want 64", s)
		}
	}
}

func TestBBFromPredecode(t *testing.T) {
	im := buildBranchImage(0x1000, 0x2000) // cond branch at slot 3 (offset 12)
	brs := isa.PredecodeBlock(im, isa.BlockOf(0x1000))

	// From the block start: BB covers through the branch.
	e := bbFromPredecode(0x1000, brs)
	if e.Kind != isa.KindCondBranch || e.Size != 16 || e.BranchPC != 0x100C {
		t.Fatalf("bb = %+v", e)
	}
	// From past the branch: fallthrough continuation to the block end.
	e = bbFromPredecode(0x1010, brs)
	if e.Kind != isa.KindALU || e.Size != 48 {
		t.Fatalf("continuation = %+v", e)
	}
}

func TestFTQ(t *testing.T) {
	q := newFTQ(3)
	q.push(10)
	q.push(10) // consecutive duplicate collapses
	q.push(11)
	if h, _ := q.head(); h != 10 {
		t.Fatalf("head = %d", h)
	}
	q.pop()
	if h, _ := q.head(); h != 11 {
		t.Fatalf("head after pop = %d", h)
	}
	q.push(12)
	q.push(13)
	q.push(14) // over capacity, dropped
	if !q.full() {
		t.Fatal("queue should be full")
	}
	q.reset()
	if !q.empty() {
		t.Fatal("reset failed")
	}
	if _, ok := q.head(); ok {
		t.Fatal("head on empty queue")
	}
}

func TestBoomerangWalkAndGate(t *testing.T) {
	env := newFakeEnv()
	base := isa.Addr(0x10000)
	target := isa.Addr(0x20000)
	env.image = buildLinearImage(base, 2, 3, target) // 2 blocks; jump in block 2
	d := NewBoomerang(DefaultBoomerangConfig())
	d.Bind(env)

	// Fetch asks for the first block: FTQ is empty, the engine restarts
	// there and the gate stalls.
	if d.FTQGate(base) {
		t.Fatal("gate passed with empty FTQ")
	}
	// The engine walks: first BB lookup misses -> reactive repair. The
	// block is absent, so the engine issues a fetch and stalls.
	d.Tick()
	if !d.stalled {
		t.Fatal("engine should stall on a cold BTB+cache")
	}
	if len(env.issued) == 0 {
		t.Fatal("reactive repair issued no fetch")
	}
	// The fill arrives: the engine decodes, inserts the BB, and resumes.
	env.fill(d, isa.BlockOf(base), true)
	if d.stalled {
		t.Fatal("fill did not clear the stall")
	}
	for i := 0; i < 8; i++ {
		d.Tick()
		for _, b := range append([]isa.BlockID{}, env.issued...) {
			if env.inflight[b] {
				env.fill(d, b, true)
			}
		}
	}
	// Now the FTQ holds the walked blocks; the gate passes for them.
	if !d.FTQGate(base) {
		t.Fatal("gate failed after the engine delivered the block")
	}
	if !d.FTQGate(base + isa.BlockBytes) {
		t.Fatal("gate failed for the second block")
	}
	if d.ReactiveFills == 0 {
		t.Fatal("no reactive fills recorded")
	}
}

func TestBoomerangDivergenceSquashes(t *testing.T) {
	env := newFakeEnv()
	base := isa.Addr(0x10000)
	env.image = buildLinearImage(base, 2, 3, 0x20000)
	d := NewBoomerang(DefaultBoomerangConfig())
	d.Bind(env)
	d.q.push(isa.BlockOf(base))
	// Fetch goes somewhere else entirely: squash and restart there.
	other := isa.Addr(0x40000)
	if d.FTQGate(other) {
		t.Fatal("diverging gate passed")
	}
	if d.Squashes != 1 {
		t.Fatalf("squashes = %d", d.Squashes)
	}
	if d.walkPC != other || !d.walkValid {
		t.Fatalf("engine did not restart at the divergence: %#x", d.walkPC)
	}
}

func TestBoomerangCommitTrainsBBBTB(t *testing.T) {
	env := newFakeEnv()
	d := NewBoomerang(DefaultBoomerangConfig())
	d.Bind(env)
	d.OnRetire(isa.Inst{PC: 0x100, Size: 4, Kind: isa.KindALU}, false, 0)
	d.OnRetire(isa.Inst{PC: 0x104, Size: 4, Kind: isa.KindJump, Target: 0x300}, true, 0x300)
	if _, ok := d.bb.Peek(0x100); !ok {
		t.Fatal("commit did not train the BB-BTB")
	}
	if target, ok := d.BTBLookup(0x104, isa.KindJump); !ok || target != 0x300 {
		t.Fatalf("per-PC view = %#x, %v", target, ok)
	}
}

func TestShotgunFootprintPrefetchOnUHit(t *testing.T) {
	env := newFakeEnv()
	base := isa.Addr(0x10000)
	target := isa.Addr(0x20000)
	env.image = buildLinearImage(base, 1, 3, target)
	cfg := DefaultShotgunDesignConfig()
	cfg.Buffered = false
	d := NewShotgun(cfg)
	d.Bind(env)

	// Train a U-BTB entry with a call footprint via the retired stream.
	for i := 0; i < 3; i++ {
		d.OnRetire(isa.Inst{PC: base + isa.Addr(i*4), Size: 4, Kind: isa.KindALU}, false, 0)
	}
	d.OnRetire(isa.Inst{PC: base + 12, Size: 4, Kind: isa.KindJump, Target: target}, true, target)
	// Instructions around the target build the footprint.
	for i := 0; i < 32; i++ {
		d.OnRetire(isa.Inst{PC: target + isa.Addr(i*4), Size: 4, Kind: isa.KindALU}, false, 0)
	}
	// Close the region with another unconditional branch.
	d.OnRetire(isa.Inst{PC: target + 128, Size: 4, Kind: isa.KindJump, Target: base}, true, base)

	// Walk from the trained entry: the engine must bulk-prefetch the
	// footprint around the target.
	d.restart(base)
	d.Tick()
	got := issuedSet(env.issued)
	if !got[isa.BlockOf(target)] || !got[isa.BlockOf(target)+1] {
		t.Fatalf("footprint not prefetched: %v", env.issued)
	}
	if d.FootprintPrefetch == 0 {
		t.Fatal("footprint prefetches not counted")
	}
	if d.SplitBTB().FootprintMissRatio() != 0 {
		t.Fatalf("trained footprint counted as miss: %v", d.SplitBTB().FootprintMissRatio())
	}
}

func TestShotgunReactiveResolvesUncondAsFootprintMiss(t *testing.T) {
	env := newFakeEnv()
	base := isa.Addr(0x10000)
	env.image = buildLinearImage(base, 1, 3, 0x20000)
	d := NewShotgun(DefaultShotgunDesignConfig())
	d.Bind(env)

	env.install(isa.BlockOf(base)) // block resident: reactive decode is immediate
	d.restart(base)
	d.Tick()
	sb := d.SplitBTB()
	if sb.UEntryMiss != 1 || sb.UFootprintMiss != 1 {
		t.Fatalf("reactive uncond resolution not counted: %+v", sb)
	}
}

func TestShotgunBufferedPrefetches(t *testing.T) {
	env := newFakeEnv()
	base := isa.Addr(0x10000)
	env.image = buildLinearImage(base, 2, 3, 0x20000)
	d := NewShotgun(DefaultShotgunDesignConfig()) // Buffered: true
	d.Bind(env)
	d.restart(base)
	d.Tick() // reactive stall -> buffered fetch
	if len(env.buffered) == 0 {
		t.Fatalf("shotgun did not use buffered prefetches: issued=%v", env.issued)
	}
}
