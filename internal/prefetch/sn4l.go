package prefetch

import (
	"dnc/internal/cache"
	"dnc/internal/isa"
)

// SeqTable is SN4L's per-block usefulness predictor: a direct-mapped,
// tagless, 1-bit-per-entry table. Entry A holds the sequential-prefetch
// status of the block hashing to A; the four subsequent blocks of A live in
// entries A+1..A+4 (Section V.A). All entries start set, so every block is
// prefetched the first time.
type SeqTable struct {
	bits []uint64
	mask uint64
	n    int
}

// NewSeqTable returns a table with the given entry count (power of two).
// Pass 0 entries for an unlimited table (one dedicated entry per block, the
// reference point of Figure 11).
func NewSeqTable(entries int) *SeqTable {
	if entries == 0 {
		// Unlimited: a large sparse space; 2^26 blocks (4 GiB of code) is
		// far beyond any generated footprint and keeps indices unique.
		entries = 1 << 26
	}
	if entries&(entries-1) != 0 {
		panic("prefetch: SeqTable entries must be a power of two")
	}
	t := &SeqTable{bits: make([]uint64, entries/64+1), mask: uint64(entries - 1), n: entries}
	for i := range t.bits {
		t.bits[i] = ^uint64(0)
	}
	return t
}

// Entries returns the table capacity.
func (t *SeqTable) Entries() int { return t.n }

func (t *SeqTable) idx(b isa.BlockID) uint64 { return uint64(b) & t.mask }

// Get returns the prefetch status of block b.
func (t *SeqTable) Get(b isa.BlockID) bool {
	i := t.idx(b)
	return t.bits[i/64]&(1<<(i%64)) != 0
}

// Set marks block b useful to prefetch.
func (t *SeqTable) Set(b isa.BlockID) {
	i := t.idx(b)
	t.bits[i/64] |= 1 << (i % 64)
}

// Reset marks block b not useful.
func (t *SeqTable) Reset(b isa.BlockID) {
	i := t.idx(b)
	t.bits[i/64] &^= 1 << (i % 64)
}

// Nibble returns the packed status of b+1..b+4 (bit i-1 for block b+i) —
// the 4-bit local prefetch status cached with each L1i line to avoid
// SeqTable lookups on every access.
func (t *SeqTable) Nibble(b isa.BlockID) uint8 {
	var n uint8
	for i := 1; i <= 4; i++ {
		if t.Get(b + isa.BlockID(i)) {
			n |= 1 << (i - 1)
		}
	}
	return n
}

// refreshLocal propagates a SeqTable update for block b into the cached
// local-status nibbles of the up to four resident predecessor lines. The
// write port that updates entry b snoops the local copies; without this a
// stale 0 bit in a long-resident line would suppress a now-useful prefetch
// for that line's whole residency.
func refreshLocal(env Env, t *SeqTable, b isa.BlockID) {
	v := t.Get(b)
	for i := 1; i <= 4; i++ {
		if isa.BlockID(i) > b {
			break
		}
		line := env.L1iLine(b - isa.BlockID(i))
		if line == nil {
			continue
		}
		bit := uint8(1) << (i - 1)
		if v {
			line.Aux |= bit
		} else {
			line.Aux &^= bit
		}
	}
}

// SN4L is the selective next-four-line prefetcher: an N4L whose candidates
// are filtered by the SeqTable usefulness predictor. It prefetches directly
// into the L1i and needs no prefetch buffer.
type SN4L struct {
	Base
	btb *ConvBTB
	seq *SeqTable

	// UsefulHits counts demand hits on prefetched lines; Issued counts
	// prefetches sent.
	UsefulHits uint64
	Issued     uint64
}

// NewSN4L returns a standalone SN4L design. seqEntries is the SeqTable size
// (paper: 16K entries = 2KB); 0 means unlimited.
func NewSN4L(seqEntries, btbEntries int) *SN4L {
	return &SN4L{btb: NewConvBTB(btbEntries, 4), seq: NewSeqTable(seqEntries)}
}

// Name implements Design.
func (*SN4L) Name() string { return "SN4L" }

// Table exposes the SeqTable (shared with the proactive engine).
func (d *SN4L) Table() *SeqTable { return d.seq }

// BTBLookup implements Design.
func (d *SN4L) BTBLookup(pc isa.Addr, kind isa.Kind) (isa.Addr, bool) {
	return d.btb.Lookup(pc, kind)
}

// BTBCommit implements Design.
func (d *SN4L) BTBCommit(pc isa.Addr, kind isa.Kind, target isa.Addr, taken bool) {
	d.btb.Commit(pc, kind, target, taken)
}

// OnDemand implements Design: update metadata and prefetch useful
// subsequents.
func (d *SN4L) OnDemand(b isa.BlockID, hit bool, _ [2]isa.Addr) {
	env := d.E()
	var nib uint8
	if hit {
		line := env.L1iLine(b)
		// Demand to a prefetched block: mark useful, clear the flag.
		if line.Flags&cache.FlagPrefetched != 0 {
			line.Flags &^= cache.FlagPrefetched
			d.seq.Set(b)
			refreshLocal(env, d.seq, b)
			d.UsefulHits++
		}
		nib = line.Aux
	} else {
		// A missed block is always worth prefetching next time.
		d.seq.Set(b)
		refreshLocal(env, d.seq, b)
		// The block is not resident, so the local status is unavailable;
		// read the SeqTable directly.
		nib = d.seq.Nibble(b)
	}
	for i := 1; i <= 4; i++ {
		if nib&(1<<(i-1)) == 0 {
			continue
		}
		nb := b + isa.BlockID(i)
		if env.L1iContains(nb) || env.InFlight(nb) {
			continue
		}
		if env.IssuePrefetch(nb, false) {
			d.Issued++
		}
	}
}

// OnFill implements Design: latch the local prefetch status beside the line.
func (d *SN4L) OnFill(b isa.BlockID, prefetch bool) {
	if line := d.E().L1iLine(b); line != nil {
		line.Aux = d.seq.Nibble(b)
	}
}

// OnEvict implements Design: a prefetched line evicted without a demand hit
// was a useless prefetch.
func (d *SN4L) OnEvict(ev cache.Evicted) {
	if ev.Flags&cache.FlagPrefetched != 0 {
		d.seq.Reset(ev.Block)
		refreshLocal(d.E(), d.seq, ev.Block)
	}
}

// StorageBits implements Design: 1 bit per SeqTable entry.
func (d *SN4L) StorageBits() int { return d.seq.Entries() }
