package prefetch

import (
	"dnc/internal/btb"
	"dnc/internal/isa"
)

// bbRecorder reconstructs basic blocks from the retired instruction stream.
// BTB-directed designs (Boomerang, Shotgun) train their basic-block-oriented
// BTBs at commit; the recorder delimits blocks at branches and splits
// over-long straight-line runs.
type bbRecorder struct {
	start    isa.Addr
	have     bool
	maxBytes int
	// emit receives each completed basic block keyed by its start address.
	emit func(start isa.Addr, bb btb.BBEntry)
}

func newBBRecorder(maxBytes int, emit func(isa.Addr, btb.BBEntry)) *bbRecorder {
	if maxBytes == 0 {
		maxBytes = 2 * isa.BlockBytes
	}
	return &bbRecorder{maxBytes: maxBytes, emit: emit}
}

// retire observes a committed instruction. taken and target describe the
// resolved control transfer (target 0 for not-taken conditionals).
func (r *bbRecorder) retire(inst isa.Inst, taken bool, target isa.Addr) {
	if !r.have {
		r.start, r.have = inst.PC, true
	}
	if inst.PC < r.start {
		// Lost synchronization (redirect); restart here.
		r.start = inst.PC
	}
	if inst.Kind.IsBranch() {
		bbTarget := inst.Target
		if !inst.Kind.HasEncodedTarget() {
			// Indirect/return: remember the last observed target.
			bbTarget = target
		}
		r.emit(r.start, btb.BBEntry{
			Size:     uint16(inst.NextPC() - r.start),
			Kind:     inst.Kind,
			BranchPC: inst.PC,
			Target:   bbTarget,
		})
		if taken {
			r.start = target
		} else {
			r.start = inst.NextPC()
		}
		return
	}
	if int(inst.NextPC()-r.start) >= r.maxBytes {
		// Split a long straight-line run: a block-terminated entry whose
		// "branch" is a fallthrough continuation.
		r.emit(r.start, btb.BBEntry{
			Size: uint16(inst.NextPC() - r.start),
			Kind: isa.KindALU,
		})
		r.start = inst.NextPC()
	}
}

// redirect resynchronizes after a pipeline redirect.
func (r *bbRecorder) redirect(pc isa.Addr) {
	r.start, r.have = pc, true
}

// bbFromPredecode constructs the basic block starting at pc from the
// pre-decoded branches of pc's cache block: the BB ends at the first branch
// at or after pc. If the block's remaining bytes hold no branch, the entry
// is a fallthrough continuation to the next block (the engine keeps
// walking). This is the reactive BTB-fill path of Boomerang and Shotgun.
func bbFromPredecode(pc isa.Addr, branches []isa.Branch) btb.BBEntry {
	off := isa.ByteOffset(pc)
	for _, br := range branches {
		if uint(br.Offset) < off {
			continue
		}
		return btb.BBEntry{
			// Fixed-length ISA: a branch instruction is FixedSize bytes.
			Size:     uint16(uint(br.Offset)+isa.FixedSize) - uint16(off),
			Kind:     br.Kind,
			BranchPC: isa.BlockBase(isa.BlockOf(pc)) + isa.Addr(br.Offset),
			Target:   br.Target,
		}
	}
	return btb.BBEntry{Size: uint16(isa.BlockBytes - off), Kind: isa.KindALU}
}

// ftq is the fetch target queue shared by the BTB-directed engines: the
// sequence of blocks the prefetch engine has delivered ahead of fetch.
type ftq struct {
	blocks []isa.BlockID
	cap    int
}

func newFTQ(capacity int) *ftq {
	return &ftq{cap: capacity, blocks: make([]isa.BlockID, 0, capacity)}
}

func (q *ftq) full() bool  { return len(q.blocks) >= q.cap }
func (q *ftq) empty() bool { return len(q.blocks) == 0 }

// push appends a block, deduplicating consecutive repeats.
func (q *ftq) push(b isa.BlockID) {
	if q.full() {
		return
	}
	if n := len(q.blocks); n > 0 && q.blocks[n-1] == b {
		return
	}
	q.blocks = append(q.blocks, b)
}

// head returns the front block.
func (q *ftq) head() (isa.BlockID, bool) {
	if q.empty() {
		return 0, false
	}
	return q.blocks[0], true
}

func (q *ftq) pop() {
	if !q.empty() {
		copy(q.blocks, q.blocks[1:])
		q.blocks = q.blocks[:len(q.blocks)-1]
	}
}

func (q *ftq) reset() { q.blocks = q.blocks[:0] }
