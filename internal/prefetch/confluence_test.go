package prefetch

import (
	"testing"

	"dnc/internal/isa"
)

func smallConfluence(hist, lookahead int) *Confluence {
	return NewConfluence(ConfluenceConfig{
		HistEntries:  hist,
		IndexEntries: 64,
		BTBEntries:   64,
		Lookahead:    lookahead,
	})
}

func confMiss(c *Confluence, b isa.BlockID) { c.OnDemand(b, false, [2]isa.Addr{}) }

// TestConfluenceIndexTracksLatestOccurrence pins SHIFT's index update rule:
// a re-missed block replays the history from its most recent occurrence, not
// its first.
func TestConfluenceIndexTracksLatestOccurrence(t *testing.T) {
	env := newFakeEnv()
	c := smallConfluence(1024, 1)
	c.Bind(env)
	for _, b := range []isa.BlockID{100, 200, 100, 300} {
		confMiss(c, b)
	}
	env.issued = nil
	env.inflight = map[isa.BlockID]bool{}
	confMiss(c, 100)
	got := issuedSet(env.issued)
	if !got[300] {
		t.Fatalf("latest occurrence not replayed (want 300): %v", env.issued)
	}
	if got[200] {
		t.Fatalf("replay started from a stale occurrence: %v", env.issued)
	}
}

// TestConfluenceHitAdvancesLiveStreamByOne pins the follow-up rule: each
// demand hit moves an active stream one history entry forward.
func TestConfluenceHitAdvancesLiveStreamByOne(t *testing.T) {
	env := newFakeEnv()
	c := smallConfluence(1024, 1)
	c.Bind(env)
	for _, b := range []isa.BlockID{100, 200, 300} {
		confMiss(c, b)
	}
	env.issued = nil
	env.inflight = map[isa.BlockID]bool{}
	confMiss(c, 100) // restart at the recorded occurrence; lookahead 1 → 200
	if got := issuedSet(env.issued); !got[200] || got[300] {
		t.Fatalf("lookahead-1 replay wrong: %v", env.issued)
	}
	c.OnDemand(200, true, [2]isa.Addr{})
	if !issuedSet(env.issued)[300] {
		t.Fatalf("hit did not advance the stream: %v", env.issued)
	}
}

// TestConfluenceHitWithoutStreamIsInert pins that hits never start streams.
func TestConfluenceHitWithoutStreamIsInert(t *testing.T) {
	env := newFakeEnv()
	c := smallConfluence(1024, 4)
	c.Bind(env)
	for _, b := range []isa.BlockID{100, 200, 300} {
		confMiss(c, b)
	}
	env.issued = nil
	c.OnDemand(100, true, [2]isa.Addr{})
	if len(env.issued) != 0 {
		t.Fatalf("hit started a stream: %v", env.issued)
	}
}

// TestConfluenceWraparoundStopsAtWriteHead pins the circular history: replay
// wraps past the end of the buffer but must halt at the write head rather
// than re-issuing overwritten (stale) entries.
func TestConfluenceWraparoundStopsAtWriteHead(t *testing.T) {
	env := newFakeEnv()
	c := smallConfluence(4, 6)
	c.Bind(env)
	// Fill the 4-entry history, then overwrite slot 0: [50, 20, 30, 40].
	for _, b := range []isa.BlockID{10, 20, 30, 40, 50} {
		confMiss(c, b)
	}
	env.issued = nil
	env.inflight = map[isa.BlockID]bool{}
	confMiss(c, 30)
	got := issuedSet(env.issued)
	if !got[40] || !got[50] {
		t.Fatalf("wrapped replay incomplete (want 40, 50): %v", env.issued)
	}
	if got[10] || got[20] {
		t.Fatalf("replay crossed the write head into stale history: %v", env.issued)
	}
	if c.StreamStarts != 1 {
		t.Fatalf("StreamStarts = %d, want 1", c.StreamStarts)
	}
	if c.streamLive {
		t.Fatal("stream still live after reaching the write head")
	}
}

// TestConfluenceIndexTagFiltersAliases pins the partial-tag check: a miss
// aliasing a recorded block's index slot with a different tag must not
// replay that block's stream.
func TestConfluenceIndexTagFiltersAliases(t *testing.T) {
	env := newFakeEnv()
	c := smallConfluence(1024, 4)
	c.Bind(env)
	for _, b := range []isa.BlockID{7, 200, 300} {
		confMiss(c, b)
	}
	alias := isa.BlockID(7 + (1 << 14)) // same 6-bit index slot, different tag
	env.issued = nil
	confMiss(c, alias)
	if c.StreamStarts != 0 {
		t.Fatalf("aliased miss started a stream: %v", env.issued)
	}
}

// TestConfluenceRedirectStopsHitFollowup pins that after a fetch redirect,
// demand hits no longer advance the (dead) replay position.
func TestConfluenceRedirectStopsHitFollowup(t *testing.T) {
	env := newFakeEnv()
	c := smallConfluence(1024, 1)
	c.Bind(env)
	for _, b := range []isa.BlockID{100, 200, 300} {
		confMiss(c, b)
	}
	env.inflight = map[isa.BlockID]bool{}
	confMiss(c, 100)
	c.OnRedirect(0)
	n := len(env.issued)
	c.OnDemand(200, true, [2]isa.Addr{})
	if len(env.issued) != n {
		t.Fatal("stream survived a redirect")
	}
}
