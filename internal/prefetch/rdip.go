package prefetch

import (
	"dnc/internal/isa"
)

// RDIP (Kolli, Saidi, Wenisch; MICRO 2013 — the paper's reference [18])
// observes that the L1i miss working set is strongly correlated with the
// program's call-stack context. It hashes the top of the return address
// stack into a signature, records the misses observed under each signature,
// and prefetches a signature's recorded miss set as soon as a call or
// return switches the context to it — giving roughly one call-depth of
// lookahead.
type RDIP struct {
	Base
	btb *ConvBTB

	entries []rdipEntry
	mask    uint64

	// shadow return-address stack for signature computation.
	ras []isa.Addr

	sig uint64

	// Recorded and Issued count miss-table activity.
	Recorded uint64
	Issued   uint64
}

// rdipBlocksPerSig bounds the miss set stored per signature (RDIP's miss
// table stores a handful of cache-block addresses per entry).
const rdipBlocksPerSig = 8

type rdipEntry struct {
	valid  bool
	tag    uint16
	blocks [rdipBlocksPerSig]isa.BlockID
	n      uint8
	next   uint8 // FIFO replacement cursor within the miss set
}

// NewRDIP returns an RDIP design with the given signature-table entries
// (power of two).
func NewRDIP(entries, btbEntries int) *RDIP {
	if entries&(entries-1) != 0 {
		panic("prefetch: RDIP entries must be a power of two")
	}
	return &RDIP{
		btb:     NewConvBTB(btbEntries, 4),
		entries: make([]rdipEntry, entries),
		mask:    uint64(entries - 1),
		ras:     make([]isa.Addr, 0, 16),
	}
}

// Name implements Design.
func (*RDIP) Name() string { return "RDIP" }

// BTBLookup implements Design.
func (d *RDIP) BTBLookup(pc isa.Addr, kind isa.Kind) (isa.Addr, bool) {
	return d.btb.Lookup(pc, kind)
}

// BTBCommit implements Design.
func (d *RDIP) BTBCommit(pc isa.Addr, kind isa.Kind, target isa.Addr, taken bool) {
	d.btb.Commit(pc, kind, target, taken)
}

// signature hashes the top four shadow-RAS entries.
func (d *RDIP) signature() uint64 {
	var h uint64 = 1469598103934665603 // FNV offset
	n := len(d.ras)
	for i := 0; i < 4 && i < n; i++ {
		h ^= uint64(d.ras[n-1-i]) >> 2
		h *= 1099511628211
	}
	return h
}

func (d *RDIP) entry(sig uint64) *rdipEntry {
	return &d.entries[sig&d.mask]
}

func tagOfSig(sig uint64) uint16 { return uint16(sig >> 48) }

// OnDemand implements Design: record misses under the current signature.
func (d *RDIP) OnDemand(b isa.BlockID, hit bool, _ [2]isa.Addr) {
	if hit {
		return
	}
	e := d.entry(d.sig)
	tag := tagOfSig(d.sig)
	if !e.valid || e.tag != tag {
		*e = rdipEntry{valid: true, tag: tag}
	}
	for i := 0; i < int(e.n); i++ {
		if e.blocks[i] == b {
			return
		}
	}
	if int(e.n) < rdipBlocksPerSig {
		e.blocks[e.n] = b
		e.n++
	} else {
		e.blocks[e.next] = b
		e.next = (e.next + 1) % rdipBlocksPerSig
	}
	d.Recorded++
}

// OnRetire implements Design: calls and returns switch the signature and
// trigger the new context's miss set.
func (d *RDIP) OnRetire(inst isa.Inst, taken bool, target isa.Addr) {
	switch inst.Kind {
	case isa.KindCall, isa.KindIndirect:
		if !taken {
			return
		}
		if len(d.ras) == cap(d.ras) {
			copy(d.ras, d.ras[1:])
			d.ras = d.ras[:len(d.ras)-1]
		}
		d.ras = append(d.ras, inst.NextPC())
	case isa.KindReturn:
		if n := len(d.ras); n > 0 {
			d.ras = d.ras[:n-1]
		}
	default:
		return
	}
	d.sig = d.signature()
	d.prefetchSet(d.sig)
}

// prefetchSet issues the signature's recorded miss set.
func (d *RDIP) prefetchSet(sig uint64) {
	e := d.entry(sig)
	if !e.valid || e.tag != tagOfSig(sig) {
		return
	}
	env := d.E()
	for i := 0; i < int(e.n); i++ {
		b := e.blocks[i]
		if env.L1iContains(b) || env.InFlight(b) {
			continue
		}
		if env.IssuePrefetch(b, false) {
			d.Issued++
		}
	}
}

// StorageBits implements Design: tag + up to 8 block addresses per entry.
func (d *RDIP) StorageBits() int {
	return len(d.entries) * (16 + rdipBlocksPerSig*46)
}
