package prefetch

import (
	"testing"

	"dnc/internal/cache"
	"dnc/internal/isa"
)

// TestSN4LTriggerMatrix pins the trigger rules: which nibble source governs
// the candidates (the resident line's cached Aux on hits, the SeqTable on
// misses) and which candidate bits issue prefetches.
func TestSN4LTriggerMatrix(t *testing.T) {
	const blk = isa.BlockID(100)
	cases := []struct {
		name string
		hit  bool
		// aux is the resident line's local status (hits only).
		aux uint8
		// reset marks SeqTable entries unuseful before the access.
		reset []isa.BlockID
		want  []isa.BlockID
	}{
		{name: "hit/full-nibble", hit: true, aux: 0b1111, want: []isa.BlockID{101, 102, 103, 104}},
		{name: "hit/sparse-nibble", hit: true, aux: 0b0101, want: []isa.BlockID{101, 103}},
		{name: "hit/zero-nibble", hit: true, aux: 0, want: nil},
		// On a hit the cached nibble is authoritative even when the
		// SeqTable disagrees — that is the point of the local status bits.
		{name: "hit/stale-table", hit: true, aux: 0b0001, reset: []isa.BlockID{101}, want: []isa.BlockID{101}},
		{name: "miss/table-direct", hit: false, reset: []isa.BlockID{102, 104}, want: []isa.BlockID{101, 103}},
		{name: "miss/all-useful", hit: false, want: []isa.BlockID{101, 102, 103, 104}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := newFakeEnv()
			d := NewSN4L(1024, 2048)
			d.Bind(env)
			for _, b := range tc.reset {
				d.Table().Reset(b)
			}
			if tc.hit {
				env.install(blk).Aux = tc.aux
			}
			d.OnDemand(blk, tc.hit, [2]isa.Addr{})
			got := issuedSet(env.issued)
			for _, b := range tc.want {
				if !got[b] {
					t.Errorf("candidate %d not prefetched: %v", b, env.issued)
				}
			}
			if len(env.issued) != len(tc.want) {
				t.Errorf("issued %v, want exactly %v", env.issued, tc.want)
			}
		})
	}
}

// TestSN4LDedupAgainstCacheState pins the issue-side filtering: resident and
// in-flight candidates are skipped without consuming an issue slot.
func TestSN4LDedupAgainstCacheState(t *testing.T) {
	env := newFakeEnv()
	d := NewSN4L(1024, 2048)
	d.Bind(env)
	env.install(102)         // resident: skip
	env.inflight[103] = true // outstanding: skip
	d.OnDemand(100, false, [2]isa.Addr{})
	got := issuedSet(env.issued)
	if got[102] || got[103] {
		t.Fatalf("resident/in-flight candidates issued: %v", env.issued)
	}
	if !got[101] || !got[104] {
		t.Fatalf("free candidates not issued: %v", env.issued)
	}
	if d.Issued != 2 {
		t.Fatalf("Issued = %d, want 2", d.Issued)
	}
}

// TestSN4LMissMarksSelfUseful pins the learning rule that re-arms an entry:
// a miss proves the block is worth prefetching and must also refresh the
// stale local-status bit of a resident predecessor.
func TestSN4LMissMarksSelfUseful(t *testing.T) {
	env := newFakeEnv()
	d := NewSN4L(1024, 2048)
	d.Bind(env)
	d.Table().Reset(200)
	pred := env.install(199) // holds bit 0 for block 200
	pred.Aux = 0
	d.OnDemand(200, false, [2]isa.Addr{})
	if !d.Table().Get(200) {
		t.Fatal("miss did not re-arm the SeqTable entry")
	}
	if pred.Aux&1 == 0 {
		t.Fatal("miss did not refresh the predecessor's local status bit")
	}
}

// TestSN4LUsefulHitCounter pins the UsefulHits statistic: only demand hits
// on still-tagged prefetched lines count, and each line counts once.
func TestSN4LUsefulHitCounter(t *testing.T) {
	env := newFakeEnv()
	d := NewSN4L(1024, 2048)
	d.Bind(env)
	l := env.install(300)
	l.Flags |= cache.FlagPrefetched
	d.OnDemand(300, true, [2]isa.Addr{})
	d.OnDemand(300, true, [2]isa.Addr{}) // flag already consumed
	if d.UsefulHits != 1 {
		t.Fatalf("UsefulHits = %d, want 1", d.UsefulHits)
	}
}

// TestSN4LUnlimitedTable pins the unlimited (0-entry) reference
// configuration of Figure 11: entries never alias.
func TestSN4LUnlimitedTable(t *testing.T) {
	tab := NewSeqTable(0)
	tab.Reset(7)
	if tab.Get(7) {
		t.Fatal("reset lost")
	}
	if !tab.Get(7 + 1<<20) {
		t.Fatal("distant block aliased in the unlimited table")
	}
}
