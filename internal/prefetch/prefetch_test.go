package prefetch

import (
	"testing"

	"dnc/internal/cache"
	"dnc/internal/isa"
)

// fakeEnv is a scriptable prefetch.Env for unit tests.
type fakeEnv struct {
	cycle    uint64
	resident map[isa.BlockID]*cache.Line
	inflight map[isa.BlockID]bool
	issued   []isa.BlockID
	buffered []isa.BlockID
	image    *isa.Image
	predict  map[isa.Addr]bool

	lookups uint64
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{
		resident: make(map[isa.BlockID]*cache.Line),
		inflight: make(map[isa.BlockID]bool),
		predict:  make(map[isa.Addr]bool),
	}
}

func (e *fakeEnv) Cycle() uint64 { return e.cycle }

func (e *fakeEnv) L1iContains(b isa.BlockID) bool {
	e.lookups++
	_, ok := e.resident[b]
	return ok
}

func (e *fakeEnv) L1iLine(b isa.BlockID) *cache.Line { return e.resident[b] }

func (e *fakeEnv) InFlight(b isa.BlockID) bool { return e.inflight[b] }

func (e *fakeEnv) IssuePrefetch(b isa.BlockID, buffered bool) bool {
	if _, ok := e.resident[b]; ok {
		return false
	}
	if e.inflight[b] {
		return false
	}
	e.inflight[b] = true
	if buffered {
		e.buffered = append(e.buffered, b)
	} else {
		e.issued = append(e.issued, b)
	}
	return true
}

func (e *fakeEnv) Predecode(b isa.BlockID) []isa.Branch {
	if e.image == nil {
		return nil
	}
	return isa.PredecodeBlock(e.image, b)
}

func (e *fakeEnv) DecodeBranchAt(b isa.BlockID, off uint8) (isa.Branch, bool) {
	if e.image == nil {
		return isa.Branch{}, false
	}
	return isa.DecodeBranchAt(e.image, b, off)
}

func (e *fakeEnv) PredictTaken(pc isa.Addr) bool { return e.predict[pc] }

// install makes a block resident and returns its line.
func (e *fakeEnv) install(b isa.BlockID) *cache.Line {
	l := &cache.Line{}
	e.resident[b] = l
	return l
}

// fill applies an in-flight block as arrived.
func (e *fakeEnv) fill(d Design, b isa.BlockID, prefetch bool) {
	delete(e.inflight, b)
	l := e.install(b)
	if prefetch {
		l.Flags |= cache.FlagPrefetched
	}
	d.OnFill(b, prefetch)
}

func issuedSet(blocks []isa.BlockID) map[isa.BlockID]bool {
	m := map[isa.BlockID]bool{}
	for _, b := range blocks {
		m[b] = true
	}
	return m
}

func TestNXLPrefetchesNextLines(t *testing.T) {
	env := newFakeEnv()
	d := NewNXL(4, 2048)
	d.Bind(env)
	env.install(101) // next block already resident; must be skipped
	d.OnDemand(100, true, [2]isa.Addr{})
	got := issuedSet(env.issued)
	if got[101] {
		t.Error("prefetched a resident block")
	}
	for _, b := range []isa.BlockID{102, 103, 104} {
		if !got[b] {
			t.Errorf("block %d not prefetched", b)
		}
	}
	if len(env.issued) != 3 {
		t.Errorf("issued %d prefetches, want 3", len(env.issued))
	}
}

func TestNXLNames(t *testing.T) {
	if NewNXL(1, 64).Name() != "NL" || NewNXL(8, 64).Name() != "N8L" {
		t.Error("NXL names wrong")
	}
}

func TestSeqTableDefaultsToPrefetch(t *testing.T) {
	tab := NewSeqTable(1024)
	if !tab.Get(5) {
		t.Fatal("entries must initialize set")
	}
	tab.Reset(5)
	if tab.Get(5) {
		t.Fatal("reset failed")
	}
	tab.Set(5)
	if !tab.Get(5) {
		t.Fatal("set failed")
	}
}

func TestSeqTableAliasing(t *testing.T) {
	tab := NewSeqTable(1024)
	tab.Reset(7)
	if tab.Get(7 + 1024) {
		t.Fatal("aliased entry should share the bit")
	}
}

func TestSeqTableNibble(t *testing.T) {
	tab := NewSeqTable(1024)
	tab.Reset(11)
	tab.Reset(13)
	// For block 10, subsequents 11..14 -> bits 0..3.
	want := uint8(0b1010) // 11 reset (bit0=0), 12 set, 13 reset, 14 set
	if got := tab.Nibble(10); got != want {
		t.Fatalf("nibble = %04b, want %04b", got, want)
	}
}

func TestSN4LSelectivity(t *testing.T) {
	env := newFakeEnv()
	d := NewSN4L(1024, 2048)
	d.Bind(env)
	// Mark block 102 useless.
	d.Table().Reset(102)
	d.OnDemand(100, false, [2]isa.Addr{})
	got := issuedSet(env.issued)
	if got[102] {
		t.Error("prefetched a block marked useless")
	}
	if !got[101] || !got[103] || !got[104] {
		t.Errorf("useful blocks not prefetched: %v", env.issued)
	}
}

func TestSN4LMissSetsEntry(t *testing.T) {
	env := newFakeEnv()
	d := NewSN4L(1024, 2048)
	d.Bind(env)
	d.Table().Reset(100)
	d.OnDemand(100, false, [2]isa.Addr{})
	if !d.Table().Get(100) {
		t.Fatal("miss did not set the block's SeqTable entry")
	}
}

func TestSN4LUsefulAndUselessVerdicts(t *testing.T) {
	env := newFakeEnv()
	d := NewSN4L(1024, 2048)
	d.Bind(env)

	// Useless: prefetched block evicted untouched.
	d.OnEvict(cache.Evicted{Block: 200, Flags: cache.FlagPrefetched})
	if d.Table().Get(200) {
		t.Fatal("evicted-unused prefetch did not reset entry")
	}

	// Useful: demand hit on a prefetched line sets the entry and clears the
	// flag.
	l := env.install(200)
	l.Flags |= cache.FlagPrefetched
	d.OnDemand(200, true, [2]isa.Addr{})
	if !d.Table().Get(200) {
		t.Fatal("demanded prefetch did not set entry")
	}
	if l.Flags&cache.FlagPrefetched != 0 {
		t.Fatal("prefetch flag not cleared on demand")
	}

	// Eviction of a non-prefetched line leaves the entry alone.
	d.OnEvict(cache.Evicted{Block: 200})
	if !d.Table().Get(200) {
		t.Fatal("eviction of demanded line reset entry")
	}
}

func TestSN4LLocalStatusOnFill(t *testing.T) {
	env := newFakeEnv()
	d := NewSN4L(1024, 2048)
	d.Bind(env)
	d.Table().Reset(101)
	env.install(100)
	d.OnFill(100, false)
	if env.resident[100].Aux&1 != 0 {
		t.Fatal("local status bit for a useless subsequent block should be 0")
	}
	if env.resident[100].Aux&0b1110 != 0b1110 {
		t.Fatalf("local status = %04b, want upper bits set", env.resident[100].Aux)
	}
}

func TestRefreshLocalPropagates(t *testing.T) {
	env := newFakeEnv()
	tab := NewSeqTable(1024)
	l := env.install(100) // holds nibble for 101..104
	tab.Reset(102)
	l.Aux = tab.Nibble(100)
	if l.Aux&0b0010 != 0 {
		t.Fatal("setup wrong")
	}
	tab.Set(102)
	refreshLocal(env, tab, 102)
	if l.Aux&0b0010 == 0 {
		t.Fatal("refreshLocal did not set the predecessor's bit")
	}
	tab.Reset(102)
	refreshLocal(env, tab, 102)
	if l.Aux&0b0010 != 0 {
		t.Fatal("refreshLocal did not clear the predecessor's bit")
	}
}

func TestDisTableRecordLookup(t *testing.T) {
	tab := NewDisTable(1024, 4)
	if _, ok := tab.Lookup(55); ok {
		t.Fatal("hit in empty table")
	}
	tab.Record(55, 12)
	off, ok := tab.Lookup(55)
	if !ok || off != 12 {
		t.Fatalf("lookup = %d, %v", off, ok)
	}
}

func TestDisTablePartialTagFiltersAliases(t *testing.T) {
	tagged := NewDisTable(1024, 4)
	tagged.Record(55, 12)
	alias := isa.BlockID(55 + 1024) // same index, different tag
	if _, ok := tagged.Lookup(alias); ok {
		t.Fatal("partial tag failed to filter an alias")
	}
	if tagged.Conflicts == 0 {
		t.Fatal("conflict not counted")
	}

	tagless := NewDisTable(1024, 0)
	tagless.Record(55, 12)
	if _, ok := tagless.Lookup(alias); !ok {
		t.Fatal("tagless table must alias (the Figure 12 overprediction)")
	}
}

// buildBranchImage lays out a fixed-mode block where slot 3 is a cond branch
// to target.
func buildBranchImage(base isa.Addr, target isa.Addr) *isa.Image {
	var code []byte
	for i := 0; i < 16; i++ {
		inst := isa.Inst{PC: base + isa.Addr(i*4), Size: 4, Kind: isa.KindALU}
		if i == 3 {
			inst.Kind = isa.KindCondBranch
			inst.Target = target
		}
		code = isa.AppendInst(code, isa.Fixed, inst)
	}
	return isa.NewImage(isa.Fixed, base, code)
}

func TestDisReplayPrefetchesTarget(t *testing.T) {
	env := newFakeEnv()
	base := isa.Addr(0x10000)
	target := isa.Addr(0x20000)
	env.image = buildBranchImage(base, target)
	d := NewDis(1024, 4, 2048)
	d.Bind(env)

	blk := isa.BlockOf(base)
	d.Table().Record(blk, 12) // byte offset of slot 3
	env.install(blk)
	d.OnDemand(blk, true, [2]isa.Addr{})
	if !issuedSet(env.issued)[isa.BlockOf(target)] {
		t.Fatalf("target block not prefetched: %v", env.issued)
	}
}

func TestDisReplayIgnoresStaleOffset(t *testing.T) {
	env := newFakeEnv()
	base := isa.Addr(0x10000)
	env.image = buildBranchImage(base, 0x20000)
	d := NewDis(1024, 4, 2048)
	d.Bind(env)

	blk := isa.BlockOf(base)
	d.Table().Record(blk, 0) // offset 0 is an ALU op
	env.install(blk)
	d.OnDemand(blk, true, [2]isa.Addr{})
	if len(env.issued) != 0 {
		t.Fatalf("stale offset caused prefetches: %v", env.issued)
	}
}

func TestDisRecordsFromLastTwoInstructions(t *testing.T) {
	env := newFakeEnv()
	base := isa.Addr(0x10000)
	env.image = buildBranchImage(base, 0x20000)
	d := NewDis(1024, 4, 2048)
	d.Bind(env)

	branchPC := base + 12
	// Miss on a far block; the branch is the second-to-last instruction
	// (delay-slot style).
	d.OnDemand(isa.BlockOf(0x20000), false, [2]isa.Addr{branchPC, base + 16})
	off, ok := d.Table().Lookup(isa.BlockOf(base))
	if !ok || off != 12 {
		t.Fatalf("recorded offset = %d, %v; want 12", off, ok)
	}
}

func TestDisDeferredReplayOnFill(t *testing.T) {
	env := newFakeEnv()
	base := isa.Addr(0x10000)
	target := isa.Addr(0x20000)
	env.image = buildBranchImage(base, target)
	d := NewDis(1024, 4, 2048)
	d.Bind(env)

	blk := isa.BlockOf(base)
	d.Table().Record(blk, 12)
	// Miss: replay must wait for the fill.
	d.OnDemand(blk, false, [2]isa.Addr{})
	if issuedSet(env.issued)[isa.BlockOf(target)] {
		t.Fatal("replayed before the block arrived")
	}
	env.fill(d, blk, false)
	if !issuedSet(env.issued)[isa.BlockOf(target)] {
		t.Fatal("deferred replay did not fire on fill")
	}
}

func TestRLU(t *testing.T) {
	r := NewRLU(2)
	if r.Contains(1) {
		t.Fatal("empty RLU contains")
	}
	r.Insert(1)
	r.Insert(2)
	if !r.Contains(1) || !r.Contains(2) {
		t.Fatal("inserted blocks missing")
	}
	r.Insert(3) // evicts 1 (FIFO)
	if r.Contains(1) || !r.Contains(3) {
		t.Fatal("FIFO replacement wrong")
	}
	// Duplicate insert must not evict.
	r.Insert(3)
	if !r.Contains(2) {
		t.Fatal("duplicate insert displaced an entry")
	}
	// Zero-entry RLU never contains.
	z := NewRLU(0)
	z.Insert(9)
	if z.Contains(9) {
		t.Fatal("zero-entry RLU stored a block")
	}
}

func TestBoundedQueue(t *testing.T) {
	q := newBoundedQueue(2)
	q.push(qItem{block: 1})
	q.push(qItem{block: 2})
	q.push(qItem{block: 3})
	if q.Drops != 1 {
		t.Fatalf("drops = %d", q.Drops)
	}
	it, ok := q.pop()
	if !ok || it.block != 1 {
		t.Fatalf("pop = %+v", it)
	}
	q.reset()
	if _, ok := q.pop(); ok {
		t.Fatal("pop after reset")
	}
}

func TestProactiveChainsThroughDiscontinuity(t *testing.T) {
	env := newFakeEnv()
	base := isa.Addr(0x10000)
	target := isa.Addr(0x20000)
	env.image = buildBranchImage(base, target)

	cfg := DefaultProactiveConfig()
	d := NewProactive(cfg)
	d.Bind(env)

	blk := isa.BlockOf(base)
	d.DisTable().Record(blk, 12)
	env.install(blk)
	d.OnFill(blk, false) // latch the local prefetch-status nibble

	// Demand access to blk triggers: SN4L candidates blk+1..blk+4, and Dis
	// replay of blk -> target block; the target chains SN1L -> target+1.
	d.OnDemand(blk, true, [2]isa.Addr{})
	for i := 0; i < 12; i++ {
		env.cycle++
		d.Tick()
	}
	got := issuedSet(env.issued)
	for _, b := range []isa.BlockID{blk + 1, blk + 2, blk + 3, blk + 4} {
		if !got[b] {
			t.Errorf("sequential candidate %d not prefetched", b)
		}
	}
	tb := isa.BlockOf(target)
	if !got[tb] {
		t.Errorf("discontinuity target %d not prefetched", tb)
	}
}

func TestProactiveSN1LBeyondDiscontinuity(t *testing.T) {
	env := newFakeEnv()
	base := isa.Addr(0x10000)
	target := isa.Addr(0x20000)
	env.image = buildBranchImage(base, target)

	d := NewProactive(DefaultProactiveConfig())
	d.Bind(env)
	blk := isa.BlockOf(base)
	tb := isa.BlockOf(target)
	d.DisTable().Record(blk, 12)
	env.install(blk)
	d.OnFill(blk, false)

	d.OnDemand(blk, true, [2]isa.Addr{})
	for i := 0; i < 20; i++ {
		env.cycle++
		d.Tick()
		// Deliver fills promptly so chains keep walking.
		for _, b := range append(append([]isa.BlockID{}, env.issued...), env.buffered...) {
			if env.inflight[b] {
				env.fill(d, b, true)
			}
		}
	}
	got := issuedSet(env.issued)
	if !got[tb+1] {
		t.Errorf("SN1L did not prefetch the discontinuity region's next line (%d): %v", tb+1, env.issued)
	}
	// Sequential candidates do not chain deeper sequentially: blk+5 must
	// not be prefetched (SN4L reach is 4 from the demanded block).
	if got[blk+5] {
		t.Errorf("sequential chain exceeded SN4L reach: %v", env.issued)
	}
}

func TestProactiveBTBPrefetchFillsBuffer(t *testing.T) {
	env := newFakeEnv()
	base := isa.Addr(0x10000)
	env.image = buildBranchImage(base, 0x20000)

	cfg := DefaultProactiveConfig()
	cfg.WithBTBPrefetch = true
	d := NewProactive(cfg)
	d.Bind(env)

	blk := isa.BlockOf(base)
	env.install(blk)
	d.OnDemand(blk, true, [2]isa.Addr{})
	for i := 0; i < 4; i++ {
		env.cycle++
		d.Tick()
	}
	if d.PBFills == 0 {
		t.Fatal("pre-decoder never filled the BTB prefetch buffer")
	}
	// The branch in blk must now be promotable on a BTB miss.
	if _, hit := d.BTBLookup(base+12, isa.KindCondBranch); !hit {
		t.Fatal("prefetch buffer promotion failed")
	}
	if d.ConvBTB().PBPromotions == 0 {
		t.Fatal("promotion not counted")
	}
}

func TestConvBTBPromotionInsertsWholeBlock(t *testing.T) {
	c := NewConvBTB(2048, 4)
	c.PB = nil
	if _, ok := c.Lookup(0x100, isa.KindJump); ok {
		t.Fatal("hit in empty BTB")
	}
	c.Commit(0x100, isa.KindJump, 0x900, true)
	if target, ok := c.Lookup(0x100, isa.KindJump); !ok || target != 0x900 {
		t.Fatalf("lookup = %#x, %v", target, ok)
	}
}

func TestDiscontinuityDesign(t *testing.T) {
	env := newFakeEnv()
	d := NewDiscontinuity(1024, 8, 2048)
	d.Bind(env)

	// Record: access block 10, then a discontinuity miss at 50.
	d.OnDemand(10, true, [2]isa.Addr{})
	d.OnDemand(50, false, [2]isa.Addr{})
	if d.Recorded != 1 {
		t.Fatalf("recorded = %d", d.Recorded)
	}
	// Sequential misses must not record.
	d.OnDemand(51, false, [2]isa.Addr{})
	if d.Recorded != 1 {
		t.Fatalf("sequential miss recorded a discontinuity")
	}
	// Replay: next access to block 10 prefetches 50.
	env.issued = nil
	d.OnDemand(10, true, [2]isa.Addr{})
	if !issuedSet(env.issued)[50] {
		t.Fatalf("discontinuity target not prefetched: %v", env.issued)
	}
}

func TestConfluenceStreamReplay(t *testing.T) {
	env := newFakeEnv()
	d := NewConfluence(DefaultConfluenceConfig())
	d.Bind(env)

	// First pass: record a miss sequence.
	seq := []isa.BlockID{100, 250, 71, 300, 90, 401}
	for _, b := range seq {
		d.OnDemand(b, false, [2]isa.Addr{})
	}
	// Second pass: the repeat miss of 100 should replay the stream.
	env.issued = nil
	d.OnDemand(100, false, [2]isa.Addr{})
	if d.StreamStarts == 0 {
		t.Fatal("stream did not start on a history hit")
	}
	got := issuedSet(env.issued)
	for _, b := range seq[1:] {
		if !got[b] {
			t.Errorf("stream did not prefetch %d: %v", b, env.issued)
		}
	}
}

func TestConfluenceRedirectKillsStream(t *testing.T) {
	env := newFakeEnv()
	d := NewConfluence(ConfluenceConfig{
		HistEntries: 1024, IndexEntries: 1024, BTBEntries: 1024, Lookahead: 2,
	})
	d.Bind(env)
	seq := []isa.BlockID{10, 20, 30, 40, 50, 60}
	for _, b := range seq {
		d.OnDemand(b, false, [2]isa.Addr{})
	}
	env.issued = nil
	d.OnDemand(10, false, [2]isa.Addr{}) // starts stream, lookahead 2
	n := len(env.issued)
	d.OnRedirect(0)
	d.OnDemand(20, true, [2]isa.Addr{}) // hit: would advance a live stream
	if len(env.issued) != n {
		t.Fatal("stream survived a redirect")
	}
}

func TestStorageBudgets(t *testing.T) {
	// Table II: the full design is ~7.6 KB; Shotgun ~6 KB over its BTB.
	full := NewProactive(func() ProactiveConfig {
		c := DefaultProactiveConfig()
		c.WithBTBPrefetch = true
		return c
	}())
	bits := full.StorageBits()
	if kb := float64(bits) / 8 / 1024; kb < 6 || kb > 9 {
		t.Errorf("SN4L+Dis+BTB storage = %.1f KB, want ~7.6 KB", kb)
	}

	shot := NewShotgun(DefaultShotgunDesignConfig())
	if kb := float64(shot.StorageBits()) / 8 / 1024; kb < 4 || kb > 12 {
		t.Errorf("Shotgun storage = %.1f KB, want ~6 KB", kb)
	}

	conf := NewConfluence(DefaultConfluenceConfig())
	if kb := float64(conf.StorageBits()) / 8 / 1024; kb < 100 {
		t.Errorf("Confluence storage = %.1f KB, want > 100 KB (the paper's 200+ KB class)", kb)
	}
}

func TestNXLTriggerPolicies(t *testing.T) {
	// NL-miss: hits must not trigger.
	env := newFakeEnv()
	miss := NewNXLTriggered(2, 2048, TriggerMiss)
	miss.Bind(env)
	env.install(100)
	miss.OnDemand(100, true, [2]isa.Addr{})
	if len(env.issued) != 0 {
		t.Fatalf("NL-miss fired on a hit: %v", env.issued)
	}
	miss.OnDemand(200, false, [2]isa.Addr{})
	if len(env.issued) != 2 {
		t.Fatalf("NL-miss did not fire on a miss: %v", env.issued)
	}
	if miss.Name() != "N2L-miss" {
		t.Fatalf("name = %q", miss.Name())
	}

	// NL-tagged: fires on misses and on hits to prefetched lines only.
	env = newFakeEnv()
	tagged := NewNXLTriggered(1, 2048, TriggerTagged)
	tagged.Bind(env)
	l := env.install(300)
	tagged.OnDemand(300, true, [2]isa.Addr{}) // plain hit: no fire
	if len(env.issued) != 0 {
		t.Fatalf("NL-tagged fired on an untagged hit: %v", env.issued)
	}
	l.Flags |= cache.FlagPrefetched
	tagged.OnDemand(300, true, [2]isa.Addr{})
	if len(env.issued) != 1 || env.issued[0] != 301 {
		t.Fatalf("NL-tagged did not fire on a tagged hit: %v", env.issued)
	}
	if tagged.Name() != "NL-tagged" {
		t.Fatalf("name = %q", tagged.Name())
	}
}

func TestRDIPRecordsAndReplays(t *testing.T) {
	env := newFakeEnv()
	d := NewRDIP(1024, 2048)
	d.Bind(env)

	call := isa.Inst{PC: 0x1000, Size: 4, Kind: isa.KindCall, Target: 0x9000}
	ret := isa.Inst{PC: 0x9004, Size: 4, Kind: isa.KindReturn}

	// Enter a context and record misses under it.
	d.OnRetire(call, true, 0x9000)
	d.OnDemand(500, false, [2]isa.Addr{})
	d.OnDemand(501, false, [2]isa.Addr{})
	if d.Recorded != 2 {
		t.Fatalf("recorded = %d", d.Recorded)
	}
	// Leave and re-enter the same context: the miss set replays.
	d.OnRetire(ret, true, 0x1004)
	env.issued = nil
	d.OnRetire(call, true, 0x9000)
	got := issuedSet(env.issued)
	if !got[500] || !got[501] {
		t.Fatalf("miss set not replayed: %v", env.issued)
	}
}

func TestRDIPSignatureDependsOnStack(t *testing.T) {
	env := newFakeEnv()
	d := NewRDIP(1024, 2048)
	d.Bind(env)
	callA := isa.Inst{PC: 0x1000, Size: 4, Kind: isa.KindCall, Target: 0x9000}
	callB := isa.Inst{PC: 0x2000, Size: 4, Kind: isa.KindCall, Target: 0x9000}

	d.OnRetire(callA, true, 0x9000)
	d.OnDemand(700, false, [2]isa.Addr{})
	d.OnRetire(isa.Inst{PC: 0x9004, Size: 4, Kind: isa.KindReturn}, true, 0x1004)

	// A different call site gives a different signature: no replay.
	env.issued = nil
	d.OnRetire(callB, true, 0x9000)
	if issuedSet(env.issued)[700] {
		t.Fatalf("different context replayed another context's misses")
	}
}

func TestPIFRegionCompaction(t *testing.T) {
	env := newFakeEnv()
	p := NewPIF(PIFConfig{HistRegions: 64, IndexEntries: 64, BTBEntries: 64, Lookahead: 2})
	p.Bind(env)
	// Retire instructions within one spatial region: no region logged yet.
	for _, b := range []isa.BlockID{100, 101, 102, 100} {
		p.OnRetire(isa.Inst{PC: isa.BlockBase(b), Size: 4, Kind: isa.KindALU}, false, 0)
	}
	if p.RegionsLogged != 0 {
		t.Fatalf("intra-region retires logged %d regions", p.RegionsLogged)
	}
	// Jumping far away closes the region.
	p.OnRetire(isa.Inst{PC: isa.BlockBase(500), Size: 4, Kind: isa.KindALU}, false, 0)
	if p.RegionsLogged != 1 {
		t.Fatalf("region not logged on spatial break: %d", p.RegionsLogged)
	}
}

func TestPIFStreamReplay(t *testing.T) {
	env := newFakeEnv()
	p := NewPIF(PIFConfig{HistRegions: 64, IndexEntries: 64, BTBEntries: 64, Lookahead: 4})
	p.Bind(env)
	// Record a stream of three regions: 100*, 500*, 900*.
	for _, b := range []isa.BlockID{100, 101, 500, 501, 502, 900, 1300} {
		p.OnRetire(isa.Inst{PC: isa.BlockBase(b), Size: 4, Kind: isa.KindALU}, false, 0)
	}
	// A miss on the first trigger replays the following regions.
	env.issued = nil
	p.OnDemand(100, false, [2]isa.Addr{})
	if p.StreamStarts != 1 {
		t.Fatalf("stream starts = %d", p.StreamStarts)
	}
	got := issuedSet(env.issued)
	for _, b := range []isa.BlockID{500, 501, 502, 900} {
		if !got[b] {
			t.Fatalf("stream missed block %d: %v", b, env.issued)
		}
	}
}

func TestPIFStorageBudget(t *testing.T) {
	p := NewPIF(DefaultPIFConfig())
	kb := float64(p.StorageBits()) / 8 / 1024
	if kb < 150 || kb > 300 {
		t.Fatalf("PIF storage = %.0f KB, want the paper's ~200 KB class", kb)
	}
}
