package prefetch

import "dnc/internal/isa"

// PIF is Proactive Instruction Fetch (Ferdman, Kaynak, Falsafi; MICRO 2011
// — the paper's reference [15]): access-based temporal prefetching. The
// retire-order instruction stream is compacted into spatial regions (a
// trigger block plus a bit vector of its neighborhood) and logged in a
// history buffer; an index maps a trigger block to its latest history
// position. When fetch misses on a block that matches a recorded trigger,
// PIF replays the stream from that point, prefetching whole regions ahead
// of fetch.
//
// PIF is the strongest — and most expensive — instruction prefetcher of the
// temporal family: the paper cites roughly 200 KB of per-core metadata,
// which is exactly what StorageBits reports for the default configuration.
type PIF struct {
	Base
	btb *ConvBTB

	// Region under construction from the retired stream.
	curTrigger isa.BlockID
	curBits    uint16
	haveCur    bool

	// History buffer of compacted regions.
	hist    []pifRegion
	histPos int
	full    bool

	// Index: trigger block -> history position (direct-mapped, partial
	// tags).
	idxValid []bool
	idxTag   []uint16
	idxPos   []int32
	idxMask  uint64

	// Active replay stream.
	streamPos  int
	streamLive bool

	// Lookahead is how many regions the stream keeps in flight ahead of
	// fetch.
	Lookahead int

	// Stats.
	RegionsLogged    uint64
	StreamStarts     uint64
	StreamPrefetches uint64
}

// pifRegionSpan is the neighborhood a region covers: the trigger block plus
// pifRegionBefore blocks behind and the rest ahead.
const (
	pifRegionBits   = 16
	pifRegionBefore = 4
)

type pifRegion struct {
	trigger isa.BlockID
	bits    uint16 // bit i = block trigger-pifRegionBefore+i accessed
}

// blocks expands a region into absolute block IDs.
func (r pifRegion) blocks() []isa.BlockID {
	var out []isa.BlockID
	for i := 0; i < pifRegionBits; i++ {
		if r.bits&(1<<uint(i)) == 0 {
			continue
		}
		delta := i - pifRegionBefore
		if delta < 0 && isa.BlockID(-delta) > r.trigger {
			continue
		}
		out = append(out, isa.BlockID(int64(r.trigger)+int64(delta)))
	}
	return out
}

// PIFConfig sizes the design.
type PIFConfig struct {
	HistRegions  int
	IndexEntries int
	BTBEntries   int
	Lookahead    int
}

// DefaultPIFConfig matches the ~200 KB metadata budget the paper cites.
func DefaultPIFConfig() PIFConfig {
	return PIFConfig{
		HistRegions:  32 << 10,
		IndexEntries: 16 << 10,
		BTBEntries:   2 << 10,
		Lookahead:    4,
	}
}

// NewPIF builds the design.
func NewPIF(cfg PIFConfig) *PIF {
	if cfg.HistRegions == 0 {
		cfg = DefaultPIFConfig()
	}
	if cfg.IndexEntries&(cfg.IndexEntries-1) != 0 {
		panic("prefetch: PIF index entries must be a power of two")
	}
	return &PIF{
		btb:      NewConvBTB(cfg.BTBEntries, 4),
		hist:     make([]pifRegion, cfg.HistRegions),
		idxValid: make([]bool, cfg.IndexEntries),
		idxTag:   make([]uint16, cfg.IndexEntries),
		idxPos:   make([]int32, cfg.IndexEntries),
		idxMask:  uint64(cfg.IndexEntries - 1),
		Lookahead: func() int {
			if cfg.Lookahead == 0 {
				return 4
			}
			return cfg.Lookahead
		}(),
	}
}

// Name implements Design.
func (*PIF) Name() string { return "PIF" }

// BTBLookup implements Design.
func (p *PIF) BTBLookup(pc isa.Addr, kind isa.Kind) (isa.Addr, bool) {
	return p.btb.Lookup(pc, kind)
}

// BTBCommit implements Design.
func (p *PIF) BTBCommit(pc isa.Addr, kind isa.Kind, target isa.Addr, taken bool) {
	p.btb.Commit(pc, kind, target, taken)
}

func (p *PIF) idxOf(b isa.BlockID) uint64    { return uint64(b) & p.idxMask }
func (p *PIF) idxTagOf(b isa.BlockID) uint16 { return uint16((uint64(b) >> 14) & 0x3FF) }

// OnRetire implements Design: compact the retire-order stream into spatial
// regions.
func (p *PIF) OnRetire(inst isa.Inst, taken bool, target isa.Addr) {
	b := isa.BlockOf(inst.PC)
	if p.haveCur {
		delta := int64(b) - int64(p.curTrigger) + pifRegionBefore
		if delta >= 0 && delta < pifRegionBits {
			p.curBits |= 1 << uint(delta)
			return
		}
		p.logRegion()
	}
	p.curTrigger = b
	p.curBits = 1 << pifRegionBefore
	p.haveCur = true
}

// logRegion appends the open region to the history and indexes its trigger.
func (p *PIF) logRegion() {
	p.hist[p.histPos] = pifRegion{trigger: p.curTrigger, bits: p.curBits}
	i := p.idxOf(p.curTrigger)
	p.idxValid[i] = true
	p.idxTag[i] = p.idxTagOf(p.curTrigger)
	p.idxPos[i] = int32(p.histPos)
	p.histPos++
	if p.histPos == len(p.hist) {
		p.histPos = 0
		p.full = true
	}
	p.RegionsLogged++
}

// OnDemand implements Design: misses (re)position the replay stream; hits
// on prefetched blocks advance it.
func (p *PIF) OnDemand(b isa.BlockID, hit bool, _ [2]isa.Addr) {
	if hit {
		if p.streamLive {
			p.advance(1)
		}
		return
	}
	i := p.idxOf(b)
	if p.idxValid[i] && p.idxTag[i] == p.idxTagOf(b) {
		p.streamPos = int(p.idxPos[i])
		p.streamLive = true
		p.StreamStarts++
		p.advance(p.Lookahead)
	}
}

// advance replays the next n regions of the stream.
func (p *PIF) advance(n int) {
	env := p.E()
	for k := 0; k < n; k++ {
		p.streamPos++
		if p.streamPos >= len(p.hist) {
			if !p.full {
				p.streamLive = false
				return
			}
			p.streamPos = 0
		}
		if p.streamPos == p.histPos {
			p.streamLive = false
			return
		}
		for _, blk := range p.hist[p.streamPos].blocks() {
			if env.L1iContains(blk) || env.InFlight(blk) {
				continue
			}
			if env.IssuePrefetch(blk, false) {
				p.StreamPrefetches++
			}
		}
	}
}

// OnRedirect implements Design.
func (p *PIF) OnRedirect(isa.Addr) { p.streamLive = false }

// StorageBits implements Design: the history (26-bit trigger + 16-bit
// vector per region) plus the index — about 200 KB at the default sizes.
func (p *PIF) StorageBits() int {
	return len(p.hist)*(26+pifRegionBits) + len(p.idxValid)*(10+15)
}
