package prefetch

import (
	"testing"

	"dnc/internal/isa"
)

func pifRetire(p *PIF, b isa.BlockID) {
	p.OnRetire(isa.Inst{PC: isa.BlockBase(b), Size: 4, Kind: isa.KindALU}, false, 0)
}

func smallPIF(lookahead int) *PIF {
	return NewPIF(PIFConfig{HistRegions: 64, IndexEntries: 64, BTBEntries: 64, Lookahead: lookahead})
}

// TestPIFRegionSpanMatrix pins the spatial-compaction rule: retires within
// [trigger-4, trigger+11] fold into the open region; anything outside closes
// it.
func TestPIFRegionSpanMatrix(t *testing.T) {
	cases := []struct {
		name   string
		next   isa.BlockID // retired after trigger 100
		folded bool
	}{
		{name: "trigger+1", next: 101, folded: true},
		{name: "trigger-4", next: 96, folded: true},
		{name: "trigger-5", next: 95, folded: false},
		{name: "trigger+11", next: 111, folded: true},
		{name: "trigger+12", next: 112, folded: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := smallPIF(4)
			p.Bind(newFakeEnv())
			pifRetire(p, 100)
			pifRetire(p, tc.next)
			wantLogged := uint64(1)
			if tc.folded {
				wantLogged = 0
			}
			if p.RegionsLogged != wantLogged {
				t.Fatalf("RegionsLogged = %d, want %d", p.RegionsLogged, wantLogged)
			}
		})
	}
}

// TestPIFRegionExpansionClampsAtZero pins blocks(): deltas that would
// underflow block 0 are dropped, not wrapped.
func TestPIFRegionExpansionClampsAtZero(t *testing.T) {
	r := pifRegion{trigger: 2, bits: 0xFFFF}
	for _, b := range r.blocks() {
		if b > 2+11 {
			t.Fatalf("block %d outside the region's forward span", b)
		}
	}
	// trigger-3 and trigger-4 would be negative; the remaining 14 bits are
	// 2-(2..0) and 2+(1..11).
	if n := len(r.blocks()); n != 14 {
		t.Fatalf("expanded %d blocks, want 14 (underflow not clamped)", n)
	}
}

// TestPIFStreamReplaysRegionNeighborhood pins that replay issues a region's
// whole bit vector, not just its trigger.
func TestPIFStreamReplaysRegionNeighborhood(t *testing.T) {
	env := newFakeEnv()
	p := smallPIF(4)
	p.Bind(env)
	// Region A: trigger 100 plus 101, 103. Region B: far away, closes A.
	pifRetire(p, 100)
	pifRetire(p, 101)
	pifRetire(p, 103)
	pifRetire(p, 500)
	pifRetire(p, 900) // closes B so it reaches the history too

	env.issued = nil
	p.OnDemand(100, false, [2]isa.Addr{})
	got := issuedSet(env.issued)
	for _, b := range []isa.BlockID{500} {
		if !got[b] {
			t.Fatalf("replay missing next region's trigger %d: %v", b, env.issued)
		}
	}
	// The miss positions the stream at region A's history slot and replays
	// *following* regions; A's own neighborhood arrives via demand fetch.
	if got[101] || got[103] {
		t.Fatalf("replay re-issued the triggering region itself: %v", env.issued)
	}
}

// TestPIFStreamStopsAtWriteHead pins stream termination: replay must never
// run past the history write head into stale entries.
func TestPIFStreamStopsAtWriteHead(t *testing.T) {
	env := newFakeEnv()
	p := smallPIF(16) // lookahead far beyond the recorded stream
	p.Bind(env)
	for _, b := range []isa.BlockID{100, 500, 900} {
		pifRetire(p, b)
	}
	p.OnDemand(100, false, [2]isa.Addr{})
	if p.streamLive {
		t.Fatal("stream still live after crossing the write head")
	}
	// A later hit must not advance the dead stream.
	n := len(env.issued)
	p.OnDemand(500, true, [2]isa.Addr{})
	if len(env.issued) != n {
		t.Fatalf("dead stream issued prefetches: %v", env.issued[n:])
	}
}

// TestPIFHitAdvancesOnlyLiveStream pins the follow-up rule: hits advance an
// active stream one region at a time and do nothing otherwise.
func TestPIFHitAdvancesOnlyLiveStream(t *testing.T) {
	env := newFakeEnv()
	p := smallPIF(1)
	p.Bind(env)
	for _, b := range []isa.BlockID{100, 500, 900, 1300, 1700} {
		pifRetire(p, b)
	}
	// No stream: a hit is inert.
	p.OnDemand(100, true, [2]isa.Addr{})
	if len(env.issued) != 0 {
		t.Fatalf("hit without a stream issued prefetches: %v", env.issued)
	}
	// Start the stream (lookahead 1 → region 500 only), then advance by hit.
	p.OnDemand(100, false, [2]isa.Addr{})
	if !issuedSet(env.issued)[500] || issuedSet(env.issued)[900] {
		t.Fatalf("lookahead-1 replay wrong: %v", env.issued)
	}
	p.OnDemand(500, true, [2]isa.Addr{})
	if !issuedSet(env.issued)[900] {
		t.Fatalf("hit did not advance the stream: %v", env.issued)
	}
}

// TestPIFRedirectKillsStream pins the divergence rule: a fetch redirect
// invalidates the replay position.
func TestPIFRedirectKillsStream(t *testing.T) {
	env := newFakeEnv()
	p := smallPIF(1)
	p.Bind(env)
	for _, b := range []isa.BlockID{100, 500, 900} {
		pifRetire(p, b)
	}
	p.OnDemand(100, false, [2]isa.Addr{})
	p.OnRedirect(0)
	n := len(env.issued)
	p.OnDemand(500, true, [2]isa.Addr{})
	if len(env.issued) != n {
		t.Fatal("stream survived a redirect")
	}
}

// TestPIFIndexTagFiltersAliases pins the partial-tag check on the trigger
// index: a block aliasing the same slot with a different tag must not start
// a stream.
func TestPIFIndexTagFiltersAliases(t *testing.T) {
	env := newFakeEnv()
	p := smallPIF(4)
	p.Bind(env)
	for _, b := range []isa.BlockID{5, 500, 900} {
		pifRetire(p, b)
	}
	alias := isa.BlockID(5 + (1 << 14)) // same index slot (low 6 bits), different tag
	p.OnDemand(alias, false, [2]isa.Addr{})
	if p.StreamStarts != 0 {
		t.Fatal("aliased trigger started a stream across the tag boundary")
	}
}
