package prefetch

import (
	"dnc/internal/btb"
	"dnc/internal/isa"
)

// Shotgun (Kumar et al., ASPLOS 2018) extends Boomerang for large
// instruction footprints: the BTB is split into a large U-BTB for basic
// blocks ending in unconditional branches — whose entries carry call/return
// footprints of the blocks touched around the branch target and return site
// — plus a small C-BTB for conditionals and a RIB for returns. On a U-BTB
// hit the engine bulk-prefetches the footprint blocks without walking the
// conditional branches inside the region; the C-BTB is kept warm by
// aggressively pre-decoding prefetched blocks. When a U-BTB entry or its
// footprints are missing (they can only be constructed from the retired
// stream), the engine degenerates to block-at-a-time reactive prefill — the
// failure mode quantified in the paper's Section III.
type Shotgun struct {
	Base
	sb *btb.ShotgunBTB
	// bypc mirrors entries keyed by branch PC for the core's per-branch
	// lookups, split per structure to model their distinct capacities.
	bypcU *btb.Table[btb.Entry]
	bypcC *btb.Table[btb.Entry]
	bypcR *btb.Table[btb.Entry]
	rec   *bbRecorder
	q     *ftq

	walkPC    isa.Addr
	walkValid bool
	stalled   bool
	stalledOn isa.BlockID
	specRAS   []shotgunRASEntry

	// lastUStart is the start address of the most recently committed basic
	// block ending in an unconditional branch; footprint regions are
	// attributed to it.
	lastUStart isa.Addr

	// Open footprint-recording region (constructed from the retired
	// stream).
	region struct {
		open  bool
		owner isa.Addr // U-BTB key (basic-block start) owning the region
		base  isa.BlockID
		fp    btb.Footprint
		isRet bool
	}
	fpStack []isa.Addr // call-site owners awaiting their return footprint

	// WalkBudget is basic blocks advanced per cycle.
	WalkBudget int

	// Buffered selects whether prefetches land in the L1i prefetch buffer
	// (the paper's Shotgun uses a 64-entry buffer) or directly in the L1i.
	Buffered bool

	// Stats.
	ReactiveFills     uint64
	Squashes          uint64
	FootprintPrefetch uint64
	EnginePrefetches  uint64
	ProactivePrefills uint64
}

type shotgunRASEntry struct {
	ret   isa.Addr
	retFP btb.Footprint
}

// ShotgunDesignConfig wraps the BTB sizing plus engine parameters.
type ShotgunDesignConfig struct {
	BTB        btb.ShotgunConfig
	FTQEntries int
	WalkBudget int
	Buffered   bool
}

// DefaultShotgunDesignConfig matches the paper: 1.5K U-BTB, 128 C-BTB,
// 512 RIB, 32-entry FTQ, 64-entry L1i prefetch buffer.
func DefaultShotgunDesignConfig() ShotgunDesignConfig {
	return ShotgunDesignConfig{
		BTB:        btb.DefaultShotgunConfig(),
		FTQEntries: 32,
		WalkBudget: 2,
		Buffered:   true,
	}
}

// NewShotgun builds the design.
func NewShotgun(cfg ShotgunDesignConfig) *Shotgun {
	if cfg.FTQEntries == 0 {
		cfg = DefaultShotgunDesignConfig()
	}
	d := &Shotgun{
		sb:         btb.NewShotgun(cfg.BTB),
		bypcU:      btb.NewTable[btb.Entry](cfg.BTB.UEntries, cfg.BTB.UWays),
		bypcC:      btb.NewTable[btb.Entry](cfg.BTB.CEntries, cfg.BTB.CWays),
		bypcR:      btb.NewTable[btb.Entry](cfg.BTB.REntries, cfg.BTB.RWays),
		q:          newFTQ(cfg.FTQEntries),
		WalkBudget: cfg.WalkBudget,
		Buffered:   cfg.Buffered,
	}
	d.rec = newBBRecorder(0, d.commitBB)
	return d
}

// Name implements Design.
func (*Shotgun) Name() string { return "shotgun" }

// SplitBTB exposes the underlying structure (Figure 1 harness).
func (d *Shotgun) SplitBTB() *btb.ShotgunBTB { return d.sb }

// bypcFor routes a branch kind to its per-PC view.
func (d *Shotgun) bypcFor(kind isa.Kind) *btb.Table[btb.Entry] {
	switch kind {
	case isa.KindCondBranch:
		return d.bypcC
	case isa.KindReturn:
		return d.bypcR
	default:
		return d.bypcU
	}
}

// BTBLookup implements Design: search the three structures.
func (d *Shotgun) BTBLookup(pc isa.Addr, kind isa.Kind) (isa.Addr, bool) {
	if e, ok := d.bypcFor(kind).Lookup(pc); ok {
		return e.Target, true
	}
	return 0, false
}

// BTBCommit implements Design.
func (d *Shotgun) BTBCommit(pc isa.Addr, kind isa.Kind, target isa.Addr, taken bool) {
	t := d.bypcFor(kind)
	if kind == isa.KindCondBranch && !taken {
		if _, ok := t.Peek(pc); ok {
			return
		}
	}
	t.Insert(pc, btb.Entry{Kind: kind, Target: target})
}

// OnRetire implements Design: delimit basic blocks, train the split BTB,
// and record footprints from the retired stream.
func (d *Shotgun) OnRetire(inst isa.Inst, taken bool, target isa.Addr) {
	// Footprint recording: every committed instruction adds its block to
	// the open region.
	if d.region.open {
		d.region.fp.Set(int(int64(isa.BlockOf(inst.PC)) - int64(d.region.base)))
	}
	d.rec.retire(inst, taken, target)

	if !inst.Kind.IsBranch() {
		return
	}
	switch inst.Kind {
	case isa.KindJump, isa.KindCall, isa.KindIndirect:
		d.closeRegion()
		// commitBB (called through rec.retire above) recorded the start of
		// the basic block ending in this branch; that entry owns the new
		// region around the branch target.
		if taken && target != 0 {
			d.openRegion(d.lastUStart, isa.BlockOf(target), false)
		}
		if inst.Kind == isa.KindCall || inst.Kind == isa.KindIndirect {
			d.pushFPOwner(d.lastUStart)
		}
	case isa.KindReturn:
		d.closeRegion()
		if owner, ok := d.popFPOwner(); ok && target != 0 {
			d.openRegion(owner, isa.BlockOf(target), true)
		}
	}
}

// commitBB receives completed basic blocks from the recorder.
func (d *Shotgun) commitBB(start isa.Addr, e btb.BBEntry) {
	switch e.Kind {
	case isa.KindCondBranch:
		d.sb.C.Insert(start, e)
	case isa.KindReturn:
		d.sb.RIB.Insert(start, e)
	case isa.KindJump, isa.KindCall, isa.KindIndirect:
		d.sb.CommitU(start, btb.UBBEntry{BB: e})
		// The region opened by OnRetire for this branch is owned by this
		// basic block.
		d.lastUStart = start
	}
	if e.Kind.IsBranch() {
		d.bypcFor(e.Kind).Insert(e.BranchPC, btb.Entry{Kind: e.Kind, Target: e.Target})
	}
}

func (d *Shotgun) openRegion(owner isa.Addr, base isa.BlockID, isRet bool) {
	d.region.open = true
	d.region.owner = owner
	d.region.base = base
	d.region.fp = btb.Footprint{}
	d.region.isRet = isRet
}

func (d *Shotgun) closeRegion() {
	if !d.region.open {
		return
	}
	if d.region.isRet {
		d.sb.UpdateFootprints(d.region.owner, nil, &d.region.fp)
	} else {
		d.sb.UpdateFootprints(d.region.owner, &d.region.fp, nil)
	}
	d.region.open = false
}

func (d *Shotgun) pushFPOwner(owner isa.Addr) {
	const depth = 16
	if len(d.fpStack) == depth {
		copy(d.fpStack, d.fpStack[1:])
		d.fpStack = d.fpStack[:depth-1]
	}
	d.fpStack = append(d.fpStack, owner)
}

func (d *Shotgun) popFPOwner() (isa.Addr, bool) {
	if len(d.fpStack) == 0 {
		return 0, false
	}
	v := d.fpStack[len(d.fpStack)-1]
	d.fpStack = d.fpStack[:len(d.fpStack)-1]
	return v, true
}

// QueueOccupancy implements OccupancyReporter: the FTQ's current depth.
func (d *Shotgun) QueueOccupancy() int { return len(d.q.blocks) }

// FTQGate implements Design.
func (d *Shotgun) FTQGate(pc isa.Addr) bool {
	b := isa.BlockOf(pc)
	if h, ok := d.q.head(); ok {
		if h == b {
			d.q.pop()
			return true
		}
		d.Squashes++
		d.restart(pc)
		return false
	}
	if !d.walkValid && !d.stalled {
		d.restart(pc)
	}
	return false
}

// OnRedirect implements Design.
func (d *Shotgun) OnRedirect(pc isa.Addr) {
	d.restart(pc)
	d.rec.redirect(pc)
}

func (d *Shotgun) restart(pc isa.Addr) {
	d.q.reset()
	d.specRAS = d.specRAS[:0]
	d.stalled = false
	d.walkPC = pc
	d.walkValid = true
}

// OnFill implements Design: resume reactive repairs and proactively
// pre-decode prefetched blocks into the C-BTB/RIB (Shotgun's aggressive
// prefill).
func (d *Shotgun) OnFill(b isa.BlockID, prefetch bool) {
	// Aggressive prefill: every arriving block is pre-decoded and its
	// branches installed (the mechanism keeping the small C-BTB alive).
	d.proactivePrefill(b)
	if d.stalled && b == d.stalledOn {
		d.stalled = false
		d.reactiveDecode(b)
	}
}

// reactiveDecode pre-decodes the block that repaired a BTB miss, installs
// the basic block at the stalled walk point, and consumes it immediately so
// the walk advances even for fallthrough continuations (which have no home
// in the split BTB and are re-decoded on every encounter — part of the
// block-at-a-time crawl the paper describes for footprint misses).
func (d *Shotgun) reactiveDecode(b isa.BlockID) {
	brs := d.E().Predecode(b)
	e := bbFromPredecode(d.walkPC, brs)
	if e.Kind == isa.KindJump || e.Kind == isa.KindCall || e.Kind == isa.KindIndirect {
		// The stalled lookup was for a genuinely unconditional basic block:
		// a U-BTB entry miss, hence a footprint miss (Figure 1).
		d.sb.NoteResolvedUncond()
	}
	d.prefillBB(d.walkPC, e)
	d.ReactiveFills++
	d.consume(d.walkPC, e, nil)
}

// prefillBB installs a pre-decoded basic block (no footprints available).
func (d *Shotgun) prefillBB(start isa.Addr, e btb.BBEntry) {
	switch e.Kind {
	case isa.KindCondBranch:
		d.sb.C.Insert(start, e)
	case isa.KindReturn:
		d.sb.RIB.Insert(start, e)
	case isa.KindJump, isa.KindCall, isa.KindIndirect:
		d.sb.PrefillU(start, e)
	}
	if e.Kind.IsBranch() {
		d.bypcFor(e.Kind).Insert(e.BranchPC, btb.Entry{Kind: e.Kind, Target: e.Target})
	}
}

// proactivePrefill decodes a prefetched block and installs every branch as
// a basic-block entry whose start is estimated from the preceding branch.
func (d *Shotgun) proactivePrefill(b isa.BlockID) {
	brs := d.E().Predecode(b)
	if len(brs) == 0 {
		return
	}
	base := isa.BlockBase(b)
	start := base
	for _, br := range brs {
		e := btb.BBEntry{
			Size:     uint16(isa.Addr(br.Offset)+isa.FixedSize) - uint16(start-base),
			Kind:     br.Kind,
			BranchPC: base + isa.Addr(br.Offset),
			Target:   br.Target,
		}
		d.prefillBB(start, e)
		start = base + isa.Addr(br.Offset) + isa.FixedSize
		d.ProactivePrefills++
	}
}

// Quiescent implements Quiescer: Tick is a no-op only when the engine is
// not mid-repair (a stalled engine probes the L1i every cycle, which counts
// cache lookups) and the walk either has no valid PC or a full FTQ.
func (d *Shotgun) Quiescent() bool {
	return !d.stalled && (!d.walkValid || d.q.full())
}

// Tick implements Design.
func (d *Shotgun) Tick() {
	env := d.E()
	if d.stalled {
		if env.L1iContains(d.stalledOn) {
			d.stalled = false
			d.reactiveDecode(d.stalledOn)
		} else if !env.InFlight(d.stalledOn) {
			env.IssuePrefetch(d.stalledOn, d.Buffered)
		}
		return
	}
	if !d.walkValid {
		return
	}
	budget := d.WalkBudget
	if budget == 0 {
		budget = 2
	}
	for i := 0; i < budget; i++ {
		if d.q.full() || d.stalled || !d.walkValid {
			return
		}
		d.walkOne()
	}
}

// walkOne advances the engine one basic block through the split BTB.
func (d *Shotgun) walkOne() {
	env := d.E()
	start := d.walkPC

	if e, ok := d.sb.C.Lookup(start); ok {
		d.consume(start, e, nil)
		return
	}
	if e, ok := d.sb.RIB.Lookup(start); ok {
		d.consume(start, e, nil)
		return
	}
	if ue, ok := d.sb.LookupU(start); ok {
		d.consume(start, ue.BB, &ue)
		return
	}

	// All three structures missed: reactive prefill, engine stalls.
	b := isa.BlockOf(start)
	if env.L1iContains(b) {
		d.reactiveDecode(b)
		return
	}
	d.stalled = true
	d.stalledOn = b
	if !env.InFlight(b) {
		env.IssuePrefetch(b, d.Buffered)
	}
}

// consume processes one basic block: enqueue its blocks into the FTQ,
// prefetch footprints (for U-BTB hits), and advance the walk point. ue is
// non-nil when the block came from the U-BTB with footprints attached.
func (d *Shotgun) consume(start isa.Addr, e btb.BBEntry, ue *btb.UBBEntry) {
	env := d.E()
	d.enqueueSpan(start, e)
	switch e.Kind {
	case isa.KindALU:
		d.walkPC = e.Fallthrough(start)
	case isa.KindCondBranch:
		if env.PredictTaken(e.BranchPC) {
			d.walkPC = e.Target
		} else {
			d.walkPC = e.Fallthrough(start)
		}
	case isa.KindReturn:
		if n := len(d.specRAS); n > 0 {
			top := d.specRAS[n-1]
			d.specRAS = d.specRAS[:n-1]
			d.walkPC = top.ret
			d.prefetchFootprint(top.retFP, isa.BlockOf(top.ret))
		} else {
			d.walkValid = false
		}
	default: // jump, call, indirect
		if e.Target == 0 {
			d.walkValid = false
			return
		}
		if ue != nil {
			// Footprint-driven bulk prefetch around the target region.
			d.prefetchFootprint(ue.CallFP, isa.BlockOf(e.Target))
		}
		if e.Kind == isa.KindCall || e.Kind == isa.KindIndirect {
			ras := shotgunRASEntry{ret: e.Fallthrough(start)}
			if ue != nil {
				ras.retFP = ue.RetFP
			}
			d.pushRAS(ras)
		}
		d.walkPC = e.Target
	}
}

func (d *Shotgun) pushRAS(e shotgunRASEntry) {
	const depth = 16
	if len(d.specRAS) == depth {
		copy(d.specRAS, d.specRAS[1:])
		d.specRAS = d.specRAS[:depth-1]
	}
	d.specRAS = append(d.specRAS, e)
}

// prefetchFootprint issues prefetches for every block in a footprint.
func (d *Shotgun) prefetchFootprint(fp btb.Footprint, base isa.BlockID) {
	env := d.E()
	for _, blk := range fp.Blocks(base) {
		if env.L1iContains(blk) || env.InFlight(blk) {
			continue
		}
		if env.IssuePrefetch(blk, d.Buffered) {
			d.FootprintPrefetch++
		}
	}
}

// enqueueSpan pushes the basic block's blocks into the FTQ, prefetching
// absent ones.
func (d *Shotgun) enqueueSpan(start isa.Addr, e btb.BBEntry) {
	env := d.E()
	size := isa.Addr(e.Size)
	if size == 0 {
		size = 1
	}
	first := isa.BlockOf(start)
	last := isa.BlockOf(start + size - 1)
	for b := first; b <= last; b++ {
		d.q.push(b)
		if !env.L1iContains(b) && !env.InFlight(b) {
			if env.IssuePrefetch(b, d.Buffered) {
				d.EnginePrefetches++
			}
		}
	}
}

// StorageBits implements Design: footprints and basic-block metadata in the
// U-BTB plus the FTQ and the prefetch buffers (~6 KB per the paper).
func (d *Shotgun) StorageBits() int {
	uExtra := d.sb.U.Entries() * (2*btb.FootprintBits + 7 + 3)
	cExtra := d.sb.C.Entries() * 7
	rExtra := d.sb.RIB.Entries() * 7
	ftqBits := d.q.cap * 46
	// Buffer metadata (tags and control); the data arrays are accounted as
	// cache storage, as the paper's 6 KB figure does.
	pfBuffer := 64 * 48 // 64-entry L1i prefetch buffer tags
	btbPB := 32 * 56    // 32-entry BTB prefetch buffer tags+targets
	return uExtra + cExtra + rExtra + ftqBits + pfBuffer + btbPB
}
