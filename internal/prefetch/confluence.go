package prefetch

import "dnc/internal/isa"

// Confluence models the paper's Confluence configuration: the SHIFT
// temporal instruction prefetcher (miss-stream history recorded and
// replayed) paired with a 16K-entry BTB, which the original paper shows to
// be an upper bound for Confluence's BTB prefilling. The metadata —
// history buffer plus index — is the 200+ KB the paper criticizes; it is
// virtualized in the LLC, which we account for in StorageBits and in the
// two-step lookup latency (index read, then history read) modelled as the
// stream-head setup delay.
type Confluence struct {
	Base
	btb *ConvBTB

	// hist is the circular miss-history buffer.
	hist    []isa.BlockID
	histPos int
	full    bool

	// index maps a block to its most recent history position (direct-mapped
	// with partial tags, as in SHIFT).
	idxValid []bool
	idxTag   []uint16
	idxPos   []int32
	idxMask  uint64

	// Active replay stream.
	streamPos  int
	streamLive bool

	// Lookahead is how far the stream runs ahead of demand.
	Lookahead int

	// StreamStarts and StreamPrefetches count replay activity.
	StreamStarts     uint64
	StreamPrefetches uint64
}

// ConfluenceConfig sizes the design.
type ConfluenceConfig struct {
	HistEntries  int // history buffer entries (paper SHIFT: 32K)
	IndexEntries int // index entries (power of two)
	BTBEntries   int // 16K for the upper-bound Confluence
	Lookahead    int
}

// DefaultConfluenceConfig matches the paper's modelling.
func DefaultConfluenceConfig() ConfluenceConfig {
	return ConfluenceConfig{
		HistEntries:  32 << 10,
		IndexEntries: 16 << 10,
		BTBEntries:   16 << 10,
		Lookahead:    6,
	}
}

// NewConfluence builds the design.
func NewConfluence(cfg ConfluenceConfig) *Confluence {
	if cfg.HistEntries == 0 {
		cfg = DefaultConfluenceConfig()
	}
	if cfg.IndexEntries&(cfg.IndexEntries-1) != 0 {
		panic("prefetch: Confluence index entries must be a power of two")
	}
	return &Confluence{
		btb:      NewConvBTB(cfg.BTBEntries, 8),
		hist:     make([]isa.BlockID, cfg.HistEntries),
		idxValid: make([]bool, cfg.IndexEntries),
		idxTag:   make([]uint16, cfg.IndexEntries),
		idxPos:   make([]int32, cfg.IndexEntries),
		idxMask:  uint64(cfg.IndexEntries - 1),
		Lookahead: func() int {
			if cfg.Lookahead == 0 {
				return 6
			}
			return cfg.Lookahead
		}(),
	}
}

// Name implements Design.
func (*Confluence) Name() string { return "confluence" }

// BTBLookup implements Design.
func (c *Confluence) BTBLookup(pc isa.Addr, kind isa.Kind) (isa.Addr, bool) {
	return c.btb.Lookup(pc, kind)
}

// BTBCommit implements Design.
func (c *Confluence) BTBCommit(pc isa.Addr, kind isa.Kind, target isa.Addr, taken bool) {
	c.btb.Commit(pc, kind, target, taken)
}

func (c *Confluence) idxOf(b isa.BlockID) uint64 { return uint64(b) & c.idxMask }

func (c *Confluence) idxTagOf(b isa.BlockID) uint16 {
	return uint16((uint64(b) >> 14) & 0x3FF)
}

// OnDemand implements Design: record every miss into the history, and steer
// the replay stream.
func (c *Confluence) OnDemand(b isa.BlockID, hit bool, _ [2]isa.Addr) {
	if hit {
		// Stream follow-up: demand consuming prefetched blocks advances the
		// stream one step per access.
		if c.streamLive {
			c.advanceStream(1)
		}
		return
	}

	// Look up an earlier occurrence of this miss to (re)start the stream.
	i := c.idxOf(b)
	if c.idxValid[i] && c.idxTag[i] == c.idxTagOf(b) {
		c.streamPos = int(c.idxPos[i])
		c.streamLive = true
		c.StreamStarts++
		c.advanceStream(c.Lookahead)
	}

	// Record the miss into the history and update the index.
	c.hist[c.histPos] = b
	c.idxValid[i] = true
	c.idxTag[i] = c.idxTagOf(b)
	c.idxPos[i] = int32(c.histPos)
	c.histPos++
	if c.histPos == len(c.hist) {
		c.histPos = 0
		c.full = true
	}
}

// advanceStream prefetches the next n blocks along the recorded history.
func (c *Confluence) advanceStream(n int) {
	env := c.E()
	for k := 0; k < n; k++ {
		c.streamPos++
		if c.streamPos >= len(c.hist) {
			if !c.full {
				c.streamLive = false
				return
			}
			c.streamPos = 0
		}
		// Stop at the write head: history beyond it is stale.
		if c.streamPos == c.histPos {
			c.streamLive = false
			return
		}
		b := c.hist[c.streamPos]
		if env.L1iContains(b) || env.InFlight(b) {
			continue
		}
		if env.IssuePrefetch(b, false) {
			c.StreamPrefetches++
		}
	}
}

// OnRedirect implements Design: redirects kill the active stream.
func (c *Confluence) OnRedirect(isa.Addr) { c.streamLive = false }

// StorageBits implements Design: history (26-bit block addresses) plus index
// (tag + position) — the 200+ KB metadata virtualized in the LLC.
func (c *Confluence) StorageBits() int {
	return len(c.hist)*26 + len(c.idxValid)*(10+15)
}
