package prefetch

// CatalogEntry names one evaluated frontend configuration: a design
// constructor plus the per-core options it needs (today only the prefetch
// buffer size Shotgun requires).
type CatalogEntry struct {
	Name string
	New  func() Design
	// PrefetchBufferEntries is the L1i prefetch-buffer size the design
	// expects (core.Config.PrefetchBufferEntries); 0 for designs that
	// prefetch directly into the cache.
	PrefetchBufferEntries int
}

// Catalog returns every evaluated design at its paper configuration, in a
// fixed report order. It is the single source of truth consumed by
// cmd/dncsim, the benchmark harness and the differential validation
// harness, so "run every design" always means the same set.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{Name: "baseline", New: func() Design { return NewBaseline(2048) }},
		{Name: "NL", New: func() Design { return NewNXL(1, 2048) }},
		{Name: "N2L", New: func() Design { return NewNXL(2, 2048) }},
		{Name: "N4L", New: func() Design { return NewNXL(4, 2048) }},
		{Name: "N8L", New: func() Design { return NewNXL(8, 2048) }},
		{Name: "NL-miss", New: func() Design { return NewNXLTriggered(1, 2048, TriggerMiss) }},
		{Name: "NL-tagged", New: func() Design { return NewNXLTriggered(1, 2048, TriggerTagged) }},
		{Name: "SN4L", New: func() Design { return NewSN4L(16<<10, 2048) }},
		{Name: "Dis", New: func() Design { return NewDis(4<<10, 4, 2048) }},
		{Name: "SN4L+Dis", New: func() Design {
			return NewProactive(DefaultProactiveConfig())
		}},
		{Name: "SN4L+Dis+BTB", New: func() Design {
			c := DefaultProactiveConfig()
			c.WithBTBPrefetch = true
			return NewProactive(c)
		}},
		{Name: "discontinuity", New: func() Design { return NewDiscontinuity(8<<10, 8, 2048) }},
		{Name: "RDIP", New: func() Design { return NewRDIP(1024, 2048) }},
		{Name: "PIF", New: func() Design { return NewPIF(DefaultPIFConfig()) }},
		{Name: "confluence", New: func() Design { return NewConfluence(DefaultConfluenceConfig()) }},
		{Name: "boomerang", New: func() Design { return NewBoomerang(DefaultBoomerangConfig()) }},
		{Name: "shotgun", New: func() Design { return NewShotgun(DefaultShotgunDesignConfig()) }, PrefetchBufferEntries: 64},
	}
}
