package prefetch

import (
	"fmt"

	"dnc/internal/cache"
	"dnc/internal/isa"
)

// Trigger selects when a sequential prefetcher fires; the paper's Section
// IV cites the NL, NL-miss, and NL-tagged variants of Smith's taxonomy.
type Trigger uint8

// Sequential trigger policies.
const (
	// TriggerAll fires on every demand access (the paper's NL/NXL).
	TriggerAll Trigger = iota
	// TriggerMiss fires only on demand misses (NL-miss).
	TriggerMiss
	// TriggerTagged fires on demand misses and on the first demand hit to
	// a prefetched block (NL-tagged).
	TriggerTagged
)

// String names the trigger.
func (t Trigger) String() string {
	switch t {
	case TriggerMiss:
		return "miss"
	case TriggerTagged:
		return "tagged"
	default:
		return "all"
	}
}

// NXL is the Next-X-Line sequential prefetcher family: on a triggering
// access to block A it prefetches A+1..A+X if absent. X=1 is the classic
// next-line prefetcher shipped in commercial parts; deeper variants trade
// accuracy for timeliness (Figures 4 and 5).
type NXL struct {
	Base
	btb     *ConvBTB
	depth   int
	trigger Trigger
}

// NewNXL returns a next-X-line design over a conventional BTB, triggered on
// every access.
func NewNXL(depth, btbEntries int) *NXL {
	return NewNXLTriggered(depth, btbEntries, TriggerAll)
}

// NewNXLTriggered returns an NXL with an explicit trigger policy.
func NewNXLTriggered(depth, btbEntries int, trigger Trigger) *NXL {
	if depth < 1 {
		panic("prefetch: NXL depth must be >= 1")
	}
	return &NXL{btb: NewConvBTB(btbEntries, 4), depth: depth, trigger: trigger}
}

// Name implements Design.
func (d *NXL) Name() string {
	base := "NL"
	if d.depth != 1 {
		base = fmt.Sprintf("N%dL", d.depth)
	}
	if d.trigger != TriggerAll {
		return base + "-" + d.trigger.String()
	}
	return base
}

// BTBLookup implements Design.
func (d *NXL) BTBLookup(pc isa.Addr, kind isa.Kind) (isa.Addr, bool) {
	return d.btb.Lookup(pc, kind)
}

// BTBCommit implements Design.
func (d *NXL) BTBCommit(pc isa.Addr, kind isa.Kind, target isa.Addr, taken bool) {
	d.btb.Commit(pc, kind, target, taken)
}

// OnDemand implements Design: prefetch the next X blocks when the trigger
// policy fires.
func (d *NXL) OnDemand(b isa.BlockID, hit bool, _ [2]isa.Addr) {
	switch d.trigger {
	case TriggerMiss:
		if hit {
			return
		}
	case TriggerTagged:
		if hit {
			line := d.E().L1iLine(b)
			if line == nil || line.Flags&cache.FlagPrefetched == 0 {
				return
			}
		}
	}
	for i := 1; i <= d.depth; i++ {
		nb := b + isa.BlockID(i)
		if d.E().L1iContains(nb) || d.E().InFlight(nb) {
			continue
		}
		d.E().IssuePrefetch(nb, false)
	}
}
