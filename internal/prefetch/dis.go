package prefetch

import (
	"math/bits"

	"dnc/internal/isa"
)

// DisTable is the Dis prefetcher's discontinuity table: direct-mapped,
// partially tagged, one entry per block recording the offset of the branch
// instruction that last caused a discontinuity miss out of that block
// (Section V.B). Storing the branch offset instead of the 46+ bit target is
// what makes the table small: the target is recovered by pre-decoding.
type DisTable struct {
	valid   []bool
	tags    []uint16
	offsets []uint8
	mask    uint64
	tagBits uint
	n       int

	// Conflicts counts lookups that matched the index but failed the tag.
	Conflicts uint64
}

// NewDisTable returns a table with the given entries (power of two; 0 means
// unlimited) and partial-tag width in bits (0 = tagless, 16+ treated as a
// full tag for the Figure 12 study).
func NewDisTable(entries int, tagBits uint) *DisTable {
	if entries == 0 {
		entries = 1 << 26
		if tagBits != 0 {
			tagBits = 16
		}
	}
	if entries&(entries-1) != 0 {
		panic("prefetch: DisTable entries must be a power of two")
	}
	return &DisTable{
		valid:   make([]bool, entries),
		tags:    make([]uint16, entries),
		offsets: make([]uint8, entries),
		mask:    uint64(entries - 1),
		tagBits: tagBits,
		n:       entries,
	}
}

// Entries returns the capacity.
func (t *DisTable) Entries() int { return t.n }

func (t *DisTable) idx(b isa.BlockID) uint64 { return uint64(b) & t.mask }

func (t *DisTable) tagOf(b isa.BlockID) uint16 {
	if t.tagBits == 0 {
		return 0
	}
	shift := uint(bits.TrailingZeros64(t.mask + 1))
	return uint16((uint64(b) >> shift) & ((1 << t.tagBits) - 1))
}

// Record stores the byte offset of the discontinuity branch in block b.
func (t *DisTable) Record(b isa.BlockID, offset uint8) {
	i := t.idx(b)
	t.valid[i] = true
	t.tags[i] = t.tagOf(b)
	t.offsets[i] = offset
}

// Lookup returns the recorded branch offset for block b. With partial tags a
// conflicting entry may alias (tagless tables do so freely — the
// overprediction of Figure 12); the tag check filters most aliases.
func (t *DisTable) Lookup(b isa.BlockID) (uint8, bool) {
	i := t.idx(b)
	if !t.valid[i] {
		return 0, false
	}
	if t.tags[i] != t.tagOf(b) {
		t.Conflicts++
		return 0, false
	}
	return t.offsets[i], true
}

// EntryBits returns the storage per entry: the tag plus the offset (4-bit
// instruction offset for fixed-length ISAs, 6-bit byte offset for
// variable-length, Section V.D).
func (t *DisTable) EntryBits(mode isa.Mode) int {
	off := 4
	if mode == isa.Variable {
		off = 6
	}
	return int(t.tagBits) + off
}

// Dis is the standalone discontinuity prefetcher design: it records the
// branch responsible for each discontinuity miss and, on every fetch or
// prefetch of a block, replays the recorded branch through the pre-decoder
// to prefetch its target. Like SN4L it prefetches directly into the cache.
type Dis struct {
	Base
	btb *ConvBTB
	tab *DisTable

	// pending holds blocks whose replay waits for their fill to arrive.
	pending map[isa.BlockID]struct{}

	// Recorded counts table writes; Replay aggregates replay outcomes.
	Recorded uint64
	Replay   ReplayStats
}

// NewDis returns a standalone Dis design (paper: 4K entries, 4-bit tags).
func NewDis(entries int, tagBits uint, btbEntries int) *Dis {
	return &Dis{
		btb:     NewConvBTB(btbEntries, 4),
		tab:     NewDisTable(entries, tagBits),
		pending: make(map[isa.BlockID]struct{}),
	}
}

// Name implements Design.
func (*Dis) Name() string { return "Dis" }

// Table exposes the DisTable.
func (d *Dis) Table() *DisTable { return d.tab }

// BTBLookup implements Design.
func (d *Dis) BTBLookup(pc isa.Addr, kind isa.Kind) (isa.Addr, bool) {
	return d.btb.Lookup(pc, kind)
}

// BTBCommit implements Design.
func (d *Dis) BTBCommit(pc isa.Addr, kind isa.Kind, target isa.Addr, taken bool) {
	d.btb.Commit(pc, kind, target, taken)
}

// RecordMiss implements the recording rule: on a cache miss, decode the last
// two demanded instructions; if one is a branch, record its offset under the
// block containing it. (Two instructions because of the SPARC delay slot.)
func recordMiss(env Env, tab *DisTable, last2 [2]isa.Addr, recorded *uint64) {
	for _, pc := range last2 {
		if pc == 0 {
			continue
		}
		blk := isa.BlockOf(pc)
		off := uint8(isa.ByteOffset(pc))
		if br, ok := env.DecodeBranchAt(blk, off); ok {
			tab.Record(blk, br.Offset)
			*recorded++
			return
		}
	}
}

// ReplayStats counts the outcomes of Dis replay attempts; the NotBranch
// fraction of table hits quantifies the overprediction of tagless and
// partially tagged tables (Figure 12).
type ReplayStats struct {
	Attempts  uint64 // replay invocations
	TableHits uint64 // DisTable lookups that returned an offset
	NotBranch uint64 // stored offset decoded to a non-branch (alias/stale)
	NoTarget  uint64 // return/indirect whose target the BTB did not know
	Replayed  uint64 // successful target extractions
}

// Overprediction returns the fraction of table hits that replayed garbage.
func (s ReplayStats) Overprediction() float64 {
	if s.TableHits == 0 {
		return 0
	}
	return float64(s.NotBranch) / float64(s.TableHits)
}

// replayDis looks up the block's recorded discontinuity and extracts the
// branch target through the pre-decoder. It returns the target block when a
// prefetchable discontinuity was found.
func replayDis(env Env, tab *DisTable, btb *ConvBTB, b isa.BlockID, st *ReplayStats) (isa.BlockID, bool) {
	st.Attempts++
	off, ok := tab.Lookup(b)
	if !ok {
		return 0, false
	}
	st.TableHits++
	br, ok := env.DecodeBranchAt(b, off)
	if !ok {
		// Stale or aliased entry: the decoded bytes are not a branch.
		st.NotBranch++
		return 0, false
	}
	target := br.Target
	if !br.Kind.HasEncodedTarget() {
		// Return/indirect: consult the BTB; without it, no prefetch.
		pc := isa.BlockBase(b) + isa.Addr(br.Offset)
		t, hit := btb.BTB.Peek(pc)
		if !hit {
			st.NoTarget++
			return 0, false
		}
		target = t.Target
	}
	st.Replayed++
	return isa.BlockOf(target), true
}

// OnDemand implements Design.
func (d *Dis) OnDemand(b isa.BlockID, hit bool, last2 [2]isa.Addr) {
	if !hit {
		recordMiss(d.E(), d.tab, last2, &d.Recorded)
		// Replay must wait for the block's bytes.
		d.pending[b] = struct{}{}
		return
	}
	d.tryPrefetchTarget(b)
}

// OnFill implements Design.
func (d *Dis) OnFill(b isa.BlockID, prefetch bool) {
	if _, ok := d.pending[b]; ok {
		delete(d.pending, b)
	}
	d.tryPrefetchTarget(b)
}

func (d *Dis) tryPrefetchTarget(b isa.BlockID) {
	env := d.E()
	tb, ok := replayDis(env, d.tab, d.btb, b, &d.Replay)
	if !ok {
		return
	}
	if env.L1iContains(tb) || env.InFlight(tb) {
		return
	}
	env.IssuePrefetch(tb, false)
}

// StorageBits implements Design.
func (d *Dis) StorageBits() int { return d.tab.Entries() * d.tab.EntryBits(isa.Fixed) }
