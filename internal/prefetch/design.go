// Package prefetch implements every frontend design evaluated in the paper:
// the baseline (no prefetching), the sequential family (NL, N2L, N4L, N8L),
// the proposed SN4L, Dis, proactive SN4L+Dis and SN4L+Dis+BTB, a
// conventional discontinuity prefetcher, the temporal Confluence/SHIFT
// upper-bound configuration, and the BTB-directed Boomerang and Shotgun.
//
// A Design bundles a prefetch engine with its BTB organization; the core
// (internal/core) drives it through the hooks below and supplies the Env
// capabilities (cache probes, prefetch issue, pre-decoding).
package prefetch

import (
	"dnc/internal/cache"
	"dnc/internal/checkpoint"
	"dnc/internal/isa"
)

// Env is the frontend environment a Design operates in, implemented by the
// simulated core. All cache probes are counted toward the design's cache
// lookups (Figure 14).
type Env interface {
	// Cycle returns the current core cycle.
	Cycle() uint64

	// L1iContains probes the instruction cache tag array (counted as a
	// cache lookup) without disturbing replacement state.
	L1iContains(b isa.BlockID) bool

	// L1iLine returns the resident line's metadata, or nil (not counted as
	// a lookup; models the local prefetch-status bits stored with lines).
	L1iLine(b isa.BlockID) *cache.Line

	// InFlight reports an outstanding miss for b.
	InFlight(b isa.BlockID) bool

	// IssuePrefetch sends a prefetch for b to the memory hierarchy. It
	// reports false if the block is resident, already in flight, or no MSHR
	// is available. The issued fill arrives into the L1i (the proposed
	// design prefetches directly into the cache) unless buffered is true,
	// in which case it lands in the design's prefetch buffer (Shotgun).
	IssuePrefetch(b isa.BlockID, buffered bool) bool

	// Predecode returns the branches of a block, decoding its raw bytes.
	// For fixed-length ISAs the whole block decodes in parallel; for
	// variable-length ISAs the offsets come from the virtualized branch
	// footprint, and nil is returned when no footprint is available.
	Predecode(b isa.BlockID) []isa.Branch

	// DecodeBranchAt decodes a single instruction at a byte offset and
	// reports whether it is a branch (the Dis replay path).
	DecodeBranchAt(b isa.BlockID, off uint8) (isa.Branch, bool)

	// PredictTaken consults the core's direction predictor without
	// updating it (used by BTB-directed engines walking ahead of fetch).
	PredictTaken(pc isa.Addr) bool
}

// TraceSink is an optional capability of the Env: an event tracer for
// prefetch decisions. Designs that want their triggers in the trace check
// for it at Bind time; cores without observability simply don't implement
// it, and test fakes of Env need not care.
type TraceSink interface {
	// TraceDiscontinuity records that a recorded discontinuity was replayed
	// into a prefetch candidate for block b.
	TraceDiscontinuity(b isa.BlockID)
}

// Quiescer is an optional capability of a Design used by the engine's
// idle-cycle fast-forward: Quiescent reports that the next Tick call would
// be a provable no-op — it would mutate no design state and make no Env
// calls (Env probes count cache lookups, so even a read-only probe is a
// metric mutation). While a core is stalled with a quiescent design, the
// engine may skip Tick calls entirely and jump to the core's next wakeup;
// a wrong true here silently changes simulation results, which is why the
// difftest metamorphic suite runs every catalog design with fast-forward
// on and off and requires bit-identical outcomes.
//
// Base returns true (its Tick is the empty function), so a design that
// overrides Tick with real work MUST also override Quiescent — the
// inherited default would let the engine skip its ticks.
type Quiescer interface {
	// Quiescent reports that Tick would currently be a no-op.
	Quiescent() bool
}

// OccupancyReporter is an optional capability of a Design: engines with a
// fetch-target or candidate queue expose its occupancy so the observability
// layer can sample it as a gauge.
type OccupancyReporter interface {
	// QueueOccupancy returns the current total queued entries.
	QueueOccupancy() int
}

// Design is a frontend configuration: BTB organization plus prefetcher.
type Design interface {
	// Name identifies the design in reports.
	Name() string

	// Bind attaches the core environment before simulation starts.
	Bind(env Env)

	// BTBLookup is consulted by the fetch unit when it reaches a branch.
	// It returns the predicted target (meaningful for taken paths) and
	// whether the branch was known to the BTB organization.
	BTBLookup(pc isa.Addr, kind isa.Kind) (isa.Addr, bool)

	// BTBCommit trains the BTB organization with a resolved branch.
	BTBCommit(pc isa.Addr, kind isa.Kind, target isa.Addr, taken bool)

	// OnDemand observes a demand block transition in fetch. hit reports an
	// L1i hit; last2 are the PCs of the two most recently fetched
	// instructions (used by Dis recording, per the SPARC delay slot).
	OnDemand(b isa.BlockID, hit bool, last2 [2]isa.Addr)

	// OnFill observes a block fill arriving at the L1i; prefetch marks
	// prefetcher-initiated fills.
	OnFill(b isa.BlockID, prefetch bool)

	// OnEvict observes an L1i eviction.
	OnEvict(ev cache.Evicted)

	// OnRetire observes committed instructions (for footprint/metadata
	// construction from the retired stream).
	OnRetire(inst isa.Inst, taken bool, target isa.Addr)

	// FTQGate reports whether fetch may proceed into the block holding pc.
	// Designs without a fetch-directing engine always return true;
	// BTB-directed designs return false while their fetch target queue has
	// not yet delivered that block (the empty-FTQ stall of Table I).
	FTQGate(pc isa.Addr) bool

	// OnRedirect informs the design that fetch redirected to pc (branch
	// misprediction, BTB-miss resolution, or FTQ divergence).
	OnRedirect(pc isa.Addr)

	// Tick advances the design by one cycle (queue processing).
	Tick()

	// StorageBits returns the design's per-core metadata storage budget in
	// bits (Table II).
	StorageBits() int

	// Snapshot serialises the design's mutable state (BTB organization,
	// prefetcher metadata, queues, walk state) for checkpointing.
	Snapshot(e *checkpoint.Encoder)

	// Restore loads state written by Snapshot into an identically
	// configured design.
	Restore(d *checkpoint.Decoder) error
}

// Base provides no-op defaults for Design hooks; concrete designs embed it.
type Base struct {
	env Env
}

// Bind implements Design.
func (b *Base) Bind(env Env) { b.env = env }

// E returns the bound environment.
func (b *Base) E() Env { return b.env }

// OnDemand implements Design.
func (*Base) OnDemand(isa.BlockID, bool, [2]isa.Addr) {}

// OnFill implements Design.
func (*Base) OnFill(isa.BlockID, bool) {}

// OnEvict implements Design.
func (*Base) OnEvict(cache.Evicted) {}

// OnRetire implements Design.
func (*Base) OnRetire(isa.Inst, bool, isa.Addr) {}

// FTQGate implements Design.
func (*Base) FTQGate(isa.Addr) bool { return true }

// OnRedirect implements Design.
func (*Base) OnRedirect(isa.Addr) {}

// Tick implements Design.
func (*Base) Tick() {}

// Quiescent implements Quiescer: the no-op Tick above is always a no-op.
// Designs that override Tick must override this too (see Quiescer).
func (*Base) Quiescent() bool { return true }

// StorageBits implements Design.
func (*Base) StorageBits() int { return 0 }

// Snapshot implements Design for stateless designs: an empty tagged
// section, so the snapshot layout stays aligned for designs that have
// nothing to save. Stateful designs must override both methods.
func (*Base) Snapshot(e *checkpoint.Encoder) {
	e.Begin("design-stateless")
	e.End()
}

// Restore implements Design for stateless designs.
func (*Base) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("design-stateless"); err != nil {
		return err
	}
	return d.End()
}
