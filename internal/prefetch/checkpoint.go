package prefetch

import (
	"fmt"
	"sort"

	"dnc/internal/btb"
	"dnc/internal/checkpoint"
	"dnc/internal/isa"
)

// This file implements Snapshot/Restore for every design and its internal
// structures. Geometry (table sizes, queue capacities) is configuration,
// re-established by the design constructor; snapshots carry only mutable
// state plus enough geometry to verify the snapshot matches the machine.
// Map-backed state is serialised in sorted key order so encoding is
// byte-deterministic.

func lenMismatch(what string, got, want int) error {
	return fmt.Errorf("%w: %s has %d entries in snapshot, machine has %d",
		checkpoint.ErrCorrupt, what, got, want)
}

// sortedBlocks returns a map's BlockID keys in ascending order.
func sortedBlocks[V any](m map[isa.BlockID]V) []isa.BlockID {
	keys := make([]isa.BlockID, 0, len(m))
	for b := range m {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// ConvBTB

// Snapshot serialises the BTB, the optional prefetch buffer, and the
// promotion counter.
func (c *ConvBTB) Snapshot(e *checkpoint.Encoder) {
	e.Begin("convbtb")
	c.BTB.Snapshot(e)
	e.Bool(c.PB != nil)
	if c.PB != nil {
		c.PB.Snapshot(e)
	}
	e.U64(c.PBPromotions)
	e.End()
}

// Restore loads state written by Snapshot.
func (c *ConvBTB) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("convbtb"); err != nil {
		return err
	}
	if err := c.BTB.Restore(d); err != nil {
		return err
	}
	hasPB := d.Bool()
	if d.Err() == nil && hasPB != (c.PB != nil) {
		return fmt.Errorf("%w: snapshot prefetch-buffer presence %v, machine has %v",
			checkpoint.ErrCorrupt, hasPB, c.PB != nil)
	}
	if hasPB && c.PB != nil {
		if err := c.PB.Restore(d); err != nil {
			return err
		}
	}
	c.PBPromotions = d.U64()
	return d.End()
}

// SeqTable

// Snapshot serialises the bit table.
func (t *SeqTable) Snapshot(e *checkpoint.Encoder) {
	e.Begin("seqtable")
	e.Int(t.n)
	e.Int(len(t.bits))
	for _, w := range t.bits {
		e.U64(w)
	}
	e.End()
}

// Restore loads state written by Snapshot.
func (t *SeqTable) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("seqtable"); err != nil {
		return err
	}
	n := d.Int()
	if d.Err() == nil && n != t.n {
		return lenMismatch("SeqTable", n, t.n)
	}
	words := d.Count(8)
	if d.Err() == nil && words != len(t.bits) {
		return lenMismatch("SeqTable words", words, len(t.bits))
	}
	for i := 0; i < words; i++ {
		t.bits[i] = d.U64()
	}
	return d.End()
}

// DisTable

// Snapshot serialises the discontinuity table.
func (t *DisTable) Snapshot(e *checkpoint.Encoder) {
	e.Begin("distable")
	e.Int(t.n)
	e.U64(t.Conflicts)
	for i := 0; i < t.n; i++ {
		e.Bool(t.valid[i])
		e.U16(t.tags[i])
		e.U8(t.offsets[i])
	}
	e.End()
}

// Restore loads state written by Snapshot.
func (t *DisTable) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("distable"); err != nil {
		return err
	}
	n := d.Int()
	if d.Err() == nil && n != t.n {
		return lenMismatch("DisTable", n, t.n)
	}
	t.Conflicts = d.U64()
	for i := 0; i < t.n && d.Err() == nil; i++ {
		t.valid[i] = d.Bool()
		t.tags[i] = d.U16()
		t.offsets[i] = d.U8()
	}
	return d.End()
}

func (r *RLU) snapshot(e *checkpoint.Encoder) {
	e.Int(len(r.entries))
	e.Int(r.next)
	for i := range r.entries {
		e.U64(uint64(r.entries[i]))
		e.Bool(r.valid[i])
	}
}

func (r *RLU) restore(d *checkpoint.Decoder) error {
	n := d.Int()
	if d.Err() == nil && n != len(r.entries) {
		return lenMismatch("RLU", n, len(r.entries))
	}
	r.next = d.Int()
	if d.Err() == nil && n > 0 && (r.next < 0 || r.next >= n) {
		return fmt.Errorf("%w: RLU cursor %d out of range", checkpoint.ErrCorrupt, r.next)
	}
	for i := 0; i < n; i++ {
		r.entries[i] = isa.BlockID(d.U64())
		r.valid[i] = d.Bool()
	}
	return d.Err()
}

func (q *boundedQueue) snapshot(e *checkpoint.Encoder) {
	e.Int(q.cap)
	e.U64(q.Drops)
	e.Int(q.len())
	for i := 0; i < q.len(); i++ {
		it := q.at(i)
		e.U64(uint64(it.block))
		e.Int(it.depth)
		e.Bool(it.fromDis)
	}
}

func (q *boundedQueue) restore(d *checkpoint.Decoder) error {
	c := d.Int()
	if d.Err() == nil && c != q.cap {
		return lenMismatch("queue capacity", c, q.cap)
	}
	q.Drops = d.U64()
	n := d.Count(17)
	if d.Err() == nil && n > q.cap {
		return fmt.Errorf("%w: queue holds %d items over capacity %d",
			checkpoint.ErrCorrupt, n, q.cap)
	}
	q.reset()
	for i := 0; i < n; i++ {
		q.push(qItem{
			block:   isa.BlockID(d.U64()),
			depth:   d.Int(),
			fromDis: d.Bool(),
		})
	}
	return d.Err()
}

func (q *ftq) snapshot(e *checkpoint.Encoder) {
	e.Int(q.cap)
	e.Int(len(q.blocks))
	for _, b := range q.blocks {
		e.U64(uint64(b))
	}
}

func (q *ftq) restore(d *checkpoint.Decoder) error {
	c := d.Int()
	if d.Err() == nil && c != q.cap {
		return lenMismatch("FTQ capacity", c, q.cap)
	}
	n := d.Count(8)
	if d.Err() == nil && n > q.cap {
		return fmt.Errorf("%w: FTQ holds %d blocks over capacity %d",
			checkpoint.ErrCorrupt, n, q.cap)
	}
	q.blocks = q.blocks[:0]
	for i := 0; i < n; i++ {
		q.blocks = append(q.blocks, isa.BlockID(d.U64()))
	}
	return d.Err()
}

func (r *bbRecorder) snapshot(e *checkpoint.Encoder) {
	e.U64(uint64(r.start))
	e.Bool(r.have)
}

func (r *bbRecorder) restore(d *checkpoint.Decoder) error {
	r.start = isa.Addr(d.U64())
	r.have = d.Bool()
	return d.Err()
}

// Baseline

// Snapshot implements Design.
func (d *Baseline) Snapshot(e *checkpoint.Encoder) {
	e.Begin("baseline")
	d.btb.Snapshot(e)
	e.End()
}

// Restore implements Design.
func (d *Baseline) Restore(dec *checkpoint.Decoder) error {
	if err := dec.Begin("baseline"); err != nil {
		return err
	}
	if err := d.btb.Restore(dec); err != nil {
		return err
	}
	return dec.End()
}

// NXL

// Snapshot implements Design.
func (d *NXL) Snapshot(e *checkpoint.Encoder) {
	e.Begin("nxl")
	d.btb.Snapshot(e)
	e.End()
}

// Restore implements Design.
func (d *NXL) Restore(dec *checkpoint.Decoder) error {
	if err := dec.Begin("nxl"); err != nil {
		return err
	}
	if err := d.btb.Restore(dec); err != nil {
		return err
	}
	return dec.End()
}

// SN4L

// Snapshot implements Design.
func (d *SN4L) Snapshot(e *checkpoint.Encoder) {
	e.Begin("sn4l")
	d.btb.Snapshot(e)
	d.seq.Snapshot(e)
	e.U64(d.UsefulHits)
	e.U64(d.Issued)
	e.End()
}

// Restore implements Design.
func (d *SN4L) Restore(dec *checkpoint.Decoder) error {
	if err := dec.Begin("sn4l"); err != nil {
		return err
	}
	if err := d.btb.Restore(dec); err != nil {
		return err
	}
	if err := d.seq.Restore(dec); err != nil {
		return err
	}
	d.UsefulHits = dec.U64()
	d.Issued = dec.U64()
	return dec.End()
}

// Dis

// Snapshot implements Design.
func (d *Dis) Snapshot(e *checkpoint.Encoder) {
	e.Begin("dis")
	d.btb.Snapshot(e)
	d.tab.Snapshot(e)
	e.Int(len(d.pending))
	for _, b := range sortedBlocks(d.pending) {
		e.U64(uint64(b))
	}
	e.U64(d.Recorded)
	e.Struct(&d.Replay)
	e.End()
}

// Restore implements Design.
func (d *Dis) Restore(dec *checkpoint.Decoder) error {
	if err := dec.Begin("dis"); err != nil {
		return err
	}
	if err := d.btb.Restore(dec); err != nil {
		return err
	}
	if err := d.tab.Restore(dec); err != nil {
		return err
	}
	n := dec.Count(8)
	clear(d.pending)
	for i := 0; i < n; i++ {
		d.pending[isa.BlockID(dec.U64())] = struct{}{}
	}
	d.Recorded = dec.U64()
	if err := dec.Struct(&d.Replay); err != nil {
		return err
	}
	return dec.End()
}

// Discontinuity

// Snapshot implements Design.
func (d *Discontinuity) Snapshot(e *checkpoint.Encoder) {
	e.Begin("discontinuity")
	d.btb.Snapshot(e)
	e.Int(len(d.valid))
	for i := range d.valid {
		e.Bool(d.valid[i])
		e.U16(d.tags[i])
		e.U64(uint64(d.targets[i]))
	}
	e.U64(uint64(d.prevBlock))
	e.Bool(d.havePrev)
	e.U64(d.Recorded)
	e.U64(d.Issued)
	e.End()
}

// Restore implements Design.
func (d *Discontinuity) Restore(dec *checkpoint.Decoder) error {
	if err := dec.Begin("discontinuity"); err != nil {
		return err
	}
	if err := d.btb.Restore(dec); err != nil {
		return err
	}
	n := dec.Int()
	if dec.Err() == nil && n != len(d.valid) {
		return lenMismatch("discontinuity table", n, len(d.valid))
	}
	for i := 0; i < n && dec.Err() == nil; i++ {
		d.valid[i] = dec.Bool()
		d.tags[i] = dec.U16()
		d.targets[i] = isa.BlockID(dec.U64())
	}
	d.prevBlock = isa.BlockID(dec.U64())
	d.havePrev = dec.Bool()
	d.Recorded = dec.U64()
	d.Issued = dec.U64()
	return dec.End()
}

// Proactive

// Snapshot implements Design.
func (p *Proactive) Snapshot(e *checkpoint.Encoder) {
	e.Begin("proactive")
	p.btb.Snapshot(e)
	p.seq.Snapshot(e)
	p.dis.Snapshot(e)
	p.rlu.snapshot(e)
	p.seqQ.snapshot(e)
	p.disQ.snapshot(e)
	p.rluQ.snapshot(e)
	e.Int(len(p.pendingDecode))
	for _, b := range sortedBlocks(p.pendingDecode) {
		e.U64(uint64(b))
		e.Int(p.pendingDecode[b])
	}
	e.Int(len(p.disIssued))
	for _, b := range sortedBlocks(p.disIssued) {
		e.U64(uint64(b))
	}
	e.U64(p.Recorded)
	e.Struct(&p.Replay)
	e.U64(p.SeqIssued)
	e.U64(p.DisIssued)
	e.U64(p.PBFills)
	e.U64(p.RLUFilters)
	e.End()
}

// Restore implements Design.
func (p *Proactive) Restore(dec *checkpoint.Decoder) error {
	if err := dec.Begin("proactive"); err != nil {
		return err
	}
	if err := p.btb.Restore(dec); err != nil {
		return err
	}
	if err := p.seq.Restore(dec); err != nil {
		return err
	}
	if err := p.dis.Restore(dec); err != nil {
		return err
	}
	if err := p.rlu.restore(dec); err != nil {
		return err
	}
	for _, q := range []*boundedQueue{p.seqQ, p.disQ, p.rluQ} {
		if err := q.restore(dec); err != nil {
			return err
		}
	}
	n := dec.Count(16)
	clear(p.pendingDecode)
	for i := 0; i < n; i++ {
		b := isa.BlockID(dec.U64())
		p.pendingDecode[b] = dec.Int()
	}
	n = dec.Count(8)
	clear(p.disIssued)
	for i := 0; i < n; i++ {
		p.disIssued[isa.BlockID(dec.U64())] = struct{}{}
	}
	p.Recorded = dec.U64()
	if err := dec.Struct(&p.Replay); err != nil {
		return err
	}
	p.SeqIssued = dec.U64()
	p.DisIssued = dec.U64()
	p.PBFills = dec.U64()
	p.RLUFilters = dec.U64()
	return dec.End()
}

// Audit checks the proactive engine's queue and deferred-set bounds: queue
// occupancy within capacity, the deferred-decode map within its 64-entry
// bound, and the Dis-issued set within its 4096-entry bound.
func (p *Proactive) Audit() []error {
	var errs []error
	for _, q := range []struct {
		name string
		q    *boundedQueue
	}{{"SeqQueue", p.seqQ}, {"DisQueue", p.disQ}, {"RLUQueue", p.rluQ}} {
		if q.q.len() > q.q.cap {
			errs = append(errs, fmt.Errorf("proactive: %s holds %d items over capacity %d",
				q.name, q.q.len(), q.q.cap))
		}
	}
	if len(p.pendingDecode) > 64 {
		errs = append(errs, fmt.Errorf("proactive: deferred-decode set holds %d blocks over its 64-entry bound",
			len(p.pendingDecode)))
	}
	if len(p.disIssued) > 4096 {
		errs = append(errs, fmt.Errorf("proactive: Dis-issued set holds %d blocks over its 4096-entry bound",
			len(p.disIssued)))
	}
	return errs
}

// Confluence

// Snapshot implements Design.
func (c *Confluence) Snapshot(e *checkpoint.Encoder) {
	e.Begin("confluence")
	c.btb.Snapshot(e)
	e.Int(len(c.hist))
	for _, b := range c.hist {
		e.U64(uint64(b))
	}
	e.Int(c.histPos)
	e.Bool(c.full)
	e.Int(len(c.idxValid))
	for i := range c.idxValid {
		e.Bool(c.idxValid[i])
		e.U16(c.idxTag[i])
		e.U32(uint32(c.idxPos[i]))
	}
	e.Int(c.streamPos)
	e.Bool(c.streamLive)
	e.U64(c.StreamStarts)
	e.U64(c.StreamPrefetches)
	e.End()
}

// Restore implements Design.
func (c *Confluence) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("confluence"); err != nil {
		return err
	}
	if err := c.btb.Restore(d); err != nil {
		return err
	}
	n := d.Count(8)
	if d.Err() == nil && n != len(c.hist) {
		return lenMismatch("confluence history", n, len(c.hist))
	}
	for i := 0; i < n; i++ {
		c.hist[i] = isa.BlockID(d.U64())
	}
	c.histPos = d.Int()
	c.full = d.Bool()
	n = d.Int()
	if d.Err() == nil && n != len(c.idxValid) {
		return lenMismatch("confluence index", n, len(c.idxValid))
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		c.idxValid[i] = d.Bool()
		c.idxTag[i] = d.U16()
		c.idxPos[i] = int32(d.U32())
	}
	c.streamPos = d.Int()
	c.streamLive = d.Bool()
	c.StreamStarts = d.U64()
	c.StreamPrefetches = d.U64()
	return d.End()
}

// PIF

// Snapshot implements Design.
func (p *PIF) Snapshot(e *checkpoint.Encoder) {
	e.Begin("pif")
	p.btb.Snapshot(e)
	e.U64(uint64(p.curTrigger))
	e.U16(p.curBits)
	e.Bool(p.haveCur)
	e.Int(len(p.hist))
	for _, r := range p.hist {
		e.U64(uint64(r.trigger))
		e.U16(r.bits)
	}
	e.Int(p.histPos)
	e.Bool(p.full)
	e.Int(len(p.idxValid))
	for i := range p.idxValid {
		e.Bool(p.idxValid[i])
		e.U16(p.idxTag[i])
		e.U32(uint32(p.idxPos[i]))
	}
	e.Int(p.streamPos)
	e.Bool(p.streamLive)
	e.U64(p.RegionsLogged)
	e.U64(p.StreamStarts)
	e.U64(p.StreamPrefetches)
	e.End()
}

// Restore implements Design.
func (p *PIF) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("pif"); err != nil {
		return err
	}
	if err := p.btb.Restore(d); err != nil {
		return err
	}
	p.curTrigger = isa.BlockID(d.U64())
	p.curBits = d.U16()
	p.haveCur = d.Bool()
	n := d.Count(10)
	if d.Err() == nil && n != len(p.hist) {
		return lenMismatch("PIF history", n, len(p.hist))
	}
	for i := 0; i < n; i++ {
		p.hist[i] = pifRegion{trigger: isa.BlockID(d.U64()), bits: d.U16()}
	}
	p.histPos = d.Int()
	p.full = d.Bool()
	n = d.Int()
	if d.Err() == nil && n != len(p.idxValid) {
		return lenMismatch("PIF index", n, len(p.idxValid))
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		p.idxValid[i] = d.Bool()
		p.idxTag[i] = d.U16()
		p.idxPos[i] = int32(d.U32())
	}
	p.streamPos = d.Int()
	p.streamLive = d.Bool()
	p.RegionsLogged = d.U64()
	p.StreamStarts = d.U64()
	p.StreamPrefetches = d.U64()
	return d.End()
}

// RDIP

// Snapshot implements Design.
func (d *RDIP) Snapshot(e *checkpoint.Encoder) {
	e.Begin("rdip")
	d.btb.Snapshot(e)
	e.Int(len(d.entries))
	for i := range d.entries {
		en := &d.entries[i]
		e.Bool(en.valid)
		e.U16(en.tag)
		for _, b := range en.blocks {
			e.U64(uint64(b))
		}
		e.U8(en.n)
		e.U8(en.next)
	}
	e.Int(len(d.ras))
	for _, a := range d.ras {
		e.U64(uint64(a))
	}
	e.U64(d.sig)
	e.U64(d.Recorded)
	e.U64(d.Issued)
	e.End()
}

// Restore implements Design.
func (d *RDIP) Restore(dec *checkpoint.Decoder) error {
	if err := dec.Begin("rdip"); err != nil {
		return err
	}
	if err := d.btb.Restore(dec); err != nil {
		return err
	}
	n := dec.Int()
	if dec.Err() == nil && n != len(d.entries) {
		return lenMismatch("RDIP table", n, len(d.entries))
	}
	for i := 0; i < n && dec.Err() == nil; i++ {
		en := &d.entries[i]
		en.valid = dec.Bool()
		en.tag = dec.U16()
		for j := range en.blocks {
			en.blocks[j] = isa.BlockID(dec.U64())
		}
		en.n = dec.U8()
		en.next = dec.U8()
	}
	n = dec.Count(8)
	if dec.Err() == nil && n > cap(d.ras) {
		return fmt.Errorf("%w: RDIP shadow RAS holds %d entries over capacity %d",
			checkpoint.ErrCorrupt, n, cap(d.ras))
	}
	d.ras = d.ras[:0]
	for i := 0; i < n; i++ {
		d.ras = append(d.ras, isa.Addr(dec.U64()))
	}
	d.sig = dec.U64()
	d.Recorded = dec.U64()
	d.Issued = dec.U64()
	return dec.End()
}

// Boomerang

// Snapshot implements Design.
func (d *Boomerang) Snapshot(e *checkpoint.Encoder) {
	e.Begin("boomerang")
	d.bb.Snapshot(e)
	d.bypc.Snapshot(e, btb.EncodeEntry)
	d.rec.snapshot(e)
	d.q.snapshot(e)
	e.U64(uint64(d.walkPC))
	e.Bool(d.walkValid)
	e.Bool(d.stalled)
	e.U64(uint64(d.stalledOn))
	e.Int(len(d.specRAS))
	for _, a := range d.specRAS {
		e.U64(uint64(a))
	}
	e.U64(d.ReactiveFills)
	e.U64(d.Squashes)
	e.U64(d.EnginePrefetches)
	e.End()
}

// Restore implements Design.
func (d *Boomerang) Restore(dec *checkpoint.Decoder) error {
	if err := dec.Begin("boomerang"); err != nil {
		return err
	}
	if err := d.bb.Restore(dec); err != nil {
		return err
	}
	if err := d.bypc.Restore(dec, btb.DecodeEntry); err != nil {
		return err
	}
	if err := d.rec.restore(dec); err != nil {
		return err
	}
	if err := d.q.restore(dec); err != nil {
		return err
	}
	d.walkPC = isa.Addr(dec.U64())
	d.walkValid = dec.Bool()
	d.stalled = dec.Bool()
	d.stalledOn = isa.BlockID(dec.U64())
	n := dec.Count(8)
	d.specRAS = d.specRAS[:0]
	for i := 0; i < n; i++ {
		d.specRAS = append(d.specRAS, isa.Addr(dec.U64()))
	}
	d.ReactiveFills = dec.U64()
	d.Squashes = dec.U64()
	d.EnginePrefetches = dec.U64()
	return dec.End()
}

// Shotgun

// Snapshot implements Design.
func (d *Shotgun) Snapshot(e *checkpoint.Encoder) {
	e.Begin("shotgun")
	d.sb.Snapshot(e)
	d.bypcU.Snapshot(e, btb.EncodeEntry)
	d.bypcC.Snapshot(e, btb.EncodeEntry)
	d.bypcR.Snapshot(e, btb.EncodeEntry)
	d.rec.snapshot(e)
	d.q.snapshot(e)
	e.U64(uint64(d.walkPC))
	e.Bool(d.walkValid)
	e.Bool(d.stalled)
	e.U64(uint64(d.stalledOn))
	e.Int(len(d.specRAS))
	for _, r := range d.specRAS {
		e.U64(uint64(r.ret))
		e.U8(r.retFP.Bits)
	}
	e.U64(uint64(d.lastUStart))
	e.Bool(d.region.open)
	e.U64(uint64(d.region.owner))
	e.U64(uint64(d.region.base))
	e.U8(d.region.fp.Bits)
	e.Bool(d.region.isRet)
	e.Int(len(d.fpStack))
	for _, a := range d.fpStack {
		e.U64(uint64(a))
	}
	e.U64(d.ReactiveFills)
	e.U64(d.Squashes)
	e.U64(d.FootprintPrefetch)
	e.U64(d.EnginePrefetches)
	e.U64(d.ProactivePrefills)
	e.End()
}

// Restore implements Design.
func (d *Shotgun) Restore(dec *checkpoint.Decoder) error {
	if err := dec.Begin("shotgun"); err != nil {
		return err
	}
	if err := d.sb.Restore(dec); err != nil {
		return err
	}
	for _, t := range []*btb.Table[btb.Entry]{d.bypcU, d.bypcC, d.bypcR} {
		if err := t.Restore(dec, btb.DecodeEntry); err != nil {
			return err
		}
	}
	if err := d.rec.restore(dec); err != nil {
		return err
	}
	if err := d.q.restore(dec); err != nil {
		return err
	}
	d.walkPC = isa.Addr(dec.U64())
	d.walkValid = dec.Bool()
	d.stalled = dec.Bool()
	d.stalledOn = isa.BlockID(dec.U64())
	n := dec.Count(9)
	d.specRAS = d.specRAS[:0]
	for i := 0; i < n; i++ {
		d.specRAS = append(d.specRAS, shotgunRASEntry{
			ret:   isa.Addr(dec.U64()),
			retFP: btb.Footprint{Bits: dec.U8()},
		})
	}
	d.lastUStart = isa.Addr(dec.U64())
	d.region.open = dec.Bool()
	d.region.owner = isa.Addr(dec.U64())
	d.region.base = isa.BlockID(dec.U64())
	d.region.fp = btb.Footprint{Bits: dec.U8()}
	d.region.isRet = dec.Bool()
	n = dec.Count(8)
	d.fpStack = d.fpStack[:0]
	for i := 0; i < n; i++ {
		d.fpStack = append(d.fpStack, isa.Addr(dec.U64()))
	}
	d.ReactiveFills = dec.U64()
	d.Squashes = dec.U64()
	d.FootprintPrefetch = dec.U64()
	d.EnginePrefetches = dec.U64()
	d.ProactivePrefills = dec.U64()
	return dec.End()
}
