package prefetch

import (
	"dnc/internal/btb"
	"dnc/internal/cache"
	"dnc/internal/isa"
)

// RLU is the Recently-Looked-Up filter: the addresses of the last eight
// blocks probed in the L1i by either the prefetcher or the demand stream. It
// suppresses repetitive cache lookups of the aggressive proactive engine
// (Section V.B, "Decreasing the unnecessary cache lookups").
type RLU struct {
	entries []isa.BlockID
	valid   []bool
	next    int
}

// NewRLU returns a filter with the given entry count (paper: 8; 0 disables
// filtering, every probe misses).
func NewRLU(entries int) *RLU {
	return &RLU{entries: make([]isa.BlockID, entries), valid: make([]bool, entries)}
}

// Contains reports whether the block was recently looked up.
func (r *RLU) Contains(b isa.BlockID) bool {
	for i := range r.entries {
		if r.valid[i] && r.entries[i] == b {
			return true
		}
	}
	return false
}

// Insert records a lookup (FIFO replacement).
func (r *RLU) Insert(b isa.BlockID) {
	if len(r.entries) == 0 || r.Contains(b) {
		return
	}
	r.entries[r.next] = b
	r.valid[r.next] = true
	r.next = (r.next + 1) % len(r.entries)
}

// qItem is a block queued for SN4L or Dis triggering, with its chain depth.
type qItem struct {
	block isa.BlockID
	depth int
	// fromDis marks candidates produced by discontinuity replay; their
	// usefulness verdicts must not train the sequential predictor.
	fromDis bool
}

// boundedQueue is a fixed-capacity FIFO ring; pushes beyond capacity are
// dropped. The ring makes pop O(1) — these queues drain on every design tick,
// so a shift-down FIFO would memmove on the hottest prefetch path.
type boundedQueue struct {
	ring []qItem
	head int
	n    int
	cap  int
	// Drops counts items lost to overflow.
	Drops uint64
}

func newBoundedQueue(capacity int) *boundedQueue {
	return &boundedQueue{cap: capacity, ring: make([]qItem, capacity)}
}

func (q *boundedQueue) len() int { return q.n }

// at returns the i-th queued item in FIFO order (checkpoint traversal).
func (q *boundedQueue) at(i int) qItem { return q.ring[(q.head+i)%len(q.ring)] }

func (q *boundedQueue) push(it qItem) {
	if q.n >= q.cap {
		q.Drops++
		return
	}
	q.ring[(q.head+q.n)%len(q.ring)] = it
	q.n++
}

func (q *boundedQueue) pop() (qItem, bool) {
	if q.n == 0 {
		return qItem{}, false
	}
	it := q.ring[q.head]
	q.head = (q.head + 1) % len(q.ring)
	q.n--
	return it, true
}

func (q *boundedQueue) reset() { q.head, q.n = 0, 0 }

// ProactiveConfig sizes the combined SN4L+Dis(+BTB) design.
type ProactiveConfig struct {
	SeqEntries int  // SeqTable entries (paper: 16K); 0 = unlimited
	DisEntries int  // DisTable entries (paper: 4K); 0 = unlimited
	DisTagBits uint // DisTable partial tag width (paper: 4)
	BTBEntries int  // conventional BTB entries (paper: 2K)
	QueueDepth int  // SeqQueue/DisQueue/RLUQueue capacity (paper: 16)
	RLUEntries int  // RLU size (paper: 8)
	MaxDepth   int  // proactive chain termination depth (paper: 4)
	// WithBTBPrefetch enables the Confluence-like BTB prefetch buffer fed
	// by the shared pre-decoder (the "+BTB" in SN4L+Dis+BTB).
	WithBTBPrefetch bool
	// PBEntries/PBWays size the BTB prefetch buffer (paper: 32, 2-way).
	PBEntries, PBWays int
	// Mode affects DisTable entry storage accounting.
	Mode isa.Mode
}

// DefaultProactiveConfig returns the paper's SN4L+Dis+BTB configuration.
func DefaultProactiveConfig() ProactiveConfig {
	return ProactiveConfig{
		SeqEntries: 16 << 10,
		DisEntries: 4 << 10,
		DisTagBits: 4,
		BTBEntries: 2 << 10,
		QueueDepth: 16,
		RLUEntries: 8,
		MaxDepth:   4,
		PBEntries:  32,
		PBWays:     2,
	}
}

// Proactive is the combined SN4L+Dis prefetcher with proactive chaining and,
// optionally, the BTB prefetcher (Section V). It goes multiple sequential
// and discontinuity regions ahead of the fetch stream: SN4L candidates
// trigger Dis lookups and vice versa, each chained prefetch carrying a depth
// that terminates the chain at MaxDepth.
type Proactive struct {
	Base
	cfg  ProactiveConfig
	btb  *ConvBTB
	seq  *SeqTable
	dis  *DisTable
	rlu  *RLU
	seqQ *boundedQueue
	disQ *boundedQueue
	rluQ *boundedQueue

	// sink is the core's event tracer, when it offers one (see TraceSink).
	sink TraceSink

	// pendingDecode holds blocks whose Dis replay / pre-decode awaits the
	// block's fill (raw bytes are needed to decode).
	pendingDecode map[isa.BlockID]int

	// disIssued tracks in-flight prefetches that originated from Dis
	// replay, so their eviction verdicts bypass the SeqTable (a useless
	// discontinuity prefetch says nothing about sequential usefulness).
	disIssued map[isa.BlockID]struct{}

	// Statistics.
	Recorded   uint64
	Replay     ReplayStats
	SeqIssued  uint64
	DisIssued  uint64
	PBFills    uint64
	RLUFilters uint64
}

// NewProactive builds the combined design. With WithBTBPrefetch it is the
// full SN4L+Dis+BTB; without it, SN4L+Dis.
func NewProactive(cfg ProactiveConfig) *Proactive {
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 4
	}
	if cfg.BTBEntries == 0 {
		cfg.BTBEntries = 2 << 10
	}
	p := &Proactive{
		cfg:           cfg,
		btb:           NewConvBTB(cfg.BTBEntries, 4),
		seq:           NewSeqTable(cfg.SeqEntries),
		dis:           NewDisTable(cfg.DisEntries, cfg.DisTagBits),
		rlu:           NewRLU(cfg.RLUEntries),
		seqQ:          newBoundedQueue(cfg.QueueDepth),
		disQ:          newBoundedQueue(cfg.QueueDepth),
		rluQ:          newBoundedQueue(cfg.QueueDepth),
		pendingDecode: make(map[isa.BlockID]int),
		disIssued:     make(map[isa.BlockID]struct{}),
	}
	if cfg.WithBTBPrefetch {
		pbe, pbw := cfg.PBEntries, cfg.PBWays
		if pbe == 0 {
			pbe, pbw = 32, 2
		}
		p.btb.PB = btb.NewPrefetchBuffer(pbe, pbw)
	}
	return p
}

// Bind implements Design, additionally capturing the environment's trace
// sink when it has one.
func (p *Proactive) Bind(env Env) {
	p.Base.Bind(env)
	p.sink, _ = env.(TraceSink)
}

// QueueOccupancy implements OccupancyReporter: total entries across the
// Seq, Dis, and RLU queues.
func (p *Proactive) QueueOccupancy() int {
	return p.seqQ.len() + p.disQ.len() + p.rluQ.len()
}

// Name implements Design.
func (p *Proactive) Name() string {
	if p.cfg.WithBTBPrefetch {
		return "SN4L+Dis+BTB"
	}
	return "SN4L+Dis"
}

// SeqTable and DisTable expose internals for the benchmark harness.
func (p *Proactive) SeqTable() *SeqTable { return p.seq }

// DisTable returns the discontinuity table.
func (p *Proactive) DisTable() *DisTable { return p.dis }

// ConvBTB returns the BTB front (tests).
func (p *Proactive) ConvBTB() *ConvBTB { return p.btb }

// BTBLookup implements Design.
func (p *Proactive) BTBLookup(pc isa.Addr, kind isa.Kind) (isa.Addr, bool) {
	return p.btb.Lookup(pc, kind)
}

// BTBCommit implements Design.
func (p *Proactive) BTBCommit(pc isa.Addr, kind isa.Kind, target isa.Addr, taken bool) {
	p.btb.Commit(pc, kind, target, taken)
}

// OnDemand implements Design: SN4L metadata updates plus proactive
// triggering at depth zero.
func (p *Proactive) OnDemand(b isa.BlockID, hit bool, last2 [2]isa.Addr) {
	env := p.E()
	if hit {
		line := env.L1iLine(b)
		if line.Flags&cache.FlagPrefetched != 0 {
			line.Flags &^= cache.FlagPrefetched
			p.seq.Set(b)
			refreshLocal(env, p.seq, b)
		}
	} else {
		p.seq.Set(b)
		refreshLocal(env, p.seq, b)
		recordMiss(env, p.dis, last2, &p.Recorded)
	}
	// The demanded block was, by definition, just looked up.
	p.rlu.Insert(b)
	p.seqQ.push(qItem{block: b, depth: 0})
	p.disQ.push(qItem{block: b, depth: 0})
}

// auxDisBit marks a resident line as a Dis-originated prefetch in the high
// bit of the per-line Aux metadata (bits 0-3 hold the status nibble).
const auxDisBit = 0x80

// OnFill implements Design: latch local status and run deferred decodes.
func (p *Proactive) OnFill(b isa.BlockID, prefetch bool) {
	if line := p.E().L1iLine(b); line != nil {
		line.Aux = p.seq.Nibble(b)
		if _, ok := p.disIssued[b]; ok {
			delete(p.disIssued, b)
			if prefetch {
				line.Aux |= auxDisBit
			}
		}
	}
	if d, ok := p.pendingDecode[b]; ok {
		delete(p.pendingDecode, b)
		p.decodeBlock(b, d)
	}
}

// OnEvict implements Design: an unused sequential prefetch resets its
// SeqTable entry; unused discontinuity prefetches do not touch it.
func (p *Proactive) OnEvict(ev cache.Evicted) {
	if ev.Flags&cache.FlagPrefetched != 0 && ev.Aux&auxDisBit == 0 {
		p.seq.Reset(ev.Block)
		refreshLocal(p.E(), p.seq, ev.Block)
	}
}

// OnRedirect implements Design: a no-op. Unlike BTB-directed engines, the
// proposed design holds no speculative fetch state — queued prefetch
// candidates were derived from observed accesses and stay valid across
// redirects (prefetching is not architectural state).
func (p *Proactive) OnRedirect(isa.Addr) {}

// QueueDrops reports items lost to queue overflow (harness probe).
func (p *Proactive) QueueDrops() (seq, dis, rlu uint64) {
	return p.seqQ.Drops, p.disQ.Drops, p.rluQ.Drops
}

// Quiescent implements Quiescer: with all three queues empty every step of
// Tick is a failed pop, mutating nothing and probing nothing.
func (p *Proactive) Quiescent() bool { return p.QueueOccupancy() == 0 }

// Tick implements Design: two SeqQueue steps, one DisQueue step, and up to
// two RLUQueue steps (two L1i ports) per cycle.
func (p *Proactive) Tick() {
	p.stepSeq()
	p.stepSeq()
	p.stepDis()
	p.stepRLU()
	p.stepRLU()
}

// stepSeq processes one SeqQueue entry: selective next-line candidates. At
// depth zero it is SN4L (four candidates); beyond a discontinuity it is SN1L
// (Section V.B: depth costs accuracy, so the chain uses depth one).
func (p *Proactive) stepSeq() {
	it, ok := p.seqQ.pop()
	if !ok {
		return
	}
	env := p.E()
	width := 4
	if it.depth > 0 {
		width = 1
	}
	var nib uint8
	if line := env.L1iLine(it.block); line != nil {
		nib = line.Aux
	} else {
		nib = p.seq.Nibble(it.block)
	}
	for i := 1; i <= width; i++ {
		if nib&(1<<(i-1)) == 0 {
			continue
		}
		p.rluQ.push(qItem{block: it.block + isa.BlockID(i), depth: it.depth})
	}
}

// stepDis processes one DisQueue entry: replay the recorded discontinuity of
// the block (deferred until the block's bytes are available).
func (p *Proactive) stepDis() {
	it, ok := p.disQ.pop()
	if !ok {
		return
	}
	if p.E().L1iContains(it.block) {
		p.decodeBlock(it.block, it.depth)
		return
	}
	// Bound the deferred-decode set: a block whose fill never arrives (e.g.
	// its prefetch was dropped on a full MSHR file) must not pin an entry.
	if _, exists := p.pendingDecode[it.block]; !exists && len(p.pendingDecode) < 64 {
		p.pendingDecode[it.block] = it.depth
	}
}

// decodeBlock runs the shared pre-decoder over a block: fill the BTB
// prefetch buffer (when enabled) and chase the DisTable offset's target.
func (p *Proactive) decodeBlock(b isa.BlockID, depth int) {
	env := p.E()
	if p.cfg.WithBTBPrefetch {
		if brs := env.Predecode(b); len(brs) > 0 {
			p.btb.PB.Fill(b, brs)
			p.PBFills++
		}
	}
	if tb, ok := replayDis(env, p.dis, p.btb, b, &p.Replay); ok {
		if p.sink != nil {
			p.sink.TraceDiscontinuity(tb)
		}
		p.rluQ.push(qItem{block: tb, depth: depth, fromDis: true})
	}
}

// stepRLU processes one RLUQueue entry: filter through the RLU, probe the
// cache, issue the prefetch, and chain the block into Seq/DisQueues at
// depth+1.
func (p *Proactive) stepRLU() {
	it, ok := p.rluQ.pop()
	if !ok {
		return
	}
	if p.rlu.Contains(it.block) {
		p.RLUFilters++
		return
	}
	p.rlu.Insert(it.block)
	env := p.E()
	if !env.L1iContains(it.block) && !env.InFlight(it.block) {
		if env.IssuePrefetch(it.block, false) {
			if it.fromDis {
				p.DisIssued++
				if len(p.disIssued) < 4096 {
					p.disIssued[it.block] = struct{}{}
				}
			} else {
				p.SeqIssued++
			}
		}
	}
	nd := it.depth + 1
	if nd <= p.cfg.MaxDepth {
		// Chain rule from the paper's Section V.B example: sequential
		// candidates (A+1, A+2) are sent only to the DisQueue, to discover
		// discontinuities inside the sequential run; discontinuity targets
		// (B) enter both queues, so SN1L prefetches the sequential region
		// of the new discontinuity and Dis keeps following it.
		if it.fromDis {
			p.seqQ.push(qItem{block: it.block, depth: nd, fromDis: true})
		}
		p.disQ.push(qItem{block: it.block, depth: nd, fromDis: it.fromDis})
	}
}

// StorageBits implements Design: SeqTable + DisTable + prefetch buffer +
// queues and RLU (Section VI.D: 7.6 KB total for the paper configuration).
func (p *Proactive) StorageBits() int {
	bits := p.seq.Entries() // 1 bit per SeqTable entry
	bits += p.dis.Entries() * p.dis.EntryBits(p.cfg.Mode)
	if p.cfg.WithBTBPrefetch {
		// 32 block entries, each holding up to 4 branches of (6-bit offset
		// + 46-bit target + 2-bit kind) plus a block tag: ~1 KB.
		bits += p.cfg.PBEntries * (4*(6+46+2) + 40)
	}
	// SeqQueue, DisQueue, RLUQueue (block address + 3-bit depth) and RLU.
	bits += 3 * p.cfg.QueueDepth * (46 + 3)
	bits += p.cfg.RLUEntries * 46
	return bits
}
