package prefetch

import "dnc/internal/isa"

// Discontinuity is the conventional discontinuity prefetcher (Spracklen et
// al., HPCA 2005) used in the paper's motivation: a table mapping a trigger
// block to the full target address of the discontinuity miss that followed
// it. Each entry stores a whole address, which is why the conventional table
// costs tens of kilobytes — the Dis prefetcher's offset+predecode trick
// removes exactly this cost.
type Discontinuity struct {
	Base
	btb *ConvBTB

	valid   []bool
	tags    []uint16
	targets []isa.BlockID
	mask    uint64
	tagBits uint

	prevBlock isa.BlockID
	havePrev  bool

	// Recorded and Issued count table activity.
	Recorded uint64
	Issued   uint64
}

// NewDiscontinuity returns the conventional design. tagBits=0 models the
// tagless table of prior work.
func NewDiscontinuity(entries int, tagBits uint, btbEntries int) *Discontinuity {
	if entries&(entries-1) != 0 {
		panic("prefetch: discontinuity entries must be a power of two")
	}
	return &Discontinuity{
		btb:     NewConvBTB(btbEntries, 4),
		valid:   make([]bool, entries),
		tags:    make([]uint16, entries),
		targets: make([]isa.BlockID, entries),
		mask:    uint64(entries - 1),
		tagBits: tagBits,
	}
}

// Name implements Design.
func (*Discontinuity) Name() string { return "discontinuity" }

// BTBLookup implements Design.
func (d *Discontinuity) BTBLookup(pc isa.Addr, kind isa.Kind) (isa.Addr, bool) {
	return d.btb.Lookup(pc, kind)
}

// BTBCommit implements Design.
func (d *Discontinuity) BTBCommit(pc isa.Addr, kind isa.Kind, target isa.Addr, taken bool) {
	d.btb.Commit(pc, kind, target, taken)
}

func (d *Discontinuity) idx(b isa.BlockID) uint64 { return uint64(b) & d.mask }

func (d *Discontinuity) tagOf(b isa.BlockID) uint16 {
	if d.tagBits == 0 {
		return 0
	}
	return uint16((uint64(b) >> 12) & ((1 << d.tagBits) - 1))
}

// OnDemand implements Design: record discontinuity misses, replay on every
// access.
func (d *Discontinuity) OnDemand(b isa.BlockID, hit bool, _ [2]isa.Addr) {
	env := d.E()
	if !hit && d.havePrev && b != d.prevBlock+1 {
		i := d.idx(d.prevBlock)
		d.valid[i] = true
		d.tags[i] = d.tagOf(d.prevBlock)
		d.targets[i] = b
		d.Recorded++
	}
	d.prevBlock, d.havePrev = b, true

	i := d.idx(b)
	if d.valid[i] && d.tags[i] == d.tagOf(b) {
		t := d.targets[i]
		if !env.L1iContains(t) && !env.InFlight(t) {
			if env.IssuePrefetch(t, false) {
				d.Issued++
			}
		}
	}
}

// StorageBits implements Design: each entry stores a full block address
// (~46 bits) plus the tag.
func (d *Discontinuity) StorageBits() int {
	return len(d.valid) * (46 + int(d.tagBits))
}
