package prefetch

import (
	"testing"

	"dnc/internal/isa"
)

// buildKindImage lays out a fixed-mode block whose slot 3 is a transfer of
// the given kind (target encoded only for kinds that carry one).
func buildKindImage(base isa.Addr, kind isa.Kind, target isa.Addr) *isa.Image {
	var code []byte
	for i := 0; i < 16; i++ {
		inst := isa.Inst{PC: base + isa.Addr(i*4), Size: 4, Kind: isa.KindALU}
		if i == 3 {
			inst.Kind = kind
			inst.Target = target
		}
		code = isa.AppendInst(code, isa.Fixed, inst)
	}
	return isa.NewImage(isa.Fixed, base, code)
}

// TestDisRecordScansBothDelaySlotCandidates pins the recording rule: the
// discontinuity branch may be either of the last two demanded instructions
// (the SPARC delay slot), and zero PCs are skipped.
func TestDisRecordScansBothDelaySlotCandidates(t *testing.T) {
	base := isa.Addr(0x10000)
	branchPC := base + 12
	cases := []struct {
		name  string
		last2 [2]isa.Addr
		want  bool
	}{
		{name: "branch-first", last2: [2]isa.Addr{branchPC, base + 16}, want: true},
		{name: "branch-second", last2: [2]isa.Addr{base + 16, branchPC}, want: true},
		{name: "no-branch", last2: [2]isa.Addr{base, base + 4}, want: false},
		{name: "zero-pcs", last2: [2]isa.Addr{0, 0}, want: false},
		{name: "zero-then-branch", last2: [2]isa.Addr{0, branchPC}, want: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := newFakeEnv()
			env.image = buildBranchImage(base, 0x20000)
			d := NewDis(1024, 4, 2048)
			d.Bind(env)
			d.OnDemand(isa.BlockOf(0x20000), false, tc.last2)
			_, ok := d.Table().Lookup(isa.BlockOf(base))
			if ok != tc.want {
				t.Fatalf("recorded = %v, want %v", ok, tc.want)
			}
		})
	}
}

// TestDisReturnNeedsBTB pins the replay path for transfers without an
// encoded target: a recorded return replays only once the BTB knows the
// target, and the miss is counted in ReplayStats.NoTarget until then.
func TestDisReturnNeedsBTB(t *testing.T) {
	env := newFakeEnv()
	base := isa.Addr(0x10000)
	env.image = buildKindImage(base, isa.KindReturn, 0)
	d := NewDis(1024, 4, 2048)
	d.Bind(env)

	blk := isa.BlockOf(base)
	d.Table().Record(blk, 12)
	env.install(blk)

	d.OnDemand(blk, true, [2]isa.Addr{})
	if len(env.issued) != 0 {
		t.Fatalf("replayed a return with no BTB target: %v", env.issued)
	}
	if d.Replay.NoTarget != 1 {
		t.Fatalf("NoTarget = %d, want 1", d.Replay.NoTarget)
	}

	// Once the BTB learns the return's target, replay issues it.
	target := isa.Addr(0x30000)
	d.BTBCommit(base+12, isa.KindReturn, target, true)
	d.OnDemand(blk, true, [2]isa.Addr{})
	if !issuedSet(env.issued)[isa.BlockOf(target)] {
		t.Fatalf("return target not prefetched after BTB training: %v", env.issued)
	}
	if d.Replay.Replayed != 1 {
		t.Fatalf("Replayed = %d, want 1", d.Replay.Replayed)
	}
}

// TestDisReplayStatsClassify pins the stat taxonomy over a table of replay
// outcomes: no table entry, aliased entry decoding to a non-branch, and a
// successful replay.
func TestDisReplayStatsClassify(t *testing.T) {
	env := newFakeEnv()
	base := isa.Addr(0x10000)
	env.image = buildBranchImage(base, 0x20000)
	d := NewDis(1024, 4, 2048)
	d.Bind(env)
	blk := isa.BlockOf(base)

	env.install(blk)
	d.OnDemand(blk, true, [2]isa.Addr{}) // no entry: attempt only
	if d.Replay != (ReplayStats{Attempts: 1}) {
		t.Fatalf("after table miss: %+v", d.Replay)
	}

	d.Table().Record(blk, 0) // offset 0 decodes to an ALU op
	d.OnDemand(blk, true, [2]isa.Addr{})
	if d.Replay.NotBranch != 1 || d.Replay.TableHits != 1 {
		t.Fatalf("after stale entry: %+v", d.Replay)
	}
	if d.Replay.Overprediction() != 1 {
		t.Fatalf("overprediction = %v, want 1", d.Replay.Overprediction())
	}

	d.Table().Record(blk, 12) // the real branch
	d.OnDemand(blk, true, [2]isa.Addr{})
	if d.Replay.Replayed != 1 {
		t.Fatalf("after good entry: %+v", d.Replay)
	}
	if d.Replay.Overprediction() != 0.5 {
		t.Fatalf("overprediction = %v, want 0.5", d.Replay.Overprediction())
	}
}

// TestDisPendingReplayDedup pins the deferred-replay queue: repeated misses
// on the same block collapse to one pending entry, the fill drains it, and
// later unrelated fills do not replay it again.
func TestDisPendingReplayDedup(t *testing.T) {
	env := newFakeEnv()
	base := isa.Addr(0x10000)
	target := isa.Addr(0x20000)
	env.image = buildBranchImage(base, target)
	d := NewDis(1024, 4, 2048)
	d.Bind(env)

	blk := isa.BlockOf(base)
	d.Table().Record(blk, 12)
	d.OnDemand(blk, false, [2]isa.Addr{})
	d.OnDemand(blk, false, [2]isa.Addr{})
	if len(d.pending) != 1 {
		t.Fatalf("pending = %d entries, want 1", len(d.pending))
	}
	env.fill(d, blk, false)
	if len(d.pending) != 0 {
		t.Fatal("fill did not drain the pending entry")
	}
	if !issuedSet(env.issued)[isa.BlockOf(target)] {
		t.Fatalf("deferred replay missing: %v", env.issued)
	}
}
