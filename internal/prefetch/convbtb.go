package prefetch

import (
	"dnc/internal/btb"
	"dnc/internal/isa"
)

// ConvBTB is the conventional program-counter-indexed BTB front used by the
// baseline, the sequential designs, the proposed design, and Confluence. It
// optionally consults a BTB prefetch buffer on misses, promoting a hit
// block's branches into the BTB (Section V.C).
type ConvBTB struct {
	BTB *btb.BTB
	// PB is the optional BTB prefetch buffer; nil disables prefill.
	PB *btb.PrefetchBuffer

	// PBPromotions counts misses saved by the prefetch buffer.
	PBPromotions uint64
}

// NewConvBTB returns a conventional BTB of the given capacity.
func NewConvBTB(entries, ways int) *ConvBTB {
	return &ConvBTB{BTB: btb.New(entries, ways)}
}

// Lookup implements the BTBLookup contract over a conventional BTB.
func (c *ConvBTB) Lookup(pc isa.Addr, kind isa.Kind) (isa.Addr, bool) {
	if e, ok := c.BTB.Lookup(pc); ok {
		return e.Target, true
	}
	if c.PB == nil {
		return 0, false
	}
	// A prefetch-buffer hit moves the whole block's branches into the BTB.
	brs, ok := c.PB.TakeBlock(isa.BlockOf(pc))
	if !ok {
		return 0, false
	}
	c.PBPromotions++
	var target isa.Addr
	found := false
	base := isa.BlockBase(isa.BlockOf(pc))
	for _, br := range brs {
		brPC := base + isa.Addr(br.Offset)
		c.BTB.Insert(brPC, btb.Entry{Kind: br.Kind, Target: br.Target})
		if brPC == pc {
			target = br.Target
			found = true
		}
	}
	return target, found
}

// Commit trains the BTB with a resolved branch.
func (c *ConvBTB) Commit(pc isa.Addr, kind isa.Kind, target isa.Addr, taken bool) {
	if !taken && kind == isa.KindCondBranch {
		// Not-taken conditionals still allocate so future taken outcomes
		// have a target; matches common BTB allocate-on-decode policy.
		if _, ok := c.BTB.Peek(pc); !ok {
			c.BTB.Insert(pc, btb.Entry{Kind: kind, Target: target})
		}
		return
	}
	c.BTB.Insert(pc, btb.Entry{Kind: kind, Target: target})
}

// Baseline is the no-prefetch design: a conventional BTB and nothing else.
type Baseline struct {
	Base
	btb *ConvBTB
}

// NewBaseline returns the baseline design with a BTB of the given entries.
func NewBaseline(btbEntries int) *Baseline {
	return &Baseline{btb: NewConvBTB(btbEntries, 4)}
}

// Name implements Design.
func (*Baseline) Name() string { return "baseline" }

// BTBLookup implements Design.
func (d *Baseline) BTBLookup(pc isa.Addr, kind isa.Kind) (isa.Addr, bool) {
	return d.btb.Lookup(pc, kind)
}

// BTBCommit implements Design.
func (d *Baseline) BTBCommit(pc isa.Addr, kind isa.Kind, target isa.Addr, taken bool) {
	d.btb.Commit(pc, kind, target, taken)
}
