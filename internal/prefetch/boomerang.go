package prefetch

import (
	"dnc/internal/btb"
	"dnc/internal/isa"
)

// Boomerang (Kumar et al., HPCA 2017) is the BTB-directed prefetcher that
// revived fetch-directed instruction prefetching: a basic-block-oriented BTB
// walked ahead of fetch by the branch prediction unit fills a fetch target
// queue (FTQ); blocks entering the FTQ are prefetched, and BTB misses are
// repaired reactively by fetching and pre-decoding the missing block. While
// a BTB miss is being repaired the engine cannot insert into the FTQ — the
// dependence on BTB content the paper's Section III criticizes.
type Boomerang struct {
	Base
	bb *btb.BBBTB
	// bypc mirrors BB entries keyed by branch PC for the core's per-branch
	// target lookups; it is the same logical BTB viewed by tag.
	bypc *btb.Table[btb.Entry]
	rec  *bbRecorder
	q    *ftq

	walkPC    isa.Addr
	walkValid bool
	stalled   bool
	stalledOn isa.BlockID
	specRAS   []isa.Addr

	// WalkBudget is how many basic blocks the engine advances per cycle.
	WalkBudget int

	// ReactiveFills, Squashes and EnginePrefetches count engine activity.
	ReactiveFills    uint64
	Squashes         uint64
	EnginePrefetches uint64
}

// QueueOccupancy implements OccupancyReporter: the FTQ's current depth.
func (d *Boomerang) QueueOccupancy() int { return len(d.q.blocks) }

// BoomerangConfig sizes the design.
type BoomerangConfig struct {
	BTBEntries, BTBWays int
	FTQEntries          int
	WalkBudget          int
}

// DefaultBoomerangConfig matches the paper's modelling: a 2K-entry
// basic-block BTB and a 32-entry FTQ.
func DefaultBoomerangConfig() BoomerangConfig {
	return BoomerangConfig{BTBEntries: 2048, BTBWays: 4, FTQEntries: 32, WalkBudget: 2}
}

// NewBoomerang builds the design.
func NewBoomerang(cfg BoomerangConfig) *Boomerang {
	if cfg.BTBEntries == 0 {
		cfg = DefaultBoomerangConfig()
	}
	d := &Boomerang{
		bb:         btb.NewBBBTB(cfg.BTBEntries, cfg.BTBWays),
		bypc:       btb.NewTable[btb.Entry](cfg.BTBEntries, cfg.BTBWays),
		q:          newFTQ(cfg.FTQEntries),
		WalkBudget: cfg.WalkBudget,
	}
	d.rec = newBBRecorder(0, d.insertBB)
	return d
}

// Name implements Design.
func (*Boomerang) Name() string { return "boomerang" }

// insertBB installs a basic block into both views of the BTB.
func (d *Boomerang) insertBB(start isa.Addr, e btb.BBEntry) {
	d.bb.Insert(start, e)
	if e.Kind.IsBranch() {
		d.bypc.Insert(e.BranchPC, btb.Entry{Kind: e.Kind, Target: e.Target})
	}
}

// BTBLookup implements Design (core-side per-branch view).
func (d *Boomerang) BTBLookup(pc isa.Addr, kind isa.Kind) (isa.Addr, bool) {
	if e, ok := d.bypc.Lookup(pc); ok {
		return e.Target, true
	}
	return 0, false
}

// BTBCommit implements Design: commit-time training happens through
// OnRetire's basic-block recorder; per-branch commits keep the by-PC view
// warm for branches whose block boundaries were disturbed by redirects.
func (d *Boomerang) BTBCommit(pc isa.Addr, kind isa.Kind, target isa.Addr, taken bool) {
	if kind == isa.KindCondBranch && !taken {
		if _, ok := d.bypc.Peek(pc); ok {
			return
		}
	}
	d.bypc.Insert(pc, btb.Entry{Kind: kind, Target: target})
}

// OnRetire implements Design.
func (d *Boomerang) OnRetire(inst isa.Inst, taken bool, target isa.Addr) {
	d.rec.retire(inst, taken, target)
}

// FTQGate implements Design: fetch may proceed into pc's block only when the
// engine has delivered it at the FTQ head.
func (d *Boomerang) FTQGate(pc isa.Addr) bool {
	b := isa.BlockOf(pc)
	if h, ok := d.q.head(); ok {
		if h == b {
			d.q.pop()
			return true
		}
		// The engine walked a diverging path: squash and restart here.
		d.Squashes++
		d.restart(pc)
		return false
	}
	if !d.walkValid && !d.stalled {
		d.restart(pc)
	}
	return false
}

// OnRedirect implements Design.
func (d *Boomerang) OnRedirect(pc isa.Addr) {
	d.restart(pc)
	d.rec.redirect(pc)
}

func (d *Boomerang) restart(pc isa.Addr) {
	d.q.reset()
	d.specRAS = d.specRAS[:0]
	d.stalled = false
	d.walkPC = pc
	d.walkValid = true
}

// OnFill implements Design: a fill repairing a reactive BTB miss lets the
// engine decode and resume.
func (d *Boomerang) OnFill(b isa.BlockID, prefetch bool) {
	if d.stalled && b == d.stalledOn {
		d.resumeFromFill()
	}
}

func (d *Boomerang) resumeFromFill() {
	d.stalled = false
	brs := d.E().Predecode(d.stalledOn)
	e := bbFromPredecode(d.walkPC, brs)
	d.insertBB(d.walkPC, e)
	d.ReactiveFills++
}

// Quiescent implements Quiescer: Tick is a no-op only when the engine is
// not mid-repair (a stalled engine probes the L1i every cycle, which counts
// cache lookups) and the walk either has no valid PC or a full FTQ.
func (d *Boomerang) Quiescent() bool {
	return !d.stalled && (!d.walkValid || d.q.full())
}

// Tick implements Design: advance the walk, filling the FTQ and prefetching
// its blocks.
func (d *Boomerang) Tick() {
	env := d.E()
	if d.stalled {
		// Retry a reactive fill whose prefetch could not be issued.
		if env.L1iContains(d.stalledOn) {
			d.resumeFromFill()
		} else if !env.InFlight(d.stalledOn) {
			env.IssuePrefetch(d.stalledOn, false)
		}
		return
	}
	if !d.walkValid {
		return
	}
	budget := d.WalkBudget
	if budget == 0 {
		budget = 2
	}
	for i := 0; i < budget; i++ {
		if d.q.full() || d.stalled || !d.walkValid {
			return
		}
		d.walkOne()
	}
}

// walkOne advances the engine by one basic block.
func (d *Boomerang) walkOne() {
	env := d.E()
	start := d.walkPC
	e, ok := d.bb.Lookup(start)
	if !ok {
		// BTB miss: reactive repair. The engine stops inserting into the
		// FTQ until the block arrives and is pre-decoded.
		b := isa.BlockOf(start)
		if env.L1iContains(b) {
			brs := env.Predecode(b)
			bb := bbFromPredecode(start, brs)
			d.insertBB(start, bb)
			d.ReactiveFills++
			return // decoded this cycle; walk resumes next cycle
		}
		d.stalled = true
		d.stalledOn = b
		if !env.InFlight(b) {
			env.IssuePrefetch(b, false)
		}
		return
	}

	d.enqueueSpan(start, e)

	switch e.Kind {
	case isa.KindALU:
		d.walkPC = e.Fallthrough(start)
	case isa.KindCondBranch:
		if env.PredictTaken(e.BranchPC) {
			d.walkPC = e.Target
		} else {
			d.walkPC = e.Fallthrough(start)
		}
	case isa.KindJump:
		d.walkPC = e.Target
	case isa.KindCall:
		d.pushRAS(e.Fallthrough(start))
		d.walkPC = e.Target
	case isa.KindReturn:
		if n := len(d.specRAS); n > 0 {
			d.walkPC = d.specRAS[n-1]
			d.specRAS = d.specRAS[:n-1]
		} else {
			// Nothing to follow: wait for the next redirect.
			d.walkValid = false
		}
	case isa.KindIndirect:
		if e.Target != 0 {
			d.pushRAS(e.Fallthrough(start)) // indirect call site
			d.walkPC = e.Target
		} else {
			d.walkValid = false
		}
	}
}

func (d *Boomerang) pushRAS(ret isa.Addr) {
	const depth = 16
	if len(d.specRAS) == depth {
		copy(d.specRAS, d.specRAS[1:])
		d.specRAS = d.specRAS[:depth-1]
	}
	d.specRAS = append(d.specRAS, ret)
}

// enqueueSpan pushes every block the basic block touches into the FTQ and
// prefetches the absent ones.
func (d *Boomerang) enqueueSpan(start isa.Addr, e btb.BBEntry) {
	env := d.E()
	first := isa.BlockOf(start)
	last := isa.BlockOf(start + isa.Addr(e.Size) - 1)
	for b := first; b <= last; b++ {
		d.q.push(b)
		if !env.L1iContains(b) && !env.InFlight(b) {
			if env.IssuePrefetch(b, false) {
				d.EnginePrefetches++
			}
		}
	}
}

// StorageBits implements Design: the basic-block BTB extensions over a
// conventional BTB (size + kind per entry) plus the FTQ.
func (d *Boomerang) StorageBits() int {
	return d.bb.Entries()*(7+3) + d.q.cap*46
}
