package prefetch

import (
	"testing"

	"dnc/internal/isa"
)

func rdipCall(pc, target isa.Addr) isa.Inst {
	return isa.Inst{PC: pc, Size: 4, Kind: isa.KindCall, Target: target}
}

func rdipRet(pc isa.Addr) isa.Inst {
	return isa.Inst{PC: pc, Size: 4, Kind: isa.KindReturn}
}

// TestRDIPMissSetDedup pins per-signature dedup: re-missing the same block
// under one context must not consume another miss-set slot.
func TestRDIPMissSetDedup(t *testing.T) {
	env := newFakeEnv()
	d := NewRDIP(1024, 2048)
	d.Bind(env)
	d.OnRetire(rdipCall(0x1000, 0x9000), true, 0x9000)
	d.OnDemand(500, false, [2]isa.Addr{})
	d.OnDemand(500, false, [2]isa.Addr{})
	d.OnDemand(501, false, [2]isa.Addr{})
	if d.Recorded != 2 {
		t.Fatalf("Recorded = %d, want 2 (dedup failed)", d.Recorded)
	}
}

// TestRDIPMissSetFIFOReplacement pins the bounded miss set: the ninth
// distinct miss overwrites the oldest entry, so replay covers the newest
// eight blocks.
func TestRDIPMissSetFIFOReplacement(t *testing.T) {
	env := newFakeEnv()
	d := NewRDIP(1024, 2048)
	d.Bind(env)
	call := rdipCall(0x1000, 0x9000)
	d.OnRetire(call, true, 0x9000)
	for b := isa.BlockID(500); b < 500+rdipBlocksPerSig+1; b++ {
		d.OnDemand(b, false, [2]isa.Addr{})
	}
	// Re-enter the context; the replayed set must hold blocks 501..508 (500
	// was displaced FIFO-first).
	d.OnRetire(rdipRet(0x9004), true, 0x1004)
	env.issued = nil
	d.OnRetire(call, true, 0x9000)
	got := issuedSet(env.issued)
	if got[500] {
		t.Fatalf("displaced block still replayed: %v", env.issued)
	}
	for b := isa.BlockID(501); b < 500+rdipBlocksPerSig+1; b++ {
		if !got[b] {
			t.Fatalf("block %d missing from replay: %v", b, env.issued)
		}
	}
}

// TestRDIPContextSwitchMatrix pins which retire events switch the signature
// (and hence trigger replay) — taken calls and indirects do, not-taken ones
// and plain branches do not.
func TestRDIPContextSwitchMatrix(t *testing.T) {
	cases := []struct {
		name   string
		inst   isa.Inst
		taken  bool
		replay bool
	}{
		{name: "taken-call", inst: rdipCall(0x1000, 0x9000), taken: true, replay: true},
		{name: "not-taken-call", inst: rdipCall(0x1000, 0x9000), taken: false, replay: false},
		{name: "taken-indirect", inst: isa.Inst{PC: 0x1000, Size: 4, Kind: isa.KindIndirect}, taken: true, replay: true},
		{name: "cond-branch", inst: isa.Inst{PC: 0x1000, Size: 4, Kind: isa.KindCondBranch}, taken: true, replay: false},
		{name: "alu", inst: isa.Inst{PC: 0x1000, Size: 4, Kind: isa.KindALU}, taken: false, replay: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := newFakeEnv()
			d := NewRDIP(1024, 2048)
			d.Bind(env)
			// Prime the entry the switch would land on: record a miss under
			// the post-switch signature, then rewind to the root context.
			d.OnRetire(tc.inst, tc.taken, 0x9000)
			d.OnDemand(700, false, [2]isa.Addr{})
			for len(d.ras) > 0 {
				d.OnRetire(rdipRet(0x9004), true, 0)
			}
			env.issued = nil
			d.OnRetire(tc.inst, tc.taken, 0x9000)
			if got := issuedSet(env.issued)[700]; got != tc.replay {
				t.Fatalf("replay = %v, want %v (%v)", got, tc.replay, env.issued)
			}
		})
	}
}

// TestRDIPReturnRestoresCallerContext pins the shadow-RAS pop: after a
// call/return pair the signature is the caller's again, so its miss set
// keeps accumulating rather than starting fresh.
func TestRDIPReturnRestoresCallerContext(t *testing.T) {
	env := newFakeEnv()
	d := NewRDIP(1024, 2048)
	d.Bind(env)
	d.OnRetire(rdipCall(0x1000, 0x9000), true, 0x9000) // caller context
	d.OnDemand(600, false, [2]isa.Addr{})
	d.OnRetire(rdipCall(0x9010, 0xA000), true, 0xA000) // callee context
	d.OnDemand(800, false, [2]isa.Addr{})
	d.OnRetire(rdipRet(0xA004), true, 0x9014) // back to caller

	// The pop replays the caller's set immediately.
	if !issuedSet(env.issued)[600] {
		t.Fatalf("caller's miss set not replayed on return: %v", env.issued)
	}
	// And new misses land in the caller's set, not the callee's.
	d.OnDemand(601, false, [2]isa.Addr{})
	d.OnRetire(rdipCall(0x9010, 0xA000), true, 0xA000)
	d.OnRetire(rdipRet(0xA004), true, 0x9014)
	if !issuedSet(env.issued)[601] {
		t.Fatalf("post-return miss recorded under the wrong context: %v", env.issued)
	}
}

// TestRDIPShadowRASBounded pins the 16-entry shadow stack: deep call chains
// shift rather than grow, and the signature stays computable.
func TestRDIPShadowRASBounded(t *testing.T) {
	env := newFakeEnv()
	d := NewRDIP(1024, 2048)
	d.Bind(env)
	for i := 0; i < 40; i++ {
		d.OnRetire(rdipCall(isa.Addr(0x1000+i*16), 0x9000), true, 0x9000)
	}
	if len(d.ras) != 16 {
		t.Fatalf("shadow RAS length = %d, want capped at 16", len(d.ras))
	}
	// Underflow on excess returns must be harmless.
	for i := 0; i < 20; i++ {
		d.OnRetire(rdipRet(0x9004), true, 0)
	}
	if len(d.ras) != 0 {
		t.Fatalf("shadow RAS length = %d after draining, want 0", len(d.ras))
	}
}
