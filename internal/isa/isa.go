// Package isa defines the synthetic instruction-set architecture used by the
// simulator: instruction kinds, a fixed-length (4-byte, SPARC-like) encoding,
// a variable-length (2-10 byte, x86-like) encoding, and a block pre-decoder.
//
// The prefetchers in this repository never interpret program semantics; they
// only need what real pre-decoders need from raw instruction bytes:
//
//   - which bytes inside a 64-byte cache block start a branch instruction,
//   - the branch kind (conditional, unconditional, call, return, indirect),
//   - the target of direct branches (encoded in the instruction itself).
//
// Both encodings provide exactly this, so the paper's pre-decoding based
// mechanisms (Dis replay, Confluence-like BTB prefill, branch footprints for
// variable-length ISAs) operate on genuine bytes rather than oracle metadata.
package isa

// Addr is a byte address in the simulated address space.
type Addr uint64

// BlockID identifies a 64-byte cache block (Addr >> BlockShift).
type BlockID uint64

// Cache-block geometry shared by the whole simulator.
const (
	BlockShift = 6
	BlockBytes = 1 << BlockShift
)

// BlockOf returns the cache block containing the address.
func BlockOf(a Addr) BlockID { return BlockID(a >> BlockShift) }

// BlockBase returns the first byte address of a block.
func BlockBase(b BlockID) Addr { return Addr(b) << BlockShift }

// ByteOffset returns the offset of the address within its block.
func ByteOffset(a Addr) uint { return uint(a) & (BlockBytes - 1) }

// Kind classifies an instruction.
type Kind uint8

// Instruction kinds. The non-branch kinds matter only for the backend timing
// model (loads/stores access the data hierarchy); the branch kinds drive the
// entire frontend.
const (
	KindALU Kind = iota
	KindLoad
	KindStore
	KindCondBranch // conditional direct branch
	KindJump       // unconditional direct jump
	KindCall       // direct call (pushes return address)
	KindReturn     // return (target from return-address stack)
	KindIndirect   // indirect unconditional jump/call target from register
	numKinds
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case KindALU:
		return "alu"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindCondBranch:
		return "bcc"
	case KindJump:
		return "jmp"
	case KindCall:
		return "call"
	case KindReturn:
		return "ret"
	case KindIndirect:
		return "ijmp"
	default:
		return "?"
	}
}

// IsBranch reports whether the kind transfers control.
func (k Kind) IsBranch() bool {
	return k == KindCondBranch || k == KindJump || k == KindCall ||
		k == KindReturn || k == KindIndirect
}

// IsUnconditional reports whether the branch always redirects fetch.
func (k Kind) IsUnconditional() bool {
	return k == KindJump || k == KindCall || k == KindReturn || k == KindIndirect
}

// HasEncodedTarget reports whether the branch target is recoverable from the
// instruction bytes alone (what a pre-decoder can extract without a BTB).
func (k Kind) HasEncodedTarget() bool {
	return k == KindCondBranch || k == KindJump || k == KindCall
}

// Inst is a decoded instruction.
type Inst struct {
	PC     Addr
	Size   uint8 // bytes: 4 in fixed mode, 2..10 in variable mode
	Kind   Kind
	Target Addr // encoded target for direct branches; 0 otherwise
}

// IsBranch reports whether the instruction transfers control.
func (i Inst) IsBranch() bool { return i.Kind.IsBranch() }

// NextPC returns the fall-through address.
func (i Inst) NextPC() Addr { return i.PC + Addr(i.Size) }

// Branch is the pre-decoder's view of a branch inside a cache block.
type Branch struct {
	// Offset is the byte offset of the first byte of the branch within its
	// cache block.
	Offset uint8
	Kind   Kind
	// Target is the decoded target for direct branches, 0 for
	// return/indirect branches whose target is not in the instruction.
	Target Addr
}

// Mode selects the instruction encoding.
type Mode uint8

// Encoding modes.
const (
	// Fixed is the 4-byte fixed-length encoding (SPARC/UltraSPARC-like).
	// Instruction boundaries inside a block are known (every 4 bytes), so a
	// pre-decoder can decode all slots of a block in parallel.
	Fixed Mode = iota
	// Variable is the 2-10 byte variable-length encoding (x86-like).
	// Instruction boundaries are unknown without sequential decode, which is
	// why the paper's VL-ISA extension stores per-block branch footprints.
	Variable
)

// String names the mode.
func (m Mode) String() string {
	if m == Variable {
		return "variable"
	}
	return "fixed"
}

// MinSize returns the minimum instruction size in bytes for the mode.
func (m Mode) MinSize() int {
	if m == Variable {
		return 2
	}
	return 4
}
