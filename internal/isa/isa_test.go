package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindPredicates(t *testing.T) {
	branches := []Kind{KindCondBranch, KindJump, KindCall, KindReturn, KindIndirect}
	for _, k := range branches {
		if !k.IsBranch() {
			t.Errorf("%v: IsBranch = false, want true", k)
		}
	}
	for _, k := range []Kind{KindALU, KindLoad, KindStore} {
		if k.IsBranch() {
			t.Errorf("%v: IsBranch = true, want false", k)
		}
		if k.IsUnconditional() {
			t.Errorf("%v: IsUnconditional = true, want false", k)
		}
	}
	if KindCondBranch.IsUnconditional() {
		t.Error("conditional branch reported unconditional")
	}
	for _, k := range []Kind{KindJump, KindCall, KindReturn, KindIndirect} {
		if !k.IsUnconditional() {
			t.Errorf("%v: IsUnconditional = false, want true", k)
		}
	}
	for _, k := range []Kind{KindCondBranch, KindJump, KindCall} {
		if !k.HasEncodedTarget() {
			t.Errorf("%v: HasEncodedTarget = false, want true", k)
		}
	}
	for _, k := range []Kind{KindReturn, KindIndirect, KindALU} {
		if k.HasEncodedTarget() {
			t.Errorf("%v: HasEncodedTarget = true, want false", k)
		}
	}
}

func TestBlockGeometry(t *testing.T) {
	if BlockOf(0) != 0 || BlockOf(63) != 0 || BlockOf(64) != 1 {
		t.Fatal("BlockOf miscomputed")
	}
	if BlockBase(3) != 192 {
		t.Fatalf("BlockBase(3) = %d, want 192", BlockBase(3))
	}
	if ByteOffset(0x1234) != 0x34&63 {
		t.Fatalf("ByteOffset wrong: %d", ByteOffset(0x1234))
	}
}

func TestFixedRoundTrip(t *testing.T) {
	cases := []Inst{
		{PC: 0x1000, Size: 4, Kind: KindALU},
		{PC: 0x1000, Size: 4, Kind: KindLoad},
		{PC: 0x1000, Size: 4, Kind: KindCondBranch, Target: 0x1040},
		{PC: 0x1000, Size: 4, Kind: KindCondBranch, Target: 0x0F00},
		{PC: 0x2000, Size: 4, Kind: KindJump, Target: 0x400000},
		{PC: 0x2000, Size: 4, Kind: KindCall, Target: 0x8},
		{PC: 0x2000, Size: 4, Kind: KindReturn},
		{PC: 0x2000, Size: 4, Kind: KindIndirect},
	}
	for _, in := range cases {
		buf := AppendInst(nil, Fixed, in)
		if len(buf) != FixedSize {
			t.Fatalf("%v: encoded %d bytes, want %d", in, len(buf), FixedSize)
		}
		out, ok := decode(Fixed, in.PC, buf)
		if !ok {
			t.Fatalf("%v: decode failed", in)
		}
		want := in
		if !want.Kind.HasEncodedTarget() {
			want.Target = 0
		}
		if out != want {
			t.Errorf("round trip: got %+v, want %+v", out, want)
		}
	}
}

func TestVariableRoundTrip(t *testing.T) {
	cases := []Inst{
		{PC: 0x1000, Size: 2, Kind: KindALU},
		{PC: 0x1000, Size: 10, Kind: KindStore},
		{PC: 0x1000, Size: 6, Kind: KindCondBranch, Target: 0x1100},
		{PC: 0x1000, Size: 8, Kind: KindCondBranch, Target: 0xF00},
		{PC: 0x5000, Size: 7, Kind: KindJump, Target: 0x9000},
		{PC: 0x5000, Size: 6, Kind: KindCall, Target: 0x100},
		{PC: 0x5000, Size: 2, Kind: KindReturn},
		{PC: 0x5000, Size: 3, Kind: KindIndirect},
	}
	for _, in := range cases {
		buf := AppendInst(nil, Variable, in)
		if len(buf) != int(in.Size) {
			t.Fatalf("%v: encoded %d bytes, want %d", in, len(buf), in.Size)
		}
		out, ok := decode(Variable, in.PC, buf)
		if !ok {
			t.Fatalf("%v: decode failed", in)
		}
		want := in
		if !want.Kind.HasEncodedTarget() {
			want.Target = 0
		}
		if out != want {
			t.Errorf("round trip: got %+v, want %+v", out, want)
		}
	}
}

func TestEncodedSizeOK(t *testing.T) {
	if EncodedSizeOK(Fixed, KindALU, 2) || !EncodedSizeOK(Fixed, KindALU, 4) {
		t.Error("fixed size rules wrong")
	}
	if EncodedSizeOK(Variable, KindCondBranch, 4) {
		t.Error("variable branch of size 4 must be illegal (needs 6+)")
	}
	if !EncodedSizeOK(Variable, KindCondBranch, 6) {
		t.Error("variable branch of size 6 must be legal")
	}
	if EncodedSizeOK(Variable, KindALU, 1) || EncodedSizeOK(Variable, KindALU, 11) {
		t.Error("variable size bounds wrong")
	}
}

// quickInst generates a random legal instruction for property tests.
func quickInst(r *rand.Rand, mode Mode) Inst {
	kind := Kind(r.Intn(int(numKinds)))
	pc := Addr(r.Intn(1<<20)) + 0x10000
	var size uint8
	if mode == Fixed {
		pc &^= FixedSize - 1
		size = FixedSize
	} else {
		size = uint8(VarMinSize + r.Intn(VarMaxSize-VarMinSize+1))
		if kind.HasEncodedTarget() && size < VarBranchMinSize {
			size = VarBranchMinSize
		}
	}
	inst := Inst{PC: pc, Size: size, Kind: kind}
	if kind.HasEncodedTarget() {
		t := int64(pc) + int64(r.Intn(1<<18)) - (1 << 17)
		if t < 0 {
			t = 0
		}
		if mode == Fixed {
			t = (t / 4) * 4
		}
		inst.Target = Addr(t)
	}
	return inst
}

func TestQuickRoundTrip(t *testing.T) {
	for _, mode := range []Mode{Fixed, Variable} {
		mode := mode
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			in := quickInst(r, mode)
			buf := AppendInst(nil, mode, in)
			out, ok := decode(mode, in.PC, buf)
			if !ok {
				return false
			}
			want := in
			if !want.Kind.HasEncodedTarget() {
				want.Target = 0
			}
			return out == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%v mode: %v", mode, err)
		}
	}
}

func buildFixedImage(t *testing.T, base Addr, insts []Inst) *Image {
	t.Helper()
	var code []byte
	pc := base
	for i := range insts {
		insts[i].PC = pc
		insts[i].Size = FixedSize
		code = AppendInst(code, Fixed, insts[i])
		pc += FixedSize
	}
	return NewImage(Fixed, base, code)
}

func TestPredecodeFixedBlock(t *testing.T) {
	// One block: 16 slots, branches at slots 3, 7, 15.
	insts := make([]Inst, 16)
	for i := range insts {
		insts[i].Kind = KindALU
	}
	insts[3] = Inst{Kind: KindCondBranch, Target: 0x40}
	insts[7] = Inst{Kind: KindCall, Target: 0x80}
	insts[15] = Inst{Kind: KindReturn}
	im := buildFixedImage(t, 0x1000, insts)

	brs := PredecodeBlock(im, BlockOf(0x1000))
	if len(brs) != 3 {
		t.Fatalf("got %d branches, want 3: %+v", len(brs), brs)
	}
	wantOff := []uint8{12, 28, 60}
	wantKind := []Kind{KindCondBranch, KindCall, KindReturn}
	for i, br := range brs {
		if br.Offset != wantOff[i] || br.Kind != wantKind[i] {
			t.Errorf("branch %d: got off=%d kind=%v, want off=%d kind=%v",
				i, br.Offset, br.Kind, wantOff[i], wantKind[i])
		}
	}
	if brs[0].Target != 0x40 {
		t.Errorf("cond target = %#x, want 0x40", brs[0].Target)
	}
}

func TestPredecodeVariableReturnsNil(t *testing.T) {
	im := NewImage(Variable, 0x1000, make([]byte, 256))
	if got := PredecodeBlock(im, BlockOf(0x1000)); got != nil {
		t.Fatalf("variable-mode PredecodeBlock = %v, want nil", got)
	}
}

func TestDecodeBranchAt(t *testing.T) {
	var code []byte
	base := Addr(0x2000)
	// alu(2) alu(3) condbranch(6)@offset5 ret(2)@offset11
	seq := []Inst{
		{PC: base, Size: 2, Kind: KindALU},
		{PC: base + 2, Size: 3, Kind: KindALU},
		{PC: base + 5, Size: 6, Kind: KindCondBranch, Target: 0x2100},
		{PC: base + 11, Size: 2, Kind: KindReturn},
	}
	for _, in := range seq {
		code = AppendInst(code, Variable, in)
	}
	im := NewImage(Variable, base, code)
	b := BlockOf(base)

	br, ok := DecodeBranchAt(im, b, 5)
	if !ok || br.Kind != KindCondBranch || br.Target != 0x2100 {
		t.Fatalf("DecodeBranchAt(5) = %+v, %v", br, ok)
	}
	br, ok = DecodeBranchAt(im, b, 11)
	if !ok || br.Kind != KindReturn {
		t.Fatalf("DecodeBranchAt(11) = %+v, %v", br, ok)
	}
	// A stale offset pointing at a non-branch must report no branch.
	if _, ok := DecodeBranchAt(im, b, 0); ok {
		t.Error("DecodeBranchAt(0) found a branch in an ALU op")
	}
}

func TestDecodeStraddlingBlockBoundary(t *testing.T) {
	// Place a 6-byte branch starting 2 bytes before a block boundary.
	base := Addr(0x3000 + 62 - 8)
	var code []byte
	pcs := []Inst{
		{PC: base, Size: 8, Kind: KindALU},
		{PC: base + 8, Size: 6, Kind: KindJump, Target: 0x4000},
	}
	for _, in := range pcs {
		code = AppendInst(code, Variable, in)
	}
	im := NewImage(Variable, base, code)
	br, ok := DecodeBranchAt(im, BlockOf(base+8), uint8(ByteOffset(base+8)))
	if !ok || br.Kind != KindJump || br.Target != 0x4000 {
		t.Fatalf("straddling decode failed: %+v %v", br, ok)
	}
}

func TestImageBlockPadding(t *testing.T) {
	im := NewImage(Fixed, 0x20, []byte{1, 2, 3, 4})
	blk := im.Block(0)
	if blk == nil || len(blk) != BlockBytes {
		t.Fatalf("Block = len %d, want %d", len(blk), BlockBytes)
	}
	if blk[0x20] != 1 || blk[0x23] != 4 || blk[0] != 0 || blk[0x24] != 0 {
		t.Errorf("padding wrong: % x", blk)
	}
	if im.Block(5) != nil {
		t.Error("out-of-image block should be nil")
	}
}

func TestBFAddAndPack(t *testing.T) {
	var f BF
	f.Add(12)
	f.Add(30)
	f.Add(12) // duplicate ignored
	f.Add(45)
	f.Add(61)
	f.Add(7) // fifth distinct offset dropped
	if f.Count != 4 {
		t.Fatalf("Count = %d, want 4", f.Count)
	}
	got := UnpackBF(f.Pack())
	if got != f {
		t.Errorf("pack round trip: got %+v, want %+v", got, f)
	}
}

func TestBFPackQuick(t *testing.T) {
	f := func(raw [4]uint8, count uint8) bool {
		var bf BF
		n := int(count % (MaxBFBranches + 1))
		seen := map[uint8]bool{}
		for i := 0; i < n; i++ {
			off := raw[i] & 0x3F
			if seen[off] {
				continue
			}
			seen[off] = true
			bf.Add(off)
		}
		return UnpackBF(bf.Pack()) == bf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFootprintOfFixed(t *testing.T) {
	insts := make([]Inst, 16)
	for i := range insts {
		insts[i].Kind = KindALU
	}
	for _, slot := range []int{1, 4, 6, 9, 13, 14} {
		insts[slot] = Inst{Kind: KindCondBranch, Target: 0x40}
	}
	im := buildFixedImage(t, 0x4000, insts)
	bf, overflow := FootprintOf(im, BlockOf(0x4000), 4, nil)
	if bf.Count != 4 || overflow != 2 {
		t.Fatalf("FootprintOf: count=%d overflow=%d, want 4, 2", bf.Count, overflow)
	}
	bf, overflow = FootprintOf(im, BlockOf(0x4000), 2, nil)
	if bf.Count != 2 || overflow != 4 {
		t.Fatalf("FootprintOf cap 2: count=%d overflow=%d, want 2, 4", bf.Count, overflow)
	}
}

func TestFootprintOfVariableUsesKnownOffsets(t *testing.T) {
	base := Addr(0x5000)
	var code []byte
	seq := []Inst{
		{PC: base, Size: 4, Kind: KindALU},
		{PC: base + 4, Size: 6, Kind: KindCondBranch, Target: 0x5100},
		{PC: base + 10, Size: 2, Kind: KindALU},
		{PC: base + 12, Size: 2, Kind: KindReturn},
	}
	for _, in := range seq {
		code = AppendInst(code, Variable, in)
	}
	im := NewImage(Variable, base, code)
	// Known offsets include one stale non-branch offset (0) that must be
	// filtered out by byte validation.
	bf, overflow := FootprintOf(im, BlockOf(base), 4, []uint8{0, 4, 12})
	if overflow != 0 || bf.Count != 2 {
		t.Fatalf("bf=%+v overflow=%d, want 2 valid offsets", bf, overflow)
	}
	if bf.Off[0] != 4 || bf.Off[1] != 12 {
		t.Errorf("offsets = %v, want [4 12]", bf.Offsets())
	}
}

func TestModeHelpers(t *testing.T) {
	if Fixed.String() != "fixed" || Variable.String() != "variable" {
		t.Error("mode names wrong")
	}
	if Fixed.MinSize() != 4 || Variable.MinSize() != 2 {
		t.Error("min sizes wrong")
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindALU; k < numKinds; k++ {
		if k.String() == "?" {
			t.Errorf("kind %d has no mnemonic", k)
		}
	}
	if Kind(200).String() != "?" {
		t.Error("unknown kind must render '?'")
	}
}

func TestInstHelpers(t *testing.T) {
	i := Inst{PC: 0x100, Size: 6, Kind: KindCondBranch, Target: 0x200}
	if i.NextPC() != 0x106 || !i.IsBranch() {
		t.Errorf("helpers wrong: %+v", i)
	}
}

func TestImageBoundaries(t *testing.T) {
	im := NewImage(Fixed, 0x100, make([]byte, 128))
	if im.End() != 0x180 {
		t.Fatalf("End = %#x", im.End())
	}
	if im.Contains(0xFF) || !im.Contains(0x100) || !im.Contains(0x17F) || im.Contains(0x180) {
		t.Fatal("Contains bounds wrong")
	}
	if im.BytesAt(0x90, 8) != nil {
		t.Fatal("BytesAt outside image returned data")
	}
	if got := im.BytesAt(0x17C, 100); len(got) != 4 {
		t.Fatalf("BytesAt clipped to %d, want 4", len(got))
	}
	if !im.ContainsBlock(BlockOf(0x100)) || im.ContainsBlock(BlockOf(0x180)) {
		t.Fatal("ContainsBlock bounds wrong")
	}
	// A block straddling the image start is still contained.
	im2 := NewImage(Fixed, 0x120, make([]byte, 64))
	if !im2.ContainsBlock(BlockOf(0x100)) {
		t.Fatal("partially covered block not contained")
	}
}

func TestDecodeAtOutsideImage(t *testing.T) {
	im := NewImage(Fixed, 0x100, make([]byte, 64))
	if _, ok := im.DecodeAt(0x90); ok {
		t.Fatal("decoded outside the image")
	}
}

func TestBFOffsetsCopy(t *testing.T) {
	var f BF
	f.Add(5)
	offs := f.Offsets()
	offs[0] = 99
	if f.Off[0] != 5 {
		t.Fatal("Offsets aliased internal storage")
	}
}
