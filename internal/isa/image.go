package isa

// Image is the raw code image of a simulated program: the bytes the
// pre-decoder sees when it is handed a cache block. The workload generator
// builds an Image by encoding its basic blocks; everything downstream
// (Dis replay, BTB prefill, branch-footprint construction) decodes real
// bytes out of it.
type Image struct {
	Mode Mode
	Base Addr
	Code []byte

	// Pre-decoded branch index (Fixed mode only): the branches of the
	// image's i-th block occupy pdBranches[pdStart[i]:pdStart[i+1]], in
	// offset order. Every core's pre-decoder consults this one immutable
	// table instead of re-decoding the block's 16 slots on each probe —
	// the single hottest path of the proactive designs — and immutability
	// makes the lookup safe from concurrently ticking cores. Built once by
	// NewImage; PredecodeBlock falls back to decoding for images assembled
	// without it.
	pdStart    []int32
	pdBranches []Branch
}

// NewImage returns an image covering [base, base+len(code)).
func NewImage(mode Mode, base Addr, code []byte) *Image {
	im := &Image{Mode: mode, Base: base, Code: code}
	im.buildPredecodeIndex()
	return im
}

// buildPredecodeIndex pre-decodes every block of a Fixed-mode image into the
// shared branch index. The work is one decode pass over the image, paid once
// at construction (programs are generated once and cached).
func (im *Image) buildPredecodeIndex() {
	if im.Mode != Fixed || len(im.Code) == 0 {
		return
	}
	first := BlockOf(im.Base)
	last := BlockOf(im.End() - 1)
	n := int(last - first + 1)
	im.pdStart = make([]int32, n+1)
	for bi := 0; bi < n; bi++ {
		im.pdStart[bi] = int32(len(im.pdBranches))
		base := BlockBase(first + BlockID(bi))
		for off := 0; off < BlockBytes; off += FixedSize {
			inst, ok := im.DecodeAt(base + Addr(off))
			if !ok || !inst.Kind.IsBranch() {
				continue
			}
			im.pdBranches = append(im.pdBranches,
				Branch{Offset: uint8(off), Kind: inst.Kind, Target: inst.Target})
		}
	}
	im.pdStart[n] = int32(len(im.pdBranches))
}

// predecoded returns the indexed branches of block b, with ok=false when the
// image carries no index. The slice aliases the shared table (capped, so an
// append cannot reach neighbouring blocks); callers must treat it as
// read-only.
func (im *Image) predecoded(b BlockID) ([]Branch, bool) {
	if im.pdStart == nil {
		return nil, false
	}
	bi := int(b - BlockOf(im.Base))
	s, e := im.pdStart[bi], im.pdStart[bi+1]
	if s == e {
		return nil, true
	}
	return im.pdBranches[s:e:e], true
}

// End returns the first address past the image.
func (im *Image) End() Addr { return im.Base + Addr(len(im.Code)) }

// Contains reports whether the address lies inside the image.
func (im *Image) Contains(a Addr) bool { return a >= im.Base && a < im.End() }

// ContainsBlock reports whether any byte of the block lies inside the image.
func (im *Image) ContainsBlock(b BlockID) bool {
	base := BlockBase(b)
	return base+BlockBytes > im.Base && base < im.End()
}

// BytesAt returns up to max bytes of code starting at address a. The returned
// slice aliases the image; callers must not modify it. It returns nil when a
// is outside the image.
func (im *Image) BytesAt(a Addr, max int) []byte {
	if !im.Contains(a) {
		return nil
	}
	off := int(a - im.Base)
	end := off + max
	if end > len(im.Code) {
		end = len(im.Code)
	}
	return im.Code[off:end]
}

// Block returns the 64 bytes of the given cache block, zero-padded where the
// block extends past the image. It returns nil if no byte of the block is in
// the image.
func (im *Image) Block(b BlockID) []byte {
	if !im.ContainsBlock(b) {
		return nil
	}
	base := BlockBase(b)
	out := make([]byte, BlockBytes)
	for i := 0; i < BlockBytes; i++ {
		a := base + Addr(i)
		if im.Contains(a) {
			out[i] = im.Code[a-im.Base]
		}
	}
	return out
}

// DecodeAt decodes the instruction starting at pc. Instructions may straddle
// block boundaries in Variable mode; decoding reads across blocks.
func (im *Image) DecodeAt(pc Addr) (Inst, bool) {
	return decode(im.Mode, pc, im.BytesAt(pc, VarMaxSize))
}
