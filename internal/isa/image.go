package isa

// Image is the raw code image of a simulated program: the bytes the
// pre-decoder sees when it is handed a cache block. The workload generator
// builds an Image by encoding its basic blocks; everything downstream
// (Dis replay, BTB prefill, branch-footprint construction) decodes real
// bytes out of it.
type Image struct {
	Mode Mode
	Base Addr
	Code []byte
}

// NewImage returns an image covering [base, base+len(code)).
func NewImage(mode Mode, base Addr, code []byte) *Image {
	return &Image{Mode: mode, Base: base, Code: code}
}

// End returns the first address past the image.
func (im *Image) End() Addr { return im.Base + Addr(len(im.Code)) }

// Contains reports whether the address lies inside the image.
func (im *Image) Contains(a Addr) bool { return a >= im.Base && a < im.End() }

// ContainsBlock reports whether any byte of the block lies inside the image.
func (im *Image) ContainsBlock(b BlockID) bool {
	base := BlockBase(b)
	return base+BlockBytes > im.Base && base < im.End()
}

// BytesAt returns up to max bytes of code starting at address a. The returned
// slice aliases the image; callers must not modify it. It returns nil when a
// is outside the image.
func (im *Image) BytesAt(a Addr, max int) []byte {
	if !im.Contains(a) {
		return nil
	}
	off := int(a - im.Base)
	end := off + max
	if end > len(im.Code) {
		end = len(im.Code)
	}
	return im.Code[off:end]
}

// Block returns the 64 bytes of the given cache block, zero-padded where the
// block extends past the image. It returns nil if no byte of the block is in
// the image.
func (im *Image) Block(b BlockID) []byte {
	if !im.ContainsBlock(b) {
		return nil
	}
	base := BlockBase(b)
	out := make([]byte, BlockBytes)
	for i := 0; i < BlockBytes; i++ {
		a := base + Addr(i)
		if im.Contains(a) {
			out[i] = im.Code[a-im.Base]
		}
	}
	return out
}

// DecodeAt decodes the instruction starting at pc. Instructions may straddle
// block boundaries in Variable mode; decoding reads across blocks.
func (im *Image) DecodeAt(pc Addr) (Inst, bool) {
	return decode(im.Mode, pc, im.BytesAt(pc, VarMaxSize))
}
