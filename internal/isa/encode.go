package isa

import "fmt"

// Encoding details.
//
// Fixed mode (4 bytes, little-endian):
//
//	byte0: kind (low nibble) | 0xA0 marker (high nibble)
//	byte1..3: signed 24-bit *word* delta to the target for direct branches
//	          (target = pc + 4*delta); zero/payload otherwise
//
// Variable mode (2-10 bytes):
//
//	byte0: kind (low 3 bits) | (size-2) << 3
//	for direct branches (size >= 6):
//	  byte1..4: signed 32-bit *byte* delta to the target (target = pc+delta)
//	remaining bytes: 0x90 filler
const (
	fixedMarker = 0xA0

	// FixedSize is the instruction size in Fixed mode.
	FixedSize = 4

	// VarMinSize and VarMaxSize bound Variable-mode instruction sizes.
	VarMinSize = 2
	VarMaxSize = 10
	// VarBranchMinSize is the minimum size of a Variable-mode direct branch
	// (opcode byte + 4 target bytes + at least one filler byte).
	VarBranchMinSize = 6

	varFiller = 0x90
)

// EncodedSizeOK reports whether size is legal for the kind in the mode.
func EncodedSizeOK(mode Mode, kind Kind, size int) bool {
	if mode == Fixed {
		return size == FixedSize
	}
	if size < VarMinSize || size > VarMaxSize {
		return false
	}
	if kind.HasEncodedTarget() {
		return size >= VarBranchMinSize
	}
	return true
}

// AppendInst appends the encoding of inst to dst and returns the extended
// slice. It panics on malformed instructions; instruction streams are built
// by the workload generator, so a malformed instruction is a program bug.
func AppendInst(dst []byte, mode Mode, inst Inst) []byte {
	if !EncodedSizeOK(mode, inst.Kind, int(inst.Size)) {
		panic(fmt.Sprintf("isa: illegal size %d for %v in %v mode", inst.Size, inst.Kind, mode))
	}
	if mode == Fixed {
		var delta int32
		if inst.Kind.HasEncodedTarget() {
			d := (int64(inst.Target) - int64(inst.PC)) / FixedSize
			if d < -(1<<23) || d >= (1<<23) {
				panic(fmt.Sprintf("isa: fixed-mode branch delta %d out of range at pc %#x", d, inst.PC))
			}
			delta = int32(d)
		}
		u := uint32(delta) & 0xFFFFFF
		return append(dst,
			byte(fixedMarker|uint8(inst.Kind)),
			byte(u), byte(u>>8), byte(u>>16))
	}
	// Variable mode.
	dst = append(dst, byte(uint8(inst.Kind)|uint8(inst.Size-2)<<3))
	n := int(inst.Size) - 1
	if inst.Kind.HasEncodedTarget() {
		d := int64(inst.Target) - int64(inst.PC)
		if d < -(1<<31) || d >= (1<<31) {
			panic(fmt.Sprintf("isa: variable-mode branch delta %d out of range at pc %#x", d, inst.PC))
		}
		u := uint32(int32(d))
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
		n -= 4
	}
	for i := 0; i < n; i++ {
		dst = append(dst, varFiller)
	}
	return dst
}

// decode decodes the instruction at pc from raw code bytes. code[0] must be
// the first byte of the instruction. It returns false if the bytes cannot be
// a legal instruction (bad marker in fixed mode, truncated encoding, or an
// illegal kind/size combination).
func decode(mode Mode, pc Addr, code []byte) (Inst, bool) {
	if len(code) == 0 {
		return Inst{}, false
	}
	if mode == Fixed {
		if len(code) < FixedSize || code[0]&0xF0 != fixedMarker {
			return Inst{}, false
		}
		kind := Kind(code[0] & 0x0F)
		if kind >= numKinds {
			return Inst{}, false
		}
		inst := Inst{PC: pc, Size: FixedSize, Kind: kind}
		if kind.HasEncodedTarget() {
			u := uint32(code[1]) | uint32(code[2])<<8 | uint32(code[3])<<16
			// Sign-extend 24 bits.
			d := int32(u<<8) >> 8
			inst.Target = Addr(int64(pc) + int64(d)*FixedSize)
		}
		return inst, true
	}
	kind := Kind(code[0] & 0x07)
	size := int(code[0]>>3) + 2
	if !EncodedSizeOK(mode, kind, size) || len(code) < size {
		return Inst{}, false
	}
	inst := Inst{PC: pc, Size: uint8(size), Kind: kind}
	if kind.HasEncodedTarget() {
		u := uint32(code[1]) | uint32(code[2])<<8 | uint32(code[3])<<16 | uint32(code[4])<<24
		inst.Target = Addr(int64(pc) + int64(int32(u)))
	}
	return inst, true
}
