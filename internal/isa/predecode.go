package isa

// This file implements the pre-decoder: the hardware unit that, given the
// raw bytes of an instruction cache block, identifies the branch
// instructions inside it and extracts their targets. It is shared by the Dis
// prefetcher and the BTB prefetcher, exactly as in the paper (Section V.C).
//
// In Fixed mode every 4-byte slot is an instruction, so a block's 16 slots
// can be decoded in parallel. In Variable mode instruction boundaries are
// unknown; the pre-decoder can only decode at byte offsets supplied from the
// outside (a DisTable entry or a branch footprint), which is the paper's
// VL-ISA design (Section V.D).

// PredecodeBlock decodes all branch instructions in a block when instruction
// boundaries are architecturally known, i.e. in Fixed mode. In Variable mode
// it returns nil: a real pre-decoder cannot find boundaries in raw bytes,
// and callers must use DecodeBranchAt with externally supplied offsets.
func PredecodeBlock(im *Image, b BlockID) []Branch {
	if im.Mode != Fixed || !im.ContainsBlock(b) {
		return nil
	}
	if brs, ok := im.predecoded(b); ok {
		return brs
	}
	var out []Branch
	base := BlockBase(b)
	for off := 0; off < BlockBytes; off += FixedSize {
		pc := base + Addr(off)
		inst, ok := im.DecodeAt(pc)
		if !ok || !inst.Kind.IsBranch() {
			continue
		}
		out = append(out, Branch{Offset: uint8(off), Kind: inst.Kind, Target: inst.Target})
	}
	return out
}

// DecodeBranchAt decodes the instruction starting at the given byte offset
// within block b and reports whether it is a branch. This is the replay path
// of the Dis prefetcher: the stored offset may be stale (the table is
// partially tagged), in which case the decoded bytes are simply not a branch
// and the prefetcher does nothing.
//
// When the image carries the pre-decoded branch index and the offset is
// slot-aligned, the probe is served from the index: the branches of an
// indexed block are exactly its aligned offsets that decode to branches, so
// an index miss and a raw-bytes non-branch decode are the same answer.
// Misaligned offsets (possible only for indexless or Variable images, where
// the fallback runs anyway) keep the byte-decoding path.
func DecodeBranchAt(im *Image, b BlockID, offset uint8) (Branch, bool) {
	if im.pdStart != nil && offset%FixedSize == 0 {
		bi := int(b - BlockOf(im.Base))
		if bi < 0 || bi+1 >= len(im.pdStart) {
			return Branch{}, false // outside the image: raw decode finds no bytes
		}
		for _, br := range im.pdBranches[im.pdStart[bi]:im.pdStart[bi+1]] {
			if br.Offset == offset {
				return br, true
			}
		}
		return Branch{}, false
	}
	pc := BlockBase(b) + Addr(offset)
	inst, ok := im.DecodeAt(pc)
	if !ok || !inst.Kind.IsBranch() {
		return Branch{}, false
	}
	return Branch{Offset: offset, Kind: inst.Kind, Target: inst.Target}, true
}

// MaxBFBranches is the number of branch offsets a branch footprint holds.
// Figure 8 of the paper shows four offsets cover almost all branches of a
// block.
const MaxBFBranches = 4

// BFBits is the storage cost of one branch footprint: four 6-bit byte
// offsets (3 bytes), per Section IV of the paper.
const BFBits = MaxBFBranches * 6

// BF is a branch footprint: the byte offsets of (up to) the first four
// branch instructions of a cache block. It is the metadata virtualized in
// the LLC for variable-length ISAs.
type BF struct {
	Count uint8
	Off   [MaxBFBranches]uint8
}

// Add records a branch offset; offsets beyond MaxBFBranches are dropped
// (those branches become uncoverable, which Figure 8 quantifies).
func (f *BF) Add(offset uint8) {
	for i := 0; i < int(f.Count); i++ {
		if f.Off[i] == offset {
			return
		}
	}
	if int(f.Count) < MaxBFBranches {
		f.Off[f.Count] = offset
		f.Count++
	}
}

// Offsets returns the recorded offsets.
func (f BF) Offsets() []uint8 { return append([]uint8(nil), f.Off[:f.Count]...) }

// Pack serialises the footprint into 27 bits (4 offsets + a 3-bit count);
// the hardware budget counted in storage models is BFBits (24 bits), with
// validity carried implicitly by the BF-holder entry.
func (f BF) Pack() uint32 {
	var u uint32
	for i := 0; i < MaxBFBranches; i++ {
		u |= uint32(f.Off[i]&0x3F) << (6 * i)
	}
	return u | uint32(f.Count&0x7)<<24
}

// UnpackBF reverses Pack.
func UnpackBF(u uint32) BF {
	var f BF
	f.Count = uint8(u>>24) & 0x7
	if f.Count > MaxBFBranches {
		f.Count = MaxBFBranches
	}
	for i := 0; i < int(f.Count); i++ {
		f.Off[i] = uint8(u>>(6*i)) & 0x3F
	}
	return f
}

// FootprintOf computes the branch footprint of a block plus the number of
// branches that did not fit (the "uncovered" branches of Figure 8, measured
// with the given capacity rather than MaxBFBranches).
//
// In Fixed mode it pre-decodes the block directly. In Variable mode boundary
// knowledge must come from elsewhere, so callers pass the branch offsets
// observed at retirement via known; FootprintOf then validates them against
// the image bytes.
func FootprintOf(im *Image, b BlockID, capacity int, known []uint8) (BF, int) {
	var offsets []uint8
	if im.Mode == Fixed {
		for _, br := range PredecodeBlock(im, b) {
			offsets = append(offsets, br.Offset)
		}
	} else {
		for _, off := range known {
			if _, ok := DecodeBranchAt(im, b, off); ok {
				offsets = append(offsets, off)
			}
		}
	}
	var f BF
	overflow := 0
	for _, off := range offsets {
		if int(f.Count) < capacity && int(f.Count) < MaxBFBranches {
			f.Add(off)
		} else {
			overflow++
		}
	}
	return f, overflow
}
