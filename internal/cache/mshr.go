package cache

import (
	"fmt"
	"sort"

	"dnc/internal/blockmap"
	"dnc/internal/checkpoint"
	"dnc/internal/isa"
)

// MSHR tracks one in-flight miss.
type MSHR struct {
	Block isa.BlockID
	// IssueCycle is when the request left for the lower hierarchy.
	IssueCycle uint64
	// ReadyCycle is when the fill arrives.
	ReadyCycle uint64
	// Prefetch reports whether the request was initiated by a prefetcher
	// (and not yet merged with a demand).
	Prefetch bool
	// Demanded records whether a demand access merged into this miss while
	// it was in flight; used for partial-coverage accounting.
	Demanded bool
	// Buffered routes the fill into the design's prefetch buffer instead of
	// the L1i (Shotgun's 64-entry instruction prefetch buffer).
	Buffered bool
}

// Latency returns the full fetch latency of the request.
func (m *MSHR) Latency() uint64 { return m.ReadyCycle - m.IssueCycle }

// demandSlack bounds how far AllocDemand may push occupancy past the
// nominal capacity (it deliberately bypasses the capacity check so a
// prefetch-saturated file cannot deadlock fetch); Audit enforces it.
const demandSlack = 64

// MSHRFile is a fixed-capacity set of in-flight misses indexed by block.
// Entries live in an open-addressed table (internal/blockmap) presized for
// capacity plus the demand-reservation slack, so steady-state operation
// never allocates; the file additionally keeps a binary min-heap of
// (ReadyCycle, Block) keys so the earliest outstanding fill is a peek and
// the due entries of a cycle pop off in exactly the deterministic
// fill-application order, with no per-cycle table scan.
//
// The heap uses lazy deletion: Free leaves the key in place and EarliestReady
// discards keys whose block no longer has a live entry with that ready time.
// ReadyCycle is immutable after allocation, so a live entry's heap key is
// always exact and the heap minimum over non-stale keys is the true minimum.
type MSHRFile struct {
	cap     int
	entries blockmap.Map[MSHR]
	// highWater is the peak occupancy since the last ResetHighWater; a
	// diagnostic (not architectural state, not checkpointed).
	highWater int

	// heap holds one (ReadyCycle, Block) key per live entry, plus any
	// not-yet-discarded stale keys, ordered by (ready, block).
	heap []mshrKey

	// headKey/headOK memoize head()'s answer while headValid, so the
	// per-cycle EarliestReady/Ready peeks cost a branch instead of a hash
	// probe. Invalidated by anything that can change the minimum live key:
	// pop, freeing the head's block, Reset, Restore. push keeps it valid by
	// folding the new key in (a push can only lower the minimum).
	headKey   mshrKey
	headOK    bool
	headValid bool

	// scratch backs the slice returned by Ready, reused across calls.
	scratch []MSHR
}

// mshrKey orders the ready heap: earliest ready first, block ID breaking
// ties — the required deterministic fill order.
type mshrKey struct {
	ready uint64
	block isa.BlockID
}

func (k mshrKey) less(o mshrKey) bool {
	return k.ready < o.ready || (k.ready == o.ready && k.block < o.block)
}

// NewMSHRFile returns a file with the given capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	f := &MSHRFile{cap: capacity}
	f.entries = *blockmap.New[MSHR](capacity + demandSlack)
	f.scratch = make([]MSHR, 0, capacity+demandSlack)
	f.heap = make([]mshrKey, 0, capacity+demandSlack)
	return f
}

// push adds a key, restoring the heap order.
func (f *MSHRFile) push(k mshrKey) {
	if f.headValid && (!f.headOK || k.less(f.headKey)) {
		f.headKey, f.headOK = k, true
	}
	f.heap = append(f.heap, k)
	i := len(f.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !f.heap[i].less(f.heap[p]) {
			break
		}
		f.heap[i], f.heap[p] = f.heap[p], f.heap[i]
		i = p
	}
}

// pop removes the minimum key, restoring the heap order.
func (f *MSHRFile) pop() {
	f.headValid = false
	n := len(f.heap) - 1
	f.heap[0] = f.heap[n]
	f.heap = f.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && f.heap[l].less(f.heap[m]) {
			m = l
		}
		if r < n && f.heap[r].less(f.heap[m]) {
			m = r
		}
		if m == i {
			return
		}
		f.heap[i], f.heap[m] = f.heap[m], f.heap[i]
		i = m
	}
}

// head discards stale keys and returns the minimum live one, with ok=false
// on an empty (or all-stale) heap. A key is live while its block's entry
// still has that exact ready time; Free never re-inserts keys, so each
// stale key is discarded at most once.
func (f *MSHRFile) head() (mshrKey, bool) {
	if f.headValid {
		return f.headKey, f.headOK
	}
	for len(f.heap) > 0 {
		k := f.heap[0]
		if m := f.entries.Ptr(k.block); m != nil && m.ReadyCycle == k.ready {
			f.headKey, f.headOK, f.headValid = k, true, true
			return k, true
		}
		f.pop()
	}
	f.headKey, f.headOK, f.headValid = mshrKey{}, false, true
	return mshrKey{}, false
}

// Cap returns the capacity.
func (f *MSHRFile) Cap() int { return f.cap }

// Len returns the number of in-flight misses.
func (f *MSHRFile) Len() int { return f.entries.Len() }

// Full reports whether no further miss can be allocated.
func (f *MSHRFile) Full() bool { return f.entries.Len() >= f.cap }

// Lookup returns the in-flight entry for b, if any. The pointer is
// invalidated by the next Alloc, AllocDemand, Free, Reset, or Restore.
func (f *MSHRFile) Lookup(b isa.BlockID) (*MSHR, bool) {
	m := f.entries.Ptr(b)
	return m, m != nil
}

// noteInsert registers a new entry's ready key.
func (f *MSHRFile) noteInsert(b isa.BlockID, ready uint64) {
	if f.entries.Len() > f.highWater {
		f.highWater = f.entries.Len()
	}
	f.push(mshrKey{ready: ready, block: b})
}

// Alloc registers a new in-flight miss. It returns nil if the file is full
// or the block already has an entry (callers merge via Lookup first). The
// pointer has the same validity as Lookup's.
func (f *MSHRFile) Alloc(b isa.BlockID, issue, ready uint64, prefetch bool) *MSHR {
	if f.Full() {
		return nil
	}
	if f.entries.Contains(b) {
		return nil
	}
	m := f.entries.Put(b, MSHR{Block: b, IssueCycle: issue, ReadyCycle: ready, Prefetch: prefetch})
	f.noteInsert(b, ready)
	return m
}

// AllocDemand registers a demand miss, bypassing the capacity check: the
// fetch unit reserves a slot for the demand stream, so a prefetch-saturated
// file cannot deadlock fetch. It still returns nil for duplicates.
func (f *MSHRFile) AllocDemand(b isa.BlockID, issue, ready uint64) *MSHR {
	if f.entries.Contains(b) {
		return nil
	}
	m := f.entries.Put(b, MSHR{Block: b, IssueCycle: issue, ReadyCycle: ready})
	f.noteInsert(b, ready)
	return m
}

// HighWater returns the peak occupancy since the last ResetHighWater.
func (f *MSHRFile) HighWater() int { return f.highWater }

// ResetHighWater restarts peak-occupancy tracking (window boundary).
func (f *MSHRFile) ResetHighWater() { f.highWater = f.entries.Len() }

// Free releases the entry for b (at fill time). The heap key, if still
// present, goes stale and is discarded on a later head scan.
func (f *MSHRFile) Free(b isa.BlockID) {
	if f.headValid && f.headOK && f.headKey.block == b {
		f.headValid = false
	}
	f.entries.Delete(b)
}

// EarliestReady returns the minimum ReadyCycle over all in-flight entries
// and whether any entry exists. It is the MSHR contribution to a stalled
// core's next-wakeup time.
func (f *MSHRFile) EarliestReady() (uint64, bool) {
	if f.entries.Len() == 0 {
		return 0, false
	}
	k, ok := f.head()
	return k.ready, ok
}

// Ready returns all entries whose fill has arrived by the given cycle, in
// arrival order (ties broken by block ID). The order must not depend on
// table iteration: fill processing mutates design state, so an arbitrary
// order makes otherwise identical runs diverge. The returned entries are
// copies backed by a buffer reused on the next Ready call; callers MUST free
// each original by block after applying its fill — the due keys pop off the
// heap here, so an entry left in the table would drop out of EarliestReady.
// (A freed-then-reallocated block gets a fresh key; identical duplicate keys
// pop adjacently and collapse to one entry.)
func (f *MSHRFile) Ready(cycle uint64) []MSHR {
	k, ok := f.head()
	if !ok || k.ready > cycle {
		return nil
	}
	out := f.scratch[:0]
	last := mshrKey{ready: ^uint64(0)}
	for {
		f.pop()
		if k != last {
			out = append(out, *f.entries.Ptr(k.block))
			last = k
		}
		if k, ok = f.head(); !ok || k.ready > cycle {
			break
		}
	}
	f.scratch = out
	return out
}

// All returns every in-flight entry in (ReadyCycle, Block) order without
// disturbing the heap — the audit-path counterpart of Ready.
func (f *MSHRFile) All() []MSHR {
	out := f.scratch[:0]
	f.entries.Range(func(_ isa.BlockID, m MSHR) {
		out = append(out, m)
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		return a.ReadyCycle < b.ReadyCycle ||
			(a.ReadyCycle == b.ReadyCycle && a.Block < b.Block)
	})
	f.scratch = out
	return out
}

// Reset drops all in-flight entries.
func (f *MSHRFile) Reset() {
	f.entries.Clear()
	f.heap = f.heap[:0]
	f.headValid = false
}

// Snapshot serialises the file's capacity and every in-flight entry, in
// ascending block order so the encoding is byte-deterministic.
func (f *MSHRFile) Snapshot(e *checkpoint.Encoder) {
	e.Begin("mshr")
	e.Int(f.cap)
	blocks := f.entries.AppendKeys(make([]isa.BlockID, 0, f.entries.Len()))
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	e.Int(len(blocks))
	for _, b := range blocks {
		m := f.entries.Ptr(b)
		e.U64(uint64(m.Block))
		e.U64(m.IssueCycle)
		e.U64(m.ReadyCycle)
		e.Bool(m.Prefetch)
		e.Bool(m.Demanded)
		e.Bool(m.Buffered)
	}
	e.End()
}

// Restore loads state written by Snapshot.
func (f *MSHRFile) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("mshr"); err != nil {
		return err
	}
	cap := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if cap != f.cap {
		return fmt.Errorf("%w: MSHR capacity %d in snapshot, machine has %d",
			checkpoint.ErrCorrupt, cap, f.cap)
	}
	n := d.Count(8*3 + 3)
	f.entries.Clear()
	f.heap = f.heap[:0]
	f.headValid = false
	for i := 0; i < n; i++ {
		m := MSHR{
			Block:      isa.BlockID(d.U64()),
			IssueCycle: d.U64(),
			ReadyCycle: d.U64(),
			Prefetch:   d.Bool(),
			Demanded:   d.Bool(),
			Buffered:   d.Bool(),
		}
		if d.Err() != nil {
			break
		}
		if f.entries.Contains(m.Block) {
			return fmt.Errorf("%w: duplicate MSHR entry for block %#x",
				checkpoint.ErrCorrupt, uint64(m.Block))
		}
		f.entries.Put(m.Block, m)
		f.noteInsert(m.Block, m.ReadyCycle)
	}
	return d.End()
}

// Audit checks the file's structural invariants at a tick boundary, where
// every fill due by now has been applied and freed:
//
//   - no entry's ReadyCycle precedes its IssueCycle;
//   - no entry is overdue (ReadyCycle < cycle): an overdue entry can never
//     be freed by fill processing again, i.e. it is a leaked slot;
//   - occupancy does not exceed capacity plus the demand-reservation slack
//     (AllocDemand deliberately bypasses the capacity check, at most one
//     outstanding demand per fetch engine, so a generous fixed slack bounds
//     it without false positives);
//   - the ready heap's earliest-ready time matches the actual minimum (the
//     fast-forward wakeup must never be later than a real fill).
//
// Each violation is returned as its own error.
func (f *MSHRFile) Audit(cycle uint64) []error {
	var errs []error
	if f.entries.Len() > f.cap+demandSlack {
		errs = append(errs, fmt.Errorf("mshr: %d entries in flight exceeds capacity %d plus demand slack %d",
			f.entries.Len(), f.cap, demandSlack))
	}
	var min uint64
	haveMin := false
	for _, m := range f.All() {
		if m.ReadyCycle < m.IssueCycle {
			errs = append(errs, fmt.Errorf("mshr: block %#x ready at %d before its issue at %d",
				uint64(m.Block), m.ReadyCycle, m.IssueCycle))
		}
		if m.ReadyCycle < cycle {
			errs = append(errs, fmt.Errorf("mshr: block %#x overdue (ready %d < cycle %d): leaked entry",
				uint64(m.Block), m.ReadyCycle, cycle))
		}
		if !haveMin || m.ReadyCycle < min {
			min, haveMin = m.ReadyCycle, true
		}
	}
	if got, ok := f.EarliestReady(); ok != haveMin || (ok && got != min) {
		errs = append(errs, fmt.Errorf("mshr: heap earliest ready (%d, %v) disagrees with scan (%d, %v)",
			got, ok, min, haveMin))
	}
	return errs
}
