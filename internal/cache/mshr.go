package cache

import (
	"fmt"
	"sort"

	"dnc/internal/checkpoint"
	"dnc/internal/isa"
)

// MSHR tracks one in-flight miss.
type MSHR struct {
	Block isa.BlockID
	// IssueCycle is when the request left for the lower hierarchy.
	IssueCycle uint64
	// ReadyCycle is when the fill arrives.
	ReadyCycle uint64
	// Prefetch reports whether the request was initiated by a prefetcher
	// (and not yet merged with a demand).
	Prefetch bool
	// Demanded records whether a demand access merged into this miss while
	// it was in flight; used for partial-coverage accounting.
	Demanded bool
	// Buffered routes the fill into the design's prefetch buffer instead of
	// the L1i (Shotgun's 64-entry instruction prefetch buffer).
	Buffered bool
}

// Latency returns the full fetch latency of the request.
func (m *MSHR) Latency() uint64 { return m.ReadyCycle - m.IssueCycle }

// MSHRFile is a fixed-capacity set of in-flight misses indexed by block.
type MSHRFile struct {
	cap     int
	entries map[isa.BlockID]*MSHR
	// highWater is the peak occupancy since the last ResetHighWater; a
	// diagnostic (not architectural state, not checkpointed).
	highWater int
}

// NewMSHRFile returns a file with the given capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	return &MSHRFile{cap: capacity, entries: make(map[isa.BlockID]*MSHR, capacity)}
}

// Cap returns the capacity.
func (f *MSHRFile) Cap() int { return f.cap }

// Len returns the number of in-flight misses.
func (f *MSHRFile) Len() int { return len(f.entries) }

// Full reports whether no further miss can be allocated.
func (f *MSHRFile) Full() bool { return len(f.entries) >= f.cap }

// Lookup returns the in-flight entry for b, if any.
func (f *MSHRFile) Lookup(b isa.BlockID) (*MSHR, bool) {
	m, ok := f.entries[b]
	return m, ok
}

// Alloc registers a new in-flight miss. It returns nil if the file is full
// or the block already has an entry (callers merge via Lookup first).
func (f *MSHRFile) Alloc(b isa.BlockID, issue, ready uint64, prefetch bool) *MSHR {
	if f.Full() {
		return nil
	}
	if _, ok := f.entries[b]; ok {
		return nil
	}
	m := &MSHR{Block: b, IssueCycle: issue, ReadyCycle: ready, Prefetch: prefetch}
	f.entries[b] = m
	if len(f.entries) > f.highWater {
		f.highWater = len(f.entries)
	}
	return m
}

// AllocDemand registers a demand miss, bypassing the capacity check: the
// fetch unit reserves a slot for the demand stream, so a prefetch-saturated
// file cannot deadlock fetch. It still returns nil for duplicates.
func (f *MSHRFile) AllocDemand(b isa.BlockID, issue, ready uint64) *MSHR {
	if _, ok := f.entries[b]; ok {
		return nil
	}
	m := &MSHR{Block: b, IssueCycle: issue, ReadyCycle: ready}
	f.entries[b] = m
	if len(f.entries) > f.highWater {
		f.highWater = len(f.entries)
	}
	return m
}

// HighWater returns the peak occupancy since the last ResetHighWater.
func (f *MSHRFile) HighWater() int { return f.highWater }

// ResetHighWater restarts peak-occupancy tracking (window boundary).
func (f *MSHRFile) ResetHighWater() { f.highWater = len(f.entries) }

// Free releases the entry for b (at fill time).
func (f *MSHRFile) Free(b isa.BlockID) { delete(f.entries, b) }

// Ready returns all entries whose fill has arrived by the given cycle, in
// arrival order (ties broken by block ID). The order must not depend on map
// iteration: fill processing mutates design state, so an arbitrary order
// makes otherwise identical runs diverge. Callers free the entries after
// applying the fill.
func (f *MSHRFile) Ready(cycle uint64) []*MSHR {
	var out []*MSHR
	for _, m := range f.entries {
		if m.ReadyCycle <= cycle {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ReadyCycle != out[j].ReadyCycle {
			return out[i].ReadyCycle < out[j].ReadyCycle
		}
		return out[i].Block < out[j].Block
	})
	return out
}

// Reset drops all in-flight entries.
func (f *MSHRFile) Reset() { clear(f.entries) }

// Snapshot serialises the file's capacity and every in-flight entry, in
// ascending block order so the encoding is byte-deterministic.
func (f *MSHRFile) Snapshot(e *checkpoint.Encoder) {
	e.Begin("mshr")
	e.Int(f.cap)
	blocks := make([]isa.BlockID, 0, len(f.entries))
	for b := range f.entries {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	e.Int(len(blocks))
	for _, b := range blocks {
		m := f.entries[b]
		e.U64(uint64(m.Block))
		e.U64(m.IssueCycle)
		e.U64(m.ReadyCycle)
		e.Bool(m.Prefetch)
		e.Bool(m.Demanded)
		e.Bool(m.Buffered)
	}
	e.End()
}

// Restore loads state written by Snapshot.
func (f *MSHRFile) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("mshr"); err != nil {
		return err
	}
	cap := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if cap != f.cap {
		return fmt.Errorf("%w: MSHR capacity %d in snapshot, machine has %d",
			checkpoint.ErrCorrupt, cap, f.cap)
	}
	n := d.Count(8*3 + 3)
	clear(f.entries)
	for i := 0; i < n; i++ {
		m := &MSHR{
			Block:      isa.BlockID(d.U64()),
			IssueCycle: d.U64(),
			ReadyCycle: d.U64(),
			Prefetch:   d.Bool(),
			Demanded:   d.Bool(),
			Buffered:   d.Bool(),
		}
		if d.Err() != nil {
			break
		}
		if _, dup := f.entries[m.Block]; dup {
			return fmt.Errorf("%w: duplicate MSHR entry for block %#x",
				checkpoint.ErrCorrupt, uint64(m.Block))
		}
		f.entries[m.Block] = m
	}
	return d.End()
}

// Audit checks the file's structural invariants at a tick boundary, where
// every fill due by now has been applied and freed:
//
//   - no entry's ReadyCycle precedes its IssueCycle;
//   - no entry is overdue (ReadyCycle < cycle): an overdue entry can never
//     be freed by fill processing again, i.e. it is a leaked slot;
//   - occupancy does not exceed capacity plus the demand-reservation slack
//     (AllocDemand deliberately bypasses the capacity check, at most one
//     outstanding demand per fetch engine, so a generous fixed slack bounds
//     it without false positives).
//
// Each violation is returned as its own error.
func (f *MSHRFile) Audit(cycle uint64) []error {
	var errs []error
	const demandSlack = 64
	if len(f.entries) > f.cap+demandSlack {
		errs = append(errs, fmt.Errorf("mshr: %d entries in flight exceeds capacity %d plus demand slack %d",
			len(f.entries), f.cap, demandSlack))
	}
	for _, m := range f.Ready(^uint64(0)) { // all entries, deterministic order
		if m.ReadyCycle < m.IssueCycle {
			errs = append(errs, fmt.Errorf("mshr: block %#x ready at %d before its issue at %d",
				uint64(m.Block), m.ReadyCycle, m.IssueCycle))
		}
		if m.ReadyCycle < cycle {
			errs = append(errs, fmt.Errorf("mshr: block %#x overdue (ready %d < cycle %d): leaked entry",
				uint64(m.Block), m.ReadyCycle, cycle))
		}
	}
	return errs
}
