package cache

import (
	"fmt"
	"slices"
	"sort"

	"dnc/internal/blockmap"
	"dnc/internal/checkpoint"
	"dnc/internal/isa"
)

// MSHR tracks one in-flight miss.
type MSHR struct {
	Block isa.BlockID
	// IssueCycle is when the request left for the lower hierarchy.
	IssueCycle uint64
	// ReadyCycle is when the fill arrives.
	ReadyCycle uint64
	// Prefetch reports whether the request was initiated by a prefetcher
	// (and not yet merged with a demand).
	Prefetch bool
	// Demanded records whether a demand access merged into this miss while
	// it was in flight; used for partial-coverage accounting.
	Demanded bool
	// Buffered routes the fill into the design's prefetch buffer instead of
	// the L1i (Shotgun's 64-entry instruction prefetch buffer).
	Buffered bool
}

// Latency returns the full fetch latency of the request.
func (m *MSHR) Latency() uint64 { return m.ReadyCycle - m.IssueCycle }

// demandSlack bounds how far AllocDemand may push occupancy past the
// nominal capacity (it deliberately bypasses the capacity check so a
// prefetch-saturated file cannot deadlock fetch); Audit enforces it.
const demandSlack = 64

// MSHRFile is a fixed-capacity set of in-flight misses indexed by block.
// Entries live in an open-addressed table (internal/blockmap) presized for
// capacity plus the demand-reservation slack, so steady-state operation
// never allocates; the file additionally tracks the earliest outstanding
// ReadyCycle so fill processing is O(1) on the (common) cycles where no
// fill is due, and so the engine can fast-forward an idle core directly to
// its next wakeup.
type MSHRFile struct {
	cap     int
	entries blockmap.Map[MSHR]
	// highWater is the peak occupancy since the last ResetHighWater; a
	// diagnostic (not architectural state, not checkpointed).
	highWater int

	// earliest caches the minimum ReadyCycle over all entries; eDirty marks
	// it stale (set when the minimum is freed, recomputed lazily).
	earliest uint64
	eDirty   bool

	// scratch backs the slice returned by Ready, reused across calls.
	scratch []MSHR
}

// NewMSHRFile returns a file with the given capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	f := &MSHRFile{cap: capacity}
	f.entries = *blockmap.New[MSHR](capacity + demandSlack)
	f.scratch = make([]MSHR, 0, capacity+demandSlack)
	return f
}

// Cap returns the capacity.
func (f *MSHRFile) Cap() int { return f.cap }

// Len returns the number of in-flight misses.
func (f *MSHRFile) Len() int { return f.entries.Len() }

// Full reports whether no further miss can be allocated.
func (f *MSHRFile) Full() bool { return f.entries.Len() >= f.cap }

// Lookup returns the in-flight entry for b, if any. The pointer is
// invalidated by the next Alloc, AllocDemand, Free, Reset, or Restore.
func (f *MSHRFile) Lookup(b isa.BlockID) (*MSHR, bool) {
	m := f.entries.Ptr(b)
	return m, m != nil
}

// noteInsert folds a new entry's ready time into the cached minimum.
func (f *MSHRFile) noteInsert(ready uint64) {
	if f.entries.Len() > f.highWater {
		f.highWater = f.entries.Len()
	}
	if f.eDirty {
		return // recomputation will see the new entry
	}
	if f.entries.Len() == 1 || ready < f.earliest {
		f.earliest = ready
	}
}

// Alloc registers a new in-flight miss. It returns nil if the file is full
// or the block already has an entry (callers merge via Lookup first). The
// pointer has the same validity as Lookup's.
func (f *MSHRFile) Alloc(b isa.BlockID, issue, ready uint64, prefetch bool) *MSHR {
	if f.Full() {
		return nil
	}
	if f.entries.Contains(b) {
		return nil
	}
	m := f.entries.Put(b, MSHR{Block: b, IssueCycle: issue, ReadyCycle: ready, Prefetch: prefetch})
	f.noteInsert(ready)
	return m
}

// AllocDemand registers a demand miss, bypassing the capacity check: the
// fetch unit reserves a slot for the demand stream, so a prefetch-saturated
// file cannot deadlock fetch. It still returns nil for duplicates.
func (f *MSHRFile) AllocDemand(b isa.BlockID, issue, ready uint64) *MSHR {
	if f.entries.Contains(b) {
		return nil
	}
	m := f.entries.Put(b, MSHR{Block: b, IssueCycle: issue, ReadyCycle: ready})
	f.noteInsert(ready)
	return m
}

// HighWater returns the peak occupancy since the last ResetHighWater.
func (f *MSHRFile) HighWater() int { return f.highWater }

// ResetHighWater restarts peak-occupancy tracking (window boundary).
func (f *MSHRFile) ResetHighWater() { f.highWater = f.entries.Len() }

// Free releases the entry for b (at fill time).
func (f *MSHRFile) Free(b isa.BlockID) {
	m := f.entries.Ptr(b)
	if m == nil {
		return
	}
	if !f.eDirty && m.ReadyCycle == f.earliest {
		f.eDirty = true
	}
	f.entries.Delete(b)
}

// EarliestReady returns the minimum ReadyCycle over all in-flight entries
// and whether any entry exists. It is the MSHR contribution to a stalled
// core's next-wakeup time.
func (f *MSHRFile) EarliestReady() (uint64, bool) {
	if f.entries.Len() == 0 {
		return 0, false
	}
	if f.eDirty {
		first := true
		f.entries.Range(func(_ isa.BlockID, m MSHR) {
			if first || m.ReadyCycle < f.earliest {
				f.earliest = m.ReadyCycle
				first = false
			}
		})
		f.eDirty = false
	}
	return f.earliest, true
}

// Ready returns all entries whose fill has arrived by the given cycle, in
// arrival order (ties broken by block ID). The order must not depend on
// table iteration: fill processing mutates design state, so an arbitrary
// order makes otherwise identical runs diverge. The returned entries are
// copies backed by a buffer reused on the next Ready call; callers free the
// originals by block after applying each fill.
func (f *MSHRFile) Ready(cycle uint64) []MSHR {
	if e, ok := f.EarliestReady(); !ok || e > cycle {
		return nil
	}
	out := f.scratch[:0]
	f.entries.Range(func(_ isa.BlockID, m MSHR) {
		if m.ReadyCycle <= cycle {
			out = append(out, m)
		}
	})
	slices.SortFunc(out, func(a, b MSHR) int {
		if a.ReadyCycle != b.ReadyCycle {
			if a.ReadyCycle < b.ReadyCycle {
				return -1
			}
			return 1
		}
		if a.Block < b.Block {
			return -1
		}
		if a.Block > b.Block {
			return 1
		}
		return 0
	})
	f.scratch = out
	return out
}

// Reset drops all in-flight entries.
func (f *MSHRFile) Reset() {
	f.entries.Clear()
	f.eDirty = false
}

// Snapshot serialises the file's capacity and every in-flight entry, in
// ascending block order so the encoding is byte-deterministic.
func (f *MSHRFile) Snapshot(e *checkpoint.Encoder) {
	e.Begin("mshr")
	e.Int(f.cap)
	blocks := f.entries.AppendKeys(make([]isa.BlockID, 0, f.entries.Len()))
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	e.Int(len(blocks))
	for _, b := range blocks {
		m := f.entries.Ptr(b)
		e.U64(uint64(m.Block))
		e.U64(m.IssueCycle)
		e.U64(m.ReadyCycle)
		e.Bool(m.Prefetch)
		e.Bool(m.Demanded)
		e.Bool(m.Buffered)
	}
	e.End()
}

// Restore loads state written by Snapshot.
func (f *MSHRFile) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("mshr"); err != nil {
		return err
	}
	cap := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if cap != f.cap {
		return fmt.Errorf("%w: MSHR capacity %d in snapshot, machine has %d",
			checkpoint.ErrCorrupt, cap, f.cap)
	}
	n := d.Count(8*3 + 3)
	f.entries.Clear()
	f.eDirty = false
	for i := 0; i < n; i++ {
		m := MSHR{
			Block:      isa.BlockID(d.U64()),
			IssueCycle: d.U64(),
			ReadyCycle: d.U64(),
			Prefetch:   d.Bool(),
			Demanded:   d.Bool(),
			Buffered:   d.Bool(),
		}
		if d.Err() != nil {
			break
		}
		if f.entries.Contains(m.Block) {
			return fmt.Errorf("%w: duplicate MSHR entry for block %#x",
				checkpoint.ErrCorrupt, uint64(m.Block))
		}
		f.entries.Put(m.Block, m)
		f.noteInsert(m.ReadyCycle)
	}
	return d.End()
}

// Audit checks the file's structural invariants at a tick boundary, where
// every fill due by now has been applied and freed:
//
//   - no entry's ReadyCycle precedes its IssueCycle;
//   - no entry is overdue (ReadyCycle < cycle): an overdue entry can never
//     be freed by fill processing again, i.e. it is a leaked slot;
//   - occupancy does not exceed capacity plus the demand-reservation slack
//     (AllocDemand deliberately bypasses the capacity check, at most one
//     outstanding demand per fetch engine, so a generous fixed slack bounds
//     it without false positives);
//   - the cached earliest-ready time matches the actual minimum (the
//     fast-forward wakeup must never be later than a real fill).
//
// Each violation is returned as its own error.
func (f *MSHRFile) Audit(cycle uint64) []error {
	var errs []error
	if f.entries.Len() > f.cap+demandSlack {
		errs = append(errs, fmt.Errorf("mshr: %d entries in flight exceeds capacity %d plus demand slack %d",
			f.entries.Len(), f.cap, demandSlack))
	}
	var min uint64
	haveMin := false
	for _, m := range f.Ready(^uint64(0)) { // all entries, deterministic order
		if m.ReadyCycle < m.IssueCycle {
			errs = append(errs, fmt.Errorf("mshr: block %#x ready at %d before its issue at %d",
				uint64(m.Block), m.ReadyCycle, m.IssueCycle))
		}
		if m.ReadyCycle < cycle {
			errs = append(errs, fmt.Errorf("mshr: block %#x overdue (ready %d < cycle %d): leaked entry",
				uint64(m.Block), m.ReadyCycle, cycle))
		}
		if !haveMin || m.ReadyCycle < min {
			min, haveMin = m.ReadyCycle, true
		}
	}
	if got, ok := f.EarliestReady(); ok != haveMin || (ok && got != min) {
		errs = append(errs, fmt.Errorf("mshr: cached earliest ready (%d, %v) disagrees with scan (%d, %v)",
			got, ok, min, haveMin))
	}
	return errs
}
