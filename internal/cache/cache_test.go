package cache

import (
	"testing"
	"testing/quick"

	"dnc/internal/isa"
)

func TestGeometry(t *testing.T) {
	c := New(32<<10, 8)
	if c.Sets() != 64 || c.Ways() != 8 || c.SizeBytes() != 32<<10 {
		t.Fatalf("geometry: sets=%d ways=%d size=%d", c.Sets(), c.Ways(), c.SizeBytes())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two sets")
		}
	}()
	New(3*64*8, 8) // 3 sets
}

func TestHitMissEvict(t *testing.T) {
	c := New(2*64*2, 2) // 2 sets, 2 ways
	if c.Access(0) != nil {
		t.Fatal("hit in empty cache")
	}
	c.Insert(0) // set 0
	c.Insert(2) // set 0
	if c.Access(0) == nil || c.Access(2) == nil {
		t.Fatal("expected hits")
	}
	// Set 0 is full; inserting block 4 must evict LRU (block 0 was accessed
	// before block 2, so 0 is LRU... after Access(0) then Access(2), LRU is 0).
	_, ev, evicted := c.Insert(4)
	if !evicted || ev.Block != 0 {
		t.Fatalf("evicted %+v (%v), want block 0", ev, evicted)
	}
	if c.Contains(0) {
		t.Fatal("block 0 still resident after eviction")
	}
	if !c.Contains(2) || !c.Contains(4) {
		t.Fatal("resident blocks missing")
	}
}

func TestLRUOrder(t *testing.T) {
	c := New(1*64*4, 4) // 1 set, 4 ways
	for b := isa.BlockID(0); b < 4; b++ {
		c.Insert(b)
	}
	c.Access(0) // 0 becomes MRU; LRU is now 1
	_, ev, evicted := c.Insert(10)
	if !evicted || ev.Block != 1 {
		t.Fatalf("evicted %+v (%v), want block 1", ev, evicted)
	}
}

func TestInsertResidentIsTouch(t *testing.T) {
	c := New(1*64*2, 2)
	c.Insert(0)
	c.Insert(1)
	l, ev, evicted := c.Insert(0) // refill of resident block
	if evicted {
		t.Fatalf("refill evicted %+v", ev)
	}
	if l.Block() != 0 {
		t.Fatalf("line holds %d", l.Block())
	}
	// 0 is MRU now, so inserting 2 evicts 1.
	_, ev, evicted = c.Insert(2)
	if !evicted || ev.Block != 1 {
		t.Fatalf("evicted %+v (%v), want block 1", ev, evicted)
	}
}

func TestLineMetadata(t *testing.T) {
	c := New(64*4, 4)
	l, _, _ := c.Insert(7)
	l.Flags |= FlagPrefetched
	l.Aux = 0xB
	got := c.Line(7)
	if got == nil || got.Flags&FlagPrefetched == 0 || got.Aux != 0xB {
		t.Fatalf("metadata lost: %+v", got)
	}
	// Eviction carries metadata out.
	c.Insert(7 + 0) // touch; fill the set so 7 becomes LRU
	for b := isa.BlockID(100); b < 103; b++ {
		c.Insert(b * isa.BlockID(c.Sets())) // same set 0? ensure same set
	}
	// Instead, test metadata via direct eviction on a 1-way cache.
	c1 := New(64, 1)
	l1, _, _ := c1.Insert(5)
	l1.Flags = FlagPrefetched
	l1.Aux = 3
	_, ev, evicted := c1.Insert(6)
	if !evicted || ev.Block != 5 || ev.Flags != FlagPrefetched || ev.Aux != 3 {
		t.Fatalf("evicted metadata wrong: %+v (%v)", ev, evicted)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(64*2, 2)
	c.Insert(3)
	if !c.Invalidate(3) || c.Contains(3) {
		t.Fatal("invalidate failed")
	}
	if c.Invalidate(3) {
		t.Fatal("double invalidate reported true")
	}
}

func TestContainsDoesNotTouchLRU(t *testing.T) {
	c := New(1*64*2, 2)
	c.Insert(0)
	c.Insert(1) // LRU: 0
	c.Contains(0)
	_, ev, evicted := c.Insert(2)
	if !evicted || ev.Block != 0 {
		t.Fatalf("Contains disturbed LRU: evicted %+v (%v), want 0", ev, evicted)
	}
}

// Property: the cache never holds more distinct blocks than its capacity,
// and a just-inserted block is always resident.
func TestQuickCapacityInvariant(t *testing.T) {
	f := func(blocks []uint16) bool {
		c := New(4*64*2, 2) // 8 lines
		for _, raw := range blocks {
			b := isa.BlockID(raw)
			c.Insert(b)
			if !c.Contains(b) {
				return false
			}
		}
		count := 0
		for b := isa.BlockID(0); b < 1<<16; b++ {
			if c.Contains(b) {
				count++
			}
		}
		return count <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMSHRFile(t *testing.T) {
	f := NewMSHRFile(2)
	m := f.Alloc(1, 10, 50, true)
	if m == nil || f.Len() != 1 {
		t.Fatal("alloc failed")
	}
	if m.Latency() != 40 {
		t.Fatalf("latency = %d", m.Latency())
	}
	if f.Alloc(1, 11, 51, false) != nil {
		t.Fatal("duplicate alloc succeeded")
	}
	if f.Alloc(2, 10, 60, false) == nil {
		t.Fatal("second alloc failed")
	}
	if !f.Full() || f.Alloc(3, 10, 60, false) != nil {
		t.Fatal("capacity not enforced")
	}
	got, ok := f.Lookup(1)
	if !ok || got != m {
		t.Fatal("lookup failed")
	}
	ready := f.Ready(55)
	if len(ready) != 1 || ready[0].Block != 1 {
		t.Fatalf("Ready(55) = %+v", ready)
	}
	f.Free(1)
	if f.Len() != 1 || f.Full() {
		t.Fatal("free failed")
	}
	f.Reset()
	if f.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestReset(t *testing.T) {
	c := New(64*4, 4)
	l, _, _ := c.Insert(9)
	l.Flags = FlagInstruction
	c.Reset()
	if c.Contains(9) {
		t.Fatal("reset left contents")
	}
	if c.Access(9) != nil {
		t.Fatal("access after reset hit")
	}
}

func TestLineBlock(t *testing.T) {
	c := New(64*2, 2)
	l, _, _ := c.Insert(77)
	if l.Block() != 77 {
		t.Fatalf("Block() = %d", l.Block())
	}
}

func TestMSHRAllocDemandBypassesCapacity(t *testing.T) {
	f := NewMSHRFile(1)
	if f.Alloc(1, 0, 10, true) == nil {
		t.Fatal("first alloc failed")
	}
	if !f.Full() {
		t.Fatal("file should be full")
	}
	// Demands reserve their own slot.
	m := f.AllocDemand(2, 0, 10)
	if m == nil || m.Prefetch {
		t.Fatalf("demand alloc failed: %+v", m)
	}
	// Duplicates still refused.
	if f.AllocDemand(2, 1, 11) != nil {
		t.Fatal("duplicate demand alloc accepted")
	}
}
