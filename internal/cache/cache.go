// Package cache implements the set-associative caches of the memory
// hierarchy: a generic LRU cache with per-line metadata hooks (prefetch
// flags, SN4L's 4-bit local prefetch status) and a miss-status holding
// register (MSHR) file that merges demand requests into in-flight prefetches
// — the mechanism behind partially covered miss latency (the paper's CMAL
// and FSCR metrics).
package cache

import (
	"fmt"

	"dnc/internal/checkpoint"
	"dnc/internal/isa"
)

// Line flag bits.
const (
	// FlagPrefetched marks a line brought in by a prefetcher and not yet
	// demanded (the paper's 1-bit isPrefetch flag).
	FlagPrefetched uint8 = 1 << iota
	// FlagInstruction marks instruction lines (used by DV-LLC's
	// isInstruction OR).
	FlagInstruction
)

// Line is the client-visible state of one resident cache line.
type Line struct {
	tag   isa.BlockID
	valid bool
	lru   uint64
	// Flags holds Flag* bits.
	Flags uint8
	// Aux is free per-line metadata; SN4L stores its 4-bit local prefetch
	// status here.
	Aux uint8
}

// Block returns the block resident in the line.
func (l *Line) Block() isa.BlockID { return l.tag }

// Evicted describes a victim line returned by Insert.
type Evicted struct {
	Block isa.BlockID
	Flags uint8
	Aux   uint8
}

// Cache is a set-associative LRU cache operating on 64-byte block IDs.
//
// Residency tags and recency clocks live in packed side arrays (one word
// per way each) separate from the Line metadata: a find scans contiguous
// words instead of striding across 32-byte Line records, and Insert's
// victim selection is one more contiguous scan (invalid ways carry recency
// 0, so the leftmost minimum is the first-invalid-else-LRU way). Both
// mirrors are derived state, maintained by every line write and rebuilt by
// Restore.
type Cache struct {
	sets  int
	ways  int
	lines []Line
	tags  []uint64 // tagKey(block) per line; 0 = invalid
	lrus  []uint64 // recency clock per line; 0 = invalid (clock starts at 1)
	hints []uint8  // last way find/Access hit per set — a guess, verified on use
	clock uint64
}

// tagKey packs a block and an always-set valid bit into one comparable word,
// so find is a single equality test per way and an invalid slot (0) can
// never match a probe.
func tagKey(b isa.BlockID) uint64 { return uint64(b)<<1 | 1 }

// New returns a cache of the given total size and associativity. Size must
// be a multiple of ways*64 and the resulting set count a power of two.
func New(sizeBytes, ways int) *Cache {
	if sizeBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache: bad geometry size=%d ways=%d", sizeBytes, ways))
	}
	blocks := sizeBytes / isa.BlockBytes
	sets := blocks / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two (size=%d ways=%d)",
			sets, sizeBytes, ways))
	}
	return &Cache{sets: sets, ways: ways, lines: make([]Line, sets*ways),
		tags: make([]uint64, sets*ways), lrus: make([]uint64, sets*ways),
		hints: make([]uint8, sets)}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the capacity in bytes.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * isa.BlockBytes }

func (c *Cache) setOf(b isa.BlockID) int { return int(uint64(b) & uint64(c.sets-1)) }

// findIdx returns the line index holding b, or -1. The per-set MRU hint
// short-circuits the way scan for re-probes of a recently found block; a
// hint is only a guess, verified against the tag mirror, so a stale one
// costs a scan but can never misidentify a line.
func (c *Cache) findIdx(b isa.BlockID) int {
	si := c.setOf(b)
	s := si * c.ways
	key := tagKey(b)
	if h := int(c.hints[si]); h < c.ways && c.tags[s+h] == key {
		return s + h
	}
	for i, t := range c.tags[s : s+c.ways] {
		if t == key {
			c.hints[si] = uint8(i)
			return s + i
		}
	}
	return -1
}

// find returns the line holding b, or nil.
func (c *Cache) find(b isa.BlockID) *Line {
	if i := c.findIdx(b); i >= 0 {
		return &c.lines[i]
	}
	return nil
}

// Contains reports residency without touching LRU state (a "peek", as used
// by prefetchers probing the cache).
func (c *Cache) Contains(b isa.BlockID) bool { return c.find(b) != nil }

// Line returns the resident line for b for metadata access, or nil. It does
// not touch LRU state.
func (c *Cache) Line(b isa.BlockID) *Line { return c.find(b) }

// Access performs a demand lookup: on hit it promotes the line to MRU and
// returns it; on miss it returns nil.
func (c *Cache) Access(b isa.BlockID) *Line {
	i := c.findIdx(b)
	if i < 0 {
		return nil
	}
	c.clock++
	c.lines[i].lru = c.clock
	c.lrus[i] = c.clock
	return &c.lines[i]
}

// Insert fills block b, evicting the LRU way if the set is full. It returns
// the filled line and, when a valid line was displaced, its victim state
// (evicted reports whether ev is meaningful). The victim is returned by
// value so the per-fill fast path never allocates.
func (c *Cache) Insert(b isa.BlockID) (l *Line, ev Evicted, evicted bool) {
	s := c.setOf(b) * c.ways
	key := tagKey(b)
	vi := s
	for i, t := range c.tags[s : s+c.ways] {
		if t == key {
			// Refill of a resident block: treat as a touch.
			c.clock++
			l := &c.lines[s+i]
			l.lru = c.clock
			c.lrus[s+i] = c.clock
			return l, Evicted{}, false
		}
		// Victim pre-selection rides the same scan: the recency mirror is 0
		// for invalid ways, so the leftmost minimum is exactly the
		// first-invalid-else-LRU way the two-pass scan used to pick.
		if c.lrus[i+s] < c.lrus[vi] {
			vi = i + s
		}
	}
	victim := &c.lines[vi]
	if victim.valid {
		ev, evicted = Evicted{Block: victim.tag, Flags: victim.Flags, Aux: victim.Aux}, true
	}
	c.clock++
	*victim = Line{tag: b, valid: true, lru: c.clock}
	c.tags[vi] = key
	c.lrus[vi] = c.clock
	return victim, ev, evicted
}

// Invalidate removes block b if resident, returning whether it was.
func (c *Cache) Invalidate(b isa.BlockID) bool {
	s := c.setOf(b) * c.ways
	key := tagKey(b)
	for i, t := range c.tags[s : s+c.ways] {
		if t == key {
			c.lines[s+i] = Line{}
			c.tags[s+i] = 0
			c.lrus[s+i] = 0
			return true
		}
	}
	return false
}

// Reset invalidates every line.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = Line{}
	}
	clear(c.tags)
	clear(c.lrus)
	c.clock = 0
}

// Snapshot serialises the cache's full state (geometry, LRU clock, every
// line) for checkpointing.
func (c *Cache) Snapshot(e *checkpoint.Encoder) {
	e.Begin("cache")
	e.Int(c.sets)
	e.Int(c.ways)
	e.U64(c.clock)
	for i := range c.lines {
		l := &c.lines[i]
		e.U64(uint64(l.tag))
		e.Bool(l.valid)
		e.U64(l.lru)
		e.U8(l.Flags)
		e.U8(l.Aux)
	}
	e.End()
}

// Restore loads state written by Snapshot. The snapshot's geometry must
// match the receiver's: snapshots restore into an identically configured
// machine, they do not reconfigure it.
func (c *Cache) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("cache"); err != nil {
		return err
	}
	sets, ways := d.Int(), d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if sets != c.sets || ways != c.ways {
		return fmt.Errorf("%w: cache geometry %dx%d in snapshot, machine has %dx%d",
			checkpoint.ErrCorrupt, sets, ways, c.sets, c.ways)
	}
	c.clock = d.U64()
	for i := range c.lines {
		l := &c.lines[i]
		l.tag = isa.BlockID(d.U64())
		l.valid = d.Bool()
		l.lru = d.U64()
		l.Flags = d.U8()
		l.Aux = d.U8()
		if l.valid {
			c.tags[i] = tagKey(l.tag)
			c.lrus[i] = l.lru
		} else {
			c.tags[i] = 0
			c.lrus[i] = 0
		}
	}
	return d.End()
}
