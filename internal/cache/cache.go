// Package cache implements the set-associative caches of the memory
// hierarchy: a generic LRU cache with per-line metadata hooks (prefetch
// flags, SN4L's 4-bit local prefetch status) and a miss-status holding
// register (MSHR) file that merges demand requests into in-flight prefetches
// — the mechanism behind partially covered miss latency (the paper's CMAL
// and FSCR metrics).
package cache

import (
	"fmt"

	"dnc/internal/checkpoint"
	"dnc/internal/isa"
)

// Line flag bits.
const (
	// FlagPrefetched marks a line brought in by a prefetcher and not yet
	// demanded (the paper's 1-bit isPrefetch flag).
	FlagPrefetched uint8 = 1 << iota
	// FlagInstruction marks instruction lines (used by DV-LLC's
	// isInstruction OR).
	FlagInstruction
)

// Line is the client-visible state of one resident cache line.
type Line struct {
	tag   isa.BlockID
	valid bool
	lru   uint64
	// Flags holds Flag* bits.
	Flags uint8
	// Aux is free per-line metadata; SN4L stores its 4-bit local prefetch
	// status here.
	Aux uint8
}

// Block returns the block resident in the line.
func (l *Line) Block() isa.BlockID { return l.tag }

// Evicted describes a victim line returned by Insert.
type Evicted struct {
	Block isa.BlockID
	Flags uint8
	Aux   uint8
}

// Cache is a set-associative LRU cache operating on 64-byte block IDs.
type Cache struct {
	sets  int
	ways  int
	lines []Line
	clock uint64
}

// New returns a cache of the given total size and associativity. Size must
// be a multiple of ways*64 and the resulting set count a power of two.
func New(sizeBytes, ways int) *Cache {
	if sizeBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache: bad geometry size=%d ways=%d", sizeBytes, ways))
	}
	blocks := sizeBytes / isa.BlockBytes
	sets := blocks / ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two (size=%d ways=%d)",
			sets, sizeBytes, ways))
	}
	return &Cache{sets: sets, ways: ways, lines: make([]Line, sets*ways)}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the capacity in bytes.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * isa.BlockBytes }

func (c *Cache) setOf(b isa.BlockID) int { return int(uint64(b) & uint64(c.sets-1)) }

// find returns the line holding b, or nil.
func (c *Cache) find(b isa.BlockID) *Line {
	s := c.setOf(b) * c.ways
	for i := 0; i < c.ways; i++ {
		l := &c.lines[s+i]
		if l.valid && l.tag == b {
			return l
		}
	}
	return nil
}

// Contains reports residency without touching LRU state (a "peek", as used
// by prefetchers probing the cache).
func (c *Cache) Contains(b isa.BlockID) bool { return c.find(b) != nil }

// Line returns the resident line for b for metadata access, or nil. It does
// not touch LRU state.
func (c *Cache) Line(b isa.BlockID) *Line { return c.find(b) }

// Access performs a demand lookup: on hit it promotes the line to MRU and
// returns it; on miss it returns nil.
func (c *Cache) Access(b isa.BlockID) *Line {
	l := c.find(b)
	if l == nil {
		return nil
	}
	c.clock++
	l.lru = c.clock
	return l
}

// Insert fills block b, evicting the LRU way if the set is full. It returns
// the filled line and, when a valid line was displaced, its victim state
// (evicted reports whether ev is meaningful). The victim is returned by
// value so the per-fill fast path never allocates.
func (c *Cache) Insert(b isa.BlockID) (l *Line, ev Evicted, evicted bool) {
	if l := c.find(b); l != nil {
		// Refill of a resident block: treat as a touch.
		c.clock++
		l.lru = c.clock
		return l, Evicted{}, false
	}
	s := c.setOf(b) * c.ways
	victim := &c.lines[s]
	for i := 1; i < c.ways; i++ {
		l := &c.lines[s+i]
		if !l.valid {
			victim = l
			break
		}
		if !victim.valid {
			break
		}
		if l.lru < victim.lru {
			victim = l
		}
	}
	if victim.valid {
		ev, evicted = Evicted{Block: victim.tag, Flags: victim.Flags, Aux: victim.Aux}, true
	}
	c.clock++
	*victim = Line{tag: b, valid: true, lru: c.clock}
	return victim, ev, evicted
}

// Invalidate removes block b if resident, returning whether it was.
func (c *Cache) Invalidate(b isa.BlockID) bool {
	if l := c.find(b); l != nil {
		*l = Line{}
		return true
	}
	return false
}

// Reset invalidates every line.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = Line{}
	}
	c.clock = 0
}

// Snapshot serialises the cache's full state (geometry, LRU clock, every
// line) for checkpointing.
func (c *Cache) Snapshot(e *checkpoint.Encoder) {
	e.Begin("cache")
	e.Int(c.sets)
	e.Int(c.ways)
	e.U64(c.clock)
	for i := range c.lines {
		l := &c.lines[i]
		e.U64(uint64(l.tag))
		e.Bool(l.valid)
		e.U64(l.lru)
		e.U8(l.Flags)
		e.U8(l.Aux)
	}
	e.End()
}

// Restore loads state written by Snapshot. The snapshot's geometry must
// match the receiver's: snapshots restore into an identically configured
// machine, they do not reconfigure it.
func (c *Cache) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("cache"); err != nil {
		return err
	}
	sets, ways := d.Int(), d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if sets != c.sets || ways != c.ways {
		return fmt.Errorf("%w: cache geometry %dx%d in snapshot, machine has %dx%d",
			checkpoint.ErrCorrupt, sets, ways, c.sets, c.ways)
	}
	c.clock = d.U64()
	for i := range c.lines {
		l := &c.lines[i]
		l.tag = isa.BlockID(d.U64())
		l.valid = d.Bool()
		l.lru = d.U64()
		l.Flags = d.U8()
		l.Aux = d.U8()
	}
	return d.End()
}
