package memory

import "testing"

func TestUnloadedLatency(t *testing.T) {
	d := New(DefaultConfig())
	got := d.Access(0, 64)
	// 64 B at 42.5 B/cycle rounds to 1 cycle of service + 120 latency.
	if got != 121 {
		t.Errorf("unloaded access completes at %d, want 121", got)
	}
}

func TestBandwidthQueueing(t *testing.T) {
	d := New(DefaultConfig())
	// Saturate: many 64-byte transfers at cycle 0. Total service time is
	// bounded below by bytes/bandwidth.
	n := 1000
	var last uint64
	for i := 0; i < n; i++ {
		last = d.Access(0, 64)
	}
	minService := uint64(n*64*10) / 425
	if last < minService {
		t.Errorf("completion %d under bandwidth bound %d", last, minService)
	}
	if d.QueuedCycles() == 0 {
		t.Error("no queueing recorded under saturation")
	}
	if d.Accesses() != uint64(n) {
		t.Errorf("accesses = %d", d.Accesses())
	}
}

func TestNoQueueingWhenIdle(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0, 64)
	d.Access(1000, 64)
	if d.QueuedCycles() != 0 {
		t.Errorf("idle accesses queued %d cycles", d.QueuedCycles())
	}
}

func TestFractionalServiceAccumulates(t *testing.T) {
	d := New(DefaultConfig())
	// 64 B = 1.5 cycles of service; over many back-to-back accesses the
	// average service must approach 1.5 cycles, not 1.
	n := 10000
	var last uint64
	for i := 0; i < n; i++ {
		last = d.Access(0, 64)
	}
	service := last - 120
	want := uint64(float64(n) * 64 * 10 / 425)
	if service < want-2 || service > want+2 {
		t.Errorf("total service %d, want about %d", service, want)
	}
}

func TestReset(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0, 64)
	d.Reset()
	if d.Accesses() != 0 || d.QueuedCycles() != 0 {
		t.Error("reset incomplete")
	}
	if got := d.Access(0, 64); got != 121 {
		t.Errorf("post-reset access at %d, want 121", got)
	}
}
