// Package memory models main memory as a fixed access latency plus a shared
// bandwidth pipe: 60 ns access latency and 85 GB/s peak bandwidth at 2 GHz
// (the paper's four DDR4 channels), so sustained over-subscription shows up
// as queueing delay.
package memory

// Config describes the memory model.
type Config struct {
	// LatencyCycles is the unloaded access latency (60 ns at 2 GHz = 120).
	LatencyCycles uint64
	// BytesPerCycle is the peak bandwidth (85 GB/s at 2 GHz = 42.5 B/cycle,
	// expressed in tenths to stay integral).
	DeciBytesPerCycle uint64
}

// DefaultConfig matches the paper's Table III.
func DefaultConfig() Config {
	return Config{LatencyCycles: 120, DeciBytesPerCycle: 425}
}

// DRAM is the shared memory model. Not safe for concurrent use.
type DRAM struct {
	cfg       Config
	busyUntil uint64
	deciDebt  uint64 // fractional service time carry, in deci-cycles

	accesses uint64
	queued   uint64
}

// New returns an idle memory model.
func New(cfg Config) *DRAM {
	if cfg.LatencyCycles == 0 {
		cfg.LatencyCycles = 120
	}
	if cfg.DeciBytesPerCycle == 0 {
		cfg.DeciBytesPerCycle = 425
	}
	return &DRAM{cfg: cfg}
}

// Access issues a transfer of the given bytes at cycle and returns the
// completion cycle: queue wait + fixed latency + serialization.
func (d *DRAM) Access(cycle uint64, bytes int) uint64 {
	d.accesses++
	start := cycle
	if d.busyUntil > start {
		d.queued += d.busyUntil - start
		start = d.busyUntil
	}
	// Service cycles = bytes / (DeciBytesPerCycle/10) = bytes*10 / deci-rate,
	// with the remainder carried into the next access.
	deci := uint64(bytes)*10 + d.deciDebt
	service := deci / d.cfg.DeciBytesPerCycle
	d.deciDebt = deci % d.cfg.DeciBytesPerCycle
	if service == 0 {
		service = 1
	}
	d.busyUntil = start + service
	return start + service + d.cfg.LatencyCycles
}

// Accesses returns the number of transfers served.
func (d *DRAM) Accesses() uint64 { return d.accesses }

// QueuedCycles returns cumulative bandwidth-queueing delay.
func (d *DRAM) QueuedCycles() uint64 { return d.queued }

// ResetStats zeroes the statistics, leaving the bandwidth pipe state intact
// (used at the warm-up/measurement boundary).
func (d *DRAM) ResetStats() { d.accesses, d.queued = 0, 0 }

// Reset clears state and statistics.
func (d *DRAM) Reset() { *d = DRAM{cfg: d.cfg} }
