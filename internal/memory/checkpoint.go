package memory

import "dnc/internal/checkpoint"

// Snapshot serialises the bandwidth pipe state and statistics.
func (d *DRAM) Snapshot(e *checkpoint.Encoder) {
	e.Begin("dram")
	e.U64(d.busyUntil)
	e.U64(d.deciDebt)
	e.U64(d.accesses)
	e.U64(d.queued)
	e.End()
}

// Restore loads state written by Snapshot.
func (d *DRAM) Restore(dec *checkpoint.Decoder) error {
	if err := dec.Begin("dram"); err != nil {
		return err
	}
	d.busyUntil = dec.U64()
	d.deciDebt = dec.U64()
	d.accesses = dec.U64()
	d.queued = dec.U64()
	return dec.End()
}
