package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"dnc/internal/obs"
	"dnc/internal/prefetch"
)

// obsRun runs the small workload with the observability layer on.
func obsRun(t *testing.T, oc obs.Config) Result {
	t.Helper()
	return Run(RunConfig{
		Workload: smallWorkload(),
		NewDesign: func() prefetch.Design {
			return prefetch.NewProactive(prefetch.DefaultProactiveConfig())
		},
		Cores:         2,
		WarmCycles:    30_000,
		MeasureCycles: 30_000,
		Seed:          1,
		Obs:           &oc,
	})
}

func TestObsDisabledByDefault(t *testing.T) {
	r := quickRun(t, func() prefetch.Design { return prefetch.NewBaseline(2048) })
	if r.Obs != nil {
		t.Fatal("Result.Obs set without RunConfig.Obs")
	}
}

// TestStallAttributionConservation checks the tentpole invariant end to end
// on a real multi-core run: every measured cycle of every core is charged to
// exactly one bucket — delivering or one of the six stall causes.
func TestStallAttributionConservation(t *testing.T) {
	r := obsRun(t, obs.Config{})
	for i := range r.PerCore {
		m := &r.PerCore[i]
		if got := m.BusyCycles + m.StallCycles(); got != m.Cycles {
			t.Errorf("core %d: busy %d + stalled %d = %d, want %d cycles",
				i, m.BusyCycles, m.StallCycles(), got, m.Cycles)
		}
		var sum uint64
		for _, c := range m.StallBreakdown() {
			sum += c
		}
		if sum != m.Cycles {
			t.Errorf("core %d: StallBreakdown sums to %d, want %d", i, sum, m.Cycles)
		}
	}
	// The aggregate partitions too (Metrics.Add preserves the invariant).
	if got := r.M.BusyCycles + r.M.StallCycles(); got != r.M.Cycles {
		t.Errorf("aggregate: busy+stalled = %d, want %d", got, r.M.Cycles)
	}
	if fs := r.M.FrontendStalls(); fs == 0 {
		t.Error("no frontend stalls attributed on a 1MB-footprint workload")
	}
}

func TestObsHistogramsPopulated(t *testing.T) {
	r := obsRun(t, obs.Config{})
	if r.Obs == nil {
		t.Fatal("Result.Obs nil with RunConfig.Obs set")
	}
	for _, name := range []string{
		HistDemandLat, HistPrefetchLat, HistNoCLat, HistLLCQueue,
		HistMSHROcc, HistROBOcc, HistFTQOcc,
	} {
		h, ok := r.Obs.Hist(name)
		if !ok {
			t.Errorf("histogram %s not in snapshot", name)
			continue
		}
		if h.N == 0 {
			t.Errorf("histogram %s is empty", name)
		}
	}
	if _, ok := r.Obs.Hist("no.such.hist"); ok {
		t.Error("lookup of unknown histogram succeeded")
	}
	// Latencies are issue->fill round trips; zero would mean a broken probe.
	if h, _ := r.Obs.Hist(HistDemandLat); h.N > 0 && h.Min == 0 {
		t.Error("zero-cycle demand fill recorded")
	}
	var hw uint64
	for _, c := range r.Obs.Counters {
		if len(c.Name) > 4 && c.Name[:4] == "mshr" {
			hw += c.Value
		}
	}
	if hw == 0 {
		t.Error("no MSHR high-water marks recorded")
	}
}

func TestObsTraceExport(t *testing.T) {
	r := obsRun(t, obs.Config{TraceEvents: 1 << 12})
	if r.Obs.TraceTotal == 0 {
		t.Fatal("tracing enabled but no events emitted")
	}
	if len(r.Obs.Events) == 0 {
		t.Fatal("no events buffered")
	}
	kinds := map[obs.EventKind]int{}
	for _, ev := range r.Obs.Events {
		kinds[ev.Kind]++
	}
	if kinds[obs.EvStall] == 0 {
		t.Error("no stall spans in trace")
	}
	if kinds[obs.EvPrefetchIssue] == 0 {
		t.Error("no prefetch issues in trace under a prefetching design")
	}
	var buf bytes.Buffer
	err := obs.WritePerfetto(&buf, r.Obs.Events, obs.TraceMeta{
		Workload: r.Workload, Design: r.Design, Cores: len(r.PerCore),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("exported trace is not valid JSON")
	}
}

// TestObsSeriesCapture: with Series on, the run folds the four gauge
// time-series, sampled on the cadence with monotonically increasing cycles
// and a plausible IPC.
func TestObsSeriesCapture(t *testing.T) {
	r := obsRun(t, obs.Config{Series: true, SampleEvery: 64})
	if r.Obs == nil {
		t.Fatal("Result.Obs nil")
	}
	byName := map[string]obs.SeriesSnapshot{}
	for _, s := range r.Obs.Series {
		byName[s.Name] = s
	}
	for _, name := range []string{SeriesIPC, SeriesROBOcc, SeriesMSHROcc, SeriesFTQOcc} {
		s, ok := byName[name]
		if !ok {
			t.Errorf("series %s missing from snapshot", name)
			continue
		}
		if len(s.Cycles) == 0 || len(s.Cycles) != len(s.Values) {
			t.Errorf("series %s: %d cycles, %d values", name, len(s.Cycles), len(s.Values))
			continue
		}
		for i := 1; i < len(s.Cycles); i++ {
			if s.Cycles[i] <= s.Cycles[i-1] {
				t.Errorf("series %s: cycles not increasing at %d: %d -> %d",
					name, i, s.Cycles[i-1], s.Cycles[i])
				break
			}
		}
	}
	ipc := byName[SeriesIPC]
	var sum float64
	for _, v := range ipc.Values {
		if v < 0 {
			t.Fatalf("negative IPC sample %v", v)
		}
		sum += v
	}
	if sum == 0 {
		t.Error("IPC series is identically zero on a retiring workload")
	}
	// Measurement-window samples only: the first point lands after the
	// warm-up boundary.
	if len(ipc.Cycles) > 0 && ipc.Cycles[0] <= 30_000 {
		t.Errorf("first IPC sample at cycle %d is inside warm-up", ipc.Cycles[0])
	}
}

// TestObsSeriesOffByDefault: runs without Series must not grow a Series
// field (the journal wire form stays unchanged).
func TestObsSeriesOffByDefault(t *testing.T) {
	r := obsRun(t, obs.Config{})
	if r.Obs.Series != nil {
		t.Fatalf("Series captured without Config.Series: %d series", len(r.Obs.Series))
	}
}

// TestObsSeriesFastForwardInvariant: fast-forward clamps its jumps to the
// sampling cadence and gauges freeze during pure stalls, so the captured
// series must be bit-identical with and without fast-forward.
func TestObsSeriesFastForwardInvariant(t *testing.T) {
	nd := func() prefetch.Design {
		return prefetch.NewProactive(prefetch.DefaultProactiveConfig())
	}
	rc := RunConfig{
		Workload: smallWorkload(), NewDesign: nd, Cores: 2,
		WarmCycles: 20_000, MeasureCycles: 20_000, Seed: 1,
		Obs: &obs.Config{Series: true, SampleEvery: 64},
	}
	fast := Run(rc)
	rc.DisableFastForward = true
	slow := Run(rc)
	if !reflect.DeepEqual(fast.Obs.Series, slow.Obs.Series) {
		t.Fatalf("series differ under fast-forward:\nfast: %+v\nslow: %+v",
			fast.Obs.Series, slow.Obs.Series)
	}
}

// TestObsDoesNotPerturbTiming: the observability layer is a pure observer —
// the simulated machine must retire the identical instruction stream with
// and without it.
func TestObsDoesNotPerturbTiming(t *testing.T) {
	nd := func() prefetch.Design {
		return prefetch.NewProactive(prefetch.DefaultProactiveConfig())
	}
	rc := RunConfig{
		Workload: smallWorkload(), NewDesign: nd, Cores: 2,
		WarmCycles: 20_000, MeasureCycles: 20_000, Seed: 1,
	}
	plain := Run(rc)
	rc.Obs = &obs.Config{TraceEvents: 1 << 10, SampleEvery: 64}
	observed := Run(rc)
	if plain.M.Retired != observed.M.Retired ||
		plain.M.Cycles != observed.M.Cycles ||
		plain.M.DemandMisses != observed.M.DemandMisses ||
		plain.M.PrefetchesIssued != observed.M.PrefetchesIssued {
		t.Errorf("observability perturbed the run: retired %d vs %d, misses %d vs %d, prefetches %d vs %d",
			plain.M.Retired, observed.M.Retired,
			plain.M.DemandMisses, observed.M.DemandMisses,
			plain.M.PrefetchesIssued, observed.M.PrefetchesIssued)
	}
}
