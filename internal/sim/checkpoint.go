package sim

import (
	"errors"
	"fmt"

	"dnc/internal/checkpoint"
)

// ErrTraceCheckpoint is returned when a trace-replay run requests
// checkpointing or resume: the trace reader's file position is not part of
// the snapshottable machine state, so only walker-driven runs (whose stream
// position is a seed plus a draw count) can checkpoint.
var ErrTraceCheckpoint = errors.New(
	"sim: checkpointing is not supported for trace-replay runs")

// AuditError reports the structural invariant violations found in one
// component of the machine, with the component's own snapshot attached so a
// violation can be triaged offline without re-running the simulation.
type AuditError struct {
	// Component names the offending component ("core3", "llc", "noc").
	Component string
	// Cycle is the global machine cycle at which the audit ran.
	Cycle uint64
	// Violations are the individual invariant failures.
	Violations []error
	// State is the component's snapshot (checkpoint framing) at the moment
	// of the violation.
	State []byte
}

// Error implements error.
func (e *AuditError) Error() string {
	msg := fmt.Sprintf("sim: audit of %s at cycle %d found %d violation(s)",
		e.Component, e.Cycle, len(e.Violations))
	for _, v := range e.Violations {
		msg += "\n  " + v.Error()
	}
	return msg
}

// Unwrap exposes the violations for errors.Is/As.
func (e *AuditError) Unwrap() []error { return e.Violations }

// componentState frames one component's snapshot for AuditError.State.
func componentState(snap func(*checkpoint.Encoder)) []byte {
	e := checkpoint.NewEncoder()
	snap(e)
	return e.Marshal()
}

// audit sweeps the machine's structural invariants: per-core checks (ROB
// conservation, prefetch-buffer bounds and exclusivity, MSHR occupancy and
// leak detection), the DV-LLC footprint invariants, and NoC counter
// consistency. It returns one AuditError per offending component.
func (m *machine) audit() []*AuditError {
	var out []*AuditError
	cycle := m.watch.cycle
	for i, c := range m.cores {
		if errs := c.Audit(); len(errs) > 0 {
			out = append(out, &AuditError{
				Component:  fmt.Sprintf("core%d", i),
				Cycle:      cycle,
				Violations: errs,
				State:      componentState(c.Snapshot),
			})
		}
	}
	if errs := m.uncore.LLC.Audit(); len(errs) > 0 {
		out = append(out, &AuditError{
			Component:  "llc",
			Cycle:      cycle,
			Violations: errs,
			State:      componentState(m.uncore.LLC.Snapshot),
		})
	}
	if errs := m.uncore.Mesh.Audit(); len(errs) > 0 {
		out = append(out, &AuditError{
			Component:  "noc",
			Cycle:      cycle,
			Violations: errs,
			State:      componentState(m.uncore.Mesh.Snapshot),
		})
	}
	return out
}

// auditNow runs the audit and folds any violations into a single error.
func (m *machine) auditNow() error {
	found := m.audit()
	if len(found) == 0 {
		return nil
	}
	errs := make([]error, len(found))
	for i, a := range found {
		errs[i] = a
	}
	return errors.Join(errs...)
}

// Audit restores the snapshot at snapshotPath into a freshly built machine
// for rc and sweeps the structural invariant auditor over the restored
// state. It returns one AuditError per offending component (empty when the
// snapshot is structurally sound) and a hard error when the snapshot cannot
// be loaded at all (corrupt file, configuration mismatch).
func Audit(rc RunConfig, snapshotPath string) ([]*AuditError, error) {
	rc = applyDefaults(rc)
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	m, err := buildMachine(rc, nil)
	if err != nil {
		return nil, err
	}
	defer m.close()
	if err := m.restoreFrom(snapshotPath); err != nil {
		return nil, err
	}
	return m.audit(), nil
}

// encode serialises the whole machine: a header identifying the
// configuration (so a snapshot cannot silently restore into a different
// experiment), the run position (window, cycles, watchdog counters), every
// core with its walker and design, and the shared uncore.
func (m *machine) encode() *checkpoint.Encoder {
	e := checkpoint.NewEncoder()
	e.Begin("machine")
	e.String(m.rc.Workload.Name)
	e.U8(uint8(m.rc.Workload.Mode))
	e.Int(m.rc.Workload.FootprintBytes)
	e.I64(m.rc.Workload.GenSeed)
	e.String(m.designs[0].Name())
	e.I64(m.rc.Seed)
	e.Int(m.rc.Cores)
	e.U64(m.rc.WarmCycles)
	e.U64(m.rc.MeasureCycles)
	e.U8(m.phase)
	e.U64(m.done)
	e.U64(m.watch.cycle)
	e.U64(m.watch.lastSum)
	e.U64(m.watch.lastAt)
	for i := range m.cores {
		m.walkers[i].Snapshot(e)
		m.cores[i].Snapshot(e)
	}
	m.uncore.LLC.Snapshot(e)
	m.uncore.Mesh.Snapshot(e)
	m.uncore.DRAM.Snapshot(e)
	e.End()
	return e
}

// restoreFrom loads a snapshot file into the freshly built machine,
// verifying first that it was taken from an identical configuration.
func (m *machine) restoreFrom(path string) error {
	d, err := checkpoint.ReadFile(path)
	if err != nil {
		return fmt.Errorf("sim: reading snapshot %s: %w", path, err)
	}
	if err := d.Begin("machine"); err != nil {
		return fmt.Errorf("sim: snapshot %s: %w", path, err)
	}
	if err := m.checkHeader(d); err != nil {
		return fmt.Errorf("sim: snapshot %s: %w", path, err)
	}
	m.phase = d.U8()
	m.done = d.U64()
	m.watch.cycle = d.U64()
	m.watch.lastSum = d.U64()
	m.watch.lastAt = d.U64()
	if err := d.Err(); err != nil {
		return fmt.Errorf("sim: snapshot %s: %w", path, err)
	}
	if m.phase > 1 {
		return fmt.Errorf("sim: snapshot %s: %w: phase %d out of range",
			path, checkpoint.ErrCorrupt, m.phase)
	}
	for i := range m.cores {
		if err := m.walkers[i].Restore(d); err != nil {
			return fmt.Errorf("sim: snapshot %s: walker %d: %w", path, i, err)
		}
		if err := m.cores[i].Restore(d); err != nil {
			return fmt.Errorf("sim: snapshot %s: core %d: %w", path, i, err)
		}
	}
	if err := m.uncore.LLC.Restore(d); err != nil {
		return fmt.Errorf("sim: snapshot %s: llc: %w", path, err)
	}
	if err := m.uncore.Mesh.Restore(d); err != nil {
		return fmt.Errorf("sim: snapshot %s: noc: %w", path, err)
	}
	if err := m.uncore.DRAM.Restore(d); err != nil {
		return fmt.Errorf("sim: snapshot %s: dram: %w", path, err)
	}
	if err := d.End(); err != nil {
		return fmt.Errorf("sim: snapshot %s: %w", path, err)
	}
	// Resume the checkpoint cadence from the restore point, and rebuild the
	// derived wake state (restored cores are all awake until their first
	// full Tick recomputes idleWake).
	m.lastCkpt = m.watch.cycle
	m.resetEngine()
	return nil
}

// checkHeader verifies the snapshot's identity fields against the machine's
// configuration. Snapshots restore into identically configured machines;
// they never reconfigure one.
func (m *machine) checkHeader(d *checkpoint.Decoder) error {
	name := d.String()
	mode := d.U8()
	footprint := d.Int()
	genSeed := d.I64()
	design := d.String()
	seed := d.I64()
	cores := d.Int()
	warm := d.U64()
	measure := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	mismatch := func(field string, got, want any) error {
		return fmt.Errorf("%w: snapshot %s is %v, machine expects %v",
			checkpoint.ErrCorrupt, field, got, want)
	}
	switch {
	case name != m.rc.Workload.Name:
		return mismatch("workload", name, m.rc.Workload.Name)
	case mode != uint8(m.rc.Workload.Mode):
		return mismatch("workload mode", mode, uint8(m.rc.Workload.Mode))
	case footprint != m.rc.Workload.FootprintBytes:
		return mismatch("workload footprint", footprint, m.rc.Workload.FootprintBytes)
	case genSeed != m.rc.Workload.GenSeed:
		return mismatch("workload generation seed", genSeed, m.rc.Workload.GenSeed)
	case design != m.designs[0].Name():
		return mismatch("design", design, m.designs[0].Name())
	case seed != m.rc.Seed:
		return mismatch("run seed", seed, m.rc.Seed)
	case cores != m.rc.Cores:
		return mismatch("core count", cores, m.rc.Cores)
	case warm != m.rc.WarmCycles:
		return mismatch("warm-up window", warm, m.rc.WarmCycles)
	case measure != m.rc.MeasureCycles:
		return mismatch("measurement window", measure, m.rc.MeasureCycles)
	}
	return nil
}
