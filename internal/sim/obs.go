package sim

import (
	"fmt"

	"dnc/internal/core"
	"dnc/internal/obs"
	"dnc/internal/prefetch"
)

// Histogram names registered by the observability layer. Callers read them
// back from Result.Obs via RunObs.Hist.
const (
	HistDemandLat   = "lat.l1i.demand"    // demand-miss issue->fill cycles
	HistPrefetchLat = "lat.l1i.prefetch"  // prefetch issue->fill cycles
	HistNoCLat      = "lat.noc.packet"    // NoC packet injection->delivery cycles
	HistLLCQueue    = "lat.llc.bankqueue" // LLC bank queueing delay per access
	HistMSHROcc     = "occ.mshr"          // sampled MSHR occupancy, all cores
	HistROBOcc      = "occ.rob"           // sampled ROB occupancy, all cores
	HistFTQOcc      = "occ.ftq"           // sampled design queue/FTQ occupancy
)

// machineObs owns a run's observability state: the registry of histograms,
// the shared event tracer, and the gauge-sampling cadence. One instance per
// machine; nil when RunConfig.Obs is nil, which keeps the tick loop at a
// single pointer test.
type machineObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	demandLat, prefetchLat *obs.Histogram
	nocLat, llcQueue       *obs.Histogram
	mshrOcc, robOcc        *obs.Histogram
	ftqOcc                 *obs.Histogram

	sampleEvery uint64
	ckptSeq     uint64
}

func newMachineObs(cfg obs.Config) *machineObs {
	o := &machineObs{reg: obs.NewRegistry(), sampleEvery: cfg.SampleEvery}
	if o.sampleEvery == 0 {
		o.sampleEvery = obs.DefaultSampleEvery
	}
	o.tracer = obs.NewTracer(cfg.TraceEvents)

	// Fill latencies span an L1i->local-LLC hit (tens of cycles) to a
	// contended DRAM round trip (hundreds); geometric bounds cover both ends.
	latBounds := obs.ExpBounds(8, 1.5, 16)
	o.demandLat = o.reg.Histogram(HistDemandLat, latBounds)
	o.prefetchLat = o.reg.Histogram(HistPrefetchLat, latBounds)
	o.nocLat = o.reg.Histogram(HistNoCLat, obs.ExpBounds(2, 1.5, 12))
	o.llcQueue = o.reg.Histogram(HistLLCQueue, obs.LinearBounds(8, 8))
	o.mshrOcc = o.reg.Histogram(HistMSHROcc, obs.LinearBounds(2, 16))
	o.robOcc = o.reg.Histogram(HistROBOcc, obs.LinearBounds(8, 16))
	o.ftqOcc = o.reg.Histogram(HistFTQOcc, obs.LinearBounds(2, 16))
	return o
}

// attach fans the observability hooks out to every instrumented component.
func (o *machineObs) attach(m *machine) {
	for _, c := range m.cores {
		c.SetObs(core.ObsHooks{
			Tracer:      o.tracer,
			DemandLat:   o.demandLat,
			PrefetchLat: o.prefetchLat,
		})
	}
	m.uncore.Mesh.SetObs(o.nocLat)
	m.uncore.LLC.SetObs(o.llcQueue)
}

// sample records the occupancy gauges of every core (called on the
// sampleEvery cadence from the tick loop).
func (o *machineObs) sample(m *machine) {
	for i, c := range m.cores {
		o.robOcc.Observe(uint64(c.ROBOccupancy()))
		o.mshrOcc.Observe(uint64(c.MSHRs().Len()))
		if r, ok := m.designs[i].(prefetch.OccupancyReporter); ok {
			o.ftqOcc.Observe(uint64(r.QueueOccupancy()))
		}
	}
}

// resetWindow clears everything at the warm-up/measurement boundary so the
// folded snapshot covers the measurement window only. Core-side stall-run
// state is restarted by core.ResetMetrics.
func (o *machineObs) resetWindow(m *machine) {
	o.reg.Reset()
	o.tracer.Reset()
	for _, c := range m.cores {
		c.MSHRs().ResetHighWater()
	}
}

// noteCheckpoint emits a machine-global checkpoint marker into the trace.
func (o *machineObs) noteCheckpoint(cycle uint64) {
	o.ckptSeq++
	o.tracer.Emit(obs.Event{Cycle: cycle, Arg: o.ckptSeq, Core: -1, Kind: obs.EvCheckpoint})
}

// fold closes open stall runs, snapshots the registry, and returns the
// run's observability result.
func (o *machineObs) fold(m *machine) *obs.RunObs {
	for i, c := range m.cores {
		c.FlushObs()
		o.reg.Counter(fmt.Sprintf("mshr.highwater.core%d", i)).
			Add(uint64(c.MSHRs().HighWater()))
	}
	hists, counters := o.reg.Snapshot()
	return &obs.RunObs{
		Hists:        hists,
		Counters:     counters,
		TraceTotal:   o.tracer.Total(),
		TraceDropped: o.tracer.Dropped(),
		Events:       o.tracer.Events(),
	}
}
