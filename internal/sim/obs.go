package sim

import (
	"fmt"
	"sort"

	"dnc/internal/core"
	"dnc/internal/obs"
	"dnc/internal/prefetch"
)

// Histogram names registered by the observability layer. Callers read them
// back from Result.Obs via RunObs.Hist.
const (
	HistDemandLat   = "lat.l1i.demand"    // demand-miss issue->fill cycles
	HistPrefetchLat = "lat.l1i.prefetch"  // prefetch issue->fill cycles
	HistNoCLat      = "lat.noc.packet"    // NoC packet injection->delivery cycles
	HistLLCQueue    = "lat.llc.bankqueue" // LLC bank queueing delay per access
	HistMSHROcc     = "occ.mshr"          // sampled MSHR occupancy, all cores
	HistROBOcc      = "occ.rob"           // sampled ROB occupancy, all cores
	HistFTQOcc      = "occ.ftq"           // sampled design queue/FTQ occupancy
)

// Time-series names registered when obs.Config.Series is set. Each point is
// one (cycle, value) sample on the SampleEvery cadence; occupancy series
// record the machine mean at the sample instant, the IPC series records
// retired-per-cycle over the interval since the previous sample.
const (
	SeriesIPC     = "series.ipc"      // machine IPC over the last sample interval
	SeriesROBOcc  = "series.occ.rob"  // mean ROB occupancy across cores
	SeriesMSHROcc = "series.occ.mshr" // mean MSHR occupancy across cores
	SeriesFTQOcc  = "series.occ.ftq"  // mean design queue/FTQ occupancy
)

// machineObs owns a run's observability state: the registry of histograms,
// the shared event tracer, and the gauge-sampling cadence. One instance per
// machine; nil when RunConfig.Obs is nil, which keeps the tick loop at a
// single pointer test.
type machineObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	demandLat, prefetchLat *obs.Histogram
	nocLat, llcQueue       *obs.Histogram
	mshrOcc, robOcc        *obs.Histogram
	ftqOcc                 *obs.Histogram

	// Series capture (nil when obs.Config.Series is off; Observe on a nil
	// series is one pointer test). IPC is a rate, so the last sample point
	// is remembered to difference against.
	ipcS, robS, mshrS, ftqS *obs.Series
	lastCycle, lastRetired  uint64

	sampleEvery uint64
	ckptSeq     uint64

	// Shard state for the parallel engine: each core gets a private tracer
	// and latency histograms — the only obs state written from inside Tick —
	// merged deterministically at fold. Nil under the serial engines, which
	// share the registry instances directly. latBounds and traceCap are kept
	// so attach can build the shards with the same shapes as the shared
	// instances.
	shardTracers               []*obs.Tracer
	shardDemand, shardPrefetch []*obs.Histogram
	latBounds                  []uint64
	traceCap                   int
}

func newMachineObs(cfg obs.Config) *machineObs {
	o := &machineObs{reg: obs.NewRegistry(), sampleEvery: cfg.SampleEvery}
	if o.sampleEvery == 0 {
		o.sampleEvery = obs.DefaultSampleEvery
	}
	o.tracer = obs.NewTracer(cfg.TraceEvents)

	o.traceCap = cfg.TraceEvents

	// Fill latencies span an L1i->local-LLC hit (tens of cycles) to a
	// contended DRAM round trip (hundreds); geometric bounds cover both ends.
	latBounds := obs.ExpBounds(8, 1.5, 16)
	o.latBounds = latBounds
	o.demandLat = o.reg.Histogram(HistDemandLat, latBounds)
	o.prefetchLat = o.reg.Histogram(HistPrefetchLat, latBounds)
	o.nocLat = o.reg.Histogram(HistNoCLat, obs.ExpBounds(2, 1.5, 12))
	o.llcQueue = o.reg.Histogram(HistLLCQueue, obs.LinearBounds(8, 8))
	o.mshrOcc = o.reg.Histogram(HistMSHROcc, obs.LinearBounds(2, 16))
	o.robOcc = o.reg.Histogram(HistROBOcc, obs.LinearBounds(8, 16))
	o.ftqOcc = o.reg.Histogram(HistFTQOcc, obs.LinearBounds(2, 16))
	if cfg.Series {
		o.ipcS = o.reg.Series(SeriesIPC)
		o.robS = o.reg.Series(SeriesROBOcc)
		o.mshrS = o.reg.Series(SeriesMSHROcc)
		o.ftqS = o.reg.Series(SeriesFTQOcc)
	}
	return o
}

// attach fans the observability hooks out to every instrumented component.
// Under the parallel engine each core gets private shard instances for the
// state it writes from inside Tick; the uncore-side histograms stay shared —
// they are only touched inside gated (serially ordered) sections.
func (o *machineObs) attach(m *machine) {
	if m.parJobs() > 1 {
		n := len(m.cores)
		o.shardTracers = make([]*obs.Tracer, n)
		o.shardDemand = make([]*obs.Histogram, n)
		o.shardPrefetch = make([]*obs.Histogram, n)
		for i, c := range m.cores {
			o.shardTracers[i] = obs.NewTracer(o.traceCap)
			o.shardDemand[i] = obs.NewHistogram(HistDemandLat, o.latBounds)
			o.shardPrefetch[i] = obs.NewHistogram(HistPrefetchLat, o.latBounds)
			c.SetObs(core.ObsHooks{
				Tracer:      o.shardTracers[i],
				DemandLat:   o.shardDemand[i],
				PrefetchLat: o.shardPrefetch[i],
			})
		}
	} else {
		for _, c := range m.cores {
			c.SetObs(core.ObsHooks{
				Tracer:      o.tracer,
				DemandLat:   o.demandLat,
				PrefetchLat: o.prefetchLat,
			})
		}
	}
	m.uncore.Mesh.SetObs(o.nocLat)
	m.uncore.LLC.SetObs(o.llcQueue)
}

// sample records the occupancy gauges of every core (called on the
// sampleEvery cadence from the tick loop) and, when series capture is on,
// appends one point to each time-series.
func (o *machineObs) sample(m *machine) {
	var robSum, mshrSum, ftqSum uint64
	ftqN := 0
	for i, c := range m.cores {
		rob := uint64(c.ROBOccupancy())
		mshr := uint64(c.MSHRs().Len())
		o.robOcc.Observe(rob)
		o.mshrOcc.Observe(mshr)
		robSum += rob
		mshrSum += mshr
		if r, ok := m.designs[i].(prefetch.OccupancyReporter); ok {
			q := uint64(r.QueueOccupancy())
			o.ftqOcc.Observe(q)
			ftqSum += q
			ftqN++
		}
	}
	if o.ipcS == nil {
		return
	}
	cycle := m.watch.cycle
	var retired uint64
	for _, c := range m.cores {
		retired += c.M.Retired
	}
	var ipc float64
	if dc := cycle - o.lastCycle; dc > 0 {
		ipc = float64(retired-o.lastRetired) / float64(dc)
	}
	o.lastCycle, o.lastRetired = cycle, retired
	n := float64(len(m.cores))
	o.ipcS.Observe(cycle, ipc)
	o.robS.Observe(cycle, float64(robSum)/n)
	o.mshrS.Observe(cycle, float64(mshrSum)/n)
	var ftq float64
	if ftqN > 0 {
		ftq = float64(ftqSum) / float64(ftqN)
	}
	o.ftqS.Observe(cycle, ftq)
}

// resetWindow clears everything at the warm-up/measurement boundary so the
// folded snapshot covers the measurement window only. Core-side stall-run
// state is restarted by core.ResetMetrics.
func (o *machineObs) resetWindow(m *machine) {
	o.reg.Reset()
	o.tracer.Reset()
	for i := range o.shardTracers {
		o.shardTracers[i].Reset()
		o.shardDemand[i].Reset()
		o.shardPrefetch[i].Reset()
	}
	for _, c := range m.cores {
		c.MSHRs().ResetHighWater()
	}
	// Rebase the IPC differencer on the boundary: core metrics were just
	// reset, so the next sample's delta must start from (here, zero).
	o.lastCycle = m.watch.cycle
	o.lastRetired = 0
	for _, c := range m.cores {
		o.lastRetired += c.M.Retired
	}
}

// noteCheckpoint emits a machine-global checkpoint marker into the trace.
func (o *machineObs) noteCheckpoint(cycle uint64) {
	o.ckptSeq++
	o.tracer.Emit(obs.Event{Cycle: cycle, Arg: o.ckptSeq, Core: -1, Kind: obs.EvCheckpoint})
}

// fold closes open stall runs, snapshots the registry, and returns the
// run's observability result. Shard histograms merge into the registered
// instances first — bucket sums, totals, and extrema commute, so the
// snapshots are bit-identical to the serial engines'. The merged event
// trace is ordered by (cycle, core): the serial single-ring interleaving is
// not reproducible from per-core rings (span-close events are emitted late
// with their start-cycle stamps, and each ring drops independently), so
// Events and TraceDropped are diagnostic, not part of the bit-exactness
// contract.
func (o *machineObs) fold(m *machine) *obs.RunObs {
	for i, c := range m.cores {
		c.FlushObs()
		o.reg.Counter(fmt.Sprintf("mshr.highwater.core%d", i)).
			Add(uint64(c.MSHRs().HighWater()))
	}
	for i := range o.shardTracers {
		o.demandLat.Merge(o.shardDemand[i])
		o.prefetchLat.Merge(o.shardPrefetch[i])
	}
	hists, counters := o.reg.Snapshot()
	ro := &obs.RunObs{
		Hists:        hists,
		Counters:     counters,
		Series:       o.reg.SeriesSnapshots(),
		TraceTotal:   o.tracer.Total(),
		TraceDropped: o.tracer.Dropped(),
		Events:       o.tracer.Events(),
	}
	for i := range o.shardTracers {
		t := o.shardTracers[i]
		ro.TraceTotal += t.Total()
		ro.TraceDropped += t.Dropped()
		ro.Events = append(ro.Events, t.Events()...)
	}
	if o.shardTracers != nil {
		sort.SliceStable(ro.Events, func(a, b int) bool {
			if ro.Events[a].Cycle != ro.Events[b].Cycle {
				return ro.Events[a].Cycle < ro.Events[b].Cycle
			}
			return ro.Events[a].Core < ro.Events[b].Core
		})
	}
	return ro
}
