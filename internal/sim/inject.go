package sim

import (
	"context"

	wl "dnc/internal/cfg"
)

// StreamWrapper transforms core i's committed instruction stream before it
// reaches the core. The wrapped stream replaces the core's seeded walker;
// returning s unchanged leaves the core on the reference path.
type StreamWrapper func(i int, s wl.Stream) wl.Stream

// RunInjected is RunChecked with each core's walker stream passed through
// wrap. It exists for fault-injection testing: the differential harness
// proves it catches divergences by corrupting one core's committed stream —
// a stand-in for a walker, trace-decode, or replay bug — and asserting the
// oracle reports the first divergent instruction. Injected runs cannot
// checkpoint or resume (the mutation is not part of machine state).
func RunInjected(ctx context.Context, rc RunConfig, wrap StreamWrapper) (Result, error) {
	return runChecked(ctx, rc, func(i int, prog *wl.Program) (wl.Stream, func(), error) {
		return wrap(i, wl.NewWalker(prog, WalkerSeed(rc.Seed, i))), nil, nil
	})
}
