package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"
)

// parEngine shards the cores of one run across IntraJobs goroutines while
// reproducing the serial engines bit-exactly. The key invariant is the
// serial contention order: at machine cycle T, core i's shared-fabric
// (NoC/LLC/DRAM) requests happen after every lower tile's cycle-T requests
// and after every higher tile's cycle-(T-1) requests. The engine enforces
// exactly that order — and nothing more — with a per-core wavefront counter:
//
//	done[i] = the first cycle core i has NOT finished
//
// A core's first shared-fabric touch of cycle T (core.enterUncore) blocks
// until done[j] >= T+1 for every j < i and done[j] >= T for every j > i.
// Ticks that never touch the uncore (L1 hits, pure stalls) proceed without
// any rendezvous, which is where the parallelism comes from. A core that
// goes to sleep (proven pure-stall window, see core.IdleWake) publishes its
// wake cycle as its wavefront position: it provably makes no shared-fabric
// touch before then, so peers never wait on it.
//
// Deadlock freedom: order unfinished (cycle, tile) pairs lexicographically.
// The globally minimal unfinished pair's gate condition is satisfied by
// construction (every lower tile has finished this cycle, every higher tile
// the previous one — otherwise one of them would be the minimum), and each
// shard executes its own cores in exactly that lexicographic order, so the
// minimal pair is always the next task of some shard: progress is always
// possible.
//
// Epochs: the coordinator dispatches spans of cycles bounded by the same
// window/poll/sampling boundaries as the serial engines, and joins all
// shards at each boundary. Between epochs the machine is fully synchronized
// and the coordinator runs the boundary work (sampling, watchdog,
// checkpoints) exactly as the serial engines do.
type parEngine struct {
	m      *machine
	shards [][]int // contiguous core-index ranges, one per goroutine

	// done is the wavefront (see above): cache-line padded so the spin
	// loads in gate don't false-share with neighbouring cores' stores.
	done []paddedCounter

	// asleep/wake mirror engineState's wheel bookkeeping per core. During an
	// epoch each entry is owned by the core's shard; between epochs by the
	// coordinator (the epoch channels provide the happens-before edges).
	asleep []bool
	wake   []uint64

	start []chan span
	acks  chan int
	fail  atomic.Pointer[shardFailure]
}

type span struct{ from, to uint64 }

type paddedCounter struct {
	v atomic.Uint64
	_ [56]byte
}

// shardFailure is a panic recovered inside a shard goroutine, carried to the
// coordinator with the shard's own stack.
type shardFailure struct {
	shard int
	val   any
	stack []byte
}

func newParEngine(m *machine, jobs int) *parEngine {
	n := len(m.cores)
	p := &parEngine{
		m:      m,
		shards: splitShards(n, jobs),
		done:   make([]paddedCounter, n),
		asleep: make([]bool, n),
		wake:   make([]uint64, n),
		acks:   make(chan int, jobs),
	}
	for _, c := range m.cores {
		c.SetUncoreGate(p.gate)
	}
	return p
}

// splitShards partitions 0..n-1 into jobs contiguous runs, sizes differing
// by at most one. Contiguity keeps each shard's execution order a
// subsequence of the serial tile order.
func splitShards(n, jobs int) [][]int {
	shards := make([][]int, jobs)
	base, rem := n/jobs, n%jobs
	next := 0
	for s := range shards {
		size := base
		if s < rem {
			size++
		}
		ids := make([]int, size)
		for k := range ids {
			ids[k] = next
			next++
		}
		shards[s] = ids
	}
	return shards
}

// reset puts every core back to awake (after a snapshot restore).
func (p *parEngine) reset() {
	for i := range p.asleep {
		p.asleep[i] = false
		p.wake[i] = 0
	}
}

// gate blocks until every lower tile has finished the given cycle and every
// higher tile has finished the previous one (the serial contention order).
// Installed as every core's uncoreGate; called at most once per full Tick.
func (p *parEngine) gate(tile int, cycle uint64) {
	for i := range p.done {
		if i == tile {
			continue
		}
		need := cycle
		if i < tile {
			need = cycle + 1
		}
		for p.done[i].v.Load() < need {
			// Gosched rather than a pure spin: with GOMAXPROCS=1 the peer
			// shard can only advance if this goroutine yields.
			runtime.Gosched()
		}
	}
}

// launch starts one goroutine per shard for the current phase.
func (p *parEngine) launch() {
	p.start = make([]chan span, len(p.shards))
	for s := range p.shards {
		p.start[s] = make(chan span)
		go p.shardLoop(s)
	}
}

// stop ends the phase: shard goroutines exit when their epoch channels
// close. No acks are pending when stop runs (the coordinator joins every
// epoch before moving on).
func (p *parEngine) stop() {
	for _, ch := range p.start {
		close(ch)
	}
	p.start = nil
}

func (p *parEngine) shardLoop(s int) {
	for sp := range p.start[s] {
		p.runShardGuarded(s, sp)
		p.acks <- s
	}
}

// runShardGuarded funnels a shard panic to the coordinator instead of
// killing the process: the failure (with the shard's stack) is recorded,
// and the shard's wavefront entries are poisoned to +inf so peers blocked
// in gate on this shard's cores drain instead of spinning forever. The
// epoch is still acked; the coordinator aborts the run on seeing the
// failure.
func (p *parEngine) runShardGuarded(s int, sp span) {
	defer func() {
		if r := recover(); r != nil {
			p.fail.CompareAndSwap(nil, &shardFailure{shard: s, val: r, stack: debug.Stack()})
			for _, i := range p.shards[s] {
				p.done[i].v.Store(^uint64(0))
			}
		}
	}()
	if p.fail.Load() != nil {
		return // a peer already failed; don't run on a poisoned wavefront
	}
	p.runShard(s, sp.from, sp.to)
}

// runShard executes the shard's cores through [from, to): the exact per-core
// logic of stepWheel, with the wheel replaced by the per-core wake scan
// (shards cannot share a wheel) and the wavefront published after each tick.
func (p *parEngine) runShard(s int, from, to uint64) {
	m := p.m
	for cyc := from; cyc < to; cyc++ {
		for _, i := range p.shards[s] {
			if p.asleep[i] {
				if p.wake[i] != cyc {
					continue
				}
				c := m.cores[i]
				if lag := cyc - c.Cycle(); lag > 0 {
					c.FastForward(lag)
				}
				p.asleep[i] = false
			}
			c := m.cores[i]
			c.Tick()
			if w := c.IdleWake(); w > c.Cycle() {
				p.asleep[i] = true
				p.wake[i] = w
				p.done[i].v.Store(w)
			} else {
				p.done[i].v.Store(cyc + 1)
			}
		}
	}
}

// runPhasePar is the coordinator loop: dispatch bounded epochs to the shard
// goroutines, join them, and run the boundary work serially — landing on
// exactly the same boundaries, with exactly the same machine state, as the
// serial engines.
func (m *machine) runPhasePar(ctx context.Context, total uint64) error {
	p := m.eng.par
	p.launch()
	defer p.stop()
	for m.done < total {
		var n uint64
		awake := 0
		for i := range p.asleep {
			if !p.asleep[i] {
				awake++
			}
		}
		if awake == 0 {
			n = m.parSleepLen(total)
		}
		if n > 0 {
			m.watch.cycle += n
			m.done += n
		} else {
			cur := m.watch.cycle
			length := m.epochLen(total)
			for i := range p.done {
				if p.asleep[i] {
					p.done[i].v.Store(p.wake[i])
				} else {
					p.done[i].v.Store(cur)
				}
			}
			for _, ch := range p.start {
				ch <- span{cur, cur + length}
			}
			for range p.start {
				<-p.acks
			}
			if f := p.fail.Load(); f != nil {
				return fmt.Errorf("sim: shard %d panicked during cycles [%d,%d): %v\nshard stack:\n%s",
					f.shard, cur, cur+length, f.val, f.stack)
			}
			m.watch.cycle += length
			m.done += length
		}
		if m.obs != nil && m.watch.cycle%m.obs.sampleEvery == 0 {
			m.obs.sample(m)
		}
		if m.watch.cycle%checkEvery == 0 {
			m.syncCores()
			if err := m.pollBoundary(ctx); err != nil {
				return err
			}
		}
	}
	m.syncCores()
	return nil
}

// epochLen bounds the next epoch: up to the nearest of the window end, the
// next poll boundary, and the next sampling boundary — the points where the
// serial engines observe machine state, so the coordinator must join there.
func (m *machine) epochLen(total uint64) uint64 {
	cur := m.watch.cycle
	n := total - m.done
	if r := checkEvery - cur%checkEvery; n > r {
		n = r
	}
	if m.obs != nil {
		if r := m.obs.sampleEvery - cur%m.obs.sampleEvery; n > r {
			n = r
		}
	}
	return n
}

// parSleepLen mirrors sleepLen with the wake times read from the per-core
// table instead of the wheel.
func (m *machine) parSleepLen(total uint64) uint64 {
	p := m.eng.par
	wake := ^uint64(0)
	for i := range p.asleep {
		if p.wake[i] < wake {
			wake = p.wake[i]
		}
	}
	cur := m.watch.cycle
	if wake <= cur {
		return 0
	}
	n := wake - cur
	if r := total - m.done; n > r {
		n = r
	}
	if r := checkEvery - cur%checkEvery; n > r {
		n = r
	}
	if m.obs != nil {
		if r := m.obs.sampleEvery - cur%m.obs.sampleEvery; n > r {
			n = r
		}
	}
	return n
}
