package difftest

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"dnc/internal/core"
	"dnc/internal/prefetch"
	"dnc/internal/sim"
)

// TestCrossDesignStreamIdentity is the metamorphic form of "prefetching
// never perturbs the retired stream": every design, run over the same seeds,
// must produce identical observed-stream digests at every common checkpoint.
// The digests are folded from what the shims *observed* retiring (not from
// the oracle), so two designs disagreeing would be caught even if both
// happened to satisfy the oracle checks.
func TestCrossDesignStreamIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("the oracle matrix covers stream identity in short mode")
	}
	var ref *Report
	for _, entry := range prefetch.Catalog() {
		o := testOptions(entry, 1)
		o.Measure = 6144
		_, rep, err := Run(context.Background(), o)
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		if !rep.Ok() {
			t.Fatalf("%s diverged:\n%s", entry.Name, rep)
		}
		if ref == nil {
			ref = rep
			for i, trail := range rep.DigestTrail {
				if len(trail) == 0 {
					t.Fatalf("%s: core %d retired too little for a digest checkpoint", entry.Name, i)
				}
			}
			continue
		}
		for i := range rep.DigestTrail {
			a, b := ref.DigestTrail[i], rep.DigestTrail[i]
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			if n == 0 {
				t.Fatalf("%s: core %d has no digest checkpoint in common with %s", entry.Name, i, ref.Design)
			}
			for j := 0; j < n; j++ {
				if a[j] != b[j] {
					t.Fatalf("%s and %s retire different streams on core %d (digest checkpoint %d: %#x vs %#x)",
						ref.Design, rep.Design, i, j, a[j], b[j])
				}
			}
		}
	}
}

// TestFastForwardDifferentialIdentity is the engine's metamorphic
// equivalence suite: for each design shape (the Base-default baseline, the
// Proactive queue family, boomerang, shotgun) and two seeds, a run with
// idle-cycle fast-forward and the full-tick reference must both pass the
// oracle lockstep, observe identical digest trails, and report identical
// aggregate metrics. Running through the differential harness rather than
// plain sim.Run matters twice over: the shims verify the retired stream
// instruction by instruction, and difftest always enables the
// observability layer, so fast-forward is exercised under tracing and gauge
// sampling too.
func TestFastForwardDifferentialIdentity(t *testing.T) {
	byName := map[string]prefetch.CatalogEntry{}
	for _, e := range prefetch.Catalog() {
		byName[e.Name] = e
	}
	for _, name := range []string{"baseline", "PIF", "boomerang", "shotgun"} {
		entry, ok := byName[name]
		if !ok {
			t.Fatalf("catalog entry %q missing", name)
		}
		for seed := int64(1); seed <= 2; seed++ {
			o := testOptions(entry, seed)
			run := func(disable bool) *Report {
				oo := o
				oo.DisableFastForward = disable
				res, rep, err := Run(context.Background(), oo)
				if err != nil {
					t.Fatalf("%s seed %d (disableFF=%v): %v", name, seed, disable, err)
				}
				if !rep.Ok() {
					t.Fatalf("%s seed %d (disableFF=%v) diverged from the oracle:\n%s", name, seed, disable, rep)
				}
				rep.Retired = res.M.Retired // fold a timing-sensitive metric into the comparison
				return rep
			}
			fast, ref := run(false), run(true)
			if fast.Retired != ref.Retired || fast.Transitions != ref.Transitions {
				t.Errorf("%s seed %d: fast-forward changed timing-visible counts (retired %d vs %d, transitions %d vs %d)",
					name, seed, fast.Retired, ref.Retired, fast.Transitions, ref.Transitions)
			}
			for i := range fast.DigestTrail {
				a, b := fast.DigestTrail[i], ref.DigestTrail[i]
				if len(a) != len(b) {
					t.Fatalf("%s seed %d core %d: digest trail lengths differ (%d vs %d)", name, seed, i, len(a), len(b))
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("%s seed %d core %d: digest checkpoint %d differs (%#x vs %#x)", name, seed, i, j, a[j], b[j])
					}
				}
			}
		}
	}
}

// TestEngineDifferentialIdentity runs the oracle lockstep under every
// engine — the tick reference, the event-driven wheel, and the sharded
// wheel — and requires identical digest trails and timing-visible counts.
// This is stronger than comparing plain results: the shims verify the
// retired stream instruction by instruction while the engines reorder the
// work, and the observability layer (always on in difftest) is exercised
// under lagged-core sampling too.
func TestEngineDifferentialIdentity(t *testing.T) {
	byName := map[string]prefetch.CatalogEntry{}
	for _, e := range prefetch.Catalog() {
		byName[e.Name] = e
	}
	for _, name := range []string{"baseline", "PIF", "boomerang", "shotgun"} {
		entry, ok := byName[name]
		if !ok {
			t.Fatalf("catalog entry %q missing", name)
		}
		for seed := int64(1); seed <= 2; seed++ {
			o := testOptions(entry, seed)
			o.Cores = 4
			run := func(sched sim.SchedMode, jobs int) *Report {
				oo := o
				oo.Sched = sched
				oo.IntraJobs = jobs
				res, rep, err := Run(context.Background(), oo)
				if err != nil {
					t.Fatalf("%s seed %d (sched=%v jobs=%d): %v", name, seed, sched, jobs, err)
				}
				if !rep.Ok() {
					t.Fatalf("%s seed %d (sched=%v jobs=%d) diverged from the oracle:\n%s",
						name, seed, sched, jobs, rep)
				}
				rep.Retired = res.M.Retired
				return rep
			}
			ref := run(sim.SchedTick, 0)
			for _, v := range []struct {
				label string
				sched sim.SchedMode
				jobs  int
			}{{"wheel", sim.SchedWheel, 0}, {"wheel+par", sim.SchedWheel, 2}} {
				got := run(v.sched, v.jobs)
				if got.Retired != ref.Retired || got.Transitions != ref.Transitions {
					t.Errorf("%s seed %d: %s engine changed timing-visible counts (retired %d vs %d, transitions %d vs %d)",
						name, seed, v.label, got.Retired, ref.Retired, got.Transitions, ref.Transitions)
				}
				for i := range got.DigestTrail {
					a, b := got.DigestTrail[i], ref.DigestTrail[i]
					if len(a) != len(b) {
						t.Fatalf("%s seed %d core %d: %s digest trail lengths differ (%d vs %d)",
							name, seed, i, v.label, len(a), len(b))
					}
					for j := range a {
						if a[j] != b[j] {
							t.Fatalf("%s seed %d core %d: %s digest checkpoint %d differs (%#x vs %#x)",
								name, seed, i, v.label, j, a[j], b[j])
						}
					}
				}
			}
		}
	}
}

// TestPerfectL1iUpperBounds checks the ordering metamorphic property: a
// perfect L1i (every fetch hits) upper-bounds the IPC of every real design —
// instruction prefetching can only approach it, never beat it.
func TestPerfectL1iUpperBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering property needs a longer window than the race budget allows")
	}
	perfect := testOptions(prefetch.Catalog()[0], 1)
	perfect.Measure = 8192
	perfect.Strict = false
	cc := core.DefaultConfig()
	cc.PerfectL1i = true
	perfect.Core = &cc
	pres, prep, err := Run(context.Background(), perfect)
	if err != nil {
		t.Fatal(err)
	}
	if !prep.Ok() {
		t.Fatalf("perfect-L1i run diverged:\n%s", prep)
	}
	bound := pres.M.IPC()
	if bound <= 0 {
		t.Fatalf("degenerate perfect-L1i IPC %v", bound)
	}
	for _, entry := range prefetch.Catalog() {
		o := testOptions(entry, 1)
		o.Measure = 8192
		o.Strict = false // same core config as the perfect run, minus PerfectL1i
		res, rep, err := Run(context.Background(), o)
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		if !rep.Ok() {
			t.Fatalf("%s diverged:\n%s", entry.Name, rep)
		}
		// Allow 1% slack for window-edge effects (instructions in flight at
		// the measurement boundary).
		if ipc := res.M.IPC(); ipc > bound*1.01 {
			t.Errorf("%s IPC %.4f exceeds perfect-L1i bound %.4f", entry.Name, ipc, bound)
		}
	}
}

// TestCheckpointResumeDifferentialTransparent proves checkpoint/resume is
// invisible to the differential harness: a run interrupted mid-measurement
// and resumed from its snapshot stays divergence-free (the oracle's walkers
// and the shim's lockstep position are part of the snapshot) and converges
// to the uninterrupted run's metrics and stream digests bit for bit.
func TestCheckpointResumeDifferentialTransparent(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint cadence needs a multi-thousand-cycle window")
	}
	entry := prefetch.Catalog()[10] // SN4L+Dis+BTB
	o := testOptions(entry, 2)
	// Checkpoints land on the 1024-cycle poll cadence: with warm 2048 and
	// measure 18000, snapshots at cycles 8192 and 16384 are both strictly
	// inside the measurement window.
	o.Warm = 2048
	o.Measure = 18000
	o.CheckpointEvery = 8192
	o.CheckpointPath = filepath.Join(t.TempDir(), "difftest.ckpt")

	straightRes, straightRep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !straightRep.Ok() {
		t.Fatalf("straight run diverged:\n%s", straightRep)
	}
	if _, err := os.Stat(o.CheckpointPath); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}

	resume := o
	resume.ResumeFrom = o.CheckpointPath
	resume.CheckpointEvery = 0
	resume.CheckpointPath = ""
	resumedRes, resumedRep, err := Run(context.Background(), resume)
	if err != nil {
		t.Fatal(err)
	}
	if !resumedRep.Ok() {
		t.Fatalf("resumed run diverged (oracle state not restored?):\n%s", resumedRep)
	}
	if resumedRes.M != straightRes.M {
		t.Fatalf("resumed metrics differ from uninterrupted run:\n got %+v\nwant %+v",
			resumedRes.M, straightRes.M)
	}
	if resumedRep.Retired != straightRep.Retired || resumedRep.Transitions != straightRep.Transitions {
		t.Fatalf("resumed shim coverage differs: retired %d/%d transitions %d/%d",
			resumedRep.Retired, straightRep.Retired, resumedRep.Transitions, straightRep.Transitions)
	}
	for i := range straightRep.DigestTrail {
		a, b := straightRep.DigestTrail[i], resumedRep.DigestTrail[i]
		if len(a) != len(b) {
			t.Fatalf("core %d digest trail length %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("core %d digest checkpoint %d differs after resume", i, j)
			}
		}
	}
}
