// Package difftest is the differential validation harness: it drives the
// timing simulator and the functional reference model (internal/oracle) in
// lockstep over the same seeds and asserts they observe the same
// architecture. The paper's conclusions rest on every frontend design being
// architecturally inert — free to change *when* blocks arrive, forbidden to
// change *what* retires — and this harness is the machine-checked form of
// that invariant.
//
// The mechanism is a Shim: a prefetch.Design wrapper installed between the
// core and the real design. The core cannot tell it is being watched — the
// shim forwards every hook and capability unchanged — but every OnRetire is
// checked against the oracle's retired stream, every OnDemand against the
// oracle's block-transition stream, and (in strict mode) every first-touch
// hit against the set of prefetches the design actually issued through the
// Env. The first disagreement is captured with its cycle, so the report can
// dump the surrounding event-trace window from the PR-3 observability layer
// for triage.
package difftest

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"dnc/internal/cache"
	wl "dnc/internal/cfg"
	"dnc/internal/checkpoint"
	"dnc/internal/core"
	"dnc/internal/isa"
	"dnc/internal/obs"
	"dnc/internal/oracle"
	"dnc/internal/prefetch"
	"dnc/internal/sim"
)

// maxDivergences bounds how many divergences one shim records. After the
// first divergence the oracle and the simulator are out of step, so later
// records mostly restate the first; a few extras help triage cascades.
const maxDivergences = 8

// digestStride is how often (in retired instructions) a shim checkpoints
// its observed-stream digest for cross-design comparison.
const digestStride = 1024

// windowCycles is the half-width of the event-trace window dumped around
// the first divergence.
const windowCycles = 256

// Divergence is one disagreement between the timing simulator and the
// reference model.
type Divergence struct {
	Core  int
	Cycle uint64
	// Kind is the violated invariant: "retire" (retired stream),
	// "transition" (demand block-transition stream), or "first-touch-hit"
	// (a block hit on first touch without a recorded prefetch — phantom
	// residency, strict mode only).
	Kind string
	// Index is the ordinal within the stream the divergence occurred in
	// (retired instructions or transitions observed by this core so far).
	Index uint64
	Want  string
	Got   string
}

func (d Divergence) String() string {
	return fmt.Sprintf("core %d cycle %d %s[%d]: want %s, got %s",
		d.Core, d.Cycle, d.Kind, d.Index, d.Want, d.Got)
}

// Shim wraps a real design, forwarding everything while checking the
// core-to-design traffic against the oracle. It implements prefetch.Design;
// Name reports the inner design's name so checkpoints, results and reports
// are indistinguishable from an unshimmed run.
type Shim struct {
	inner  prefetch.Design
	model  *oracle.Model
	coreID int
	strict bool
	env    prefetch.Env // the raw core Env (for Cycle at divergence time)

	// issued records every block the inner design successfully prefetched
	// through the Env (cache-direct and buffered alike).
	issued map[isa.BlockID]struct{}

	// pending is the block of a transition announced as a miss whose
	// completion retry (the core re-runs demandAccess after the fill
	// arrives, reporting a hit) has not been observed yet. The completion
	// must not consume an oracle transition.
	pending     isa.BlockID
	havePending bool

	retired     uint64
	transitions uint64

	// obsDigest folds the *observed* retired tuples (as opposed to the
	// oracle's, which Model.Digest folds) so cross-design stream-identity
	// checks compare two independently computed values.
	obsDigest uint64
	// digestTrail holds obsDigest snapshots every digestStride retires.
	digestTrail []uint64

	divergences []Divergence
}

// NewShim wraps inner with a lockstep checker replaying the same committed
// stream through model. coreID labels divergences; strict additionally
// checks the phantom-residency invariant, which requires the run to disable
// wrong-path fetch pollution (core.Config.WrongPathBlocks = 0).
func NewShim(inner prefetch.Design, model *oracle.Model, coreID int, strict bool) *Shim {
	return &Shim{
		inner:     inner,
		model:     model,
		coreID:    coreID,
		strict:    strict,
		issued:    make(map[isa.BlockID]struct{}),
		obsDigest: 14695981039346656037,
	}
}

// Inner returns the wrapped design (harness probes reach through the shim).
func (s *Shim) Inner() prefetch.Design { return s.inner }

// Divergences returns what the shim caught, in observation order.
func (s *Shim) Divergences() []Divergence { return s.divergences }

// Ok reports a divergence-free run so far.
func (s *Shim) Ok() bool { return len(s.divergences) == 0 }

// Model exposes the oracle replaying this core's stream.
func (s *Shim) Model() *oracle.Model { return s.model }

func (s *Shim) diverge(kind string, index uint64, want, got string) {
	if len(s.divergences) >= maxDivergences {
		return
	}
	var cycle uint64
	if s.env != nil {
		cycle = s.env.Cycle()
	}
	s.divergences = append(s.divergences, Divergence{
		Core: s.coreID, Cycle: cycle, Kind: kind, Index: index, Want: want, Got: got,
	})
}

// shimEnv interposes the Env the inner design sees, recording successful
// prefetch issues. It embeds the core's Env so every capability forwards
// unchanged; TraceDiscontinuity is forwarded explicitly because interface
// embedding does not satisfy optional-capability type assertions.
type shimEnv struct {
	prefetch.Env
	s *Shim
}

func (e *shimEnv) IssuePrefetch(b isa.BlockID, buffered bool) bool {
	ok := e.Env.IssuePrefetch(b, buffered)
	if ok {
		e.s.issued[b] = struct{}{}
	}
	return ok
}

func (e *shimEnv) TraceDiscontinuity(b isa.BlockID) {
	if ts, ok := e.Env.(prefetch.TraceSink); ok {
		ts.TraceDiscontinuity(b)
	}
}

// ---- prefetch.Design ----

// Name implements Design, reporting the inner design's name so shimmed runs
// (and their checkpoints) are identity-compatible with unshimmed ones.
func (s *Shim) Name() string { return s.inner.Name() }

// Bind implements Design.
func (s *Shim) Bind(env prefetch.Env) {
	s.env = env
	s.inner.Bind(&shimEnv{Env: env, s: s})
}

// BTBLookup implements Design.
func (s *Shim) BTBLookup(pc isa.Addr, kind isa.Kind) (isa.Addr, bool) {
	return s.inner.BTBLookup(pc, kind)
}

// BTBCommit implements Design.
func (s *Shim) BTBCommit(pc isa.Addr, kind isa.Kind, target isa.Addr, taken bool) {
	s.inner.BTBCommit(pc, kind, target, taken)
}

// OnDemand implements Design: check the transition against the oracle's
// collapsed block stream, then forward. The core calls OnDemand once per
// transition that hits, and twice per transition that misses (the miss,
// then the hit when the retry after the fill succeeds); only the first call
// of a transition consumes an oracle transition.
func (s *Shim) OnDemand(b isa.BlockID, hit bool, last2 [2]isa.Addr) {
	if s.havePending && b == s.pending {
		// Completion retry of an announced miss (or a repeat miss if the
		// fill was evicted before the retry): same transition, no draw.
		if hit {
			s.havePending = false
		}
		s.inner.OnDemand(b, hit, last2)
		return
	}
	tr := s.model.NextTransition()
	s.transitions++
	s.havePending = !hit
	s.pending = b
	if tr.Block != b {
		s.diverge("transition", s.transitions,
			fmt.Sprintf("block %d", tr.Block), fmt.Sprintf("block %d", b))
	} else if s.strict && tr.First && hit {
		if _, ok := s.issued[b]; !ok {
			s.diverge("first-touch-hit", s.transitions,
				fmt.Sprintf("block %d absent on first touch (no prefetch issued)", b),
				"L1i hit")
		}
	}
	s.inner.OnDemand(b, hit, last2)
}

// OnFill implements Design.
func (s *Shim) OnFill(b isa.BlockID, prefetch bool) { s.inner.OnFill(b, prefetch) }

// OnEvict implements Design.
func (s *Shim) OnEvict(ev cache.Evicted) { s.inner.OnEvict(ev) }

// OnRetire implements Design: check the committed instruction against the
// oracle's retired stream, then forward.
func (s *Shim) OnRetire(inst isa.Inst, taken bool, target isa.Addr) {
	var want wl.Step
	s.model.NextRetire(&want)
	s.retired++
	if want.Inst.PC != inst.PC || want.Inst.Kind != inst.Kind ||
		want.Taken != taken || want.TargetPC != target {
		s.diverge("retire", s.retired,
			fmt.Sprintf("pc=%#x kind=%d taken=%v target=%#x",
				want.Inst.PC, want.Inst.Kind, want.Taken, want.TargetPC),
			fmt.Sprintf("pc=%#x kind=%d taken=%v target=%#x",
				inst.PC, inst.Kind, taken, target))
	}
	for _, v := range [...]uint64{uint64(inst.PC), uint64(inst.Kind), b2u(taken), uint64(target)} {
		for i := 0; i < 8; i++ {
			s.obsDigest ^= v & 0xFF
			s.obsDigest *= 1099511628211
			v >>= 8
		}
	}
	if s.retired%digestStride == 0 {
		s.digestTrail = append(s.digestTrail, s.obsDigest)
	}
	s.inner.OnRetire(inst, taken, target)
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// FTQGate implements Design.
func (s *Shim) FTQGate(pc isa.Addr) bool { return s.inner.FTQGate(pc) }

// OnRedirect implements Design.
func (s *Shim) OnRedirect(pc isa.Addr) { s.inner.OnRedirect(pc) }

// Tick implements Design.
func (s *Shim) Tick() { s.inner.Tick() }

// Quiescent forwards the inner design's fast-forward eligibility
// (prefetch.Quiescer). Without this forwarding, shimmed runs would never
// fast-forward and the metamorphic fast-forward-vs-reference tests would be
// vacuous. The shim itself adds no per-cycle state: its checks fire only on
// design hooks (OnDemand/OnRetire/...), all of which are frozen during a
// pure-stall window, so the shim is quiescent whenever the inner design is.
func (s *Shim) Quiescent() bool {
	if q, ok := s.inner.(prefetch.Quiescer); ok {
		return q.Quiescent()
	}
	return false
}

// StorageBits implements Design.
func (s *Shim) StorageBits() int { return s.inner.StorageBits() }

// Audit forwards the optional structural-audit capability so shimmed runs
// keep the inner design's invariants under sim.Audit.
func (s *Shim) Audit() []error {
	if a, ok := s.inner.(interface{ Audit() []error }); ok {
		return a.Audit()
	}
	return nil
}

// Snapshot implements Design: the shim persists the oracle and its own
// lockstep position ahead of the inner design's state, so a resumed run is
// differential-transparent — the restored oracle continues checking from
// the interruption point.
func (s *Shim) Snapshot(e *checkpoint.Encoder) {
	e.Begin("difftest-shim")
	s.model.Snapshot(e)
	e.U64(s.retired)
	e.U64(s.transitions)
	e.Bool(s.havePending)
	e.U64(uint64(s.pending))
	e.U64(s.obsDigest)
	e.Int(len(s.digestTrail))
	for _, d := range s.digestTrail {
		e.U64(d)
	}
	issued := make([]isa.BlockID, 0, len(s.issued))
	for b := range s.issued {
		issued = append(issued, b)
	}
	sort.Slice(issued, func(i, j int) bool { return issued[i] < issued[j] })
	e.Int(len(issued))
	for _, b := range issued {
		e.U64(uint64(b))
	}
	e.End()
	s.inner.Snapshot(e)
}

// Restore implements Design.
func (s *Shim) Restore(d *checkpoint.Decoder) error {
	if err := d.Begin("difftest-shim"); err != nil {
		return err
	}
	if err := s.model.Restore(d); err != nil {
		return err
	}
	s.retired = d.U64()
	s.transitions = d.U64()
	s.havePending = d.Bool()
	s.pending = isa.BlockID(d.U64())
	s.obsDigest = d.U64()
	n := d.Count(8)
	s.digestTrail = make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		s.digestTrail = append(s.digestTrail, d.U64())
	}
	n = d.Count(8)
	s.issued = make(map[isa.BlockID]struct{}, n)
	for i := 0; i < n; i++ {
		s.issued[isa.BlockID(d.U64())] = struct{}{}
	}
	if err := d.End(); err != nil {
		return err
	}
	return s.inner.Restore(d)
}

// ---- differential runner ----

// Options configures one differential run.
type Options struct {
	// Workload and Seed identify the committed streams (per-core walker
	// seeds derive from Seed exactly as in a plain run).
	Workload wl.Params
	Seed     int64
	// NewDesign constructs the design under test (one instance per core).
	NewDesign func() prefetch.Design
	// PrefetchBufferEntries is the design's prefetch-buffer requirement
	// (prefetch.CatalogEntry.PrefetchBufferEntries).
	PrefetchBufferEntries int
	Cores                 int
	Warm, Measure         uint64
	// Core optionally overrides the core configuration; nil selects the
	// defaults.
	Core *core.Config
	// Strict enables the phantom-residency check (first-touch hits must be
	// backed by an issued prefetch) and forces WrongPathBlocks to 0, since
	// wrong-path fills legitimately create first-touch hits.
	Strict bool
	// TraceEvents sizes the event-trace ring used for divergence windows
	// (0 selects a small default).
	TraceEvents int
	// Wrap, when non-nil, passes each core's committed stream through a
	// mutator (fault injection; see sim.RunInjected). Injected runs cannot
	// checkpoint.
	Wrap sim.StreamWrapper
	// CheckpointEvery/CheckpointPath/ResumeFrom pass through to the
	// simulator, letting tests prove checkpoint/resume is
	// differential-transparent.
	CheckpointEvery uint64
	CheckpointPath  string
	ResumeFrom      string
	// DisableFastForward passes through to the simulator: the reference
	// configuration for the metamorphic fast-forward equivalence tests.
	DisableFastForward bool
	// Sched and IntraJobs pass through to the simulator, so the engine
	// equivalence tests can run the oracle lockstep under every engine
	// (tick reference, event-driven wheel, sharded wheel).
	Sched     sim.SchedMode
	IntraJobs int
}

// Report is the outcome of one differential run.
type Report struct {
	Workload string
	Design   string
	Seed     int64
	Cores    int

	// Aggregate reference statistics (summed over cores).
	Retired      uint64
	Transitions  uint64
	FirstTouches uint64
	SeqFirst     uint64
	DiscFirst    uint64
	BranchSites  int

	// Divergences from all cores, ordered by (cycle, core). Empty means
	// the run was equivalent to the reference model.
	Divergences []Divergence
	// Window is the event-trace slice around the first divergence (empty
	// when the run was clean or tracing was disabled).
	Window []obs.Event
	// DigestTrail holds each core's observed-stream digest checkpoints
	// (every digestStride retires) for cross-design identity checks.
	DigestTrail [][]uint64
}

// Ok reports a divergence-free run.
func (r *Report) Ok() bool { return len(r.Divergences) == 0 }

// String renders the report; with divergences it shows the first one and
// the surrounding event window for triage.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "difftest %s on %s seed %d (%d cores): ", r.Design, r.Workload, r.Seed, r.Cores)
	if r.Ok() {
		fmt.Fprintf(&b, "OK — %d retired, %d transitions (%d first-touch: %d seq, %d disc), %d branch sites",
			r.Retired, r.Transitions, r.FirstTouches, r.SeqFirst, r.DiscFirst, r.BranchSites)
		return b.String()
	}
	fmt.Fprintf(&b, "%d divergence(s)\n", len(r.Divergences))
	fmt.Fprintf(&b, "first divergence: %s\n", r.Divergences[0])
	for _, d := range r.Divergences[1:] {
		fmt.Fprintf(&b, "  then: %s\n", d)
	}
	if len(r.Window) > 0 {
		fmt.Fprintf(&b, "event window (±%d cycles around cycle %d):\n",
			windowCycles, r.Divergences[0].Cycle)
		for _, ev := range r.Window {
			fmt.Fprintf(&b, "  cycle %-10d core %-2d %-16s arg=%d dur=%d\n",
				ev.Cycle, ev.Core, ev.Kind, ev.Arg, ev.Dur)
		}
	} else {
		b.WriteString("event window unavailable (tracer disabled or events evicted)")
	}
	return b.String()
}

// Run executes one simulation with every core's design shimmed against the
// oracle and returns the simulator result plus the differential report. The
// error covers simulator failures only; divergences are data, reported in
// the Report.
func Run(ctx context.Context, o Options) (sim.Result, *Report, error) {
	prog := sim.Program(o.Workload)

	cc := core.DefaultConfig()
	if o.Core != nil {
		cc = *o.Core
	}
	if o.Strict {
		// Wrong-path fills install blocks without design involvement,
		// which would trip the phantom-residency check.
		cc.WrongPathBlocks = 0
	}
	cc.PrefetchBufferEntries = o.PrefetchBufferEntries

	trace := o.TraceEvents
	if trace == 0 {
		trace = 1 << 12
	}

	var shims []*Shim
	rc := sim.RunConfig{
		Workload:           o.Workload,
		Cores:              o.Cores,
		WarmCycles:         o.Warm,
		MeasureCycles:      o.Measure,
		Seed:               o.Seed,
		Core:               cc,
		Obs:                &obs.Config{TraceEvents: trace},
		CheckpointEvery:    o.CheckpointEvery,
		CheckpointPath:     o.CheckpointPath,
		ResumeFrom:         o.ResumeFrom,
		DisableFastForward: o.DisableFastForward,
		Sched:              o.Sched,
		IntraJobs:          o.IntraJobs,
		NewDesign: func() prefetch.Design {
			i := len(shims)
			s := NewShim(o.NewDesign(), oracle.New(prog, sim.WalkerSeed(o.Seed, i)), i, o.Strict)
			shims = append(shims, s)
			return s
		},
	}

	var (
		res sim.Result
		err error
	)
	if o.Wrap != nil {
		res, err = sim.RunInjected(ctx, rc, o.Wrap)
	} else {
		res, err = sim.RunChecked(ctx, rc)
	}
	if err != nil {
		return res, nil, err
	}
	return res, buildReport(&o, &res, shims), nil
}

func buildReport(o *Options, res *sim.Result, shims []*Shim) *Report {
	rep := &Report{
		Workload:    o.Workload.Name,
		Design:      res.Design,
		Seed:        o.Seed,
		Cores:       len(shims),
		DigestTrail: make([][]uint64, len(shims)),
	}
	for i, s := range shims {
		m := s.Model()
		rep.Retired += s.retired
		rep.Transitions += s.transitions
		rep.FirstTouches += m.FirstTouches
		rep.SeqFirst += m.SeqFirst
		rep.DiscFirst += m.DiscFirst
		rep.BranchSites += m.BranchSites()
		rep.Divergences = append(rep.Divergences, s.Divergences()...)
		rep.DigestTrail[i] = append([]uint64(nil), s.digestTrail...)
	}
	sort.SliceStable(rep.Divergences, func(i, j int) bool {
		a, b := rep.Divergences[i], rep.Divergences[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		return a.Core < b.Core
	})
	if len(rep.Divergences) > 0 && res.Obs != nil {
		at := rep.Divergences[0].Cycle
		lo := uint64(0)
		if at > windowCycles {
			lo = at - windowCycles
		}
		hi := at + windowCycles
		for _, ev := range res.Obs.Events {
			if ev.Cycle >= lo && ev.Cycle <= hi {
				rep.Window = append(rep.Window, ev)
			}
		}
	}
	return rep
}
