package difftest

import (
	"context"
	"strings"
	"testing"

	wl "dnc/internal/cfg"
	"dnc/internal/isa"
	"dnc/internal/oracle"
	"dnc/internal/prefetch"
	"dnc/internal/sim"
)

// testWorkload is a small footprint so the whole catalog × seed matrix stays
// fast enough for the race job; small is also harder (more capacity churn).
func testWorkload() wl.Params {
	return wl.Params{
		Name:           "difftest",
		Mode:           isa.Fixed,
		FootprintBytes: 256 << 10,
		GenSeed:        11,
	}
}

func testOptions(entry prefetch.CatalogEntry, seed int64) Options {
	return Options{
		Workload:              testWorkload(),
		Seed:                  seed,
		NewDesign:             entry.New,
		PrefetchBufferEntries: entry.PrefetchBufferEntries,
		// Warm is shorter than the pipeline depth so nothing retires before
		// the measure window: the machine's Retired then equals the count
		// the shims checked, making coverage provable below.
		Cores:   2,
		Warm:    8,
		Measure: 4096,
		Strict:  true,
	}
}

// TestAllDesignsMatchOracle is the acceptance matrix: every catalog design,
// three seeds, strict mode. Zero divergences proves every design is
// architecturally inert — timing may differ, the committed stream may not.
func TestAllDesignsMatchOracle(t *testing.T) {
	seeds := []int64{1, 2, 3}
	measure := uint64(4096)
	if testing.Short() {
		measure = 1536
	}
	for _, entry := range prefetch.Catalog() {
		entry := entry
		t.Run(entry.Name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				o := testOptions(entry, seed)
				o.Measure = measure
				res, rep, err := Run(context.Background(), o)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !rep.Ok() {
					t.Fatalf("seed %d diverged:\n%s", seed, rep)
				}
				if rep.Retired == 0 || res.M.Retired == 0 {
					t.Fatalf("seed %d: nothing retired (shim %d, sim %d)",
						seed, rep.Retired, res.M.Retired)
				}
				// Every committed instruction must have been checked: the
				// shims' retire count is the machine's.
				if rep.Retired != res.M.Retired {
					t.Fatalf("seed %d: shim checked %d retires, machine retired %d",
						seed, rep.Retired, res.M.Retired)
				}
				if rep.Transitions == 0 || rep.FirstTouches == 0 {
					t.Fatalf("seed %d: degenerate transition coverage: %+v", seed, rep)
				}
				if rep.SeqFirst+rep.DiscFirst != rep.FirstTouches {
					t.Fatalf("seed %d: first-touch classification doesn't partition: %+v", seed, rep)
				}
			}
		})
	}
}

// TestVariableModeMatchesOracle covers the variable-length ISA path (branch
// footprints, DV-LLC) on one representative design.
func TestVariableModeMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("fixed-mode matrix covers the shim in short mode")
	}
	p := testWorkload()
	p.Mode = isa.Variable
	for _, entry := range prefetch.Catalog() {
		if entry.Name != "SN4L+Dis+BTB" && entry.Name != "shotgun" {
			continue
		}
		o := testOptions(entry, 1)
		o.Workload = p
		_, rep, err := Run(context.Background(), o)
		if err != nil {
			t.Fatalf("%s: %v", entry.Name, err)
		}
		if !rep.Ok() {
			t.Fatalf("%s diverged:\n%s", entry.Name, rep)
		}
	}
}

// mutateStream wraps a Stream, rewriting step n through fn.
type mutateStream struct {
	inner wl.Stream
	n     uint64
	count uint64
	fn    func(*wl.Step)
}

func (m *mutateStream) Next(s *wl.Step) {
	m.inner.Next(s)
	m.count++
	if m.count == m.n {
		m.fn(s)
	}
}

// injectOn returns a wrapper that mutates core 0's stream at step n.
func injectOn(n uint64, fn func(*wl.Step)) sim.StreamWrapper {
	return func(i int, s wl.Stream) wl.Stream {
		if i != 0 {
			return s
		}
		return &mutateStream{inner: s, n: n, fn: fn}
	}
}

// TestInjectedTakenFlipCaught injects the canonical simulator bug class — a
// corrupted committed stream, standing in for a walker/replay/decode defect —
// and asserts the harness reports the first divergent retire on the right
// core with a populated event window.
func TestInjectedTakenFlipCaught(t *testing.T) {
	o := testOptions(prefetch.Catalog()[0], 1)
	o.Strict = false // keep default core config; the bug is architectural
	o.Measure = 4096
	o.Wrap = injectOn(600, func(s *wl.Step) { s.Taken = !s.Taken })
	_, rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("injected Taken flip not caught")
	}
	first := rep.Divergences[0]
	if first.Kind != "retire" {
		t.Fatalf("first divergence kind = %q, want retire: %s", first.Kind, first)
	}
	if first.Core != 0 {
		t.Fatalf("divergence attributed to core %d, want 0: %s", first.Core, first)
	}
	if first.Index != 600 {
		t.Fatalf("first divergent retire at index %d, want 600: %s", first.Index, first)
	}
	out := rep.String()
	if !strings.Contains(out, "first divergence") {
		t.Fatalf("report missing first-divergence line:\n%s", out)
	}
	if len(rep.Window) == 0 {
		t.Fatalf("report has no event window around cycle %d:\n%s", first.Cycle, out)
	}
	for _, ev := range rep.Window {
		if ev.Cycle+windowCycles < first.Cycle || ev.Cycle > first.Cycle+windowCycles {
			t.Fatalf("window event at cycle %d outside ±%d of %d", ev.Cycle, windowCycles, first.Cycle)
		}
	}
}

// TestInjectedPCShiftCaught redirects one committed instruction into a
// different cache block and asserts the block-transition stream check fires.
func TestInjectedPCShiftCaught(t *testing.T) {
	o := testOptions(prefetch.Catalog()[1], 2) // NL: exercises a prefetching design
	o.Strict = false
	o.Measure = 4096
	o.Wrap = injectOn(500, func(s *wl.Step) { s.Inst.PC += 64 })
	_, rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("injected PC shift not caught")
	}
	kinds := map[string]bool{}
	for _, d := range rep.Divergences {
		kinds[d.Kind] = true
	}
	if !kinds["transition"] && !kinds["retire"] {
		t.Fatalf("PC shift produced neither transition nor retire divergence: %s", rep)
	}
}

// TestPhantomResidencyCaught unit-drives the strict first-touch invariant:
// a buggy prefetch path that installs blocks without going through
// Env.IssuePrefetch (phantom residency) must be reported. The real Env makes
// this unrepresentable, so the bug is injected at the hook level.
func TestPhantomResidencyCaught(t *testing.T) {
	prog := sim.Program(testWorkload())
	// A probe oracle with the same seed reveals which block the shim's
	// oracle will expect first.
	first := oracle.New(prog, sim.WalkerSeed(1, 0)).NextTransition()
	s := NewShim(prefetch.NewBaseline(64), oracle.New(prog, sim.WalkerSeed(1, 0)), 0, true)
	// First touch of the entry block reported as a hit, with no recorded
	// prefetch: exactly what a buggy install path would produce.
	s.OnDemand(first.Block, true, [2]isa.Addr{})
	if s.Ok() {
		t.Fatal("phantom first-touch hit not caught")
	}
	d := s.Divergences()[0]
	if d.Kind != "first-touch-hit" {
		t.Fatalf("kind = %q, want first-touch-hit", d.Kind)
	}
}

// TestDeterministicRuns pins run-to-run determinism: two identical runs must
// produce identical metrics and identical observed-stream digest trails.
// This is the regression guard for map-iteration-order (or other scheduling)
// nondeterminism anywhere on the committed path.
func TestDeterministicRuns(t *testing.T) {
	entry := prefetch.Catalog()[10] // SN4L+Dis+BTB: the most stateful proposed design
	run := func() (sim.Result, *Report) {
		res, rep, err := Run(context.Background(), testOptions(entry, 3))
		if err != nil {
			t.Fatal(err)
		}
		return res, rep
	}
	r1, p1 := run()
	r2, p2 := run()
	if r1.M != r2.M {
		t.Fatalf("metrics differ across identical runs:\n%+v\n%+v", r1.M, r2.M)
	}
	if len(p1.DigestTrail) != len(p2.DigestTrail) {
		t.Fatalf("digest trail core counts differ: %d vs %d", len(p1.DigestTrail), len(p2.DigestTrail))
	}
	for i := range p1.DigestTrail {
		a, b := p1.DigestTrail[i], p2.DigestTrail[i]
		if len(a) != len(b) {
			t.Fatalf("core %d: digest trail lengths differ: %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("core %d: digest trail diverges at checkpoint %d", i, j)
			}
		}
	}
}
