package difftest

import (
	"context"
	"fmt"
	"testing"

	wl "dnc/internal/cfg"
	"dnc/internal/isa"
	"dnc/internal/prefetch"
	"dnc/internal/sim"
)

// genWorkload derives a valid workload parameter set from quantized knobs.
// Quantization matters twice over: it keeps every generated set inside the
// generator's valid region (branch fractions summing below 1), and it bounds
// the number of distinct programs the sim-level cache can ever hold, so
// long fuzzing sessions don't grow memory without limit.
func genWorkload(genSeed, footSel, condSel, callSel, modeSel uint8) wl.Params {
	footprints := []int{64 << 10, 128 << 10, 256 << 10}
	mode := isa.Fixed
	if modeSel%2 == 1 {
		mode = isa.Variable
	}
	p := wl.Params{
		Name:           "fuzz",
		Mode:           mode,
		FootprintBytes: footprints[int(footSel)%len(footprints)],
		// CondFrac in {0.20, 0.25, …, 0.55}, CallFrac in {0.05, …, 0.30}:
		// with JumpFrac 0.08 the terminator fractions always sum below 1.
		CondFrac: 0.20 + 0.05*float64(condSel%8),
		JumpFrac: 0.08,
		CallFrac: 0.05 + 0.05*float64(callSel%6),
		GenSeed:  int64(genSeed%8) + 1,
	}
	p.Name = fmt.Sprintf("fuzz-%d-%d-%d-%d-%d",
		genSeed%8, int(footSel)%len(footprints), condSel%8, callSel%6, modeSel%2)
	return p
}

// checkOnce runs one design differentially over one generated workload and
// returns the report (nil error means the simulator itself ran).
func checkOnce(p wl.Params, designIdx int, seed int64, measure uint64) (*Report, error) {
	cat := prefetch.Catalog()
	entry := cat[designIdx%len(cat)]
	_, rep, err := Run(context.Background(), Options{
		Workload:              p,
		Seed:                  seed,
		NewDesign:             entry.New,
		PrefetchBufferEntries: entry.PrefetchBufferEntries,
		Cores:                 1,
		Warm:                  8,
		Measure:               measure,
		Strict:                true,
	})
	return rep, err
}

// TestPropertyRandomWorkloads sweeps pseudo-random workload parameter sets
// through the differential harness, rotating through the design catalog.
// Any divergence is first shrunk (see shrink) so the failure message carries
// a minimal reproduction instead of the original random case.
func TestPropertyRandomWorkloads(t *testing.T) {
	cases := 24
	measure := uint64(1024)
	if testing.Short() {
		cases = 8
	}
	rng := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < cases; i++ {
		// SplitMix64 step: deterministic, seed-independent case generation.
		rng += 0x9E3779B97F4A7C15
		z := rng
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31

		p := genWorkload(uint8(z), uint8(z>>8), uint8(z>>16), uint8(z>>24), uint8(z>>32))
		designIdx := int(z>>40) % len(prefetch.Catalog())
		rep, err := checkOnce(p, designIdx, 1, measure)
		if err != nil {
			t.Fatalf("case %d (%s, design %d): %v", i, p.Name, designIdx, err)
		}
		if !rep.Ok() {
			small, smallMeasure := shrink(t, p, designIdx, 1, measure, nil)
			t.Fatalf("case %d diverged; minimal reproduction %+v (measure %d) design %d:\n%s",
				i, small, smallMeasure, designIdx, rep)
		}
	}
}

// shrink greedily minimizes a divergent case: it repeatedly tries the
// candidate reductions (shorter window, smaller footprint, defaulted branch
// mix) and keeps any that still diverge, returning the smallest workload
// that reproduces. wrap carries an injected fault through the shrink so the
// shrinker itself is testable.
func shrink(t *testing.T, p wl.Params, designIdx int, seed int64, measure uint64, wrap sim.StreamWrapper) (wl.Params, uint64) {
	t.Helper()
	diverges := func(q wl.Params, m uint64) bool {
		cat := prefetch.Catalog()
		entry := cat[designIdx%len(cat)]
		_, rep, err := Run(context.Background(), Options{
			Workload:              q,
			Seed:                  seed,
			NewDesign:             entry.New,
			PrefetchBufferEntries: entry.PrefetchBufferEntries,
			Cores:                 1,
			Warm:                  8,
			Measure:               m,
			Strict:                true,
			Wrap:                  wrap,
		})
		return err == nil && !rep.Ok()
	}
	for improved := true; improved; {
		improved = false
		if measure > 128 && diverges(p, measure/2) {
			measure /= 2
			improved = true
		}
		if p.FootprintBytes > 64<<10 {
			q := p
			q.FootprintBytes /= 2
			if diverges(q, measure) {
				p = q
				improved = true
			}
		}
		if p.CondFrac != 0 || p.CallFrac != 0 {
			q := p
			q.CondFrac, q.JumpFrac, q.CallFrac = 0, 0, 0 // generator defaults
			if diverges(q, measure) {
				p = q
				improved = true
			}
		}
	}
	t.Logf("shrunk to footprint=%dKB measure=%d params=%+v", p.FootprintBytes>>10, measure, p)
	return p, measure
}

// TestShrinkMinimizesInjectedFault exercises the shrinker on a known-bad
// case: with a stream corruption injected at step 100, shrinking must keep
// the divergence while reducing the window and footprint to their floors.
func TestShrinkMinimizesInjectedFault(t *testing.T) {
	wrap := injectOn(100, func(s *wl.Step) { s.Taken = !s.Taken })
	p := genWorkload(3, 2, 5, 3, 0) // 256 KB footprint, fixed mode
	small, measure := shrink(t, p, 0, 1, 2048, wrap)
	if small.FootprintBytes != 64<<10 {
		t.Errorf("shrinker left footprint at %d KB, want 64", small.FootprintBytes>>10)
	}
	if measure >= 2048 {
		t.Errorf("shrinker failed to reduce the window below %d cycles", measure)
	}
	// The shrunk case must still reproduce.
	cat := prefetch.Catalog()
	_, rep, err := Run(context.Background(), Options{
		Workload: small, Seed: 1, NewDesign: cat[0].New, Cores: 1,
		Warm: 8, Measure: measure, Strict: true, Wrap: wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("shrunk case no longer reproduces the injected divergence")
	}
}

// FuzzWorkloadDifftest is the fuzz-native entry point: the fuzzer explores
// quantized workload shapes and design choices, and any input whose run
// diverges from the oracle (or crashes the simulator) is a finding.
func FuzzWorkloadDifftest(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint8(2), uint8(1), uint8(0), uint8(0), uint8(1))
	f.Add(uint8(3), uint8(1), uint8(5), uint8(3), uint8(1), uint8(9), uint8(2))
	f.Add(uint8(7), uint8(2), uint8(7), uint8(5), uint8(0), uint8(16), uint8(3))
	f.Fuzz(func(t *testing.T, genSeed, footSel, condSel, callSel, modeSel, designSel, seedSel uint8) {
		p := genWorkload(genSeed, footSel, condSel, callSel, modeSel)
		rep, err := checkOnce(p, int(designSel), int64(seedSel%4)+1, 512)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !rep.Ok() {
			t.Fatalf("divergence on %s:\n%s", p.Name, rep)
		}
	})
}
