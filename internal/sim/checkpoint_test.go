package sim

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dnc/internal/isa"
	"dnc/internal/prefetch"
)

// fingerprint marshals everything of a Result that defines run equivalence.
// The design instances are live objects (function values, pointers), so they
// are excluded; their observable effect is already in the metric counters.
func fingerprint(t *testing.T, r Result) string {
	t.Helper()
	r.Designs = nil
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshalling result: %v", err)
	}
	return string(b)
}

func checkpointConfig(t *testing.T, nd func() prefetch.Design) RunConfig {
	rc := checkedConfig()
	if nd != nil {
		rc.NewDesign = nd
	}
	// Window sizes chosen so the last checkpoint (cadence 8192, aligned to
	// the 1024-cycle poll) lands strictly inside the measurement window:
	// checkpoints at 8192, 16384, 24576, 32768 of 40000 total cycles.
	rc.WarmCycles = 20_000
	rc.MeasureCycles = 20_000
	rc.CheckpointEvery = 8192
	rc.CheckpointPath = filepath.Join(t.TempDir(), "run.ckpt")
	return rc
}

// TestCheckpointResumeBitExact is the headline robustness property: a run
// that is interrupted and resumed from its last snapshot produces a result
// byte-identical to the same run executed without interruption.
func TestCheckpointResumeBitExact(t *testing.T) {
	designs := map[string]func() prefetch.Design{
		"baseline": func() prefetch.Design { return prefetch.NewBaseline(2048) },
		"proactive": func() prefetch.Design {
			return prefetch.NewProactive(prefetch.DefaultProactiveConfig())
		},
		"boomerang": func() prefetch.Design { return prefetch.NewBoomerang(prefetch.DefaultBoomerangConfig()) },
	}
	for name, nd := range designs {
		t.Run(name, func(t *testing.T) {
			rc := checkpointConfig(t, nd)
			straight, err := RunChecked(context.Background(), rc)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(rc.CheckpointPath); err != nil {
				t.Fatalf("no checkpoint written: %v", err)
			}

			// Resume from the last snapshot (mid-measurement) and finish the
			// run a second time; the two results must match bit for bit.
			resume := rc
			resume.ResumeFrom = rc.CheckpointPath
			resume.CheckpointEvery = 0
			resume.CheckpointPath = ""
			resumed, err := RunChecked(context.Background(), resume)
			if err != nil {
				t.Fatal(err)
			}
			got, want := fingerprint(t, resumed), fingerprint(t, straight)
			if got != want {
				t.Errorf("resumed run diverged from uninterrupted run:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestCheckpointResumeAfterCancel exercises the crash-shaped path: the run is
// killed mid-flight by context cancellation, then restarted from its last
// snapshot, and must still converge to the uninterrupted result.
func TestCheckpointResumeAfterCancel(t *testing.T) {
	rc := checkpointConfig(t, nil)
	straight, err := RunChecked(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}

	interrupted := rc
	interrupted.CheckpointPath = filepath.Join(t.TempDir(), "interrupted.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		// Kill the run as soon as its first snapshot lands; where exactly the
		// abort strikes after that is the nondeterminism being exercised.
		for {
			if _, serr := os.Stat(interrupted.CheckpointPath); serr == nil {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
	if _, err := RunChecked(ctx, interrupted); err == nil {
		// The race let the run finish; that still leaves a valid snapshot.
		t.Log("cancellation lost the race; run completed")
	}
	if _, err := os.Stat(interrupted.CheckpointPath); err != nil {
		t.Fatalf("no snapshot survived the interruption: %v", err)
	}

	resume := rc
	resume.ResumeFrom = interrupted.CheckpointPath
	resume.CheckpointEvery = 0
	resume.CheckpointPath = ""
	resumed, err := RunChecked(context.Background(), resume)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, resumed), fingerprint(t, straight); got != want {
		t.Errorf("resume after cancellation diverged from uninterrupted run")
	}
}

// TestRunDeterminism is the regression guard for the whole machine model:
// two runs of the same configuration must produce byte-identical results.
// Any nondeterminism (map iteration reaching timing, unseeded randomness)
// breaks both this and checkpoint resume.
func TestRunDeterminism(t *testing.T) {
	rc := checkedConfig()
	a, err := RunChecked(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChecked(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, a) != fingerprint(t, b) {
		t.Error("identical configurations produced different results")
	}
}

// TestSnapshotEncodingDeterministic guards the byte-determinism of the
// snapshot encoder itself (sorted map iteration everywhere): two machines
// built and run identically must serialise identically.
func TestSnapshotEncodingDeterministic(t *testing.T) {
	build := func() []byte {
		rc := applyDefaults(checkedConfig())
		m, err := buildMachine(rc, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer m.close()
		if err := m.runPhase(context.Background(), 5000); err != nil {
			t.Fatal(err)
		}
		return m.encode().Marshal()
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Error("identical machines serialised to different bytes")
	}
}

// TestAuditCleanOnHealthyRun checks the auditor itself: a snapshot of a
// healthy run must restore and audit with zero violations.
func TestAuditCleanOnHealthyRun(t *testing.T) {
	rc := checkpointConfig(t, nil)
	if _, err := RunChecked(context.Background(), rc); err != nil {
		t.Fatal(err)
	}
	violations, err := Audit(rc, rc.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("healthy snapshot audited dirty: %v", errors.Join(func() []error {
			var es []error
			for _, v := range violations {
				es = append(es, v)
			}
			return es
		}()...))
	}
}

// TestAuditCatchesInjectedMSHRLeak seeds structural corruption — an MSHR
// entry whose fill is long overdue, i.e. a leaked slot that fill processing
// can never free — and checks the auditor reports it against the right
// component with its state attached.
func TestAuditCatchesInjectedMSHRLeak(t *testing.T) {
	rc := applyDefaults(checkedConfig())
	m, err := buildMachine(rc, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.close()
	if err := m.runPhase(context.Background(), 5000); err != nil {
		t.Fatal(err)
	}
	if err := m.auditNow(); err != nil {
		t.Fatalf("machine dirty before injection: %v", err)
	}

	// Inject: an in-flight miss that should have filled thousands of cycles
	// ago. A correct machine frees every due entry at the next tick, so an
	// overdue entry can only mean leaked bookkeeping.
	m.cores[0].MSHRs().AllocDemand(isa.BlockID(0xDEAD0), m.watch.cycle-2000, m.watch.cycle-1000)

	aerr := m.auditNow()
	if aerr == nil {
		t.Fatal("auditor missed the injected MSHR leak")
	}
	var audit *AuditError
	if !errors.As(aerr, &audit) {
		t.Fatalf("want *AuditError in chain, got %v", aerr)
	}
	if audit.Component != "core0" {
		t.Errorf("leak attributed to %q, want core0", audit.Component)
	}
	if len(audit.State) == 0 {
		t.Error("no component state attached to the violation")
	}
	if audit.Cycle != m.watch.cycle {
		t.Errorf("violation stamped at cycle %d, want %d", audit.Cycle, m.watch.cycle)
	}
}

// TestCheckpointRejectsTraceRuns pins the typed refusal: trace-replay runs
// cannot checkpoint (the reader's file position is outside the snapshot).
func TestCheckpointRejectsTraceRuns(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.trace")
	if err := WriteTrace(smallWorkload(), 7, 50_000, tracePath); err != nil {
		t.Fatal(err)
	}
	rc := checkedConfig()
	rc.CheckpointEvery = 4096
	rc.CheckpointPath = filepath.Join(dir, "t.ckpt")
	_, err := RunTraceChecked(context.Background(), rc, tracePath)
	if !errors.Is(err, ErrTraceCheckpoint) {
		t.Fatalf("want ErrTraceCheckpoint, got %v", err)
	}

	rc = checkedConfig()
	rc.ResumeFrom = filepath.Join(dir, "missing.ckpt")
	_, err = RunTraceChecked(context.Background(), rc, tracePath)
	if !errors.Is(err, ErrTraceCheckpoint) {
		t.Fatalf("want ErrTraceCheckpoint for resume, got %v", err)
	}
}

// TestResumeRejectsMismatchedConfig checks the snapshot header: a snapshot
// must not restore into a machine with a different workload, design, seed,
// or window geometry.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	rc := checkpointConfig(t, nil)
	if _, err := RunChecked(context.Background(), rc); err != nil {
		t.Fatal(err)
	}

	mutations := map[string]func(*RunConfig){
		"seed":     func(c *RunConfig) { c.Seed++ },
		"cores":    func(c *RunConfig) { c.Cores-- },
		"workload": func(c *RunConfig) { c.Workload.GenSeed++ },
		"window":   func(c *RunConfig) { c.MeasureCycles += 1024 },
		"design": func(c *RunConfig) {
			c.NewDesign = func() prefetch.Design { return prefetch.NewBoomerang(prefetch.DefaultBoomerangConfig()) }
		},
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			bad := rc
			bad.CheckpointEvery = 0
			bad.CheckpointPath = ""
			bad.ResumeFrom = rc.CheckpointPath
			mutate(&bad)
			if _, err := RunChecked(context.Background(), bad); err == nil {
				t.Errorf("snapshot restored into a machine with mutated %s", name)
			}
		})
	}
}

// TestLivelockDumpsSnapshot checks that the watchdog leaves a post-mortem
// snapshot behind when it aborts a stuck run.
func TestLivelockDumpsSnapshot(t *testing.T) {
	rc := checkedConfig()
	rc.NewDesign = newStuck
	rc.WatchdogCycles = 4000
	rc.CheckpointEvery = 1 << 30 // never on cadence; only the livelock dump
	rc.CheckpointPath = filepath.Join(t.TempDir(), "stuck.ckpt")
	_, err := RunChecked(context.Background(), rc)
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("want livelock, got %v", err)
	}
	dump := rc.CheckpointPath + ".livelock"
	if _, serr := os.Stat(dump); serr != nil {
		t.Fatalf("no livelock snapshot dumped: %v", serr)
	}
	// The dump must be a loadable, auditable snapshot.
	violations, aerr := Audit(rc, dump)
	if aerr != nil {
		t.Fatalf("livelock snapshot not loadable: %v", aerr)
	}
	if len(violations) != 0 {
		t.Errorf("stuck-but-consistent machine audited dirty: %v", violations[0])
	}
}
