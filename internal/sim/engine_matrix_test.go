package sim

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"

	"dnc/internal/core"
	"dnc/internal/isa"
	"dnc/internal/prefetch"
	"dnc/internal/workloads"
)

// engineVariants is the engine coverage matrix: the tick-everything
// reference, the event-driven wheel, and the wheel with intra-run sharding.
// Every variant must be bit-exact with every other.
func engineVariants() []struct {
	name string
	set  func(*RunConfig)
} {
	return []struct {
		name string
		set  func(*RunConfig)
	}{
		{"tick", func(rc *RunConfig) { rc.Sched = SchedTick }},
		{"wheel", func(rc *RunConfig) { rc.Sched = SchedWheel }},
		{"wheel+par", func(rc *RunConfig) { rc.Sched = SchedWheel; rc.IntraJobs = 4 }},
	}
}

// TestEngineMatrixBitExact is the tentpole's equivalence wall: across design
// shapes and seeds, the tick reference, the wheel engine, and the sharded
// wheel engine produce identical results — every metric counter — and
// byte-identical checkpoint files. Checkpoint bytes are the strongest
// available observation: they serialize the entire machine, so any engine
// divergence in any component state shows up.
func TestEngineMatrixBitExact(t *testing.T) {
	for name, nd := range ffDesigns() {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				var refPrint, refCkpt string
				for _, v := range engineVariants() {
					rc := checkpointConfig(t, nd)
					rc.Seed = seed
					if name == "shotgun" {
						rc.Core = core.DefaultConfig()
						rc.Core.PrefetchBufferEntries = 64
					}
					v.set(&rc)
					res, err := RunChecked(context.Background(), rc)
					if err != nil {
						t.Fatalf("%s: %v", v.name, err)
					}
					ckpt, err := os.ReadFile(rc.CheckpointPath)
					if err != nil {
						t.Fatalf("%s: %v", v.name, err)
					}
					res.Engine = "" // provenance differs by construction
					print := fingerprint(t, res)
					if v.name == "tick" {
						refPrint, refCkpt = print, string(ckpt)
						continue
					}
					if print != refPrint {
						t.Errorf("%s result differs from tick reference\n%s: %s\ntick: %s",
							v.name, v.name, print, refPrint)
					}
					if string(ckpt) != refCkpt {
						t.Errorf("%s checkpoint bytes differ from tick reference (%d vs %d bytes)",
							v.name, len(ckpt), len(refCkpt))
					}
				}
			})
		}
	}
}

// TestEngineMatrixGOMAXPROCS pins the sharded engine's scheduling
// independence: the same parallel run under GOMAXPROCS=1 (shards fully
// serialized) and the test's native GOMAXPROCS produces identical results.
// Together with the race-enabled CI job this is the determinism half of the
// parallel-engine contract; the matrix test above is the correctness half.
func TestEngineMatrixGOMAXPROCS(t *testing.T) {
	rc := checkedConfig()
	rc.Cores = 8
	rc.WarmCycles = 6_000
	rc.MeasureCycles = 12_000
	rc.IntraJobs = 4

	run := func() string {
		res, err := RunChecked(context.Background(), rc)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(t, res)
	}
	native := run()
	old := runtime.GOMAXPROCS(1)
	serialized := run()
	runtime.GOMAXPROCS(old)
	if native != serialized {
		t.Fatalf("sharded run depends on GOMAXPROCS:\nnative:     %s\nserialized: %s",
			native, serialized)
	}
}

// TestWheelZeroAllocs extends the hot-structure contract to the wheel
// engine: steady-state advancement — wake scheduling, sleeping, timing-wheel
// churn included — performs zero heap allocations. The 16-core SN4L+Dis+BTB
// configuration is the paper's full-scale machine, where the engine loop is
// hottest.
func TestWheelZeroAllocs(t *testing.T) {
	var entry prefetch.CatalogEntry
	for _, e := range prefetch.Catalog() {
		if e.Name == "SN4L+Dis+BTB" {
			entry = e
		}
	}
	cc := core.DefaultConfig()
	cc.PrefetchBufferEntries = entry.PrefetchBufferEntries
	rc := applyDefaults(RunConfig{
		Workload:  workloads.Params("Web-Zeus", isa.Fixed),
		NewDesign: entry.New,
		Cores:     16,
		Core:      cc,
	})
	m, err := buildMachine(rc, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.close()
	if err := m.runPhase(nil, 50_000); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := m.runPhase(nil, m.done+1_000); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state wheel advancement allocated %.2f times per 1000 machine cycles; want 0", allocs)
	}
}

// TestWheelEngineSleeps guards against the wheel engine silently never
// engaging (every IdleWake guard failing would make the equivalence matrix
// vacuous): during a baseline run some core must actually be asleep on the
// wheel at some cycle.
func TestWheelEngineSleeps(t *testing.T) {
	rc := applyDefaults(checkedConfig())
	m, err := buildMachine(rc, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.close()
	slept := false
	for i := 0; i < 20_000 && !slept; i++ {
		m.stepWheel()
		m.watch.cycle++
		m.done++
		slept = m.eng.awake < len(m.cores)
	}
	if !slept {
		t.Fatal("no core ever slept on the wheel in 20K cycles of a 2-core baseline run")
	}
}

// TestParallelRequiresWheel pins the validation contract: sharding the tick
// reference is rejected rather than silently serialized.
func TestParallelRequiresWheel(t *testing.T) {
	rc := checkedConfig()
	rc.Sched = SchedTick
	rc.IntraJobs = 2
	if err := rc.Validate(); err == nil {
		t.Fatal("IntraJobs > 1 under SchedTick accepted")
	}
	rc.IntraJobs = -1
	if err := rc.Validate(); err == nil {
		t.Fatal("negative IntraJobs accepted")
	}
}

// TestEngineStamp checks Result.Engine provenance for each variant.
func TestEngineStamp(t *testing.T) {
	for _, v := range engineVariants() {
		rc := checkedConfig()
		rc.Cores = 4
		rc.WarmCycles = 2_000
		rc.MeasureCycles = 2_000
		v.set(&rc)
		res, err := RunChecked(context.Background(), rc)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		want := map[string]string{
			"tick": "tick", "wheel": "wheel", "wheel+par": "wheel+par4",
		}[v.name]
		if res.Engine != want {
			t.Errorf("%s: Result.Engine = %q, want %q", v.name, res.Engine, want)
		}
	}
}
