package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dnc/internal/isa"
	"dnc/internal/prefetch"
)

// stuckDesign gates the FTQ closed forever: fetch never proceeds, nothing
// retires, and the livelock watchdog must fire.
type stuckDesign struct{ prefetch.Base }

func (*stuckDesign) Name() string                                  { return "stuck" }
func (*stuckDesign) BTBLookup(isa.Addr, isa.Kind) (isa.Addr, bool) { return 0, false }
func (*stuckDesign) BTBCommit(isa.Addr, isa.Kind, isa.Addr, bool)  {}
func (*stuckDesign) FTQGate(isa.Addr) bool                         { return false }

func newStuck() prefetch.Design { return &stuckDesign{} }

func checkedConfig() RunConfig {
	return RunConfig{
		Workload:      smallWorkload(),
		NewDesign:     func() prefetch.Design { return prefetch.NewBaseline(2048) },
		Cores:         2,
		WarmCycles:    20_000,
		MeasureCycles: 20_000,
		Seed:          1,
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	good := checkedConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	bad := good
	bad.NewDesign = nil
	if bad.Validate() == nil {
		t.Error("nil NewDesign accepted")
	}

	bad = good
	bad.Cores = 17
	if bad.Validate() == nil {
		t.Error("17 cores on a 4x4 mesh accepted")
	}
	bad.Cores = -1
	if bad.Validate() == nil {
		t.Error("negative cores accepted")
	}

	bad = good
	bad.Workload.FootprintBytes = -5
	if bad.Validate() == nil {
		t.Error("negative footprint accepted")
	}

	bad = good
	bad.Workload.CondFrac = 1.5
	if bad.Validate() == nil {
		t.Error("CondFrac > 1 accepted")
	}

	bad = good
	bad.Workload.CondFrac, bad.Workload.JumpFrac, bad.Workload.CallFrac = 0.5, 0.4, 0.3
	if bad.Validate() == nil {
		t.Error("branch fractions summing past 1 accepted")
	}
}

func TestRunCheckedMatchesRun(t *testing.T) {
	rc := checkedConfig()
	direct := Run(rc)
	checked, err := RunChecked(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if direct.M != checked.M {
		t.Fatalf("checked run diverged from Run:\n%+v\n%+v", direct.M, checked.M)
	}
}

func TestRunCheckedInvalidConfig(t *testing.T) {
	rc := checkedConfig()
	rc.NewDesign = nil
	_, err := RunChecked(context.Background(), rc)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %v", err)
	}
}

func TestRunCheckedRecoversPanic(t *testing.T) {
	rc := checkedConfig()
	rc.NewDesign = func() prefetch.Design { panic("injected design failure") }
	_, err := RunChecked(context.Background(), rc)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %v", err)
	}
	if !strings.Contains(re.Error(), "injected design failure") {
		t.Errorf("panic message lost: %v", re)
	}
	if len(re.Stack) == 0 {
		t.Error("no stack captured")
	}
	if re.Config.Workload.Name != rc.Workload.Name {
		t.Errorf("offending config not attached: %+v", re.Config.Workload.Name)
	}
}

func TestWatchdogFiresOnLivelock(t *testing.T) {
	rc := checkedConfig()
	rc.NewDesign = newStuck
	rc.WatchdogCycles = 4000
	_, err := RunChecked(context.Background(), rc)
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("want livelock, got %v", err)
	}
	var le *LivelockError
	if !errors.As(err, &le) {
		t.Fatalf("want *LivelockError in chain, got %v", err)
	}
	if le.NoProgressCycles < 4000 {
		t.Errorf("aborted after only %d stuck cycles", le.NoProgressCycles)
	}
	snap := le.Snapshot
	if len(snap.Cores) != rc.Cores {
		t.Fatalf("snapshot has %d cores, want %d", len(snap.Cores), rc.Cores)
	}
	for _, cs := range snap.Cores {
		if cs.Retired != 0 {
			t.Errorf("tile %d retired %d while supposedly stuck", cs.Tile, cs.Retired)
		}
		if cs.StallCause == "" {
			t.Errorf("tile %d has no stall cause", cs.Tile)
		}
		if cs.MSHRCap == 0 || cs.ROBCap == 0 {
			t.Errorf("tile %d snapshot missing capacities: %+v", cs.Tile, cs)
		}
	}
	if !strings.Contains(err.Error(), "stalled on") {
		t.Errorf("error does not render snapshot: %v", err)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	// A negative threshold disables the watchdog: the stuck run must then be
	// bounded by the context instead of the watchdog.
	rc := checkedConfig()
	rc.NewDesign = newStuck
	rc.WatchdogCycles = -1
	rc.WarmCycles = 1 << 40 // would run ~forever without the deadline
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := RunChecked(ctx, rc)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
}

func TestRunCheckedHonorsCancel(t *testing.T) {
	rc := checkedConfig()
	rc.WarmCycles = 1 << 40
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunChecked(ctx, rc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want canceled, got %v", err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("cancellation not wrapped in *RunError: %v", err)
	}
}

func TestRunPanicsOnLivelock(t *testing.T) {
	rc := checkedConfig()
	rc.NewDesign = newStuck
	rc.WatchdogCycles = 3000
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not panic on livelock")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrLivelock) {
			t.Fatalf("Run panicked with %v, want livelock error", r)
		}
	}()
	Run(rc)
}

func TestDerivedMetricsZeroRetirement(t *testing.T) {
	base := Run(checkedConfig())
	var dead Result // e.g. a failed cell's zero value
	for name, v := range map[string]float64{
		"FSCR":           FSCR(dead, base),
		"BandwidthRatio": BandwidthRatio(dead, base),
		"LookupRatio":    LookupRatio(dead, base),
		"Speedup":        Speedup(dead, base),
		"FSCR-dead-base": FSCR(base, dead),
		"BW-dead-base":   BandwidthRatio(base, dead),
		"LK-dead-base":   LookupRatio(base, dead),
	} {
		if v != 0 {
			t.Errorf("%s with zero retirement = %v, want 0", name, v)
		}
	}
}
