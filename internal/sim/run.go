package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	wl "dnc/internal/cfg"
	"dnc/internal/core"
	"dnc/internal/isa"
	"dnc/internal/llc"
	"dnc/internal/noc"
	"dnc/internal/prefetch"
)

// DefaultWatchdogCycles is the livelock threshold used when
// RunConfig.WatchdogCycles is zero: the run aborts when no core retires a
// single instruction for this many consecutive cycles. Legitimate runs
// retire continuously (the longest stalls are redirect bubbles and LLC/DRAM
// round trips, i.e. tens to hundreds of cycles), so this is three orders of
// magnitude above any real stall.
const DefaultWatchdogCycles = 100_000

// checkEvery is the cadence, in cycles, at which the engine polls the
// context and the watchdog. It keeps the hot tick loop branch-cheap.
const checkEvery = 1 << 10

// applyDefaults fills the zero-valued fields of a RunConfig with the
// paper's defaults (shared by Run, RunTrace, and the checked variants).
func applyDefaults(rc RunConfig) RunConfig {
	if rc.Cores == 0 {
		rc.Cores = 4
	}
	if rc.WarmCycles == 0 {
		rc.WarmCycles = 200_000
	}
	if rc.MeasureCycles == 0 {
		rc.MeasureCycles = 200_000
	}
	if rc.Core.FetchWidth == 0 {
		rc.Core = core.DefaultConfig()
	}
	if rc.LLC.SizeBytes == 0 {
		rc.LLC = llc.DefaultConfig()
		// Variable-length workloads need the DV-LLC for branch footprints;
		// an explicitly supplied LLC configuration is taken as-is (the
		// Section VII.J experiment compares DV on against DV off).
		if rc.Workload.Mode == isa.Variable {
			rc.LLC.DVEnabled = true
		}
	}
	if rc.WatchdogCycles == 0 {
		rc.WatchdogCycles = DefaultWatchdogCycles
	}
	return rc
}

// Validate reports whether the configuration can be simulated. Zero-valued
// fields are interpreted as their defaults (see Run). It catches the
// misconfigurations that would otherwise surface as panics or nonsense
// results deep inside the machine model.
func (rc RunConfig) Validate() error {
	rc = applyDefaults(rc)
	if rc.NewDesign == nil {
		return errors.New("sim: RunConfig.NewDesign is nil")
	}
	mesh := noc.DefaultConfig()
	if tiles := mesh.Width * mesh.Height; rc.Cores < 1 || rc.Cores > tiles {
		return fmt.Errorf("sim: Cores = %d outside the %dx%d mesh (1..%d)",
			rc.Cores, mesh.Width, mesh.Height, tiles)
	}
	if rc.Workload.FootprintBytes <= 0 {
		return fmt.Errorf("sim: workload %q has non-positive footprint %d",
			rc.Workload.Name, rc.Workload.FootprintBytes)
	}
	w := &rc.Workload
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"CondFrac", w.CondFrac}, {"JumpFrac", w.JumpFrac},
		{"CallFrac", w.CallFrac}, {"IndirectCallFrac", w.IndirectCallFrac},
		{"StableBiasFrac", w.StableBiasFrac}, {"TakenBias", w.TakenBias},
		{"WeakBias", w.WeakBias}, {"BackwardFrac", w.BackwardFrac},
		{"RareBlockFrac", w.RareBlockFrac}, {"RareExecProb", w.RareExecProb},
		{"HotFuncFrac", w.HotFuncFrac}, {"HotCallProb", w.HotCallProb},
		{"LoadFrac", w.LoadFrac}, {"StoreFrac", w.StoreFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("sim: workload %q: %s = %v outside [0,1]",
				w.Name, f.name, f.v)
		}
	}
	if s := w.CondFrac + w.JumpFrac + w.CallFrac; s > 1 {
		return fmt.Errorf("sim: workload %q: branch kind fractions sum to %v > 1", w.Name, s)
	}
	if s := w.LoadFrac + w.StoreFrac; s > 1 {
		return fmt.Errorf("sim: workload %q: memory op fractions sum to %v > 1", w.Name, s)
	}
	return nil
}

// RunError is the failure of one simulation run: a validation error, a
// panic recovered from any layer of the machine model (with its stack), a
// context cancellation/timeout, or a livelock abort. It carries the
// offending configuration so a sweep can report exactly which cell died.
type RunError struct {
	Config RunConfig
	// Stack is the goroutine stack at the point of a recovered panic (nil
	// for non-panic failures).
	Stack []byte
	Err   error
}

// Error implements error.
func (e *RunError) Error() string {
	name := e.Config.Workload.Name
	if name == "" {
		name = "<unnamed workload>"
	}
	return fmt.Sprintf("sim: run of %s failed: %v", name, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// ErrLivelock matches (via errors.Is) runs aborted by the watchdog.
var ErrLivelock = errors.New("sim: no retirement progress (livelock)")

// Snapshot is the machine state attached to a livelock abort: what every
// core was stalled on, MSHR occupancy, and the shared-fabric request
// counters at the moment the watchdog fired.
type Snapshot struct {
	Cycle uint64
	Cores []core.DiagSnapshot
	// Shared-fabric activity since the last stats reset: requests injected
	// into the NoC and DRAM, and cumulative cycles spent queued behind busy
	// links / exhausted memory bandwidth.
	NoCPackets  uint64
	NoCQueued   uint64
	DRAMAccess  uint64
	DRAMQueued  uint64
}

// String renders the snapshot compactly for logs.
func (s Snapshot) String() string {
	out := fmt.Sprintf("cycle %d; noc %d pkts (%d queued cyc); dram %d acc (%d queued cyc)",
		s.Cycle, s.NoCPackets, s.NoCQueued, s.DRAMAccess, s.DRAMQueued)
	for _, c := range s.Cores {
		out += fmt.Sprintf("\n  tile %d: retired %d, stalled on %s, rob %d/%d, mshr %d/%d",
			c.Tile, c.Retired, c.StallCause, c.ROBUsed, c.ROBCap, c.MSHRUsed, c.MSHRCap)
	}
	return out
}

// LivelockError is returned (wrapped in a RunError) when aggregate
// retirement made no progress for the watchdog window.
type LivelockError struct {
	// NoProgressCycles is how long retirement was flat before the abort.
	NoProgressCycles uint64
	Snapshot         Snapshot
}

// Error implements error.
func (e *LivelockError) Error() string {
	return fmt.Sprintf("%v after %d cycles without retirement\n%s",
		ErrLivelock, e.NoProgressCycles, e.Snapshot)
}

// Is matches ErrLivelock.
func (e *LivelockError) Is(target error) bool { return target == ErrLivelock }

// streamMaker builds core i's instruction stream; the default (nil) wires a
// seeded workload walker. It may return a closer for underlying resources.
type streamMaker func(i int, prog *wl.Program) (wl.Stream, func(), error)

// RunChecked executes one simulation with full fault isolation: the
// configuration is validated first, panics from any layer of the machine
// model are recovered into a *RunError carrying the config and stack, the
// context is honored (cancellation and deadlines abort the run between
// ticks), and a livelock watchdog aborts with a diagnostic Snapshot when no
// core retires an instruction for RunConfig.WatchdogCycles cycles.
//
// Every returned error is a *RunError; use errors.Is/As to classify the
// cause (context.Canceled, context.DeadlineExceeded, ErrLivelock, ...).
func RunChecked(ctx context.Context, rc RunConfig) (Result, error) {
	return runChecked(ctx, rc, nil)
}

func runChecked(ctx context.Context, rc RunConfig, mk streamMaker) (res Result, err error) {
	rc = applyDefaults(rc)
	if verr := rc.Validate(); verr != nil {
		return Result{}, &RunError{Config: rc, Err: verr}
	}
	defer func() {
		if r := recover(); r != nil {
			res = Result{}
			perr, ok := r.(error)
			if !ok {
				perr = fmt.Errorf("panic: %v", r)
			}
			err = &RunError{Config: rc, Err: perr, Stack: debug.Stack()}
		}
	}()

	prog := Program(rc.Workload)
	uncore := core.NewUncore(rc.LLC)
	if !rc.NoPreload {
		uncore.Preload(prog.Image)
	}

	cores := make([]*core.Core, rc.Cores)
	designs := make([]prefetch.Design, rc.Cores)
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	for i := range cores {
		cc := rc.Core
		cc.Tile = i
		var stream wl.Stream
		if mk == nil {
			stream = wl.NewWalker(prog, rc.Seed*1000+int64(i)+1)
		} else {
			s, closer, serr := mk(i, prog)
			if serr != nil {
				return Result{}, &RunError{Config: rc, Err: serr}
			}
			if closer != nil {
				closers = append(closers, closer)
			}
			stream = s
		}
		d := rc.NewDesign()
		designs[i] = d
		cores[i] = core.New(cc, stream, prog.Image, d, uncore)
	}

	watch := newWatchdog(rc, cores, uncore)
	if aerr := tickWindow(ctx, rc.WarmCycles, cores, watch); aerr != nil {
		return Result{}, &RunError{Config: rc, Err: aerr}
	}
	for _, c := range cores {
		c.ResetMetrics()
	}
	uncore.LLC.ResetStats()
	uncore.Mesh.ResetStats()
	uncore.DRAM.ResetStats()
	if aerr := tickWindow(ctx, rc.MeasureCycles, cores, watch); aerr != nil {
		return Result{}, &RunError{Config: rc, Err: aerr}
	}

	res = Result{
		Workload:    rc.Workload.Name,
		Design:      designs[0].Name(),
		PerCore:     make([]core.Metrics, rc.Cores),
		LLCStats:    uncore.LLC.Stats(),
		NoCFlits:    uncore.Mesh.Flits(),
		NoCQueued:   uncore.Mesh.QueuedCycles(),
		DRAMQueued:  uncore.DRAM.QueuedCycles(),
		StorageBits: designs[0].StorageBits(),
		Designs:     designs,
	}
	for i, c := range cores {
		res.PerCore[i] = c.M
		res.M.Add(&c.M)
	}
	return res, nil
}

// watchdog tracks aggregate retirement across windows; it persists across
// the warm-up/measure boundary so a design that stalls right at the window
// edge is still caught.
type watchdog struct {
	threshold uint64 // 0 = disabled
	cores     []*core.Core
	uncore    *core.Uncore
	cycle     uint64 // global cycle across both windows
	lastSum   uint64
	lastAt    uint64
}

func newWatchdog(rc RunConfig, cores []*core.Core, uncore *core.Uncore) *watchdog {
	w := &watchdog{cores: cores, uncore: uncore}
	if rc.WatchdogCycles > 0 {
		w.threshold = uint64(rc.WatchdogCycles)
	}
	return w
}

// check is called every checkEvery cycles; it returns a *LivelockError when
// retirement has been flat for at least the threshold.
func (w *watchdog) check() error {
	if w.threshold == 0 {
		return nil
	}
	var sum uint64
	for _, c := range w.cores {
		sum += c.Progress()
	}
	if sum != w.lastSum {
		w.lastSum, w.lastAt = sum, w.cycle
		return nil
	}
	if stuck := w.cycle - w.lastAt; stuck >= w.threshold {
		return &LivelockError{NoProgressCycles: stuck, Snapshot: w.snapshot()}
	}
	return nil
}

func (w *watchdog) snapshot() Snapshot {
	s := Snapshot{
		Cycle:      w.cycle,
		Cores:      make([]core.DiagSnapshot, len(w.cores)),
		NoCPackets: w.uncore.Mesh.Packets(),
		NoCQueued:  w.uncore.Mesh.QueuedCycles(),
		DRAMAccess: w.uncore.DRAM.Accesses(),
		DRAMQueued: w.uncore.DRAM.QueuedCycles(),
	}
	for i, c := range w.cores {
		s.Cores[i] = c.Diag()
	}
	return s
}

// tickWindow advances all cores n cycles, polling the context and the
// watchdog every checkEvery cycles.
func tickWindow(ctx context.Context, n uint64, cores []*core.Core, w *watchdog) error {
	for t := uint64(0); t < n; t++ {
		for _, c := range cores {
			c.Tick()
		}
		w.cycle++
		if w.cycle%checkEvery == 0 {
			if ctx != nil {
				select {
				case <-ctx.Done():
					return fmt.Errorf("run aborted at cycle %d: %w", w.cycle, ctx.Err())
				default:
				}
			}
			if err := w.check(); err != nil {
				return err
			}
		}
	}
	return nil
}
