package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	wl "dnc/internal/cfg"
	"dnc/internal/checkpoint"
	"dnc/internal/core"
	"dnc/internal/isa"
	"dnc/internal/llc"
	"dnc/internal/noc"
	"dnc/internal/prefetch"
	"dnc/internal/sched"
)

// DefaultWatchdogCycles is the livelock threshold used when
// RunConfig.WatchdogCycles is zero: the run aborts when no core retires a
// single instruction for this many consecutive cycles. Legitimate runs
// retire continuously (the longest stalls are redirect bubbles and LLC/DRAM
// round trips, i.e. tens to hundreds of cycles), so this is three orders of
// magnitude above any real stall.
const DefaultWatchdogCycles = 100_000

// checkEvery is the cadence, in cycles, at which the engine polls the
// context and the watchdog. It keeps the hot tick loop branch-cheap.
const checkEvery = 1 << 10

// applyDefaults fills the zero-valued fields of a RunConfig with the
// paper's defaults (shared by Run, RunTrace, and the checked variants).
func applyDefaults(rc RunConfig) RunConfig {
	if rc.Cores == 0 {
		rc.Cores = 4
	}
	if rc.WarmCycles == 0 {
		rc.WarmCycles = 200_000
	}
	if rc.MeasureCycles == 0 {
		rc.MeasureCycles = 200_000
	}
	if rc.Core.FetchWidth == 0 {
		rc.Core = core.DefaultConfig()
	}
	if rc.LLC.SizeBytes == 0 {
		rc.LLC = llc.DefaultConfig()
		// Variable-length workloads need the DV-LLC for branch footprints;
		// an explicitly supplied LLC configuration is taken as-is (the
		// Section VII.J experiment compares DV on against DV off).
		if rc.Workload.Mode == isa.Variable {
			rc.LLC.DVEnabled = true
		}
	}
	if rc.WatchdogCycles == 0 {
		rc.WatchdogCycles = DefaultWatchdogCycles
	}
	return rc
}

// Validate reports whether the configuration can be simulated. Zero-valued
// fields are interpreted as their defaults (see Run). It catches the
// misconfigurations that would otherwise surface as panics or nonsense
// results deep inside the machine model.
func (rc RunConfig) Validate() error {
	rc = applyDefaults(rc)
	if rc.NewDesign == nil {
		return errors.New("sim: RunConfig.NewDesign is nil")
	}
	mesh := noc.DefaultConfig()
	if tiles := mesh.Width * mesh.Height; rc.Cores < 1 || rc.Cores > tiles {
		return fmt.Errorf("sim: Cores = %d outside the %dx%d mesh (1..%d)",
			rc.Cores, mesh.Width, mesh.Height, tiles)
	}
	if rc.Workload.FootprintBytes <= 0 {
		return fmt.Errorf("sim: workload %q has non-positive footprint %d",
			rc.Workload.Name, rc.Workload.FootprintBytes)
	}
	w := &rc.Workload
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"CondFrac", w.CondFrac}, {"JumpFrac", w.JumpFrac},
		{"CallFrac", w.CallFrac}, {"IndirectCallFrac", w.IndirectCallFrac},
		{"StableBiasFrac", w.StableBiasFrac}, {"TakenBias", w.TakenBias},
		{"WeakBias", w.WeakBias}, {"BackwardFrac", w.BackwardFrac},
		{"RareBlockFrac", w.RareBlockFrac}, {"RareExecProb", w.RareExecProb},
		{"HotFuncFrac", w.HotFuncFrac}, {"HotCallProb", w.HotCallProb},
		{"LoadFrac", w.LoadFrac}, {"StoreFrac", w.StoreFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("sim: workload %q: %s = %v outside [0,1]",
				w.Name, f.name, f.v)
		}
	}
	if s := w.CondFrac + w.JumpFrac + w.CallFrac; s > 1 {
		return fmt.Errorf("sim: workload %q: branch kind fractions sum to %v > 1", w.Name, s)
	}
	if s := w.LoadFrac + w.StoreFrac; s > 1 {
		return fmt.Errorf("sim: workload %q: memory op fractions sum to %v > 1", w.Name, s)
	}
	if rc.CheckpointEvery > 0 && rc.CheckpointPath == "" {
		return errors.New("sim: CheckpointEvery set without CheckpointPath")
	}
	if rc.IntraJobs < 0 {
		return fmt.Errorf("sim: IntraJobs = %d is negative", rc.IntraJobs)
	}
	if rc.IntraJobs > 1 && rc.Sched == SchedTick {
		return errors.New("sim: IntraJobs > 1 requires the wheel engine (the tick reference is strictly serial)")
	}
	if rc.Sched > SchedTick {
		return fmt.Errorf("sim: unknown Sched mode %d", rc.Sched)
	}
	return nil
}

// RunError is the failure of one simulation run: a validation error, a
// panic recovered from any layer of the machine model (with its stack), a
// context cancellation/timeout, or a livelock abort. It carries the
// offending configuration so a sweep can report exactly which cell died.
type RunError struct {
	Config RunConfig
	// Stack is the goroutine stack at the point of a recovered panic (nil
	// for non-panic failures).
	Stack []byte
	Err   error
}

// Error implements error.
func (e *RunError) Error() string {
	name := e.Config.Workload.Name
	if name == "" {
		name = "<unnamed workload>"
	}
	return fmt.Sprintf("sim: run of %s failed: %v", name, e.Err)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// ErrLivelock matches (via errors.Is) runs aborted by the watchdog.
var ErrLivelock = errors.New("sim: no retirement progress (livelock)")

// Snapshot is the machine state attached to a livelock abort: what every
// core was stalled on, MSHR occupancy, and the shared-fabric request
// counters at the moment the watchdog fired.
type Snapshot struct {
	Cycle uint64
	Cores []core.DiagSnapshot
	// Shared-fabric activity since the last stats reset: requests injected
	// into the NoC and DRAM, and cumulative cycles spent queued behind busy
	// links / exhausted memory bandwidth.
	NoCPackets uint64
	NoCQueued  uint64
	DRAMAccess uint64
	DRAMQueued uint64
}

// String renders the snapshot compactly for logs.
func (s Snapshot) String() string {
	out := fmt.Sprintf("cycle %d; noc %d pkts (%d queued cyc); dram %d acc (%d queued cyc)",
		s.Cycle, s.NoCPackets, s.NoCQueued, s.DRAMAccess, s.DRAMQueued)
	for _, c := range s.Cores {
		out += fmt.Sprintf("\n  tile %d: retired %d, stalled on %s, rob %d/%d, mshr %d/%d",
			c.Tile, c.Retired, c.StallCause, c.ROBUsed, c.ROBCap, c.MSHRUsed, c.MSHRCap)
	}
	return out
}

// LivelockError is returned (wrapped in a RunError) when aggregate
// retirement made no progress for the watchdog window.
type LivelockError struct {
	// NoProgressCycles is how long retirement was flat before the abort.
	NoProgressCycles uint64
	Snapshot         Snapshot
}

// Error implements error.
func (e *LivelockError) Error() string {
	return fmt.Sprintf("%v after %d cycles without retirement\n%s",
		ErrLivelock, e.NoProgressCycles, e.Snapshot)
}

// Is matches ErrLivelock.
func (e *LivelockError) Is(target error) bool { return target == ErrLivelock }

// streamMaker builds core i's instruction stream; the default (nil) wires a
// seeded workload walker. It may return a closer for underlying resources.
type streamMaker func(i int, prog *wl.Program) (wl.Stream, func(), error)

// WalkerSeed returns the walker seed of core i in a run with RunConfig.Seed
// seed. It is the single definition of the per-core seeding convention, so
// external replays of a core's committed stream (the differential oracle,
// trace comparison tools) never drift from the simulator's own walkers.
func WalkerSeed(seed int64, i int) int64 { return seed*1000 + int64(i) + 1 }

// RunChecked executes one simulation with full fault isolation: the
// configuration is validated first, panics from any layer of the machine
// model are recovered into a *RunError carrying the config and stack, the
// context is honored (cancellation and deadlines abort the run between
// ticks), and a livelock watchdog aborts with a diagnostic Snapshot when no
// core retires an instruction for RunConfig.WatchdogCycles cycles.
//
// Every returned error is a *RunError; use errors.Is/As to classify the
// cause (context.Canceled, context.DeadlineExceeded, ErrLivelock, ...).
func RunChecked(ctx context.Context, rc RunConfig) (Result, error) {
	return runChecked(ctx, rc, nil)
}

func runChecked(ctx context.Context, rc RunConfig, mk streamMaker) (res Result, err error) {
	rc = applyDefaults(rc)
	if verr := rc.Validate(); verr != nil {
		return Result{}, &RunError{Config: rc, Err: verr}
	}
	defer func() {
		if r := recover(); r != nil {
			res = Result{}
			perr, ok := r.(error)
			if !ok {
				perr = fmt.Errorf("panic: %v", r)
			}
			err = &RunError{Config: rc, Err: perr, Stack: debug.Stack()}
		}
	}()

	m, merr := buildMachine(rc, mk)
	if merr != nil {
		return Result{}, &RunError{Config: rc, Err: merr}
	}
	defer m.close()

	if rc.ResumeFrom != "" {
		if rerr := m.restoreFrom(rc.ResumeFrom); rerr != nil {
			return Result{}, &RunError{Config: rc, Err: rerr}
		}
	}
	if aerr := m.run(ctx); aerr != nil {
		return Result{}, &RunError{Config: rc, Err: aerr}
	}
	return m.result(), nil
}

// machine is one fully assembled simulation: the generated program, the
// per-tile cores with their design instances and instruction streams, the
// shared uncore, and the run's window/watchdog position. It is the unit of
// checkpointing: everything mutable hangs off this struct.
type machine struct {
	rc      RunConfig
	prog    *wl.Program
	uncore  *core.Uncore
	cores   []*core.Core
	designs []prefetch.Design
	// walkers mirrors cores when the run is walker-driven; trace-driven
	// runs leave it nil (and cannot checkpoint, see ErrTraceCheckpoint).
	walkers []*wl.Walker
	watch   *watchdog
	closers []func()
	// obs is the run's observability state, nil when disabled; the tick loop
	// pays one pointer test per cycle for it.
	obs *machineObs

	// phase is the current window (0 = warm-up, 1 = measurement) and done
	// the cycles completed within it; together with the watchdog counters
	// they locate a snapshot inside the run.
	phase    uint8
	done     uint64
	lastCkpt uint64

	// eng is the engine-loop state (wake schedule, sleep flags, parallel
	// shards). It is derived state, never checkpointed: cores are synced to
	// the global clock at every snapshot, and a restored machine starts with
	// every core awake, so checkpoint bytes are identical across engines.
	eng engineState
}

// engineState carries the wheel engine's per-core wake bookkeeping and, when
// IntraJobs > 1, the sharded-parallel executor.
type engineState struct {
	mode SchedMode
	// wheel holds one entry per sleeping core, keyed by the cycle of its
	// next required full Tick (core.IdleWake). Nil under SchedTick.
	wheel  *sched.Wheel
	asleep []bool
	awake  int
	par    *parEngine
}

func buildMachine(rc RunConfig, mk streamMaker) (*machine, error) {
	if mk != nil && (rc.CheckpointEvery > 0 || rc.ResumeFrom != "") {
		return nil, ErrTraceCheckpoint
	}
	if mk != nil && rc.IntraJobs > 1 {
		return nil, errors.New("sim: intra-run parallelism requires a walker-driven run")
	}
	m := &machine{rc: rc, prog: Program(rc.Workload)}
	m.uncore = core.NewUncore(rc.LLC)
	if !rc.NoPreload {
		m.uncore.Preload(m.prog.Image)
	}
	m.cores = make([]*core.Core, rc.Cores)
	m.designs = make([]prefetch.Design, rc.Cores)
	if mk == nil {
		m.walkers = make([]*wl.Walker, rc.Cores)
	}
	for i := range m.cores {
		cc := rc.Core
		cc.Tile = i
		var stream wl.Stream
		if mk == nil {
			w := wl.NewWalker(m.prog, WalkerSeed(rc.Seed, i))
			m.walkers[i] = w
			stream = w
		} else {
			s, closer, serr := mk(i, m.prog)
			if serr != nil {
				m.close()
				return nil, serr
			}
			if closer != nil {
				m.closers = append(m.closers, closer)
			}
			stream = s
		}
		d := rc.NewDesign()
		m.designs[i] = d
		m.cores[i] = core.New(cc, stream, m.prog.Image, d, m.uncore)
	}
	if rc.DisableFastForward {
		for _, c := range m.cores {
			c.SetFastForward(false)
		}
	}
	m.watch = newWatchdog(rc, m.cores, m.uncore)
	if rc.Obs != nil {
		m.obs = newMachineObs(*rc.Obs)
		m.obs.attach(m)
	}
	m.initEngine()
	return m, nil
}

// parJobs returns the effective shard count: IntraJobs clamped to the core
// count, 1 (serial) when unset.
func (m *machine) parJobs() int {
	j := m.rc.IntraJobs
	if j > len(m.cores) {
		j = len(m.cores)
	}
	if j < 1 {
		j = 1
	}
	return j
}

// initEngine builds the engine-loop state for the configured mode.
func (m *machine) initEngine() {
	m.eng.mode = m.rc.Sched
	if m.eng.mode == SchedTick {
		return
	}
	m.eng.wheel = sched.NewWheel(len(m.cores))
	m.eng.asleep = make([]bool, len(m.cores))
	m.eng.awake = len(m.cores)
	if j := m.parJobs(); j > 1 {
		m.eng.par = newParEngine(m, j)
	}
}

// resetEngine rebuilds the derived wake state with every core awake (after a
// snapshot restore: cores come back with idleWake unset, so the first full
// Tick recomputes their schedules).
func (m *machine) resetEngine() {
	if m.eng.mode == SchedTick {
		return
	}
	m.eng.wheel = sched.NewWheel(len(m.cores))
	for i := range m.eng.asleep {
		m.eng.asleep[i] = false
	}
	m.eng.awake = len(m.cores)
	if m.eng.par != nil {
		m.eng.par.reset()
	}
}

// engineName is the provenance stamp for Result.Engine.
func (m *machine) engineName() string {
	if m.eng.par != nil {
		return fmt.Sprintf("wheel+par%d", len(m.eng.par.shards))
	}
	return m.eng.mode.String()
}

func (m *machine) close() {
	for _, c := range m.closers {
		c()
	}
}

// run executes the remaining windows (all of them on a fresh machine; the
// tail of the interrupted window after a restore) and audits the final state.
func (m *machine) run(ctx context.Context) error {
	if m.phase == 0 {
		if err := m.runPhase(ctx, m.rc.WarmCycles); err != nil {
			return err
		}
		for _, c := range m.cores {
			c.ResetMetrics()
		}
		m.uncore.LLC.ResetStats()
		m.uncore.Mesh.ResetStats()
		m.uncore.DRAM.ResetStats()
		if m.obs != nil {
			m.obs.resetWindow(m)
		}
		m.phase = 1
		m.done = 0
	}
	if err := m.runPhase(ctx, m.rc.MeasureCycles); err != nil {
		return err
	}
	// Drain audit: every run ends with an invariant sweep, so structural
	// corruption surfaces even when checkpointing is off.
	return m.auditNow()
}

// runPhase advances the machine until the current window holds total
// cycles, dispatching to the configured engine. All engines land exactly on
// the same boundaries — window end, checkEvery poll (context, watchdog,
// checkpoint cadence), observability sampling — and produce bit-identical
// machine state at each of them, so the choice of engine is invisible to
// everything downstream.
func (m *machine) runPhase(ctx context.Context, total uint64) error {
	var err error
	switch {
	case m.eng.par != nil:
		err = m.runPhasePar(ctx, total)
	case m.eng.mode == SchedTick:
		err = m.runPhaseTick(ctx, total)
	default:
		err = m.runPhaseWheel(ctx, total)
	}
	if err == nil {
		// Window boundaries rarely land on the checkEvery cadence, so report
		// the final cycle explicitly: a progress observer sees the window
		// complete instead of stalling checkEvery-1 cycles short. (A cadence
		// coincidence means one repeated report; OnAdvance is idempotent by
		// contract.)
		if f := m.rc.OnAdvance; f != nil {
			f(m.watch.cycle)
		}
	}
	return err
}

// pollBoundary runs the checkEvery-cadence work shared by every engine:
// progress callback, context poll, watchdog, and checkpoint cadence. Cores
// must be synced to the global clock before calling it.
func (m *machine) pollBoundary(ctx context.Context) error {
	if f := m.rc.OnAdvance; f != nil {
		f(m.watch.cycle)
	}
	if ctx != nil {
		select {
		case <-ctx.Done():
			return fmt.Errorf("run aborted at cycle %d: %w", m.watch.cycle, ctx.Err())
		default:
		}
	}
	if err := m.watch.check(); err != nil {
		return m.dumpLivelock(err)
	}
	if m.rc.CheckpointEvery > 0 && m.watch.cycle-m.lastCkpt >= m.rc.CheckpointEvery {
		if err := m.checkpoint(); err != nil {
			return err
		}
		m.lastCkpt = m.watch.cycle
	}
	return nil
}

// runPhaseTick is the PR 5 reference engine: every core is visited every
// cycle, and the whole machine jumps only when every core is provably idle
// at once (see skipLen).
func (m *machine) runPhaseTick(ctx context.Context, total uint64) error {
	for m.done < total {
		if n := m.skipLen(total); n > 0 {
			for _, c := range m.cores {
				c.FastForward(n)
			}
			m.watch.cycle += n
			m.done += n
		} else {
			for _, c := range m.cores {
				c.Tick()
			}
			m.watch.cycle++
			m.done++
		}
		if m.obs != nil && m.watch.cycle%m.obs.sampleEvery == 0 {
			m.obs.sample(m)
		}
		if m.watch.cycle%checkEvery == 0 {
			if err := m.pollBoundary(ctx); err != nil {
				return err
			}
		}
	}
	return nil
}

// runPhaseWheel is the event-driven engine. Each core that reports a proven
// pure-stall window (core.IdleWake) goes to sleep on the timing wheel until
// the cycle of its next required full Tick; a machine cycle touches only
// awake cores, and an all-asleep machine jumps straight to the earliest
// scheduled wake. Sleeping cores lag the global clock — their pure-stall
// charge is applied in one FastForward at wake or at the next sync point
// (poll boundary, window end), which is bit-exact because the charge is
// additive and the coalesced stall span is cause-keyed, not call-keyed.
func (m *machine) runPhaseWheel(ctx context.Context, total uint64) error {
	e := &m.eng
	for m.done < total {
		var n uint64
		if e.awake == 0 {
			n = m.sleepLen(total)
		}
		if n > 0 {
			// Every core sleeps strictly past this span: only the global
			// clock moves; the lag is settled at wake or at a sync point.
			m.watch.cycle += n
			m.done += n
		} else {
			m.stepWheel()
			m.watch.cycle++
			m.done++
		}
		if m.obs != nil && m.watch.cycle%m.obs.sampleEvery == 0 {
			// Gauges and retirement are frozen during a pure-stall window, so
			// sampling lagged sleeping cores reads exactly the values the
			// tick engine would have seen at this cycle.
			m.obs.sample(m)
		}
		if m.watch.cycle%checkEvery == 0 {
			m.syncCores()
			if err := m.pollBoundary(ctx); err != nil {
				return err
			}
		}
	}
	m.syncCores()
	return nil
}

// stepWheel executes one machine cycle under the wheel engine: wake every
// core scheduled for this cycle (settling its lagged pure-stall span in one
// FastForward), full-tick the awake cores in tile order (the serial
// contention order), and put any core whose next required tick lies in the
// future to sleep.
func (m *machine) stepWheel() {
	e := &m.eng
	now := m.watch.cycle
	for _, id := range e.wheel.AdvanceTo(now) {
		c := m.cores[id]
		if lag := now - c.Cycle(); lag > 0 {
			c.FastForward(lag)
		}
		e.asleep[id] = false
		e.awake++
	}
	for i, c := range m.cores {
		if e.asleep[i] {
			continue
		}
		c.Tick()
		if w := c.IdleWake(); w > c.Cycle() {
			e.asleep[i] = true
			e.awake--
			e.wheel.Schedule(i, w)
		}
	}
}

// sleepLen returns how far the machine may jump when every core is asleep:
// the distance to the earliest scheduled wake, clamped to the same window,
// poll, and sampling boundaries as skipLen. Zero means a wake is due on the
// current cycle and the machine must step.
func (m *machine) sleepLen(total uint64) uint64 {
	wake, ok := m.eng.wheel.Next()
	if !ok {
		panic("sim: every core asleep with an empty wake schedule")
	}
	cur := m.watch.cycle
	if wake <= cur {
		return 0
	}
	n := wake - cur
	if r := total - m.done; n > r {
		n = r
	}
	if r := checkEvery - cur%checkEvery; n > r {
		n = r
	}
	if m.obs != nil {
		if r := m.obs.sampleEvery - cur%m.obs.sampleEvery; n > r {
			n = r
		}
	}
	return n
}

// syncCores settles every sleeping core's lagged pure-stall span up to the
// global clock. Sync points (poll boundaries, window ends) are exactly where
// the machine's state is observed — watchdog snapshots, checkpoints, metric
// resets, results — so after a sync the wheel and tick engines are
// bit-identical.
func (m *machine) syncCores() {
	target := m.watch.cycle
	for _, c := range m.cores {
		if lag := target - c.Cycle(); lag > 0 {
			c.FastForward(lag)
		}
	}
}

// skipLen returns how many cycles the whole machine may fast-forward right
// now: the distance to the earliest per-core wakeup when every core reports
// a pure-stall window (core.IdleWake), zero otherwise. The jump is clamped
// so the machine lands exactly on every boundary the cycle-by-cycle loop
// would have observed — the window end, the checkEvery poll (context,
// watchdog, checkpoint cadence), and the observability sampling cadence —
// which keeps watchdog state, checkpoint bytes, and sampled gauge
// histograms bit-identical to a run without fast-forward. (Gauges are
// additionally frozen during a pure-stall window, so sampling inside the
// window reads the same values it would have cycle by cycle.)
func (m *machine) skipLen(total uint64) uint64 {
	cur := m.cores[0].Cycle()
	wake := ^uint64(0)
	for _, c := range m.cores {
		w := c.IdleWake()
		if w <= cur {
			return 0
		}
		if w < wake {
			wake = w
		}
	}
	n := wake - cur
	if r := total - m.done; n > r {
		n = r
	}
	if r := checkEvery - m.watch.cycle%checkEvery; n > r {
		n = r
	}
	if m.obs != nil {
		if r := m.obs.sampleEvery - m.watch.cycle%m.obs.sampleEvery; n > r {
			n = r
		}
	}
	return n
}

// dumpLivelock writes a post-mortem snapshot next to the configured
// checkpoint file so a stuck run can be audited and inspected offline.
func (m *machine) dumpLivelock(lerr error) error {
	if m.rc.CheckpointPath == "" {
		return lerr
	}
	if werr := checkpoint.WriteFile(m.rc.CheckpointPath+".livelock", m.encode()); werr != nil {
		return errors.Join(lerr, fmt.Errorf("sim: livelock snapshot dump failed: %w", werr))
	}
	return lerr
}

// checkpoint audits the machine and atomically persists a snapshot. An audit
// violation aborts the run instead of persisting a structurally corrupt
// snapshot.
func (m *machine) checkpoint() error {
	if err := m.auditNow(); err != nil {
		return err
	}
	if m.obs != nil {
		m.obs.noteCheckpoint(m.watch.cycle)
	}
	return checkpoint.WriteFile(m.rc.CheckpointPath, m.encode())
}

func (m *machine) result() Result {
	res := Result{
		Workload:    m.rc.Workload.Name,
		Design:      m.designs[0].Name(),
		Engine:      m.engineName(),
		PerCore:     make([]core.Metrics, m.rc.Cores),
		LLCStats:    m.uncore.LLC.Stats(),
		NoCFlits:    m.uncore.Mesh.Flits(),
		NoCQueued:   m.uncore.Mesh.QueuedCycles(),
		DRAMQueued:  m.uncore.DRAM.QueuedCycles(),
		StorageBits: m.designs[0].StorageBits(),
		Designs:     m.designs,
	}
	for i, c := range m.cores {
		res.PerCore[i] = c.M
		res.M.Add(&c.M)
	}
	if m.obs != nil {
		res.Obs = m.obs.fold(m)
	}
	return res
}

// watchdog tracks aggregate retirement across windows; it persists across
// the warm-up/measure boundary so a design that stalls right at the window
// edge is still caught.
type watchdog struct {
	threshold uint64 // 0 = disabled
	cores     []*core.Core
	uncore    *core.Uncore
	cycle     uint64 // global cycle across both windows
	lastSum   uint64
	lastAt    uint64
}

func newWatchdog(rc RunConfig, cores []*core.Core, uncore *core.Uncore) *watchdog {
	w := &watchdog{cores: cores, uncore: uncore}
	if rc.WatchdogCycles > 0 {
		w.threshold = uint64(rc.WatchdogCycles)
	}
	return w
}

// check is called every checkEvery cycles; it returns a *LivelockError when
// retirement has been flat for at least the threshold.
func (w *watchdog) check() error {
	if w.threshold == 0 {
		return nil
	}
	var sum uint64
	for _, c := range w.cores {
		sum += c.Progress()
	}
	if sum != w.lastSum {
		w.lastSum, w.lastAt = sum, w.cycle
		return nil
	}
	if stuck := w.cycle - w.lastAt; stuck >= w.threshold {
		return &LivelockError{NoProgressCycles: stuck, Snapshot: w.snapshot()}
	}
	return nil
}

func (w *watchdog) snapshot() Snapshot {
	s := Snapshot{
		Cycle:      w.cycle,
		Cores:      make([]core.DiagSnapshot, len(w.cores)),
		NoCPackets: w.uncore.Mesh.Packets(),
		NoCQueued:  w.uncore.Mesh.QueuedCycles(),
		DRAMAccess: w.uncore.DRAM.Accesses(),
		DRAMQueued: w.uncore.DRAM.QueuedCycles(),
	}
	for i, c := range w.cores {
		s.Cores[i] = c.Diag()
	}
	return s
}
