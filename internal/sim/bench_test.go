package sim

import (
	"testing"

	"dnc/internal/obs"
	"dnc/internal/prefetch"
)

// The disabled-observability fast path must stay within a couple of percent
// of the uninstrumented cycle loop (ISSUE acceptance: <2%). Compare:
//
//	go test ./internal/sim -bench BenchmarkRunObs -benchtime 5x
func benchRun(b *testing.B, oc *obs.Config) {
	b.Helper()
	rc := RunConfig{
		Workload: smallWorkload(),
		NewDesign: func() prefetch.Design {
			return prefetch.NewProactive(prefetch.DefaultProactiveConfig())
		},
		Cores:         2,
		WarmCycles:    10_000,
		MeasureCycles: 40_000,
		Seed:          1,
		Obs:           oc,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Run(rc)
		if r.M.Retired == 0 {
			b.Fatal("no instructions retired")
		}
	}
}

func BenchmarkRunObsOff(b *testing.B) { benchRun(b, nil) }

func BenchmarkRunObsSampled(b *testing.B) { benchRun(b, &obs.Config{}) }

func BenchmarkRunObsTraced(b *testing.B) {
	benchRun(b, &obs.Config{TraceEvents: 1 << 16})
}
