package sim

import (
	"context"
	"fmt"
	"os"
	"testing"

	"dnc/internal/core"
	"dnc/internal/isa"
	"dnc/internal/prefetch"
	"dnc/internal/workloads"
)

// TestTickZeroAllocs is the hot-structure contract: once the machine reaches
// steady state, advancing the default 4-core baseline configuration performs
// zero heap allocations per tick. Fast-forward is disabled so the test
// exercises the full fetch/retire/fill machinery, not the cheap stall path.
func TestTickZeroAllocs(t *testing.T) {
	rc := applyDefaults(RunConfig{
		Workload:  workloads.Params("Web-Zeus", isa.Fixed),
		NewDesign: func() prefetch.Design { return prefetch.NewBaseline(2048) },
	})
	m, err := buildMachine(rc, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.close()
	for _, c := range m.cores {
		c.SetFastForward(false)
	}
	for i := 0; i < 50_000; i++ {
		for _, c := range m.cores {
			c.Tick()
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1_000; i++ {
			for _, c := range m.cores {
				c.Tick()
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ticking allocated %.2f times per 4000 core-ticks; want 0", allocs)
	}
}

// ffDesigns are the metamorphic coverage set: one design per Quiescent
// implementation shape — the Base default (baseline, no Tick override), the
// Proactive queue family, and the two FTQ-directed designs with their own
// tick machinery (boomerang stalls, shotgun's prefetch buffer).
func ffDesigns() map[string]func() prefetch.Design {
	return map[string]func() prefetch.Design{
		"baseline":  func() prefetch.Design { return prefetch.NewBaseline(2048) },
		"proactive": func() prefetch.Design { return prefetch.NewProactive(prefetch.DefaultProactiveConfig()) },
		"boomerang": func() prefetch.Design { return prefetch.NewBoomerang(prefetch.DefaultBoomerangConfig()) },
		"shotgun":   func() prefetch.Design { return prefetch.NewShotgun(prefetch.DefaultShotgunDesignConfig()) },
	}
}

// TestFastForwardTransparent is the tentpole's metamorphic property: runs
// with the idle-cycle fast path on and off produce identical results —
// every metric counter — and byte-identical checkpoint files, across
// designs and seeds.
func TestFastForwardTransparent(t *testing.T) {
	for name, nd := range ffDesigns() {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				run := func(disable bool) (Result, []byte) {
					rc := checkpointConfig(t, nd)
					rc.Seed = seed
					rc.DisableFastForward = disable
					if name == "shotgun" {
						rc.Core = core.DefaultConfig()
						rc.Core.PrefetchBufferEntries = 64
					}
					res, err := RunChecked(context.Background(), rc)
					if err != nil {
						t.Fatal(err)
					}
					ckpt, err := os.ReadFile(rc.CheckpointPath)
					if err != nil {
						t.Fatal(err)
					}
					return res, ckpt
				}
				fast, fastCkpt := run(false)
				ref, refCkpt := run(true)
				if got, want := fingerprint(t, fast), fingerprint(t, ref); got != want {
					t.Errorf("seed %d: fast-forward changed the result\nfast: %s\nref:  %s", seed, got, want)
				}
				if string(fastCkpt) != string(refCkpt) {
					t.Errorf("seed %d: fast-forward changed the checkpoint bytes (%d vs %d bytes)",
						seed, len(fastCkpt), len(refCkpt))
				}
			})
		}
	}
}

// TestFastForwardSkipsCycles guards against the fast path silently never
// engaging (every guard in computeIdleWake failing would make the
// transparency test vacuous): a baseline run must take at least one
// machine-level jump.
func TestFastForwardSkipsCycles(t *testing.T) {
	rc := checkedConfig()
	m, err := buildMachine(applyDefaults(rc), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.close()
	jumps := 0
	total := applyDefaults(rc).WarmCycles
	for m.done < total {
		if n := m.skipLen(total); n > 0 {
			for _, c := range m.cores {
				c.FastForward(n)
			}
			m.watch.cycle += n
			m.done += n
			jumps++
		} else {
			for _, c := range m.cores {
				c.Tick()
			}
			m.watch.cycle++
			m.done++
		}
	}
	if jumps == 0 {
		t.Fatal("no machine-level fast-forward jump in 20K cycles of a 2-core baseline run")
	}
}

// TestRunSamplesParallel checks the parallel sampler: results arrive in seed
// order and match a sequential reference run for run.
func TestRunSamplesParallel(t *testing.T) {
	rc := checkedConfig()
	rc.WarmCycles = 5_000
	rc.MeasureCycles = 5_000
	got, err := RunSamples(rc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d results", len(got))
	}
	for i := range got {
		rc.Seed = int64(i + 1)
		want := Run(rc)
		if fingerprint(t, got[i]) != fingerprint(t, want) {
			t.Errorf("sample %d differs from its sequential run", i)
		}
	}
}

// TestRunSamplesSurfacesFailures checks that a failing configuration comes
// back as an error (not a panic) and does not poison the other samples.
func TestRunSamplesSurfacesFailures(t *testing.T) {
	rc := checkedConfig()
	rc.NewDesign = nil // fails validation
	_, err := RunSamples(rc, 2)
	if err == nil {
		t.Fatal("expected an error from an invalid config")
	}
}
