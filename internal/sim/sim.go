// Package sim assembles complete simulations: a generated workload, N cores
// each with their own frontend design instance, and the shared uncore. It
// implements the SimFlex-style methodology of the paper scaled to a software
// artifact: deterministic seeded samples, a warm-up window, and a
// measurement window, with cross-run derived metrics (speedup, coverage,
// FSCR) computed against a baseline run of the same workload and seeds.
package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	wl "dnc/internal/cfg"
	"dnc/internal/core"
	"dnc/internal/llc"
	"dnc/internal/obs"
	"dnc/internal/prefetch"
)

// SchedMode selects the engine that advances the machine through a window.
type SchedMode uint8

const (
	// SchedWheel (the default) is the event-driven engine: each core's
	// idleWake is generalized into a per-core wake schedule on a hierarchical
	// timing wheel (internal/sched), so a cycle only touches cores with work
	// at that cycle and an all-asleep machine jumps straight to the earliest
	// wake. Bit-exact with SchedTick by construction.
	SchedWheel SchedMode = iota
	// SchedTick is the PR 5 reference engine: every core is visited every
	// cycle (with the whole-machine jump only when all cores are idle at
	// once). It exists as the metamorphic reference for the equivalence
	// tests and for engine debugging, mirroring DisableFastForward.
	SchedTick
)

// String names the mode as stamped into Result.Engine.
func (s SchedMode) String() string {
	if s == SchedTick {
		return "tick"
	}
	return "wheel"
}

// ParseSchedMode maps an engine name ("wheel", "tick") to its mode; it is
// the single parser behind every CLI -sched flag.
func ParseSchedMode(s string) (SchedMode, error) {
	switch s {
	case "wheel", "":
		return SchedWheel, nil
	case "tick":
		return SchedTick, nil
	}
	return 0, fmt.Errorf("sim: unknown engine %q (want wheel or tick)", s)
}

// RunConfig describes one simulation.
type RunConfig struct {
	Workload wl.Params
	// NewDesign constructs one design instance per core.
	NewDesign func() prefetch.Design
	// Cores is the number of active cores (placed on tiles 0..Cores-1 of
	// the 4x4 mesh). The paper simulates 16.
	Cores int
	// WarmCycles and MeasureCycles bound the two windows (paper: 200K+200K).
	WarmCycles, MeasureCycles uint64
	// Seed offsets every core's walker seed; different seeds model
	// independent measurement samples.
	Seed int64
	// Core overrides the per-core configuration (zero value = defaults).
	Core core.Config
	// LLC overrides the LLC configuration (zero value = defaults).
	LLC llc.Config
	// NoPreload skips installing the code image in the LLC before warm-up.
	NoPreload bool
	// WatchdogCycles is the livelock threshold: the run aborts (through
	// RunChecked; Run panics) when no core retires an instruction for this
	// many consecutive cycles. 0 selects DefaultWatchdogCycles; negative
	// disables the watchdog.
	WatchdogCycles int64
	// CheckpointEvery, when nonzero, snapshots the full machine state to
	// CheckpointPath at least every given number of cycles (aligned to the
	// engine's poll cadence). The structural invariant auditor runs before
	// every snapshot; a violation aborts the run instead of persisting a
	// corrupt snapshot. Only walker-driven runs can checkpoint (see
	// ErrTraceCheckpoint).
	CheckpointEvery uint64
	// CheckpointPath is the snapshot file. Writes are atomic (temp file +
	// rename), so the file always holds the last complete snapshot. The
	// livelock watchdog additionally dumps a post-mortem snapshot to
	// CheckpointPath + ".livelock" when it aborts a run.
	CheckpointPath string
	// ResumeFrom, when set, restores the machine from the given snapshot
	// file before running, continuing the interrupted window bit-exactly.
	// The snapshot must have been taken from an identical configuration
	// (workload, design, seed, core count, window lengths).
	ResumeFrom string
	// Obs, when non-nil, enables the observability layer: latency and
	// occupancy histograms, stall-span/event tracing, and per-window gauge
	// sampling, folded into Result.Obs. Observability is diagnostic state:
	// it is not checkpointed and does not perturb timing.
	Obs *obs.Config
	// DisableFastForward forces every cycle through the full tick machinery,
	// disabling the idle-cycle fast path (on by default). Fast-forward is
	// bit-exact by construction — identical retired streams, metrics, traces,
	// and checkpoint bytes — so this exists only as the metamorphic reference
	// for the equivalence tests and for engine debugging.
	DisableFastForward bool
	// Sched selects the engine loop: the event-driven wheel scheduler (zero
	// value, default) or the tick-everything reference. Both produce
	// bit-identical results; see SchedMode.
	Sched SchedMode
	// IntraJobs, when > 1, shards the cores of this one run across that many
	// goroutines with a deterministic rendezvous before every shared-fabric
	// (NoC/LLC/DRAM) touch, so results are bit-identical to the serial
	// engines regardless of GOMAXPROCS. 0 or 1 runs serially. Requires the
	// wheel engine (the tick reference stays strictly serial) and a
	// walker-driven run. Values above the core count are clamped.
	IntraJobs int
	// OnAdvance, when non-nil, is called at every engine poll boundary (the
	// checkEvery cadence and the end of each window) with the global cycle
	// the machine has actually advanced to — including cycles covered by
	// fast-forward jumps. Progress reporting hooks onto this; it must be
	// cheap and must not touch the machine.
	OnAdvance func(cycle uint64)
}

// Result is the outcome of one simulation run.
type Result struct {
	Workload string
	Design   string
	// Engine names the engine that produced the run ("tick", "wheel", or
	// "wheel+parN" for the sharded-parallel wheel). All engines are
	// bit-exact, so this is provenance, not a cache key.
	Engine string
	// M aggregates all cores' measurement-window metrics.
	M core.Metrics
	// PerCore holds each core's metrics.
	PerCore []core.Metrics
	// LLC, mesh and memory statistics for the measurement window.
	LLCStats    llc.Stats
	NoCFlits    uint64
	NoCQueued   uint64
	DRAMQueued  uint64
	StorageBits int
	// Designs exposes the per-core design instances for harness probes
	// (e.g. Shotgun footprint miss ratios).
	Designs []prefetch.Design
	// Obs holds the run's observability snapshot when RunConfig.Obs was set
	// (nil otherwise). Trace events live only in memory; JSON encodings of
	// the Result carry the histogram and counter snapshots.
	Obs *obs.RunObs
}

// progCache memoizes generated programs; generation is deterministic in the
// parameters, and programs are immutable once built.
var progCache sync.Map // key wl.Params -> *wl.Program

// Program returns the (cached) generated program for the parameters. The
// Params value itself is the cache key — every field participates, since
// generation is deterministic in the full parameter set, so any two
// distinct sets must get distinct cache entries. (An earlier key of just
// Name|Mode|Footprint|GenSeed silently served the wrong program to ad-hoc
// parameter sets — e.g. the fuzzing harness — that varied only a branch-mix
// knob; a later fmt.Sprintf("%#v") key fixed that but cost a multi-KB
// formatting pass per lookup.)
func Program(p wl.Params) *wl.Program {
	if v, ok := progCache.Load(p); ok {
		return v.(*wl.Program)
	}
	prog := wl.Generate(p)
	progCache.Store(p, prog)
	return prog
}

// Run executes one simulation and returns its result. It panics on
// misconfiguration or livelock; callers that need failures as data (sweep
// engines, CLIs) should use RunChecked instead.
func Run(rc RunConfig) Result {
	r, err := runChecked(nil, rc, nil)
	if err != nil {
		panic(err)
	}
	return r
}

// RunSamples executes n independently seeded runs of the same configuration
// concurrently, bounded by GOMAXPROCS workers, and returns the results in
// seed order (seed i+1 at index i). Runs are independent machines, so
// parallel execution is bit-exact with sequential; any failed run surfaces
// as a *RunError in the joined error (successful samples still fill their
// slots). Sampled runs must not set CheckpointPath — concurrent samples
// would race on the one snapshot file (use per-sample configs and
// RunChecked directly for that). This is deliberately an in-package worker
// pool rather than the sweep engine's (internal/sim/runner): runner imports
// sim, so sim cannot use it without an import cycle.
func RunSamples(rc RunConfig, n int) ([]Result, error) {
	out := make([]Result, n)
	errs := make([]error, n)
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := rc
			c.Seed = int64(i + 1)
			out[i], errs[i] = RunChecked(context.Background(), c)
		}(i)
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// ---- derived cross-run metrics ----

// IPC returns the aggregate IPC of a run.
func IPC(r Result) float64 { return r.M.IPC() }

// Speedup returns r's performance normalized to base (same workload/seed).
func Speedup(r, base Result) float64 {
	b := base.M.IPC()
	if b == 0 {
		return 0
	}
	return r.M.IPC() / b
}

// MissCoverage returns the fraction of the baseline's L1i demand misses
// (per kilo-instruction) eliminated by the design.
func MissCoverage(r, base Result) float64 {
	b := base.M.MPKI(base.M.DemandMisses)
	if b == 0 {
		return 0
	}
	c := 1 - r.M.MPKI(r.M.DemandMisses)/b
	return c
}

// SeqMissCoverage is MissCoverage restricted to sequential misses (Fig. 3).
func SeqMissCoverage(r, base Result) float64 {
	b := base.M.MPKI(base.M.SeqMisses)
	if b == 0 {
		return 0
	}
	return 1 - r.M.MPKI(r.M.SeqMisses)/b
}

// perInst returns count/retired, or 0 when nothing retired (a failed or
// degenerate run contributes a defined zero instead of NaN/Inf).
func perInst(count, retired uint64) float64 {
	if retired == 0 {
		return 0
	}
	return float64(count) / float64(retired)
}

// FSCR returns the frontend stall cycle reduction (Fig. 15): the fraction
// of the baseline's L1i/BTB-induced stall cycles (per instruction)
// eliminated by the design. Runs with zero retirement contribute 0.
func FSCR(r, base Result) float64 {
	if r.M.Retired == 0 {
		return 0
	}
	bi := perInst(base.M.FrontendStalls(), base.M.Retired)
	if bi == 0 {
		return 0
	}
	return 1 - perInst(r.M.FrontendStalls(), r.M.Retired)/bi
}

// BandwidthRatio returns r's L1i external requests per instruction relative
// to base (Fig. 5). Runs with zero retirement contribute 0.
func BandwidthRatio(r, base Result) float64 {
	b := perInst(base.M.ExtRequests, base.M.Retired)
	if b == 0 {
		return 0
	}
	return perInst(r.M.ExtRequests, r.M.Retired) / b
}

// LookupRatio returns r's L1i cache lookups per instruction relative to
// base (Fig. 14). Runs with zero retirement contribute 0.
func LookupRatio(r, base Result) float64 {
	b := perInst(base.M.CacheLookups, base.M.Retired)
	if b == 0 {
		return 0
	}
	return perInst(r.M.CacheLookups, r.M.Retired) / b
}
