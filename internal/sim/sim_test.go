package sim

import (
	"testing"

	wl "dnc/internal/cfg"
	"dnc/internal/core"
	"dnc/internal/isa"
	"dnc/internal/prefetch"
)

// smallWorkload is a fast test workload.
func smallWorkload() wl.Params {
	return wl.Params{
		Name:             "sim-test",
		FootprintBytes:   1 << 20,
		LoadFrac:         0.2,
		StoreFrac:        0.08,
		RareBlockFrac:    0.08,
		BackwardFrac:     0.1,
		CondFrac:         0.42,
		JumpFrac:         0.07,
		CallFrac:         0.22,
		IndirectCallFrac: 0.06,
		GenSeed:          9,
	}
}

func quickRun(t *testing.T, nd func() prefetch.Design) Result {
	t.Helper()
	return Run(RunConfig{
		Workload:      smallWorkload(),
		NewDesign:     nd,
		Cores:         2,
		WarmCycles:    30_000,
		MeasureCycles: 30_000,
		Seed:          1,
	})
}

func TestBaselineRunsAndRetires(t *testing.T) {
	r := quickRun(t, func() prefetch.Design { return prefetch.NewBaseline(2048) })
	if r.M.Retired == 0 {
		t.Fatal("no instructions retired")
	}
	ipc := r.M.IPC()
	if ipc <= 0.05 || ipc > 3.0 {
		t.Fatalf("baseline IPC = %.3f, implausible", ipc)
	}
	if r.M.DemandMisses == 0 {
		t.Fatal("a 1MB footprint must miss in a 32KB L1i")
	}
	if r.M.FrontendStalls() == 0 {
		t.Fatal("no frontend stalls recorded")
	}
	if r.M.SeqMisses+r.M.DiscMisses != r.M.DemandMisses {
		t.Fatalf("miss classification does not add up: %d+%d != %d",
			r.M.SeqMisses, r.M.DiscMisses, r.M.DemandMisses)
	}
}

func TestDeterminism(t *testing.T) {
	a := quickRun(t, func() prefetch.Design { return prefetch.NewBaseline(2048) })
	b := quickRun(t, func() prefetch.Design { return prefetch.NewBaseline(2048) })
	if a.M != b.M {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", a.M, b.M)
	}
}

func TestNLImprovesOverBaseline(t *testing.T) {
	base := quickRun(t, func() prefetch.Design { return prefetch.NewBaseline(2048) })
	nl := quickRun(t, func() prefetch.Design { return prefetch.NewNXL(1, 2048) })
	if nl.M.PrefetchesIssued == 0 {
		t.Fatal("NL issued no prefetches")
	}
	sp := Speedup(nl, base)
	if sp < 1.0 {
		t.Errorf("NL speedup = %.3f, expected >= 1.0", sp)
	}
	cov := MissCoverage(nl, base)
	if cov <= 0.05 {
		t.Errorf("NL miss coverage = %.3f, expected materially positive", cov)
	}
}

func TestSN4LDisBTBImprovesOverNL(t *testing.T) {
	base := quickRun(t, func() prefetch.Design { return prefetch.NewBaseline(2048) })
	nl := quickRun(t, func() prefetch.Design { return prefetch.NewNXL(1, 2048) })
	full := quickRun(t, func() prefetch.Design {
		cfg := prefetch.DefaultProactiveConfig()
		cfg.WithBTBPrefetch = true
		return prefetch.NewProactive(cfg)
	})
	if full.M.PrefetchesIssued == 0 {
		t.Fatal("proactive design issued no prefetches")
	}
	spNL := Speedup(nl, base)
	spFull := Speedup(full, base)
	if spFull <= spNL {
		t.Errorf("SN4L+Dis+BTB speedup %.3f <= NL %.3f", spFull, spNL)
	}
	if FSCR(full, base) <= FSCR(nl, base) {
		t.Errorf("SN4L+Dis+BTB FSCR %.3f <= NL %.3f", FSCR(full, base), FSCR(nl, base))
	}
}

func TestBTBDirectedDesignsRun(t *testing.T) {
	base := quickRun(t, func() prefetch.Design { return prefetch.NewBaseline(2048) })
	boom := quickRun(t, func() prefetch.Design {
		return prefetch.NewBoomerang(prefetch.DefaultBoomerangConfig())
	})
	if boom.M.Retired == 0 {
		t.Fatal("boomerang run retired nothing")
	}
	if boom.M.StallFTQ == 0 {
		t.Error("boomerang never stalled on FTQ — gating inactive?")
	}
	if Speedup(boom, base) < 0.7 {
		t.Errorf("boomerang speedup %.3f collapsed", Speedup(boom, base))
	}

	shotCfg := prefetch.DefaultShotgunDesignConfig()
	shot := Run(RunConfig{
		Workload:      smallWorkload(),
		NewDesign:     func() prefetch.Design { return prefetch.NewShotgun(shotCfg) },
		Cores:         2,
		WarmCycles:    30_000,
		MeasureCycles: 30_000,
		Seed:          1,
		Core: func() (c core.Config) {
			c = core.DefaultConfig()
			c.PrefetchBufferEntries = 64
			return
		}(),
	})
	if shot.M.Retired == 0 {
		t.Fatal("shotgun run retired nothing")
	}
	sd := shot.Designs[0].(*prefetch.Shotgun)
	if sd.SplitBTB().ULookups == 0 {
		t.Error("shotgun U-BTB never consulted")
	}
}

func TestConfluenceRuns(t *testing.T) {
	base := quickRun(t, func() prefetch.Design { return prefetch.NewBaseline(2048) })
	conf := quickRun(t, func() prefetch.Design {
		return prefetch.NewConfluence(prefetch.DefaultConfluenceConfig())
	})
	if conf.M.PrefetchesIssued == 0 {
		t.Fatal("confluence issued no prefetches")
	}
	if Speedup(conf, base) < 1.0 {
		t.Errorf("confluence speedup %.3f < 1", Speedup(conf, base))
	}
}

func TestPerfectL1i(t *testing.T) {
	base := quickRun(t, func() prefetch.Design { return prefetch.NewBaseline(2048) })
	perfect := Run(RunConfig{
		Workload:      smallWorkload(),
		NewDesign:     func() prefetch.Design { return prefetch.NewBaseline(2048) },
		Cores:         2,
		WarmCycles:    30_000,
		MeasureCycles: 30_000,
		Seed:          1,
		Core: func() (c core.Config) {
			c = core.DefaultConfig()
			c.PerfectL1i = true
			return
		}(),
	})
	if perfect.M.DemandMisses != 0 {
		t.Fatalf("perfect L1i recorded %d misses", perfect.M.DemandMisses)
	}
	if Speedup(perfect, base) <= 1.0 {
		t.Errorf("perfect L1i speedup %.3f <= 1", Speedup(perfect, base))
	}
}

func TestVariableModeWithDVLLC(t *testing.T) {
	p := smallWorkload()
	p.Mode = isa.Variable
	r := Run(RunConfig{
		Workload:      p,
		NewDesign:     func() prefetch.Design { return prefetch.NewBaseline(2048) },
		Cores:         2,
		WarmCycles:    30_000,
		MeasureCycles: 30_000,
		Seed:          1,
	})
	if r.M.Retired == 0 {
		t.Fatal("variable-mode run retired nothing")
	}
	if r.LLCStats.BFStores == 0 {
		t.Error("no branch footprints stored in DV-LLC")
	}
}

func TestProgramCache(t *testing.T) {
	a := Program(smallWorkload())
	b := Program(smallWorkload())
	if a != b {
		t.Fatal("program cache returned distinct instances")
	}
}

// TestProgramCacheKeysEveryParam is the regression test for the under-keyed
// program cache: two parameter sets differing only in a branch-mix knob (not
// in Name/Mode/Footprint/GenSeed) must generate distinct programs, not share
// a cache entry. The stale-entry bug surfaced as phantom divergences in the
// differential fuzzing harness, which varies exactly these knobs.
func TestProgramCacheKeysEveryParam(t *testing.T) {
	base := smallWorkload()
	tweaked := base
	tweaked.CondFrac = base.CondFrac + 0.05
	a, b := Program(base), Program(tweaked)
	if a == b {
		t.Fatal("cache served the same program for distinct branch mixes")
	}
	// And the tweak must actually change the generated code, proving the
	// distinct entries are not just duplicate instances.
	count := func(p *wl.Program) (cond int) {
		for i := range p.Blocks {
			if term, ok := p.Blocks[i].Terminator(); ok && term.Kind == isa.KindCondBranch {
				cond++
			}
		}
		return cond
	}
	if count(a) == count(b) {
		t.Fatal("distinct branch mixes generated identical programs")
	}
}

func TestTraceReplayMatchesWorkloadShape(t *testing.T) {
	p := smallWorkload()
	dir := t.TempDir()
	path := dir + "/test.dnct"
	if err := WriteTrace(p, 1, 2_000_000, path); err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{
		Workload:      p,
		NewDesign:     func() prefetch.Design { return prefetch.NewBaseline(2048) },
		Cores:         2,
		WarmCycles:    20_000,
		MeasureCycles: 20_000,
		Seed:          1,
	}
	replay, err := RunTrace(rc, path)
	if err != nil {
		t.Fatal(err)
	}
	if replay.M.Retired == 0 {
		t.Fatal("replay retired nothing")
	}
	live := Run(rc)
	// Replay of the same workload must land in the same statistical regime
	// (identical program, different sample interleavings).
	lm, rm := live.M.MPKI(live.M.DemandMisses), replay.M.MPKI(replay.M.DemandMisses)
	if rm < lm*0.4 || rm > lm*2.5 {
		t.Errorf("replay MPKI %.1f far from live %.1f", rm, lm)
	}
	li, ri := live.M.IPC(), replay.M.IPC()
	if ri < li*0.5 || ri > li*2 {
		t.Errorf("replay IPC %.3f far from live %.3f", ri, li)
	}
}

func TestTraceReplayModeMismatch(t *testing.T) {
	p := smallWorkload()
	dir := t.TempDir()
	path := dir + "/test.dnct"
	if err := WriteTrace(p, 1, 1000, path); err != nil {
		t.Fatal(err)
	}
	pv := p
	pv.Mode = isa.Variable
	_, err := RunTrace(RunConfig{
		Workload:  pv,
		NewDesign: func() prefetch.Design { return prefetch.NewBaseline(2048) },
		Cores:     1, WarmCycles: 100, MeasureCycles: 100,
	}, path)
	if err == nil {
		t.Fatal("mode mismatch accepted")
	}
}

func TestTraceReplayMissingFile(t *testing.T) {
	_, err := RunTrace(RunConfig{
		Workload:  smallWorkload(),
		NewDesign: func() prefetch.Design { return prefetch.NewBaseline(2048) },
		Cores:     1, WarmCycles: 100, MeasureCycles: 100,
	}, "/nonexistent/path.dnct")
	if err == nil {
		t.Fatal("missing trace accepted")
	}
}
