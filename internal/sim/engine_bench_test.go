package sim

import (
	"fmt"
	"testing"

	"dnc/internal/core"
	"dnc/internal/isa"
	"dnc/internal/prefetch"
	"dnc/internal/workloads"
)

// Engine regression benchmarks: the default 4-core paper configuration
// (Web-Zeus, 200K warm + 200K measure) under the no-prefetch baseline and
// the paper's headline SN4L+Dis+BTB design. scripts/benchdiff.sh compares
// their ns/op against the committed BENCH_engine.json and fails CI on
// regressions. Run with:
//
//	go test ./internal/sim -bench BenchmarkEngine -benchtime 3x -count 3
func benchEngine(b *testing.B, designName string, cores int) {
	b.Helper()
	var entry prefetch.CatalogEntry
	for _, e := range prefetch.Catalog() {
		if e.Name == designName {
			entry = e
		}
	}
	if entry.New == nil {
		b.Fatalf("catalog entry %q missing", designName)
	}
	cc := core.DefaultConfig()
	cc.PrefetchBufferEntries = entry.PrefetchBufferEntries
	rc := RunConfig{
		Workload:  workloads.Params("Web-Zeus", isa.Fixed),
		NewDesign: entry.New,
		Cores:     cores,
		Core:      cc,
		Seed:      1,
	}
	Program(rc.Workload) // generation cost is one-time; keep it out of the loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Run(rc)
		if r.M.Retired == 0 {
			b.Fatal("no instructions retired")
		}
	}
}

func BenchmarkEngineBaseline(b *testing.B) { benchEngine(b, "baseline", 4) }

func BenchmarkEngineSN4LDisBTB(b *testing.B) { benchEngine(b, "SN4L+Dis+BTB", 4) }

// The 16-core entries cover the paper's full-scale configuration — the one
// ROADMAP item 4 targets, where idle fast-forward stops paying (someone is
// almost always busy) and the engine's per-cycle cost dominates.
func BenchmarkEngine16CoreBaseline(b *testing.B) { benchEngine(b, "baseline", 16) }

func BenchmarkEngine16CoreSN4LDisBTB(b *testing.B) { benchEngine(b, "SN4L+Dis+BTB", 16) }

// BenchmarkSchedModes is the engine comparison behind the EXPERIMENTS.md
// wall-clock table: tick vs wheel vs wheel+parallel, per design, at
// 1/4/8/16 cores. Deliberately outside the BenchmarkEngine prefix so the
// benchdiff gate and CI smoke don't run the full matrix; invoke it (or a
// -bench filtered slice of it) directly:
//
//	go test ./internal/sim -run '^$' -bench BenchmarkSchedModes -benchtime 2x -count 2
func BenchmarkSchedModes(b *testing.B) {
	modes := []struct {
		name  string
		sched SchedMode
		intra int
	}{
		{"tick", SchedTick, 0},
		{"wheel", SchedWheel, 0},
		{"wheel+par4", SchedWheel, 4},
	}
	for _, designName := range []string{"baseline", "SN4L+Dis+BTB"} {
		var entry prefetch.CatalogEntry
		for _, e := range prefetch.Catalog() {
			if e.Name == designName {
				entry = e
			}
		}
		for _, cores := range []int{1, 4, 8, 16} {
			for _, m := range modes {
				if m.intra > 1 && cores < m.intra {
					continue // clamping would just re-measure serial wheel
				}
				b.Run(fmt.Sprintf("%s/%s/cores=%d", designName, m.name, cores), func(b *testing.B) {
					cc := core.DefaultConfig()
					cc.PrefetchBufferEntries = entry.PrefetchBufferEntries
					rc := RunConfig{
						Workload:  workloads.Params("Web-Zeus", isa.Fixed),
						NewDesign: entry.New,
						Cores:     cores,
						Core:      cc,
						Seed:      1,
						Sched:     m.sched,
						IntraJobs: m.intra,
					}
					Program(rc.Workload)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						r := Run(rc)
						if r.M.Retired == 0 {
							b.Fatal("no instructions retired")
						}
					}
				})
			}
		}
	}
}
