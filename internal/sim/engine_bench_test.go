package sim

import (
	"testing"

	"dnc/internal/core"
	"dnc/internal/isa"
	"dnc/internal/prefetch"
	"dnc/internal/workloads"
)

// Engine regression benchmarks: the default 4-core paper configuration
// (Web-Zeus, 200K warm + 200K measure) under the no-prefetch baseline and
// the paper's headline SN4L+Dis+BTB design. scripts/benchdiff.sh compares
// their ns/op against the committed BENCH_engine.json and fails CI on
// regressions. Run with:
//
//	go test ./internal/sim -bench BenchmarkEngine -benchtime 3x -count 3
func benchEngine(b *testing.B, designName string) {
	b.Helper()
	var entry prefetch.CatalogEntry
	for _, e := range prefetch.Catalog() {
		if e.Name == designName {
			entry = e
		}
	}
	if entry.New == nil {
		b.Fatalf("catalog entry %q missing", designName)
	}
	cc := core.DefaultConfig()
	cc.PrefetchBufferEntries = entry.PrefetchBufferEntries
	rc := RunConfig{
		Workload:  workloads.Params("Web-Zeus", isa.Fixed),
		NewDesign: entry.New,
		Cores:     4,
		Core:      cc,
		Seed:      1,
	}
	Program(rc.Workload) // generation cost is one-time; keep it out of the loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Run(rc)
		if r.M.Retired == 0 {
			b.Fatal("no instructions retired")
		}
	}
}

func BenchmarkEngineBaseline(b *testing.B) { benchEngine(b, "baseline") }

func BenchmarkEngineSN4LDisBTB(b *testing.B) { benchEngine(b, "SN4L+Dis+BTB") }
