package sim

import (
	"context"
	"errors"
	"os"
	"testing"

	"dnc/internal/prefetch"
	"dnc/internal/trace"
)

func writeSmallTrace(t *testing.T, records uint64) string {
	t.Helper()
	path := t.TempDir() + "/replay.dnct"
	if err := WriteTrace(smallWorkload(), 1, records, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func replayConfig() RunConfig {
	return RunConfig{
		Workload:      smallWorkload(),
		NewDesign:     func() prefetch.Design { return prefetch.NewBaseline(2048) },
		Cores:         1, // skip offset 0: replay reaches the corrupt tail
		WarmCycles:    10_000,
		MeasureCycles: 10_000,
		Seed:          1,
	}
}

// TestRunTraceCheckedCorruptTail replays a trace with trailing garbage: a
// stray flags byte whose record body is missing. The decoder error surfaces
// as a *RunError wrapping trace.ReplayError instead of a process abort.
func TestRunTraceCheckedCorruptTail(t *testing.T) {
	path := writeSmallTrace(t, 3000)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, err = RunTraceChecked(context.Background(), replayConfig(), path)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %v", err)
	}
	var rpe *trace.ReplayError
	if !errors.As(err, &rpe) {
		t.Fatalf("cause is not a trace.ReplayError: %v", err)
	}
}

// TestRunTraceCheckedTruncatedMidRecord cuts a trace off in the middle of a
// record; mid-replay truncation must surface as an error, not kill the run.
func TestRunTraceCheckedTruncatedMidRecord(t *testing.T) {
	path := writeSmallTrace(t, 3000)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-1); err != nil {
		t.Fatal(err)
	}
	_, err = RunTraceChecked(context.Background(), replayConfig(), path)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %v", err)
	}
}

// TestRunTraceCheckedTruncatedHeader: a file shorter than the header fails
// cleanly at stream construction.
func TestRunTraceCheckedTruncatedHeader(t *testing.T) {
	path := t.TempDir() + "/short.dnct"
	if err := os.WriteFile(path, []byte("DN"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := RunTraceChecked(context.Background(), replayConfig(), path)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %v", err)
	}
}
