package runner

import (
	"encoding/json"
	"reflect"
	"testing"

	"dnc/internal/core"
	"dnc/internal/obs"
	"dnc/internal/sim"
	"dnc/internal/stats"
)

// resultJSONExcluded lists the sim.Result fields deliberately absent from
// the wire form, with the reason. Everything else MUST round-trip: the
// journal, the dncserved cache digest, and the column store all read
// results through ResultJSON, so a field missing here is silently missing
// from every durable artifact.
var resultJSONExcluded = map[string]string{
	"Designs": "live prefetch.Design interfaces; probe state cannot round-trip through JSON",
}

// TestResultJSONCoversEveryResultField walks sim.Result by reflection:
// every field must either exist in ResultJSON (same name, same type) or be
// explicitly excluded above. Adding a field to sim.Result without
// extending the wire form fails this test at the commit that adds it.
func TestResultJSONCoversEveryResultField(t *testing.T) {
	rt := reflect.TypeOf(sim.Result{})
	jt := reflect.TypeOf(ResultJSON{})
	jf := map[string]reflect.Type{}
	for i := 0; i < jt.NumField(); i++ {
		f := jt.Field(i)
		jf[f.Name] = f.Type
	}
	// ResultJSON renames LLCStats's JSON key but keeps the field name; map
	// any future alias here if a rename is ever needed.
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if _, excluded := resultJSONExcluded[f.Name]; excluded {
			if _, present := jf[f.Name]; present {
				t.Errorf("sim.Result.%s is both excluded and present in ResultJSON; drop it from the exclusion list", f.Name)
			}
			continue
		}
		typ, ok := jf[f.Name]
		if !ok {
			t.Errorf("sim.Result.%s is missing from ResultJSON: add it to the wire form (and the store conversion) or document the exclusion", f.Name)
			continue
		}
		if typ != f.Type {
			t.Errorf("ResultJSON.%s has type %v, sim.Result has %v", f.Name, typ, f.Type)
		}
	}
	// The inverse: ResultJSON must not carry fields sim.Result lacks (a
	// stale field would deserialize to garbage silently).
	rf := map[string]bool{}
	for i := 0; i < rt.NumField(); i++ {
		rf[rt.Field(i).Name] = true
	}
	for name := range jf {
		if !rf[name] {
			t.Errorf("ResultJSON.%s has no counterpart in sim.Result", name)
		}
	}
}

// TestResultJSONRoundTripExhaustive: a sim.Result with every non-excluded
// field populated (counters via reflection, so new counters join
// automatically) must survive Result → ResultJSON → JSON → ResultJSON →
// Result unchanged.
func TestResultJSONRoundTripExhaustive(t *testing.T) {
	fill := func(v reflect.Value, base uint64) {
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).Kind() == reflect.Uint64 {
				v.Field(i).SetUint(base + uint64(i))
			}
		}
	}
	in := sim.Result{
		Workload:    "w",
		Design:      "d",
		PerCore:     make([]core.Metrics, 2),
		NoCFlits:    41,
		NoCQueued:   42,
		DRAMQueued:  43,
		StorageBits: 44,
		Obs: &obs.RunObs{
			Hists: []obs.HistSnapshot{{Name: "h", Bounds: []uint64{1, 2}, Counts: []uint64{3, 4, 5},
				N: 12, Sum: 30, Min: 1, Max: 9}},
			Counters: []stats.CounterValue{{Name: "c", Value: 6}},
			Series: []obs.SeriesSnapshot{{Name: "s", Cycles: []uint64{256, 512},
				Values: []float64{1.5, 0.25}}},
			TraceTotal:   7,
			TraceDropped: 8,
		},
	}
	fill(reflect.ValueOf(&in.M).Elem(), 100)
	fill(reflect.ValueOf(&in.PerCore[0]).Elem(), 200)
	fill(reflect.ValueOf(&in.PerCore[1]).Elem(), 300)
	fill(reflect.ValueOf(&in.LLCStats).Elem(), 400)

	raw, err := json.Marshal(NewResultJSON(in))
	if err != nil {
		t.Fatal(err)
	}
	var decoded ResultJSON
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	got := decoded.Result()
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip diverged:\ngot  %+v\nwant %+v", got, in)
	}
}
