package runner

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dnc/internal/sim"
)

// makeInterruptedSnapshot runs the cell's configuration standalone with
// checkpointing on and kills it as soon as the first snapshot lands,
// simulating a sweep process that died mid-cell.
func makeInterruptedSnapshot(t *testing.T, cfg sim.RunConfig, path string) {
	t.Helper()
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = 4096
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for {
			if _, err := os.Stat(path); err == nil {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
	if _, err := sim.RunChecked(ctx, cfg); err == nil {
		t.Log("interruption lost the race; cell completed on its own")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no snapshot produced: %v", err)
	}
}

// TestSweepResumesFromCellSnapshot is the crash-resumable-sweep property: a
// cell whose previous process died mid-run (leaving a snapshot but no
// journal entry) finishes from the snapshot and produces the same result as
// an uninterrupted run, then cleans its snapshot up.
func TestSweepResumesFromCellSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(0, newBaseline)
	cfg.WarmCycles = 20_000
	cfg.MeasureCycles = 20_000
	cell := Cell{ID: "wl0|baseline|s1", Config: cfg}

	want := sim.Run(cfg)

	ckpt := cellCheckpointPath(dir, cell.ID)
	makeInterruptedSnapshot(t, cfg, ckpt)

	rep, err := Sweep(context.Background(), []Cell{cell}, Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Cells[0]
	if got.Status != StatusOK {
		t.Fatalf("cell failed: %v", got.Err)
	}
	if got.Result.M != want.M {
		t.Error("resumed cell diverged from uninterrupted run")
	}
	if _, serr := os.Stat(ckpt); !os.IsNotExist(serr) {
		t.Error("snapshot not cleaned up after successful completion")
	}
}

// TestSweepDiscardsUnusableSnapshot: a truncated or garbage snapshot (e.g.
// from a crash mid-write before the atomic rename, or a stale format) must
// not wedge the cell — it is discarded and the cell restarts fresh.
func TestSweepDiscardsUnusableSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(1, newBaseline)
	cell := Cell{ID: "wl1|baseline|s1", Config: cfg}

	ckpt := cellCheckpointPath(dir, cell.ID)
	if err := os.WriteFile(ckpt, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Sweep(context.Background(), []Cell{cell}, Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Cells[0]
	if got.Status != StatusOK {
		t.Fatalf("cell failed on a corrupt snapshot: %v", got.Err)
	}
	if got.Attempts != 1 {
		t.Errorf("snapshot discard consumed a retry (attempts=%d)", got.Attempts)
	}
	want := sim.Run(cfg)
	if got.Result.M != want.M {
		t.Error("fresh rerun after snapshot discard diverged from direct run")
	}
}

// TestSweepSnapshotMismatchedConfig: a snapshot from an older sweep whose
// cell ID collides but whose configuration changed (here: a different seed)
// must be rejected by the header check and the cell rerun fresh.
func TestSweepSnapshotMismatchedConfig(t *testing.T) {
	dir := t.TempDir()
	oldCfg := testConfig(2, newBaseline)
	oldCfg.WarmCycles = 20_000
	oldCfg.MeasureCycles = 20_000

	newCfg := oldCfg
	newCfg.Seed = 99
	cell := Cell{ID: "wl2|baseline", Config: newCfg}

	ckpt := cellCheckpointPath(dir, cell.ID)
	makeInterruptedSnapshot(t, oldCfg, ckpt)

	rep, err := Sweep(context.Background(), []Cell{cell}, Options{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Cells[0]
	if got.Status != StatusOK {
		t.Fatalf("cell failed: %v", got.Err)
	}
	want := sim.Run(newCfg)
	if got.Result.M != want.M {
		t.Error("cell restored a snapshot from a different configuration")
	}
}

// TestSweepJournalSyncEvery checks that batched fsync still journals every
// cell and that a follow-up sweep resumes them all.
func TestSweepJournalSyncEvery(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	cells := make([]Cell, 4)
	for i := range cells {
		cells[i] = Cell{ID: fmt.Sprintf("c%d", i), Config: testConfig(i, newBaseline)}
	}
	rep, err := Sweep(context.Background(), cells, Options{
		Jobs:        2,
		JournalPath: journal,
		SyncEvery:   64, // larger than the sweep: only the final sync runs
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != len(cells) {
		t.Fatalf("ok = %d, want %d", rep.OK, len(cells))
	}
	rep2, err := Sweep(context.Background(), cells, Options{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != len(cells) {
		t.Fatalf("batched-sync journal lost cells: resumed %d of %d", rep2.Resumed, len(cells))
	}
}

// TestJournalSurfacesWriteErrors: a journal that can no longer be written
// (file closed underneath, disk gone) must report the failure through Err
// instead of silently losing the record — Sweep folds this into its return.
func TestJournalSurfacesWriteErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := openJournal(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	j.f.Close() // simulate the descriptor dying underneath the journal
	j.append(CellResult{ID: "c0", Status: StatusOK})
	if j.Err() == nil {
		t.Fatal("write onto a dead journal reported no error")
	}
	j.f = nil // already closed; keep close() from double-closing
}
