package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"dnc/internal/httpx"
)

// Progress tracks a sweep's live state for periodic console summaries and
// the debug HTTP endpoint. A nil *Progress is valid everywhere and disables
// tracking. One Progress may observe several consecutive sweeps (e.g. a
// prewarm pass followed by the main one); totals accumulate.
type Progress struct {
	mu      sync.Mutex
	start   time.Time
	total   int
	done    int
	ok      int
	failed  int
	resumed int
	// retried counts extra attempts beyond each cell's first.
	retried int
	running map[string]*cellRun

	journalAppends int
	journalPending int

	// observer, when set, sees every finished cell — the bridge that feeds
	// per-cell wall time and attempt counts into a metrics layer without
	// Progress itself depending on one.
	observer func(CellResult)
}

// cellRun is one in-flight cell: when it started, and the last simulated
// cycle its engine reported through RunConfig.OnAdvance.
type cellRun struct {
	at    time.Time
	cycle uint64
}

// NewProgress returns an empty tracker; the clock starts now.
func NewProgress() *Progress {
	return &Progress{start: time.Now(), running: make(map[string]*cellRun)}
}

// addTotal grows the expected cell count (called once per Sweep).
func (p *Progress) addTotal(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total += n
	p.mu.Unlock()
}

// begin marks a cell as executing.
func (p *Progress) begin(id string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.running[id] = &cellRun{at: time.Now()}
	p.mu.Unlock()
}

// advance records how far a running cell's simulation has progressed. The
// engine reports through RunConfig.OnAdvance at its poll cadence (every
// ~1K simulated cycles), so the per-call cost of the mutex is immaterial.
// Unknown IDs (a poll racing the cell's own completion) are ignored.
func (p *Progress) advance(id string, cycle uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if r, ok := p.running[id]; ok {
		r.cycle = cycle
	}
	p.mu.Unlock()
}

// SetObserver registers a callback invoked with every finished cell (after
// the tally update, outside the lock). Set it before the sweep starts; a
// nil Progress ignores it.
func (p *Progress) SetObserver(fn func(CellResult)) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.observer = fn
	p.mu.Unlock()
}

// observe folds a finished cell into the tally.
func (p *Progress) observe(res CellResult) {
	if p == nil {
		return
	}
	p.mu.Lock()
	delete(p.running, res.ID)
	p.done++
	switch res.Status {
	case StatusOK:
		p.ok++
	case StatusResumed:
		p.resumed++
	default:
		p.failed++
	}
	if res.Attempts > 1 {
		p.retried += res.Attempts - 1
	}
	fn := p.observer
	p.mu.Unlock()
	if fn != nil {
		fn(res)
	}
}

// journalLag records the journal's append/fsync position.
func (p *Progress) journalLag(appends, pending int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.journalAppends = appends
	p.journalPending = pending
	p.mu.Unlock()
}

// ProgressSnapshot is a point-in-time view of a sweep.
type ProgressSnapshot struct {
	Total   int `json:"total"`
	Done    int `json:"done"`
	OK      int `json:"ok"`
	Failed  int `json:"failed"`
	Resumed int `json:"resumed"`
	Retried int `json:"retried"`
	// Running lists in-flight cell IDs, longest-running first.
	Running []string `json:"running,omitempty"`
	// RunningCycles maps each in-flight cell to the simulated cycle its
	// engine last reported (RunConfig.OnAdvance), so a long paper-scale cell
	// is visibly moving between /debug/sweep polls instead of looking hung.
	// Cells whose engine has not yet reached a poll boundary report 0.
	RunningCycles map[string]uint64 `json:"running_cycles,omitempty"`
	// JournalAppends and JournalPending give the journal's durability lag:
	// records written this sweep and how many of them await an fsync.
	JournalAppends int           `json:"journal_appends"`
	JournalPending int           `json:"journal_pending"`
	Elapsed        time.Duration `json:"elapsed_ns"`
	// CellsPerSec is the completion rate so far; ETA extrapolates it over
	// the remaining cells (zero when the rate is unknown).
	CellsPerSec float64       `json:"cells_per_sec"`
	ETA         time.Duration `json:"eta_ns"`
}

// Snapshot captures the current state. Safe on a nil tracker (zero value).
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Total: p.total, Done: p.done, OK: p.ok, Failed: p.failed,
		Resumed: p.resumed, Retried: p.retried,
		JournalAppends: p.journalAppends, JournalPending: p.journalPending,
		Elapsed: time.Since(p.start),
	}
	type rc struct {
		id string
		at time.Time
	}
	run := make([]rc, 0, len(p.running))
	for id, r := range p.running {
		run = append(run, rc{id, r.at})
	}
	sort.Slice(run, func(i, j int) bool { return run[i].at.Before(run[j].at) })
	for _, r := range run {
		s.Running = append(s.Running, r.id)
	}
	if len(p.running) > 0 {
		s.RunningCycles = make(map[string]uint64, len(p.running))
		for id, r := range p.running {
			s.RunningCycles[id] = r.cycle
		}
	}
	if sec := s.Elapsed.Seconds(); sec > 0 && s.Done > 0 {
		s.CellsPerSec = float64(s.Done) / sec
		if left := s.Total - s.Done; left > 0 {
			s.ETA = time.Duration(float64(left) / s.CellsPerSec * float64(time.Second))
		}
	}
	return s
}

// String renders the one-line periodic summary dncbench prints to stderr.
func (s ProgressSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d cells", s.Done, s.Total)
	if s.Failed > 0 {
		fmt.Fprintf(&b, ", %d failed", s.Failed)
	}
	if s.Resumed > 0 {
		fmt.Fprintf(&b, ", %d resumed", s.Resumed)
	}
	if s.Retried > 0 {
		fmt.Fprintf(&b, ", %d retried", s.Retried)
	}
	if s.CellsPerSec > 0 {
		fmt.Fprintf(&b, ", %.1f cells/s", s.CellsPerSec)
	}
	if s.ETA > 0 {
		fmt.Fprintf(&b, ", eta %s", s.ETA.Round(time.Second))
	}
	return b.String()
}

// DebugServer serves sweep progress, expvar-style counters, and pprof over
// HTTP for live inspection of a long sweep.
type DebugServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// DebugMux returns the debug handler set observing p:
//
//	/debug/sweep  — the Progress snapshot as JSON
//	/debug/vars   — snapshot plus runtime memory statistics (expvar-style)
//	/debug/pprof/ — the standard pprof handlers
//
// Handlers live on a private mux, so tests (and embedders like the
// dncserved job service, which mounts this next to its own API) can build
// and discard servers freely without colliding on process-global
// registries.
func DebugMux(p *Progress) *http.ServeMux {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	mux.HandleFunc("/debug/sweep", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, p.Snapshot())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		writeJSON(w, map[string]any{
			"sweep": p.Snapshot(),
			"memstats": map[string]uint64{
				"alloc":        ms.Alloc,
				"total_alloc":  ms.TotalAlloc,
				"sys":          ms.Sys,
				"heap_objects": ms.HeapObjects,
				"num_gc":       uint64(ms.NumGC),
			},
			"goroutines": runtime.NumGoroutine(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebug binds addr (e.g. "localhost:6060") and serves DebugMux(p) on a
// hardened server (header-read and idle timeouts per internal/httpx, so a
// stalled client cannot pin the process). The returned server is already
// serving; call Shutdown for a graceful stop or Close for an immediate one.
func StartDebug(addr string, p *Progress) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("runner: debug listen %s: %w", addr, err)
	}
	ds := &DebugServer{Addr: ln.Addr().String(), ln: ln, srv: httpx.NewServer(DebugMux(p))}
	go ds.srv.Serve(ln)
	return ds, nil
}

// Shutdown stops the server gracefully, letting in-flight requests finish
// until ctx expires, then force-closes whatever remains — it never hangs a
// drain (see httpx.Shutdown).
func (d *DebugServer) Shutdown(ctx context.Context) error {
	if d == nil || d.srv == nil {
		return nil
	}
	return httpx.Shutdown(ctx, d.srv)
}

// Close stops the server immediately.
func (d *DebugServer) Close() error {
	if d == nil || d.srv == nil {
		return nil
	}
	return d.srv.Close()
}
