package runner

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"dnc/internal/core"
	"dnc/internal/llc"
	"dnc/internal/obs"
	"dnc/internal/sim"
)

// journalEntry is one JSONL line: a finished cell. Failed cells are
// journaled too (with their error) so a post-mortem can read the whole
// sweep from the file, but only "ok" entries are skipped on resume — a
// re-run retries everything that did not complete.
type journalEntry struct {
	ID        string      `json:"id"`
	Status    Status      `json:"status"`
	Attempts  int         `json:"attempts"`
	ElapsedMS int64       `json:"elapsed_ms"`
	Error     string      `json:"error,omitempty"`
	Result    *ResultJSON `json:"result,omitempty"`
}

// ResultJSON mirrors sim.Result minus the live Design instances (an
// interface slice that cannot round-trip through JSON), so a journaled or
// cached cell restores every metric but not per-design probe state. It is
// the canonical wire form of a result: the journal stores it per line, and
// the dncserved result cache content-addresses its encoded bytes — the
// encoding is deterministic (fixed field order, no maps except inside Obs,
// which encoding/json sorts), so equal results give equal digests.
type ResultJSON struct {
	Workload string `json:"workload"`
	Design   string `json:"design"`
	// Engine stamps which engine produced the run ("tick", "wheel",
	// "wheel+parN"); provenance only — all engines are bit-exact.
	Engine      string         `json:"engine,omitempty"`
	M           core.Metrics   `json:"m"`
	PerCore     []core.Metrics `json:"per_core,omitempty"`
	LLCStats    llc.Stats      `json:"llc"`
	NoCFlits    uint64         `json:"noc_flits"`
	NoCQueued   uint64         `json:"noc_queued"`
	DRAMQueued  uint64         `json:"dram_queued"`
	StorageBits int            `json:"storage_bits"`
	// Obs carries the observability snapshot (histograms and counters; trace
	// events are in-memory only and never journaled).
	Obs *obs.RunObs `json:"obs,omitempty"`
}

// NewResultJSON strips r to its JSON-portable form.
func NewResultJSON(r sim.Result) *ResultJSON {
	return &ResultJSON{
		Workload:    r.Workload,
		Design:      r.Design,
		Engine:      r.Engine,
		M:           r.M,
		PerCore:     r.PerCore,
		LLCStats:    r.LLCStats,
		NoCFlits:    r.NoCFlits,
		NoCQueued:   r.NoCQueued,
		DRAMQueued:  r.DRAMQueued,
		StorageBits: r.StorageBits,
		Obs:         r.Obs,
	}
}

// Result reassembles the sim.Result (without live Designs).
func (jr *ResultJSON) Result() sim.Result {
	return sim.Result{
		Workload:    jr.Workload,
		Design:      jr.Design,
		Engine:      jr.Engine,
		M:           jr.M,
		PerCore:     jr.PerCore,
		LLCStats:    jr.LLCStats,
		NoCFlits:    jr.NoCFlits,
		NoCQueued:   jr.NoCQueued,
		DRAMQueued:  jr.DRAMQueued,
		StorageBits: jr.StorageBits,
		Obs:         jr.Obs,
	}
}

// journal is the append-only run record. Reads happen once at open; appends
// are serialized by the sweep's result mutex. Write and sync failures are
// collected (not dropped): a journal that silently loses records would
// defeat resumption, so Sweep surfaces Err to its caller.
type journal struct {
	f    *os.File
	done map[string]sim.Result // cells journaled "ok" by a previous sweep
	// syncEvery batches fsyncs: the file is synced after every syncEvery
	// appends (1 = after each) and once more at close.
	syncEvery int
	pending   int
	// appends counts records written this sweep; with pending it gives the
	// journal's durability lag for the debug endpoint.
	appends int
	errs    []error
}

// stats returns total appends this sweep and records not yet fsynced. Safe
// on a nil journal.
func (j *journal) stats() (appends, pending int) {
	if j == nil {
		return 0, 0
	}
	return j.appends, j.pending
}

// openJournal loads completed cells from an existing journal (if any) and
// opens it for appending. A corrupt trailing line — e.g. from a process
// killed mid-write — is skipped rather than fatal: the cell it described
// simply re-runs.
func openJournal(path string, syncEvery int) (*journal, error) {
	if syncEvery <= 0 {
		syncEvery = 1
	}
	j := &journal{done: make(map[string]sim.Result), syncEvery: syncEvery}
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var e journalEntry
			if json.Unmarshal(line, &e) != nil {
				continue
			}
			if e.Status == StatusOK && e.Result != nil {
				j.done[e.ID] = e.Result.Result()
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("runner: reading journal %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("runner: opening journal %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: opening journal %s for append: %w", path, err)
	}
	// A process killed mid-write leaves a partial line with no trailing
	// newline; appending straight onto it would corrupt the next record
	// too. Start appends on a fresh line.
	if fi, err := f.Stat(); err == nil && fi.Size() > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], fi.Size()-1); err == nil && last[0] != '\n' {
			f.Write([]byte("\n"))
		}
	}
	j.f = f
	return j, nil
}

// completed reports whether a previous sweep already finished the cell,
// returning its restored result. Safe on a nil journal.
func (j *journal) completed(id string) (sim.Result, bool) {
	if j == nil {
		return sim.Result{}, false
	}
	r, ok := j.done[id]
	return r, ok
}

// append writes one finished cell as a single JSONL line and syncs it on
// the configured cadence, so a kill -9 loses at most the in-flight cells
// plus the unsynced tail, never a synced record. Caller must serialize.
func (j *journal) append(res CellResult) {
	e := journalEntry{
		ID:        res.ID,
		Status:    res.Status,
		Attempts:  res.Attempts,
		ElapsedMS: res.Elapsed.Milliseconds(),
	}
	if res.Err != nil {
		e.Error = res.Err.Error()
	}
	if res.Status == StatusOK {
		e.Result = NewResultJSON(res.Result)
	}
	line, err := json.Marshal(e)
	if err != nil {
		j.errs = append(j.errs, fmt.Errorf("runner: journalling cell %s: %w", res.ID, err))
		return
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		j.errs = append(j.errs, fmt.Errorf("runner: journal write for cell %s: %w", res.ID, err))
		return
	}
	j.appends++
	j.pending++
	if j.pending >= j.syncEvery {
		j.sync()
	}
}

// sync flushes pending appends to stable storage.
func (j *journal) sync() {
	if err := j.f.Sync(); err != nil {
		j.errs = append(j.errs, fmt.Errorf("runner: journal sync: %w", err))
	}
	j.pending = 0
}

// Err returns every write/sync failure the journal accumulated. Safe on a
// nil journal.
func (j *journal) Err() error {
	if j == nil {
		return nil
	}
	return errors.Join(j.errs...)
}

// close flushes the unsynced tail and closes the file, recording failures.
func (j *journal) close() {
	if j == nil || j.f == nil {
		return
	}
	if j.pending > 0 {
		j.sync()
	}
	if err := j.f.Close(); err != nil {
		j.errs = append(j.errs, fmt.Errorf("runner: journal close: %w", err))
	}
	j.f = nil
}
