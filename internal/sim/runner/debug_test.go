package runner

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.addTotal(5)
	p.begin("x")
	p.observe(CellResult{ID: "x", Status: StatusOK})
	p.journalLag(1, 1)
	if s := p.Snapshot(); s.Total != 0 || s.Done != 0 {
		t.Errorf("nil Snapshot = %+v, want zero", s)
	}
}

func TestProgressTally(t *testing.T) {
	p := NewProgress()
	p.addTotal(4)
	p.begin("a")
	p.begin("b")
	p.observe(CellResult{ID: "a", Status: StatusOK, Attempts: 1})
	p.observe(CellResult{ID: "b", Status: StatusFailed, Attempts: 3})
	p.begin("c")
	p.journalLag(2, 1)

	s := p.Snapshot()
	if s.Total != 4 || s.Done != 2 || s.OK != 1 || s.Failed != 1 || s.Retried != 2 {
		t.Errorf("snapshot = %+v", s)
	}
	if len(s.Running) != 1 || s.Running[0] != "c" {
		t.Errorf("Running = %v, want [c]", s.Running)
	}
	if s.JournalAppends != 2 || s.JournalPending != 1 {
		t.Errorf("journal lag = %d/%d, want 2/1", s.JournalAppends, s.JournalPending)
	}
	str := s.String()
	for _, want := range []string{"2/4 cells", "1 failed", "2 retried"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
}

func TestProgressRunningCycles(t *testing.T) {
	p := NewProgress()
	p.advance("ghost", 99) // before begin: ignored, not resurrected
	p.begin("a")
	p.begin("b")
	p.advance("a", 1024)
	p.advance("a", 2048) // monotone updates overwrite
	s := p.Snapshot()
	if got := s.RunningCycles["a"]; got != 2048 {
		t.Errorf("RunningCycles[a] = %d, want 2048", got)
	}
	if got := s.RunningCycles["b"]; got != 0 {
		t.Errorf("RunningCycles[b] = %d, want 0 before its first poll", got)
	}
	if _, ok := s.RunningCycles["ghost"]; ok {
		t.Error("advance before begin created a running entry")
	}
	p.observe(CellResult{ID: "a", Status: StatusOK})
	p.advance("a", 4096) // after completion: ignored
	if s := p.Snapshot(); len(s.RunningCycles) != 1 || s.RunningCycles["b"] != 0 {
		t.Errorf("RunningCycles after a finished = %v, want only b", s.RunningCycles)
	}
	p.observe(CellResult{ID: "b", Status: StatusOK})
	if s := p.Snapshot(); s.RunningCycles != nil {
		t.Errorf("RunningCycles with nothing running = %v, want nil", s.RunningCycles)
	}
}

func TestProgressRunningOrder(t *testing.T) {
	p := NewProgress()
	p.begin("first")
	time.Sleep(2 * time.Millisecond)
	p.begin("second")
	if s := p.Snapshot(); len(s.Running) != 2 || s.Running[0] != "first" {
		t.Errorf("Running = %v, want longest-running first", s.Running)
	}
}

func TestProgressETA(t *testing.T) {
	p := NewProgress()
	p.addTotal(10)
	p.start = time.Now().Add(-time.Second)
	for i := 0; i < 5; i++ {
		p.observe(CellResult{Status: StatusOK})
	}
	s := p.Snapshot()
	if s.CellsPerSec <= 0 {
		t.Errorf("CellsPerSec = %v", s.CellsPerSec)
	}
	if s.ETA <= 0 {
		t.Errorf("ETA = %v with half the cells left", s.ETA)
	}
}

func TestStartDebugEndpoints(t *testing.T) {
	p := NewProgress()
	p.addTotal(3)
	p.observe(CellResult{ID: "a", Status: StatusOK})

	srv, err := StartDebug("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap ProgressSnapshot
	if err := json.Unmarshal(get("/debug/sweep"), &snap); err != nil {
		t.Fatalf("sweep body: %v", err)
	}
	if snap.Total != 3 || snap.Done != 1 || snap.OK != 1 {
		t.Errorf("served snapshot = %+v", snap)
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("vars body: %v", err)
	}
	for _, key := range []string{"sweep", "memstats", "goroutines"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}

	if body := get("/debug/pprof/"); !strings.Contains(string(body), "goroutine") {
		t.Error("pprof index not served")
	}
}

func TestDebugServerCloseNil(t *testing.T) {
	var d *DebugServer
	if err := d.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}

func TestStartDebugBadAddr(t *testing.T) {
	if _, err := StartDebug("256.0.0.1:-1", nil); err == nil {
		t.Fatal("no error for unusable address")
	}
}
