package runner

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dnc/internal/sim"
)

// tornCells is a small sweep whose fake executor tags each result with its
// cell ID, so a resumed result's provenance is checkable.
func tornCells(n int) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{ID: fmt.Sprintf("torn-%d", i)}
	}
	return cells
}

func tornRun(ran *[]string) func(context.Context, Cell, sim.RunConfig) (sim.Result, error) {
	return func(_ context.Context, c Cell, _ sim.RunConfig) (sim.Result, error) {
		*ran = append(*ran, c.ID)
		return sim.Result{Workload: "wl-" + c.ID, Design: "d"}, nil
	}
}

// TestJournalTornWriteRecovery simulates a process killed mid-append: the
// journal's final JSONL line is truncated partway through. The next sweep
// must resume every intact record, discard only the torn one, and re-run
// exactly that cell — then leave a journal whose torn garbage did not
// corrupt the records appended after it.
func TestJournalTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "sweep.jsonl")
	cells := tornCells(4)

	var first []string
	rep, err := Sweep(context.Background(), cells, Options{
		Jobs: 1, JournalPath: jpath, Run: tornRun(&first),
	})
	if err != nil || rep.OK != 4 {
		t.Fatalf("seed sweep: ok=%d err=%v", rep.OK, err)
	}

	// Tear the last record: drop the trailing newline and half the line.
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("journal has %d lines, want 4", len(lines))
	}
	last := lines[len(lines)-1]
	torn := strings.Join(lines[:len(lines)-1], "\n") + "\n" + last[:len(last)/2]
	if err := os.WriteFile(jpath, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	var second []string
	rep, err = Sweep(context.Background(), cells, Options{
		Jobs: 1, JournalPath: jpath, Run: tornRun(&second),
	})
	if err != nil {
		t.Fatalf("recovery sweep: %v", err)
	}
	if rep.Resumed != 3 || rep.OK != 1 || rep.Failed != 0 {
		t.Fatalf("recovery sweep: resumed=%d ok=%d failed=%d, want 3/1/0",
			rep.Resumed, rep.OK, rep.Failed)
	}
	if len(second) != 1 || second[0] != "torn-3" {
		t.Fatalf("re-ran %v, want only the torn cell torn-3", second)
	}
	for _, c := range rep.Cells {
		if c.Result.Workload != "wl-"+c.ID {
			t.Errorf("cell %s restored result %q, want %q", c.ID, c.Result.Workload, "wl-"+c.ID)
		}
	}

	// A third sweep must see all four records intact: the re-appended
	// record landed on a fresh line, not glued to the torn fragment.
	var third []string
	rep, err = Sweep(context.Background(), cells, Options{
		Jobs: 1, JournalPath: jpath, Run: tornRun(&third),
	})
	if err != nil || rep.Resumed != 4 || len(third) != 0 {
		t.Fatalf("post-recovery sweep: resumed=%d ran=%v err=%v, want 4 resumed, none ran",
			rep.Resumed, third, err)
	}
}

// TestJournalTornMiddleByteFlip corrupts a record in the middle of the file
// (not the tail): that record alone is discarded and re-run, and the
// records after it still resume.
func TestJournalTornMiddleByteFlip(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "sweep.jsonl")
	cells := tornCells(3)

	var first []string
	if _, err := Sweep(context.Background(), cells, Options{
		Jobs: 1, JournalPath: jpath, Run: tornRun(&first),
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	lines[1] = lines[1][:len(lines[1])-2] // truncate record 1 inside the JSON
	if err := os.WriteFile(jpath, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var second []string
	rep, err := Sweep(context.Background(), cells, Options{
		Jobs: 1, JournalPath: jpath, Run: tornRun(&second),
	})
	if err != nil || rep.Resumed != 2 || rep.OK != 1 {
		t.Fatalf("resumed=%d ok=%d err=%v, want 2 resumed and 1 re-run", rep.Resumed, rep.OK, err)
	}
	if len(second) != 1 || second[0] != "torn-1" {
		t.Fatalf("re-ran %v, want only torn-1", second)
	}
}
