package runner

import (
	"context"
	"testing"
	"time"

	"dnc/internal/sim"
)

// withFakeBackoffClock swaps the package's sleep and jitter seams for
// deterministic fakes: sleeps are recorded instead of taken, and the jitter
// fraction is a fixed sequence. Restores on cleanup.
func withFakeBackoffClock(t *testing.T, jitter []float64) *[]time.Duration {
	t.Helper()
	var slept []time.Duration
	oldSleep, oldRand := sleepRetry, backoffRand
	i := 0
	sleepRetry = func(ctx context.Context, d time.Duration) { slept = append(slept, d) }
	backoffRand = func() float64 {
		v := jitter[i%len(jitter)]
		i++
		return v
	}
	t.Cleanup(func() { sleepRetry, backoffRand = oldSleep, oldRand })
	return &slept
}

// TestBackoffSchedule pins the exact retry schedule under a fake clock: a
// cell failing with a transient error four times sleeps the equal-jitter
// exponential sequence — delay n = half of base<<n plus jitter×half — with
// growth capped at BackoffMax.
func TestBackoffSchedule(t *testing.T) {
	slept := withFakeBackoffClock(t, []float64{0, 1, 0.5, 0})

	fails := 0
	res := runCell(context.Background(), Cell{ID: "sched"}, Options{
		Retries:    4,
		Backoff:    100 * time.Millisecond,
		BackoffMax: 400 * time.Millisecond,
		Run: func(ctx context.Context, c Cell, cfg sim.RunConfig) (sim.Result, error) {
			fails++
			return sim.Result{}, context.DeadlineExceeded
		},
	})
	if res.Status != StatusFailed || res.Attempts != 5 {
		t.Fatalf("status %v attempts %d, want failed after 5 attempts", res.Status, res.Attempts)
	}
	// attempt 1: exp 100ms, jitter 0   → 50ms
	// attempt 2: exp 200ms, jitter 1   → 200ms
	// attempt 3: exp 400ms, jitter 0.5 → 300ms
	// attempt 4: exp capped at 400ms, jitter 0 → 200ms
	want := []time.Duration{
		50 * time.Millisecond,
		200 * time.Millisecond,
		300 * time.Millisecond,
		200 * time.Millisecond,
	}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v (%d delays), want %d", *slept, len(*slept), len(want))
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Errorf("retry %d slept %v, want %v", i+1, (*slept)[i], d)
		}
	}
	if fails != 5 {
		t.Errorf("run invoked %d times, want 5", fails)
	}
}

// TestBackoffDefaultsAndBounds checks the delay function directly: defaults
// apply, jitter stays within [exp/2, exp], and the cap binds.
func TestBackoffDefaultsAndBounds(t *testing.T) {
	defer func(r func() float64) { backoffRand = r }(backoffRand)

	backoffRand = func() float64 { return 0 }
	if got := backoffDelay(0, 0, 1); got != DefaultBackoff/2 {
		t.Errorf("zero-config attempt 1 low bound = %v, want %v", got, DefaultBackoff/2)
	}
	backoffRand = func() float64 { return 0.999999 }
	if got := backoffDelay(0, 0, 1); got > DefaultBackoff {
		t.Errorf("zero-config attempt 1 high bound = %v, want <= %v", got, DefaultBackoff)
	}
	// Far attempts clamp to max, not overflow.
	if got := backoffDelay(time.Second, 8*time.Second, 40); got > 8*time.Second {
		t.Errorf("attempt 40 = %v, want <= 8s cap", got)
	}
	backoffRand = func() float64 { return 0 }
	if got := backoffDelay(time.Second, 8*time.Second, 40); got != 4*time.Second {
		t.Errorf("attempt 40 low bound = %v, want 4s (half the cap)", got)
	}
}

// TestRetrySucceedsAfterTransientFailures proves the retry loop hands back
// the successful attempt's result and attempt count.
func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	withFakeBackoffClock(t, []float64{0.5})

	n := 0
	res := runCell(context.Background(), Cell{ID: "heal"}, Options{
		Retries: 3,
		Run: func(ctx context.Context, c Cell, cfg sim.RunConfig) (sim.Result, error) {
			n++
			if n < 3 {
				return sim.Result{}, context.DeadlineExceeded
			}
			return sim.Result{Workload: "w", Design: "d"}, nil
		},
	})
	if res.Status != StatusOK || res.Attempts != 3 {
		t.Fatalf("status %v attempts %d, want ok on attempt 3", res.Status, res.Attempts)
	}
	if res.Result.Workload != "w" {
		t.Fatalf("result not from the successful attempt: %+v", res.Result)
	}
}
