// Package runner is the fault-tolerant parallel sweep engine. It fans
// simulation cells (workload × design × seed points) across a bounded pool
// of workers, isolates each cell's failures through sim.RunChecked (panics,
// livelocks, timeouts become recorded data, not process aborts), retries
// transiently failed cells with exponential backoff, and journals every
// finished cell to a JSONL file so an interrupted sweep resumes where it
// stopped instead of starting over.
package runner

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"dnc/internal/checkpoint"
	"dnc/internal/sim"
)

// Cell is one unit of a sweep: a run configuration under a stable ID. The
// ID is the cell's journal identity — it must be unique within a sweep and
// stable across processes for resumption to work.
type Cell struct {
	ID     string
	Config sim.RunConfig
	// TracePath, when non-empty, replays the recorded trace instead of
	// walking the workload live.
	TracePath string
}

// Status classifies a cell's outcome.
type Status string

const (
	// StatusOK is a successfully completed run.
	StatusOK Status = "ok"
	// StatusFailed is a run whose final attempt errored (panic, livelock,
	// timeout, validation, cancellation).
	StatusFailed Status = "failed"
	// StatusResumed is a cell skipped because a journal from a previous
	// sweep already records it as completed; its Result is restored from
	// the journal (without the live Design instances).
	StatusResumed Status = "resumed"
)

// CellResult is the outcome of one cell.
type CellResult struct {
	ID       string
	Status   Status
	Result   sim.Result // valid when Status is ok or resumed
	Err      error      // non-nil when Status is failed
	Attempts int
	Elapsed  time.Duration
}

// Options tunes a sweep.
type Options struct {
	// Jobs bounds concurrently executing cells (0 = GOMAXPROCS).
	Jobs int
	// Timeout is the per-attempt wall-clock budget (0 = none).
	Timeout time.Duration
	// Retries is how many times a transiently failed cell is re-attempted
	// after its first failure.
	Retries int
	// Backoff is the base retry delay (0 = DefaultBackoff). The actual
	// delay grows exponentially per attempt up to BackoffMax and carries
	// equal jitter — half the exponential value fixed, half uniformly
	// random — so cells that failed together (an oversubscribed machine
	// timing out a whole worker pool at once) retry spread out instead of
	// stampeding back simultaneously.
	Backoff time.Duration
	// BackoffMax caps the exponential growth of the retry delay
	// (0 = DefaultBackoffMax).
	BackoffMax time.Duration
	// JournalPath appends every finished cell to this JSONL file and, when
	// the file already holds completed cells from an earlier sweep, skips
	// re-executing them ("" = no journal).
	JournalPath string
	// SyncEvery batches journal fsyncs: the file is synced to stable
	// storage after every SyncEvery appended cells (0 or 1 = after each)
	// and once more when the sweep finishes. Larger values trade crash
	// durability of the journal tail for fewer fsyncs on large sweeps.
	SyncEvery int
	// CheckpointDir, when non-empty, gives every walker-driven cell a
	// mid-run snapshot file in this directory (created if missing). A cell
	// interrupted before it could be journaled — crash, timeout, kill —
	// resumes from its last snapshot on the next sweep instead of starting
	// over; the snapshot is deleted when the cell completes. Trace-replay
	// cells cannot checkpoint and run unchanged.
	CheckpointDir string
	// CheckpointEvery is the snapshot cadence in simulated cycles for cells
	// running under CheckpointDir (0 = DefaultCheckpointEvery).
	CheckpointEvery uint64
	// Transient reports whether an error is worth retrying. Defaults to
	// timeouts only: in a deterministic simulator a panic or livelock
	// reproduces on every attempt, but a timeout may just mean the machine
	// was oversubscribed.
	Transient func(error) bool
	// Run, when set, replaces the default per-attempt executor
	// (sim.RunTraceChecked for trace cells, sim.RunChecked otherwise). The
	// cfg argument is the cell's config with the runner's checkpoint/resume
	// fields applied. It exists so embedders can interpose on execution —
	// the dncserved service routes chaos runs through sim.RunInjected, and
	// tests substitute deterministic fakes — while keeping the retry,
	// backoff, journal, and checkpoint machinery identical to production.
	Run func(ctx context.Context, c Cell, cfg sim.RunConfig) (sim.Result, error)
	// OnResult, when set, observes each finished cell (called serially).
	OnResult func(CellResult)
	// Progress, when set, is updated live as cells start and finish — the
	// data source for periodic console summaries and the debug HTTP
	// endpoint (see NewProgress, StartDebug).
	Progress *Progress
}

// Report summarizes a sweep. Cells holds one result per input cell, in
// input order.
type Report struct {
	Cells []CellResult
	// OK counts freshly completed cells, Resumed journal-restored ones,
	// Failed cells whose every attempt errored.
	OK, Resumed, Failed int
}

// ByID returns the result for a cell ID.
func (r *Report) ByID(id string) (CellResult, bool) {
	for _, c := range r.Cells {
		if c.ID == id {
			return c, true
		}
	}
	return CellResult{}, false
}

// FirstErr returns the first failed cell's error, or nil.
func (r *Report) FirstErr() error {
	for _, c := range r.Cells {
		if c.Err != nil {
			return fmt.Errorf("cell %s: %w", c.ID, c.Err)
		}
	}
	return nil
}

func defaultTransient(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}

// Default retry-backoff parameters (see Options.Backoff).
const (
	DefaultBackoff    = 100 * time.Millisecond
	DefaultBackoffMax = 30 * time.Second
)

// Test seams for the backoff path: production uses a real timer and the
// global math/rand source; the schedule-pinning test substitutes a fake
// clock and a deterministic jitter sequence.
var (
	backoffRand = rand.Float64
	sleepRetry  = func(ctx context.Context, d time.Duration) {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
)

// backoffDelay returns the delay before retry number attempt (1-based): the
// base doubles per attempt up to max, and the result carries equal jitter —
// delay/2 guaranteed plus up to delay/2 uniformly random — bounding both
// sides (never less than half the exponential value, never more than it).
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = DefaultBackoff
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(backoffRand()*float64(d-half))
}

// DefaultCheckpointEvery is the snapshot cadence used for cells running
// under Options.CheckpointDir when Options.CheckpointEvery is zero. At the
// paper's 200K+200K cycle windows this persists roughly six snapshots per
// cell — frequent enough that an interrupted sweep loses little work,
// coarse enough that snapshot I/O stays invisible next to simulation time.
const DefaultCheckpointEvery = 1 << 16

// cellCheckpointPath maps a cell ID to its snapshot file: a sanitized,
// length-bounded prefix for readability plus an FNV-1a hash of the full ID
// for uniqueness (IDs routinely exceed filename limits and contain
// separators).
func cellCheckpointPath(dir, id string) string {
	sane := make([]byte, 0, 48)
	for i := 0; i < len(id) && len(sane) < 48; i++ {
		switch c := id[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			sane = append(sane, c)
		default:
			sane = append(sane, '_')
		}
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return filepath.Join(dir, fmt.Sprintf("%s-%016x.ckpt", sane, h.Sum64()))
}

// snapshotUnusable reports a resume failure caused by the snapshot itself
// (truncated, corrupt, wrong version or checksum, config mismatch) rather
// than by the run: the snapshot is discarded and the cell restarts fresh.
func snapshotUnusable(err error) bool {
	return errors.Is(err, checkpoint.ErrTruncated) ||
		errors.Is(err, checkpoint.ErrCorrupt) ||
		errors.Is(err, checkpoint.ErrVersion) ||
		errors.Is(err, checkpoint.ErrChecksum)
}

// Sweep executes the cells through a bounded worker pool and returns a
// report with one entry per cell. A failing cell never aborts the sweep:
// its error is recorded and the remaining cells continue. Sweep itself
// returns an error only for setup problems (duplicate IDs, unreadable or
// unwritable journal) or when ctx is cancelled — and in the latter case the
// partial report is still returned, with unstarted cells marked failed with
// the context's error.
func Sweep(ctx context.Context, cells []Cell, o Options) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	seen := make(map[string]struct{}, len(cells))
	for _, c := range cells {
		if c.ID == "" {
			return nil, errors.New("runner: cell with empty ID")
		}
		if _, dup := seen[c.ID]; dup {
			return nil, fmt.Errorf("runner: duplicate cell ID %q", c.ID)
		}
		seen[c.ID] = struct{}{}
	}

	var jr *journal
	if o.JournalPath != "" {
		var err error
		if jr, err = openJournal(o.JournalPath, o.SyncEvery); err != nil {
			return nil, err
		}
	}
	if o.CheckpointDir != "" {
		if err := os.MkdirAll(o.CheckpointDir, 0o755); err != nil {
			jr.close()
			return nil, fmt.Errorf("runner: creating checkpoint dir: %w", err)
		}
	}

	jobs := o.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}

	rep := &Report{Cells: make([]CellResult, len(cells))}
	o.Progress.addTotal(len(cells))
	var mu sync.Mutex // guards journal appends and OnResult
	finish := func(i int, res CellResult) {
		rep.Cells[i] = res
		mu.Lock()
		defer mu.Unlock()
		if jr != nil && res.Status != StatusResumed {
			jr.append(res)
		}
		o.Progress.observe(res)
		o.Progress.journalLag(jr.stats())
		if o.OnResult != nil {
			o.OnResult(res)
		}
	}

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				cell := cells[i]
				if done, ok := jr.completed(cell.ID); ok {
					finish(i, CellResult{
						ID:     cell.ID,
						Status: StatusResumed,
						Result: done,
					})
					continue
				}
				o.Progress.begin(cell.ID)
				finish(i, runCell(ctx, cell, o))
			}
		}()
	}
	for i := range cells {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	for _, c := range rep.Cells {
		switch c.Status {
		case StatusOK:
			rep.OK++
		case StatusResumed:
			rep.Resumed++
		default:
			rep.Failed++
		}
	}
	jr.close()
	return rep, errors.Join(ctx.Err(), jr.Err())
}

// runCell executes one cell with per-attempt timeouts and transient-error
// retries. Cells under Options.CheckpointDir snapshot mid-run and resume
// from a surviving snapshot — whether left by a crashed earlier sweep or by
// this cell's own timed-out previous attempt.
func runCell(ctx context.Context, c Cell, o Options) CellResult {
	transient := o.Transient
	if transient == nil {
		transient = defaultTransient
	}
	run := o.Run
	if run == nil {
		run = func(ctx context.Context, c Cell, cfg sim.RunConfig) (sim.Result, error) {
			if c.TracePath != "" {
				return sim.RunTraceChecked(ctx, c.Config, c.TracePath)
			}
			return sim.RunChecked(ctx, cfg)
		}
	}
	ckpt := ""
	if o.CheckpointDir != "" && c.TracePath == "" {
		ckpt = cellCheckpointPath(o.CheckpointDir, c.ID)
		c.Config.CheckpointPath = ckpt
		c.Config.CheckpointEvery = o.CheckpointEvery
		if c.Config.CheckpointEvery == 0 {
			c.Config.CheckpointEvery = DefaultCheckpointEvery
		}
	}
	start := time.Now()
	out := CellResult{ID: c.ID, Status: StatusFailed}
	for attempt := 1; ; attempt++ {
		out.Attempts = attempt
		if err := ctx.Err(); err != nil {
			out.Err = err
			break
		}
		cfg := c.Config
		if p := o.Progress; p != nil {
			// Feed the engine's poll-boundary cycle reports into the live
			// progress tracker (/debug/sweep, the -http vars), chaining any
			// callback the cell's own config installed.
			id, prev := c.ID, cfg.OnAdvance
			cfg.OnAdvance = func(cycle uint64) {
				p.advance(id, cycle)
				if prev != nil {
					prev(cycle)
				}
			}
		}
		if ckpt != "" {
			if _, serr := os.Stat(ckpt); serr == nil {
				cfg.ResumeFrom = ckpt
			}
		}
		rctx := ctx
		var cancel context.CancelFunc
		if o.Timeout > 0 {
			rctx, cancel = context.WithTimeout(ctx, o.Timeout)
		}
		r, err := run(rctx, c, cfg)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			out.Status = StatusOK
			out.Result = r
			if ckpt != "" {
				os.Remove(ckpt)
				os.Remove(ckpt + ".livelock")
			}
			break
		}
		if cfg.ResumeFrom != "" && snapshotUnusable(err) {
			// The snapshot, not the run, is bad (truncated by a crash,
			// stale configuration). Discard it and redo the attempt from
			// scratch; this can fire at most once per attempt number.
			os.Remove(ckpt)
			attempt--
			continue
		}
		out.Err = err
		if attempt > o.Retries || !transient(err) {
			break
		}
		sleepRetry(ctx, backoffDelay(o.Backoff, o.BackoffMax, attempt))
	}
	out.Elapsed = time.Since(start)
	return out
}
