package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	wl "dnc/internal/cfg"
	"dnc/internal/isa"
	"dnc/internal/prefetch"
	"dnc/internal/sim"
)

// stuckDesign never opens the FTQ gate: the watchdog must abort its cell.
type stuckDesign struct{ prefetch.Base }

func (*stuckDesign) Name() string                                  { return "stuck" }
func (*stuckDesign) BTBLookup(isa.Addr, isa.Kind) (isa.Addr, bool) { return 0, false }
func (*stuckDesign) BTBCommit(isa.Addr, isa.Kind, isa.Addr, bool)  {}
func (*stuckDesign) FTQGate(isa.Addr) bool                         { return false }

// testWorkload is a small fast workload; the name/seed spread gives each
// sweep "workload" a distinct generated program.
func testWorkload(i int) wl.Params {
	return wl.Params{
		Name:             fmt.Sprintf("runner-wl-%d", i),
		FootprintBytes:   256 << 10,
		LoadFrac:         0.2,
		StoreFrac:        0.08,
		RareBlockFrac:    0.08,
		BackwardFrac:     0.1,
		CondFrac:         0.42,
		JumpFrac:         0.07,
		CallFrac:         0.22,
		IndirectCallFrac: 0.06,
		GenSeed:          int64(1000 + i),
	}
}

func testConfig(w int, nd func() prefetch.Design) sim.RunConfig {
	return sim.RunConfig{
		Workload:      testWorkload(w),
		NewDesign:     nd,
		Cores:         2,
		WarmCycles:    4_000,
		MeasureCycles: 4_000,
		Seed:          1,
	}
}

func newBaseline() prefetch.Design { return prefetch.NewBaseline(2048) }
func newNL() prefetch.Design       { return prefetch.NewNXL(1, 2048) }
func newFull() prefetch.Design {
	c := prefetch.DefaultProactiveConfig()
	c.WithBTBPrefetch = true
	return prefetch.NewProactive(c)
}

// TestSweepIsolatesPanicAndLivelock is the acceptance sweep: 7 workloads ×
// 3 designs, with one cell replaced by a panicking design constructor and
// one by a livelocked design. The sweep must complete every healthy cell
// with results identical to a direct run, and record the two failures.
func TestSweepIsolatesPanicAndLivelock(t *testing.T) {
	designs := []struct {
		name string
		nd   func() prefetch.Design
	}{{"baseline", newBaseline}, {"NL", newNL}, {"full", newFull}}

	var cells []Cell
	for w := 0; w < 7; w++ {
		for _, d := range designs {
			cells = append(cells, Cell{
				ID:     fmt.Sprintf("wl%d|%s", w, d.name),
				Config: testConfig(w, d.nd),
			})
		}
	}
	// Inject: cell 4 panics at design construction, cell 10 livelocks.
	cells[4].Config.NewDesign = func() prefetch.Design { panic("injected: bad configuration") }
	cells[10].Config.NewDesign = func() prefetch.Design { return &stuckDesign{} }
	cells[10].Config.WatchdogCycles = 3000

	rep, err := Sweep(context.Background(), cells, Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != len(cells)-2 || rep.Failed != 2 || rep.Resumed != 0 {
		t.Fatalf("ok/failed/resumed = %d/%d/%d, want %d/2/0",
			rep.OK, rep.Failed, rep.Resumed, len(cells)-2)
	}

	var re *sim.RunError
	if !errors.As(rep.Cells[4].Err, &re) {
		t.Errorf("panicked cell error %v, want *sim.RunError", rep.Cells[4].Err)
	}
	if !errors.Is(rep.Cells[10].Err, sim.ErrLivelock) {
		t.Errorf("stuck cell error %v, want livelock", rep.Cells[10].Err)
	}

	// Sibling cells of the failed ones are unharmed and deterministic.
	for _, idx := range []int{3, 5, 9, 11, 20} {
		got := rep.Cells[idx]
		if got.Status != StatusOK {
			t.Fatalf("cell %s failed: %v", got.ID, got.Err)
		}
		want := sim.Run(cells[idx].Config)
		if got.Result.M != want.M {
			t.Errorf("cell %s diverged from direct run", got.ID)
		}
	}
}

// TestSweepReportsAdvance pins the live-progress wiring: the engine's
// OnAdvance poll reports flow into Progress.RunningCycles while the cell
// runs, a callback the cell's own config installed still fires (chained
// after the tracker update, so it observes its own cycle in the snapshot),
// and the final report covers the full warm+measure span even though the
// window end is not a checkEvery multiple.
func TestSweepReportsAdvance(t *testing.T) {
	p := NewProgress()
	var last atomic.Uint64
	var tracked atomic.Bool
	tracked.Store(true)
	cell := Cell{ID: "adv", Config: testConfig(0, newBaseline)}
	cell.Config.OnAdvance = func(cycle uint64) {
		if cycle < last.Load() {
			t.Errorf("OnAdvance went backwards: %d after %d", cycle, last.Load())
		}
		last.Store(cycle)
		if p.Snapshot().RunningCycles["adv"] != cycle {
			tracked.Store(false)
		}
	}
	rep, err := Sweep(context.Background(), []Cell{cell}, Options{Progress: p})
	if err != nil || rep.OK != 1 {
		t.Fatalf("sweep: ok=%d err=%v", rep.OK, err)
	}
	total := cell.Config.WarmCycles + cell.Config.MeasureCycles
	if last.Load() != total {
		t.Errorf("final OnAdvance cycle = %d, want the full span %d", last.Load(), total)
	}
	if !tracked.Load() {
		t.Error("Progress.RunningCycles lagged the chained OnAdvance callback")
	}
	if s := p.Snapshot(); len(s.RunningCycles) != 0 {
		t.Errorf("RunningCycles after the sweep = %v, want empty", s.RunningCycles)
	}
}

func TestSweepJournalResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	var built atomic.Int64
	mkCell := func(i int) Cell {
		return Cell{
			ID: fmt.Sprintf("cell-%d", i),
			Config: testConfig(i, func() prefetch.Design {
				built.Add(1)
				return newBaseline()
			}),
		}
	}
	all := make([]Cell, 6)
	for i := range all {
		all[i] = mkCell(i)
	}

	// First sweep is "interrupted": only the first three cells ran.
	rep1, err := Sweep(context.Background(), all[:3], Options{Jobs: 2, JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.OK != 3 {
		t.Fatalf("first sweep ok = %d, want 3", rep1.OK)
	}
	builtBefore := built.Load()

	// Simulate a crash mid-append: a truncated trailing line must not
	// poison resumption.
	f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":"cell-9","status":"ok","result":{"work`)
	f.Close()

	// Re-run the full sweep with the same journal: only the unfinished
	// cells execute.
	rep2, err := Sweep(context.Background(), all, Options{Jobs: 2, JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resumed != 3 || rep2.OK != 3 || rep2.Failed != 0 {
		t.Fatalf("resumed/ok/failed = %d/%d/%d, want 3/3/0",
			rep2.Resumed, rep2.OK, rep2.Failed)
	}
	// Each run builds Cores designs per cell: exactly 3 new cells ran.
	if ran := built.Load() - builtBefore; ran != 3*2 {
		t.Fatalf("resumed sweep constructed %d designs, want %d", ran, 3*2)
	}
	// Restored results carry the recorded metrics.
	for i := 0; i < 3; i++ {
		restored := rep2.Cells[i]
		if restored.Status != StatusResumed {
			t.Fatalf("cell %d status %s, want resumed", i, restored.Status)
		}
		if restored.Result.M != rep1.Cells[i].Result.M {
			t.Errorf("cell %d metrics changed across resume", i)
		}
	}

	// A third sweep resumes everything.
	rep3, err := Sweep(context.Background(), all, Options{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Resumed != 6 || built.Load() != builtBefore+6 {
		t.Fatalf("third sweep re-executed cells (resumed=%d)", rep3.Resumed)
	}
}

func TestSweepJournalRecordsFailures(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "fail.jsonl")
	cells := []Cell{{
		ID: "boom",
		Config: testConfig(0, func() prefetch.Design {
			panic("kaboom")
		}),
	}}
	if _, err := Sweep(context.Background(), cells, Options{JournalPath: journal}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		ID     string `json:"id"`
		Status Status `json:"status"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("journal line unparsable: %v\n%s", err, data)
	}
	if e.Status != StatusFailed || e.Error == "" {
		t.Fatalf("failure not journaled: %+v", e)
	}

	// Failed cells are retried on resume, not skipped.
	cells[0].Config.NewDesign = newBaseline
	rep, err := Sweep(context.Background(), cells, Options{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 1 || rep.Resumed != 0 {
		t.Fatalf("failed cell not re-executed: %+v", rep)
	}
}

func TestSweepRetriesTransientFailures(t *testing.T) {
	var attempts atomic.Int64
	cells := []Cell{{
		ID: "flaky",
		Config: testConfig(0, func() prefetch.Design {
			if attempts.Add(1) == 1 {
				panic("transient glitch")
			}
			return newBaseline()
		}),
	}}
	rep, err := Sweep(context.Background(), cells, Options{
		Retries:   2,
		Backoff:   time.Millisecond,
		Transient: func(error) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.Status != StatusOK || c.Attempts != 2 {
		t.Fatalf("status %s after %d attempts, want ok after 2 (%v)", c.Status, c.Attempts, c.Err)
	}
}

func TestSweepDefaultTransientDoesNotRetryPanics(t *testing.T) {
	var attempts atomic.Int64
	cells := []Cell{{
		ID: "fatal",
		Config: testConfig(0, func() prefetch.Design {
			attempts.Add(1)
			panic("deterministic bug")
		}),
	}}
	rep, err := Sweep(context.Background(), cells, Options{Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Cores designs per attempt; the panic fires on the first construction.
	if rep.Cells[0].Attempts != 1 || attempts.Load() != 1 {
		t.Fatalf("deterministic panic retried: attempts=%d", rep.Cells[0].Attempts)
	}
}

func TestSweepPerCellTimeout(t *testing.T) {
	cells := []Cell{{
		ID: "hung",
		Config: func() sim.RunConfig {
			rc := testConfig(0, func() prefetch.Design { return &stuckDesign{} })
			rc.WatchdogCycles = -1 // force the timeout, not the watchdog
			rc.WarmCycles = 1 << 40
			return rc
		}(),
	}}
	rep, err := Sweep(context.Background(), cells, Options{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rep.Cells[0].Err, context.DeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", rep.Cells[0].Err)
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	cells := make([]Cell, 5)
	for i := range cells {
		cells[i] = Cell{ID: fmt.Sprintf("c%d", i), Config: testConfig(i, newBaseline)}
	}
	rep, err := Sweep(ctx, cells, Options{
		Jobs: 1,
		OnResult: func(CellResult) {
			if done.Add(1) == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep did not report cancellation: %v", err)
	}
	if rep.OK == 0 || rep.Failed == 0 {
		t.Fatalf("expected a mix of completed and cancelled cells: %+v", rep)
	}
	for _, c := range rep.Cells {
		if c.Status == StatusFailed && !errors.Is(c.Err, context.Canceled) {
			t.Errorf("cell %s failed with %v, want canceled", c.ID, c.Err)
		}
	}
}

func TestSweepRejectsDuplicateIDs(t *testing.T) {
	cells := []Cell{
		{ID: "same", Config: testConfig(0, newBaseline)},
		{ID: "same", Config: testConfig(1, newBaseline)},
	}
	if _, err := Sweep(context.Background(), cells, Options{}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}
