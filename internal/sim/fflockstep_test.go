package sim

import (
	"testing"
)

// TestFastForwardLockstep ticks a fast-forwarding machine (cheap per-core
// ticks only; no machine-level jumps, so every cycle is observable) against
// a full-tick reference cycle by cycle, comparing the complete metric
// vector each cycle. Unlike the end-to-end transparency test this pins a
// divergence to the exact cycle it first appears, which is what makes
// fast-forward bugs debuggable (this caught the bubble-expiry-at-next-cycle
// off-by-one during development).
func TestFastForwardLockstep(t *testing.T) {
	rc := applyDefaults(checkedConfig())
	mFast, err := buildMachine(rc, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mFast.close()
	mRef, err := buildMachine(rc, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mRef.close()
	for _, c := range mRef.cores {
		c.SetFastForward(false)
	}
	for cyc := 0; cyc < 40_000; cyc++ {
		for _, c := range mFast.cores {
			c.Tick()
		}
		for _, c := range mRef.cores {
			c.Tick()
		}
		for i := range mFast.cores {
			f, r := mFast.cores[i], mRef.cores[i]
			if f.M != r.M {
				t.Fatalf("cycle %d core %d: metrics diverged\nfast: %+v\nref:  %+v\nfast idleWake=%d diag=%+v\nref  diag=%+v",
					cyc, i, f.M, r.M, f.IdleWake(), f.Diag(), r.Diag())
			}
		}
	}
}
